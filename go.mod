module fragdroid

go 1.22
