package strategy

import (
	"fmt"
	"strings"

	"fragdroid/internal/aftm"
	"fragdroid/internal/device"
	"fragdroid/internal/robotium"
	"fragdroid/internal/session"
	"fragdroid/internal/statics"
)

// ModelGuided is static-model-guided exploration: it compiles the AFTM path
// to every node reachable in the static model into a concrete test case up
// front — clicks where the model knows the widget, the reflective fragment
// switch where it does not, empty-Intent starts for activity edges with no
// click — and replays the compiled suite, finishing with a forced-start
// sweep of whatever stayed unvisited. Unlike the explorer it never evolves
// the model from observations, so the comparison isolates the value of the
// evolutionary feedback loop: model-guided reaches what static analysis
// predicted, and nothing else.
type ModelGuided struct {
	ex        *statics.Extraction
	effective map[string]bool

	s            *session.Session
	targets      []modelTarget
	next         int
	forcedBuilt  bool
	visitedActs  map[string]bool
	visitedFrags map[string]bool
}

// modelTarget is one compiled test case and the node it aims for.
type modelTarget struct {
	node    aftm.Node
	script  robotium.Script
	purpose session.Purpose
}

// NewModelGuided returns the model-guided strategy for one analyzed app,
// ready for session.Drive.
func NewModelGuided(ex *statics.Extraction, _ Options) *ModelGuided {
	return &ModelGuided{
		ex:           ex,
		effective:    EffectiveSet(ex),
		visitedActs:  make(map[string]bool),
		visitedFrags: make(map[string]bool),
	}
}

// Name implements session.Strategy.
func (m *ModelGuided) Name() string { return "model" }

// SessionOptions implements session.Strategy: test-case-budgeted with
// auto-dismiss and curve sampling, like the explorer.
func (m *ModelGuided) SessionOptions(h session.Harness) session.Options {
	return session.Options{
		Budget:      h.Budget,
		HaltOnAPI:   h.HaltOnAPI,
		AutoDismiss: true,
		Observer:    h.Observer,
		Coverage:    m.coverage,
		Snapshots:   h.Snapshots,
	}
}

// coverage counts credited effective activities and fragments.
func (m *ModelGuided) coverage() (int, int) {
	n := 0
	for a := range m.visitedActs {
		if m.effective[a] {
			n++
		}
	}
	return n, len(m.visitedFrags)
}

// Init compiles the static AFTM into the target suite, breadth-first from
// the entry (the §VI-B queue order, compiled instead of evolved).
func (m *ModelGuided) Init(ctx *session.DriveContext) error {
	m.s = ctx.Session
	launch := robotium.Script{Name: "launch", Ops: []robotium.Op{robotium.LaunchMain()}}
	entry, ok := m.ex.Model.Entry()
	if !ok {
		m.s.Notef("model: no entry node; launch only")
		m.targets = []modelTarget{{script: launch, purpose: session.PurposeLaunch}}
		return nil
	}
	m.targets = []modelTarget{{node: entry, script: launch, purpose: session.PurposeLaunch}}
	compiled := 0
	for _, n := range m.ex.Model.BFS() {
		if n == entry {
			continue
		}
		t, ok := m.compile(n)
		if !ok {
			continue
		}
		m.targets = append(m.targets, t)
		compiled++
	}
	m.s.Notef("model: compiled %d targets from the static AFTM", compiled)
	return nil
}

// compile renders the AFTM path to one node as a concrete test case.
func (m *ModelGuided) compile(n aftm.Node) (modelTarget, bool) {
	path := m.ex.Model.PathTo(n)
	if len(path) == 0 {
		return modelTarget{}, false
	}
	ops := []robotium.Op{robotium.LaunchMain()}
	for _, e := range path {
		op, ok := m.compileEdge(e)
		if !ok {
			return modelTarget{}, false
		}
		ops = append(ops, op)
	}
	purpose := session.PurposeReplay
	switch ops[len(ops)-1].Kind {
	case robotium.OpReflect:
		purpose = session.PurposeReflection
	case robotium.OpForceStart:
		purpose = session.PurposeForcedStart
	}
	return modelTarget{
		node:    n,
		script:  robotium.Script{Name: "model_" + n.Name, Ops: ops},
		purpose: purpose,
	}, true
}

// compileEdge maps one AFTM edge to the operation that takes it: the known
// click, the reflective switch for clickless fragment edges (§VI-B: "if no
// explicit operation can be used for interface transition, the Java
// reflection mechanism will be utilized"), and the empty-Intent start for
// clickless activity edges.
func (m *ModelGuided) compileEdge(e aftm.Edge) (robotium.Op, bool) {
	if ref, ok := strings.CutPrefix(e.Via, "click:"); ok {
		return robotium.Click(ref), true
	}
	if e.To.Kind == aftm.KindFragment {
		frag := e.To.Name
		if !m.ex.TxnCommitted[frag] {
			return robotium.Op{}, false
		}
		host := ""
		if e.From.Kind == aftm.KindActivity {
			host = e.From.Name
		} else if h, ok := m.ex.Deps.PrimaryHost(frag); ok {
			host = h
		}
		containers := m.ex.Containers[host]
		if len(containers) == 0 {
			return robotium.Op{}, false
		}
		return robotium.Reflect(frag, containers[0]), true
	}
	return robotium.ForceStart(e.To.Name), true
}

// Propose replays the compiled suite in order, skipping targets already
// credited on the way, then sweeps still-unvisited effective activities with
// forced starts (§VI-C's second loop, without the rounds).
func (m *ModelGuided) Propose() (session.TestCase, bool) {
	for {
		if m.s.Exhausted() || m.s.Halted() {
			return session.TestCase{}, false
		}
		if m.next < len(m.targets) {
			t := m.targets[m.next]
			m.next++
			if m.reached(t.node) {
				continue
			}
			return session.TestCase{Script: t.script, Purpose: t.purpose}, true
		}
		if !m.forcedBuilt {
			m.forcedBuilt = true
			added := 0
			for _, a := range m.ex.EffectiveActivities {
				if m.visitedActs[a] {
					continue
				}
				m.targets = append(m.targets, modelTarget{
					node:    aftm.ActivityNode(a),
					script:  robotium.Script{Name: "force_" + a, Ops: []robotium.Op{robotium.ForceStart(a)}},
					purpose: session.PurposeForcedStart,
				})
				added++
			}
			if added > 0 {
				m.s.Notef("model: forced-start sweep over %d unvisited activities", added)
				continue
			}
		}
		return session.TestCase{}, false
	}
}

// reached reports whether a target node was already credited.
func (m *ModelGuided) reached(n aftm.Node) bool {
	switch n.Kind {
	case aftm.KindActivity:
		return m.visitedActs[n.Name]
	case aftm.KindFragment:
		return m.visitedFrags[n.Name]
	}
	return false
}

// Observe credits whatever interface the test case actually landed on —
// including partial progress of failed runs (the device holds the state the
// failing op left behind).
func (m *ModelGuided) Observe(tc session.TestCase, d *device.Device, res robotium.Result) error {
	if res.Err != nil {
		m.s.Notef("model target %s failed at %q: %v", tc.Script.Name, res.FailedOp, res.Err)
	}
	dump, err := d.Dump()
	if err != nil {
		return nil
	}
	if cur := dump.Activity; cur != "" && !m.visitedActs[cur] {
		m.visitedActs[cur] = true
		m.s.Trace(session.Event{Kind: session.KindVisit, Activity: cur,
			Script: tc.Script.Name, Ops: len(tc.Script.Ops),
			Msg: fmt.Sprintf("model reached %s (%d ops)", cur, len(tc.Script.Ops))})
	}
	for _, f := range identifyFragments(m.ex, dump) {
		if m.visitedFrags[f] {
			continue
		}
		m.visitedFrags[f] = true
		m.s.Trace(session.Event{Kind: session.KindVisit, Node: "F:" + f,
			Script: tc.Script.Name,
			Msg:    fmt.Sprintf("model reached fragment %s", f)})
	}
	return nil
}

// Finish fills the generic outcome with the credited component sets.
func (m *ModelGuided) Finish(out *session.Outcome) error {
	out.VisitedActivities = session.SortedKeys(m.visitedActs)
	out.VisitedFragments = session.SortedKeys(m.visitedFrags)
	return nil
}
