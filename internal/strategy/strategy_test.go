package strategy

import (
	"reflect"
	"testing"

	"fragdroid/internal/corpus"
	"fragdroid/internal/session"
	"fragdroid/internal/statics"
)

// corpusExtractions returns the statics extraction of every corpus app: the
// 15 paper rows plus the demo app.
func corpusExtractions(t *testing.T) map[string]*statics.Extraction {
	t.Helper()
	specs := []*corpus.AppSpec{corpus.DemoSpec()}
	for _, row := range corpus.PaperRows() {
		specs = append(specs, corpus.PaperSpec(row))
	}
	out := make(map[string]*statics.Extraction, len(specs))
	for _, spec := range specs {
		app, err := corpus.BuildApp(spec)
		if err != nil {
			t.Fatalf("build %s: %v", spec.Package, err)
		}
		ex, err := statics.Extract(app)
		if err != nil {
			t.Fatalf("extract %s: %v", spec.Package, err)
		}
		out[app.Manifest.Package] = ex
	}
	return out
}

// TestStrategySmoke runs every registered strategy on every corpus app with
// a small budget and asserts each reaches at least one activity — the floor
// any working generator must clear.
func TestStrategySmoke(t *testing.T) {
	exs := corpusExtractions(t)
	lib, err := CorpusLibrary("")
	if err != nil {
		t.Fatalf("corpus library: %v", err)
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for pkg, ex := range exs {
				out, err := Run(name, ex, Options{
					Budget:  120,
					Seed:    7,
					Curve:   true,
					Library: lib,
				})
				if err != nil {
					t.Fatalf("%s on %s: %v", name, pkg, err)
				}
				if out.Strategy != name {
					t.Errorf("%s on %s: outcome labeled %q", name, pkg, out.Strategy)
				}
				if len(out.VisitedActivities) == 0 {
					t.Errorf("%s on %s: reached no activities", name, pkg)
				}
				if out.Stats.TestCases == 0 {
					t.Errorf("%s on %s: billed no test cases", name, pkg)
				}
				if len(out.Curve) == 0 {
					t.Errorf("%s on %s: sampled no coverage curve", name, pkg)
				}
			}
		})
	}
}

// TestStrategySeedDeterminism pins satellite 1: two runs of each randomized
// strategy at the same seed produce identical outcomes, and a different seed
// is allowed to (and for monkey/biased does somewhere in the corpus) change
// the event stream without breaking determinism of either run.
func TestStrategySeedDeterminism(t *testing.T) {
	exs := corpusExtractions(t)
	demo := exs["com.demo.app"]
	if demo == nil {
		t.Fatalf("demo app missing from corpus extractions: %v", session.SortedKeys(exs))
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func(seed int64) *session.Outcome {
				// Fresh extraction state is shared safely: strategies clone
				// or only read it.
				out, err := Run(name, demo, Options{Budget: 150, Seed: seed, Curve: true})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				return out
			}
			a, b := run(7), run(7)
			if !reflect.DeepEqual(a.VisitedActivities, b.VisitedActivities) ||
				!reflect.DeepEqual(a.Transcript, b.Transcript) ||
				a.Stats != b.Stats ||
				!reflect.DeepEqual(a.Curve, b.Curve) {
				t.Errorf("%s: two runs at seed 7 diverged", name)
			}
		})
	}
}

// TestParseList validates the -compare flag parser.
func TestParseList(t *testing.T) {
	got, err := ParseList("explorer, monkey,biased")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"explorer", "monkey", "biased"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseList = %v, want %v", got, want)
	}
	if _, err := ParseList("explorer,bogus"); err == nil {
		t.Error("ParseList accepted unknown strategy")
	}
	if _, err := ParseList(" , "); err == nil {
		t.Error("ParseList accepted empty list")
	}
}

// TestTraceLibraryAdaptation pins that the corpus library actually transfers
// traces: for the demo app, the trace strategy must get at least one adapted
// multi-op route from similar corpus apps.
func TestTraceLibraryAdaptation(t *testing.T) {
	exs := corpusExtractions(t)
	lib, err := CorpusLibrary("com.demo.app")
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Apps()) == 0 || lib.Routes() == 0 {
		t.Fatalf("empty corpus library: apps=%d routes=%d", len(lib.Apps()), lib.Routes())
	}
	tr := NewTraceReuse(exs["com.demo.app"], Options{Library: lib})
	out, err := session.Drive(exs["com.demo.app"].App, tr, session.Harness{Budget: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.VisitedActivities) == 0 {
		t.Error("trace strategy with corpus library reached nothing")
	}
}
