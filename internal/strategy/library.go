package strategy

import (
	"fragdroid/internal/corpus"
	"fragdroid/internal/explorer"
	"fragdroid/internal/robotium"
)

// CorpusLibrary builds a trace library from the paper corpus: the explorer
// runs on every corpus app except the excluded one (the app under test must
// not reuse its own traces) and each run's first-arrival routes are
// harvested as recordings. This is the PuppetDroid corpus stand-in: a pool
// of working UI traces collected on real apps, waiting to be adapted to
// similar ones. Exploration is deterministic, so the library is too.
func CorpusLibrary(exclude string) (*Library, error) {
	lib := NewLibrary()
	for _, row := range corpus.PaperRows() {
		if row.Package == exclude {
			continue
		}
		app, err := corpus.BuildApp(corpus.PaperSpec(row))
		if err != nil {
			return nil, err
		}
		res, err := explorer.Explore(app, explorer.DefaultConfig())
		if err != nil {
			return nil, err
		}
		routes := make(map[string]robotium.Script, len(res.Visits))
		for n, v := range res.Visits {
			routes[n.String()] = v.Route
		}
		HarvestVisits(lib, row.Package, routes)
	}
	return lib, nil
}
