package strategy

import (
	"fmt"
	"math/rand"

	"fragdroid/internal/device"
	"fragdroid/internal/inputgen"
	"fragdroid/internal/layout"
	"fragdroid/internal/robotium"
	"fragdroid/internal/session"
	"fragdroid/internal/statics"
)

// Biased is widget-weighted random testing: Monkey's event loop with an
// event distribution informed by the layout's widget kinds. Buttons, menu
// items, and tabs — the controls that actually navigate — are weighted above
// plain views, repeat clicks on the same widget decay so the frontier keeps
// moving, and text entry is hint-aware instead of drawing from a junk
// wordlist. The strategy stays model-free: it reads only the current UI
// dump, like Monkey, so the comparison against model-guided strategies
// isolates the value of the weighting alone.
type Biased struct {
	ex        *statics.Extraction
	inputs    map[string]string
	effective map[string]bool
	seed      int64
	events    int

	s       *session.Session
	rng     *rand.Rand
	gen     *inputgen.Heuristic
	hints   map[string]string
	visited map[string]bool
	clicks  map[string]int
	done    bool
}

// NewBiased returns the biased-random strategy for one analyzed app, ready
// for session.Drive.
func NewBiased(ex *statics.Extraction, opts Options) *Biased {
	events := opts.Budget
	if events == 0 {
		events = 2000
	}
	hints := make(map[string]string)
	for _, w := range ex.InputWidgets {
		hints[w.Ref] = w.Hint
	}
	return &Biased{
		ex:        ex,
		inputs:    opts.Inputs,
		effective: EffectiveSet(ex),
		seed:      opts.Seed,
		events:    events,
		gen:       &inputgen.Heuristic{},
		hints:     hints,
		visited:   make(map[string]bool),
		clicks:    make(map[string]int),
	}
}

// Name implements session.Strategy.
func (b *Biased) Name() string { return "biased" }

// SessionOptions implements session.Strategy: event-budgeted like Monkey
// (the loop bills per event), always curve-sampled.
func (b *Biased) SessionOptions(h session.Harness) session.Options {
	return session.Options{Observer: h.Observer, Coverage: b.coverage}
}

// coverage counts reached effective activities; like Monkey, the strategy
// cannot credit fragments.
func (b *Biased) coverage() (int, int) {
	n := 0
	for a := range b.visited {
		if b.effective[a] {
			n++
		}
	}
	return n, 0
}

// Init binds the run context and seeds the RNG.
func (b *Biased) Init(ctx *session.DriveContext) error {
	b.s = ctx.Session
	b.rng = rand.New(rand.NewSource(b.seed))
	return nil
}

// Propose yields the single run-form event loop, then reports done.
func (b *Biased) Propose() (session.TestCase, bool) {
	if b.done {
		return session.TestCase{}, false
	}
	b.done = true
	return session.TestCase{Run: b.loop}, true
}

// Observe is never called: the strategy makes no script-form proposals.
func (b *Biased) Observe(session.TestCase, *device.Device, robotium.Result) error {
	return nil
}

// Finish fills the generic outcome with the reached activity set.
func (b *Biased) Finish(out *session.Outcome) error {
	out.VisitedActivities = session.SortedKeys(b.visited)
	return nil
}

// clickWeight scores one clickable widget: navigation-bearing kinds start
// high and every previous click on the same ref halves the weight (floor 1),
// so unexplored controls dominate the draw.
func (b *Biased) clickWeight(w device.WidgetInfo) int {
	base := 2
	switch w.Type {
	case layout.TypeButton, layout.TypeImageButton:
		base = 8
	case layout.TypeMenuItem, layout.TypeTabItem:
		base = 6
	case layout.TypeCheckBox, layout.TypeSpinner, layout.TypeListView:
		base = 4
	}
	wt := base >> b.clicks[w.Ref]
	if wt < 1 {
		wt = 1
	}
	return wt
}

// pickClick draws a clickable widget ref with probability proportional to
// its weight; ok is false when nothing is clickable.
func (b *Biased) pickClick(dump device.UIDump) (string, bool) {
	type cand struct {
		ref string
		wt  int
	}
	var cands []cand
	total := 0
	for _, w := range dump.Widgets {
		if !w.Visible || !w.Clickable {
			continue
		}
		wt := b.clickWeight(w)
		cands = append(cands, cand{ref: w.Ref, wt: wt})
		total += wt
	}
	if total == 0 {
		return "", false
	}
	n := b.rng.Intn(total)
	for _, c := range cands {
		if n < c.wt {
			return c.ref, true
		}
		n -= c.wt
	}
	return cands[len(cands)-1].ref, true
}

// inputValue resolves text for a field: the analyst input file first, then
// the hint heuristic, then the default filler.
func (b *Biased) inputValue(ref string) string {
	if val, ok := b.inputs[ref]; ok && val != "" {
		return val
	}
	if val, ok := b.gen.Generate(ref, b.hints[ref]); ok {
		return val
	}
	return "test123"
}

// loop is the event-injection loop: weighted clicks dominate, text entries
// use resolved values, BACK and dialog dismissal keep their Monkey share,
// and crashes or exits restart the app. Each event bills one test case so
// the coverage curve is indexed by events injected.
func (b *Biased) loop() error {
	s := b.s
	d := s.NewDevice()

	observe := func() {
		if cur, err := d.CurrentActivity(); err == nil && !b.visited[cur] {
			b.visited[cur] = true
			s.Trace(session.Event{Kind: session.KindVisit, Activity: cur,
				Msg: fmt.Sprintf("biased reached %s", cur)})
		}
	}

	if err := d.LaunchMain(); err != nil {
		return fmt.Errorf("strategy: biased launch: %w", err)
	}
	observe()
	s.SampleCurve()

	restarts := 0
	step := func() error {
		if d.Crashed() || !d.Running() {
			if d.Crashed() {
				s.MarkCrash(d.CrashReason(), robotium.Script{})
			}
			restarts++
			if err := d.LaunchMain(); err != nil {
				return err
			}
			observe()
			return nil
		}
		dump, err := d.Dump()
		if err != nil {
			return nil
		}
		switch p := b.rng.Intn(100); {
		case p < 70: // weighted click
			ref, ok := b.pickClick(dump)
			if !ok {
				_ = d.Back()
				break
			}
			b.clicks[ref]++
			_ = d.Click(ref)
		case p < 85: // hint-aware text
			refs := dump.EditableRefs()
			if len(refs) == 0 {
				break
			}
			ref := refs[b.rng.Intn(len(refs))]
			ev := session.Event{Kind: session.KindInputFill, Ref: ref, Value: b.inputValue(ref)}
			if err := d.EnterText(ref, ev.Value); err != nil {
				ev.Err = err.Error()
			}
			s.Trace(ev)
		case p < 95: // back
			_ = d.Back()
		default: // dialog dismissal
			if d.HasDialog() {
				_ = d.DismissDialog()
			}
		}
		observe()
		return nil
	}

	for i := 0; i < b.events; i++ {
		s.AddTestCases(1)
		if err := step(); err != nil {
			return err
		}
		s.SampleCurve()
	}

	s.AddSteps(d.Steps())
	s.Notef("biased done: %d events, %d crashes, %d restarts", b.events, s.Stats().Crashes, restarts)
	return nil
}
