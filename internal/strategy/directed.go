package strategy

import (
	"fragdroid/internal/explorer"
	"fragdroid/internal/paths"
	"fragdroid/internal/session"
	"fragdroid/internal/statics"
)

// Directed is the statically guided strategy: the paths pass enumerates a
// launcher-to-site UI path for every static sensitive-API relation, lowers
// each into a robotium route, and the explorer engine replays those routes
// as seeds before falling back to its normal frontier exploration. With a
// snapshot memo attached, near-miss seeds cost almost nothing extra — their
// prefixes are retried from memoized device states.
type Directed struct {
	session.Strategy
	// Seeded counts the compiled route seeds the engine starts from.
	Seeded int
}

// NewDirected compiles the app's static route seeds and wraps the explorer
// engine around them.
func NewDirected(ex *statics.Extraction, opts Options) *Directed {
	cfg := explorer.DefaultConfig()
	cfg.Inputs = opts.Inputs
	cfg.MaxTestCases = opts.Budget
	cfg.Observer = opts.Observer
	cfg.Snapshots = opts.Snapshots
	cfg.Devices = opts.Devices
	p := paths.New(ex, paths.Config{
		Inputs:       opts.Inputs,
		DefaultInput: cfg.DefaultInput,
	})
	cfg.Seeds = explorer.SeedScripts(p.PlanAll())
	return &Directed{Strategy: explorer.NewStrategy(ex, cfg), Seeded: len(cfg.Seeds)}
}

// Name implements session.Strategy.
func (d *Directed) Name() string { return "directed" }
