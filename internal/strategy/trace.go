package strategy

import (
	"fmt"
	"sort"

	"fragdroid/internal/device"
	"fragdroid/internal/recorder"
	"fragdroid/internal/robotium"
	"fragdroid/internal/session"
	"fragdroid/internal/statics"
)

// Library is a corpus of recorded routes keyed by the app they were recorded
// on, with the widget-ref vocabulary each app's routes exercise. The trace
// strategy matches a target app against the library by vocabulary similarity
// and adapts the routes of the closest apps (PuppetDroid's premise: UI
// traces collected on one app transfer to structurally similar ones).
type Library struct {
	entries map[string]*libEntry
}

type libEntry struct {
	pkg    string
	vocab  map[string]bool
	routes []robotium.Script
}

// NewLibrary returns an empty route library.
func NewLibrary() *Library {
	return &Library{entries: make(map[string]*libEntry)}
}

// Add records routes under the app package they were recorded on, merging
// with earlier additions for the same package.
func (l *Library) Add(pkg string, routes ...robotium.Script) {
	e := l.entries[pkg]
	if e == nil {
		e = &libEntry{pkg: pkg, vocab: make(map[string]bool)}
		l.entries[pkg] = e
	}
	for _, r := range routes {
		if len(r.Ops) == 0 {
			continue
		}
		e.routes = append(e.routes, r)
		for _, op := range r.Ops {
			if op.Ref != "" {
				e.vocab[op.Ref] = true
			}
		}
	}
}

// AddRecording records a recorder session's script (the record-and-replay
// collection side feeding the reuse side).
func (l *Library) AddRecording(pkg string, rec *recorder.Recorder) {
	l.Add(pkg, rec.Script())
}

// Apps returns the library's package names, sorted.
func (l *Library) Apps() []string { return session.SortedKeys(l.entries) }

// Routes reports the total number of recorded routes.
func (l *Library) Routes() int {
	n := 0
	for _, e := range l.entries {
		n += len(e.routes)
	}
	return n
}

// jaccard is the similarity of two ref vocabularies.
func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// TraceReuse seeds test cases from recorded routes of structurally similar
// corpus apps: library entries are ranked by widget-vocabulary similarity to
// the target, their routes adapted to the target (operations on widgets,
// activities, or fragments the target does not have are dropped), and the
// surviving scripts replayed most-similar-first after a guaranteed launch.
type TraceReuse struct {
	ex        *statics.Extraction
	lib       *Library
	effective map[string]bool

	s            *session.Session
	scripts      []session.TestCase
	next         int
	visitedActs  map[string]bool
	visitedFrags map[string]bool
}

// NewTraceReuse returns the trace-reuse strategy for one analyzed app, ready
// for session.Drive. A nil library leaves only the launch fallback.
func NewTraceReuse(ex *statics.Extraction, opts Options) *TraceReuse {
	return &TraceReuse{
		ex:           ex,
		lib:          opts.Library,
		effective:    EffectiveSet(ex),
		visitedActs:  make(map[string]bool),
		visitedFrags: make(map[string]bool),
	}
}

// Name implements session.Strategy.
func (t *TraceReuse) Name() string { return "trace" }

// SessionOptions implements session.Strategy. Replays run verbatim — no
// auto-dismiss — matching the recorder's replay discipline.
func (t *TraceReuse) SessionOptions(h session.Harness) session.Options {
	return session.Options{
		Budget:    h.Budget,
		HaltOnAPI: h.HaltOnAPI,
		Observer:  h.Observer,
		Coverage:  t.coverage,
		Snapshots: h.Snapshots,
	}
}

// coverage counts credited effective activities and fragments.
func (t *TraceReuse) coverage() (int, int) {
	n := 0
	for a := range t.visitedActs {
		if t.effective[a] {
			n++
		}
	}
	return n, len(t.visitedFrags)
}

// vocab is the target app's widget-ref vocabulary, from its layouts.
func (t *TraceReuse) vocab() map[string]bool {
	v := make(map[string]bool)
	for _, l := range t.ex.App.Layouts {
		for _, ref := range l.WidgetIDs() {
			v[ref] = true
		}
	}
	return v
}

// Init ranks the library by similarity and adapts the closest apps' routes.
func (t *TraceReuse) Init(ctx *session.DriveContext) error {
	t.s = ctx.Session
	launch := robotium.Script{Name: "launch", Ops: []robotium.Op{robotium.LaunchMain()}}
	t.scripts = []session.TestCase{{Script: launch, Purpose: session.PurposeLaunch}}
	if t.lib == nil {
		t.s.Notef("trace: no route library; launch only")
		return nil
	}
	vocab := t.vocab()
	self := t.ex.App.Manifest.Package
	type ranked struct {
		e   *libEntry
		sim float64
	}
	var order []ranked
	for _, pkg := range t.lib.Apps() {
		if pkg == self {
			continue // reusing the target's own traces would be cheating
		}
		e := t.lib.entries[pkg]
		order = append(order, ranked{e: e, sim: jaccard(vocab, e.vocab)})
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].sim != order[j].sim {
			return order[i].sim > order[j].sim
		}
		return order[i].e.pkg < order[j].e.pkg
	})
	adapted := 0
	for _, r := range order {
		for i, route := range r.e.routes {
			ops := t.adapt(route.Ops)
			if len(ops) <= 1 {
				continue // nothing survived beyond the launch fallback
			}
			adapted++
			t.scripts = append(t.scripts, session.TestCase{
				Script: robotium.Script{
					Name: fmt.Sprintf("trace_%s_%d", r.e.pkg, i),
					Ops:  ops,
				},
				Purpose: session.PurposeReplay,
			})
		}
	}
	t.s.Notef("trace: adapted %d routes from %d similar apps", adapted, len(order))
	return nil
}

// adapt filters a recorded route down to the operations the target app can
// perform: clicks and text entries on widgets it has, starts of activities
// it declares, reflective switches of fragments it commits — everything else
// is dropped. The result always begins with a launch.
func (t *TraceReuse) adapt(ops []robotium.Op) []robotium.Op {
	vocab := t.vocab()
	out := []robotium.Op{robotium.LaunchMain()}
	for _, op := range ops {
		switch op.Kind {
		case robotium.OpLaunchMain:
			// already leading
		case robotium.OpBack, robotium.OpDismissDialog:
			out = append(out, op)
		case robotium.OpClick, robotium.OpEnterText:
			if vocab[op.Ref] {
				out = append(out, op)
			}
		case robotium.OpForceStart:
			if t.ex.App.Manifest.HasActivity(op.Activity) {
				out = append(out, op)
			}
		case robotium.OpReflect:
			if !t.ex.TxnCommitted[op.Fragment] {
				continue
			}
			host, ok := t.ex.Deps.PrimaryHost(op.Fragment)
			if !ok {
				continue
			}
			containers := t.ex.Containers[host]
			if len(containers) == 0 {
				continue
			}
			// Re-target the container: the recorded one belongs to the
			// source app's layouts.
			out = append(out, robotium.Reflect(op.Fragment, containers[0]))
		}
	}
	return out
}

// Propose replays the adapted scripts in order under the budget.
func (t *TraceReuse) Propose() (session.TestCase, bool) {
	if t.s.Exhausted() || t.s.Halted() || t.next >= len(t.scripts) {
		return session.TestCase{}, false
	}
	tc := t.scripts[t.next]
	t.next++
	return tc, true
}

// Observe credits the interface the replay landed on.
func (t *TraceReuse) Observe(tc session.TestCase, d *device.Device, res robotium.Result) error {
	if res.Err != nil {
		t.s.Notef("trace %s stopped at %q: %v", tc.Script.Name, res.FailedOp, res.Err)
	}
	dump, err := d.Dump()
	if err != nil {
		return nil
	}
	if cur := dump.Activity; cur != "" && !t.visitedActs[cur] {
		t.visitedActs[cur] = true
		t.s.Trace(session.Event{Kind: session.KindVisit, Activity: cur,
			Script: tc.Script.Name, Ops: len(tc.Script.Ops),
			Msg: fmt.Sprintf("trace reached %s (%d ops)", cur, len(tc.Script.Ops))})
	}
	for _, f := range identifyFragments(t.ex, dump) {
		if t.visitedFrags[f] {
			continue
		}
		t.visitedFrags[f] = true
		t.s.Trace(session.Event{Kind: session.KindVisit, Node: "F:" + f,
			Script: tc.Script.Name,
			Msg:    fmt.Sprintf("trace reached fragment %s", f)})
	}
	return nil
}

// Finish fills the generic outcome with the credited component sets.
func (t *TraceReuse) Finish(out *session.Outcome) error {
	out.VisitedActivities = session.SortedKeys(t.visitedActs)
	out.VisitedFragments = session.SortedKeys(t.visitedFrags)
	return nil
}

// HarvestVisits adds an explorer run's first-arrival routes to the library —
// the cheapest honest source of recorded traces: each route is a working
// recording of how a real exploration reached a component on that app.
// Routes are added in deterministic (sorted-node) order.
func HarvestVisits(lib *Library, pkg string, routes map[string]robotium.Script) {
	keys := session.SortedKeys(routes)
	for _, k := range keys {
		lib.Add(pkg, routes[k])
	}
}
