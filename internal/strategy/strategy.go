// Package strategy is the registry of exploration strategies: every dynamic
// engine the repo ships — the four classic ones (FragDroid's explorer, the
// Activity-level baseline, Monkey, recorder replay) and the newer generator
// families layered on the session.Strategy seam — selectable by name with
// one option set, all returning the engine-independent session.Outcome.
//
// The registry is what turns the repo from one tool into a benchmark
// platform ("Are We There Yet?", PAPERS.md): CLIs pick strategies by name,
// and the bake-off harness in internal/report compares them under identical
// budgets, seeds, and session mechanics.
//
// The three strategies implemented here cover the generator families the
// comparison literature names beyond FragDroid's own:
//
//   - biased: widget-weighted random testing — Monkey with a layout-aware
//     event distribution (buttons and menu items weighted above plain views,
//     repeat clicks decayed) and hint-aware text entry.
//   - model: static-model-guided walking — compiles AFTM paths to unvisited
//     nodes into test cases up front and replays them, with no evolutionary
//     feedback (A3E-targeted-style systematic exploration).
//   - trace: PuppetDroid-style trace reuse — adapts recorded routes from
//     structurally similar corpus apps to the app under test and replays
//     them as seed test cases.
package strategy

import (
	"fmt"
	"sort"
	"strings"

	"fragdroid/internal/baseline"
	"fragdroid/internal/device"
	"fragdroid/internal/explorer"
	"fragdroid/internal/session"
	"fragdroid/internal/statics"
)

// Options is the engine-independent option set the registry maps onto each
// strategy's own configuration.
type Options struct {
	// Budget bounds the run: test cases for script-driven strategies,
	// injected events for the random ones (both are billed one test case
	// each, so coverage-vs-budget curves are comparable). Zero applies each
	// strategy's default.
	Budget int
	// Seed feeds the randomized strategies' RNGs (monkey, biased).
	// Deterministic strategies ignore it.
	Seed int64
	// Inputs is the analyst-provided input dependency: widget ref → value.
	Inputs map[string]string
	// Observer receives structured trace events (nil disables).
	Observer session.Observer
	// Snapshots enables route-prefix snapshot memoization; nil disables.
	Snapshots *session.SnapshotMemo
	// Devices is the in-process device fleet size (above 1 adds warmers).
	Devices int
	// Curve enables coverage-curve sampling on strategies where it is
	// opt-in (the legacy baselines keep their trace streams byte-identical
	// unless asked). The new strategies always sample.
	Curve bool
	// Library is the recorded-route library the trace strategy adapts from;
	// nil leaves it with only the launch fallback.
	Library *Library
}

// Names lists the registered strategies in canonical comparison order.
func Names() []string {
	return []string{"explorer", "activity", "monkey", "biased", "model", "trace", "directed"}
}

// Known reports whether name is a registered strategy.
func Known(name string) bool {
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// Run executes one named strategy on a statically analyzed app and returns
// the engine-independent outcome.
func Run(name string, ex *statics.Extraction, opts Options) (*session.Outcome, error) {
	h := session.Harness{
		Budget:    opts.Budget,
		Observer:  opts.Observer,
		Snapshots: opts.Snapshots,
		Devices:   opts.Devices,
	}
	switch name {
	case "explorer":
		cfg := explorer.DefaultConfig()
		cfg.Inputs = opts.Inputs
		cfg.MaxTestCases = opts.Budget
		cfg.Observer = opts.Observer
		cfg.Snapshots = opts.Snapshots
		cfg.Devices = opts.Devices
		r, err := explorer.ExploreExtracted(ex, cfg)
		if err != nil {
			return nil, err
		}
		return FromExplorer(r), nil
	case "activity":
		cfg := baseline.DefaultActivityConfig()
		cfg.Inputs = opts.Inputs
		cfg.MaxTestCases = opts.Budget
		cfg.Observer = opts.Observer
		cfg.Snapshots = opts.Snapshots
		cfg.Devices = opts.Devices
		cfg.SampleCurve = opts.Curve
		cfg.Effective = EffectiveSet(ex)
		r, err := baseline.ExploreActivities(ex.App, cfg)
		if err != nil {
			return nil, err
		}
		return &session.Outcome{
			Strategy:          "activity",
			VisitedActivities: r.VisitedActivities,
			Collector:         r.Collector,
			Stats:             r.Stats,
			Curve:             r.Curve,
			Transcript:        r.Transcript,
		}, nil
	case "monkey":
		cfg := baseline.MonkeyConfig{
			Seed:      opts.Seed,
			Events:    opts.Budget,
			Observer:  opts.Observer,
			Snapshots: opts.Snapshots,
			Devices:   opts.Devices,
		}
		cfg.SampleCurve = opts.Curve
		cfg.Effective = EffectiveSet(ex)
		r, err := baseline.Monkey(ex.App, cfg)
		if err != nil {
			return nil, err
		}
		return &session.Outcome{
			Strategy:          "monkey",
			VisitedActivities: r.VisitedActivities,
			Collector:         r.Collector,
			Stats:             r.Stats,
			Curve:             r.Curve,
			Transcript:        r.Transcript,
		}, nil
	case "biased":
		return session.Drive(ex.App, NewBiased(ex, opts), h)
	case "model":
		return session.Drive(ex.App, NewModelGuided(ex, opts), h)
	case "trace":
		return session.Drive(ex.App, NewTraceReuse(ex, opts), h)
	case "directed":
		return session.Drive(ex.App, NewDirected(ex, opts), h)
	default:
		return nil, fmt.Errorf("strategy: unknown strategy %q (known: %s)", name, strings.Join(Names(), ", "))
	}
}

// FromExplorer adapts an explorer result to the engine-independent outcome,
// for callers that ran the explorer directly (keeping its richer Result) but
// feed strategy-agnostic machinery like the bake-off tables.
func FromExplorer(r *explorer.Result) *session.Outcome {
	return &session.Outcome{
		Strategy:          "explorer",
		VisitedActivities: r.VisitedActivities(),
		VisitedFragments:  r.VisitedFragments(),
		Collector:         r.Collector,
		Stats:             r.Stats,
		Curve:             r.Curve,
		CrashReports:      r.CrashReports,
		Transcript:        r.Transcript,
	}
}

// ParseList splits a comma-separated strategy list, validating every name.
func ParseList(list string) ([]string, error) {
	var out []string
	for _, raw := range strings.Split(list, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		if !Known(name) {
			return nil, fmt.Errorf("strategy: unknown strategy %q (known: %s)", name, strings.Join(Names(), ", "))
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("strategy: empty strategy list (known: %s)", strings.Join(Names(), ", "))
	}
	return out, nil
}

// EffectiveSet returns the static phase's effective activities as a set —
// the curve denominator every strategy's crediting is filtered against, so
// coverage percentages compare like against like.
func EffectiveSet(ex *statics.Extraction) map[string]bool {
	set := make(map[string]bool, len(ex.EffectiveActivities))
	for _, a := range ex.EffectiveActivities {
		set[a] = true
	}
	return set
}

// identifyFragments maps a UI dump to the credited fragment classes, the
// explorer's crediting rule (§VII-B2): fragments the FragmentManager
// confirms AND the resource dependency can identify from visible widgets
// (fragments with no identifiable widgets are trusted from the
// FragmentManager alone).
func identifyFragments(ex *statics.Extraction, dump device.UIDump) []string {
	byRes := make(map[string]bool)
	for _, f := range ex.ResDeps.IdentifyFragments(dump.VisibleRefs()) {
		byRes[f] = true
	}
	var out []string
	for _, f := range dump.FMFragments {
		if byRes[f] || len(ex.ResDeps.ByOwner[f]) == 0 {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}
