// Package aftm implements the Activity & Fragment Transition Model of the
// paper (Definition 1, §IV): a finite state model ⟨A, F, E⟩ whose nodes are
// working Activities and Fragments and whose edges are the three basic
// transition relationships
//
//	E1: A → A   (outer: from an Activity to another Activity)
//	E2: A → F_i (inner: from an Activity to its own Fragment)
//	E3: F → F_i (inner: between Fragments of one Activity)
//
// The seven concrete transition types observed in apps are merged into these
// three by MergeEdge, following §IV-A. The model is evolutionary: the dynamic
// phase adds nodes and edges as it discovers them and marks nodes visited,
// and the exploration queue is (re)built from the model by breadth-first
// search.
package aftm

import (
	"fmt"
	"sort"
	"strings"
)

// NodeKind distinguishes Activity and Fragment nodes.
type NodeKind int

const (
	// KindActivity marks Activity nodes (the A set).
	KindActivity NodeKind = iota + 1
	// KindFragment marks Fragment nodes (the F set).
	KindFragment
)

// String returns "A" or "F".
func (k NodeKind) String() string {
	switch k {
	case KindActivity:
		return "A"
	case KindFragment:
		return "F"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node identifies one model node by kind and class name.
type Node struct {
	Kind NodeKind
	// Name is the fully qualified class name.
	Name string
}

// ActivityNode constructs an Activity node.
func ActivityNode(name string) Node { return Node{Kind: KindActivity, Name: name} }

// FragmentNode constructs a Fragment node.
func FragmentNode(name string) Node { return Node{Kind: KindFragment, Name: name} }

// String renders the node as "A:name" or "F:name".
func (n Node) String() string { return n.Kind.String() + ":" + n.Name }

// EdgeKind is one of the three basic transition relationships.
type EdgeKind int

const (
	// E1 is A → A (outer).
	E1 EdgeKind = iota + 1
	// E2 is A → F_i (inner).
	E2
	// E3 is F → F_i (inner).
	E3
)

// String returns "E1", "E2" or "E3".
func (k EdgeKind) String() string {
	switch k {
	case E1:
		return "E1"
	case E2:
		return "E2"
	case E3:
		return "E3"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Edge is a transition between two nodes.
type Edge struct {
	Kind EdgeKind
	From Node
	To   Node
	// Via documents how the transition is performed: "intent",
	// "action:<name>", "transaction", "click:<widget>", "reflection",
	// "forced-start", ... The dynamic phase refines Via when it learns an
	// explicit UI operation for an edge first found statically.
	Via string
}

// String renders "A:x -E2-> F:y [via]".
func (e Edge) String() string {
	s := fmt.Sprintf("%s -%s-> %s", e.From, e.Kind, e.To)
	if e.Via != "" {
		s += " [" + e.Via + "]"
	}
	return s
}

// key identifies an edge regardless of Via.
type edgeKey struct {
	kind     EdgeKind
	from, to Node
}

// Model is the AFTM: node sets, edges, entry node, and visited bookkeeping.
type Model struct {
	entry    Node
	hasEntry bool
	nodes    map[Node]bool
	visited  map[Node]bool
	edges    map[edgeKey]*Edge
	// outAdj holds each node's outgoing edges pre-sorted by (To.Kind,
	// To.Name) — the same order sorting by To.String() produces, since the
	// kind prefix ("A:" < "F:") agrees with KindActivity < KindFragment and
	// a node never has two edges to the same target. The slices share *Edge
	// pointers with m.edges so Via upgrades stay visible. Keeping the order
	// an insertion invariant makes EdgesFrom, BFS and PathTo sort-free;
	// per-call sorting here dominated the warm exploration profile.
	outAdj map[Node][]*Edge
}

// New returns an empty model.
func New() *Model {
	return &Model{
		nodes:   make(map[Node]bool),
		visited: make(map[Node]bool),
		edges:   make(map[edgeKey]*Edge),
		outAdj:  make(map[Node][]*Edge),
	}
}

// SetEntry declares the entry Activity A0. The node is added if absent.
func (m *Model) SetEntry(n Node) error {
	if n.Kind != KindActivity {
		return fmt.Errorf("aftm: entry node %s is not an Activity", n)
	}
	m.AddNode(n)
	m.entry = n
	m.hasEntry = true
	return nil
}

// Entry returns the entry node; ok is false if none was set.
func (m *Model) Entry() (Node, bool) { return m.entry, m.hasEntry }

// AddNode inserts a node; adding an existing node is a no-op. It reports
// whether the node was new.
func (m *Model) AddNode(n Node) bool {
	if m.nodes[n] {
		return false
	}
	m.nodes[n] = true
	return true
}

// HasNode reports node membership.
func (m *Model) HasNode(n Node) bool { return m.nodes[n] }

// classify derives the EdgeKind for a (from, to) pair per Definition 1.
func classify(from, to Node) (EdgeKind, error) {
	switch {
	case from.Kind == KindActivity && to.Kind == KindActivity:
		return E1, nil
	case from.Kind == KindActivity && to.Kind == KindFragment:
		return E2, nil
	case from.Kind == KindFragment && to.Kind == KindFragment:
		return E3, nil
	default:
		return 0, fmt.Errorf("aftm: no basic edge for %s -> %s (merge first)", from, to)
	}
}

// AddEdge inserts a transition, adding both endpoints as needed. Duplicate
// edges are merged; the Via label is upgraded when the new one is more
// concrete: statically derived labels (intent, transaction, action:*) are
// weakest, the implicit mechanisms (reflection, forced-start) stronger, and
// an explicit UI click strongest — the paper prefers explicit clicking
// transitions over the implicit reflection mechanism (§VI-A Case 2). It
// reports whether the edge (not just Via) was new.
func (m *Model) AddEdge(from, to Node, via string) (bool, error) {
	kind, err := classify(from, to)
	if err != nil {
		return false, err
	}
	if from == to {
		return false, fmt.Errorf("aftm: self edge on %s", from)
	}
	m.AddNode(from)
	m.AddNode(to)
	k := edgeKey{kind: kind, from: from, to: to}
	if e, ok := m.edges[k]; ok {
		if viaRank(via) > viaRank(e.Via) {
			e.Via = via
		}
		return false, nil
	}
	e := &Edge{Kind: kind, From: from, To: to, Via: via}
	m.edges[k] = e
	adj := m.outAdj[from]
	i := sort.Search(len(adj), func(i int) bool {
		if adj[i].To.Kind != to.Kind {
			return adj[i].To.Kind > to.Kind
		}
		return adj[i].To.Name > to.Name
	})
	adj = append(adj, nil)
	copy(adj[i+1:], adj[i:])
	adj[i] = e
	m.outAdj[from] = adj
	return true, nil
}

// viaRank orders Via labels by concreteness.
func viaRank(via string) int {
	switch {
	case strings.HasPrefix(via, "click:"):
		return 3
	case via == ViaReflection, via == ViaForcedStart:
		return 2
	case via != "":
		return 1
	default:
		return 0
	}
}

// Common Via labels.
const (
	ViaIntent      = "intent"
	ViaTransaction = "transaction"
	ViaReflection  = "reflection"
	ViaForcedStart = "forced-start"
)

// ViaAction renders the Via label for an implicit intent action.
func ViaAction(action string) string { return "action:" + action }

// ViaClick renders the Via label for a UI click on a widget.
func ViaClick(widgetRef string) string { return "click:" + widgetRef }

// MergeEdge folds any of the seven concrete transition types into the three
// basic edges of Definition 1 and inserts the result:
//
//	A → A        E1 as-is
//	A → F_i      E2 as-is
//	F → F_i      E3 as-is
//	F → A_i      dropped (must go through the host Activity)
//	F → A_o      treated as host(F) → A_o, i.e. E1
//	F → F_o      treated as host(F) → F_o, i.e. E2 (into the other Activity)
//	A → F_o      split into A → host(F_o) (E1) and host(F_o) → F_o (E2)
//
// host maps a Fragment to its hosting Activity and otherHost maps an external
// Fragment to the Activity that owns it. It reports how many edges were new.
func (m *Model) MergeEdge(from, to Node, via string, host func(frag string) (string, bool)) (int, error) {
	added := 0
	add := func(f, t Node, v string) error {
		isNew, err := m.AddEdge(f, t, v)
		if err != nil {
			return err
		}
		if isNew {
			added++
		}
		return nil
	}
	switch {
	case from.Kind == KindActivity && to.Kind == KindActivity:
		return added, add(from, to, via)
	case from.Kind == KindFragment && to.Kind == KindActivity:
		// F → A: find the host; internal transitions (host == target) are
		// dropped, external ones become host → A_o.
		h, ok := host(from.Name)
		if !ok {
			return added, fmt.Errorf("aftm: fragment %s has no host activity", from.Name)
		}
		if h == to.Name {
			return added, nil // F → A_i: ignored per §IV-A
		}
		return added, add(ActivityNode(h), to, via)
	case from.Kind == KindFragment && to.Kind == KindFragment:
		fh, ok := host(from.Name)
		if !ok {
			return added, fmt.Errorf("aftm: fragment %s has no host activity", from.Name)
		}
		th, ok := host(to.Name)
		if !ok {
			return added, fmt.Errorf("aftm: fragment %s has no host activity", to.Name)
		}
		if fh == th {
			return added, add(from, to, via) // E3
		}
		// F → F_o: host(F) → F_o, which itself is A → F_o and splits.
		if err := add(ActivityNode(fh), ActivityNode(th), via); err != nil {
			return added, err
		}
		return added, add(ActivityNode(th), to, ViaTransaction)
	case from.Kind == KindActivity && to.Kind == KindFragment:
		th, ok := host(to.Name)
		if !ok {
			return added, fmt.Errorf("aftm: fragment %s has no host activity", to.Name)
		}
		if th == from.Name {
			return added, add(from, to, via) // E2
		}
		// A → F_o: A → host (E1) plus host → F (E2).
		if err := add(from, ActivityNode(th), via); err != nil {
			return added, err
		}
		return added, add(ActivityNode(th), to, ViaTransaction)
	}
	return added, fmt.Errorf("aftm: unreachable merge case %s -> %s", from, to)
}

// Visit marks a node visited, reporting whether it was previously unvisited.
func (m *Model) Visit(n Node) bool {
	if !m.nodes[n] {
		m.AddNode(n)
	}
	if m.visited[n] {
		return false
	}
	m.visited[n] = true
	return true
}

// Visited reports whether the node has been visited.
func (m *Model) Visited(n Node) bool { return m.visited[n] }

// Nodes returns all nodes, Activities first, each group sorted by name.
func (m *Model) Nodes() []Node {
	out := make([]Node, 0, len(m.nodes))
	for n := range m.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Activities returns the A set, sorted.
func (m *Model) Activities() []string { return m.namesOf(KindActivity) }

// Fragments returns the F set, sorted.
func (m *Model) Fragments() []string { return m.namesOf(KindFragment) }

func (m *Model) namesOf(k NodeKind) []string {
	var out []string
	for n := range m.nodes {
		if n.Kind == k {
			out = append(out, n.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Edges returns all edges sorted by (kind, from, to).
func (m *Model) Edges() []Edge {
	out := make([]Edge, 0, len(m.edges))
	for _, e := range m.edges {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.From != b.From {
			return a.From.String() < b.From.String()
		}
		return a.To.String() < b.To.String()
	})
	return out
}

// EdgesFrom returns the edges leaving n, sorted by target. The adjacency
// list is kept in that order by AddEdge, so this is a copy, not a sort.
func (m *Model) EdgesFrom(n Node) []Edge {
	adj := m.outAdj[n]
	if len(adj) == 0 {
		return nil
	}
	out := make([]Edge, len(adj))
	for i, e := range adj {
		out[i] = *e
	}
	return out
}

// EdgeBetween returns the edge from → to if present.
func (m *Model) EdgeBetween(from, to Node) (Edge, bool) {
	kind, err := classify(from, to)
	if err != nil {
		return Edge{}, false
	}
	e, ok := m.edges[edgeKey{kind: kind, from: from, to: to}]
	if !ok {
		return Edge{}, false
	}
	return *e, true
}

// Degree reports in+out degree of a node; isolated nodes have degree 0.
func (m *Model) Degree(n Node) int {
	d := 0
	for _, e := range m.edges {
		if e.From == n || e.To == n {
			d++
		}
	}
	return d
}

// RemoveIsolated deletes nodes with degree 0, except the entry node; the
// paper filters out "isolated Activities ... not linked by any edge"
// (§IV-B2). It returns the removed nodes.
func (m *Model) RemoveIsolated() []Node {
	var removed []Node
	for _, n := range m.Nodes() {
		if m.hasEntry && n == m.entry {
			continue
		}
		if m.Degree(n) == 0 {
			delete(m.nodes, n)
			delete(m.visited, n)
			removed = append(removed, n)
		}
	}
	return removed
}

// Counts summarizes the model.
type Counts struct {
	Activities, Fragments    int
	VisitedActs, VisitedFrag int
	E1, E2, E3               int
}

// Count computes the model summary.
func (m *Model) Count() Counts {
	var c Counts
	for n := range m.nodes {
		switch n.Kind {
		case KindActivity:
			c.Activities++
			if m.visited[n] {
				c.VisitedActs++
			}
		case KindFragment:
			c.Fragments++
			if m.visited[n] {
				c.VisitedFrag++
			}
		}
	}
	for _, e := range m.edges {
		switch e.Kind {
		case E1:
			c.E1++
		case E2:
			c.E2++
		case E3:
			c.E3++
		}
	}
	return c
}

// BFS returns nodes reachable from the entry in breadth-first order together
// with, for each node, the edge path from the entry. The queue-generation
// module of the paper traverses "the initial AFTM by breadth-first search"
// and pushes one item per newly discovered node; PathTo supplies that item's
// operation skeleton.
func (m *Model) BFS() []Node {
	if !m.hasEntry {
		return nil
	}
	var order []Node
	seen := map[Node]bool{m.entry: true}
	queue := []Node{m.entry}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, e := range m.outAdj[n] {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return order
}

// Paths computes the breadth-first order and, for every reachable node, the
// shortest edge path from the entry — one traversal instead of one PathTo
// per node. The returned order is exactly BFS(), and each path is exactly
// what PathTo would return for that node: both walk the same sorted
// adjacency, so the discovery tree is identical; PathTo merely stops early.
// The entry maps to an empty, non-nil path.
func (m *Model) Paths() ([]Node, map[Node][]Edge) {
	if !m.hasEntry {
		return nil, nil
	}
	prev := make(map[Node]Edge)
	seen := map[Node]bool{m.entry: true}
	order := []Node{m.entry}
	for i := 0; i < len(order); i++ {
		n := order[i]
		for _, e := range m.outAdj[n] {
			if !seen[e.To] {
				seen[e.To] = true
				prev[e.To] = *e
				order = append(order, e.To)
			}
		}
	}
	pathOf := make(map[Node][]Edge, len(order))
	pathOf[m.entry] = []Edge{}
	// Nodes appear in order after their predecessors, so each path extends an
	// already-built one by a single edge.
	for _, n := range order[1:] {
		e := prev[n]
		base := pathOf[e.From]
		path := make([]Edge, len(base)+1)
		copy(path, base)
		path[len(base)] = e
		pathOf[n] = path
	}
	return order, pathOf
}

// PathTo returns a shortest edge path from the entry to target, or nil if
// target is unreachable in the model.
func (m *Model) PathTo(target Node) []Edge {
	if !m.hasEntry {
		return nil
	}
	if target == m.entry {
		return []Edge{}
	}
	prev := make(map[Node]Edge)
	seen := map[Node]bool{m.entry: true}
	queue := []Node{m.entry}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range m.outAdj[n] {
			if seen[e.To] {
				continue
			}
			seen[e.To] = true
			prev[e.To] = *e
			if e.To == target {
				return rebuild(prev, m.entry, target)
			}
			queue = append(queue, e.To)
		}
	}
	return nil
}

func rebuild(prev map[Node]Edge, entry, target Node) []Edge {
	var rev []Edge
	for cur := target; cur != entry; {
		e := prev[cur]
		rev = append(rev, e)
		cur = e.From
	}
	out := make([]Edge, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// Unvisited returns nodes of the given kind that are not visited, sorted.
func (m *Model) Unvisited(kind NodeKind) []Node {
	var out []Node
	for n := range m.nodes {
		if n.Kind == kind && !m.visited[n] {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DOT renders the model in Graphviz DOT form (Figure 5 of the paper is a
// drawing of such a graph). Visited nodes are filled.
func (m *Model) DOT(title string) string {
	var b strings.Builder
	b.WriteString("digraph AFTM {\n")
	fmt.Fprintf(&b, "  label=%q;\n", title)
	b.WriteString("  rankdir=LR;\n")
	for _, n := range m.Nodes() {
		attrs := []string{fmt.Sprintf("label=%q", n.Name)}
		if n.Kind == KindActivity {
			attrs = append(attrs, "shape=box")
		} else {
			attrs = append(attrs, "shape=ellipse")
		}
		if m.visited[n] {
			attrs = append(attrs, "style=filled", `fillcolor="lightgrey"`)
		}
		if m.hasEntry && n == m.entry {
			attrs = append(attrs, "penwidth=2")
		}
		fmt.Fprintf(&b, "  %q [%s];\n", n.String(), strings.Join(attrs, ", "))
	}
	for _, e := range m.Edges() {
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.From.String(), e.To.String(),
			e.Kind.String()+" "+e.Via)
	}
	b.WriteString("}\n")
	return b.String()
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	nm := New()
	nm.entry, nm.hasEntry = m.entry, m.hasEntry
	for n := range m.nodes {
		nm.nodes[n] = true
	}
	for n := range m.visited {
		nm.visited[n] = true
	}
	for k, e := range m.edges {
		cp := *e
		nm.edges[k] = &cp
	}
	for n, adj := range m.outAdj {
		nadj := make([]*Edge, len(adj))
		for i, e := range adj {
			// Point at the clone's own Edge so later Via upgrades on the
			// clone stay confined to it; order carries over unchanged.
			nadj[i] = nm.edges[edgeKey{kind: e.Kind, from: e.From, to: e.To}]
		}
		nm.outAdj[n] = nadj
	}
	return nm
}
