package aftm

import (
	"testing"
	"testing/quick"
)

// Property: whatever raw transition MergeEdge receives, the resulting model
// only ever contains the three basic edge kinds of Definition 1 — never an
// F→A edge, never a self edge — and repeated merging is idempotent on the
// edge set.
func TestQuickMergePreservesBasicKinds(t *testing.T) {
	acts := []string{"A0", "A1", "A2"}
	frags := []string{"F0", "F1", "F2", "G0"}
	hosts := map[string]string{"F0": "A0", "F1": "A0", "F2": "A1", "G0": "A2"}
	host := func(f string) (string, bool) {
		h, ok := hosts[f]
		return h, ok
	}
	node := func(kindSel, idx uint8) Node {
		if kindSel%2 == 0 {
			return ActivityNode(acts[int(idx)%len(acts)])
		}
		return FragmentNode(frags[int(idx)%len(frags)])
	}

	f := func(ops [][4]uint8) bool {
		m := New()
		if err := m.SetEntry(ActivityNode("A0")); err != nil {
			return false
		}
		for _, op := range ops {
			from := node(op[0], op[1])
			to := node(op[2], op[3])
			// Merging may legitimately error only for self-loops after host
			// folding; any returned model state must still be well-formed.
			_, _ = m.MergeEdge(from, to, ViaIntent, host)
		}
		before := m.Edges()
		// Idempotence: replaying the same merges adds nothing.
		for _, op := range ops {
			from := node(op[0], op[1])
			to := node(op[2], op[3])
			if n, err := m.MergeEdge(from, to, ViaIntent, host); err == nil && n != 0 {
				return false
			}
		}
		after := m.Edges()
		if len(before) != len(after) {
			return false
		}
		for _, e := range after {
			switch e.Kind {
			case E1:
				if e.From.Kind != KindActivity || e.To.Kind != KindActivity {
					return false
				}
			case E2:
				if e.From.Kind != KindActivity || e.To.Kind != KindFragment {
					return false
				}
			case E3:
				if e.From.Kind != KindFragment || e.To.Kind != KindFragment {
					return false
				}
			default:
				return false
			}
			if e.From == e.To {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
