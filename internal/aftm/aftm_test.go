package aftm

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// buildModel constructs the Figure-5-like model:
//
//	A0 -E1-> A1, A0 -E1-> A2
//	A0 -E2-> F0, A0 -E2-> F1
//	F0 -E3-> F1
//	A2 -E2-> F2
func buildModel(t *testing.T) *Model {
	t.Helper()
	m := New()
	if err := m.SetEntry(ActivityNode("A0")); err != nil {
		t.Fatal(err)
	}
	edges := []struct {
		from, to Node
		via      string
	}{
		{ActivityNode("A0"), ActivityNode("A1"), ViaIntent},
		{ActivityNode("A0"), ActivityNode("A2"), ViaIntent},
		{ActivityNode("A0"), FragmentNode("F0"), ViaTransaction},
		{ActivityNode("A0"), FragmentNode("F1"), ViaTransaction},
		{FragmentNode("F0"), FragmentNode("F1"), ViaClick("@id/tab")},
		{ActivityNode("A2"), FragmentNode("F2"), ViaTransaction},
	}
	for _, e := range edges {
		if _, err := m.AddEdge(e.from, e.to, e.via); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestCounts(t *testing.T) {
	m := buildModel(t)
	c := m.Count()
	if c.Activities != 3 || c.Fragments != 3 {
		t.Fatalf("counts = %+v", c)
	}
	if c.E1 != 2 || c.E2 != 3 || c.E3 != 1 {
		t.Fatalf("edge counts = %+v", c)
	}
}

func TestEdgeClassification(t *testing.T) {
	m := New()
	if _, err := m.AddEdge(FragmentNode("F"), ActivityNode("A"), ""); err == nil {
		t.Error("F->A must not be a basic edge")
	}
	if _, err := m.AddEdge(ActivityNode("A"), ActivityNode("A"), ""); err == nil {
		t.Error("self edge must fail")
	}
	isNew, err := m.AddEdge(ActivityNode("A"), FragmentNode("F"), "")
	if err != nil || !isNew {
		t.Fatalf("AddEdge = %v, %v", isNew, err)
	}
	e, ok := m.EdgeBetween(ActivityNode("A"), FragmentNode("F"))
	if !ok || e.Kind != E2 {
		t.Fatalf("EdgeBetween = %+v, %v", e, ok)
	}
}

func TestAddEdgeDedupAndViaUpgrade(t *testing.T) {
	m := New()
	if _, err := m.AddEdge(ActivityNode("A"), FragmentNode("F"), ViaReflection); err != nil {
		t.Fatal(err)
	}
	isNew, err := m.AddEdge(ActivityNode("A"), FragmentNode("F"), ViaClick("@id/b"))
	if err != nil || isNew {
		t.Fatalf("dup AddEdge = %v, %v", isNew, err)
	}
	e, _ := m.EdgeBetween(ActivityNode("A"), FragmentNode("F"))
	if e.Via != ViaClick("@id/b") {
		t.Fatalf("Via not upgraded from reflection: %q", e.Via)
	}
	// Explicit via is NOT downgraded back to reflection.
	if _, err := m.AddEdge(ActivityNode("A"), FragmentNode("F"), ViaReflection); err != nil {
		t.Fatal(err)
	}
	e, _ = m.EdgeBetween(ActivityNode("A"), FragmentNode("F"))
	if e.Via != ViaClick("@id/b") {
		t.Fatalf("Via downgraded: %q", e.Via)
	}
}

func hostMap(hosts map[string]string) func(string) (string, bool) {
	return func(f string) (string, bool) {
		h, ok := hosts[f]
		return h, ok
	}
}

func TestMergeEdgeSevenCases(t *testing.T) {
	hosts := hostMap(map[string]string{"F0": "A0", "F1": "A0", "G0": "A1"})

	t.Run("F to internal A dropped", func(t *testing.T) {
		m := New()
		n, err := m.MergeEdge(FragmentNode("F0"), ActivityNode("A0"), ViaIntent, hosts)
		if err != nil || n != 0 {
			t.Fatalf("n=%d err=%v", n, err)
		}
		if len(m.Edges()) != 0 {
			t.Fatalf("edges = %v", m.Edges())
		}
	})
	t.Run("F to external A becomes host E1", func(t *testing.T) {
		m := New()
		n, err := m.MergeEdge(FragmentNode("F0"), ActivityNode("A9"), ViaIntent, hosts)
		if err != nil || n != 1 {
			t.Fatalf("n=%d err=%v", n, err)
		}
		if _, ok := m.EdgeBetween(ActivityNode("A0"), ActivityNode("A9")); !ok {
			t.Fatalf("missing host edge: %v", m.Edges())
		}
	})
	t.Run("F to sibling F is E3", func(t *testing.T) {
		m := New()
		n, err := m.MergeEdge(FragmentNode("F0"), FragmentNode("F1"), ViaClick("@id/t"), hosts)
		if err != nil || n != 1 {
			t.Fatalf("n=%d err=%v", n, err)
		}
		e, ok := m.EdgeBetween(FragmentNode("F0"), FragmentNode("F1"))
		if !ok || e.Kind != E3 {
			t.Fatalf("edge = %+v ok=%v", e, ok)
		}
	})
	t.Run("F to external F splits", func(t *testing.T) {
		m := New()
		n, err := m.MergeEdge(FragmentNode("F0"), FragmentNode("G0"), ViaIntent, hosts)
		if err != nil || n != 2 {
			t.Fatalf("n=%d err=%v edges=%v", n, err, m.Edges())
		}
		if _, ok := m.EdgeBetween(ActivityNode("A0"), ActivityNode("A1")); !ok {
			t.Error("missing A0->A1")
		}
		if _, ok := m.EdgeBetween(ActivityNode("A1"), FragmentNode("G0")); !ok {
			t.Error("missing A1->G0")
		}
	})
	t.Run("A to external F splits", func(t *testing.T) {
		m := New()
		n, err := m.MergeEdge(ActivityNode("A0"), FragmentNode("G0"), ViaIntent, hosts)
		if err != nil || n != 2 {
			t.Fatalf("n=%d err=%v", n, err)
		}
		if _, ok := m.EdgeBetween(ActivityNode("A0"), ActivityNode("A1")); !ok {
			t.Error("missing A0->A1")
		}
		if _, ok := m.EdgeBetween(ActivityNode("A1"), FragmentNode("G0")); !ok {
			t.Error("missing A1->G0")
		}
	})
	t.Run("A to own F is E2", func(t *testing.T) {
		m := New()
		n, err := m.MergeEdge(ActivityNode("A0"), FragmentNode("F0"), ViaTransaction, hosts)
		if err != nil || n != 1 {
			t.Fatalf("n=%d err=%v", n, err)
		}
	})
	t.Run("A to A passes through", func(t *testing.T) {
		m := New()
		n, err := m.MergeEdge(ActivityNode("A0"), ActivityNode("A1"), ViaIntent, hosts)
		if err != nil || n != 1 {
			t.Fatalf("n=%d err=%v", n, err)
		}
	})
	t.Run("unknown host errors", func(t *testing.T) {
		m := New()
		if _, err := m.MergeEdge(FragmentNode("Zz"), FragmentNode("F0"), "", hosts); err == nil {
			t.Error("want error for unknown host")
		}
	})
}

func TestBFSOrder(t *testing.T) {
	m := buildModel(t)
	order := m.BFS()
	if len(order) != 6 {
		t.Fatalf("BFS visited %d nodes: %v", len(order), order)
	}
	if order[0] != ActivityNode("A0") {
		t.Fatalf("BFS starts at %v", order[0])
	}
	// All level-1 nodes precede the level-2 node F2.
	pos := map[Node]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, n := range []Node{ActivityNode("A1"), ActivityNode("A2"), FragmentNode("F0"), FragmentNode("F1")} {
		if pos[n] > pos[FragmentNode("F2")] {
			t.Errorf("level-1 node %v after level-2 node F2", n)
		}
	}
}

func TestPathTo(t *testing.T) {
	m := buildModel(t)
	path := m.PathTo(FragmentNode("F2"))
	if len(path) != 2 {
		t.Fatalf("path = %v", path)
	}
	if path[0].To != ActivityNode("A2") || path[1].To != FragmentNode("F2") {
		t.Fatalf("path = %v", path)
	}
	if p := m.PathTo(ActivityNode("A0")); p == nil || len(p) != 0 {
		t.Fatalf("path to entry = %v", p)
	}
	m.AddNode(ActivityNode("Lonely"))
	if p := m.PathTo(ActivityNode("Lonely")); p != nil {
		t.Fatalf("path to unreachable = %v", p)
	}
}

func TestVisitAndUnvisited(t *testing.T) {
	m := buildModel(t)
	if !m.Visit(ActivityNode("A0")) {
		t.Fatal("first Visit must report new")
	}
	if m.Visit(ActivityNode("A0")) {
		t.Fatal("second Visit must report not-new")
	}
	un := m.Unvisited(KindActivity)
	if len(un) != 2 {
		t.Fatalf("unvisited activities = %v", un)
	}
	if got := m.Count().VisitedActs; got != 1 {
		t.Fatalf("VisitedActs = %d", got)
	}
}

func TestRemoveIsolated(t *testing.T) {
	m := buildModel(t)
	m.AddNode(ActivityNode("Iso1"))
	m.AddNode(FragmentNode("IsoF"))
	removed := m.RemoveIsolated()
	if len(removed) != 2 {
		t.Fatalf("removed = %v", removed)
	}
	if m.HasNode(ActivityNode("Iso1")) || m.HasNode(FragmentNode("IsoF")) {
		t.Fatal("isolated nodes still present")
	}
	// Entry survives even when isolated.
	m2 := New()
	if err := m2.SetEntry(ActivityNode("Solo")); err != nil {
		t.Fatal(err)
	}
	if removed := m2.RemoveIsolated(); len(removed) != 0 {
		t.Fatalf("entry removed: %v", removed)
	}
}

func TestDOT(t *testing.T) {
	m := buildModel(t)
	m.Visit(ActivityNode("A0"))
	dot := m.DOT("demo")
	for _, want := range []string{"digraph AFTM", `"A:A0"`, `"F:F2"`, "shape=box", "shape=ellipse", "lightgrey", "E2 transaction"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := buildModel(t)
	cl := m.Clone()
	cl.Visit(ActivityNode("A1"))
	if _, err := cl.AddEdge(ActivityNode("A1"), ActivityNode("A9"), ViaIntent); err != nil {
		t.Fatal(err)
	}
	if m.Visited(ActivityNode("A1")) {
		t.Fatal("Clone shares visited set")
	}
	if m.HasNode(ActivityNode("A9")) {
		t.Fatal("Clone shares node set")
	}
	if !reflect.DeepEqual(m.BFS(), buildModel(t).BFS()) {
		t.Fatal("original mutated")
	}
}

func TestNodesOrdering(t *testing.T) {
	m := buildModel(t)
	nodes := m.Nodes()
	// Activities first, then fragments, each sorted.
	sawFragment := false
	for _, n := range nodes {
		if n.Kind == KindFragment {
			sawFragment = true
		} else if sawFragment {
			t.Fatalf("activity after fragment in %v", nodes)
		}
	}
	if !reflect.DeepEqual(m.Activities(), []string{"A0", "A1", "A2"}) {
		t.Fatalf("Activities = %v", m.Activities())
	}
	if !reflect.DeepEqual(m.Fragments(), []string{"F0", "F1", "F2"}) {
		t.Fatalf("Fragments = %v", m.Fragments())
	}
}

// Property: BFS from the entry reaches exactly the set of nodes with a
// non-nil PathTo, and every returned path starts at the entry and is
// edge-connected.
func TestQuickBFSPathAgreement(t *testing.T) {
	f := func(edges [][2]uint8) bool {
		m := New()
		if err := m.SetEntry(ActivityNode("A0")); err != nil {
			return false
		}
		names := []string{"A0", "A1", "A2", "A3", "A4", "A5", "A6", "A7"}
		for _, e := range edges {
			from := names[int(e[0])%len(names)]
			to := names[int(e[1])%len(names)]
			if from == to {
				continue
			}
			if _, err := m.AddEdge(ActivityNode(from), ActivityNode(to), ViaIntent); err != nil {
				return false
			}
		}
		reach := make(map[Node]bool)
		for _, n := range m.BFS() {
			reach[n] = true
		}
		for _, n := range m.Nodes() {
			p := m.PathTo(n)
			if reach[n] != (p != nil) {
				return false
			}
			if p == nil {
				continue
			}
			cur := ActivityNode("A0")
			for _, e := range p {
				if e.From != cur {
					return false
				}
				cur = e.To
			}
			if cur != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
