package aftm

import (
	"fmt"

	"fragdroid/internal/binc"
)

// bincModelVersion versions the binc model payload embedded in extraction
// artifacts.
const bincModelVersion = 1

// EncodeModel renders the model in binc form — the same information as the
// JSON form (kept for human-facing exports), but decoded on every warm
// artifact load, so it is built for decode speed: class names are interned
// once in the string table and kinds are varints, with no reflection on
// either side. The output is deterministic.
func EncodeModel(m *Model) []byte {
	w := binc.NewWriter()
	w.Int(bincModelVersion)
	entry := ""
	if e, ok := m.Entry(); ok {
		entry = e.Name
	}
	w.Str(entry)
	nodes := m.Nodes()
	w.Int(len(nodes))
	for _, n := range nodes {
		w.Int(int(n.Kind))
		w.Str(n.Name)
		w.Bool(m.Visited(n))
	}
	edges := m.Edges()
	w.Int(len(edges))
	for _, e := range edges {
		// From/To kinds are implied by the edge kind (E1: A→A, E2: A→F,
		// E3: F→F) and cross-checked against the node table on decode.
		w.Int(int(e.Kind))
		w.Str(e.From.Name)
		w.Str(e.To.Name)
		w.Str(e.Via)
	}
	return w.Bytes()
}

// DecodeModel reconstructs a model from its binc form, applying the same
// validation as the JSON decoder: node kinds must be well-formed, edge
// endpoints must be declared, and the serialized edge kind must match the
// kind the endpoints derive.
func DecodeModel(data []byte) (*Model, error) {
	r, err := binc.NewReader(data)
	if err != nil {
		return nil, fmt.Errorf("aftm: decode: %w", err)
	}
	if v := r.Int(); v != bincModelVersion {
		if r.Err() != nil {
			return nil, fmt.Errorf("aftm: decode: %w", r.Err())
		}
		return nil, fmt.Errorf("aftm: unsupported model version %d", v)
	}
	entry := r.Str()
	m := New()
	kinds := make(map[string]NodeKind)
	nNodes := r.Int()
	for i := 0; i < nNodes && r.Err() == nil; i++ {
		k := NodeKind(r.Int())
		name := r.Str()
		visited := r.Bool()
		if k != KindActivity && k != KindFragment {
			return nil, fmt.Errorf("aftm: unknown node kind %d", int(k))
		}
		if prev, dup := kinds[name]; dup && prev != k {
			return nil, fmt.Errorf("aftm: node %q declared with two kinds", name)
		}
		kinds[name] = k
		n := Node{Kind: k, Name: name}
		m.AddNode(n)
		if visited {
			m.Visit(n)
		}
	}
	nEdges := r.Int()
	for i := 0; i < nEdges && r.Err() == nil; i++ {
		ek := EdgeKind(r.Int())
		from := r.Str()
		to := r.Str()
		via := r.Str()
		fk, ok := kinds[from]
		if !ok {
			return nil, fmt.Errorf("aftm: edge from undeclared node %q", from)
		}
		tk, ok := kinds[to]
		if !ok {
			return nil, fmt.Errorf("aftm: edge to undeclared node %q", to)
		}
		if _, err := m.AddEdge(Node{Kind: fk, Name: from}, Node{Kind: tk, Name: to}, via); err != nil {
			return nil, err
		}
		if e, ok := m.EdgeBetween(Node{Kind: fk, Name: from}, Node{Kind: tk, Name: to}); ok && e.Kind != ek {
			return nil, fmt.Errorf("aftm: edge %s->%s declared %s, derived %s",
				from, to, ek, e.Kind)
		}
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("aftm: decode: %w", r.Err())
	}
	if entry != "" {
		k, ok := kinds[entry]
		if !ok || k != KindActivity {
			return nil, fmt.Errorf("aftm: entry %q is not a declared activity", entry)
		}
		if err := m.SetEntry(ActivityNode(entry)); err != nil {
			return nil, err
		}
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("aftm: decode: %w", err)
	}
	return m, nil
}
