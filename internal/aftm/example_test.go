package aftm_test

import (
	"fmt"
	"log"

	"fragdroid/internal/aftm"
)

// A minimal AFTM in the shape of the paper's Figure 5: an entry activity
// with two fragments (E2), a sibling transition between them (E3), and a
// second activity (E1).
func ExampleModel() {
	m := aftm.New()
	if err := m.SetEntry(aftm.ActivityNode("A0")); err != nil {
		log.Fatal(err)
	}
	edges := []struct {
		from, to aftm.Node
		via      string
	}{
		{aftm.ActivityNode("A0"), aftm.ActivityNode("A1"), aftm.ViaIntent},
		{aftm.ActivityNode("A0"), aftm.FragmentNode("F0"), aftm.ViaTransaction},
		{aftm.ActivityNode("A0"), aftm.FragmentNode("F1"), aftm.ViaTransaction},
		{aftm.FragmentNode("F0"), aftm.FragmentNode("F1"), aftm.ViaClick("@id/tab")},
	}
	for _, e := range edges {
		if _, err := m.AddEdge(e.from, e.to, e.via); err != nil {
			log.Fatal(err)
		}
	}
	c := m.Count()
	fmt.Printf("A=%d F=%d E1=%d E2=%d E3=%d\n", c.Activities, c.Fragments, c.E1, c.E2, c.E3)
	for _, e := range m.PathTo(aftm.FragmentNode("F1")) {
		fmt.Println(e)
	}
	// Output:
	// A=2 F=2 E1=1 E2=2 E3=1
	// A:A0 -E2-> F:F1 [transaction]
}

// MergeEdge folds the seven concrete transition types into the three basic
// relationships of Definition 1: a fragment-to-external-fragment transition
// becomes host→host (E1) plus host→fragment (E2).
func ExampleModel_MergeEdge() {
	m := aftm.New()
	host := func(f string) (string, bool) {
		return map[string]string{"F0": "A0", "G0": "A1"}[f], true
	}
	n, err := m.MergeEdge(aftm.FragmentNode("F0"), aftm.FragmentNode("G0"), aftm.ViaIntent, host)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("edges added:", n)
	for _, e := range m.Edges() {
		fmt.Println(e)
	}
	// Output:
	// edges added: 2
	// A:A0 -E1-> A:A1 [intent]
	// A:A1 -E2-> F:G0 [transaction]
}
