package aftm

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	m := buildModel(t)
	m.Visit(ActivityNode("A0"))
	m.Visit(FragmentNode("F0"))

	data, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := UnmarshalModel(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}

	if !reflect.DeepEqual(back.Nodes(), m.Nodes()) {
		t.Errorf("nodes = %v, want %v", back.Nodes(), m.Nodes())
	}
	if !reflect.DeepEqual(back.Edges(), m.Edges()) {
		t.Errorf("edges = %v, want %v", back.Edges(), m.Edges())
	}
	for _, n := range m.Nodes() {
		if back.Visited(n) != m.Visited(n) {
			t.Errorf("visited(%v) mismatch", n)
		}
	}
	e1, ok1 := m.Entry()
	e2, ok2 := back.Entry()
	if ok1 != ok2 || e1 != e2 {
		t.Errorf("entry = %v,%v want %v,%v", e2, ok2, e1, ok1)
	}
	// And the round trip is stable.
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Error("second marshal differs from first")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"garbage", "{"},
		{"bad version", `{"version":99,"nodes":[],"edges":[]}`},
		{"bad kind", `{"version":1,"nodes":[{"kind":"widget","name":"x"}],"edges":[]}`},
		{"dangling edge", `{"version":1,"nodes":[{"kind":"activity","name":"a"}],"edges":[{"kind":"E1","from":"a","to":"b"}]}`},
		{"kind mismatch", `{"version":1,"nodes":[{"kind":"activity","name":"a"},{"kind":"fragment","name":"f"}],"edges":[{"kind":"E1","from":"a","to":"f"}]}`},
		{"bad entry", `{"version":1,"entry":"f","nodes":[{"kind":"fragment","name":"f"}],"edges":[]}`},
		{"dup node kinds", `{"version":1,"nodes":[{"kind":"activity","name":"x"},{"kind":"fragment","name":"x"}],"edges":[]}`},
	}
	for _, tc := range cases {
		if _, err := UnmarshalModel([]byte(tc.data)); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestJSONShape(t *testing.T) {
	m := New()
	if err := m.SetEntry(ActivityNode("com.x.Main")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddEdge(ActivityNode("com.x.Main"), FragmentNode("com.x.F"), ViaTransaction); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"entry":"com.x.Main"`, `"kind":"E2"`, `"via":"transaction"`, `"kind":"fragment"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s:\n%s", want, s)
		}
	}
}
