package aftm

import (
	"reflect"
	"testing"
)

// TestModelBincRoundTrip pins the binc model codec against the model's
// public surface: nodes, visited marks, edges (with Via labels), and the
// entry survive a round trip, and traversals over the decoded model match
// the original exactly.
func TestModelBincRoundTrip(t *testing.T) {
	m := New()
	if err := m.SetEntry(ActivityNode("com.app.Main")); err != nil {
		t.Fatal(err)
	}
	mustAdd := func(from, to Node, via string) {
		t.Helper()
		if _, err := m.AddEdge(from, to, via); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(ActivityNode("com.app.Main"), ActivityNode("com.app.Detail"), ViaIntent)
	mustAdd(ActivityNode("com.app.Main"), FragmentNode("com.app.TabF"), ViaClick("@id/tab"))
	mustAdd(FragmentNode("com.app.TabF"), FragmentNode("com.app.ListF"), ViaTransaction)
	mustAdd(ActivityNode("com.app.Detail"), FragmentNode("com.app.ListF"), ViaReflection)
	m.AddNode(ActivityNode("com.app.Isolated"))
	m.Visit(ActivityNode("com.app.Main"))
	m.Visit(FragmentNode("com.app.TabF"))

	got, err := DecodeModel(EncodeModel(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Nodes(), m.Nodes()) {
		t.Errorf("nodes diverge:\n got %v\nwant %v", got.Nodes(), m.Nodes())
	}
	if !reflect.DeepEqual(got.Edges(), m.Edges()) {
		t.Errorf("edges diverge:\n got %v\nwant %v", got.Edges(), m.Edges())
	}
	for _, n := range m.Nodes() {
		if got.Visited(n) != m.Visited(n) {
			t.Errorf("visited(%s) = %v, want %v", n, got.Visited(n), m.Visited(n))
		}
	}
	ge, gok := got.Entry()
	we, wok := m.Entry()
	if gok != wok || ge != we {
		t.Errorf("entry = %v,%v, want %v,%v", ge, gok, we, wok)
	}
	if !reflect.DeepEqual(got.BFS(), m.BFS()) {
		t.Errorf("BFS order diverges:\n got %v\nwant %v", got.BFS(), m.BFS())
	}
}

// TestDecodeModelRejectsCorruption truncates and mutates a valid payload:
// the decoder must error, never panic, and must reject version and kind
// mismatches explicitly.
func TestDecodeModelRejectsCorruption(t *testing.T) {
	m := New()
	if err := m.SetEntry(ActivityNode("a.Main")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddEdge(ActivityNode("a.Main"), FragmentNode("a.F"), ViaTransaction); err != nil {
		t.Fatal(err)
	}
	valid := EncodeModel(m)
	if _, err := DecodeModel(valid); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	for cut := 0; cut < len(valid); cut++ {
		if _, err := DecodeModel(valid[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeModel([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("garbage payload accepted")
	}
}
