package aftm

import (
	"encoding/json"
	"fmt"
)

// jsonModel is the serialized form of a Model.
type jsonModel struct {
	Entry   string     `json:"entry,omitempty"`
	Nodes   []jsonNode `json:"nodes"`
	Edges   []jsonEdge `json:"edges"`
	Version int        `json:"version"`
}

type jsonNode struct {
	Kind    string `json:"kind"` // "activity" | "fragment"
	Name    string `json:"name"`
	Visited bool   `json:"visited,omitempty"`
}

type jsonEdge struct {
	Kind string `json:"kind"` // "E1" | "E2" | "E3"
	From string `json:"from"`
	To   string `json:"to"`
	Via  string `json:"via,omitempty"`
}

const jsonVersion = 1

func kindName(k NodeKind) string {
	if k == KindActivity {
		return "activity"
	}
	return "fragment"
}

func kindFromName(s string) (NodeKind, error) {
	switch s {
	case "activity":
		return KindActivity, nil
	case "fragment":
		return KindFragment, nil
	default:
		return 0, fmt.Errorf("aftm: unknown node kind %q", s)
	}
}

// MarshalJSON serializes the model: nodes (with visited marks), edges, and
// the entry node. The output is deterministic.
func (m *Model) MarshalJSON() ([]byte, error) {
	jm := jsonModel{Version: jsonVersion}
	if e, ok := m.Entry(); ok {
		jm.Entry = e.Name
	}
	for _, n := range m.Nodes() {
		jm.Nodes = append(jm.Nodes, jsonNode{
			Kind:    kindName(n.Kind),
			Name:    n.Name,
			Visited: m.Visited(n),
		})
	}
	for _, e := range m.Edges() {
		jm.Edges = append(jm.Edges, jsonEdge{
			Kind: e.Kind.String(),
			From: e.From.Name,
			To:   e.To.Name,
			Via:  e.Via,
		})
	}
	return json.Marshal(jm)
}

// UnmarshalModel reconstructs a model from its JSON form.
func UnmarshalModel(data []byte) (*Model, error) {
	var jm jsonModel
	if err := json.Unmarshal(data, &jm); err != nil {
		return nil, fmt.Errorf("aftm: decode: %w", err)
	}
	if jm.Version != jsonVersion {
		return nil, fmt.Errorf("aftm: unsupported model version %d", jm.Version)
	}
	m := New()
	kinds := make(map[string]NodeKind, len(jm.Nodes))
	for _, jn := range jm.Nodes {
		k, err := kindFromName(jn.Kind)
		if err != nil {
			return nil, err
		}
		if prev, dup := kinds[jn.Name]; dup && prev != k {
			return nil, fmt.Errorf("aftm: node %q declared with two kinds", jn.Name)
		}
		kinds[jn.Name] = k
		n := Node{Kind: k, Name: jn.Name}
		m.AddNode(n)
		if jn.Visited {
			m.Visit(n)
		}
	}
	for _, je := range jm.Edges {
		fk, ok := kinds[je.From]
		if !ok {
			return nil, fmt.Errorf("aftm: edge from undeclared node %q", je.From)
		}
		tk, ok := kinds[je.To]
		if !ok {
			return nil, fmt.Errorf("aftm: edge to undeclared node %q", je.To)
		}
		from := Node{Kind: fk, Name: je.From}
		to := Node{Kind: tk, Name: je.To}
		isNew, err := m.AddEdge(from, to, je.Via)
		if err != nil {
			return nil, err
		}
		// Cross-check the serialized edge kind.
		if e, ok := m.EdgeBetween(from, to); ok && e.Kind.String() != je.Kind {
			return nil, fmt.Errorf("aftm: edge %s->%s declared %s, derived %s",
				je.From, je.To, je.Kind, e.Kind)
		}
		_ = isNew
	}
	if jm.Entry != "" {
		k, ok := kinds[jm.Entry]
		if !ok || k != KindActivity {
			return nil, fmt.Errorf("aftm: entry %q is not a declared activity", jm.Entry)
		}
		if err := m.SetEntry(ActivityNode(jm.Entry)); err != nil {
			return nil, err
		}
	}
	return m, nil
}
