package adb

import (
	"strings"
	"testing"

	"fragdroid/internal/corpus"
	"fragdroid/internal/device"
	"fragdroid/internal/robotium"
)

const pkg = "com.demo.app."

func bridge(t *testing.T) *Bridge {
	t.Helper()
	app, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		t.Fatal(err)
	}
	return New(device.New(app, device.Options{}))
}

func TestAmStartLauncher(t *testing.T) {
	b := bridge(t)
	out, err := b.Run("adb shell am start -n com.demo.app/.Main -a android.intent.action.MAIN -c android.intent.category.LAUNCHER")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !strings.Contains(out, "Starting: Intent") {
		t.Fatalf("out = %q", out)
	}
	if cur, _ := b.Device().CurrentActivity(); cur != pkg+"Main" {
		t.Fatalf("current = %q", cur)
	}
}

func TestAmStartComponentForms(t *testing.T) {
	b := bridge(t)
	// Full class after the slash.
	if _, err := b.Run("am start -n com.demo.app/com.demo.app.Secret"); err != nil {
		t.Fatalf("full form: %v", err)
	}
	if cur, _ := b.Device().CurrentActivity(); cur != pkg+"Secret" {
		t.Fatalf("current = %q", cur)
	}
	// Shorthand .Cls form.
	if _, err := b.Run("am start -n com.demo.app/.Share"); err != nil {
		t.Fatalf("shorthand: %v", err)
	}
	if cur, _ := b.Device().CurrentActivity(); cur != pkg+"Share" {
		t.Fatalf("current = %q", cur)
	}
}

func TestAmStartCrashSurfacesInOutput(t *testing.T) {
	b := bridge(t)
	out, err := b.Run("am start -n com.demo.app/.Account")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !strings.Contains(out, "Error:") || !strings.Contains(out, "token") {
		t.Fatalf("out = %q", out)
	}
}

func TestAmInstrument(t *testing.T) {
	b := bridge(t)
	b.InstallTest("com.demo.app.test", robotium.Script{Name: "t", Ops: []robotium.Op{
		robotium.LaunchMain(),
		robotium.Click(corpus.NavButtonRef("Main", "Detail")),
	}})
	out, err := b.Run("am instrument -w com.demo.app.test android.test.InstrumentationTestRunner")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !strings.Contains(out, "OK (1 test)") {
		t.Fatalf("out = %q", out)
	}
	if cur, _ := b.Device().CurrentActivity(); cur != pkg+"Detail" {
		t.Fatalf("current = %q", cur)
	}
	if _, err := b.Run("am instrument -w not.installed"); err == nil {
		t.Fatal("uninstalled test package: want error")
	}
}

func TestAmInstrumentFailureReported(t *testing.T) {
	b := bridge(t)
	b.InstallTest("t", robotium.Script{Ops: []robotium.Op{
		robotium.LaunchMain(),
		robotium.Click("@id/absent"),
	}})
	out, err := b.Run("am instrument -w t/android.test.InstrumentationTestRunner")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !strings.Contains(out, "INSTRUMENTATION_FAILED") {
		t.Fatalf("out = %q", out)
	}
}

func TestUIAutomatorDump(t *testing.T) {
	b := bridge(t)
	if _, err := b.Run("am start -n com.demo.app/.Main -a android.intent.action.MAIN -c android.intent.category.LAUNCHER"); err != nil {
		t.Fatal(err)
	}
	out, err := b.Run("uiautomator dump")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, want := range []string{"<hierarchy", `activity="com.demo.app.Main"`, "main_btn_detail", `<fragment class="com.demo.app.Home"/>`} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestInputCommands(t *testing.T) {
	b := bridge(t)
	mustRun := func(cmd string) {
		t.Helper()
		if _, err := b.Run(cmd); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
	}
	mustRun("am start -n com.demo.app/.Main -a android.intent.action.MAIN -c android.intent.category.LAUNCHER")
	mustRun("input tap " + corpus.NavButtonRef("Main", "Login"))
	mustRun(`input text ` + corpus.InputRef("Login", "Account") + ` "alice"`)
	mustRun("input tap " + corpus.NavButtonRef("Login", "Account"))
	if cur, _ := b.Device().CurrentActivity(); cur != pkg+"Account" {
		t.Fatalf("current = %q", cur)
	}
	mustRun("input keyevent KEYCODE_BACK")
	if cur, _ := b.Device().CurrentActivity(); cur != pkg+"Login" {
		t.Fatalf("after back = %q", cur)
	}
}

func TestAmBroadcast(t *testing.T) {
	app, err := corpus.BuildApp(&corpus.AppSpec{
		Package:    "com.b",
		Activities: []corpus.ActivitySpec{{Name: "Main", Launcher: true}},
		Receivers: []corpus.ReceiverSpec{{
			Name: "R", Actions: []string{"com.b.PING"},
			Sensitive: []string{"ipc/Binder"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var apis []string
	b := New(device.New(app, device.Options{Monitor: func(e device.SensitiveEvent) {
		apis = append(apis, e.API)
	}}))
	if _, err := b.Run("am start -n com.b/.Main -a android.intent.action.MAIN -c android.intent.category.LAUNCHER"); err != nil {
		t.Fatal(err)
	}
	out, err := b.Run("am broadcast -a com.b.PING")
	if err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	if !strings.Contains(out, "Broadcasting: Intent { act=com.b.PING }") {
		t.Fatalf("out = %q", out)
	}
	if len(apis) != 1 || apis[0] != "ipc/Binder" {
		t.Fatalf("apis = %v", apis)
	}
	if _, err := b.Run("am broadcast"); err == nil {
		t.Error("missing -a: want error")
	}
	if _, err := b.Run("am broadcast -x y"); err == nil {
		t.Error("bad flag: want error")
	}
}

func TestLogcat(t *testing.T) {
	b := bridge(t)
	if _, err := b.Run("am start -n com.demo.app/.Main -a android.intent.action.MAIN -c android.intent.category.LAUNCHER"); err != nil {
		t.Fatal(err)
	}
	out, err := b.Run("logcat -d")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "am start") {
		t.Fatalf("logcat = %q", out)
	}
}

func TestBadCommands(t *testing.T) {
	b := bridge(t)
	for _, cmd := range []string{
		"",
		"reboot",
		"am",
		"am bogus",
		"am start",
		"am start -n",
		"am start -x y",
		"uiautomator",
		"logcat -f x",
		"input",
		"input tap",
		"input keyevent KEYCODE_HOME",
		`input text "unterminated`,
	} {
		if _, err := b.Run(cmd); err == nil {
			t.Errorf("%q: want error", cmd)
		}
	}
}

func TestSplitArgs(t *testing.T) {
	got, err := splitArgs(`am start  -n "com.x/.Y"   -a act`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"am", "start", "-n", "com.x/.Y", "-a", "act"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
