// Package adb exposes the device through the Android Debug Bridge command
// strings the paper's pipeline uses (§VI-A):
//
//	am start -n <COMPONENT> -a android.intent.action.MAIN -c android.intent.category.LAUNCHER
//	am start -n <COMPONENT>
//	am instrument -w <TestPackageName> android.test.InstrumentationTestRunner
//	uiautomator dump
//	logcat [-d]
//	input text <STRING> / input keyevent KEYCODE_BACK / input tap <REF>
//
// The bridge parses these command lines, drives the simulator, and returns
// shell-style output, so harnesses (and the paper's quoted invocations) can
// be replayed literally.
package adb

import (
	"fmt"
	"sort"
	"strings"

	"fragdroid/internal/device"
	"fragdroid/internal/robotium"
)

// Bridge is an ADB connection to one device with an installed app.
type Bridge struct {
	dev *device.Device
	// tests holds instrumentation test packages registered with Install.
	tests map[string]robotium.Script
}

// New returns a bridge for a device.
func New(dev *device.Device) *Bridge {
	return &Bridge{dev: dev, tests: make(map[string]robotium.Script)}
}

// Device exposes the underlying device.
func (b *Bridge) Device() *device.Device { return b.dev }

// InstallTest registers an instrumented test package (the paper packages
// generated Robotium test cases into the app with Ant and installs them).
func (b *Bridge) InstallTest(pkg string, s robotium.Script) {
	b.tests[pkg] = s
}

// Run parses and executes one shell command line, returning its output.
func (b *Bridge) Run(cmdline string) (string, error) {
	args, err := splitArgs(cmdline)
	if err != nil {
		return "", err
	}
	if len(args) == 0 {
		return "", fmt.Errorf("adb: empty command")
	}
	// Accept an optional "adb shell" prefix.
	if args[0] == "adb" {
		args = args[1:]
		if len(args) > 0 && args[0] == "shell" {
			args = args[1:]
		}
	}
	if len(args) == 0 {
		return "", fmt.Errorf("adb: empty shell command")
	}
	switch args[0] {
	case "am":
		return b.am(args[1:])
	case "uiautomator":
		return b.uiautomator(args[1:])
	case "logcat":
		return b.logcat(args[1:])
	case "input":
		return b.input(args[1:])
	default:
		return "", fmt.Errorf("adb: unknown command %q", args[0])
	}
}

// am implements the activity-manager subset.
func (b *Bridge) am(args []string) (string, error) {
	if len(args) == 0 {
		return "", fmt.Errorf("adb: am: missing subcommand")
	}
	switch args[0] {
	case "start":
		return b.amStart(args[1:])
	case "instrument":
		return b.amInstrument(args[1:])
	case "broadcast":
		return b.amBroadcast(args[1:])
	default:
		return "", fmt.Errorf("adb: am: unknown subcommand %q", args[0])
	}
}

// amBroadcast implements `am broadcast -a <action>`.
func (b *Bridge) amBroadcast(args []string) (string, error) {
	var action string
	for i := 0; i < len(args); i++ {
		if args[i] == "-a" {
			i++
			if i >= len(args) {
				return "", fmt.Errorf("adb: am broadcast: -a needs an action")
			}
			action = args[i]
			continue
		}
		return "", fmt.Errorf("adb: am broadcast: unknown flag %q", args[i])
	}
	if action == "" {
		return "", fmt.Errorf("adb: am broadcast: missing -a action")
	}
	if err := b.dev.Broadcast(action); err != nil {
		return "", err
	}
	return fmt.Sprintf("Broadcasting: Intent { act=%s }", action), nil
}

func (b *Bridge) amStart(args []string) (string, error) {
	var component, action, category string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-n":
			i++
			if i >= len(args) {
				return "", fmt.Errorf("adb: am start: -n needs a component")
			}
			component = args[i]
		case "-a":
			i++
			if i >= len(args) {
				return "", fmt.Errorf("adb: am start: -a needs an action")
			}
			action = args[i]
		case "-c":
			i++
			if i >= len(args) {
				return "", fmt.Errorf("adb: am start: -c needs a category")
			}
			category = args[i]
		default:
			return "", fmt.Errorf("adb: am start: unknown flag %q", args[i])
		}
	}
	if component == "" {
		return "", fmt.Errorf("adb: am start: missing -n component")
	}
	// Component may be "pkg/cls" or "pkg/.Cls" shorthand.
	cls := component
	if i := strings.IndexByte(component, '/'); i >= 0 {
		pkg, suffix := component[:i], component[i+1:]
		if strings.HasPrefix(suffix, ".") {
			cls = pkg + suffix
		} else {
			cls = suffix
		}
	}
	var err error
	if action == "android.intent.action.MAIN" && category == "android.intent.category.LAUNCHER" {
		err = b.dev.LaunchMain()
	} else {
		err = b.dev.ForceStart(cls)
	}
	if err != nil {
		if b.dev.Crashed() {
			return fmt.Sprintf("Starting: Intent { cmp=%s }\nError: %s", component, b.dev.CrashReason()), nil
		}
		return "", err
	}
	return fmt.Sprintf("Starting: Intent { cmp=%s }", component), nil
}

func (b *Bridge) amInstrument(args []string) (string, error) {
	var pkg string
	for i := 0; i < len(args); i++ {
		switch {
		case args[i] == "-w":
			// wait flag; ignored (runs are synchronous here)
		case strings.HasPrefix(args[i], "-"):
			return "", fmt.Errorf("adb: am instrument: unknown flag %q", args[i])
		default:
			if pkg == "" {
				pkg = args[i]
			}
		}
	}
	// "pkg android.test.InstrumentationTestRunner" or "pkg/runner".
	if i := strings.IndexByte(pkg, '/'); i >= 0 {
		pkg = pkg[:i]
	}
	s, ok := b.tests[pkg]
	if !ok {
		return "", fmt.Errorf("adb: am instrument: test package %q not installed", pkg)
	}
	res := robotium.Run(b.dev, s, robotium.Options{AutoDismiss: true})
	if res.Err != nil {
		return fmt.Sprintf("INSTRUMENTATION_FAILED: %s (%d ops executed): %v",
			pkg, res.Executed, res.Err), nil
	}
	return fmt.Sprintf("INSTRUMENTATION_RESULT: ok (%d ops)\nOK (1 test)", res.Executed), nil
}

// uiautomator implements `uiautomator dump`: a textual widget-tree dump.
func (b *Bridge) uiautomator(args []string) (string, error) {
	if len(args) == 0 || args[0] != "dump" {
		return "", fmt.Errorf("adb: uiautomator: want 'dump'")
	}
	dump, err := b.dev.Dump()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "<hierarchy activity=%q dialog=%v>\n", dump.Activity, dump.HasDialog)
	for _, w := range dump.Widgets {
		fmt.Fprintf(&sb, "  <node ref=%q class=%q text=%q visible=%v clickable=%v editable=%v fragment=%q/>\n",
			w.Ref, w.Type, w.Text, w.Visible, w.Clickable, w.Editable, w.FromFragment)
	}
	frags := append([]string(nil), dump.FMFragments...)
	sort.Strings(frags)
	for _, f := range frags {
		fmt.Fprintf(&sb, "  <fragment class=%q/>\n", f)
	}
	sb.WriteString("</hierarchy>")
	return sb.String(), nil
}

// logcat returns the device event log; "-d" (dump and exit) is accepted.
func (b *Bridge) logcat(args []string) (string, error) {
	for _, a := range args {
		if a != "-d" {
			return "", fmt.Errorf("adb: logcat: unknown flag %q", a)
		}
	}
	return strings.Join(b.dev.Events(), "\n"), nil
}

// input implements tap/text/keyevent against widget refs (the simulator has
// no pixel coordinates; `input tap` takes a widget reference instead).
func (b *Bridge) input(args []string) (string, error) {
	if len(args) == 0 {
		return "", fmt.Errorf("adb: input: missing subcommand")
	}
	switch args[0] {
	case "tap":
		if len(args) != 2 {
			return "", fmt.Errorf("adb: input tap: want one widget ref")
		}
		return "", b.dev.Click(args[1])
	case "text":
		if len(args) != 3 {
			return "", fmt.Errorf("adb: input text: want <ref> <value>")
		}
		return "", b.dev.EnterText(args[1], args[2])
	case "keyevent":
		if len(args) != 2 || args[1] != "KEYCODE_BACK" {
			return "", fmt.Errorf("adb: input keyevent: only KEYCODE_BACK is supported")
		}
		return "", b.dev.Back()
	default:
		return "", fmt.Errorf("adb: input: unknown subcommand %q", args[0])
	}
}

// splitArgs tokenizes a command line, honouring double quotes.
func splitArgs(s string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inQuote := false
	have := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote:
			if c == '"' {
				inQuote = false
			} else {
				cur.WriteByte(c)
			}
		case c == '"':
			inQuote = true
			have = true
		case c == ' ' || c == '\t':
			if have {
				out = append(out, cur.String())
				cur.Reset()
				have = false
			}
		default:
			cur.WriteByte(c)
			have = true
		}
	}
	if inQuote {
		return nil, fmt.Errorf("adb: unterminated quote in %q", s)
	}
	if have {
		out = append(out, cur.String())
	}
	return out, nil
}
