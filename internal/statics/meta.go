package statics

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Meta is the JSON metadata document the static phase emits (§III: "we
// provide a JSON file that records all view components and the locations they
// appear", plus the counts used by the evolutionary phase).
type Meta struct {
	Package             string            `json:"package"`
	EntryActivity       string            `json:"entryActivity"`
	Activities          []string          `json:"activities"`
	Fragments           []string          `json:"fragments"`
	Widgets             []WidgetLocation  `json:"widgets"`
	Inputs              []InputWidget     `json:"inputs"`
	UsesFragmentManager []string          `json:"usesFragmentManager"`
	Containers          map[string]string `json:"containers,omitempty"`
}

// BuildMeta assembles the metadata document.
func (ex *Extraction) BuildMeta() (*Meta, error) {
	entry, err := ex.App.Manifest.EntryActivity()
	if err != nil {
		return nil, err
	}
	m := &Meta{
		Package:       ex.App.Manifest.Package,
		EntryActivity: entry,
		Activities:    append([]string(nil), ex.EffectiveActivities...),
		Fragments:     append([]string(nil), ex.EffectiveFragments...),
		Inputs:        append([]InputWidget(nil), ex.InputWidgets...),
		Containers:    make(map[string]string),
	}
	var refs []string
	for ref := range ex.ResDeps.ByWidget {
		refs = append(refs, ref)
	}
	sort.Strings(refs)
	for _, ref := range refs {
		m.Widgets = append(m.Widgets, ex.ResDeps.ByWidget[ref]...)
	}
	for a, used := range ex.UsesFragmentManager {
		if used {
			m.UsesFragmentManager = append(m.UsesFragmentManager, a)
		}
	}
	sort.Strings(m.UsesFragmentManager)
	for a, cs := range ex.Containers {
		if len(cs) > 0 {
			m.Containers[a] = cs[0]
		}
	}
	return m, nil
}

// MetaJSON renders the metadata as indented JSON.
func (ex *Extraction) MetaJSON() ([]byte, error) {
	m, err := ex.BuildMeta()
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(m, "", "  ")
}

// InputTemplateJSON renders the discovered input widgets as a JSON document
// for the analyst to fill in (the paper's "file containing resource-IDs of
// all input widgets" that is completed manually in advance).
func (ex *Extraction) InputTemplateJSON() ([]byte, error) {
	return json.MarshalIndent(ex.InputWidgets, "", "  ")
}

// ParseInputValues reads a filled-in input file back into a ref → value map,
// dropping entries the analyst left empty.
func ParseInputValues(data []byte) (map[string]string, error) {
	var ws []InputWidget
	if err := json.Unmarshal(data, &ws); err != nil {
		return nil, fmt.Errorf("statics: parse input file: %w", err)
	}
	out := make(map[string]string)
	for _, w := range ws {
		if w.Ref == "" {
			return nil, fmt.Errorf("statics: input entry with empty ref")
		}
		if w.Value != "" {
			out[w.Ref] = w.Value
		}
	}
	return out, nil
}
