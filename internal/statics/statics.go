// Package statics implements FragDroid's Static Information Extraction phase
// (paper §IV-B and §V). Given a decoded application bundle it produces:
//
//   - the initial Activity & Fragment Transition Model (Algorithm 1),
//     restricted to effective (non-isolated) Activities and Fragments;
//   - the Activity & Fragment dependency relation (Algorithm 2);
//   - the resource dependency that maps widgets to their host Activity or
//     Fragment (Algorithm 3), used by the UI-driving module to identify the
//     current UI state;
//   - the input dependency: the discovered input widgets, to be filled in
//     manually by an analyst, plus the values supplied for this run;
//   - the JSON metadata file recording all view components and the locations
//     they appear (§III).
package statics

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"fragdroid/internal/aftm"
	"fragdroid/internal/apk"
	"fragdroid/internal/callgraph"
	"fragdroid/internal/jdcore"
	"fragdroid/internal/layout"
	"fragdroid/internal/smali"
)

// OwnerKind tells whether a widget belongs to an Activity or a Fragment.
type OwnerKind string

// Owner kinds.
const (
	OwnerActivity OwnerKind = "activity"
	OwnerFragment OwnerKind = "fragment"
)

// WidgetLocation records one view component and the location it appears, the
// unit of the metadata JSON file.
type WidgetLocation struct {
	// Ref is the normalized "@id/name" reference.
	Ref string `json:"ref"`
	// Type is the widget class (Button, EditText, ...).
	Type string `json:"type"`
	// Layout is the layout resource the widget appears in.
	Layout string `json:"layout"`
	// Owner is the class that inflates the layout.
	Owner string `json:"owner"`
	// OwnerKind is the owner's component kind.
	OwnerKind OwnerKind `json:"ownerKind"`
	// Clickable and Input describe interactivity.
	Clickable bool `json:"clickable"`
	Input     bool `json:"input"`
	// InCode reports whether the widget's resource-ID also appears in the
	// owner's code (Algorithm 3's strict both-sides condition).
	InCode bool `json:"inCode"`
}

// ResourceDeps is the output of Algorithm 3: widget → owning component(s).
type ResourceDeps struct {
	// ByWidget maps a normalized widget ref to its locations. A widget may
	// appear in several layouts owned by different components.
	ByWidget map[string][]WidgetLocation
	// ByOwner maps a component class to the widget refs it owns.
	ByOwner map[string][]string
}

// OwnersOf returns the owner classes of a widget ref, sorted, Activities
// before Fragments.
func (r *ResourceDeps) OwnersOf(ref string) []WidgetLocation {
	out := append([]WidgetLocation(nil), r.ByWidget[apk.NormalizeRef(ref)]...)
	sort.SliceStable(out, func(i, j int) bool {
		if (out[i].OwnerKind == OwnerActivity) != (out[j].OwnerKind == OwnerActivity) {
			return out[i].OwnerKind == OwnerActivity
		}
		if out[i].Owner != out[j].Owner {
			return out[i].Owner < out[j].Owner
		}
		return out[i].Layout < out[j].Layout
	})
	return out
}

// IdentifyFragments maps a set of visible widget refs to the Fragment classes
// they belong to, the core of UI-state identification on the Fragment level.
func (r *ResourceDeps) IdentifyFragments(visible []string) []string {
	set := make(map[string]bool)
	for _, ref := range visible {
		for _, loc := range r.ByWidget[apk.NormalizeRef(ref)] {
			if loc.OwnerKind == OwnerFragment {
				set[loc.Owner] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Dependencies is the output of Algorithm 2 plus derived host information.
type Dependencies struct {
	// FragmentsOf maps an Activity to the Fragments it depends on.
	FragmentsOf map[string][]string
	// HostsOf maps a Fragment to the Activities that use it.
	HostsOf map[string][]string
}

// PrimaryHost returns the first (sorted) host of a fragment.
func (d *Dependencies) PrimaryHost(frag string) (string, bool) {
	hs := d.HostsOf[frag]
	if len(hs) == 0 {
		return "", false
	}
	return hs[0], true
}

// InputWidget describes one discovered input control; the analyst fills
// Value, reproducing the paper's manually-completed input interface file.
type InputWidget struct {
	Ref    string    `json:"ref"`
	Type   string    `json:"type"`
	Hint   string    `json:"hint,omitempty"`
	Owner  string    `json:"owner"`
	Kind   OwnerKind `json:"ownerKind"`
	Layout string    `json:"layout"`
	Value  string    `json:"value"`
}

// Extraction bundles every artifact of the static phase.
type Extraction struct {
	App *apk.App
	// java is the decompiled source view. Extract computes it eagerly (the
	// static phase reads it immediately); decoded extractions leave it nil
	// and the Java accessor decompiles on first use — the warm replay path
	// never touches source, so eager decompilation there was pure decode
	// overhead.
	java     *jdcore.Program
	javaOnce sync.Once
	// Model is the initial AFTM.
	Model *aftm.Model
	// EffectiveActivities and EffectiveFragments are the filtered node sets
	// (§IV-B2); these are the "Sum" columns of Table I.
	EffectiveActivities []string
	EffectiveFragments  []string
	// Deps is the Algorithm 2 output.
	Deps *Dependencies
	// ResDeps is the Algorithm 3 output.
	ResDeps *ResourceDeps
	// InputWidgets lists discovered input controls (input dependency).
	InputWidgets []InputWidget
	// UsesFragmentManager records, per Activity, whether the class or its
	// inner classes obtain a FragmentManager (explorer Case 1 trigger and
	// precondition of the reflection mechanism).
	UsesFragmentManager map[string]bool
	// SupportFM records whether the Activity uses the support-library
	// FragmentManager, which selects the reflection flavour (§VI-B).
	SupportFM map[string]bool
	// Containers maps each Activity to the fragment-container refs of the
	// layouts it inflates, needed to construct reflective transactions.
	Containers map[string][]string
	// TxnCommitted marks fragments that some FragmentTransaction in the app
	// adds or replaces (or that a layout declares statically). Only these are
	// candidates for the reflective switch: a fragment that is merely
	// referenced or view-inflated cannot be confirmed as "a real loading"
	// (§VII-B2, the com.mobilemotion.dubsmash limitation).
	TxnCommitted map[string]bool
	// SensitiveSites maps each sensitive API statically found in the code to
	// the effective component classes that invoke it — the static half of
	// the SmartDroid-style targeted exploration (§IX).
	SensitiveSites map[string][]string
	// LayoutsOf maps a component class to the layout names it inflates.
	LayoutsOf map[string][]string
	// graph is the interprocedural whole-program call/transition graph,
	// populated eagerly by Extract and lazily by the Graph accessor for
	// store-loaded extractions (graphBlob holds the encoded form then).
	// The warm replay path never consults the graph, so decoding it on
	// every artifact load would tax the common case for nothing.
	graph     *callgraph.Graph
	graphOnce sync.Once
	graphBlob []byte
	// StaticReach is the attainable-coverage ceiling: reachability with the
	// launcher plus every effective Activity as roots, modelling the
	// explorer's forced empty-Intent starts (§VI-C). Every component or
	// sensitive API the dynamic phase can visit is contained in it.
	StaticReach *callgraph.Reach
	// LauncherReach is launcher-only reachability: what a user reaches by
	// clicking from the entry Activity, without forced starts.
	LauncherReach *callgraph.Reach
}

// Java returns the decompiled source view, decompiling on first use when the
// extraction came from the artifact store (Extract populates it up front).
func (ex *Extraction) Java() *jdcore.Program {
	ex.javaOnce.Do(func() {
		if ex.java == nil {
			ex.java = jdcore.Decompile(ex.App.Program)
		}
	})
	return ex.java
}

// Graph returns the interprocedural whole-program call/transition graph.
// Extract populates it up front; an extraction loaded from the artifact
// store decodes its embedded graph blob on the first call instead, falling
// back to a full rebuild from the program if the blob does not decode (a
// rebuild is always correct — the graph is a deterministic function of the
// app — just slower).
func (ex *Extraction) Graph() *callgraph.Graph {
	ex.graphOnce.Do(func() {
		blob := ex.graphBlob
		ex.graphBlob = nil // decoded (or rebuilt) below; don't pin the bytes
		if ex.graph != nil {
			return
		}
		if g, err := callgraph.Decode(blob, ex.App.Program); err == nil {
			ex.graph = g
			return
		}
		ex.graph = callgraph.Build(ex.App, ex.Java())
	})
	return ex.graph
}

// Extract runs the full static phase on a loaded app.
func Extract(app *apk.App) (*Extraction, error) {
	ex := &Extraction{
		App:                 app,
		java:                jdcore.Decompile(app.Program),
		Model:               aftm.New(),
		UsesFragmentManager: make(map[string]bool),
		SupportFM:           make(map[string]bool),
		Containers:          make(map[string][]string),
		LayoutsOf:           make(map[string][]string),
		TxnCommitted:        make(map[string]bool),
	}

	entry, err := app.Manifest.EntryActivity()
	if err != nil {
		return nil, err
	}

	// Declared activities come from the manifest — this step already excludes
	// intermediate (non-component) classes, per §IV-B2.
	declared := app.Manifest.ActivityNames()

	// Fragment subclasses via the transitive superclass scan.
	allFragments := app.Program.FragmentClasses()

	// Algorithm 2: Activity & Fragment dependency.
	ex.Deps = buildDependencies(app, declared, allFragments)

	// Effective fragments: a fragment is effective if a statement of it
	// occurs in an (declared) activity class, one of its inner classes, or in
	// another effective fragment (computed to a fixpoint), or if a layout
	// declares it statically.
	effFrags := effectiveFragments(app, declared, allFragments)
	ex.EffectiveFragments = effFrags

	// FragmentManager usage, layout inflation, container discovery.
	ex.scanClasses(declared, effFrags)

	// Algorithm 1: build the transition edges on the Java statements.
	if err := ex.buildEdges(declared, effFrags, entry); err != nil {
		return nil, err
	}

	// Remove isolated activities (the paper keeps the entry).
	if err := ex.Model.SetEntry(aftm.ActivityNode(entry)); err != nil {
		return nil, err
	}
	ex.Model.RemoveIsolated()
	ex.EffectiveActivities = ex.Model.Activities()

	// Algorithm 3: resource dependency, restricted to effective components.
	ex.ResDeps = buildResourceDeps(app, ex.LayoutsOf, declared)

	// Input dependency: discovered input widgets.
	ex.InputWidgets = discoverInputs(app, ex.ResDeps)

	// Sensitive-API sites across effective components.
	ex.SensitiveSites = sensitiveSites(ex.Java(), app.Program,
		ex.EffectiveActivities, ex.EffectiveFragments)

	// Whole-program call graph and the two reachability fixpoints: the
	// launcher-only view and the forced-start ceiling.
	ex.graph = callgraph.Build(app, ex.Java())
	ex.LauncherReach = ex.graph.Reach(ex.graph.LauncherRoots())
	ex.StaticReach = ex.graph.Reach(ex.graph.ForcedRoots(ex.EffectiveActivities))

	return ex, nil
}

// sensitiveSites scans the lowered statements of every effective component
// (and its inner classes) for sensitive calls, returning api → owner classes.
func sensitiveSites(java *jdcore.Program, prog *smali.Program, activities, fragments []string) map[string][]string {
	out := make(map[string][]string)
	seen := make(map[string]bool)
	record := func(owner string) {
		for _, cn := range prog.ClassAndInner(owner) {
			jc := java.Class(cn)
			if jc == nil {
				continue
			}
			for _, st := range jc.Statements() {
				if st.Kind != jdcore.StmtSensitiveCall {
					continue
				}
				key := st.API + "|" + owner
				if seen[key] {
					continue
				}
				seen[key] = true
				out[st.API] = append(out[st.API], owner)
			}
		}
	}
	for _, a := range activities {
		record(a)
	}
	for _, f := range fragments {
		record(f)
	}
	for api := range out {
		sort.Strings(out[api])
	}
	return out
}

// refsInClass collects normalized resource refs mentioned by a class's code.
func refsInClass(c *smali.Class) map[string]bool {
	out := make(map[string]bool)
	for _, m := range c.Methods {
		for _, ins := range m.Body {
			for _, a := range ins.Args {
				if strings.HasPrefix(a, "@") {
					out[apk.NormalizeRef(a)] = true
				}
			}
		}
	}
	return out
}

// scanClasses fills UsesFragmentManager, SupportFM, LayoutsOf and Containers.
func (ex *Extraction) scanClasses(activities, fragments []string) {
	prog := ex.App.Program
	record := func(owner string, classes []string) {
		for _, cn := range classes {
			c := prog.Class(cn)
			if c == nil {
				continue
			}
			for _, m := range c.Methods {
				for _, ins := range m.Body {
					switch ins.Op {
					case smali.OpGetFragmentManager:
						ex.UsesFragmentManager[owner] = true
					case smali.OpGetSupportFragmentManager:
						ex.UsesFragmentManager[owner] = true
						ex.SupportFM[owner] = true
					case smali.OpSetContentView:
						if name, ok := layoutName(ins.Args[0]); ok {
							ex.LayoutsOf[owner] = appendUnique(ex.LayoutsOf[owner], name)
						}
					case smali.OpTxnAdd, smali.OpTxnReplace:
						ex.TxnCommitted[ins.Args[1]] = true
					}
				}
			}
		}
	}
	for _, a := range activities {
		record(a, prog.ClassAndInner(a))
	}
	for _, f := range fragments {
		record(f, prog.ClassAndInner(f))
	}
	// Containers: FrameLayouts with IDs in the layouts each activity inflates.
	for _, a := range activities {
		for _, ln := range ex.LayoutsOf[a] {
			l := ex.App.Layouts[ln]
			if l == nil {
				continue
			}
			for _, ref := range l.Containers() {
				ex.Containers[a] = appendUnique(ex.Containers[a], apk.NormalizeRef(ref))
			}
		}
	}
	// Statically declared fragments are FragmentManager-managed too.
	for _, ln := range ex.App.LayoutNames() {
		for _, sf := range ex.App.Layouts[ln].StaticFragments() {
			ex.TxnCommitted[sf] = true
		}
	}
}

func layoutName(ref string) (string, bool) {
	kind, name, err := parseRefKindName(ref)
	if err != nil || kind != "layout" {
		return "", false
	}
	return name, true
}

func parseRefKindName(ref string) (string, string, error) {
	s := strings.TrimPrefix(strings.TrimPrefix(ref, "@+"), "@")
	i := strings.IndexByte(s, '/')
	if i <= 0 || i == len(s)-1 {
		return "", "", fmt.Errorf("statics: malformed ref %q", ref)
	}
	return s[:i], s[i+1:], nil
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// buildDependencies is Algorithm 2: for every declared Activity, walk the
// classes used by the Activity and its inner classes; any used class whose
// inheritance chain contains a Fragment base class joins the relation.
func buildDependencies(app *apk.App, activities, fragments []string) *Dependencies {
	d := &Dependencies{
		FragmentsOf: make(map[string][]string),
		HostsOf:     make(map[string][]string),
	}
	prog := app.Program
	fragSet := make(map[string]bool, len(fragments))
	for _, f := range fragments {
		fragSet[f] = true
	}
	for _, a := range activities {
		seen := make(map[string]bool)
		for _, aClass := range prog.ClassAndInner(a) {
			for _, used := range prog.UsedClasses(aClass) {
				if seen[used] || !fragSet[used] {
					continue
				}
				// Confirm via the superclass chain, as the algorithm does.
				if !prog.IsFragmentClass(used) {
					continue
				}
				seen[used] = true
				d.FragmentsOf[a] = append(d.FragmentsOf[a], used)
				d.HostsOf[used] = append(d.HostsOf[used], a)
			}
		}
		// Static <fragment> declarations in the activity's layouts also bind.
		for _, cn := range prog.ClassAndInner(a) {
			c := prog.Class(cn)
			if c == nil {
				continue
			}
			for _, m := range c.Methods {
				for _, ins := range m.Body {
					if ins.Op != smali.OpSetContentView {
						continue
					}
					name, ok := layoutName(ins.Args[0])
					if !ok {
						continue
					}
					l := app.Layouts[name]
					if l == nil {
						continue
					}
					for _, sf := range l.StaticFragments() {
						if seen[sf] || !fragSet[sf] {
							continue
						}
						seen[sf] = true
						d.FragmentsOf[a] = append(d.FragmentsOf[a], sf)
						d.HostsOf[sf] = append(d.HostsOf[sf], a)
					}
				}
			}
		}
		sort.Strings(d.FragmentsOf[a])
	}
	for f := range d.HostsOf {
		sort.Strings(d.HostsOf[f])
	}
	return d
}

// effectiveFragments filters the fragment subclass list down to fragments
// with a statement in an effective Activity (or reachable fragment), plus
// static layout declarations, computed to a fixpoint (§IV-B2).
func effectiveFragments(app *apk.App, activities, fragments []string) []string {
	prog := app.Program
	fragSet := make(map[string]bool, len(fragments))
	for _, f := range fragments {
		fragSet[f] = true
	}
	eff := make(map[string]bool)

	// Seed: fragments referenced from activities (incl. inner classes) or
	// declared in a layout.
	referencedBy := func(owner string) []string {
		var out []string
		for _, cn := range prog.ClassAndInner(owner) {
			for _, used := range prog.UsedClasses(cn) {
				if fragSet[used] {
					out = append(out, used)
				}
			}
		}
		return out
	}
	for _, a := range activities {
		for _, f := range referencedBy(a) {
			eff[f] = true
		}
	}
	for _, l := range app.Layouts {
		for _, sf := range l.StaticFragments() {
			if fragSet[sf] {
				eff[sf] = true
			}
		}
	}
	// Fixpoint: fragments referenced from effective fragments.
	for changed := true; changed; {
		changed = false
		for f := range eff {
			for _, g := range referencedBy(f) {
				if !eff[g] {
					eff[g] = true
					changed = true
				}
			}
		}
	}
	out := make([]string, 0, len(eff))
	for f := range eff {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// buildEdges is Algorithm 1 run over the lowered Java statements, extended
// with the fragment-transaction statements (the strongest A→F signals) and
// routed through the model's seven-to-three edge merging.
func (ex *Extraction) buildEdges(activities, fragments []string, entry string) error {
	prog := ex.App.Program
	man := ex.App.Manifest
	effFrag := make(map[string]bool, len(fragments))
	for _, f := range fragments {
		effFrag[f] = true
	}
	declared := make(map[string]bool, len(activities))
	for _, a := range activities {
		declared[a] = true
	}
	host := func(f string) (string, bool) { return ex.Deps.PrimaryHost(f) }

	// addFragEdge adds From → F for a fragment statement, honouring the
	// Algorithm-1 condition "if F1 ∈ A0" (the dependency relation). When the
	// source activity is itself a host of the fragment the edge is a direct
	// E2 — a fragment used by several Activities (§V-A) is internal to each
	// of them, so the A → F_o folding of §IV-A must not reroute it to the
	// fragment's first host.
	addFragEdge := func(from aftm.Node, frag, via string) error {
		if !effFrag[frag] {
			return nil
		}
		if from.Kind == aftm.KindActivity {
			if !contains(ex.Deps.FragmentsOf[from.Name], frag) {
				return nil
			}
			_, err := ex.Model.AddEdge(from, aftm.FragmentNode(frag), via)
			return err
		}
		_, err := ex.Model.MergeEdge(from, aftm.FragmentNode(frag), via, host)
		return err
	}

	scan := func(owner aftm.Node, classes []string) error {
		for _, cn := range classes {
			jc := ex.Java().Class(cn)
			if jc == nil {
				continue
			}
			for _, st := range jc.Statements() {
				switch st.Kind {
				case jdcore.StmtNewIntentExplicit, jdcore.StmtSetClass:
					if declared[st.Class2] {
						if _, err := ex.Model.MergeEdge(owner, aftm.ActivityNode(st.Class2), aftm.ViaIntent, host); err != nil {
							return err
						}
					}
				case jdcore.StmtNewIntentAction, jdcore.StmtSetAction:
					if target, ok := man.ActivityForAction(st.Action); ok && declared[target] && target != owner.Name {
						if _, err := ex.Model.MergeEdge(owner, aftm.ActivityNode(target), aftm.ViaAction(st.Action), host); err != nil {
							return err
						}
					}
				case jdcore.StmtNewInstance, jdcore.StmtNewInstanceCall, jdcore.StmtInstanceOf:
					if effFrag[st.Class1] {
						if err := addFragEdge(owner, st.Class1, ""); err != nil {
							return err
						}
					}
				case jdcore.StmtTxnAdd, jdcore.StmtTxnReplace, jdcore.StmtInflateFragmentView:
					if err := addFragEdge(owner, st.Class1, aftm.ViaTransaction); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}

	for _, a := range activities {
		if err := scan(aftm.ActivityNode(a), prog.ClassAndInner(a)); err != nil {
			return err
		}
	}
	for _, f := range fragments {
		if err := scan(aftm.FragmentNode(f), prog.ClassAndInner(f)); err != nil {
			return err
		}
	}
	// Static <fragment> declarations create A → F edges directly.
	for _, a := range activities {
		for _, ln := range ex.LayoutsOf[a] {
			l := ex.App.Layouts[ln]
			if l == nil {
				continue
			}
			for _, sf := range l.StaticFragments() {
				if err := addFragEdge(aftm.ActivityNode(a), sf, aftm.ViaTransaction); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// buildResourceDeps is Algorithm 3. Ownership follows layout inflation: the
// component that inflates a layout owns its widgets; when several components
// inflate one layout, Activities take precedence over Fragments (the
// algorithm's activity-first loop order). InCode records the strict
// both-sides condition of the paper (resource-ID appears in the owner's code
// too).
func buildResourceDeps(app *apk.App, layoutsOf map[string][]string, activities []string) *ResourceDeps {
	rd := &ResourceDeps{
		ByWidget: make(map[string][]WidgetLocation),
		ByOwner:  make(map[string][]string),
	}
	actSet := make(map[string]bool, len(activities))
	for _, a := range activities {
		actSet[a] = true
	}
	// layout -> owners (activities first).
	ownersOfLayout := make(map[string][]ownerRef)
	var ownerClasses []string
	for owner := range layoutsOf {
		ownerClasses = append(ownerClasses, owner)
	}
	sort.Strings(ownerClasses)
	for _, owner := range ownerClasses {
		kind := OwnerFragment
		if actSet[owner] {
			kind = OwnerActivity
		}
		for _, ln := range layoutsOf[owner] {
			ownersOfLayout[ln] = append(ownersOfLayout[ln], ownerRef{owner, kind})
		}
	}
	for ln := range ownersOfLayout {
		sort.SliceStable(ownersOfLayout[ln], func(i, j int) bool {
			oi, oj := ownersOfLayout[ln][i], ownersOfLayout[ln][j]
			if (oi.kind == OwnerActivity) != (oj.kind == OwnerActivity) {
				return oi.kind == OwnerActivity
			}
			return oi.name < oj.name
		})
	}

	codeRefs := make(map[string]map[string]bool) // owner -> refs in code
	for owner := range layoutsOf {
		refs := make(map[string]bool)
		for _, cn := range app.Program.ClassAndInner(owner) {
			c := app.Program.Class(cn)
			if c == nil {
				continue
			}
			for r := range refsInClass(c) {
				refs[r] = true
			}
		}
		codeRefs[owner] = refs
	}

	layoutNames := make([]string, 0, len(app.Layouts))
	for ln := range app.Layouts {
		layoutNames = append(layoutNames, ln)
	}
	sort.Strings(layoutNames)
	for _, ln := range layoutNames {
		owners := ownersOfLayout[ln]
		if len(owners) == 0 {
			continue
		}
		best := owners[0]
		l := app.Layouts[ln]
		l.Walk(func(w *layout.Widget) bool {
			if w.IDRef == "" {
				return true
			}
			typ, clickable, input := w.Type, w.Clickable(), w.Input()
			ref := apk.NormalizeRef(w.IDRef)
			// Rule out non-interaction widgets that never appear in code.
			inCode := codeRefs[best.name][ref]
			if !clickable && !input && !inCode {
				return true
			}
			loc := WidgetLocation{
				Ref:       ref,
				Type:      typ,
				Layout:    ln,
				Owner:     best.name,
				OwnerKind: best.kind,
				Clickable: clickable,
				Input:     input,
				InCode:    inCode,
			}
			rd.ByWidget[ref] = append(rd.ByWidget[ref], loc)
			rd.ByOwner[best.name] = appendUnique(rd.ByOwner[best.name], ref)
			return true
		})
	}
	for owner := range rd.ByOwner {
		sort.Strings(rd.ByOwner[owner])
	}
	return rd
}

type ownerRef struct {
	name string
	kind OwnerKind
}

// discoverInputs lists every input widget with its owning component.
func discoverInputs(app *apk.App, rd *ResourceDeps) []InputWidget {
	var out []InputWidget
	seen := make(map[string]bool)
	var refs []string
	for ref := range rd.ByWidget {
		refs = append(refs, ref)
	}
	sort.Strings(refs)
	for _, ref := range refs {
		for _, loc := range rd.ByWidget[ref] {
			if !loc.Input || seen[ref+"|"+loc.Owner] {
				continue
			}
			seen[ref+"|"+loc.Owner] = true
			hint := ""
			if l := app.Layouts[loc.Layout]; l != nil {
				l.Walk(func(w *layout.Widget) bool {
					if apk.NormalizeRef(w.IDRef) == ref {
						hint = w.Hint
						return false
					}
					return true
				})
			}
			out = append(out, InputWidget{
				Ref:    ref,
				Type:   loc.Type,
				Hint:   hint,
				Owner:  loc.Owner,
				Kind:   loc.OwnerKind,
				Layout: loc.Layout,
			})
		}
	}
	return out
}
