package statics

import (
	"fmt"
	"sort"

	"fragdroid/internal/aftm"
	"fragdroid/internal/apk"
	"fragdroid/internal/binc"
	"fragdroid/internal/callgraph"
)

// The extraction payload is a binc encoding of everything the static phase
// derived from the app. The App is deliberately absent — it is its own
// artifact kind in the store and is reattached by DecodeExtraction — and so
// is the jdcore lowering, which is a cheap deterministic function of the
// program and is recomputed on load. The AFTM travels as its JSON encoding
// (models are small) and the call graph as its own codec's encoding; both
// ride as embedded blobs. Maps are written in sorted key order so the
// payload, and therefore the store checksum, is deterministic.

func encodeStrBoolMap(w *binc.Writer, m map[string]bool) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.Str(k)
		w.Bool(m[k])
	}
}

func decodeStrBoolMap(r *binc.Reader) map[string]bool {
	n := r.Int()
	m := make(map[string]bool, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.Str()
		m[k] = r.Bool()
	}
	return m
}

func encodeStrSliceMap(w *binc.Writer, m map[string][]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.Str(k)
		w.StrSlice(m[k])
	}
}

func decodeStrSliceMap(r *binc.Reader) map[string][]string {
	n := r.Int()
	m := make(map[string][]string, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.Str()
		m[k] = r.StrSlice()
	}
	return m
}

func encodeReach(w *binc.Writer, rc *callgraph.Reach) {
	encodeStrBoolMap(w, rc.Activities)
	encodeStrBoolMap(w, rc.Fragments)
	encodeStrBoolMap(w, rc.Receivers)
	encodeStrBoolMap(w, rc.Methods)
	encodeStrSliceMap(w, rc.APIs)
}

func decodeReach(r *binc.Reader) *callgraph.Reach {
	return &callgraph.Reach{
		Activities: decodeStrBoolMap(r),
		Fragments:  decodeStrBoolMap(r),
		Receivers:  decodeStrBoolMap(r),
		Methods:    decodeStrBoolMap(r),
		APIs:       decodeStrSliceMap(r),
	}
}

func encodeLocation(w *binc.Writer, l WidgetLocation) {
	w.Str(l.Ref)
	w.Str(l.Type)
	w.Str(l.Layout)
	w.Str(l.Owner)
	w.Str(string(l.OwnerKind))
	w.Bool(l.Clickable)
	w.Bool(l.Input)
	w.Bool(l.InCode)
}

func decodeLocation(r *binc.Reader) WidgetLocation {
	l := WidgetLocation{Ref: r.Str(), Type: r.Str(), Layout: r.Str(), Owner: r.Str()}
	l.OwnerKind = OwnerKind(r.Str())
	l.Clickable = r.Bool()
	l.Input = r.Bool()
	l.InCode = r.Bool()
	return l
}

// EncodeExtraction serializes everything the static phase derived from the
// app, so a warm load can skip Extract entirely.
func EncodeExtraction(ex *Extraction) ([]byte, error) {
	model := aftm.EncodeModel(ex.Model)
	graph, err := ex.Graph().Encode()
	if err != nil {
		return nil, fmt.Errorf("statics: encode extraction: %w", err)
	}
	if ex.StaticReach == nil || ex.LauncherReach == nil {
		return nil, fmt.Errorf("statics: encode extraction: missing reach sets")
	}
	w := binc.NewWriter()
	w.Blob(model)
	w.Blob(graph)
	w.StrSlice(ex.EffectiveActivities)
	w.StrSlice(ex.EffectiveFragments)
	deps := ex.Deps
	if deps == nil {
		deps = &Dependencies{}
	}
	encodeStrSliceMap(w, deps.FragmentsOf)
	encodeStrSliceMap(w, deps.HostsOf)
	rd := ex.ResDeps
	if rd == nil {
		rd = &ResourceDeps{}
	}
	{
		keys := make([]string, 0, len(rd.ByWidget))
		for k := range rd.ByWidget {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.Int(len(keys))
		for _, k := range keys {
			w.Str(k)
			locs := rd.ByWidget[k]
			w.Int(len(locs))
			for _, l := range locs {
				encodeLocation(w, l)
			}
		}
	}
	encodeStrSliceMap(w, rd.ByOwner)
	w.Int(len(ex.InputWidgets))
	for _, iw := range ex.InputWidgets {
		w.Str(iw.Ref)
		w.Str(iw.Type)
		w.Str(iw.Hint)
		w.Str(iw.Owner)
		w.Str(string(iw.Kind))
		w.Str(iw.Layout)
		w.Str(iw.Value)
	}
	encodeStrBoolMap(w, ex.UsesFragmentManager)
	encodeStrBoolMap(w, ex.SupportFM)
	encodeStrSliceMap(w, ex.Containers)
	encodeStrBoolMap(w, ex.TxnCommitted)
	encodeStrSliceMap(w, ex.SensitiveSites)
	encodeStrSliceMap(w, ex.LayoutsOf)
	encodeReach(w, ex.StaticReach)
	encodeReach(w, ex.LauncherReach)
	return w.Bytes(), nil
}

// DecodeExtraction reconstructs an Extraction from EncodeExtraction output,
// attached to app (which must be the same bundle the extraction was computed
// from — the artifact store keys both by the same spec). The AFTM is decoded
// from its embedded encoding; the jdcore lowering and the call graph are
// deferred to their accessors' first use (warm replay needs neither), and
// every map comes back make-initialized, mirroring Extract's fields.
func DecodeExtraction(data []byte, app *apk.App) (*Extraction, error) {
	r, err := binc.NewReader(data)
	if err != nil {
		return nil, fmt.Errorf("statics: decode extraction: %w", err)
	}
	modelBlob := r.Blob()
	graphBlob := r.Blob()
	if r.Err() != nil {
		return nil, fmt.Errorf("statics: decode extraction: %w", r.Err())
	}
	model, err := aftm.DecodeModel(modelBlob)
	if err != nil {
		return nil, fmt.Errorf("statics: decode extraction: %w", err)
	}
	ex := &Extraction{
		App:   app,
		Model: model,
		// Copied, not aliased: r.Blob() slices the full payload, and parking
		// an alias would pin every section of it until the graph decodes.
		graphBlob:           append([]byte(nil), graphBlob...),
		EffectiveActivities: r.StrSlice(),
		EffectiveFragments:  r.StrSlice(),
	}
	ex.Deps = &Dependencies{
		FragmentsOf: decodeStrSliceMap(r),
		HostsOf:     decodeStrSliceMap(r),
	}
	ex.ResDeps = &ResourceDeps{ByWidget: make(map[string][]WidgetLocation)}
	if n := r.Int(); n > 0 {
		ex.ResDeps.ByWidget = make(map[string][]WidgetLocation, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			k := r.Str()
			nl := r.Int()
			locs := make([]WidgetLocation, 0, nl)
			for j := 0; j < nl && r.Err() == nil; j++ {
				locs = append(locs, decodeLocation(r))
			}
			ex.ResDeps.ByWidget[k] = locs
		}
	}
	ex.ResDeps.ByOwner = decodeStrSliceMap(r)
	if n := r.Int(); n > 0 && r.Err() == nil {
		ex.InputWidgets = make([]InputWidget, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			iw := InputWidget{Ref: r.Str(), Type: r.Str(), Hint: r.Str(), Owner: r.Str()}
			iw.Kind = OwnerKind(r.Str())
			iw.Layout = r.Str()
			iw.Value = r.Str()
			ex.InputWidgets = append(ex.InputWidgets, iw)
		}
	}
	ex.UsesFragmentManager = decodeStrBoolMap(r)
	ex.SupportFM = decodeStrBoolMap(r)
	ex.Containers = decodeStrSliceMap(r)
	ex.TxnCommitted = decodeStrBoolMap(r)
	ex.SensitiveSites = decodeStrSliceMap(r)
	ex.LayoutsOf = decodeStrSliceMap(r)
	ex.StaticReach = decodeReach(r)
	ex.LauncherReach = decodeReach(r)
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("statics: decode extraction: %w", err)
	}
	return ex, nil
}
