package statics

import (
	"strings"
	"testing"

	"fragdroid/internal/aftm"
	"fragdroid/internal/apk"
	"fragdroid/internal/manifest"
)

// rawApp builds an app straight from sources through the real parsers.
func rawApp(t *testing.T, activities []string, layouts map[string]string, classes map[string]string) *apk.App {
	t.Helper()
	arch := apk.NewArchive()
	mb := manifest.NewBuilder("e")
	for i, a := range activities {
		if i == 0 {
			mb.Launcher(a)
		} else {
			mb.Activity(a)
		}
	}
	man, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := man.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.Put(apk.ManifestPath, data); err != nil {
		t.Fatal(err)
	}
	for name, xml := range layouts {
		if err := arch.Put(apk.LayoutDir+name+".xml", []byte(xml)); err != nil {
			t.Fatal(err)
		}
	}
	for cls, src := range classes {
		p := apk.SmaliDir + strings.ReplaceAll(cls, ".", "/") + ".smali"
		if err := arch.Put(p, []byte(src)); err != nil {
			t.Fatal(err)
		}
	}
	app, err := apk.Load(arch)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return app
}

// An intent to an activity that the manifest never declares creates no edge
// (Algorithm 1's declared-set condition).
func TestUndeclaredIntentTargetCreatesNoEdge(t *testing.T) {
	app := rawApp(t,
		[]string{"e.A"},
		map[string]string{"a": `<LinearLayout id="@+id/a_root"/>`},
		map[string]string{
			"e.A": `
.class Le/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
.end method
.method onGhost()V
    new-intent Le/A; Le/Ghost;
    start-activity
.end method`,
			// Ghost exists as a class but is NOT in the manifest.
			"e.Ghost": `
.class Le/Ghost;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
.end method`,
		})
	ex, err := Extract(app)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Model.HasNode(aftm.ActivityNode("e.Ghost")) {
		t.Fatal("undeclared activity entered the AFTM")
	}
	if len(ex.EffectiveActivities) != 1 {
		t.Fatalf("effective = %v", ex.EffectiveActivities)
	}
}

// An action that the manifest maps back to the same activity produces no
// self edge.
func TestSelfActionCreatesNoEdge(t *testing.T) {
	app := rawApp(t,
		[]string{"e.A", "e.B"},
		map[string]string{"a": `<LinearLayout id="@+id/a_root"/>`},
		map[string]string{
			"e.A": `
.class Le/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
    new-intent-action "android.intent.action.MAIN"
.end method
.method onB()V
    new-intent Le/A; Le/B;
    start-activity
.end method`,
			"e.B": `
.class Le/B;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
.end method`,
		})
	ex, err := Extract(app)
	if err != nil {
		t.Fatal(err)
	}
	// MAIN resolves to e.A itself: no self edge, only the explicit A->B.
	c := ex.Model.Count()
	if c.E1 != 1 {
		t.Fatalf("E1 = %d, edges %v", c.E1, ex.Model.Edges())
	}
}

// A fragment declared statically inside another fragment's layout is
// effective and transaction-committed.
func TestNestedStaticFragmentIsEffective(t *testing.T) {
	app := rawApp(t,
		[]string{"e.A"},
		map[string]string{
			"a":     `<LinearLayout id="@+id/a_root"><FrameLayout id="@+id/c"/></LinearLayout>`,
			"outer": `<LinearLayout id="@+id/o_root"><fragment id="@+id/slot" class="e.Inner"/></LinearLayout>`,
			"inner": `<LinearLayout id="@+id/i_root"/>`,
		},
		map[string]string{
			"e.A": `
.class Le/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
    get-fragment-manager
    begin-transaction
    txn-add @id/c Le/Outer;
    txn-commit
.end method`,
			"e.Outer": `
.class Le/Outer;
.super Landroid/app/Fragment;
.method onCreateView()V
    set-content-view @layout/outer
.end method`,
			"e.Inner": `
.class Le/Inner;
.super Landroid/app/Fragment;
.method onCreateView()V
    set-content-view @layout/inner
.end method`,
		})
	ex, err := Extract(app)
	if err != nil {
		t.Fatal(err)
	}
	foundInner := false
	for _, f := range ex.EffectiveFragments {
		if f == "e.Inner" {
			foundInner = true
		}
	}
	if !foundInner {
		t.Fatalf("nested static fragment not effective: %v", ex.EffectiveFragments)
	}
	if !ex.TxnCommitted["e.Inner"] {
		t.Fatal("nested static fragment not marked transaction-committed")
	}
}
