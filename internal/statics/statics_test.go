package statics

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"fragdroid/internal/aftm"
	"fragdroid/internal/corpus"
)

const pkg = "com.demo.app."

func demoExtraction(t *testing.T) *Extraction {
	t.Helper()
	app, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		t.Fatalf("BuildApp: %v", err)
	}
	ex, err := Extract(app)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	return ex
}

func TestEffectiveActivities(t *testing.T) {
	ex := demoExtraction(t)
	want := []string{
		pkg + "Account", pkg + "Detail", pkg + "Login", pkg + "Main",
		pkg + "Secret", pkg + "Settings", pkg + "Share",
	}
	if !reflect.DeepEqual(ex.EffectiveActivities, want) {
		t.Fatalf("EffectiveActivities = %v\nwant %v", ex.EffectiveActivities, want)
	}
	// The isolated activity was filtered out.
	for _, a := range ex.EffectiveActivities {
		if a == pkg+"Lonely" {
			t.Fatal("isolated activity not filtered")
		}
	}
}

func TestEffectiveFragments(t *testing.T) {
	ex := demoExtraction(t)
	want := []string{
		pkg + "About", pkg + "Ghost", pkg + "Home", pkg + "Lab",
		pkg + "News", pkg + "Promo", pkg + "Recent", pkg + "VIP",
	}
	if !reflect.DeepEqual(ex.EffectiveFragments, want) {
		t.Fatalf("EffectiveFragments = %v\nwant %v", ex.EffectiveFragments, want)
	}
}

func TestAFTMEdges(t *testing.T) {
	ex := demoExtraction(t)
	c := ex.Model.Count()
	if c.E1 != 6 {
		t.Errorf("E1 = %d, want 6\n%v", c.E1, ex.Model.Edges())
	}
	if c.E2 != 8 {
		t.Errorf("E2 = %d, want 8\n%v", c.E2, ex.Model.Edges())
	}
	if c.E3 != 1 {
		t.Errorf("E3 = %d, want 1\n%v", c.E3, ex.Model.Edges())
	}
	entry, ok := ex.Model.Entry()
	if !ok || entry != aftm.ActivityNode(pkg+"Main") {
		t.Fatalf("entry = %v, %v", entry, ok)
	}
	// Spot checks.
	mustEdge := func(from, to aftm.Node, kind aftm.EdgeKind) {
		t.Helper()
		e, ok := ex.Model.EdgeBetween(from, to)
		if !ok || e.Kind != kind {
			t.Errorf("edge %v -> %v: got %+v, %v", from, to, e, ok)
		}
	}
	mustEdge(aftm.ActivityNode(pkg+"Main"), aftm.ActivityNode(pkg+"Detail"), aftm.E1)
	mustEdge(aftm.ActivityNode(pkg+"Main"), aftm.ActivityNode(pkg+"Secret"), aftm.E1)
	mustEdge(aftm.ActivityNode(pkg+"Detail"), aftm.ActivityNode(pkg+"Share"), aftm.E1)
	mustEdge(aftm.ActivityNode(pkg+"Main"), aftm.FragmentNode(pkg+"VIP"), aftm.E2)
	mustEdge(aftm.ActivityNode(pkg+"Settings"), aftm.FragmentNode(pkg+"Lab"), aftm.E2)
	mustEdge(aftm.FragmentNode(pkg+"Home"), aftm.FragmentNode(pkg+"Recent"), aftm.E3)
	// The action edge records its action in Via.
	e, _ := ex.Model.EdgeBetween(aftm.ActivityNode(pkg+"Detail"), aftm.ActivityNode(pkg+"Share"))
	if e.Via != aftm.ViaAction("com.demo.app.SHARE") {
		t.Errorf("action edge Via = %q", e.Via)
	}
}

func TestDependencies(t *testing.T) {
	ex := demoExtraction(t)
	want := map[string][]string{
		pkg + "Main":     {pkg + "Home", pkg + "News", pkg + "Recent", pkg + "VIP"},
		pkg + "Detail":   {pkg + "Promo"},
		pkg + "Settings": {pkg + "About", pkg + "Ghost", pkg + "Lab"},
	}
	for a, frags := range want {
		if got := ex.Deps.FragmentsOf[a]; !reflect.DeepEqual(got, frags) {
			t.Errorf("FragmentsOf[%s] = %v, want %v", a, got, frags)
		}
	}
	if h, ok := ex.Deps.PrimaryHost(pkg + "Promo"); !ok || h != pkg+"Detail" {
		t.Errorf("PrimaryHost(Promo) = %q, %v", h, ok)
	}
	if _, ok := ex.Deps.PrimaryHost(pkg + "Nope"); ok {
		t.Error("PrimaryHost of unknown fragment")
	}
}

func TestFragmentManagerFlags(t *testing.T) {
	ex := demoExtraction(t)
	if !ex.UsesFragmentManager[pkg+"Main"] {
		t.Error("Main must use FragmentManager")
	}
	if !ex.UsesFragmentManager[pkg+"Detail"] {
		t.Error("Detail must use FragmentManager")
	}
	if ex.UsesFragmentManager[pkg+"Settings"] {
		t.Error("Settings must NOT use FragmentManager (inflate/static only)")
	}
	if ex.SupportFM[pkg+"Main"] {
		t.Error("Main marked support FM without using it")
	}
}

func TestContainers(t *testing.T) {
	ex := demoExtraction(t)
	if got := ex.Containers[pkg+"Main"]; len(got) != 1 || got[0] != "@id/main_container" {
		t.Errorf("Containers[Main] = %v", got)
	}
	if got := ex.Containers[pkg+"Settings"]; len(got) != 1 || got[0] != "@id/settings_container" {
		t.Errorf("Containers[Settings] = %v", got)
	}
	if got := ex.Containers[pkg+"Share"]; len(got) != 0 {
		t.Errorf("Containers[Share] = %v", got)
	}
}

func TestResourceDependency(t *testing.T) {
	ex := demoExtraction(t)
	// A widget of Main's layout belongs to Main.
	locs := ex.ResDeps.OwnersOf(corpus.NavButtonRef("Main", "Detail"))
	if len(locs) != 1 || locs[0].Owner != pkg+"Main" || locs[0].OwnerKind != OwnerActivity {
		t.Fatalf("nav button owner = %+v", locs)
	}
	// A fragment-layout widget belongs to the fragment.
	locs = ex.ResDeps.OwnersOf(corpus.SwitchButtonRef("Home", "Recent"))
	if len(locs) != 1 || locs[0].Owner != pkg+"Home" || locs[0].OwnerKind != OwnerFragment {
		t.Fatalf("switch button owner = %+v", locs)
	}
	// State identification: visible widget refs map to fragment classes.
	frags := ex.ResDeps.IdentifyFragments([]string{
		corpus.SwitchButtonRef("Home", "Recent"),
		corpus.NavButtonRef("Main", "Detail"),
	})
	if !reflect.DeepEqual(frags, []string{pkg + "Home"}) {
		t.Fatalf("IdentifyFragments = %v", frags)
	}
	// Plain TextViews never referenced in code are ruled out.
	if locs := ex.ResDeps.OwnersOf("@id/main_title"); len(locs) != 0 {
		t.Errorf("non-interactive widget kept: %+v", locs)
	}
}

func TestInputDiscovery(t *testing.T) {
	ex := demoExtraction(t)
	if len(ex.InputWidgets) != 1 {
		t.Fatalf("InputWidgets = %+v", ex.InputWidgets)
	}
	in := ex.InputWidgets[0]
	if in.Ref != "@id/login_input_account" || in.Owner != pkg+"Login" || in.Type != "EditText" {
		t.Fatalf("input = %+v", in)
	}
	if !strings.Contains(in.Hint, "Account") {
		t.Errorf("hint = %q", in.Hint)
	}
}

func TestInputFileRoundTrip(t *testing.T) {
	ex := demoExtraction(t)
	tmpl, err := ex.InputTemplateJSON()
	if err != nil {
		t.Fatal(err)
	}
	// Analyst fills in the value.
	var ws []InputWidget
	if err := json.Unmarshal(tmpl, &ws); err != nil {
		t.Fatal(err)
	}
	for i := range ws {
		ws[i].Value = "alice"
	}
	filled, err := json.Marshal(ws)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := ParseInputValues(filled)
	if err != nil {
		t.Fatal(err)
	}
	if vals["@id/login_input_account"] != "alice" {
		t.Fatalf("vals = %v", vals)
	}
	// Empty values are dropped.
	vals2, err := ParseInputValues(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals2) != 0 {
		t.Fatalf("unfilled template produced values: %v", vals2)
	}
	if _, err := ParseInputValues([]byte("{")); err == nil {
		t.Error("garbage input file: want error")
	}
}

func TestMetaJSON(t *testing.T) {
	ex := demoExtraction(t)
	data, err := ex.MetaJSON()
	if err != nil {
		t.Fatal(err)
	}
	var m Meta
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("meta not valid JSON: %v", err)
	}
	if m.Package != "com.demo.app" || m.EntryActivity != pkg+"Main" {
		t.Fatalf("meta header = %+v", m)
	}
	if len(m.Activities) != 7 || len(m.Fragments) != 8 {
		t.Fatalf("meta counts = %d/%d", len(m.Activities), len(m.Fragments))
	}
	if len(m.Widgets) == 0 {
		t.Fatal("meta has no widget locations")
	}
	if !reflect.DeepEqual(m.UsesFragmentManager,
		[]string{pkg + "Detail", pkg + "Home", pkg + "Main"}) {
		t.Fatalf("UsesFragmentManager = %v", m.UsesFragmentManager)
	}
	if m.Containers[pkg+"Main"] != "@id/main_container" {
		t.Fatalf("meta containers = %v", m.Containers)
	}
}
