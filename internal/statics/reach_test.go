package statics

import (
	"sort"
	"testing"
)

// TestOwnersOfSorted pins the documented ordering: Activities before
// Fragments, then by owner class.
func TestOwnersOfSorted(t *testing.T) {
	rd := &ResourceDeps{ByWidget: map[string][]WidgetLocation{
		"@id/shared": {
			{Ref: "@id/shared", Owner: "com.ex.ZFrag", OwnerKind: OwnerFragment, Layout: "f_z"},
			{Ref: "@id/shared", Owner: "com.ex.BActivity", OwnerKind: OwnerActivity, Layout: "a_b"},
			{Ref: "@id/shared", Owner: "com.ex.AFrag", OwnerKind: OwnerFragment, Layout: "f_a"},
			{Ref: "@id/shared", Owner: "com.ex.AActivity", OwnerKind: OwnerActivity, Layout: "a_a"},
		},
	}}
	got := rd.OwnersOf("@+id/shared")
	want := []string{"com.ex.AActivity", "com.ex.BActivity", "com.ex.AFrag", "com.ex.ZFrag"}
	if len(got) != len(want) {
		t.Fatalf("OwnersOf returned %d locations, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Owner != w {
			t.Errorf("OwnersOf[%d].Owner = %s, want %s", i, got[i].Owner, w)
		}
	}
	for i, loc := range got[:2] {
		if loc.OwnerKind != OwnerActivity {
			t.Errorf("OwnersOf[%d] should be an activity, got %s", i, loc.OwnerKind)
		}
	}
}

// TestExtractionReach checks that Extract wires the call graph and both
// reachability fixpoints, and that the ceiling is consistent with the
// effective sets.
func TestExtractionReach(t *testing.T) {
	ex := demoExtraction(t)
	if ex.Graph() == nil || ex.StaticReach == nil || ex.LauncherReach == nil {
		t.Fatal("Extract must populate Graph, StaticReach and LauncherReach")
	}
	// Every effective activity is a forced-start root, hence in the ceiling.
	for _, a := range ex.EffectiveActivities {
		if !ex.StaticReach.Activities[a] {
			t.Errorf("effective activity %s missing from StaticReach", a)
		}
	}
	// Launcher-only reach never exceeds the forced-start ceiling.
	for a := range ex.LauncherReach.Activities {
		if !ex.StaticReach.Activities[a] {
			t.Errorf("LauncherReach activity %s missing from StaticReach", a)
		}
	}
	for f := range ex.LauncherReach.Fragments {
		if !ex.StaticReach.Fragments[f] {
			t.Errorf("LauncherReach fragment %s missing from StaticReach", f)
		}
	}
	// Statically reachable APIs cover the effective-component sites.
	static := ex.StaticReach.APIList()
	for api := range ex.SensitiveSites {
		i := sort.SearchStrings(static, api)
		if i >= len(static) || static[i] != api {
			t.Errorf("SensitiveSites API %s missing from StaticReach.APIs", api)
		}
	}
}
