package statics

import (
	"reflect"
	"testing"

	"fragdroid/internal/aftm"
	"fragdroid/internal/corpus"
)

// The §V-A multi-host case: a fragment used by more than one Activity.
func TestMultiHostFragmentDependency(t *testing.T) {
	spec := &corpus.AppSpec{
		Package: "com.multi",
		Activities: []corpus.ActivitySpec{
			{Name: "Main", Launcher: true,
				Wires: []corpus.FragmentWire{{Fragment: "Shared", Kind: corpus.WireTxnOnCreate}}},
			{Name: "Second", SupportFM: true,
				Wires: []corpus.FragmentWire{{Fragment: "Shared", Kind: corpus.WireTxnButton}}},
		},
		Fragments: []corpus.FragmentSpec{{Name: "Shared"}},
		Transition: []corpus.Transition{
			{From: "Main", To: "Second", Kind: corpus.TransButton},
		},
	}
	app, err := corpus.BuildApp(spec)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Extract(app)
	if err != nil {
		t.Fatal(err)
	}
	wantHosts := []string{"com.multi.Main", "com.multi.Second"}
	if got := ex.Deps.HostsOf["com.multi.Shared"]; !reflect.DeepEqual(got, wantHosts) {
		t.Fatalf("HostsOf = %v, want %v", got, wantHosts)
	}
	if h, _ := ex.Deps.PrimaryHost("com.multi.Shared"); h != "com.multi.Main" {
		t.Fatalf("PrimaryHost = %q", h)
	}
	// Both hosts carry an E2 edge to the shared fragment.
	for _, host := range wantHosts {
		if _, ok := ex.Model.EdgeBetween(aftm.ActivityNode(host), aftm.FragmentNode("com.multi.Shared")); !ok {
			t.Errorf("missing E2 edge from %s", host)
		}
	}
	// The support-library flavour is recorded for the reflection template.
	if !ex.SupportFM["com.multi.Second"] {
		t.Error("Second not marked support-FM")
	}
	if ex.SupportFM["com.multi.Main"] {
		t.Error("Main wrongly marked support-FM")
	}
	// One fragment, so effective count is 1 despite two wires.
	if len(ex.EffectiveFragments) != 1 {
		t.Fatalf("EffectiveFragments = %v", ex.EffectiveFragments)
	}
}
