package statics_test

import (
	"reflect"
	"testing"

	"fragdroid/internal/corpus"
	"fragdroid/internal/statics"
)

// TestExtractionCodecRoundTrip checks that DecodeExtraction(EncodeExtraction)
// reproduces every analysis product a consumer can observe, across the demo
// app and the full paper corpus. The lint analyzers, explorer and report
// tables read these fields; any drift between a fresh extraction and its
// decoded twin would silently skew the study metrics a warm cache reports.
func TestExtractionCodecRoundTrip(t *testing.T) {
	specs := []*corpus.AppSpec{corpus.DemoSpec()}
	for _, row := range corpus.PaperRows() {
		specs = append(specs, corpus.PaperSpec(row))
	}
	for _, spec := range specs {
		app, err := corpus.BuildApp(spec)
		if err != nil {
			t.Fatalf("build %s: %v", spec.Package, err)
		}
		want, err := statics.Extract(app)
		if err != nil {
			t.Fatalf("extract %s: %v", spec.Package, err)
		}
		data, err := statics.EncodeExtraction(want)
		if err != nil {
			t.Fatalf("encode %s: %v", spec.Package, err)
		}
		got, err := statics.DecodeExtraction(data, app)
		if err != nil {
			t.Fatalf("decode %s: %v", spec.Package, err)
		}

		if got.App != app {
			t.Errorf("%s: decoded extraction not bound to the given app", spec.Package)
		}
		check := func(field string, g, w any) {
			if !reflect.DeepEqual(g, w) {
				t.Errorf("%s: %s differs after round trip:\ngot:  %+v\nwant: %+v", spec.Package, field, g, w)
			}
		}
		check("EffectiveActivities", got.EffectiveActivities, want.EffectiveActivities)
		check("EffectiveFragments", got.EffectiveFragments, want.EffectiveFragments)
		check("Deps", got.Deps, want.Deps)
		check("ResDeps", got.ResDeps, want.ResDeps)
		check("InputWidgets", got.InputWidgets, want.InputWidgets)
		check("UsesFragmentManager", got.UsesFragmentManager, want.UsesFragmentManager)
		check("SupportFM", got.SupportFM, want.SupportFM)
		check("Containers", got.Containers, want.Containers)
		check("TxnCommitted", got.TxnCommitted, want.TxnCommitted)
		check("SensitiveSites", got.SensitiveSites, want.SensitiveSites)
		check("LayoutsOf", got.LayoutsOf, want.LayoutsOf)
		check("StaticReach", got.StaticReach, want.StaticReach)
		check("LauncherReach", got.LauncherReach, want.LauncherReach)
		check("Model nodes", got.Model.Nodes(), want.Model.Nodes())

		// The call graph is compared through its public surface.
		check("Graph nodes", got.Graph().Nodes(), want.Graph().Nodes())
		check("Graph edges", got.Graph().Edges(), want.Graph().Edges())
		check("Graph launcher", got.Graph().Launcher(), want.Graph().Launcher())
		check("Graph activities", got.Graph().Activities(), want.Graph().Activities())
		check("Graph fragments", got.Graph().Fragments(), want.Graph().Fragments())
		check("Graph receivers", got.Graph().Receivers(), want.Graph().Receivers())
		// The Java view is not stored; the accessor recomputes it on first
		// use and it must agree with a fresh decompilation.
		check("Java class names", got.Java().Names(), want.Java().Names())
	}
}

// TestDecodeExtractionRejectsCorruptPayloads truncates a valid payload at
// every offset: the decoder must error (or, for blob-internal cuts, succeed
// cleanly) but never panic — corrupted store entries become silent rebuilds.
func TestDecodeExtractionRejectsCorruptPayloads(t *testing.T) {
	app, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		t.Fatal(err)
	}
	want, err := statics.Extract(app)
	if err != nil {
		t.Fatal(err)
	}
	valid, err := statics.EncodeExtraction(want)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(valid); cut++ {
		if _, err := statics.DecodeExtraction(valid[:cut], app); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	for i := 0; i < len(valid); i += 3 {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xff
		statics.DecodeExtraction(mut, app)
	}
}
