package ir

import (
	"fmt"

	"fragdroid/internal/apk"
	"fragdroid/internal/binc"
)

// Encode serializes the compile-time tables of a program: strings, classes,
// layout names, method windows, and the flat code slice. Link-time state
// (layout widget indexes, inline-cache slots) is deterministic given the app
// and is rebuilt by Decode, so it never hits disk. Negative indexes are
// stored with a +1 bias because binc carries only unsigned scalars.
func Encode(p *Program) []byte {
	w := binc.NewWriter()
	w.Int(len(p.Strings))
	for _, s := range p.Strings {
		w.Str(s)
	}
	w.Int(int(p.instrSites))
	w.Int(len(p.Classes))
	for i := range p.Classes {
		c := &p.Classes[i]
		w.Str(c.Name)
		w.Uvarint(uint64(c.Super + 1))
		w.Bool(c.IsFragment)
		w.Bool(c.UsesFM)
		w.Bool(c.RequiresArgs)
		w.Bool(c.Framework)
		for _, v := range c.ActLife {
			w.Uvarint(uint64(v + 1))
		}
		for _, v := range c.FragLife {
			w.Uvarint(uint64(v + 1))
		}
		w.Uvarint(uint64(c.OnReceive + 1))
	}
	w.Int(len(p.Layouts))
	for _, li := range p.Layouts {
		w.Str(li.Name)
	}
	w.Int(len(p.Methods))
	for i := range p.Methods {
		m := &p.Methods[i]
		w.Str(m.Name)
		w.Int(int(m.Class))
		w.Int(int(m.End - m.Off))
	}
	w.Int(len(p.Code))
	for i := range p.Code {
		ins := &p.Code[i]
		w.Uvarint(uint64(ins.Op))
		w.Uvarint(uint64(ins.A + 1))
		w.Uvarint(uint64(ins.B + 1))
		w.Uvarint(uint64(ins.C + 1))
	}
	return w.Bytes()
}

// Decode deserializes a compiled program and links it against app. Every
// index is bounds-checked before the program is handed to the interpreter —
// a corrupted payload yields an error (the caller recompiles), never a
// runtime panic.
func Decode(data []byte, app *apk.App) (*Program, error) {
	r, err := binc.NewReader(data)
	if err != nil {
		return nil, err
	}
	p := &Program{}
	ns := r.Int()
	p.Strings = make([]string, 0, ns)
	for i := 0; i < ns; i++ {
		p.Strings = append(p.Strings, r.Str())
	}
	p.instrSites = int32(r.Int())

	// biased reads a +1-biased index, allowing -1.
	biased := func() int32 { return int32(r.Uvarint()) - 1 }

	nc := r.Int()
	p.Classes = make([]Class, nc)
	p.classIdx = make(map[string]int32, nc)
	for i := 0; i < nc; i++ {
		c := &p.Classes[i]
		c.Name = r.Str()
		c.Super = biased()
		c.IsFragment = r.Bool()
		c.UsesFM = r.Bool()
		c.RequiresArgs = r.Bool()
		c.Framework = r.Bool()
		for k := range c.ActLife {
			c.ActLife[k] = biased()
		}
		for k := range c.FragLife {
			c.FragLife[k] = biased()
		}
		c.OnReceive = biased()
		p.classIdx[c.Name] = int32(i)
	}
	nl := r.Int()
	p.Layouts = make([]*LayoutInfo, nl)
	for i := 0; i < nl; i++ {
		p.Layouts[i] = &LayoutInfo{Name: r.Str()}
	}
	nm := r.Int()
	p.Methods = make([]Method, nm)
	off := int32(0)
	for i := 0; i < nm; i++ {
		m := &p.Methods[i]
		m.Name = r.Str()
		m.Class = int32(r.Int())
		m.Off = off
		off += int32(r.Int())
		m.End = off
	}
	ni := r.Int()
	p.Code = make([]Instr, ni)
	for i := 0; i < ni; i++ {
		ins := &p.Code[i]
		ins.Op = Opcode(r.Uvarint())
		ins.A = biased()
		ins.B = biased()
		ins.C = biased()
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	p.link(app)
	return p, nil
}

// validate bounds-checks every decoded index against the tables it refers
// to, plus the structural invariants Compile guarantees.
func (p *Program) validate() error {
	nc, nm, ns := int32(len(p.Classes)), int32(len(p.Methods)), int32(len(p.Strings))
	if p.instrSites < 0 {
		return fmt.Errorf("ir: negative site count")
	}
	for i := range p.Classes {
		c := &p.Classes[i]
		if c.Super < -1 || c.Super >= nc {
			return fmt.Errorf("ir: class %d: super %d out of range", i, c.Super)
		}
		for _, v := range [...]int32{c.ActLife[0], c.ActLife[1], c.ActLife[2], c.FragLife[0], c.FragLife[1], c.FragLife[2], c.OnReceive} {
			if v < -1 || v >= nm {
				return fmt.Errorf("ir: class %d: vtable entry %d out of range", i, v)
			}
		}
	}
	for i := range p.Methods {
		m := &p.Methods[i]
		if m.Class < 0 || m.Class >= nc {
			return fmt.Errorf("ir: method %d: class %d out of range", i, m.Class)
		}
		if m.Off < 0 || m.End < m.Off || m.End > int32(len(p.Code)) {
			return fmt.Errorf("ir: method %d: window [%d,%d) out of range", i, m.Off, m.End)
		}
		c := &p.Classes[m.Class]
		if c.Framework {
			return fmt.Errorf("ir: method %d on framework class %s", i, c.Name)
		}
		if c.methods == nil {
			c.methods = make(map[string]int32)
		}
		if _, dup := c.methods[m.Name]; !dup {
			c.methods[m.Name] = int32(i)
		}
	}
	str := func(v int32) bool { return v >= 0 && v < ns }
	for i := range p.Code {
		ins := &p.Code[i]
		if ins.Op <= opInvalid || ins.Op >= opCount {
			return fmt.Errorf("ir: instr %d: bad opcode %d", i, ins.Op)
		}
		ok := true
		switch ins.Op {
		case OpSetContentView:
			ok = ins.A >= -1 && ins.A < int32(len(p.Layouts)) && str(ins.B)
		case OpSetClickListener:
			ok = str(ins.A) && str(ins.B) && ins.C >= 1 && ins.C <= p.instrSites
		case OpToggleVisible, OpSetText, OpPutExtra, OpRequireInput:
			ok = str(ins.A) && str(ins.B)
		case OpTxnAdd, OpTxnReplace, OpInflateView:
			ok = str(ins.A) && str(ins.B) && ins.C >= -1 && ins.C < nc
		case OpNewIntent, OpNewIntentAction, OpSendBroadcast, OpTxnRemove,
			OpShowDialog, OpShowPopup, OpRequireExtra, OpCrash,
			OpInvokeSensitive, OpLog, OpUnknown:
			ok = str(ins.A)
		}
		if !ok {
			return fmt.Errorf("ir: instr %d (%s): operand out of range", i, ins.Op)
		}
	}
	return nil
}
