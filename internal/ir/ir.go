// Package ir lowers a parsed smali program into a dense, flat instruction
// form the device interpreter dispatches without per-step string matching or
// map lookups. Compilation happens once per app: every instruction becomes a
// fixed-size record with a numeric opcode and operands pre-resolved to
// interned string IDs, class indexes, or layout indexes; lifecycle callbacks
// are resolved into per-class vtables; layouts are indexed by widget ID with
// precomputed visibility paths; and virtual dispatch sites get monomorphic
// inline-cache slots. The compiled Program is immutable after linking (only
// the inline-cache words mutate, atomically), so any number of devices across
// any number of goroutines can execute it concurrently.
//
// The semantics are exactly those of the classic interpreter in
// internal/device/interp.go — including its crash messages byte for byte —
// which the golden transcripts and the differential corpus test pin.
package ir

import (
	"sort"
	"sync/atomic"

	"fragdroid/internal/apk"
	"fragdroid/internal/layout"
	"fragdroid/internal/smali"
)

// Opcode is a numeric instruction opcode. The UI-gated range is contiguous
// so the window check is a pair of compares instead of a map lookup.
type Opcode uint8

const (
	opInvalid Opcode = iota // guards the zero value

	// UI-gated opcodes [OpSetContentView, OpGetSupportFragmentManager]
	// require an attached activity window; executing them in a
	// BroadcastReceiver force-closes the app. The set mirrors the classic
	// interpreter's uiOps table exactly. get-fragment-manager and its
	// support variant stay distinct opcodes because the IllegalStateException
	// message embeds the original smali op string.
	OpSetContentView
	OpSetClickListener
	OpToggleVisible
	OpSetText
	OpBeginTransaction
	OpTxnAdd
	OpTxnReplace
	OpTxnRemove
	OpTxnCommit
	OpInflateView
	OpShowDialog
	OpShowPopup
	OpRequireInput
	OpRequireExtra
	OpFinish
	OpGetFragmentManager
	OpGetSupportFragmentManager

	// Windowless opcodes. Source ops with identical runtime behaviour
	// collapse onto one opcode: new-intent/set-class, new-intent-action/
	// set-action, and the pure allocation ops plus nop.
	OpNewIntent
	OpNewIntentAction
	OpPutExtra
	OpStartActivity
	OpSendBroadcast
	OpPure
	OpCrash
	OpInvokeSensitive
	OpLog
	OpUnknown

	opCount
)

// opNames maps opcodes back to smali source spellings — the UI-gated range
// must match the source op exactly because crash messages embed it. Merged
// opcodes carry a representative name for debugging only.
var opNames = [opCount]string{
	opInvalid:                   "invalid",
	OpSetContentView:            string(smali.OpSetContentView),
	OpSetClickListener:          string(smali.OpSetClickListener),
	OpToggleVisible:             string(smali.OpToggleVisible),
	OpSetText:                   string(smali.OpSetText),
	OpBeginTransaction:          string(smali.OpBeginTransaction),
	OpTxnAdd:                    string(smali.OpTxnAdd),
	OpTxnReplace:                string(smali.OpTxnReplace),
	OpTxnRemove:                 string(smali.OpTxnRemove),
	OpTxnCommit:                 string(smali.OpTxnCommit),
	OpInflateView:               string(smali.OpInflateView),
	OpShowDialog:                string(smali.OpShowDialog),
	OpShowPopup:                 string(smali.OpShowPopup),
	OpRequireInput:              string(smali.OpRequireInput),
	OpRequireExtra:              string(smali.OpRequireExtra),
	OpFinish:                    string(smali.OpFinish),
	OpGetFragmentManager:        string(smali.OpGetFragmentManager),
	OpGetSupportFragmentManager: string(smali.OpGetSupportFragmentManager),
	OpNewIntent:                 string(smali.OpNewIntent),
	OpNewIntentAction:           string(smali.OpNewIntentAction),
	OpPutExtra:                  string(smali.OpPutExtra),
	OpStartActivity:             string(smali.OpStartActivity),
	OpSendBroadcast:             string(smali.OpSendBroadcast),
	OpPure:                      string(smali.OpNop),
	OpCrash:                     string(smali.OpCrash),
	OpInvokeSensitive:           string(smali.OpInvokeSensitive),
	OpLog:                       string(smali.OpLog),
	OpUnknown:                   "unknown",
}

// UIGated reports whether op requires an attached activity window.
func (op Opcode) UIGated() bool {
	return op >= OpSetContentView && op <= OpGetSupportFragmentManager
}

// Name returns the smali source spelling of the opcode.
func (op Opcode) Name() string {
	if op < opCount {
		return opNames[op]
	}
	return "invalid"
}

func (op Opcode) String() string { return op.Name() }

// Instr is one lowered instruction: 16 bytes, stored in one contiguous
// program-wide slice. A and B are operand indexes whose meaning depends on
// the opcode — usually indexes into Program.Strings, pre-resolved and
// interned at compile time. C carries the extra pre-resolved operand: the
// inline-cache site of a set-click-listener, or the class index of a
// txn-add/txn-replace/inflate-view fragment argument (-1 when the class is
// not in the program).
type Instr struct {
	Op      Opcode
	A, B, C int32
}

// Class is one linked class: resolved superclass link, precomputed flags,
// and lifecycle vtables.
type Class struct {
	Name string
	// Super is the next class index method resolution searches, or -1 when
	// the chain terminates (no super, framework super, or missing super —
	// all three end the classic methodOf walk identically).
	Super int32

	// Flags precomputed from the smali program.
	IsFragment   bool
	UsesFM       bool // the class or an inner class obtains a FragmentManager
	RequiresArgs bool
	// Framework marks a class whose name is in a framework namespace even
	// though the program declares it; method resolution never looks at it.
	Framework bool

	// Lifecycle vtables: resolved method indexes (-1 when absent), in
	// onCreate/onStart/onResume and onCreateView/onStart/onResume order.
	ActLife   [3]int32
	FragLife  [3]int32
	OnReceive int32

	// methods maps own declared method names to method indexes; the first
	// declaration wins, matching smali.Class.Method's linear scan.
	methods map[string]int32
}

// Method is a compiled method: a window into Program.Code.
type Method struct {
	Name     string
	Class    int32
	Off, End int32
}

// PathStep is one widget on the root-to-widget path of a WidgetInfo, carrying
// exactly what the visibility walk needs.
type PathStep struct {
	NRef   string // normalized ID ref, "" for anonymous widgets
	Hidden bool
}

// WidgetInfo indexes one addressable widget of a layout: the first pre-order
// widget with its normalized ID, plus the ancestor path for visibility and an
// inline-cache site for its XML onClick handler.
type WidgetInfo struct {
	W    *layout.Widget
	Path []PathStep // root..widget inclusive, in order
	Site int32      // IC site for the XML onClick handler; 0 = none
}

// StaticFragment is a pre-resolved static <fragment> declaration of a layout,
// in pre-order.
type StaticFragment struct {
	Container string
	Class     string
	ClassID   int32 // -1 when the class is not in the program
}

// LayoutInfo is the linked form of one layout resource.
type LayoutInfo struct {
	Name    string
	L       *layout.Layout // nil when the app has no such layout
	Statics []StaticFragment
	ByRef   map[string]*WidgetInfo
}

// cacheSlot is one monomorphic inline cache: packed (classID+1)<<32 |
// (methodIdx+1), zero when empty. Slots are plain atomics so concurrent
// devices sharing the Program race benignly (last store wins; every store is
// a valid resolution for its receiver class).
type cacheSlot struct{ v atomic.Uint64 }

// Program is a compiled app: every method body lowered into one flat Code
// slice, with all derived tables linked against the app. Everything except
// the inline-cache slots is immutable after Compile/Decode returns.
type Program struct {
	Strings []string
	Classes []Class
	Methods []Method
	Code    []Instr
	Layouts []*LayoutInfo // sorted by layout name

	classIdx map[string]int32
	byPtr    map[*layout.Layout]*LayoutInfo
	// instrSites counts inline-cache sites allocated at compile time (site 0
	// is reserved to mean "no cache"); widget onClick sites follow at link.
	instrSites int32
	sites      []cacheSlot
}

// ClassID returns the class index for a dotted name, or -1.
func (p *Program) ClassID(name string) int32 {
	if i, ok := p.classIdx[name]; ok {
		return i
	}
	return -1
}

// Resolve finds the method index for (class, name) by walking the superclass
// chain, mirroring the classic methodOf. The walk is bounded by the class
// count so a cyclic hierarchy cannot hang it.
func (p *Program) Resolve(ci int32, name string) int32 {
	for hops := len(p.Classes); ci >= 0 && hops >= 0; hops-- {
		c := &p.Classes[ci]
		if mi, ok := c.methods[name]; ok {
			return mi
		}
		ci = c.Super
	}
	return -1
}

// ICLoad consults an inline-cache site for a receiver class, returning the
// cached method index or -1 on miss.
func (p *Program) ICLoad(site, ci int32) int32 {
	v := p.sites[site].v.Load()
	if v != 0 && uint32(v>>32) == uint32(ci+1) {
		return int32(uint32(v)) - 1
	}
	return -1
}

// ICStore caches a resolution at a site. Monomorphic: a different receiver
// class simply replaces the previous entry.
func (p *Program) ICStore(site, ci, mi int32) {
	p.sites[site].v.Store(uint64(uint32(ci+1))<<32 | uint64(uint32(mi+1)))
}

// LayoutFor returns the linked info for an installed layout tree, or nil for
// a tree the program was not linked against.
func (p *Program) LayoutFor(l *layout.Layout) *LayoutInfo { return p.byPtr[l] }

// Lifecycle orders, matching the classic interpreter's hoisted arrays.
var (
	actLifecycle  = [...]string{"onCreate", "onStart", "onResume"}
	fragLifecycle = [...]string{"onCreateView", "onStart", "onResume"}
)

// compiler carries the intern tables of one Compile run.
type compiler struct {
	p         *Program
	strIdx    map[string]int32
	layoutIdx map[string]int32
	nextSite  int32
}

func (c *compiler) str(s string) int32 {
	if i, ok := c.strIdx[s]; ok {
		return i
	}
	i := int32(len(c.p.Strings))
	c.p.Strings = append(c.p.Strings, s)
	c.strIdx[s] = i
	return i
}

func (c *compiler) classRef(name string) int32 { return c.p.ClassID(name) }

func (c *compiler) site() int32 {
	s := c.nextSite
	c.nextSite++
	return s
}

// Compile lowers an app's smali program. It is deterministic: classes in
// program insertion order, methods in declaration order, layouts in sorted
// name order, strings interned first-seen — so Encode(Compile(app)) is
// content-addressable.
func Compile(app *apk.App) *Program {
	c := &compiler{
		p:      &Program{},
		strIdx: make(map[string]int32),
		// site 0 is reserved as "no cache".
		nextSite: 1,
	}
	p := c.p
	sp := app.Program
	names := sp.Names()
	p.classIdx = make(map[string]int32, len(names))
	for i, n := range names {
		p.classIdx[n] = int32(i)
	}

	lnames := make([]string, 0, len(app.Layouts))
	for n := range app.Layouts {
		lnames = append(lnames, n)
	}
	sort.Strings(lnames)
	c.layoutIdx = make(map[string]int32, len(lnames))
	p.Layouts = make([]*LayoutInfo, len(lnames))
	for i, n := range lnames {
		c.layoutIdx[n] = int32(i)
		p.Layouts[i] = &LayoutInfo{Name: n}
	}

	p.Classes = make([]Class, len(names))
	for i, name := range names {
		sc := sp.Class(name)
		cls := &p.Classes[i]
		cls.Name = name
		cls.Super = -1
		cls.RequiresArgs = sc.RequiresArgs
		cls.IsFragment = sp.IsFragmentClass(name)
		cls.Framework = smali.FrameworkClass(name)
		if cls.Framework {
			// The classic methodOf refuses framework-named receivers before
			// looking at their methods, so none of this class's code is
			// reachable — don't compile it.
			continue
		}
		if su := sc.Super; su != "" && !smali.FrameworkClass(su) {
			if si, ok := p.classIdx[su]; ok {
				cls.Super = si
			}
		}
		cls.methods = make(map[string]int32, len(sc.Methods))
		for _, m := range sc.Methods {
			mi := int32(len(p.Methods))
			off := int32(len(p.Code))
			for _, ins := range m.Body {
				p.Code = append(p.Code, c.lower(ins))
			}
			p.Methods = append(p.Methods, Method{Name: m.Name, Class: int32(i), Off: off, End: int32(len(p.Code))})
			if _, dup := cls.methods[m.Name]; !dup {
				cls.methods[m.Name] = mi
			}
		}
	}

	// UsesFM mirrors the classic classUsesFM: the class plus its $-inner
	// classes, scanned for FragmentManager ops. The scan looks at smali
	// bodies directly — framework-named declared classes count here even
	// though their methods are never dispatched.
	ownFM := make([]bool, len(names))
	for i, name := range names {
		ownFM[i] = classHasFM(sp.Class(name))
	}
	for i, name := range names {
		uses := ownFM[i]
		if !uses {
			for _, inner := range sp.InnerClasses(name) {
				if ownFM[p.classIdx[inner]] {
					uses = true
					break
				}
			}
		}
		p.Classes[i].UsesFM = uses
	}

	// Lifecycle vtables, resolvable only once every class's method map is in.
	for i := range p.Classes {
		cls := &p.Classes[i]
		for k, n := range actLifecycle {
			cls.ActLife[k] = p.Resolve(int32(i), n)
		}
		for k, n := range fragLifecycle {
			cls.FragLife[k] = p.Resolve(int32(i), n)
		}
		cls.OnReceive = p.Resolve(int32(i), "onReceive")
	}

	p.instrSites = c.nextSite - 1
	p.link(app)
	return p
}

func classHasFM(c *smali.Class) bool {
	if c == nil {
		return false
	}
	for _, m := range c.Methods {
		for _, ins := range m.Body {
			if ins.Op == smali.OpGetFragmentManager || ins.Op == smali.OpGetSupportFragmentManager {
				return true
			}
		}
	}
	return false
}

// lower translates one smali instruction. Raw-versus-normalized operand
// choices follow the classic interpreter's messages exactly (toggle-visible's
// NullPointerException embeds the raw source ref, for example).
func (c *compiler) lower(ins smali.Instr) Instr {
	switch ins.Op {
	case smali.OpSetContentView:
		name := layoutNameOf(ins.Args[0])
		id := int32(-1)
		if i, ok := c.layoutIdx[name]; ok {
			id = i
		}
		return Instr{Op: OpSetContentView, A: id, B: c.str(name)}
	case smali.OpSetClickListener:
		return Instr{Op: OpSetClickListener, A: c.str(apk.NormalizeRef(ins.Args[0])), B: c.str(ins.Args[1]), C: c.site()}
	case smali.OpToggleVisible:
		return Instr{Op: OpToggleVisible, A: c.str(apk.NormalizeRef(ins.Args[0])), B: c.str(ins.Args[0])}
	case smali.OpSetText:
		return Instr{Op: OpSetText, A: c.str(apk.NormalizeRef(ins.Args[0])), B: c.str(ins.Args[1])}
	case smali.OpNewIntent, smali.OpSetClass:
		return Instr{Op: OpNewIntent, A: c.str(ins.Args[1])}
	case smali.OpNewIntentAction, smali.OpSetAction:
		return Instr{Op: OpNewIntentAction, A: c.str(ins.Args[0])}
	case smali.OpPutExtra:
		return Instr{Op: OpPutExtra, A: c.str(ins.Args[0]), B: c.str(ins.Args[1])}
	case smali.OpStartActivity:
		return Instr{Op: OpStartActivity}
	case smali.OpSendBroadcast:
		return Instr{Op: OpSendBroadcast, A: c.str(ins.Args[0])}
	case smali.OpFinish:
		return Instr{Op: OpFinish}
	case smali.OpGetFragmentManager:
		return Instr{Op: OpGetFragmentManager}
	case smali.OpGetSupportFragmentManager:
		return Instr{Op: OpGetSupportFragmentManager}
	case smali.OpBeginTransaction:
		return Instr{Op: OpBeginTransaction}
	case smali.OpTxnAdd:
		return Instr{Op: OpTxnAdd, A: c.str(apk.NormalizeRef(ins.Args[0])), B: c.str(ins.Args[1]), C: c.classRef(ins.Args[1])}
	case smali.OpTxnReplace:
		return Instr{Op: OpTxnReplace, A: c.str(apk.NormalizeRef(ins.Args[0])), B: c.str(ins.Args[1]), C: c.classRef(ins.Args[1])}
	case smali.OpTxnRemove:
		return Instr{Op: OpTxnRemove, A: c.str(ins.Args[0])}
	case smali.OpTxnCommit:
		return Instr{Op: OpTxnCommit}
	case smali.OpInflateView:
		return Instr{Op: OpInflateView, A: c.str(apk.NormalizeRef(ins.Args[0])), B: c.str(ins.Args[1]), C: c.classRef(ins.Args[1])}
	case smali.OpNewInstance, smali.OpInvokeNewIn, smali.OpInstanceOf, smali.OpNop:
		return Instr{Op: OpPure}
	case smali.OpShowDialog:
		return Instr{Op: OpShowDialog, A: c.str(ins.Args[0])}
	case smali.OpShowPopup:
		return Instr{Op: OpShowPopup, A: c.str(ins.Args[0])}
	case smali.OpRequireInput:
		return Instr{Op: OpRequireInput, A: c.str(apk.NormalizeRef(ins.Args[0])), B: c.str(ins.Args[1])}
	case smali.OpRequireExtra:
		return Instr{Op: OpRequireExtra, A: c.str(ins.Args[0])}
	case smali.OpCrash:
		return Instr{Op: OpCrash, A: c.str(ins.Args[0])}
	case smali.OpInvokeSensitive:
		return Instr{Op: OpInvokeSensitive, A: c.str(ins.Args[0])}
	case smali.OpLoadLibrary:
		return Instr{Op: OpInvokeSensitive, A: c.str("shell/loadLibrary")}
	case smali.OpLog:
		return Instr{Op: OpLog, A: c.str(ins.Args[0])}
	default:
		return Instr{Op: OpUnknown, A: c.str(string(ins.Op))}
	}
}

// layoutNameOf strips the "@layout/" prefix of a normalized resource ref,
// duplicating the classic interpreter's helper.
func layoutNameOf(ref string) string {
	s := apk.NormalizeRef(ref)
	const p = "@layout/"
	if len(s) > len(p) && s[:len(p)] == p {
		return s[len(p):]
	}
	return ""
}

// link builds the runtime-only tables against an app: layout widget indexes
// (with visibility paths and onClick cache sites, numbered deterministically
// after the instruction sites) and the inline-cache array. Decode calls it
// too, so none of this state needs to be serialized.
func (p *Program) link(app *apk.App) {
	nsites := p.instrSites + 1 // slot 0 reserved: "no cache"
	p.byPtr = make(map[*layout.Layout]*LayoutInfo, len(p.Layouts))
	for _, li := range p.Layouts {
		l := app.Layouts[li.Name]
		li.L = l
		if l == nil || l.Root == nil {
			continue
		}
		p.byPtr[l] = li
		li.ByRef = make(map[string]*WidgetInfo)
		var path []PathStep
		var walk func(w *layout.Widget)
		walk = func(w *layout.Widget) {
			nref := ""
			if w.IDRef != "" {
				nref = apk.NormalizeRef(w.IDRef)
			}
			path = append(path, PathStep{NRef: nref, Hidden: w.Hidden})
			if w.Type == layout.TypeFragment && w.FragmentClass != "" {
				li.Statics = append(li.Statics, StaticFragment{
					Container: nref, Class: w.FragmentClass, ClassID: p.ClassID(w.FragmentClass),
				})
			}
			if nref != "" {
				if _, dup := li.ByRef[nref]; !dup {
					wi := &WidgetInfo{W: w, Path: append([]PathStep(nil), path...)}
					if w.OnClick != "" {
						wi.Site = nsites
						nsites++
					}
					li.ByRef[nref] = wi
				}
			}
			for _, ch := range w.Children {
				walk(ch)
			}
			path = path[:len(path)-1]
		}
		walk(l.Root)
	}
	p.sites = make([]cacheSlot, nsites)
}
