package ir

import (
	"sync"

	"fragdroid/internal/apk"
)

// The compiled-program registry lives on the apps themselves: each App
// carries one atomically-published cell (apk.App.IRState) holding either a
// parked payload source or the resolved program. Apps are immutable once
// loaded and shared by pointer across devices, sessions and fleets, so the
// cell is shared exactly as widely as the app — and garbage-collected with
// it. (An earlier design used a process-global sync.Map keyed by *apk.App;
// that pinned every app ever loaded for the life of the process, a real leak
// for long-lived static-only consumers that load thousands of apps and never
// execute one.)

// cell is the per-app registry entry. once guards the single resolution:
// whichever goroutine runs it decodes the parked source or compiles, and
// every For caller shares the one program (and its inline-cache array).
type cell struct {
	once sync.Once
	p    *Program
	src  *lazySource
}

// lazySource is a parked provider of an encoded program, resolved by For on
// the app's first execution.
type lazySource struct {
	// load fetches the encoded payload (typically from the artifact store);
	// ok=false means no entry exists.
	load func() ([]byte, bool)
	// hit runs when the payload decoded cleanly; miss runs when there was no
	// usable payload and p had to be compiled instead (the artifact layer
	// uses it to repair the store entry and keep its counters honest).
	hit  func()
	miss func(p *Program)
}

// cellOf returns the app's registry cell, publishing a fresh one on first
// touch. The CAS keeps concurrent first touches converging on one cell.
func cellOf(app *apk.App) *cell {
	slot := app.IRState()
	if v := slot.Load(); v != nil {
		return v.(*cell)
	}
	c := &cell{}
	if slot.CompareAndSwap(nil, c) {
		return c
	}
	return slot.Load().(*cell)
}

// RegisterLazy parks a payload source for an app instead of decoding (or
// compiling) up front: consumers that never execute the app — static-only
// studies, lint runs, source exports — pay nothing, while the first For call
// resolves the source exactly once. A payload that is missing or fails to
// decode falls back to compiling, identical to a cache miss. RegisterLazy
// must happen before the app's first For (the artifact cache calls it inside
// the per-entry build, before the app is handed to any caller); a source
// parked after the cell resolved is ignored.
func RegisterLazy(app *apk.App, load func() ([]byte, bool), onHit func(), onMiss func(*Program)) {
	cellOf(app).src = &lazySource{load: load, hit: onHit, miss: onMiss}
}

// For returns the compiled program for an app: an already registered
// program, a parked lazy payload decoded on this first use, or a fresh
// compilation, in that order.
func For(app *apk.App) *Program {
	c := cellOf(app)
	c.once.Do(func() {
		src := c.src
		c.src = nil // resolved below; don't pin the source's captures
		if src != nil {
			if payload, ok := src.load(); ok {
				if p, err := Decode(payload, app); err == nil {
					if src.hit != nil {
						src.hit()
					}
					c.p = p
					return
				}
			}
			c.p = Compile(app)
			if src.miss != nil {
				src.miss(c.p)
			}
			return
		}
		c.p = Compile(app)
	})
	return c.p
}
