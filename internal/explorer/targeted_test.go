package explorer

import (
	"testing"

	"fragdroid/internal/aftm"
	"fragdroid/internal/statics"
)

func TestPlanForAPI(t *testing.T) {
	ex, err := statics.Extract(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	// media/Camera.startPreview lives in the Promo fragment (drawer-hidden).
	plans := PlanForAPI(ex, "media/Camera.startPreview")
	if len(plans) != 1 {
		t.Fatalf("plans = %+v", plans)
	}
	p := plans[0]
	if p.Site != aftm.FragmentNode(pkg+"Promo") {
		t.Fatalf("site = %v", p.Site)
	}
	if len(p.Path) == 0 {
		t.Fatal("no static path to Promo")
	}
	if p.Path[len(p.Path)-1].To != p.Site {
		t.Fatalf("path ends at %v", p.Path[len(p.Path)-1].To)
	}
	// An API nobody calls has no plans.
	if got := PlanForAPI(ex, "browser/Downloads"); got != nil {
		t.Fatalf("phantom plans: %v", got)
	}
}

func TestExploreTargetTriggersAndHaltsEarly(t *testing.T) {
	ex, err := statics.Extract(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	full, err := ExploreExtracted(ex, fullConfig())
	if err != nil {
		t.Fatal(err)
	}

	ex2, err := statics.Extract(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ExploreTarget(ex2, fullConfig(), "media/Camera.startPreview")
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Triggered {
		t.Fatal("target API not triggered")
	}
	if len(tr.Plans) != 1 {
		t.Fatalf("plans = %+v", tr.Plans)
	}
	// Early halt: the targeted run spends no more (and normally fewer) test
	// cases than full exploration.
	if tr.Result.TestCases > full.TestCases {
		t.Errorf("targeted run used %d cases, full run %d", tr.Result.TestCases, full.TestCases)
	}
}

func TestExploreTargetUnreachableAPI(t *testing.T) {
	ex, err := statics.Extract(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	// VIP's API exists statically but is dynamically unreachable
	// (requires-args reflection failure).
	tr, err := ExploreTarget(ex, fullConfig(), "phone/Configuration.MCC")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Triggered {
		t.Fatal("unreachable API reported triggered")
	}
	if len(tr.Plans) != 1 || tr.Plans[0].Site != aftm.FragmentNode(pkg+"VIP") {
		t.Fatalf("plans = %+v", tr.Plans)
	}
}

func TestExploreTargetValidation(t *testing.T) {
	ex, err := statics.Extract(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExploreTarget(ex, fullConfig(), ""); err == nil {
		t.Fatal("empty API accepted")
	}
}

func TestSensitiveSitesIndex(t *testing.T) {
	ex, err := statics.Extract(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"internet/connect":                pkg + "Main",
		"internet/inet":                   pkg + "Home",
		"system/getInstalledApplications": pkg + "Lab",
		"phone/getDeviceId":               pkg + "Secret",
	}
	for api, owner := range cases {
		sites := ex.SensitiveSites[api]
		if len(sites) != 1 || sites[0] != owner {
			t.Errorf("SensitiveSites[%s] = %v, want [%s]", api, sites, owner)
		}
	}
}
