package explorer

import (
	"reflect"
	"testing"
)

// The BACK-navigation optimization must not change what gets covered, only
// how much work it costs.
func TestBackNavigationPreservesCoverage(t *testing.T) {
	base := exploreDemo(t, fullConfig())

	cfg := fullConfig()
	cfg.UseBackNavigation = true
	opt := exploreDemo(t, cfg)

	if !reflect.DeepEqual(base.VisitedActivities(), opt.VisitedActivities()) {
		t.Fatalf("activities differ:\n%v\n%v",
			base.VisitedActivities(), opt.VisitedActivities())
	}
	if !reflect.DeepEqual(base.VisitedFragments(), opt.VisitedFragments()) {
		t.Fatalf("fragments differ:\n%v\n%v",
			base.VisitedFragments(), opt.VisitedFragments())
	}
	if opt.TestCases > base.TestCases {
		t.Errorf("back navigation used MORE test cases: %d vs %d",
			opt.TestCases, base.TestCases)
	}
	t.Logf("test cases: %d (restart discipline) vs %d (back navigation)",
		base.TestCases, opt.TestCases)
}
