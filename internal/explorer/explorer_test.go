package explorer

import (
	"reflect"
	"testing"

	"fragdroid/internal/aftm"
	"fragdroid/internal/apk"
	"fragdroid/internal/corpus"
)

const pkg = "com.demo.app."

func demoApp(t *testing.T) *apk.App {
	t.Helper()
	app, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// demoInputs provides the analyst-filled input dependency that unlocks the
// Login → Account gate.
func demoInputs() map[string]string {
	return map[string]string{corpus.InputRef("Login", "Account"): "alice"}
}

func exploreDemo(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Explore(demoApp(t), cfg)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	return res
}

func fullConfig() Config {
	cfg := DefaultConfig()
	cfg.Inputs = demoInputs()
	return cfg
}

func TestExploreFullConfig(t *testing.T) {
	res := exploreDemo(t, fullConfig())

	wantActs := []string{
		pkg + "Account", pkg + "Detail", pkg + "Login", pkg + "Main",
		pkg + "Secret", pkg + "Settings", pkg + "Share",
	}
	if got := res.VisitedActivities(); !reflect.DeepEqual(got, wantActs) {
		t.Errorf("VisitedActivities = %v\nwant %v", got, wantActs)
	}

	// Home via launch, Recent via tab click, Promo via drawer click, About
	// via static commit, News via reflection. VIP (requires args), Lab
	// (no FragmentManager), Ghost (never committed) stay unvisited.
	wantFrags := []string{
		pkg + "About", pkg + "Home", pkg + "News", pkg + "Promo", pkg + "Recent",
	}
	if got := res.VisitedFragments(); !reflect.DeepEqual(got, wantFrags) {
		t.Errorf("VisitedFragments = %v\nwant %v", got, wantFrags)
	}

	// Reach methods.
	method := func(n aftm.Node) ReachMethod { return res.Visits[n].Method }
	if m := method(aftm.ActivityNode(pkg + "Main")); m != ReachLaunch {
		t.Errorf("Main reached via %s", m)
	}
	if m := method(aftm.ActivityNode(pkg + "Secret")); m != ReachForced {
		t.Errorf("Secret reached via %s (want forced-start)", m)
	}
	if m := method(aftm.FragmentNode(pkg + "News")); m != ReachReflection {
		t.Errorf("News reached via %s (want reflection)", m)
	}
	if m := method(aftm.FragmentNode(pkg + "Recent")); m != ReachClick {
		t.Errorf("Recent reached via %s (want click)", m)
	}
	if m := method(aftm.ActivityNode(pkg + "Settings")); m != ReachClick {
		t.Errorf("Settings reached via %s (want click through drawer)", m)
	}

	// Fragments-in-visited-activities accounting: all 8 dependent fragments
	// live in visited activities; 5 were visited.
	visited, sum := res.FragmentsInVisitedActivities()
	if visited != 5 || sum != 8 {
		t.Errorf("FragmentsInVisitedActivities = %d/%d, want 5/8", visited, sum)
	}

	// The model learned explicit click edges: the Detail→Settings drawer
	// transition must carry a click Via now.
	e, ok := res.Model.EdgeBetween(aftm.ActivityNode(pkg+"Detail"), aftm.ActivityNode(pkg+"Settings"))
	if !ok {
		t.Fatal("Detail->Settings edge missing from final model")
	}
	if e.Via == aftm.ViaIntent {
		t.Errorf("Detail->Settings Via not refined: %q", e.Via)
	}
	if res.TestCases == 0 || res.Steps == 0 {
		t.Error("no work recorded")
	}
}

func TestExploreWithoutInputsMissesGatedActivity(t *testing.T) {
	cfg := DefaultConfig()
	res := exploreDemo(t, cfg)
	for _, a := range res.VisitedActivities() {
		if a == pkg+"Account" {
			t.Fatal("Account visited without the input dependency (gate broken)")
		}
	}
	// Account was attempted via forced start but crashes on the missing
	// extra, so at least one crash is recorded.
	if res.Crashes == 0 {
		t.Error("no crashes recorded despite forced start of extras-requiring activity")
	}
}

func TestAblationNoReflection(t *testing.T) {
	cfg := fullConfig()
	cfg.UseReflection = false
	res := exploreDemo(t, cfg)
	for _, f := range res.VisitedFragments() {
		if f == pkg+"News" {
			t.Fatal("News visited without reflection (slide drawer should hide it)")
		}
	}
	// Everything else still works.
	want := []string{pkg + "About", pkg + "Home", pkg + "Promo", pkg + "Recent"}
	if got := res.VisitedFragments(); !reflect.DeepEqual(got, want) {
		t.Errorf("VisitedFragments = %v\nwant %v", got, want)
	}
}

func TestAblationNoForcedStart(t *testing.T) {
	cfg := fullConfig()
	cfg.UseForcedStart = false
	res := exploreDemo(t, cfg)
	for _, a := range res.VisitedActivities() {
		if a == pkg+"Secret" {
			t.Fatal("Secret visited without forced start (slide drawer should hide it)")
		}
	}
}

func TestSensitiveCollection(t *testing.T) {
	res := exploreDemo(t, fullConfig())
	usages := res.Collector.Usages()
	byAPI := make(map[string]bool)
	fragAPIs := make(map[string]bool)
	for _, u := range usages {
		byAPI[u.API] = true
		if u.ByFragment {
			fragAPIs[u.API] = true
		}
	}
	// Activity-side APIs.
	for _, api := range []string{"internet/connect", "phone/getDeviceId", "location/requestLocationUpdates"} {
		if !byAPI[api] {
			t.Errorf("missing activity API %s", api)
		}
	}
	// Fragment-side APIs, including the reflection-only News fragment.
	for _, api := range []string{"internet/inet", "storage/sdcard", "media/Camera.startPreview", "view/loadUrl"} {
		if !fragAPIs[api] {
			t.Errorf("missing fragment API %s (got %v)", api, usages)
		}
	}
	// VIP's API must NOT appear: the fragment is unreachable.
	if byAPI["phone/Configuration.MCC"] {
		t.Error("unreachable VIP fragment's API observed")
	}
	// Lab executes at runtime (inflate-view) — its API IS invoked even
	// though the fragment is never credited as visited.
	if !byAPI["system/getInstalledApplications"] {
		t.Error("Lab's API missing despite runtime inflation")
	}
}

func TestBudgetExhaustionStopsCleanly(t *testing.T) {
	cfg := fullConfig()
	cfg.MaxTestCases = 3
	res := exploreDemo(t, cfg)
	if res.TestCases > 3 {
		t.Fatalf("TestCases = %d exceeds budget", res.TestCases)
	}
	// With so few cases only the entry neighbourhood is known.
	if len(res.VisitedActivities()) == 0 {
		t.Fatal("nothing visited at all")
	}
}

func TestRoutesReplayable(t *testing.T) {
	res := exploreDemo(t, fullConfig())
	// Every recorded route must replay to a state containing the node.
	for n, v := range res.Visits {
		d := deviceFor(t, res)
		r := runRoute(t, d, v)
		if r != nil {
			t.Errorf("route to %s fails: %v", n, r)
		}
	}
}

func deviceFor(t *testing.T, res *Result) *deviceHandle {
	t.Helper()
	return &deviceHandle{res: res}
}

// deviceHandle wraps route replay for the test.
type deviceHandle struct{ res *Result }

func runRoute(t *testing.T, h *deviceHandle, v Visit) error {
	t.Helper()
	app := h.res.Extraction.App
	d := newTestDevice(app)
	rr := runScriptOn(d, v.Route)
	if rr != nil {
		return rr
	}
	return verifyNodeOnScreen(d, h.res, v.Node)
}
