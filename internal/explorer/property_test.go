package explorer

import (
	"fmt"
	"reflect"
	"testing"

	"fragdroid/internal/aftm"
	"fragdroid/internal/corpus"
)

// Pipeline-wide properties over seeded random apps: every app the generator
// can produce must explore cleanly and respect the model invariants.
func TestPropertyRandomApps(t *testing.T) {
	const seeds = 40
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			spec := corpus.RandomSpec(fmt.Sprintf("com.rand.s%d", seed), seed)
			app, err := corpus.BuildApp(spec)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			res, err := Explore(app, DefaultConfig())
			if err != nil {
				t.Fatalf("explore: %v", err)
			}

			// Visited ⊆ effective.
			effA := toSet(res.Extraction.EffectiveActivities)
			for _, a := range res.VisitedActivities() {
				if !effA[a] {
					t.Errorf("visited non-effective activity %s", a)
				}
			}
			effF := toSet(res.Extraction.EffectiveFragments)
			for _, f := range res.VisitedFragments() {
				if !effF[f] {
					t.Errorf("visited non-effective fragment %s", f)
				}
			}

			// The entry is always visited.
			entry, err := app.Manifest.EntryActivity()
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := res.Visits[aftm.ActivityNode(entry)]; !ok {
				t.Errorf("entry %s not visited", entry)
			}

			// The evolved model contains at least the static edges.
			staticEdges := len(res.Extraction.Model.Edges())
			finalEdges := len(res.Model.Edges())
			if finalEdges < staticEdges {
				t.Errorf("final model lost edges: %d < %d", finalEdges, staticEdges)
			}

			// Every visited node is marked visited in the model.
			for n := range res.Visits {
				if !res.Model.Visited(n) {
					t.Errorf("visit of %s not marked in model", n)
				}
			}

			// Every first-arrival route replays to a state showing the node.
			for n, v := range res.Visits {
				d := newTestDevice(app)
				if err := runScriptOn(d, v.Route); err != nil {
					t.Errorf("route to %s fails: %v", n, err)
					continue
				}
				if err := verifyNodeOnScreen(d, res, n); err != nil {
					t.Errorf("route to %s lands wrong: %v", n, err)
				}
			}

			// FiVA accounting is internally consistent.
			fv, fs := res.FragmentsInVisitedActivities()
			if fv > fs || fv > len(res.VisitedFragments()) {
				t.Errorf("FiVA %d/%d inconsistent with %d visited fragments",
					fv, fs, len(res.VisitedFragments()))
			}
		})
	}
}

// TestPropertyDeterminism: the same app explored twice yields identical
// results — the whole pipeline is free of hidden nondeterminism.
func TestPropertyDeterminism(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		spec := corpus.RandomSpec(fmt.Sprintf("com.det.s%d", seed), seed)
		app1, err := corpus.BuildApp(spec)
		if err != nil {
			t.Fatal(err)
		}
		app2, err := corpus.BuildApp(spec)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := Explore(app1, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Explore(app2, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1.VisitedActivities(), r2.VisitedActivities()) {
			t.Fatalf("seed %d: activities diverge: %v vs %v",
				seed, r1.VisitedActivities(), r2.VisitedActivities())
		}
		if !reflect.DeepEqual(r1.VisitedFragments(), r2.VisitedFragments()) {
			t.Fatalf("seed %d: fragments diverge", seed)
		}
		if r1.TestCases != r2.TestCases || r1.Steps != r2.Steps {
			t.Fatalf("seed %d: work diverges: %d/%d vs %d/%d",
				seed, r1.TestCases, r1.Steps, r2.TestCases, r2.Steps)
		}
		if !reflect.DeepEqual(r1.Model.Edges(), r2.Model.Edges()) {
			t.Fatalf("seed %d: final models diverge", seed)
		}
	}
}

func toSet(s []string) map[string]bool {
	out := make(map[string]bool, len(s))
	for _, v := range s {
		out[v] = true
	}
	return out
}
