package explorer

import (
	"strings"
	"testing"

	"fragdroid/internal/robotium"
)

func TestCrashReportsAreReplayable(t *testing.T) {
	// Without inputs, the demo app crashes on the forced start of Account
	// (missing the "token" extra).
	res := exploreDemo(t, DefaultConfig())
	if len(res.CrashReports) == 0 {
		t.Fatal("no crash reports despite known crash paths")
	}
	for _, cr := range res.CrashReports {
		if cr.Reason == "" || len(cr.Route.Ops) == 0 {
			t.Fatalf("malformed crash report %+v", cr)
		}
		// Replaying the route reproduces the crash with the same reason.
		d := newTestDevice(res.Extraction.App)
		r := robotium.Run(d, cr.Route, robotium.Options{AutoDismiss: true})
		if !r.Crashed {
			t.Errorf("crash route %q did not reproduce", cr.Reason)
			continue
		}
		if r.CrashReason != cr.Reason {
			t.Errorf("reproduced %q, recorded %q", r.CrashReason, cr.Reason)
		}
	}
	// Distinct reasons are not duplicated.
	seen := make(map[string]bool)
	for _, cr := range res.CrashReports {
		if seen[cr.Reason] {
			t.Errorf("duplicate crash report %q", cr.Reason)
		}
		seen[cr.Reason] = true
	}
	// The known missing-extra crash is among them.
	found := false
	for r := range seen {
		if strings.Contains(r, "token") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing-extra crash not reported: %v", seen)
	}
}
