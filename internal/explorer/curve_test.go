package explorer

import "testing"

func TestCoverageCurve(t *testing.T) {
	res := exploreDemo(t, fullConfig())
	if len(res.Curve) < 2 {
		t.Fatalf("curve too short: %v", res.Curve)
	}
	// Monotone in every dimension.
	for i := 1; i < len(res.Curve); i++ {
		prev, cur := res.Curve[i-1], res.Curve[i]
		if cur.TestCase <= prev.TestCase {
			t.Errorf("test cases not increasing: %v -> %v", prev, cur)
		}
		if cur.Activities < prev.Activities || cur.Fragments < prev.Fragments {
			t.Errorf("coverage regressed: %v -> %v", prev, cur)
		}
	}
	// The final point agrees with the result totals.
	last := res.Curve[len(res.Curve)-1]
	if last.TestCase != res.TestCases {
		t.Errorf("last point at case %d, run had %d", last.TestCase, res.TestCases)
	}
	if last.Activities != len(res.VisitedActivities()) ||
		last.Fragments != len(res.VisitedFragments()) {
		t.Errorf("last point %+v disagrees with totals %d/%d",
			last, len(res.VisitedActivities()), len(res.VisitedFragments()))
	}
	// The first point is the launch neighbourhood, not the end state: the
	// curve genuinely grows.
	first := res.Curve[0]
	if first.Activities == last.Activities && first.Fragments == last.Fragments {
		t.Errorf("curve is flat: %v", res.Curve)
	}
}
