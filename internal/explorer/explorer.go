// Package explorer implements FragDroid's Evolutionary Test Case Generation
// phase (paper §VI): the UI transition queue maintained breadth-first over
// the AFTM, Robotium test-case generation (including the reflection fallback
// for hidden fragments), UI driving with the three arrival cases of §VI-A,
// continuous AFTM updates, and the §VI-C termination condition with the
// second loop of forced empty-Intent activity starts.
package explorer

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"fragdroid/internal/aftm"
	"fragdroid/internal/apk"
	"fragdroid/internal/device"
	"fragdroid/internal/inputgen"
	"fragdroid/internal/robotium"
	"fragdroid/internal/sensitive"
	"fragdroid/internal/session"
	"fragdroid/internal/statics"
)

// Config tunes an exploration run.
type Config struct {
	// UseReflection enables the Java-reflection fragment switching of §VI-A
	// Case 1/2 (ablation A1 turns it off).
	UseReflection bool
	// UseForcedStart enables the §VI-C second loop that force-starts
	// unvisited Activities with empty Intents (ablation A2 turns it off).
	UseForcedStart bool
	// Inputs is the analyst-provided input dependency: widget ref → value.
	Inputs map[string]string
	// InputGen optionally derives values for widgets the input file does not
	// cover, e.g. inputgen.Heuristic keyed on widget hints (the §VIII
	// input-generation extension). Inputs entries take precedence.
	InputGen inputgen.Generator
	// DefaultInput fills input widgets with no provided value ("abc"-style
	// random text in the paper). Empty keeps fields untouched.
	DefaultInput string
	// MaxTestCases bounds the number of generated-and-executed test cases
	// (each fresh instrumentation run counts one). Zero means 600.
	MaxTestCases int
	// UseBackNavigation lets the UI driver press BACK after a cross-activity
	// transition and continue clicking if that restores the interface,
	// instead of always killing and replaying (§VI-A Case 3 specifies the
	// kill-and-restart discipline; this engineering optimization trades
	// paper fidelity for fewer test cases and is off by default).
	UseBackNavigation bool
	// Observer receives the run's structured trace events (nil disables
	// tracing; the transcript and counters are produced regardless).
	Observer session.Observer
	// Snapshots, when set, lets the session resume route replays from
	// memoized device snapshots of executed prefixes instead of re-executing
	// them from launch. Behavior is identical either way; nil disables.
	Snapshots *session.SnapshotMemo
	// Seeds are compiled route scripts (statically lifted UI paths from
	// internal/paths) executed right after the launch test case and before
	// frontier exploration. Each seed runs as one budgeted test case; its
	// arrival feeds the normal evolutionary bookkeeping, so near-miss seeds
	// still prime the queue (and their prefixes the snapshot memo). Empty
	// leaves the run byte-identical to an unseeded one.
	Seeds []robotium.Script
	// Devices sets the in-process device fleet size. Values above 1 run
	// Devices-1 warming devices alongside the main exploration loop: each
	// newly enqueued interface is replayed and probe-expanded on a private
	// device and the resulting snapshots published through the shared memo,
	// so the sequential main loop — still the single source of truth for
	// every decision, counter, and transcript line — finds its work
	// pre-executed. Results are bit-identical for any fleet size. Zero or
	// one disables the fleet; warming requires Snapshots.
	Devices int

	// haltOnAPI stops the run as soon as the named sensitive API is observed
	// (set by ExploreTarget).
	haltOnAPI string
}

// DefaultConfig is the full FragDroid configuration.
func DefaultConfig() Config {
	return Config{
		UseReflection:  true,
		UseForcedStart: true,
		DefaultInput:   "test123",
	}
}

// ReachMethod records how a node was first reached (Table-I-style analysis
// and the queue items' "way of reaching a certain interface").
type ReachMethod string

// Reach methods.
const (
	ReachLaunch     ReachMethod = "launch"
	ReachClick      ReachMethod = "click"
	ReachReflection ReachMethod = "reflection"
	ReachForced     ReachMethod = "forced-start"
	// ReachSeed marks arrival via a statically compiled route seed
	// (directed exploration).
	ReachSeed ReachMethod = "seed"
)

// Visit records the first arrival at a node.
type Visit struct {
	Node   aftm.Node
	Method ReachMethod
	// Route is the operation list that reaches the node from a fresh start.
	Route robotium.Script
}

// Result is the outcome of an exploration.
type Result struct {
	// Extraction is the static-phase output the run was based on.
	Extraction *statics.Extraction
	// Model is the final, evolved AFTM with visited marks.
	Model *aftm.Model
	// Visits maps each visited node to its first-arrival record.
	Visits map[aftm.Node]Visit
	// Collector holds the sensitive-API observations of the whole run.
	Collector *sensitive.Collector
	// InitialPlan is the UI transition queue generated from the static AFTM
	// before any test case ran (§VI-B queue generation).
	InitialPlan []PlannedItem
	// Curve records cumulative coverage after each executed test case — the
	// data behind a coverage-vs-budget figure. Points are appended only when
	// coverage changes, plus a final point at the last test case.
	Curve []CurvePoint
	// CrashReports lists the distinct force-closes found during exploration,
	// each with a replayable route — FragDroid as a fault finder ("detecting
	// security information, such as sensitive APIs and potential
	// vulnerabilities", §X).
	CrashReports []CrashReport
	// Stats carries the session counters (TestCases, Steps, Crashes,
	// Replays, ReflectionAttempts, ForcedStarts, …) promoted as fields.
	session.Stats
	// Transcript is a human-readable run log.
	Transcript []string
}

// VisitedActivities returns the visited activity classes, sorted.
func (r *Result) VisitedActivities() []string {
	return r.visitedOf(aftm.KindActivity)
}

// VisitedFragments returns the visited fragment classes, sorted.
func (r *Result) VisitedFragments() []string {
	return r.visitedOf(aftm.KindFragment)
}

func (r *Result) visitedOf(k aftm.NodeKind) []string {
	var out []string
	for n := range r.Visits {
		if n.Kind == k {
			out = append(out, n.Name)
		}
	}
	sort.Strings(out)
	return out
}

// FragmentsInVisitedActivities computes the third column group of Table I:
// the fragments whose (Algorithm 2) host activities were visited, and how
// many of those were themselves visited.
func (r *Result) FragmentsInVisitedActivities() (visited, sum int) {
	visitedActs := make(map[string]bool)
	for n := range r.Visits {
		if n.Kind == aftm.KindActivity {
			visitedActs[n.Name] = true
		}
	}
	inVisited := make(map[string]bool)
	for a, frags := range r.Extraction.Deps.FragmentsOf {
		if !visitedActs[a] {
			continue
		}
		for _, f := range frags {
			inVisited[f] = true
		}
	}
	for f := range inVisited {
		sum++
		if _, ok := r.Visits[aftm.FragmentNode(f)]; ok {
			visited++
		}
	}
	return visited, sum
}

// engine is the run state: the AFTM evolution and queue discipline,
// implemented as a session.Strategy. All harness mechanics (budget, devices,
// crash triage, curve, transcript) live in the session the drive loop binds
// in Init; the evolutionary loop of §VI-C is expressed as the Propose phase
// machine below.
type engine struct {
	app *apk.App
	ex  *statics.Extraction
	cfg Config
	s   *session.Session
	// fleet runs the warming devices; nil when disabled (Devices <= 1).
	fleet *session.Fleet

	model  *aftm.Model
	visits map[aftm.Node]Visit

	// hints maps input-widget refs to their hint text (for InputGen).
	hints map[string]string
	// explored marks interfaces whose widgets were all clicked. Keyed on the
	// iface value itself — it is a small comparable struct, so map lookups
	// and state comparisons need no key-string allocation.
	explored map[iface]bool
	// reflected marks activities whose reflection items were generated.
	reflected map[string]bool
	// worklist holds interfaces awaiting Case 3 exploration.
	worklist []workItem

	// plan is the §VI-B initial queue, generated in Init.
	plan []PlannedItem
	// entry is the manifest entry activity (for the launch-failure error).
	entry string
	// launch is the entry test case every route grows from.
	launch robotium.Script

	// Propose phase-machine state: the current phase, the round counter, and
	// the round's progress flag (§VI-C termination: queue empty and AFTM
	// stable). launchRan records that the launch test case actually executed.
	phase      int
	round      int
	progressed bool
	launchRan  bool
	// seedIdx is the next cfg.Seeds entry to propose (phaseSeeds).
	seedIdx int
}

// Propose phases of the evolutionary loop.
const (
	phaseLaunch = iota
	phaseSeeds
	phaseDrain
	phaseForced
	phaseRoundEnd
	phaseDone
)

// CrashReport is one distinct force-close with a route that reproduces it.
type CrashReport = session.CrashReport

// CurvePoint is one sample of the coverage curve.
type CurvePoint = session.CurvePoint

// workItem is the paper's UI-queue item: the way of reaching an interface,
// start and target, and the operation list from start to target.
type workItem struct {
	method ReachMethod
	target iface
	route  robotium.Script
}

// iface identifies a fragment-level UI state: the activity, the credited
// fragments on screen, and a digest of the visible clickable controls.
// Including the control digest makes a revealed navigation drawer a distinct
// UI state (Challenge 2 / Figure 2: the hidden slide menu "is the only
// bridge" to further fragments), so its menu entries get their own
// exploration pass.
type iface struct {
	activity  string
	fragments string // sorted, comma-joined
	widgets   string // digest of visible clickable refs
}

func (i iface) String() string {
	if i.fragments == "" {
		return i.activity
	}
	return i.activity + "{" + i.fragments + "}"
}

// Explore runs the full FragDroid pipeline on a loaded app.
func Explore(app *apk.App, cfg Config) (*Result, error) {
	ex, err := statics.Extract(app)
	if err != nil {
		return nil, err
	}
	return ExploreExtracted(ex, cfg)
}

// ExploreExtracted runs the dynamic phase on an existing static extraction:
// it constructs the engine as a session.Strategy and lets the generic drive
// loop run it, then re-attaches the explorer-specific riches (the evolved
// model, visit routes, the initial plan) the generic Outcome cannot carry.
func ExploreExtracted(ex *statics.Extraction, cfg Config) (*Result, error) {
	if cfg.MaxTestCases == 0 {
		cfg.MaxTestCases = 600
	}
	e := NewStrategy(ex, cfg)
	out, err := session.Drive(ex.App, e, session.Harness{
		Budget:    cfg.MaxTestCases,
		HaltOnAPI: cfg.haltOnAPI,
		Observer:  cfg.Observer,
		Snapshots: cfg.Snapshots,
		Devices:   cfg.Devices,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Extraction:   ex,
		InitialPlan:  e.plan,
		Model:        e.model,
		Visits:       e.visits,
		Collector:    out.Collector,
		Stats:        out.Stats,
		Curve:        out.Curve,
		CrashReports: out.CrashReports,
		Transcript:   out.Transcript,
	}, nil
}

// NewStrategy returns the FragDroid explorer as a session.Strategy, ready
// for session.Drive. Callers that want the full explorer Result should use
// ExploreExtracted; the strategy form serves the generic bake-off harness.
func NewStrategy(ex *statics.Extraction, cfg Config) *engine {
	return &engine{
		app:       ex.App,
		ex:        ex,
		cfg:       cfg,
		model:     ex.Model.Clone(),
		visits:    make(map[aftm.Node]Visit),
		hints:     make(map[string]string),
		explored:  make(map[iface]bool),
		reflected: make(map[string]bool),
		launch:    robotium.Script{Name: "launch", Ops: []robotium.Op{robotium.LaunchMain()}},
	}
}

// Name implements session.Strategy.
func (e *engine) Name() string { return "explorer" }

// SessionOptions implements session.Strategy: the explorer runs with
// auto-dismiss, crash triage, and curve sampling on.
func (e *engine) SessionOptions(h session.Harness) session.Options {
	return session.Options{
		Budget:        h.Budget,
		HaltOnAPI:     h.HaltOnAPI,
		AutoDismiss:   true,
		TriageCrashes: true,
		Observer:      h.Observer,
		Coverage:      e.coverage,
		Snapshots:     h.Snapshots,
	}
}

// Init binds the run context, resolves the input hints, and generates the
// §VI-B initial queue from the static AFTM.
func (e *engine) Init(ctx *session.DriveContext) error {
	e.s = ctx.Session
	e.fleet = ctx.Fleet
	for _, w := range e.ex.InputWidgets {
		e.hints[w.Ref] = w.Hint
	}
	e.plan = PlanQueue(e.ex.Model)
	for _, item := range e.plan {
		e.s.Notef("queue item %s", item)
	}
	entry, err := e.app.Manifest.EntryActivity()
	if err != nil {
		return err
	}
	e.entry = entry
	return nil
}

// coverage feeds the session's curve sampler with the cumulative visited
// counts.
func (e *engine) coverage() (acts, frags int) {
	for n := range e.visits {
		if n.Kind == aftm.KindActivity {
			acts++
		} else {
			frags++
		}
	}
	return acts, frags
}

// identifyFragments maps a dump to the credited fragment classes: fragments
// the FragmentManager confirms AND the resource dependency can identify from
// visible widgets (fragments with no identifiable widgets are trusted from
// the FragmentManager alone). Fragments loaded without a FragmentManager are
// never credited — FragDroid "cannot determine whether the Fragment is a
// real loading" (§VII-B2).
func (e *engine) identifyFragments(dump device.UIDump) []string {
	byRes := make(map[string]bool)
	for _, f := range e.ex.ResDeps.IdentifyFragments(dump.VisibleRefs()) {
		byRes[f] = true
	}
	var out []string
	for _, f := range dump.FMFragments {
		if byRes[f] || len(e.ex.ResDeps.ByOwner[f]) == 0 {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

func (e *engine) observe(d *device.Device) (iface, device.UIDump, error) {
	dump, err := d.Dump()
	if err != nil {
		return iface{}, dump, err
	}
	frags := e.identifyFragments(dump)
	h := fnv.New64a()
	for _, ref := range dump.ClickableRefs() {
		_, _ = h.Write([]byte(ref))
		_, _ = h.Write([]byte{0})
	}
	return iface{
		activity:  dump.Activity,
		fragments: strings.Join(frags, ","),
		widgets:   fmt.Sprintf("%x", h.Sum64()),
	}, dump, nil
}

// visit marks a node visited (Case 1/2 bookkeeping), recording the first
// route that reached it and enqueuing nothing by itself.
func (e *engine) visit(n aftm.Node, method ReachMethod, route robotium.Script) bool {
	e.model.Visit(n)
	if _, seen := e.visits[n]; seen {
		return false
	}
	e.visits[n] = Visit{Node: n, Method: method, Route: route}
	e.s.Trace(session.Event{Kind: session.KindVisit, Node: n.String(),
		Method: string(method), Script: route.Name, Ops: len(route.Ops),
		Msg: fmt.Sprintf("visited %s via %s (%d ops)", n, method, len(route.Ops))})
	return true
}

// arrive processes a freshly observed interface: it credits unvisited nodes
// (Cases 1 and 2) and enqueues the interface for Case 3 exploration if new.
func (e *engine) arrive(st iface, method ReachMethod, route robotium.Script) {
	actNode := aftm.ActivityNode(st.activity)
	if e.model.HasNode(actNode) || e.app.Manifest.HasActivity(st.activity) {
		e.visit(actNode, method, route)
	}
	if st.fragments != "" {
		for _, f := range strings.Split(st.fragments, ",") {
			e.visit(aftm.FragmentNode(f), method, route)
		}
	}
	if !e.explored[st] {
		item := workItem{method: method, target: st, route: route}
		e.worklist = append(e.worklist, item)
		e.submitWarm(item)
	}
}

// Propose is the evolutionary loop of §VI-C as a phase machine: the initial
// launch, breadth-first interface exploration (one run-form unit per queue
// item), the forced-start second loop, and rounds repeated until the queue
// is empty and the AFTM stops changing.
func (e *engine) Propose() (session.TestCase, bool) {
	for {
		switch e.phase {
		case phaseLaunch:
			e.phase = phaseSeeds
			e.round = 1
			return session.TestCase{Script: e.launch, Purpose: session.PurposeLaunch}, true
		case phaseSeeds:
			// Directed seeding: replay the statically compiled routes before
			// any frontier work; arrivals enter the normal queue discipline.
			for e.launchRan && e.seedIdx < len(e.cfg.Seeds) && !e.s.Exhausted() {
				sc := e.cfg.Seeds[e.seedIdx]
				e.seedIdx++
				return session.TestCase{Script: sc, Purpose: session.PurposeSeed}, true
			}
			e.phase = phaseDrain
		case phaseDrain:
			if !e.launchRan {
				// The launch test case never executed (budget exhausted
				// before it); Finish surfaces the failure.
				e.phase = phaseDone
				return session.TestCase{}, false
			}
			for len(e.worklist) > 0 && !e.s.Exhausted() {
				item := e.worklist[0]
				e.worklist = e.worklist[1:]
				if e.explored[item.target] {
					continue
				}
				e.explored[item.target] = true
				e.progressed = true
				return session.TestCase{Run: func() error {
					e.s.Notef("explore interface %s (reached via %s)", item.target, item.method)
					e.exploreInterface(item)
					return nil
				}}, true
			}
			e.phase = phaseForced
		case phaseForced:
			e.phase = phaseRoundEnd
			if e.cfg.UseForcedStart && !e.s.Exhausted() {
				return session.TestCase{Run: func() error {
					if e.forcedStartPass() {
						e.progressed = true
					}
					return nil
				}}, true
			}
		case phaseRoundEnd:
			if !e.progressed || e.s.Exhausted() {
				e.s.Notef("terminated after round %d: queue empty and AFTM stable (test cases: %d)", e.round, e.s.Stats().TestCases)
				e.phase = phaseDone
				return session.TestCase{}, false
			}
			e.round++
			e.progressed = false
			e.phase = phaseDrain
		default:
			return session.TestCase{}, false
		}
	}
}

// Observe handles the script-form proposals: the launch test case and the
// directed route seeds (interface exploration runs as self-driven units).
func (e *engine) Observe(tc session.TestCase, d *device.Device, res robotium.Result) error {
	if tc.Purpose == session.PurposeSeed {
		// A failed seed is a near miss, not an error: the frontier phases
		// pick up from whatever prefix the replay established.
		if res.Err != nil {
			e.s.Notef("seed %s failed at %q: %v", tc.Script.Name, res.FailedOp, res.Err)
			return nil
		}
		st, _, err := e.observe(d)
		if err != nil {
			return nil
		}
		e.arrive(st, ReachSeed, tc.Script)
		return nil
	}
	e.launchRan = true
	if res.Err != nil {
		e.s.Notef("entry launch failed: %v", res.Err)
		return fmt.Errorf("explorer: cannot launch entry %s: %w", e.entry, res.Err)
	}
	st, _, err := e.observe(d)
	if err != nil {
		return err
	}
	e.arrive(st, ReachLaunch, tc.Script)
	return nil
}

// Finish fills the generic outcome with the visited component sets.
func (e *engine) Finish(out *session.Outcome) error {
	if !e.launchRan {
		return errors.New("explorer: test-case budget exhausted before launch")
	}
	for n := range e.visits {
		if n.Kind == aftm.KindActivity {
			out.VisitedActivities = append(out.VisitedActivities, n.Name)
		} else {
			out.VisitedFragments = append(out.VisitedFragments, n.Name)
		}
	}
	sort.Strings(out.VisitedActivities)
	sort.Strings(out.VisitedFragments)
	return nil
}

// replayTo re-provisions a device and replays a route, verifying arrival.
func (e *engine) replayTo(item workItem) (*device.Device, bool) {
	d, res, ok := e.s.RunScript(item.route, session.PurposeReplay)
	if !ok {
		return nil, false
	}
	if res.Err != nil {
		e.s.Notef("replay to %s failed at %q: %v", item.target, res.FailedOp, res.Err)
		return nil, false
	}
	st, _, err := e.observe(d)
	if err != nil {
		e.s.Notef("replay to %s: observe failed: %v", item.target, err)
		return nil, false
	}
	if st != item.target {
		e.s.Notef("replay diverged: wanted %s, got %s", item.target, st)
		return nil, false
	}
	return d, true
}

// inputValue resolves the value for an input widget: the analyst input file
// first, then the input generator keyed on the widget's hint (§VIII
// extension), then the default filler.
func (e *engine) inputValue(ref string) string {
	if val, ok := e.cfg.Inputs[ref]; ok && val != "" {
		return val
	}
	if e.cfg.InputGen != nil {
		if val, ok := e.cfg.InputGen.Generate(ref, e.hints[ref]); ok {
			return val
		}
	}
	return e.cfg.DefaultInput
}

// exploreInterface is §VI-A Case 3: on a (re)visited interface, complete the
// input fields and click every clickable control top-to-bottom; each click
// that changes the interface is followed by a restart-and-replay so the
// remaining widgets still get clicked. New activities and fragments found on
// the way trigger Cases 1 and 2. Afterwards, reflection items are generated
// for the activity's unvisited dependent fragments.
func (e *engine) exploreInterface(item workItem) {
	memo := e.cfg.Snapshots
	d, ok := e.replayTo(item)
	if !ok {
		return
	}
	dump, err := d.Dump()
	if err != nil {
		return
	}
	if dump.HasDialog {
		if err := d.DismissDialog(); err == nil {
			dump, _ = d.Dump()
		}
	}
	clickables := dump.ClickableRefs()
	e.s.Notef("interface %s: %d clickable widgets", item.target, len(clickables))

	fresh := false // d currently sits at the target interface
	// pristine tracks whether d's state is exactly what auto-dismissed
	// execution of item.route produces (the explicit dismiss above matches
	// robotium's pre-op auto-dismiss, so a dismissed arrival still counts).
	// Only then is the state after fills+click the state executing
	// route++fills++click would produce, so only then may a probe result be
	// memoized under that op list — or fast-forwarded from a memo entry.
	pristine := true
	for _, ref := range clickables {
		if fresh {
			var ok bool
			d, ok = e.replayTo(item)
			if !ok {
				return
			}
			fresh = false
			pristine = true
		}
		cur, preDump, err := e.observe(d)
		if err != nil || cur != item.target {
			return
		}
		// Compute the fill operations once and apply exactly those, so the
		// recorded route replays the same values even with a stateful
		// generator (inputgen.Dictionary rotates candidates per call).
		fillOps := e.fillOps(preDump)
		ownerFrag := widgetFragment(preDump, ref)
		// probeOps is the op list the probe below stands for; its snapshot
		// is keyed here and consumed when the enqueued child interface is
		// later replayed (or, on a warm memo, consumed right now).
		probeOps := make([]robotium.Op, 0, len(item.route.Ops)+len(fillOps)+1)
		probeOps = append(probeOps, item.route.Ops...)
		probeOps = append(probeOps, fillOps...)
		probeOps = append(probeOps, robotium.Click(ref))
		storable := memo != nil && pristine && !preDump.HasDialog

		if storable {
			// Fast path: the probe's outcome is already memoized (a warming
			// device or a previous process executed it). Fast-forward the
			// device — a memoized entry implies the fills and the click all
			// succeeded without crashing, so only the success events are due.
			if snap, n, _ := memo.LongestPrefix(e.app, true, probeOps); snap != nil && n == len(probeOps) && d.Advance(snap) == nil {
				for _, op := range fillOps {
					e.s.Trace(session.Event{Kind: session.KindInputFill, Ref: op.Ref, Value: op.Value})
				}
				e.s.AddSnapshot(1, 1, 0)
				pristine = false
				after, _, err := e.observe(d)
				if err != nil {
					fresh = true
					continue
				}
				e.afterClick(item, ref, ownerFrag, fillOps, d, after, &fresh)
				continue
			}
		}
		filled := true
		for _, op := range fillOps {
			ev := session.Event{Kind: session.KindInputFill, Ref: op.Ref, Value: op.Value}
			if err := d.EnterText(op.Ref, op.Value); err != nil {
				filled = false
				ev.Err = err.Error()
				ev.Msg = fmt.Sprintf("fill %s: %v", op.Ref, err)
			}
			e.s.Trace(ev)
		}
		// A dialog raised between the fills and the click would be
		// auto-dismissed by script execution but intercepts a direct click —
		// the states diverge, so such a probe must not be memoized.
		storable = storable && filled && !d.HasDialog()
		if err := d.Click(ref); err != nil {
			e.s.Notef("click %s: %v", ref, err)
			pristine = false
			continue
		}
		if d.Crashed() {
			// Case 3: the app crashed — restart and continue clicking.
			e.s.Notef("click %s crashed the app: %s", ref, d.CrashReason())
			e.s.MarkCrash(d.CrashReason(),
				item.route.Append("crash_"+ref, append(fillOps, robotium.Click(ref))...))
			fresh = true
			pristine = false
			continue
		}
		if storable {
			e.s.AddEvictions(memo.Store(e.app, true, probeOps, d))
		}
		pristine = false
		after, _, err := e.observe(d)
		if err != nil {
			fresh = true
			continue
		}
		e.afterClick(item, ref, ownerFrag, fillOps, d, after, &fresh)
	}

	e.reflectionItems(item)
}

// afterClick handles a successful, non-crashing click's outcome: unchanged
// interfaces are skipped, changed ones update the model and enqueue the new
// state, and BACK navigation optionally keeps the session alive.
func (e *engine) afterClick(item workItem, ref, ownerFrag string, fillOps []robotium.Op, d *device.Device, after iface, fresh *bool) {
	if after == item.target {
		// Interface unchanged (or a popup was handled): move on.
		return
	}
	// The interface changed: record transitions and the new state, then
	// kill and restart for the remaining widgets.
	route := item.route.Append("reach_"+ref, append(fillOps, robotium.Click(ref))...)
	e.recordTransition(item.target, ownerFrag, after, ref)
	e.arrive(after, ReachClick, route)
	*fresh = true
	// Optional optimization: if BACK restores the interface, keep the
	// session instead of replaying from scratch.
	if e.cfg.UseBackNavigation && after.activity != item.target.activity {
		if err := d.Back(); err == nil {
			if back, _, err := e.observe(d); err == nil && back == item.target {
				*fresh = false
			}
		}
	}
}

// submitWarm hands a freshly enqueued interface to the warming fleet. A nil
// fleet drops the task, so the call is free with the fleet disabled.
func (e *engine) submitWarm(item workItem) {
	if e.fleet == nil {
		return
	}
	e.fleet.Submit(func() { e.warmItem(item) })
}

// warmItem pre-executes a queued interface on a private, monitor-less device
// and publishes the results through the shared snapshot memo: the full route
// snapshot (consumed by the main loop's replay), and — when the input
// configuration is stateless — one probe snapshot per clickable widget
// (consumed by the main loop's Case 3 pass via its Advance fast path). The
// warming device has no monitor and no log hook, so nothing is observed
// here; the journal captured inside each snapshot re-emits through the main
// session's device when the snapshot is restored, which is the only place an
// observation is due. Every stored state is exactly what auto-dismissed
// script execution of its op list produces, so first-capture-wins in the
// memo keeps results identical no matter who wins the race.
func (e *engine) warmItem(item workItem) {
	memo := e.cfg.Snapshots
	if memo == nil {
		return
	}
	d := device.New(e.app, device.Options{})
	resume := 0
	if snap, n, _ := memo.LongestPrefix(e.app, true, item.route.Ops); snap != nil && d.Restore(snap) == nil {
		resume = n
	}
	if resume < len(item.route.Ops) {
		res := robotium.Run(d, item.route, robotium.Options{AutoDismiss: true, Resume: resume})
		if res.Err != nil || res.Crashed {
			return
		}
		memo.Store(e.app, true, item.route.Ops, d)
	}
	// Probe expansion requires replaying the exact fills the main loop will
	// apply; a stateful input generator rotates values per call and must
	// only ever be driven by the main loop, so warming stops at the route.
	if e.cfg.InputGen != nil {
		return
	}
	if d.HasDialog() {
		if d.DismissDialog() != nil {
			return
		}
	}
	dump, err := d.Dump()
	if err != nil || dump.HasDialog {
		return
	}
	fillOps := e.fillOps(dump)
	base := d.Snapshot()
	for _, ref := range dump.ClickableRefs() {
		p := device.New(e.app, device.Options{})
		if p.Restore(base) != nil {
			return
		}
		filled := true
		for _, op := range fillOps {
			if p.EnterText(op.Ref, op.Value) != nil {
				filled = false
				break
			}
		}
		// The same divergence guards as the main loop's probe pass: a failed
		// fill, a dialog raised before the click, a failed click, or a crash
		// all disqualify the state from being memoized under the op list.
		if !filled || p.HasDialog() {
			continue
		}
		if p.Click(ref) != nil || p.Crashed() {
			continue
		}
		probeOps := make([]robotium.Op, 0, len(item.route.Ops)+len(fillOps)+1)
		probeOps = append(probeOps, item.route.Ops...)
		probeOps = append(probeOps, fillOps...)
		probeOps = append(probeOps, robotium.Click(ref))
		memo.Store(e.app, true, probeOps, p)
	}
}

// widgetFragment finds which fragment (if any) owned the clicked widget.
func widgetFragment(dump device.UIDump, ref string) string {
	for _, w := range dump.Widgets {
		if w.Ref == ref {
			return w.FromFragment
		}
	}
	return ""
}

// fillOps renders the input fills for an interface as script operations, so
// recorded routes replay the same values fillInputs applied.
func (e *engine) fillOps(dump device.UIDump) []robotium.Op {
	var ops []robotium.Op
	for _, eref := range dump.EditableRefs() {
		if val := e.inputValue(eref); val != "" {
			ops = append(ops, robotium.EnterText(eref, val))
		}
	}
	return ops
}

// recordTransition updates the AFTM with an observed transition (the
// evolutionary model update).
func (e *engine) recordTransition(from iface, ownerFrag string, to iface, ref string) {
	host := func(f string) (string, bool) { return e.ex.Deps.PrimaryHost(f) }
	via := aftm.ViaClick(ref)

	src := aftm.ActivityNode(from.activity)
	if ownerFrag != "" {
		src = aftm.FragmentNode(ownerFrag)
	}
	if to.activity != from.activity {
		if _, err := e.model.MergeEdge(src, aftm.ActivityNode(to.activity), via, host); err != nil {
			e.s.Notef("model update %s -> %s: %v", src, to.activity, err)
		}
	}
	// Fragment arrivals: edge from the click source to each newly shown
	// fragment of the destination interface.
	if to.fragments == "" {
		return
	}
	prev := make(map[string]bool)
	if from.fragments != "" && to.activity == from.activity {
		for _, f := range strings.Split(from.fragments, ",") {
			prev[f] = true
		}
	}
	for _, f := range strings.Split(to.fragments, ",") {
		if prev[f] {
			continue
		}
		fromNode := src
		if to.activity != from.activity {
			// Cross-activity arrival: the fragment edge belongs to the new
			// host activity (A → F_i after merging).
			fromNode = aftm.ActivityNode(to.activity)
		}
		if fromNode == aftm.FragmentNode(f) {
			continue
		}
		if fromNode.Kind == aftm.KindActivity && fromNode.Name == to.activity {
			// The fragment was observed on this very activity's screen:
			// a direct E2, regardless of the fragment's other hosts.
			if _, err := e.model.AddEdge(fromNode, aftm.FragmentNode(f), via); err != nil {
				e.s.Notef("model update %s -> F:%s: %v", fromNode, f, err)
			}
			continue
		}
		if _, err := e.model.MergeEdge(fromNode, aftm.FragmentNode(f), via, host); err != nil {
			e.s.Notef("model update %s -> F:%s: %v", fromNode, f, err)
		}
	}
}

// reflectionItems is §VI-A Case 1's second half: for an activity that uses a
// FragmentManager, one item per dependent unvisited fragment, reached with
// the Java reflection mechanism. A successful explicit click found earlier
// has priority (the fragment would already be visited).
func (e *engine) reflectionItems(item workItem) {
	if !e.cfg.UseReflection {
		return
	}
	act := item.target.activity
	if e.reflected[act] {
		return
	}
	e.reflected[act] = true
	if !e.ex.UsesFragmentManager[act] {
		return
	}
	containers := e.ex.Containers[act]
	if len(containers) == 0 {
		return
	}
	for _, frag := range e.ex.Deps.FragmentsOf[act] {
		if _, seen := e.visits[aftm.FragmentNode(frag)]; seen {
			continue
		}
		// Only FragmentTransaction-switched fragments have a reflective
		// switch template; merely referenced or view-inflated fragments
		// cannot be confirmed as real loadings (§VII-B2).
		if !e.ex.TxnCommitted[frag] {
			e.s.Notef("reflection skipped for %s: no FragmentTransaction switches it", frag)
			continue
		}
		if e.s.Exhausted() {
			return
		}
		// Try each container of the activity's layouts until one accepts the
		// reflective transaction (the paper constructs the switch "with the
		// Fragment container's resource-ID"; multi-pane activities have more
		// than one candidate).
		for _, container := range containers {
			route := item.route.Append("reflect_"+frag, robotium.Reflect(frag, container))
			d, res, ok := e.s.RunScript(route, session.PurposeReflection)
			if !ok {
				return
			}
			if res.Err != nil {
				e.s.Trace(session.Event{Kind: session.KindReflectionAttempt,
					Fragment: frag, Activity: act, Container: container, Err: res.Err.Error(),
					Msg: fmt.Sprintf("reflection to %s in %s via %s failed: %v", frag, act, container, res.Err)})
				continue
			}
			st, _, err := e.observe(d)
			if err != nil {
				continue
			}
			credited := false
			for _, f := range strings.Split(st.fragments, ",") {
				if f == frag {
					credited = true
				}
			}
			if !credited {
				e.s.Trace(session.Event{Kind: session.KindReflectionAttempt,
					Fragment: frag, Activity: act, Container: container,
					Err: "not confirmed by instrumentation",
					Msg: fmt.Sprintf("reflection to %s in %s not confirmed by instrumentation", frag, act)})
				continue
			}
			// The reflective transaction committed into this activity's own
			// container: a direct E2.
			if _, err := e.model.AddEdge(aftm.ActivityNode(act), aftm.FragmentNode(frag), aftm.ViaReflection); err != nil {
				e.s.Notef("model update reflect %s: %v", frag, err)
			}
			e.s.Trace(session.Event{Kind: session.KindReflectionAttempt,
				Fragment: frag, Activity: act, Container: container})
			e.arrive(st, ReachReflection, route)
			break
		}
	}
}

// forcedStartPass is the §VI-C second loop: every still-unvisited effective
// Activity is invoked through an empty Intent against the MAIN-patched
// manifest; successful starts are processed like normal arrivals. It reports
// whether anything new was visited or enqueued.
func (e *engine) forcedStartPass() bool {
	progressed := false
	for _, n := range e.model.Unvisited(aftm.KindActivity) {
		if e.s.Exhausted() {
			break
		}
		script := robotium.Script{
			Name: "force_" + n.Name,
			Ops:  []robotium.Op{robotium.ForceStart(n.Name)},
		}
		d, res, ok := e.s.RunScript(script, session.PurposeForcedStart)
		if !ok {
			break
		}
		if res.Err != nil {
			e.s.Trace(session.Event{Kind: session.KindForcedStart, Activity: n.Name,
				Err: res.Err.Error(), Reason: res.CrashReason,
				Msg: fmt.Sprintf("forced start of %s failed: %v (%s)", n.Name, res.Err, res.CrashReason)})
			continue
		}
		st, _, err := e.observe(d)
		if err != nil {
			continue
		}
		e.s.Trace(session.Event{Kind: session.KindForcedStart, Activity: n.Name})
		e.arrive(st, ReachForced, script)
		progressed = true
	}
	return progressed
}
