package explorer

import (
	"strings"
	"testing"

	"fragdroid/internal/robotium"
)

func TestTestProgramsRenderAndReplay(t *testing.T) {
	res := exploreDemo(t, fullConfig())
	programs := res.TestPrograms()
	if len(programs) != len(res.Visits) {
		t.Fatalf("programs = %d, visits = %d", len(programs), len(res.Visits))
	}
	seen := make(map[string]bool)
	for _, p := range programs {
		if seen[p.Name] {
			t.Errorf("duplicate program name %s", p.Name)
		}
		seen[p.Name] = true
		if !strings.Contains(p.Java, "public class "+p.Name) {
			t.Errorf("program %s: java does not declare its class", p.Name)
		}
		if !strings.Contains(p.Java, "Solo") {
			t.Errorf("program %s: not a Robotium test", p.Name)
		}
		// Each emitted program replays on a fresh device and lands on its
		// target (the durable-artifact property).
		d := newTestDevice(res.Extraction.App)
		r := robotium.Run(d, p.Script, robotium.Options{AutoDismiss: true})
		if r.Err != nil {
			t.Errorf("program %s fails to replay: %v", p.Name, r.Err)
			continue
		}
		if err := verifyNodeOnScreen(d, res, p.Target); err != nil {
			t.Errorf("program %s: %v", p.Name, err)
		}
	}
	// Sorted: activities before fragments.
	sawFragment := false
	for _, p := range programs {
		if p.Target.Kind == 2 {
			sawFragment = true
		} else if sawFragment {
			t.Fatal("programs not sorted activities-first")
		}
	}
}

func TestBuildXML(t *testing.T) {
	res := exploreDemo(t, fullConfig())
	programs := res.TestPrograms()
	xml := BuildXML("com.demo.app", programs)
	if !strings.Contains(xml, `<project name="com.demo.app.tests"`) {
		t.Fatalf("build.xml header wrong:\n%s", xml)
	}
	for _, p := range programs {
		if !strings.Contains(xml, p.Name+".java") {
			t.Errorf("build.xml missing %s", p.Name)
		}
	}
	if !strings.Contains(xml, "am instrument -w com.demo.app.tests") {
		t.Error("build.xml missing instrument target")
	}
}
