package explorer

import (
	"fmt"
	"sort"

	"fragdroid/internal/aftm"
	"fragdroid/internal/paths"
	"fragdroid/internal/robotium"
	"fragdroid/internal/statics"
)

// TargetPlan describes one statically identified site of a target sensitive
// API and the AFTM path that leads to it — the "Activity switch path that
// leads to the sensitive API calls" of SmartDroid (§IX), lifted to the
// Fragment level.
type TargetPlan struct {
	// API is the targeted sensitive API.
	API string
	// Site is the component class invoking the API.
	Site aftm.Node
	// Path is the static AFTM path from the entry, nil when the site is
	// statically unreachable (forced starts may still reach it).
	Path []aftm.Edge
}

// PlanForAPI lists the static sites of the API with their AFTM paths, sorted
// by site node.
func PlanForAPI(ex *statics.Extraction, api string) []TargetPlan {
	var plans []TargetPlan
	for _, cls := range ex.SensitiveSites[api] {
		var node aftm.Node
		if ex.App.Program.IsFragmentClass(cls) {
			node = aftm.FragmentNode(cls)
		} else {
			node = aftm.ActivityNode(cls)
		}
		plans = append(plans, TargetPlan{API: api, Site: node, Path: ex.Model.PathTo(node)})
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i].Site.String() < plans[j].Site.String() })
	return plans
}

// TargetResult is the outcome of a targeted exploration.
type TargetResult struct {
	// API is the target.
	API string
	// Triggered reports whether the API was observed at runtime.
	Triggered bool
	// Plans are the static sites and paths.
	Plans []TargetPlan
	// SitePlans are the path-level plans of the directed mode: per static
	// (API, component) relation, the lifted routes and the blocked paths
	// with their blocking edges. Nil on undirected runs.
	SitePlans []paths.SitePlan
	// Seeded counts the compiled route seeds fed to the engine.
	Seeded int
	// Skipped reports that the directed mode skipped the dynamic search
	// because the target is statically unreachable or every static path is
	// unliftable — reported as such rather than searched for.
	Skipped bool
	// Result is the (possibly early-halted) exploration behind the run. It
	// is nil when the static phase found no site at all — SmartDroid-style
	// targeting skips the dynamic phase entirely then — or when the
	// directed mode skipped the search.
	Result *Result
}

// ExploreTarget runs a SmartDroid-style targeted test: the static phase
// locates the API's sites and paths, then the evolutionary exploration runs
// until the API is observed (or the model is exhausted). The exploration is
// the same engine as Explore — the target only installs an early halt, so a
// triggered result carries the concrete operation route that fired the API.
func ExploreTarget(ex *statics.Extraction, cfg Config, api string) (*TargetResult, error) {
	if api == "" {
		return nil, fmt.Errorf("explorer: empty target API")
	}
	plans := PlanForAPI(ex, api)
	if len(plans) == 0 {
		return &TargetResult{API: api}, nil
	}
	cfg.haltOnAPI = api
	res, err := ExploreExtracted(ex, cfg)
	if err != nil {
		return nil, err
	}
	return &TargetResult{
		API:       api,
		Triggered: res.Collector.Has(api),
		Plans:     plans,
		Result:    res,
	}, nil
}

// ExploreTargetDirected is the path-guided flavour of ExploreTarget: the
// paths pass enumerates launcher-to-site paths over the callgraph, lowers
// them into robotium routes, and seeds the engine with them before frontier
// exploration. A target whose every static path is unliftable (or that no
// bounded path reaches) skips the dynamic search entirely and is reported as
// such — the SitePlans carry the blocking edges.
func ExploreTargetDirected(ex *statics.Extraction, cfg Config, api string) (*TargetResult, error) {
	if api == "" {
		return nil, fmt.Errorf("explorer: empty target API")
	}
	plans := PlanForAPI(ex, api)
	p := paths.New(ex, paths.Config{
		Inputs:       cfg.Inputs,
		InputGen:     cfg.InputGen,
		DefaultInput: cfg.DefaultInput,
	})
	sitePlans := p.PlanAPI(api)
	if len(plans) == 0 && len(sitePlans) == 0 {
		return &TargetResult{API: api}, nil
	}
	seeds := SeedScripts(sitePlans)
	if len(seeds) == 0 {
		return &TargetResult{API: api, Plans: plans, SitePlans: sitePlans, Skipped: true}, nil
	}
	cfg.Seeds = append(append([]robotium.Script(nil), cfg.Seeds...), seeds...)
	cfg.haltOnAPI = api
	res, err := ExploreExtracted(ex, cfg)
	if err != nil {
		return nil, err
	}
	return &TargetResult{
		API:       api,
		Triggered: res.Collector.Has(api),
		Plans:     plans,
		SitePlans: sitePlans,
		Seeded:    len(seeds),
		Result:    res,
	}, nil
}

// SeedScripts flattens site plans into the compiled route seeds, preserving
// plan order (sorted owners) and cheapest-first routes within each plan.
func SeedScripts(sps []paths.SitePlan) []robotium.Script {
	var out []robotium.Script
	for _, sp := range sps {
		for _, r := range sp.Routes {
			out = append(out, r.Script)
		}
	}
	return out
}
