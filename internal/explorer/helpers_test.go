package explorer

import (
	"fmt"
	"strings"

	"fragdroid/internal/aftm"
	"fragdroid/internal/apk"
	"fragdroid/internal/device"
	"fragdroid/internal/robotium"
)

func newTestDevice(app *apk.App) *device.Device {
	return device.New(app, device.Options{})
}

func runScriptOn(d *device.Device, s robotium.Script) error {
	res := robotium.Run(d, s, robotium.Options{AutoDismiss: true})
	return res.Err
}

// verifyNodeOnScreen checks that the node is present after replay: the
// activity is foreground, or the fragment is confirmed by the
// FragmentManager.
func verifyNodeOnScreen(d *device.Device, res *Result, n aftm.Node) error {
	dump, err := d.Dump()
	if err != nil {
		return err
	}
	switch n.Kind {
	case aftm.KindActivity:
		if dump.Activity != n.Name {
			return fmt.Errorf("foreground is %s, want %s", dump.Activity, n.Name)
		}
	case aftm.KindFragment:
		if !contains(dump.FMFragments, n.Name) {
			return fmt.Errorf("fragment %s not on screen (have %s)", n.Name,
				strings.Join(dump.FMFragments, ","))
		}
	}
	return nil
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
