package explorer_test

import (
	"fmt"
	"log"

	"fragdroid/internal/apk"
	"fragdroid/internal/corpus"
	"fragdroid/internal/explorer"
	"fragdroid/internal/statics"
)

func staticsExtract(app *apk.App) (*statics.Extraction, error) {
	return statics.Extract(app)
}

// Explore runs the full FragDroid pipeline — static extraction, evolutionary
// test-case generation, UI driving — on an application bundle.
func ExampleExplore() {
	app, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		log.Fatal(err)
	}
	cfg := explorer.DefaultConfig()
	cfg.Inputs = map[string]string{corpus.InputRef("Login", "Account"): "alice"}
	res, err := explorer.Explore(app, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("activities: %d/%d\n",
		len(res.VisitedActivities()), len(res.Extraction.EffectiveActivities))
	fmt.Printf("fragments:  %d/%d\n",
		len(res.VisitedFragments()), len(res.Extraction.EffectiveFragments))
	// Output:
	// activities: 7/7
	// fragments:  5/8
}

// ExploreTarget drives the app only until one sensitive API fires.
func ExampleExploreTarget() {
	app, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		log.Fatal(err)
	}
	ex, err := staticsExtract(app)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := explorer.ExploreTarget(ex, explorer.DefaultConfig(), "media/Camera.startPreview")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triggered: %v, sites: %d\n", tr.Triggered, len(tr.Plans))
	// Output:
	// triggered: true, sites: 1
}
