package explorer

import (
	"testing"

	"fragdroid/internal/corpus"
	"fragdroid/internal/inputgen"
)

// weatherSpec models the com.weather.Weather scenario of §V-C: a search box
// that must contain the name of an existing place before the app moves on.
func weatherSpec(t *testing.T) *corpus.AppSpec {
	t.Helper()
	city, ok := inputgen.ValueFor("city")
	if !ok {
		t.Fatal("inputgen has no city value")
	}
	return &corpus.AppSpec{
		Package: "com.weather.demo",
		Activities: []corpus.ActivitySpec{
			{Name: "Main", Launcher: true},
			{Name: "Forecast", RequiresExtra: "place",
				Sensitive: []string{"location/getProviders"}},
		},
		Transition: []corpus.Transition{
			{From: "Main", To: "Forecast", Kind: corpus.TransButton,
				Gate: &corpus.InputGate{Expected: city, Hint: "Enter a city name"}},
		},
	}
}

func TestInputGeneratorUnlocksHintGatedActivity(t *testing.T) {
	app, err := corpus.BuildApp(weatherSpec(t))
	if err != nil {
		t.Fatal(err)
	}

	// Plain FragDroid: random default text never names an existing place.
	plain, err := Explore(app, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range plain.VisitedActivities() {
		if a == "com.weather.demo.Forecast" {
			t.Fatal("Forecast reached without input generation")
		}
	}

	// With the §VIII heuristic generator the hint derives the right value.
	cfg := DefaultConfig()
	cfg.InputGen = &inputgen.Heuristic{}
	smart, err := Explore(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range smart.VisitedActivities() {
		if a == "com.weather.demo.Forecast" {
			found = true
		}
	}
	if !found {
		t.Fatalf("heuristic input generation failed to unlock the gate; visited %v",
			smart.VisitedActivities())
	}
	// The gated activity's sensitive API surfaces only in the smart run.
	apis := func(r *Result) map[string]bool {
		out := make(map[string]bool)
		for _, u := range r.Collector.Usages() {
			out[u.API] = true
		}
		return out
	}
	if apis(plain)["location/getProviders"] {
		t.Error("plain run observed the gated API")
	}
	if !apis(smart)["location/getProviders"] {
		t.Error("smart run missed the gated API")
	}
}

func TestExplicitInputsBeatGenerator(t *testing.T) {
	// The analyst file takes precedence over generated values.
	spec := weatherSpec(t)
	spec.Transition[0].Gate.Expected = "Qingdao" // not what the heuristic says
	app, err := corpus.BuildApp(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.InputGen = &inputgen.Heuristic{}
	cfg.Inputs = map[string]string{corpus.InputRef("Main", "Forecast"): "Qingdao"}
	res, err := Explore(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range res.VisitedActivities() {
		if a == "com.weather.demo.Forecast" {
			found = true
		}
	}
	if !found {
		t.Fatalf("explicit input not honoured; visited %v", res.VisitedActivities())
	}
}

func TestDictionaryGeneratorRetriesAcrossPasses(t *testing.T) {
	spec := weatherSpec(t)
	spec.Transition[0].Gate.Expected = "opensesame"
	app, err := corpus.BuildApp(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.InputGen = &inputgen.Dictionary{Words: []string{"wrong", "opensesame"}}
	res, err := Explore(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The first pass fills "wrong" (gate fails, dialog state changes the
	// interface digest, triggering a re-exploration pass), the second fills
	// "opensesame". Either way the dictionary must not break the run; reaching
	// Forecast is a bonus that depends on pass scheduling.
	if len(res.VisitedActivities()) == 0 {
		t.Fatal("nothing visited")
	}
}
