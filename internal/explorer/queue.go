package explorer

import (
	"fmt"
	"strings"

	"fragdroid/internal/aftm"
)

// PlannedItem is one UI-transition-queue item as §VI-B defines it: "the way
// of reaching a certain interface (Activity or Fragment), start interface,
// target interface, and an operation list storing the concrete operations
// from the start interface to the target interface". At planning time the
// operation list is symbolic — the Via labels of the AFTM path; the dynamic
// phase replaces them with concrete Robotium operations as it learns them.
type PlannedItem struct {
	// Index is the breadth-first discovery order (the entry is 0).
	Index int
	// Start is the node the transition leaves from (equal to Target for the
	// entry item).
	Start aftm.Node
	// Target is the node the item reaches.
	Target aftm.Node
	// Method is the planned way of reaching the target, derived from the
	// final edge's Via label.
	Method ReachMethod
	// Path is the edge path from the entry node.
	Path []aftm.Edge
}

// String renders the item like a queue log line.
func (p PlannedItem) String() string {
	ops := make([]string, 0, len(p.Path))
	for _, e := range p.Path {
		via := e.Via
		if via == "" {
			via = "?"
		}
		ops = append(ops, via)
	}
	return fmt.Sprintf("#%d %s --[%s]--> %s via %s",
		p.Index, p.Start, strings.Join(ops, ", "), p.Target, p.Method)
}

// PlanQueue is the queue-generation module: it traverses the AFTM breadth-
// first from the entry and emits one item per discovered node, each carrying
// the edge path from the entry (§III: "Every newly discovered node ... will
// trigger that a new item will be pushed to the queue"). Nodes unreachable
// in the model get no item; the §VI-C forced-start loop covers them later.
func PlanQueue(m *aftm.Model) []PlannedItem {
	entry, ok := m.Entry()
	if !ok {
		return nil
	}
	var items []PlannedItem
	order, pathOf := m.Paths()
	for i, n := range order {
		item := PlannedItem{Index: i, Target: n, Start: n, Method: ReachLaunch}
		if n != entry {
			path := pathOf[n]
			item.Path = path
			if len(path) > 0 {
				last := path[len(path)-1]
				item.Start = last.From
				item.Method = plannedMethod(last)
			}
		}
		items = append(items, item)
	}
	return items
}

// plannedMethod maps an edge's Via label to the reach method the test-case
// generator would template: explicit clicks where one is known, the
// reflection mechanism for fragment edges without one (§VI-B: "if no
// explicit operation can be used for interface transition, the Java
// reflection mechanism will be utilized"), and plain intents for activity
// edges.
func plannedMethod(e aftm.Edge) ReachMethod {
	switch {
	case strings.HasPrefix(e.Via, "click:"):
		return ReachClick
	case e.Via == aftm.ViaForcedStart:
		return ReachForced
	case e.To.Kind == aftm.KindFragment:
		return ReachReflection
	default:
		return ReachClick
	}
}
