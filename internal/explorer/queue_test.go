package explorer

import (
	"strings"
	"testing"

	"fragdroid/internal/aftm"
	"fragdroid/internal/statics"
)

func TestPlanQueueOverDemoModel(t *testing.T) {
	ex, err := statics.Extract(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanQueue(ex.Model)
	if len(plan) == 0 {
		t.Fatal("empty plan")
	}
	// One item per node reachable from the entry, entry first.
	reachable := ex.Model.BFS()
	if len(plan) != len(reachable) {
		t.Fatalf("plan = %d items, reachable = %d", len(plan), len(reachable))
	}
	entry, _ := ex.Model.Entry()
	first := plan[0]
	if first.Target != entry || first.Method != ReachLaunch || len(first.Path) != 0 {
		t.Fatalf("entry item = %+v", first)
	}
	for i, item := range plan {
		if item.Index != i {
			t.Errorf("item %d carries index %d", i, item.Index)
		}
		if item.Target == entry {
			continue
		}
		// Each path starts at the entry, is edge-connected, and ends at the
		// target; the start is the second-to-last node.
		cur := entry
		for _, e := range item.Path {
			if e.From != cur {
				t.Fatalf("item %d: path broken at %v", i, e)
			}
			cur = e.To
		}
		if cur != item.Target {
			t.Fatalf("item %d: path ends at %v, want %v", i, cur, item.Target)
		}
		if item.Start != item.Path[len(item.Path)-1].From {
			t.Fatalf("item %d: start %v inconsistent with path", i, item.Start)
		}
	}
	// Fragment targets without explicit click edges plan the reflection
	// mechanism (§VI-B).
	var sawReflection bool
	for _, item := range plan {
		if item.Target.Kind == aftm.KindFragment && item.Method == ReachReflection {
			sawReflection = true
		}
	}
	if !sawReflection {
		t.Error("no fragment item planned via reflection")
	}
}

func TestPlanQueueEmptyModel(t *testing.T) {
	if got := PlanQueue(aftm.New()); got != nil {
		t.Fatalf("plan on entry-less model = %v", got)
	}
}

func TestInitialPlanInResultAndTranscript(t *testing.T) {
	res := exploreDemo(t, fullConfig())
	if len(res.InitialPlan) == 0 {
		t.Fatal("result carries no initial plan")
	}
	joined := strings.Join(res.Transcript, "\n")
	if !strings.Contains(joined, "queue item #0") {
		t.Error("transcript missing queue items")
	}
	// Every planned item renders.
	for _, item := range res.InitialPlan {
		if item.String() == "" {
			t.Errorf("item %d renders empty", item.Index)
		}
	}
}
