package explorer

import (
	"fmt"
	"sort"
	"strings"

	"fragdroid/internal/aftm"
	"fragdroid/internal/robotium"
)

// TestProgram is one emitted Robotium test case: the paper's pipeline
// renders queue items into Java test programs, packages them into the target
// app with Ant, and runs them through `am instrument` (§VI-B and §VI-A).
type TestProgram struct {
	// Name is a Java-identifier-safe test class name.
	Name string
	// Target is the node the program reaches.
	Target aftm.Node
	// Method is how the target is reached.
	Method ReachMethod
	// Script is the operation list.
	Script robotium.Script
	// Java is the rendered Robotium test program.
	Java string
}

// TestPrograms renders one Robotium test program per first-arrival route of
// the exploration, sorted by target node. These are the durable artifacts of
// the run: replaying program i on a fresh device reproduces the visit.
func (r *Result) TestPrograms() []TestProgram {
	nodes := make([]aftm.Node, 0, len(r.Visits))
	for n := range r.Visits {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Kind != nodes[j].Kind {
			return nodes[i].Kind < nodes[j].Kind
		}
		return nodes[i].Name < nodes[j].Name
	})
	out := make([]TestProgram, 0, len(nodes))
	for i, n := range nodes {
		v := r.Visits[n]
		name := fmt.Sprintf("Reach%02d_%s", i, javaIdent(simpleName(n.Name)))
		s := v.Route
		s.Name = name
		out = append(out, TestProgram{
			Name:   name,
			Target: n,
			Method: v.Method,
			Script: s,
			Java:   robotium.RenderJava(s),
		})
	}
	return out
}

// BuildXML renders an Ant build file covering the emitted programs — the
// paper packages generated tests into the target app with Ant (§VI-A).
func BuildXML(pkg string, programs []TestProgram) string {
	var b strings.Builder
	b.WriteString("<?xml version=\"1.0\"?>\n")
	fmt.Fprintf(&b, "<project name=%q default=\"instrument\">\n", pkg+".tests")
	b.WriteString("  <target name=\"compile\">\n")
	for _, p := range programs {
		fmt.Fprintf(&b, "    <javac srcfile=\"src/%s.java\"/>\n", p.Name)
	}
	b.WriteString("  </target>\n")
	b.WriteString("  <target name=\"instrument\" depends=\"compile\">\n")
	fmt.Fprintf(&b, "    <exec executable=\"adb\"><arg line=\"shell am instrument -w %s.tests/android.test.InstrumentationTestRunner\"/></exec>\n", pkg)
	b.WriteString("  </target>\n")
	b.WriteString("</project>\n")
	return b.String()
}

func simpleName(dotted string) string {
	if i := strings.LastIndexByte(dotted, '.'); i >= 0 {
		return dotted[i+1:]
	}
	return dotted
}

func javaIdent(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "Target"
	}
	return b.String()
}
