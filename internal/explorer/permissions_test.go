package explorer

import (
	"testing"

	"fragdroid/internal/sensitive"
)

// The corpus generator declares every permission its sensitive APIs need, so
// a full exploration audits clean; removing a declaration surfaces exactly
// the affected observed APIs.
func TestPermissionAuditOnDemoApp(t *testing.T) {
	res := exploreDemo(t, fullConfig())
	man := res.Extraction.App.Manifest
	var declared []string
	for _, p := range man.Permissions {
		declared = append(declared, p.Name)
	}
	if len(declared) == 0 {
		t.Fatal("demo app declares no permissions")
	}
	if f := sensitive.AuditPermissions(declared, res.Collector.Usages()); len(f) != 0 {
		t.Fatalf("well-formed app has findings: %+v", f)
	}

	// Strip the location permission: the Account activity's observed
	// location call becomes a finding.
	var stripped []string
	for _, p := range declared {
		if p != "android.permission.ACCESS_FINE_LOCATION" {
			stripped = append(stripped, p)
		}
	}
	if len(stripped) == len(declared) {
		t.Fatal("location permission was not declared to begin with")
	}
	findings := sensitive.AuditPermissions(stripped, res.Collector.Usages())
	if len(findings) != 1 {
		t.Fatalf("findings = %+v", findings)
	}
	if findings[0].API != "location/requestLocationUpdates" {
		t.Fatalf("finding = %+v", findings[0])
	}
}
