package inputgen

import (
	"strings"
	"testing"
)

func TestFixed(t *testing.T) {
	g := Fixed{"@id/a": "v", "@id/empty": ""}
	if v, ok := g.Generate("@id/a", ""); !ok || v != "v" {
		t.Fatalf("Generate = %q, %v", v, ok)
	}
	if _, ok := g.Generate("@id/missing", "whatever"); ok {
		t.Fatal("missing ref generated")
	}
	if _, ok := g.Generate("@id/empty", ""); ok {
		t.Fatal("empty value treated as a suggestion")
	}
}

func TestHeuristicKeywords(t *testing.T) {
	h := &Heuristic{}
	cases := []struct {
		hint string
		want string
	}{
		{"Your email address", "user@example.com"},
		{"Enter CITY name", "Jinan"},
		{"user name", "alice"},
		{"Search for anything", "weather"},
		{"PIN code", "1234"},
		{"ZIP", "94103"},
		{"phone number", "+1-555-0100"},
	}
	for _, tc := range cases {
		got, ok := h.Generate("@id/x", tc.hint)
		if !ok || got != tc.want {
			t.Errorf("Generate(%q) = %q, %v; want %q", tc.hint, got, ok, tc.want)
		}
	}
	if _, ok := h.Generate("@id/x", "completely opaque"); ok {
		t.Error("opaque hint generated a value")
	}
	if _, ok := h.Generate("@id/x", ""); ok {
		t.Error("empty hint generated a value")
	}
}

func TestHeuristicSpecificityAndExtra(t *testing.T) {
	h := &Heuristic{}
	// "email address" must match email, not address.
	if v, _ := h.Generate("", "email address"); v != "user@example.com" {
		t.Errorf("email address -> %q", v)
	}
	h2 := &Heuristic{Extra: map[string]string{"promo": "SAVE20"}}
	if v, ok := h2.Generate("", "Promo code"); !ok || v != "SAVE20" {
		t.Errorf("extra keyword: %q, %v", v, ok)
	}
}

func TestValueForMatchesHeuristic(t *testing.T) {
	h := &Heuristic{}
	for _, kw := range Keywords() {
		want, ok := ValueFor(kw)
		if !ok {
			t.Fatalf("ValueFor(%q) unknown", kw)
		}
		// A hint consisting only of the keyword must produce that value,
		// except where a more specific keyword shadows it textually.
		got, ok := h.Generate("", kw)
		if !ok {
			t.Errorf("heuristic has no value for its own keyword %q", kw)
			continue
		}
		if got != want && !strings.Contains(kw, "name") {
			// "name" is shadowed by nothing; all keywords map directly.
			t.Errorf("Generate(%q) = %q, ValueFor = %q", kw, got, want)
		}
	}
	if _, ok := ValueFor("nope"); ok {
		t.Error("unknown keyword resolved")
	}
}

func TestDictionaryRotates(t *testing.T) {
	d := &Dictionary{Words: []string{"a", "b", "c"}}
	var got []string
	for i := 0; i < 5; i++ {
		v, ok := d.Generate("@id/x", "")
		if !ok {
			t.Fatal("dictionary refused")
		}
		got = append(got, v)
	}
	want := "a b c a b"
	if strings.Join(got, " ") != want {
		t.Fatalf("rotation = %v", got)
	}
	// Independent rotation per widget.
	if v, _ := d.Generate("@id/y", ""); v != "a" {
		t.Fatalf("fresh widget starts at %q", v)
	}
	empty := &Dictionary{}
	if _, ok := empty.Generate("@id/x", ""); ok {
		t.Fatal("empty dictionary generated")
	}
}

func TestChain(t *testing.T) {
	c := Chain{
		nil,
		Fixed{"@id/a": "fixed"},
		&Heuristic{},
	}
	if v, _ := c.Generate("@id/a", "email"); v != "fixed" {
		t.Fatalf("chain order broken: %q", v)
	}
	if v, _ := c.Generate("@id/b", "email"); v != "user@example.com" {
		t.Fatalf("fallthrough broken: %q", v)
	}
	if _, ok := c.Generate("@id/b", "opaque"); ok {
		t.Fatal("chain generated from nothing")
	}
}
