// Package inputgen implements the input-generation extension the paper
// leaves as future work (§VIII: "better input generation methods will be
// integrated"). The baseline FragDroid relies on a manually filled input
// file (§V-C); the generators here derive plausible values automatically
// from the widget's hint text, in the spirit of Chen et al.'s
// state-and-context input generation cited by the paper.
//
// Generators compose: Chain tries each in order, Fixed serves an explicit
// ref→value table (the manual input file), Heuristic matches hint keywords
// to canonical domain values, and Dictionary rotates through a wordlist.
package inputgen

import (
	"sort"
	"strings"
	"sync"
)

// Generator produces a candidate value for an input widget. ok is false when
// the generator has no suggestion for this widget.
type Generator interface {
	Generate(ref, hint string) (value string, ok bool)
}

// Fixed serves values from an explicit table keyed by widget ref — the
// programmatic form of the paper's analyst-filled input file.
type Fixed map[string]string

// Generate implements Generator.
func (f Fixed) Generate(ref, _ string) (string, bool) {
	v, ok := f[ref]
	return v, ok && v != ""
}

// canonical maps hint keywords to domain-plausible values. The table is
// ordered: more specific keywords come first so "email address" hits email,
// not address.
var canonical = []struct {
	keyword string
	value   string
}{
	{"email", "user@example.com"},
	{"phone", "+1-555-0100"},
	{"url", "https://example.com"},
	{"website", "https://example.com"},
	{"zip", "94103"},
	{"postal", "94103"},
	{"date", "2018-06-25"},
	{"city", "Jinan"},
	{"place", "Jinan"},
	{"address", "Jinan"},
	{"password", "hunter2!"},
	{"user", "alice"},
	{"name", "alice"},
	{"account", "alice"},
	{"search", "weather"},
	{"query", "weather"},
	{"code", "1234"},
	{"pin", "1234"},
	{"amount", "42"},
	{"age", "30"},
}

// ValueFor returns the canonical value for a hint keyword, so tests and
// corpus apps can gate transitions on values the heuristic will produce.
// The boolean result reports whether the keyword is known.
func ValueFor(keyword string) (string, bool) {
	for _, c := range canonical {
		if c.keyword == keyword {
			return c.value, true
		}
	}
	return "", false
}

// Keywords lists the known hint keywords, sorted.
func Keywords() []string {
	out := make([]string, 0, len(canonical))
	for _, c := range canonical {
		out = append(out, c.keyword)
	}
	sort.Strings(out)
	return out
}

// Heuristic derives values from hint text by keyword matching. Extra entries
// take precedence over the built-in table.
type Heuristic struct {
	// Extra maps additional lowercase keywords to values.
	Extra map[string]string
}

// Generate implements Generator: the first keyword contained in the
// lowercased hint wins.
func (h *Heuristic) Generate(_, hint string) (string, bool) {
	l := strings.ToLower(hint)
	if l == "" {
		return "", false
	}
	for kw, v := range h.Extra {
		if strings.Contains(l, strings.ToLower(kw)) {
			return v, true
		}
	}
	for _, c := range canonical {
		if strings.Contains(l, c.keyword) {
			return c.value, true
		}
	}
	return "", false
}

// Dictionary rotates through a wordlist per widget, so that repeated
// exploration passes over the same gate try different candidates — a cheap
// brute-force fallback. It is safe for concurrent use.
type Dictionary struct {
	Words []string

	mu   sync.Mutex
	next map[string]int
}

// Generate implements Generator.
func (d *Dictionary) Generate(ref, _ string) (string, bool) {
	if len(d.Words) == 0 {
		return "", false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.next == nil {
		d.next = make(map[string]int)
	}
	i := d.next[ref]
	d.next[ref] = i + 1
	return d.Words[i%len(d.Words)], true
}

// Chain tries each generator in order and returns the first suggestion.
type Chain []Generator

// Generate implements Generator.
func (c Chain) Generate(ref, hint string) (string, bool) {
	for _, g := range c {
		if g == nil {
			continue
		}
		if v, ok := g.Generate(ref, hint); ok {
			return v, true
		}
	}
	return "", false
}

var (
	_ Generator = Fixed(nil)
	_ Generator = (*Heuristic)(nil)
	_ Generator = (*Dictionary)(nil)
	_ Generator = Chain(nil)
)
