package inputgen_test

import (
	"fmt"

	"fragdroid/internal/inputgen"
)

// A chain consults the analyst's input file first, then derives values from
// widget hints.
func ExampleChain() {
	gen := inputgen.Chain{
		inputgen.Fixed{"@id/login_user": "analyst-supplied"},
		&inputgen.Heuristic{},
	}
	v, _ := gen.Generate("@id/login_user", "user name")
	fmt.Println(v)
	v, _ = gen.Generate("@id/search_city", "Enter a city name")
	fmt.Println(v)
	_, ok := gen.Generate("@id/opaque", "???")
	fmt.Println("opaque hint handled:", ok)
	// Output:
	// analyst-supplied
	// Jinan
	// opaque hint handled: false
}
