package binc

import (
	"bytes"
	"reflect"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Uvarint(0)
	w.Uvarint(1 << 40)
	// Int is a count/length codec: values are bounded by the payload size
	// (the reader rejects anything that could not size a real structure).
	w.Int(12)
	w.Int(-7) // negatives clamp to zero by contract
	w.Bool(true)
	w.Bool(false)
	w.Str("hello")
	w.Str("")
	w.Str("hello") // interned: same index as the first
	w.StrSlice([]string{"a", "b", "a"})
	w.StrSlice(nil)
	w.Blob([]byte{1, 2, 3})
	w.Blob(nil)
	data := w.Bytes()

	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d, want 0", got)
	}
	if got := r.Uvarint(); got != 1<<40 {
		t.Errorf("Uvarint = %d, want 1<<40", got)
	}
	if got := r.Int(); got != 12 {
		t.Errorf("Int = %d, want 12", got)
	}
	if got := r.Int(); got != 0 {
		t.Errorf("clamped Int = %d, want 0", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if got := r.Str(); got != "" {
		t.Errorf("empty Str = %q", got)
	}
	if got := r.Str(); got != "hello" {
		t.Errorf("interned Str = %q", got)
	}
	if got := r.StrSlice(); !reflect.DeepEqual(got, []string{"a", "b", "a"}) {
		t.Errorf("StrSlice = %v", got)
	}
	if got := r.StrSlice(); got != nil {
		t.Errorf("nil StrSlice = %v, want nil", got)
	}
	if got := r.Blob(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Blob = %v", got)
	}
	if got := r.Blob(); len(got) != 0 {
		t.Errorf("empty Blob = %v", got)
	}
	if err := r.Done(); err != nil {
		t.Errorf("Done: %v", err)
	}
}

// TestInterning checks that a repeated string is stored once: the encoding of
// many copies is barely larger than the encoding of one.
func TestInterning(t *testing.T) {
	one := NewWriter()
	one.Str("com.example.SomeLongClassName")
	many := NewWriter()
	for i := 0; i < 1000; i++ {
		many.Str("com.example.SomeLongClassName")
	}
	if got, limit := len(many.Bytes()), len(one.Bytes())+1000+16; got > limit {
		t.Errorf("1000 interned copies take %d bytes, want <= %d", got, limit)
	}
}

// TestDoneTrailing checks that unread trailing bytes are an error: a decoder
// that finishes early on corrupt input must not silently succeed.
func TestDoneTrailing(t *testing.T) {
	w := NewWriter()
	w.Int(1)
	w.Int(2)
	data := w.Bytes()
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	r.Int()
	if err := r.Done(); err == nil {
		t.Error("Done with trailing bytes: want error")
	}
}

// TestCorruptInputsNeverPanic feeds truncations and bit-flips of a valid
// encoding to the reader; every outcome must be an error or a zero value,
// never a panic or an out-of-range read.
func TestCorruptInputsNeverPanic(t *testing.T) {
	w := NewWriter()
	w.Str("alpha")
	w.StrSlice([]string{"beta", "gamma"})
	w.Int(12345)
	w.Blob([]byte("payload"))
	valid := w.Bytes()

	check := func(data []byte) {
		r, err := NewReader(data)
		if err != nil {
			return
		}
		r.Str()
		r.StrSlice()
		r.Int()
		r.Blob()
		r.Done()
	}
	for cut := 0; cut < len(valid); cut++ {
		check(valid[:cut])
	}
	for i := 0; i < len(valid); i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xff
		check(mut)
	}
}

// TestReaderErrSticky checks that the first failure poisons every later read.
func TestReaderErrSticky(t *testing.T) {
	w := NewWriter()
	w.Int(9)
	data := w.Bytes()
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	r.Int()
	r.Int() // past the end: sets the error
	if r.Err() == nil {
		t.Fatal("read past end: want error")
	}
	if got := r.Int(); got != 0 {
		t.Errorf("read after error = %d, want 0", got)
	}
	if r.Str() != "" {
		t.Error("Str after error: want empty")
	}
}

// TestInsertUvarint frames regions of unknown length: write content, insert
// its length at a mark, and require the reader to skip framed regions and
// seek back to decode them, for one- and multi-byte varint lengths.
func TestInsertUvarint(t *testing.T) {
	w := NewWriter()
	w.Int(2) // frame count
	var wants []string
	for i, body := range []int{3, 60} {
		mark := w.Mark()
		s := ""
		for j := 0; j < body; j++ {
			s += "x"
			w.Str(s + "-" + string(rune('a'+i)))
			w.Uvarint(uint64(j))
		}
		wants = append(wants, s)
		w.InsertUvarint(mark, uint64(w.Mark()-mark))
	}
	r, err := NewReader(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// Pass 1: index the frames without decoding.
	count := r.Int()
	type frame struct{ off, n int }
	var frames []frame
	for i := 0; i < count; i++ {
		n := int(r.Uvarint())
		frames = append(frames, frame{r.Pos(), n})
		r.Skip(n)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("index pass: %v", err)
	}
	// Pass 2: decode frames in reverse order via Seek.
	for i := count - 1; i >= 0; i-- {
		r.Seek(frames[i].off)
		last := ""
		for r.Pos() < frames[i].off+frames[i].n {
			last = r.Str()
			r.Uvarint()
		}
		want := wants[i] + "-" + string(rune('a'+i))
		if last != want {
			t.Errorf("frame %d: last string = %q, want %q", i, last, want)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

// TestSeekSkipBounds: out-of-range repositioning must fail, not read garbage.
func TestSeekSkipBounds(t *testing.T) {
	w := NewWriter()
	w.Int(1)
	data := w.Bytes()
	r, _ := NewReader(data)
	r.Skip(len(data) + 1)
	if r.Err() == nil {
		t.Error("Skip past end: want error")
	}
	r, _ = NewReader(data)
	r.Seek(-1)
	if r.Err() == nil {
		t.Error("negative Seek: want error")
	}
	r, _ = NewReader(data)
	r.Seek(len(data) + 1)
	if r.Err() == nil {
		t.Error("Seek past end: want error")
	}
}
