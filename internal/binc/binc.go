// Package binc is the compact binary codec under the persistent artifact
// store: varint-coded scalars plus an interned string table. Every distinct
// string is stored once and referenced by index, so decoding a payload
// allocates each string exactly once no matter how often it repeats — class
// names, access flags and opcode arguments recur constantly in encoded apps
// — and the hot decode path is free of reflection (the reason encoding/gob
// was rejected: its reflective decode made a warm disk load slower than a
// cold rebuild).
//
// A payload is: uvarint string count, then each string as uvarint length +
// raw bytes, then the body. The body's meaning is entirely up to the caller;
// Writer and Reader only provide the primitives. Readers carry a sticky
// error so call sites stay linear; callers must check Err before trusting
// the decoded values.
package binc

import (
	"encoding/binary"
	"fmt"
)

// Writer accumulates a payload. The zero value is not usable; use NewWriter.
type Writer struct {
	body []byte
	idx  map[string]uint64
	strs []string
}

// NewWriter returns an empty writer.
func NewWriter() *Writer {
	return &Writer{idx: make(map[string]uint64)}
}

// Uvarint appends an unsigned varint to the body.
func (w *Writer) Uvarint(x uint64) {
	w.body = binary.AppendUvarint(w.body, x)
}

// Int appends a non-negative integer. Negative values are encoded as zero —
// the store never needs them and rejecting here would force error plumbing
// through every codec.
func (w *Writer) Int(x int) {
	if x < 0 {
		x = 0
	}
	w.Uvarint(uint64(x))
}

// Bool appends a boolean byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.body = append(w.body, 1)
	} else {
		w.body = append(w.body, 0)
	}
}

// Str appends an interned string reference.
func (w *Writer) Str(s string) {
	i, ok := w.idx[s]
	if !ok {
		i = uint64(len(w.strs))
		w.idx[s] = i
		w.strs = append(w.strs, s)
	}
	w.Uvarint(i)
}

// StrSlice appends a length-prefixed sequence of interned strings.
func (w *Writer) StrSlice(ss []string) {
	w.Int(len(ss))
	for _, s := range ss {
		w.Str(s)
	}
}

// Blob appends a length-prefixed opaque byte string (for nested encodings
// that carry their own structure, like an embedded sub-codec payload).
func (w *Writer) Blob(b []byte) {
	w.Int(len(b))
	w.body = append(w.body, b...)
}

// Mark returns the current body offset, to be passed to InsertUvarint.
func (w *Writer) Mark() int { return len(w.body) }

// InsertUvarint inserts x into the body at a previously taken Mark, shifting
// everything written since. Frame headers — a body length ahead of content
// whose size is unknown until written — use this: write the content, then
// insert its length (the distance from the mark to the current Mark) back at
// the mark. The shift costs one copy of the framed region, so total encode
// cost stays linear when frames are inserted in write order.
func (w *Writer) InsertUvarint(mark int, x uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	w.body = append(w.body, buf[:n]...)
	copy(w.body[mark+n:], w.body[mark:len(w.body)-n])
	copy(w.body[mark:], buf[:n])
}

// Bytes assembles the final payload: string table, then body.
func (w *Writer) Bytes() []byte {
	out := binary.AppendUvarint(nil, uint64(len(w.strs)))
	for _, s := range w.strs {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	return append(out, w.body...)
}

// Reader decodes a payload produced by Writer.
type Reader struct {
	data []byte
	pos  int
	strs []string
	err  error
}

// NewReader parses the string table and positions the reader at the body.
func NewReader(data []byte) (*Reader, error) {
	r := &Reader{data: data}
	n := r.Uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if n > uint64(len(data)) {
		return nil, fmt.Errorf("binc: string table claims %d entries in %d bytes", n, len(data))
	}
	// Decode the table in two passes over one string conversion: the whole
	// table region becomes a single backing allocation and every entry is a
	// zero-copy substring of it, instead of one allocation per string.
	lens := make([]int, n)
	start := r.pos
	for i := uint64(0); i < n; i++ {
		l := r.Uvarint()
		if r.err != nil {
			return nil, r.err
		}
		if uint64(r.pos)+l > uint64(len(data)) {
			return nil, fmt.Errorf("binc: string %d overruns payload", i)
		}
		lens[i] = int(l)
		r.pos += int(l)
	}
	region := string(data[start:r.pos])
	r.strs = make([]string, 0, n)
	off := 0
	for _, l := range lens {
		// Skip past this entry's length prefix, then slice the string.
		off += uvarintLen(uint64(l))
		r.strs = append(r.strs, region[off:off+l])
		off += l
	}
	return r, nil
}

// uvarintLen returns the encoded size of x, for walking the table region.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// Err returns the sticky decode error, nil if every read so far succeeded.
func (r *Reader) Err() error { return r.err }

// fail records the first decode error.
func (r *Reader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("binc: %s at offset %d", msg, r.pos)
	}
}

// Uvarint reads an unsigned varint (0 after an error).
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.pos += n
	return x
}

// Int reads a non-negative integer, rejecting values that cannot index or
// size anything in the payload (an overflow guard for corrupted input).
func (r *Reader) Int() int {
	x := r.Uvarint()
	if x > uint64(len(r.data))+uint64(len(r.strs)) {
		r.fail("implausible length")
		return 0
	}
	return int(x)
}

// Bool reads a boolean byte.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.pos >= len(r.data) {
		r.fail("truncated bool")
		return false
	}
	b := r.data[r.pos]
	r.pos++
	return b != 0
}

// Str reads an interned string reference.
func (r *Reader) Str() string {
	i := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if i >= uint64(len(r.strs)) {
		r.fail("string index out of range")
		return ""
	}
	return r.strs[i]
}

// StrSlice reads a length-prefixed sequence of interned strings (nil when
// empty, matching how the analysis code builds such slices).
func (r *Reader) StrSlice() []string {
	n := r.Int()
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.Str())
	}
	return out
}

// Blob reads a length-prefixed opaque byte string. The result aliases the
// reader's backing slice; callers own that slice once decoding finishes.
func (r *Reader) Blob() []byte {
	n := r.Int()
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.data) {
		r.fail("truncated blob")
		return nil
	}
	b := r.data[r.pos : r.pos+n : r.pos+n]
	r.pos += n
	return b
}

// Pos reports the current offset into the payload. Together with Seek and
// Skip it lets a codec index length-framed regions on one pass and come back
// to decode them on demand; the string table is parsed up front and strings
// are referenced by index, so skipping a region never skips table state.
func (r *Reader) Pos() int { return r.pos }

// Seek repositions the reader at an offset previously observed via Pos.
func (r *Reader) Seek(pos int) {
	if r.err != nil {
		return
	}
	if pos < 0 || pos > len(r.data) {
		r.fail("seek out of range")
		return
	}
	r.pos = pos
}

// Skip advances past n bytes without decoding them.
func (r *Reader) Skip(n int) {
	if r.err != nil {
		return
	}
	if n < 0 || n > len(r.data)-r.pos {
		r.fail("skip overruns payload")
		return
	}
	r.pos += n
}

// Done reports whether the whole payload was consumed without error; codecs
// call it last to catch trailing garbage.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.data) {
		return fmt.Errorf("binc: %d trailing bytes", len(r.data)-r.pos)
	}
	return nil
}
