package jdcore

import (
	"strings"
	"testing"

	"fragdroid/internal/smali"
)

func lowerProgram(t *testing.T) *Program {
	t.Helper()
	files := map[string][]byte{
		"smali/com/ex/MainActivity.smali": []byte(`
.class public Lcom/ex/MainActivity;
.super Landroid/app/Activity;
.method public onCreate()V
    set-content-view @layout/main
    set-click-listener @id/btn onGo
    get-support-fragment-manager
    begin-transaction
    txn-replace @id/container Lcom/ex/HomeFragment;
    txn-commit
    invoke-sensitive "location/getProviders"
    load-library "native-lib"
.end method
.method public onGo()V
    new-intent Lcom/ex/MainActivity; Lcom/ex/NextActivity;
    put-extra "k" "v"
    start-activity
.end method
.method public onSearch()V
    new-intent-action "com.ex.SEARCH"
    set-action "com.ex.SEARCH2"
    start-activity
.end method
`),
		"smali/com/ex/NextActivity.smali": []byte(`
.class public Lcom/ex/NextActivity;
.super Landroid/app/Activity;
.method public onCreate()V
    new-instance Lcom/ex/HomeFragment;
    invoke-newinstance Lcom/ex/HomeFragment;
    instance-of Lcom/ex/HomeFragment;
    inflate-view @id/c2 Lcom/ex/HomeFragment;
.end method
`),
		"smali/com/ex/HomeFragment.smali": []byte(`
.class public Lcom/ex/HomeFragment;
.super Landroid/app/Fragment;
.method public onCreateView()V
    nop
.end method
`),
	}
	sp, err := smali.ParseProgram(files)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	return Decompile(sp)
}

func TestDecompileStructure(t *testing.T) {
	p := lowerProgram(t)
	if len(p.Names()) != 3 {
		t.Fatalf("Names = %v", p.Names())
	}
	mc := p.Class("com.ex.MainActivity")
	if mc == nil || len(mc.Methods) != 3 {
		t.Fatalf("MainActivity = %+v", mc)
	}
	if mc.Super != smali.ClassActivity {
		t.Errorf("Super = %q", mc.Super)
	}
}

func TestLoweredKinds(t *testing.T) {
	p := lowerProgram(t)
	oc := p.Class("com.ex.MainActivity").Method("onCreate")
	want := []StmtKind{StmtSetContentView, StmtSetClickListener, StmtGetFragmentManager,
		StmtBeginTransaction, StmtTxnReplace, StmtTxnCommit, StmtSensitiveCall, StmtSensitiveCall}
	if len(oc.Statements) != len(want) {
		t.Fatalf("statements = %d, want %d", len(oc.Statements), len(want))
	}
	for i, s := range oc.Statements {
		if s.Kind != want[i] {
			t.Errorf("stmt[%d].Kind = %d, want %d (%s)", i, s.Kind, want[i], s.Source)
		}
	}
	if !oc.Statements[2].Support {
		t.Error("getSupportFragmentManager not marked Support")
	}
	if oc.Statements[4].Class1 != "com.ex.HomeFragment" || oc.Statements[4].Res != "@id/container" {
		t.Errorf("txn-replace operands: %+v", oc.Statements[4])
	}
	if oc.Statements[7].API != "shell/loadLibrary" {
		t.Errorf("load-library API = %q", oc.Statements[7].API)
	}
}

func TestIntentStatements(t *testing.T) {
	p := lowerProgram(t)
	onGo := p.Class("com.ex.MainActivity").Method("onGo")
	ni := onGo.Statements[0]
	if ni.Kind != StmtNewIntentExplicit || ni.Class1 != "com.ex.MainActivity" || ni.Class2 != "com.ex.NextActivity" {
		t.Fatalf("new-intent lowered wrong: %+v", ni)
	}
	if !strings.Contains(ni.Source, "new Intent(MainActivity.class, NextActivity.class)") {
		t.Errorf("Source = %q", ni.Source)
	}
	if pe := onGo.Statements[1]; pe.Kind != StmtPutExtra || pe.Key != "k" || pe.Value != "v" {
		t.Errorf("put-extra should lower to StmtPutExtra{k,v}, got %+v", pe)
	}
	search := p.Class("com.ex.MainActivity").Method("onSearch")
	if search.Statements[0].Kind != StmtNewIntentAction || search.Statements[0].Action != "com.ex.SEARCH" {
		t.Errorf("new-intent-action: %+v", search.Statements[0])
	}
	if search.Statements[1].Kind != StmtSetAction || search.Statements[1].Action != "com.ex.SEARCH2" {
		t.Errorf("set-action: %+v", search.Statements[1])
	}
}

func TestObjectPatternStatements(t *testing.T) {
	p := lowerProgram(t)
	oc := p.Class("com.ex.NextActivity").Method("onCreate")
	kinds := []StmtKind{StmtNewInstance, StmtNewInstanceCall, StmtInstanceOf, StmtInflateFragmentView}
	for i, k := range kinds {
		if oc.Statements[i].Kind != k {
			t.Errorf("stmt[%d].Kind = %d, want %d", i, oc.Statements[i].Kind, k)
		}
		if oc.Statements[i].Class1 != "com.ex.HomeFragment" {
			t.Errorf("stmt[%d].Class1 = %q", i, oc.Statements[i].Class1)
		}
	}
	if !strings.Contains(oc.Statements[1].Source, "HomeFragment.newInstance()") {
		t.Errorf("newInstance Source = %q", oc.Statements[1].Source)
	}
}

func TestClassStatementsFlatten(t *testing.T) {
	p := lowerProgram(t)
	mc := p.Class("com.ex.MainActivity")
	all := mc.Statements()
	var perMethod int
	for _, m := range mc.Methods {
		perMethod += len(m.Statements)
	}
	if len(all) != perMethod {
		t.Fatalf("Statements() = %d, want %d", len(all), perMethod)
	}
}

func TestRenderJava(t *testing.T) {
	p := lowerProgram(t)
	src := RenderJava(p.Class("com.ex.MainActivity"))
	for _, want := range []string{
		"public class MainActivity extends Activity {",
		"public void onCreate() {",
		"setContentView(R.layout.main);",
		"FragmentManager fm = getSupportFragmentManager();",
		"txn.replace(R.id.container, new HomeFragment());",
		"startActivity(intent);",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("RenderJava missing %q:\n%s", want, src)
		}
	}
}

func TestLowerUnknownMethodLookup(t *testing.T) {
	p := lowerProgram(t)
	if p.Class("com.ex.MainActivity").Method("nope") != nil {
		t.Error("Method lookup of missing method must be nil")
	}
	if p.Class("no.such.Class") != nil {
		t.Error("Class lookup of missing class must be nil")
	}
}

func TestSendBroadcastLowering(t *testing.T) {
	sp, err := smali.ParseProgram(map[string][]byte{
		"r.smali": []byte(`
.class Lp/R;
.super Landroid/content/BroadcastReceiver;
.method onReceive()V
    send-broadcast "p.PING"
.end method
`),
	})
	if err != nil {
		t.Fatal(err)
	}
	p := Decompile(sp)
	st := p.Class("p.R").Method("onReceive").Statements[0]
	if st.Action != "p.PING" {
		t.Fatalf("action = %q", st.Action)
	}
	if !strings.Contains(st.Source, `sendBroadcast(new Intent("p.PING"))`) {
		t.Fatalf("source = %q", st.Source)
	}
}
