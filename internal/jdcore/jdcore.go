// Package jdcore lowers parsed smali classes to Java-like statements,
// mirroring the paper's use of jd-core to reconstruct Java code from smali
// before transition-edge calculation (§IV-B1: "we further convert the smali
// code to the corresponding Java code ... for the last step – transition edge
// calculation"). Algorithm 1 pattern-matches textual Java statements
// ("new Intent(Class A0, Class A1)", "F1.newInstance()", ...); this package
// produces those statements in both a typed form (what the analyzer consumes)
// and a rendered source form (what a human or metadata file sees).
package jdcore

import (
	"fmt"
	"strings"

	"fragdroid/internal/smali"
)

// StmtKind classifies a Java-like statement.
type StmtKind int

const (
	// StmtNewIntentExplicit is `intent = new Intent(Src.class, Dst.class)`.
	StmtNewIntentExplicit StmtKind = iota + 1
	// StmtSetClass is `intent.setClass(Src.class, Dst.class)`.
	StmtSetClass
	// StmtNewIntentAction is `intent = new Intent("action")`.
	StmtNewIntentAction
	// StmtSetAction is `intent.setAction("action")`.
	StmtSetAction
	// StmtStartActivity is `startActivity(intent)`.
	StmtStartActivity
	// StmtNewInstance is `new F()`.
	StmtNewInstance
	// StmtNewInstanceCall is `F.newInstance()`.
	StmtNewInstanceCall
	// StmtInstanceOf is `x instanceof F`.
	StmtInstanceOf
	// StmtGetFragmentManager is `getFragmentManager()` or
	// `getSupportFragmentManager()`; Support distinguishes them.
	StmtGetFragmentManager
	// StmtBeginTransaction is `fm.beginTransaction()`.
	StmtBeginTransaction
	// StmtTxnAdd is `txn.add(R.id.container, fragment)`.
	StmtTxnAdd
	// StmtTxnReplace is `txn.replace(R.id.container, fragment)`.
	StmtTxnReplace
	// StmtTxnRemove is `txn.remove(fragment)`.
	StmtTxnRemove
	// StmtTxnCommit is `txn.commit()`.
	StmtTxnCommit
	// StmtInflateFragmentView is a direct fragment view inflation that
	// bypasses the FragmentManager.
	StmtInflateFragmentView
	// StmtSetContentView is `setContentView(R.layout.x)`.
	StmtSetContentView
	// StmtSetClickListener is `findViewById(R.id.x).setOnClickListener(...)`.
	StmtSetClickListener
	// StmtSensitiveCall is an invocation of a sensitive API.
	StmtSensitiveCall
	// StmtSendBroadcast is `sendBroadcast(new Intent("action"))`.
	StmtSendBroadcast
	// StmtPutExtra is `intent.putExtra("key", "value")`.
	StmtPutExtra
	// StmtRequireExtra guards a component on a launching-intent extra; a
	// missing key force-closes the app.
	StmtRequireExtra
	// StmtOther covers statements Algorithm 1 has no interest in.
	StmtOther
)

// Statement is one lowered Java-like statement.
type Statement struct {
	Kind StmtKind
	// Class1 and Class2 carry class operands: for StmtNewIntentExplicit and
	// StmtSetClass, Class1 is the source and Class2 the destination; for the
	// single-class kinds (StmtNewInstance, StmtTxnAdd, ...) Class1 is it.
	Class1, Class2 string
	// Action is the intent action string for the action-based kinds.
	Action string
	// Res is the resource reference operand (@id/..., @layout/...).
	Res string
	// Ident is the handler identifier for StmtSetClickListener.
	Ident string
	// Key and Value carry the extra for StmtPutExtra and StmtRequireExtra.
	Key, Value string
	// API is the sensitive API name for StmtSensitiveCall.
	API string
	// Support is true for getSupportFragmentManager.
	Support bool
	// Source is the rendered Java source line.
	Source string
	// Line is the originating smali line.
	Line int
}

// Method is a lowered method.
type Method struct {
	Name       string
	Statements []Statement
}

// Class is a lowered class.
type Class struct {
	Name    string
	Super   string
	Methods []Method
	// SourceFile is carried over from the smali class.
	SourceFile string
}

// Method returns the named lowered method, or nil.
func (c *Class) Method(name string) *Method {
	for i := range c.Methods {
		if c.Methods[i].Name == name {
			return &c.Methods[i]
		}
	}
	return nil
}

// Statements returns all statements of the class, across methods, in
// declaration order. Algorithm 1 iterates "all lines in A0.java"; this is
// that view.
func (c *Class) Statements() []Statement {
	var out []Statement
	for _, m := range c.Methods {
		out = append(out, m.Statements...)
	}
	return out
}

// Program is a lowered program keyed by class name.
type Program struct {
	classes map[string]*Class
	order   []string
}

// Class returns the lowered class, or nil.
func (p *Program) Class(name string) *Class { return p.classes[name] }

// Names returns lowered class names in insertion order.
func (p *Program) Names() []string { return append([]string(nil), p.order...) }

// Decompile lowers every class of a smali program.
func Decompile(sp *smali.Program) *Program {
	p := &Program{classes: make(map[string]*Class)}
	for _, name := range sp.Names() {
		sc := sp.Class(name)
		jc := &Class{Name: sc.Name, Super: sc.Super, SourceFile: sc.SourceFile}
		for _, m := range sc.Methods {
			jm := Method{Name: m.Name}
			for _, ins := range m.Body {
				jm.Statements = append(jm.Statements, Lower(ins))
			}
			jc.Methods = append(jc.Methods, jm)
		}
		p.classes[jc.Name] = jc
		p.order = append(p.order, jc.Name)
	}
	return p
}

// simple returns the simple (package-free) class name.
func simple(dotted string) string {
	if i := strings.LastIndexByte(dotted, '.'); i >= 0 {
		return dotted[i+1:]
	}
	return dotted
}

// rid renders a resource reference as an R-expression ("@id/x" -> "R.id.x").
func rid(ref string) string {
	s := strings.TrimPrefix(strings.TrimPrefix(ref, "@+"), "@")
	return "R." + strings.ReplaceAll(s, "/", ".")
}

// Lower converts one smali instruction to its Java-like statement.
func Lower(ins smali.Instr) Statement {
	st := Statement{Line: ins.Line}
	switch ins.Op {
	case smali.OpNewIntent:
		st.Kind = StmtNewIntentExplicit
		st.Class1, st.Class2 = ins.Args[0], ins.Args[1]
		st.Source = fmt.Sprintf("Intent intent = new Intent(%s.class, %s.class);",
			simple(st.Class1), simple(st.Class2))
	case smali.OpSetClass:
		st.Kind = StmtSetClass
		st.Class1, st.Class2 = ins.Args[0], ins.Args[1]
		st.Source = fmt.Sprintf("intent.setClass(%s.this, %s.class);",
			simple(st.Class1), simple(st.Class2))
	case smali.OpNewIntentAction:
		st.Kind = StmtNewIntentAction
		st.Action = ins.Args[0]
		st.Source = fmt.Sprintf("Intent intent = new Intent(%q);", st.Action)
	case smali.OpSetAction:
		st.Kind = StmtSetAction
		st.Action = ins.Args[0]
		st.Source = fmt.Sprintf("intent.setAction(%q);", st.Action)
	case smali.OpStartActivity:
		st.Kind = StmtStartActivity
		st.Source = "startActivity(intent);"
	case smali.OpSendBroadcast:
		st.Kind = StmtSendBroadcast
		st.Action = ins.Args[0]
		st.Source = fmt.Sprintf("sendBroadcast(new Intent(%q));", st.Action)
	case smali.OpPutExtra:
		st.Kind = StmtPutExtra
		st.Key, st.Value = ins.Args[0], ins.Args[1]
		st.Source = fmt.Sprintf("intent.putExtra(%q, %q);", st.Key, st.Value)
	case smali.OpRequireExtra:
		st.Kind = StmtRequireExtra
		st.Key = ins.Args[0]
		st.Source = fmt.Sprintf("if (getIntent().getStringExtra(%q) == null) throw new IllegalStateException();", st.Key)
	case smali.OpNewInstance:
		st.Kind = StmtNewInstance
		st.Class1 = ins.Args[0]
		st.Source = fmt.Sprintf("%s obj = new %s();", simple(st.Class1), simple(st.Class1))
	case smali.OpInvokeNewIn:
		st.Kind = StmtNewInstanceCall
		st.Class1 = ins.Args[0]
		st.Source = fmt.Sprintf("%s obj = %s.newInstance();", simple(st.Class1), simple(st.Class1))
	case smali.OpInstanceOf:
		st.Kind = StmtInstanceOf
		st.Class1 = ins.Args[0]
		st.Source = fmt.Sprintf("if (obj instanceof %s) { ... }", simple(st.Class1))
	case smali.OpGetFragmentManager:
		st.Kind = StmtGetFragmentManager
		st.Source = "FragmentManager fm = getFragmentManager();"
	case smali.OpGetSupportFragmentManager:
		st.Kind = StmtGetFragmentManager
		st.Support = true
		st.Source = "FragmentManager fm = getSupportFragmentManager();"
	case smali.OpBeginTransaction:
		st.Kind = StmtBeginTransaction
		st.Source = "FragmentTransaction txn = fm.beginTransaction();"
	case smali.OpTxnAdd:
		st.Kind = StmtTxnAdd
		st.Res, st.Class1 = ins.Args[0], ins.Args[1]
		st.Source = fmt.Sprintf("txn.add(%s, new %s());", rid(st.Res), simple(st.Class1))
	case smali.OpTxnReplace:
		st.Kind = StmtTxnReplace
		st.Res, st.Class1 = ins.Args[0], ins.Args[1]
		st.Source = fmt.Sprintf("txn.replace(%s, new %s());", rid(st.Res), simple(st.Class1))
	case smali.OpTxnRemove:
		st.Kind = StmtTxnRemove
		st.Class1 = ins.Args[0]
		st.Source = fmt.Sprintf("txn.remove(%s);", simple(st.Class1))
	case smali.OpTxnCommit:
		st.Kind = StmtTxnCommit
		st.Source = "txn.commit();"
	case smali.OpInflateView:
		st.Kind = StmtInflateFragmentView
		st.Res, st.Class1 = ins.Args[0], ins.Args[1]
		st.Source = fmt.Sprintf("inflater.inflate(%s, new %s().onCreateView());",
			rid(st.Res), simple(st.Class1))
	case smali.OpSetContentView:
		st.Kind = StmtSetContentView
		st.Res = ins.Args[0]
		st.Source = fmt.Sprintf("setContentView(%s);", rid(st.Res))
	case smali.OpSetClickListener:
		st.Kind = StmtSetClickListener
		st.Res, st.Ident = ins.Args[0], ins.Args[1]
		st.Source = fmt.Sprintf("findViewById(%s).setOnClickListener(v -> %s());",
			rid(st.Res), st.Ident)
	case smali.OpInvokeSensitive:
		st.Kind = StmtSensitiveCall
		st.API = ins.Args[0]
		st.Source = fmt.Sprintf("// sensitive: %s", st.API)
	case smali.OpLoadLibrary:
		st.Kind = StmtSensitiveCall
		st.API = "shell/loadLibrary"
		st.Source = fmt.Sprintf("System.loadLibrary(%q);", ins.Args[0])
	default:
		st.Kind = StmtOther
		st.Source = "// " + ins.String()
	}
	return st
}

// RenderJava renders the whole lowered class as pseudo-Java source. The
// static phase ships this in its metadata output, standing in for the .java
// files jd-core would produce.
func RenderJava(c *Class) string {
	var b strings.Builder
	fmt.Fprintf(&b, "public class %s extends %s {\n", simple(c.Name), simple(c.Super))
	for _, m := range c.Methods {
		fmt.Fprintf(&b, "    public void %s() {\n", m.Name)
		for _, s := range m.Statements {
			fmt.Fprintf(&b, "        %s\n", s.Source)
		}
		b.WriteString("    }\n")
	}
	b.WriteString("}\n")
	return b.String()
}
