package smali

import (
	"fmt"
	"sort"
	"strings"
)

// Well-known framework classes. Classes in the android.* / java.* namespaces
// are framework classes: they are referenced by .super and .implements lines
// but have no .smali file of their own.
const (
	ClassActivity         = "android.app.Activity"
	ClassFragment         = "android.app.Fragment"
	ClassSupportFragment  = "android.support.v4.app.Fragment"
	ClassFragmentActivity = "android.support.v4.app.FragmentActivity"
	ClassObject           = "java.lang.Object"
	ClassIntent           = "android.content.Intent"
	ClassReceiver         = "android.content.BroadcastReceiver"
)

// FrameworkClass reports whether name belongs to the simulated framework
// rather than to application code.
func FrameworkClass(name string) bool {
	return strings.HasPrefix(name, "android.") || strings.HasPrefix(name, "java.")
}

// Instr is one instruction inside a method body.
type Instr struct {
	Op   Op
	Args []string
	Line int // 1-based source line, for diagnostics
}

// String renders the instruction in source form.
func (i Instr) String() string {
	if len(i.Args) == 0 {
		return string(i.Op)
	}
	parts := make([]string, 0, 1+len(i.Args))
	parts = append(parts, string(i.Op))
	spec := opSpecs[i.Op]
	for n, a := range i.Args {
		var k argKind
		if n < len(spec.kinds) {
			k = spec.kinds[n]
		}
		switch k {
		case argType:
			parts = append(parts, ToDescriptor(a))
		case argStr:
			parts = append(parts, fmt.Sprintf("%q", a))
		default:
			parts = append(parts, a)
		}
	}
	return strings.Join(parts, " ")
}

// Method is a named method with an ordered instruction body.
type Method struct {
	Name   string
	Access []string // e.g. ["public"]
	Body   []Instr
}

// Field is a declared field.
type Field struct {
	Name       string
	Descriptor string
	Access     []string
}

// Class is one parsed .smali class.
type Class struct {
	// Name is the dotted class name, e.g. "com.example.MainActivity" or the
	// inner-class form "com.example.MainActivity$1".
	Name string
	// Super is the dotted superclass name.
	Super string
	// Interfaces lists implemented interfaces.
	Interfaces []string
	// Access holds class access flags ("public", "final", ...).
	Access []string
	// RequiresArgs marks fragment classes whose newInstance needs parameters;
	// reflective instantiation of such classes fails (paper §VII-B2, the
	// com.inditex.zara case).
	RequiresArgs bool
	// Fields and Methods preserve declaration order.
	Fields  []Field
	Methods []*Method
	// SourceFile is the archive path the class was parsed from.
	SourceFile string
}

// Check validates a programmatically constructed class the way the parser
// validates source: required directives, identifier-shaped member names, no
// duplicate methods, and per-instruction operand shapes. Classes that come
// out of ParseClass always pass.
func (c *Class) Check() error {
	if c.Name == "" {
		return fmt.Errorf("smali: class with empty name")
	}
	if c.Super == "" {
		return fmt.Errorf("smali: class %s missing superclass", c.Name)
	}
	for _, f := range c.Fields {
		if !isIdent(f.Name) {
			return fmt.Errorf("smali: class %s: invalid field name %q", c.Name, f.Name)
		}
		if f.Descriptor == "" {
			return fmt.Errorf("smali: class %s: field %s without descriptor", c.Name, f.Name)
		}
	}
	seen := make(map[string]bool, len(c.Methods))
	for _, m := range c.Methods {
		if !isIdent(m.Name) {
			return fmt.Errorf("smali: class %s: invalid method name %q", c.Name, m.Name)
		}
		if seen[m.Name] {
			return fmt.Errorf("smali: class %s: duplicate method %s", c.Name, m.Name)
		}
		seen[m.Name] = true
		for _, ins := range m.Body {
			if err := ins.validate(); err != nil {
				return fmt.Errorf("smali: class %s method %s: %w", c.Name, m.Name, err)
			}
		}
	}
	return nil
}

// Method returns the named method, or nil.
func (c *Class) Method(name string) *Method {
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Outer returns the outer-class name for inner classes ("A$1" -> "A"), or ""
// if the class is not an inner class.
func (c *Class) Outer() string {
	if i := strings.IndexByte(c.Name, '$'); i > 0 {
		return c.Name[:i]
	}
	return ""
}

// Program is a set of classes indexed by name, i.e. the decompiled code of a
// whole application.
type Program struct {
	classes map[string]*Class
	order   []string
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return NewProgramSized(0)
}

// NewProgramSized returns an empty program pre-sized for about hint classes.
func NewProgramSized(hint int) *Program {
	return &Program{
		classes: make(map[string]*Class, hint),
		order:   make([]string, 0, hint),
	}
}

// Add inserts a class. Duplicate class names are an error.
func (p *Program) Add(c *Class) error {
	if c.Name == "" {
		return fmt.Errorf("smali: class with empty name")
	}
	if _, dup := p.classes[c.Name]; dup {
		return fmt.Errorf("smali: duplicate class %s", c.Name)
	}
	p.classes[c.Name] = c
	p.order = append(p.order, c.Name)
	return nil
}

// Class returns the named class, or nil.
func (p *Program) Class(name string) *Class {
	return p.classes[name]
}

// Names returns all class names in insertion order. The slice is a copy.
func (p *Program) Names() []string {
	return append([]string(nil), p.order...)
}

// Len reports the number of classes.
func (p *Program) Len() int { return len(p.classes) }

// SuperChain returns the chain of superclass names starting at name's direct
// superclass and ending at the last resolvable ancestor (framework classes
// terminate the chain since they have no .smali file). This is the
// getSuperChain of Algorithm 2. Cycles are broken defensively.
func (p *Program) SuperChain(name string) []string {
	var chain []string
	seen := map[string]bool{name: true}
	cur := p.classes[name]
	for cur != nil && cur.Super != "" {
		if seen[cur.Super] {
			break
		}
		seen[cur.Super] = true
		chain = append(chain, cur.Super)
		if FrameworkClass(cur.Super) {
			break
		}
		cur = p.classes[cur.Super]
	}
	return chain
}

// IsSubclassOf reports whether name transitively extends base (base itself is
// not a subclass of base).
func (p *Program) IsSubclassOf(name, base string) bool {
	for _, s := range p.SuperChain(name) {
		if s == base {
			return true
		}
	}
	return false
}

// IsFragmentClass reports whether name extends android.app.Fragment or
// android.support.v4.app.Fragment (paper §IV-B2 and Algorithm 2).
func (p *Program) IsFragmentClass(name string) bool {
	return p.IsSubclassOf(name, ClassFragment) || p.IsSubclassOf(name, ClassSupportFragment)
}

// IsActivityClass reports whether name extends android.app.Activity or
// android.support.v4.app.FragmentActivity.
func (p *Program) IsActivityClass(name string) bool {
	return p.IsSubclassOf(name, ClassActivity) || p.IsSubclassOf(name, ClassFragmentActivity)
}

// FragmentClasses returns all fragment subclasses, sorted. This implements
// the two-pass scan of §IV-B2: direct subclasses first, then derived classes
// of those subclasses (SuperChain already makes the scan transitive).
func (p *Program) FragmentClasses() []string {
	var out []string
	for name := range p.classes {
		if p.IsFragmentClass(name) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// ActivityClasses returns all activity subclasses, sorted.
func (p *Program) ActivityClasses() []string {
	var out []string
	for name := range p.classes {
		if p.IsActivityClass(name) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// InnerClasses returns the classes declared inside name (dollar-sign naming
// convention), sorted. Algorithm 2's getInnerClass includes the class itself;
// callers that need that behaviour use ClassAndInner.
func (p *Program) InnerClasses(name string) []string {
	prefix := name + "$"
	var out []string
	for n := range p.classes {
		if strings.HasPrefix(n, prefix) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// ClassAndInner returns name followed by its inner classes — the getInnerClass
// set of Algorithm 2.
func (p *Program) ClassAndInner(name string) []string {
	return append([]string{name}, p.InnerClasses(name)...)
}

// UsedClasses returns the set of class names referenced by the instructions
// of the given class (Algorithm 2's getUsedClass), sorted. Only operands with
// class shape count; framework names are included so callers can walk their
// chains uniformly.
func (p *Program) UsedClasses(name string) []string {
	c := p.classes[name]
	if c == nil {
		return nil
	}
	set := make(map[string]bool)
	for _, m := range c.Methods {
		for _, ins := range m.Body {
			spec := opSpecs[ins.Op]
			for n, k := range spec.kinds {
				if k == argType && n < len(ins.Args) {
					set[ins.Args[n]] = true
				}
			}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Validate checks cross-class invariants: every non-framework superclass and
// referenced class must exist in the program.
func (p *Program) Validate() error {
	for _, name := range p.order {
		c := p.classes[name]
		if c.Super == "" {
			return fmt.Errorf("smali: class %s has no superclass", name)
		}
		if !FrameworkClass(c.Super) && p.classes[c.Super] == nil {
			return fmt.Errorf("smali: class %s extends unknown class %s", name, c.Super)
		}
		for _, u := range p.UsedClasses(name) {
			if !FrameworkClass(u) && p.classes[u] == nil {
				return fmt.Errorf("smali: class %s references unknown class %s", name, u)
			}
		}
	}
	return nil
}

// ToDescriptor converts a dotted class name to the Dalvik descriptor form
// used in source ("com.ex.A" -> "Lcom/ex/A;").
func ToDescriptor(dotted string) string {
	return "L" + strings.ReplaceAll(dotted, ".", "/") + ";"
}

// FromDescriptor converts a Dalvik descriptor to a dotted class name. It
// returns an error for malformed descriptors.
func FromDescriptor(desc string) (string, error) {
	if len(desc) < 3 || desc[0] != 'L' || desc[len(desc)-1] != ';' {
		return "", fmt.Errorf("smali: malformed type descriptor %q", desc)
	}
	return strings.ReplaceAll(desc[1:len(desc)-1], "/", "."), nil
}
