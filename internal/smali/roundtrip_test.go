package smali

import (
	"fmt"
	"reflect"
	"testing"
)

// opExamples holds one representative, operand-valid instruction per opcode.
var opExamples = map[Op][]string{
	OpSetContentView:   {"@layout/main"},
	OpSetClickListener: {"@id/btn", "onClick"},
	OpToggleVisible:    {"@id/drawer"},
	OpSetText:          {"@id/label", "hello world"},

	OpNewIntent:       {"p.A", "p.B"},
	OpSetClass:        {"p.A", "p.B"},
	OpNewIntentAction: {"com.x.ACTION"},
	OpSetAction:       {"com.x.ACTION"},
	OpPutExtra:        {"key", `va"l\ue` + "\n"},
	OpStartActivity:   {},
	OpSendBroadcast:   {"android.intent.action.BOOT_COMPLETED"},
	OpFinish:          {},

	OpGetFragmentManager:        {},
	OpGetSupportFragmentManager: {},
	OpBeginTransaction:          {},
	OpTxnAdd:                    {"@id/c", "p.F"},
	OpTxnReplace:                {"@id/c", "p.F"},
	OpTxnRemove:                 {"p.F"},
	OpTxnCommit:                 {},
	OpInflateView:               {"@id/c", "p.F"},

	OpNewInstance: {"p.F"},
	OpInvokeNewIn: {"p.F"},
	OpInstanceOf:  {"p.F"},

	OpShowDialog:   {"Are you sure?"},
	OpShowPopup:    {"menu"},
	OpRequireInput: {"@id/field", "expected value"},
	OpRequireExtra: {"token"},
	OpCrash:        {"boom"},

	OpInvokeSensitive: {"internet/connect"},
	OpLoadLibrary:     {"native-lib"},
	OpLog:             {""},
	OpNop:             {},
}

// TestEveryOpcodeRoundTrips writes a class containing one instruction per
// opcode, parses it back, and demands structural equality — the writer and
// parser must agree on the whole instruction set, including escaping.
func TestEveryOpcodeRoundTrips(t *testing.T) {
	if len(opExamples) != len(opSpecs) {
		for op := range opSpecs {
			if _, ok := opExamples[op]; !ok {
				t.Errorf("opcode %s has no round-trip example", op)
			}
		}
		t.Fatalf("examples cover %d of %d opcodes", len(opExamples), len(opSpecs))
	}
	c := &Class{Name: "p.RoundTrip", Super: ClassActivity, Access: []string{"public"}}
	i := 0
	for op, args := range opExamples {
		m := &Method{
			Name: fmt.Sprintf("m%02d_%s", i, identOf(op)),
			Body: []Instr{{Op: op, Args: append([]string(nil), args...)}},
		}
		c.Methods = append(c.Methods, m)
		i++
	}
	src := WriteClass(c)
	back, err := ParseClass("roundtrip.smali", src)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, src)
	}
	if len(back.Methods) != len(c.Methods) {
		t.Fatalf("method count %d != %d", len(back.Methods), len(c.Methods))
	}
	for j, m := range c.Methods {
		bm := back.Methods[j]
		if bm.Name != m.Name || len(bm.Body) != 1 {
			t.Fatalf("method %s mangled: %+v", m.Name, bm)
		}
		got, want := bm.Body[0], m.Body[0]
		argsEqual := len(got.Args) == len(want.Args) &&
			(len(got.Args) == 0 || reflect.DeepEqual(got.Args, want.Args))
		if got.Op != want.Op || !argsEqual {
			t.Errorf("%s: %v %q != %v %q", m.Name, got.Op, got.Args, want.Op, want.Args)
		}
	}
}

func identOf(op Op) string {
	out := make([]byte, 0, len(op))
	for i := 0; i < len(op); i++ {
		c := op[i]
		if c == '-' {
			c = '_'
		}
		out = append(out, c)
	}
	return string(out)
}
