package smali

import "testing"

func TestIsDottedClass(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"com.example.MainActivity", true},
		{"MainActivity", true},
		{"com.example.MainActivity$1", true},
		{"com.example.Outer$Inner", true},
		{"_private.Cls", true},
		{"$gen.Cls", true},
		{"android.support.v4.app.Fragment", true},
		{"", false},
		{"123", false},
		{"...", false},
		{".", false},
		{"com..Example", false},
		{"com.1bad.Cls", false},
		{".leading.Dot", false},
		{"trailing.Dot.", false},
		{"com.example.Main-Activity", false},
		{"com/example/Main", false},
		{"9", false},
	}
	for _, c := range cases {
		if got := isDottedClass(c.in); got != c.want {
			t.Errorf("isDottedClass(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsIdentifier(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"onGoNext", true},
		{"_handler", true},
		{"$synthetic", true},
		{"onClick2", true},
		{"Outer$1", true},
		{"", false},
		{"1handler", false},
		{"on-click", false},
		{"on click", false},
		{"on.click", false},
	}
	for _, c := range cases {
		if got := isIdentifier(c.in); got != c.want {
			t.Errorf("isIdentifier(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestValidateRejectsBadOperands(t *testing.T) {
	bad := []Instr{
		{Op: OpNewInstance, Args: []string{"123"}, Line: 1},
		{Op: OpNewInstance, Args: []string{"..."}, Line: 2},
		{Op: OpSetClickListener, Args: []string{"@id/x", "1handler"}, Line: 3},
		{Op: OpSetClickListener, Args: []string{"@id/x", "on-click"}, Line: 4},
	}
	for _, ins := range bad {
		if err := ins.validate(); err == nil {
			t.Errorf("validate(%v) accepted invalid operand", ins)
		}
	}
	good := []Instr{
		{Op: OpNewInstance, Args: []string{"com.example.HomeFragment"}, Line: 1},
		{Op: OpSetClickListener, Args: []string{"@id/x", "onNext"}, Line: 2},
	}
	for _, ins := range good {
		if err := ins.validate(); err != nil {
			t.Errorf("validate(%v) rejected valid operand: %v", ins, err)
		}
	}
}
