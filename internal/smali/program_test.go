package smali

import (
	"reflect"
	"testing"
	"testing/quick"
)

// buildProgram assembles a small app-shaped class hierarchy:
//
//	MainActivity (Activity) ─ uses HomeFragment, has inner class MainActivity$1
//	BaseFragment (Fragment) <- HomeFragment <- PromoFragment
//	SettingsActivity (FragmentActivity via support)
//	Helper (plain Object subclass)
func buildProgram(t *testing.T) *Program {
	t.Helper()
	files := map[string][]byte{
		"smali/com/ex/MainActivity.smali": []byte(`
.class public Lcom/ex/MainActivity;
.super Landroid/app/Activity;
.method public onCreate()V
    set-content-view @layout/main
    new-instance Lcom/ex/Helper;
.end method
`),
		"smali/com/ex/MainActivity$1.smali": []byte(`
.class Lcom/ex/MainActivity$1;
.super Ljava/lang/Object;
.method public run()V
    invoke-newinstance Lcom/ex/HomeFragment;
.end method
`),
		"smali/com/ex/BaseFragment.smali": []byte(`
.class public Lcom/ex/BaseFragment;
.super Landroid/app/Fragment;
`),
		"smali/com/ex/HomeFragment.smali": []byte(`
.class public Lcom/ex/HomeFragment;
.super Lcom/ex/BaseFragment;
`),
		"smali/com/ex/PromoFragment.smali": []byte(`
.class public Lcom/ex/PromoFragment;
.super Lcom/ex/HomeFragment;
.requires-args
`),
		"smali/com/ex/SettingsActivity.smali": []byte(`
.class public Lcom/ex/SettingsActivity;
.super Landroid/support/v4/app/FragmentActivity;
`),
		"smali/com/ex/Helper.smali": []byte(`
.class Lcom/ex/Helper;
.super Ljava/lang/Object;
`),
	}
	p, err := ParseProgram(files)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	return p
}

func TestSuperChain(t *testing.T) {
	p := buildProgram(t)
	got := p.SuperChain("com.ex.PromoFragment")
	want := []string{"com.ex.HomeFragment", "com.ex.BaseFragment", ClassFragment}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SuperChain = %v, want %v", got, want)
	}
	if chain := p.SuperChain("com.ex.Helper"); len(chain) != 1 || chain[0] != ClassObject {
		t.Fatalf("Helper chain = %v", chain)
	}
	if chain := p.SuperChain("no.such.Class"); chain != nil {
		t.Fatalf("missing class chain = %v", chain)
	}
}

func TestSuperChainCycleIsBroken(t *testing.T) {
	p := NewProgram()
	a := &Class{Name: "p.A", Super: "p.B"}
	b := &Class{Name: "p.B", Super: "p.A"}
	if err := p.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(b); err != nil {
		t.Fatal(err)
	}
	chain := p.SuperChain("p.A")
	if len(chain) > 2 {
		t.Fatalf("cycle not broken: %v", chain)
	}
}

func TestClassification(t *testing.T) {
	p := buildProgram(t)
	if !p.IsActivityClass("com.ex.MainActivity") {
		t.Error("MainActivity not classified as activity")
	}
	if !p.IsActivityClass("com.ex.SettingsActivity") {
		t.Error("support FragmentActivity subclass not classified as activity")
	}
	if p.IsActivityClass("com.ex.HomeFragment") {
		t.Error("fragment misclassified as activity")
	}
	for _, f := range []string{"com.ex.BaseFragment", "com.ex.HomeFragment", "com.ex.PromoFragment"} {
		if !p.IsFragmentClass(f) {
			t.Errorf("%s not classified as fragment", f)
		}
	}
	wantFrags := []string{"com.ex.BaseFragment", "com.ex.HomeFragment", "com.ex.PromoFragment"}
	if got := p.FragmentClasses(); !reflect.DeepEqual(got, wantFrags) {
		t.Errorf("FragmentClasses = %v", got)
	}
	wantActs := []string{"com.ex.MainActivity", "com.ex.SettingsActivity"}
	if got := p.ActivityClasses(); !reflect.DeepEqual(got, wantActs) {
		t.Errorf("ActivityClasses = %v", got)
	}
}

func TestInnerAndUsedClasses(t *testing.T) {
	p := buildProgram(t)
	if got := p.InnerClasses("com.ex.MainActivity"); !reflect.DeepEqual(got, []string{"com.ex.MainActivity$1"}) {
		t.Fatalf("InnerClasses = %v", got)
	}
	if got := p.ClassAndInner("com.ex.MainActivity"); len(got) != 2 || got[0] != "com.ex.MainActivity" {
		t.Fatalf("ClassAndInner = %v", got)
	}
	if got := p.UsedClasses("com.ex.MainActivity"); !reflect.DeepEqual(got, []string{"com.ex.Helper"}) {
		t.Fatalf("UsedClasses(Main) = %v", got)
	}
	if got := p.UsedClasses("com.ex.MainActivity$1"); !reflect.DeepEqual(got, []string{"com.ex.HomeFragment"}) {
		t.Fatalf("UsedClasses(Main$1) = %v", got)
	}
}

func TestOuter(t *testing.T) {
	c := &Class{Name: "a.b.C$2"}
	if c.Outer() != "a.b.C" {
		t.Fatalf("Outer = %q", c.Outer())
	}
	c = &Class{Name: "a.b.C"}
	if c.Outer() != "" {
		t.Fatalf("Outer of top-level = %q", c.Outer())
	}
}

func TestValidateRejectsDanglingReferences(t *testing.T) {
	files := map[string][]byte{
		"a.smali": []byte(".class Lp/A;\n.super Lp/Missing;\n"),
	}
	if _, err := ParseProgram(files); err == nil {
		t.Error("dangling super: want error")
	}
	files = map[string][]byte{
		"a.smali": []byte(".class Lp/A;\n.super Ljava/lang/Object;\n.method m()V\nnew-instance Lp/Nope;\n.end method\n"),
	}
	if _, err := ParseProgram(files); err == nil {
		t.Error("dangling reference: want error")
	}
}

func TestAddDuplicate(t *testing.T) {
	p := NewProgram()
	if err := p.Add(&Class{Name: "p.A", Super: ClassObject}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(&Class{Name: "p.A", Super: ClassObject}); err == nil {
		t.Fatal("duplicate Add: want error")
	}
	if err := p.Add(&Class{}); err == nil {
		t.Fatal("empty name: want error")
	}
}

func TestDescriptorRoundTrip(t *testing.T) {
	f := func(segs []string) bool {
		// Build a plausible dotted name from non-empty alpha segments.
		var parts []string
		for _, s := range segs {
			clean := ""
			for _, r := range s {
				if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
					clean += string(r)
				}
			}
			if clean != "" {
				parts = append(parts, clean)
			}
		}
		if len(parts) == 0 {
			return true
		}
		dotted := parts[0]
		for _, p := range parts[1:] {
			dotted += "." + p
		}
		back, err := FromDescriptor(ToDescriptor(dotted))
		return err == nil && back == dotted
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromDescriptorErrors(t *testing.T) {
	for _, bad := range []string{"", "L;", "Lfoo", "foo;", "X", "Lp/A"} {
		if _, err := FromDescriptor(bad); err == nil {
			t.Errorf("FromDescriptor(%q): want error", bad)
		}
	}
}

func TestFrameworkClass(t *testing.T) {
	if !FrameworkClass("android.app.Activity") || !FrameworkClass("java.lang.Object") {
		t.Error("framework classes not recognized")
	}
	if FrameworkClass("com.example.Main") {
		t.Error("app class flagged as framework")
	}
}
