// Package smali implements the smali-like class language of the synthetic
// application package. Apktool in the paper's pipeline turns DEX bytecode
// into .smali files; our packages carry code in this dialect directly. The
// package provides a lexer/parser, a program-wide class model with
// inheritance resolution (the getSuperChain of Algorithm 2), and a writer
// used by the corpus generators.
//
// A class file looks like:
//
//	.class public Lcom/example/MainActivity;
//	.super Landroid/app/Activity;
//	.implements Lcom/example/HomeFragment$Host;
//
//	.field private mUser:Ljava/lang/String;
//
//	.method public onCreate()V
//	    set-content-view @layout/activity_main
//	    set-click-listener @id/btn_next onNext
//	    get-fragment-manager
//	    begin-transaction
//	    txn-add @id/container Lcom/example/HomeFragment;
//	    txn-commit
//	.end method
//
// Instructions are one per line: an opcode followed by whitespace-separated
// operands (type descriptors in Dalvik "Lpkg/Cls;" form, resource references
// in "@kind/name" form, and double-quoted strings).
package smali

import "fmt"

// Op is an instruction opcode.
type Op string

// The instruction set. It covers exactly the behaviours FragDroid's paper
// reasons about: activity starts (explicit and action-based), fragment
// transactions, direct fragment loading without a FragmentManager, widget
// listener registration, input/extras guards, dialogs and popups, drawer
// toggling, and sensitive API invocation.
const (
	// UI wiring.
	OpSetContentView   Op = "set-content-view"   // @layout/name
	OpSetClickListener Op = "set-click-listener" // @id/x methodName
	OpToggleVisible    Op = "toggle-visible"     // @id/x
	OpSetText          Op = "set-text"           // @id/x "value"

	// Activity transitions (Algorithm 1 patterns).
	OpNewIntent       Op = "new-intent"        // Lsrc; Ldst;       == new Intent(A0.class, A1.class)
	OpSetClass        Op = "set-class"         // Lsrc; Ldst;       == intent.setClass(A0, A1)
	OpNewIntentAction Op = "new-intent-action" // "action"          == new Intent(String action)
	OpSetAction       Op = "set-action"        // "action"          == intent.setAction(action)
	OpPutExtra        Op = "put-extra"         // "key" "value"
	OpStartActivity   Op = "start-activity"    //                   == startActivity(intent)
	OpSendBroadcast   Op = "send-broadcast"    // "action"          == sendBroadcast(new Intent(action))
	OpFinish          Op = "finish"

	// Fragment machinery.
	OpGetFragmentManager        Op = "get-fragment-manager"
	OpGetSupportFragmentManager Op = "get-support-fragment-manager"
	OpBeginTransaction          Op = "begin-transaction"
	OpTxnAdd                    Op = "txn-add"     // @id/container Lfrag;
	OpTxnReplace                Op = "txn-replace" // @id/container Lfrag;
	OpTxnRemove                 Op = "txn-remove"  // Lfrag;
	OpTxnCommit                 Op = "txn-commit"
	OpInflateView               Op = "inflate-view" // @id/container Lfrag;  direct load, NO FragmentManager

	// Generic object patterns Algorithm 1 scans for.
	OpNewInstance Op = "new-instance" // Lclass;           == new F1()
	OpInvokeNewIn Op = "invoke-newinstance"
	// OpInvokeNewIn: Lclass;                               == F1.newInstance()
	OpInstanceOf Op = "instance-of" // Lclass;              == instanceof(F1)

	// Behaviour that perturbs dynamic testing.
	OpShowDialog   Op = "show-dialog"   // "text"   modal dialog, dismissed by blank click
	OpShowPopup    Op = "show-popup"    // "text"   action-bar popup menu
	OpRequireInput Op = "require-input" // @id/field "expected"  abort method unless matched
	OpRequireExtra Op = "require-extra" // "key"    FC unless the launching intent has it
	OpCrash        Op = "crash"         // "reason" unconditional force close

	// Monitoring.
	OpInvokeSensitive Op = "invoke-sensitive" // "category/api"
	OpLoadLibrary     Op = "load-library"     // "name"   counts as shell/loadLibrary
	OpLog             Op = "log"              // "msg"
	OpNop             Op = "nop"
)

// opSpec describes the operand contract of an opcode.
type opSpec struct {
	argc  int
	kinds []argKind // parallel to operands
}

type argKind int

const (
	argType  argKind = iota + 1 // Dalvik type descriptor (Lx/Y;)
	argRes                      // resource reference (@kind/name)
	argStr                      // quoted string (unquoted by the lexer)
	argIdent                    // bare identifier (method name)
)

var opSpecs = map[Op]opSpec{
	OpSetContentView:   {1, []argKind{argRes}},
	OpSetClickListener: {2, []argKind{argRes, argIdent}},
	OpToggleVisible:    {1, []argKind{argRes}},
	OpSetText:          {2, []argKind{argRes, argStr}},

	OpNewIntent:       {2, []argKind{argType, argType}},
	OpSetClass:        {2, []argKind{argType, argType}},
	OpNewIntentAction: {1, []argKind{argStr}},
	OpSetAction:       {1, []argKind{argStr}},
	OpPutExtra:        {2, []argKind{argStr, argStr}},
	OpStartActivity:   {0, nil},
	OpSendBroadcast:   {1, []argKind{argStr}},
	OpFinish:          {0, nil},

	OpGetFragmentManager:        {0, nil},
	OpGetSupportFragmentManager: {0, nil},
	OpBeginTransaction:          {0, nil},
	OpTxnAdd:                    {2, []argKind{argRes, argType}},
	OpTxnReplace:                {2, []argKind{argRes, argType}},
	OpTxnRemove:                 {1, []argKind{argType}},
	OpTxnCommit:                 {0, nil},
	OpInflateView:               {2, []argKind{argRes, argType}},

	OpNewInstance: {1, []argKind{argType}},
	OpInvokeNewIn: {1, []argKind{argType}},
	OpInstanceOf:  {1, []argKind{argType}},

	OpShowDialog:   {1, []argKind{argStr}},
	OpShowPopup:    {1, []argKind{argStr}},
	OpRequireInput: {2, []argKind{argRes, argStr}},
	OpRequireExtra: {1, []argKind{argStr}},
	OpCrash:        {1, []argKind{argStr}},

	OpInvokeSensitive: {1, []argKind{argStr}},
	OpLoadLibrary:     {1, []argKind{argStr}},
	OpLog:             {1, []argKind{argStr}},
	OpNop:             {0, nil},
}

// KnownOp reports whether op is part of the instruction set.
func KnownOp(op Op) bool {
	_, ok := opSpecs[op]
	return ok
}

// validate checks operand count and shapes for an instruction.
func (i Instr) validate() error {
	spec, ok := opSpecs[i.Op]
	if !ok {
		return fmt.Errorf("line %d: unknown opcode %q", i.Line, i.Op)
	}
	if len(i.Args) != spec.argc {
		return fmt.Errorf("line %d: %s wants %d operands, got %d", i.Line, i.Op, spec.argc, len(i.Args))
	}
	for n, k := range spec.kinds {
		a := i.Args[n]
		switch k {
		case argType:
			if !isDottedClass(a) {
				return fmt.Errorf("line %d: %s operand %d: %q is not a class", i.Line, i.Op, n+1, a)
			}
		case argRes:
			if len(a) == 0 || a[0] != '@' {
				return fmt.Errorf("line %d: %s operand %d: %q is not a resource reference", i.Line, i.Op, n+1, a)
			}
		case argIdent:
			if !isIdentifier(a) {
				return fmt.Errorf("line %d: %s operand %d: %q is not an identifier", i.Line, i.Op, n+1, a)
			}
		case argStr:
			// any string, including empty
		}
	}
	return nil
}

// isDottedClass checks a parsed (dotted) class name: one or more non-empty
// dot-separated segments, each shaped like a Java identifier (a leading
// letter, '_' or '$'; digits only afterwards). Rejects all-digit and
// dot-only strings such as "123" or "...".
func isDottedClass(s string) bool {
	if s == "" {
		return false
	}
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if !isIdentifier(s[start:i]) {
				return false
			}
			start = i + 1
		}
	}
	return true
}

// isIdentifier checks a Java-identifier-shaped name: a letter, '_' or '$'
// first, then letters, digits, '_' or '$'. Inner-class segments like
// "Outer$1" are identifiers under this rule because the digit follows '$'.
func isIdentifier(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		letter := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '$'
		digit := c >= '0' && c <= '9'
		if !letter && !(digit && i > 0) {
			return false
		}
	}
	return true
}
