package smali

import (
	"reflect"
	"strings"
	"testing"
)

const mainSmali = `# MainActivity of the demo app
.class public Lcom/example/MainActivity;
.super Landroid/app/Activity;
.implements Lcom/example/HomeFragment$Host;

.field private mUser:Ljava/lang/String;

.method public onCreate()V
    set-content-view @layout/activity_main
    set-click-listener @id/btn_next onNext
    get-fragment-manager
    begin-transaction
    txn-add @id/container Lcom/example/HomeFragment;
    txn-commit
    invoke-sensitive "internet/connect"
.end method

.method public onNext()V
    new-intent Lcom/example/MainActivity; Lcom/example/DetailActivity;
    start-activity
.end method

.method public onLogin()V
    require-input @id/edit_user "alice"
    new-intent-action "com.example.HOME"
    start-activity
.end method
`

func parseMain(t *testing.T) *Class {
	t.Helper()
	c, err := ParseClass("smali/com/example/MainActivity.smali", []byte(mainSmali))
	if err != nil {
		t.Fatalf("ParseClass: %v", err)
	}
	return c
}

func TestParseClassHeader(t *testing.T) {
	c := parseMain(t)
	if c.Name != "com.example.MainActivity" {
		t.Errorf("Name = %q", c.Name)
	}
	if c.Super != ClassActivity {
		t.Errorf("Super = %q", c.Super)
	}
	if len(c.Interfaces) != 1 || c.Interfaces[0] != "com.example.HomeFragment$Host" {
		t.Errorf("Interfaces = %v", c.Interfaces)
	}
	if len(c.Access) != 1 || c.Access[0] != "public" {
		t.Errorf("Access = %v", c.Access)
	}
	if len(c.Fields) != 1 || c.Fields[0].Name != "mUser" || c.Fields[0].Descriptor != "Ljava/lang/String;" {
		t.Errorf("Fields = %+v", c.Fields)
	}
}

func TestParseMethodBodies(t *testing.T) {
	c := parseMain(t)
	if len(c.Methods) != 3 {
		t.Fatalf("methods = %d, want 3", len(c.Methods))
	}
	oc := c.Method("onCreate")
	if oc == nil || len(oc.Body) != 7 {
		t.Fatalf("onCreate body = %+v", oc)
	}
	wantOps := []Op{OpSetContentView, OpSetClickListener, OpGetFragmentManager,
		OpBeginTransaction, OpTxnAdd, OpTxnCommit, OpInvokeSensitive}
	for i, ins := range oc.Body {
		if ins.Op != wantOps[i] {
			t.Errorf("onCreate[%d].Op = %s, want %s", i, ins.Op, wantOps[i])
		}
	}
	add := oc.Body[4]
	if !reflect.DeepEqual(add.Args, []string{"@id/container", "com.example.HomeFragment"}) {
		t.Errorf("txn-add args = %v", add.Args)
	}
	next := c.Method("onNext")
	if next.Body[0].Args[1] != "com.example.DetailActivity" {
		t.Errorf("new-intent args = %v", next.Body[0].Args)
	}
	login := c.Method("onLogin")
	if !reflect.DeepEqual(login.Body[0].Args, []string{"@id/edit_user", "alice"}) {
		t.Errorf("require-input args = %v", login.Body[0].Args)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no class", ".super Landroid/app/Activity;"},
		{"no super", ".class Lp/A;"},
		{"dup class directive", ".class Lp/A;\n.class Lp/B;\n.super Lp/C;"},
		{"bad descriptor", ".class public NotADescriptor\n.super Landroid/app/Activity;"},
		{"instr outside method", ".class Lp/A;\n.super Landroid/app/Activity;\nnop"},
		{"unknown op", ".class Lp/A;\n.super Landroid/app/Activity;\n.method m()V\nbogus-op\n.end method"},
		{"wrong arity", ".class Lp/A;\n.super Landroid/app/Activity;\n.method m()V\nstart-activity extra\n.end method"},
		{"unterminated method", ".class Lp/A;\n.super Landroid/app/Activity;\n.method m()V\nnop"},
		{"unterminated string", ".class Lp/A;\n.super Landroid/app/Activity;\n.method m()V\nlog \"oops\n.end method"},
		{"nested method", ".class Lp/A;\n.super Landroid/app/Activity;\n.method a()V\n.method b()V\n.end method\n.end method"},
		{"dup method", ".class Lp/A;\n.super Landroid/app/Activity;\n.method a()V\n.end method\n.method a()V\n.end method"},
		{"bad res ref", ".class Lp/A;\n.super Landroid/app/Activity;\n.method m()V\nset-content-view layout/x\n.end method"},
		{"unknown directive", ".class Lp/A;\n.super Landroid/app/Activity;\n.bogus"},
	}
	for _, tc := range cases {
		if _, err := ParseClass("f.smali", []byte(tc.src)); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestTokenize(t *testing.T) {
	toks, err := tokenize(`  put-extra "user name" "a\"b\\c"  # trailing comment`, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"put-extra", "user name", `a"b\c`}
	if !reflect.DeepEqual(toks, want) {
		t.Fatalf("toks = %q, want %q", toks, want)
	}
	toks, err = tokenize(`log ""`, nil)
	if err != nil || len(toks) != 2 || toks[1] != "" {
		t.Fatalf("empty string token: %q, %v", toks, err)
	}
	if toks, _ := tokenize("# full comment line", nil); len(toks) != 0 {
		t.Fatalf("comment line: %q", toks)
	}
}

func TestWriteClassRoundTrip(t *testing.T) {
	c := parseMain(t)
	src := WriteClass(c)
	back, err := ParseClass(c.SourceFile, src)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, src)
	}
	back.SourceFile = c.SourceFile
	// Instruction lines differ; compare structurally.
	if back.Name != c.Name || back.Super != c.Super {
		t.Fatalf("header mismatch: %+v", back)
	}
	if len(back.Methods) != len(c.Methods) {
		t.Fatalf("method count: %d vs %d", len(back.Methods), len(c.Methods))
	}
	for i, m := range c.Methods {
		bm := back.Methods[i]
		if bm.Name != m.Name || len(bm.Body) != len(m.Body) {
			t.Fatalf("method %s mismatch", m.Name)
		}
		for j := range m.Body {
			if bm.Body[j].Op != m.Body[j].Op || !reflect.DeepEqual(bm.Body[j].Args, m.Body[j].Args) {
				t.Errorf("%s[%d]: %v vs %v", m.Name, j, bm.Body[j], m.Body[j])
			}
		}
	}
}

func TestRequiresArgsDirective(t *testing.T) {
	src := ".class Lp/F;\n.super Landroid/app/Fragment;\n.requires-args\n"
	c, err := ParseClass("f.smali", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if !c.RequiresArgs {
		t.Fatal("RequiresArgs not set")
	}
	out := string(WriteClass(c))
	if !strings.Contains(out, ".requires-args") {
		t.Fatalf("writer dropped .requires-args:\n%s", out)
	}
}
