package smali

import "testing"

// FuzzParseClass: the parser must never panic and, whenever it accepts an
// input, the writer must produce source the parser accepts again.
func FuzzParseClass(f *testing.F) {
	f.Add(".class Lp/A;\n.super Landroid/app/Activity;\n")
	f.Add(".class public Lcom/x/Main;\n.super Landroid/app/Activity;\n.method onCreate()V\n    set-content-view @layout/main\n.end method\n")
	f.Add(".class Lp/F;\n.super Landroid/app/Fragment;\n.requires-args\n.field private x:I\n")
	f.Add(".method broken()V\n")
	f.Add("garbage\x00bytes")
	f.Add(`.class Lp/A;` + "\n" + `.super Lp/B;` + "\n" + `.method m()V` + "\n" + `log "\t\n\\"` + "\n" + `.end method` + "\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseClass("fuzz.smali", []byte(src))
		if err != nil {
			return
		}
		out := WriteClass(c)
		c2, err := ParseClass("fuzz2.smali", out)
		if err != nil {
			t.Fatalf("writer output rejected: %v\ninput: %q\noutput:\n%s", err, src, out)
		}
		if c2.Name != c.Name || c2.Super != c.Super || len(c2.Methods) != len(c.Methods) {
			t.Fatalf("round trip changed structure: %+v vs %+v", c2, c)
		}
	})
}
