package smali

import "testing"

// FuzzParseClass: the parser must never panic and, whenever it accepts an
// input, the writer must produce source the parser accepts again.
func FuzzParseClass(f *testing.F) {
	f.Add(".class Lp/A;\n.super Landroid/app/Activity;\n")
	f.Add(".class public Lcom/x/Main;\n.super Landroid/app/Activity;\n.method onCreate()V\n    set-content-view @layout/main\n.end method\n")
	f.Add(".class Lp/F;\n.super Landroid/app/Fragment;\n.requires-args\n.field private x:I\n")
	f.Add(".method broken()V\n")
	f.Add("garbage\x00bytes")
	f.Add(`.class Lp/A;` + "\n" + `.super Lp/B;` + "\n" + `.method m()V` + "\n" + `log "\t\n\\"` + "\n" + `.end method` + "\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseClass("fuzz.smali", []byte(src))
		if err != nil {
			return
		}
		out := WriteClass(c)
		c2, err := ParseClass("fuzz2.smali", out)
		if err != nil {
			t.Fatalf("writer output rejected: %v\ninput: %q\noutput:\n%s", err, src, out)
		}
		if c2.Name != c.Name || c2.Super != c.Super || len(c2.Methods) != len(c.Methods) {
			t.Fatalf("round trip changed structure: %+v vs %+v", c2, c)
		}
	})
}

// FuzzParseProgram feeds two-file programs through the shared-interner parse
// path. The seeds deliberately repeat class and superclass descriptors across
// files so the interning branches are exercised; on an accepted program every
// class must survive a write/reparse round trip.
func FuzzParseProgram(f *testing.F) {
	f.Add(
		".class Lp/A;\n.super Landroid/app/Activity;\n",
		".class Lp/B;\n.super Landroid/app/Activity;\n",
	)
	// Duplicate descriptors across files: B extends A, both reference A.
	f.Add(
		".class public Lcom/x/A;\n.super Landroid/app/Activity;\n.method m()V\n    new-intent Lcom/x/A; Lcom/x/B;\n    start-activity\n.end method\n",
		".class public Lcom/x/B;\n.super Lcom/x/A;\n.method m()V\n    new-intent Lcom/x/B; Lcom/x/A;\n    start-activity\n.end method\n",
	)
	// Same class name in both files: must be rejected, not crash.
	f.Add(
		".class Lp/A;\n.super Landroid/app/Activity;\n",
		".class Lp/A;\n.super Landroid/app/Activity;\n",
	)
	// Shared access flags, fields, and string escapes across files.
	f.Add(
		".class public final Lp/F;\n.super Landroid/app/Fragment;\n.field private x:I\n.method m()V\n    log \"a\\\"b\"\n.end method\n",
		".class public final Lp/G;\n.super Landroid/app/Fragment;\n.field private x:I\n.method m()V\n    log \"a\\\"b\"\n.end method\n",
	)
	f.Fuzz(func(t *testing.T, srcA, srcB string) {
		files := map[string][]byte{
			"smali/a.smali": []byte(srcA),
			"smali/b.smali": []byte(srcB),
		}
		p, err := ParseProgram(files)
		if err != nil {
			return
		}
		for _, name := range p.Names() {
			c := p.Class(name)
			out := WriteClass(c)
			c2, err := ParseClass(c.SourceFile, out)
			if err != nil {
				t.Fatalf("writer output rejected for %s: %v\noutput:\n%s", name, err, out)
			}
			if c2.Name != c.Name || c2.Super != c.Super || len(c2.Methods) != len(c.Methods) {
				t.Fatalf("round trip changed %s: %+v vs %+v", name, c2, c)
			}
		}
	})
}
