package smali

import (
	"fmt"
	"sort"
	"strings"
)

// ParseClass parses a single .smali file into a Class. sourceFile is recorded
// for diagnostics and metadata output.
func ParseClass(sourceFile string, data []byte) (*Class, error) {
	c := &Class{SourceFile: sourceFile}
	var cur *Method

	lines := strings.Split(string(data), "\n")
	for ln, raw := range lines {
		line := ln + 1
		toks, err := tokenize(raw)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", sourceFile, line, err)
		}
		if len(toks) == 0 {
			continue
		}
		head := toks[0]
		switch {
		case head == ".class":
			if c.Name != "" {
				return nil, fmt.Errorf("%s:%d: duplicate .class directive", sourceFile, line)
			}
			if len(toks) < 2 {
				return nil, fmt.Errorf("%s:%d: .class needs a type descriptor", sourceFile, line)
			}
			name, err := FromDescriptor(toks[len(toks)-1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", sourceFile, line, err)
			}
			c.Name = name
			c.Access, err = identList(toks[1 : len(toks)-1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", sourceFile, line, err)
			}

		case head == ".super":
			if len(toks) != 2 {
				return nil, fmt.Errorf("%s:%d: .super needs exactly one descriptor", sourceFile, line)
			}
			sup, err := FromDescriptor(toks[1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", sourceFile, line, err)
			}
			c.Super = sup

		case head == ".implements":
			if len(toks) != 2 {
				return nil, fmt.Errorf("%s:%d: .implements needs exactly one descriptor", sourceFile, line)
			}
			iface, err := FromDescriptor(toks[1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", sourceFile, line, err)
			}
			c.Interfaces = append(c.Interfaces, iface)

		case head == ".requires-args":
			c.RequiresArgs = true

		case head == ".field":
			if len(toks) < 2 {
				return nil, fmt.Errorf("%s:%d: .field needs a name:descriptor", sourceFile, line)
			}
			decl := toks[len(toks)-1]
			colon := strings.IndexByte(decl, ':')
			if colon <= 0 || colon == len(decl)-1 {
				return nil, fmt.Errorf("%s:%d: malformed field %q", sourceFile, line, decl)
			}
			fname := decl[:colon]
			if !isIdent(fname) {
				return nil, fmt.Errorf("%s:%d: invalid field name %q", sourceFile, line, fname)
			}
			access, err := identList(toks[1 : len(toks)-1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", sourceFile, line, err)
			}
			c.Fields = append(c.Fields, Field{
				Name:       fname,
				Descriptor: decl[colon+1:],
				Access:     access,
			})

		case head == ".method":
			if cur != nil {
				return nil, fmt.Errorf("%s:%d: nested .method", sourceFile, line)
			}
			if len(toks) < 2 {
				return nil, fmt.Errorf("%s:%d: .method needs a signature", sourceFile, line)
			}
			sig := toks[len(toks)-1]
			name := sig
			if p := strings.IndexByte(sig, '('); p > 0 {
				name = sig[:p]
			}
			if !isIdent(name) {
				return nil, fmt.Errorf("%s:%d: invalid method name %q", sourceFile, line, name)
			}
			if c.Method(name) != nil {
				return nil, fmt.Errorf("%s:%d: duplicate method %s", sourceFile, line, name)
			}
			access, err := identList(toks[1 : len(toks)-1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", sourceFile, line, err)
			}
			cur = &Method{Name: name, Access: access}

		case head == ".end":
			if len(toks) != 2 || toks[1] != "method" {
				return nil, fmt.Errorf("%s:%d: malformed .end", sourceFile, line)
			}
			if cur == nil {
				return nil, fmt.Errorf("%s:%d: .end method without .method", sourceFile, line)
			}
			c.Methods = append(c.Methods, cur)
			cur = nil

		case strings.HasPrefix(head, "."):
			return nil, fmt.Errorf("%s:%d: unknown directive %s", sourceFile, line, head)

		default:
			if cur == nil {
				return nil, fmt.Errorf("%s:%d: instruction %q outside a method", sourceFile, line, head)
			}
			ins, err := parseInstr(toks, line)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sourceFile, err)
			}
			cur.Body = append(cur.Body, ins)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("%s: unterminated method %s", sourceFile, cur.Name)
	}
	if c.Name == "" {
		return nil, fmt.Errorf("%s: missing .class directive", sourceFile)
	}
	if c.Super == "" {
		return nil, fmt.Errorf("%s: class %s missing .super directive", sourceFile, c.Name)
	}
	return c, nil
}

// isIdent checks a Java-identifier-shaped name.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '$':
		default:
			return false
		}
	}
	return true
}

// identList validates a slice of access-flag tokens.
func identList(toks []string) ([]string, error) {
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if !isIdent(t) {
			return nil, fmt.Errorf("invalid modifier %q", t)
		}
		out = append(out, t)
	}
	return out, nil
}

// parseInstr converts a token line into a validated instruction. Type
// descriptors are normalized to dotted class names.
func parseInstr(toks []string, line int) (Instr, error) {
	op := Op(toks[0])
	args := make([]string, 0, len(toks)-1)
	for _, t := range toks[1:] {
		if len(t) >= 3 && t[0] == 'L' && t[len(t)-1] == ';' {
			dotted, err := FromDescriptor(t)
			if err != nil {
				return Instr{}, fmt.Errorf("line %d: %w", line, err)
			}
			args = append(args, dotted)
			continue
		}
		args = append(args, t)
	}
	ins := Instr{Op: op, Args: args, Line: line}
	if err := ins.validate(); err != nil {
		return Instr{}, err
	}
	return ins, nil
}

// tokenize splits a source line into tokens, honouring double quotes and '#'
// comments. Quoted tokens are returned unquoted.
func tokenize(raw string) ([]string, error) {
	var toks []string
	var cur strings.Builder
	inQuote := false
	haveTok := false
	flush := func() {
		if haveTok {
			toks = append(toks, cur.String())
			cur.Reset()
			haveTok = false
		}
	}
	for i := 0; i < len(raw); i++ {
		ch := raw[i]
		switch {
		case inQuote:
			switch ch {
			case '"':
				inQuote = false
				flush()
			case '\\':
				if i+1 < len(raw) {
					i++
					switch raw[i] {
					case 'n':
						cur.WriteByte('\n')
					case 't':
						cur.WriteByte('\t')
					case '"':
						cur.WriteByte('"')
					case '\\':
						cur.WriteByte('\\')
					default:
						return nil, fmt.Errorf("bad escape \\%c", raw[i])
					}
				} else {
					return nil, fmt.Errorf("dangling escape")
				}
			default:
				cur.WriteByte(ch)
			}
		case ch == '"':
			flush()
			inQuote = true
			haveTok = true // empty strings are valid tokens
		case ch == '#':
			flush()
			return toks, nil
		case ch == ' ' || ch == '\t' || ch == '\r':
			flush()
		default:
			cur.WriteByte(ch)
			haveTok = true
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated string literal")
	}
	flush()
	return toks, nil
}

// WriteClass renders a class back to .smali source. The output round-trips
// through ParseClass.
func WriteClass(c *Class) []byte {
	var b strings.Builder
	b.WriteString(".class ")
	for _, a := range c.Access {
		b.WriteString(a)
		b.WriteByte(' ')
	}
	b.WriteString(ToDescriptor(c.Name))
	b.WriteByte('\n')
	b.WriteString(".super ")
	b.WriteString(ToDescriptor(c.Super))
	b.WriteByte('\n')
	for _, i := range c.Interfaces {
		b.WriteString(".implements ")
		b.WriteString(ToDescriptor(i))
		b.WriteByte('\n')
	}
	if c.RequiresArgs {
		b.WriteString(".requires-args\n")
	}
	for _, f := range c.Fields {
		b.WriteString(".field ")
		for _, a := range f.Access {
			b.WriteString(a)
			b.WriteByte(' ')
		}
		b.WriteString(f.Name)
		b.WriteByte(':')
		b.WriteString(f.Descriptor)
		b.WriteByte('\n')
	}
	for _, m := range c.Methods {
		b.WriteByte('\n')
		b.WriteString(".method ")
		for _, a := range m.Access {
			b.WriteString(a)
			b.WriteByte(' ')
		}
		b.WriteString(m.Name)
		b.WriteString("()V\n")
		for _, ins := range m.Body {
			b.WriteString("    ")
			b.WriteString(ins.String())
			b.WriteByte('\n')
		}
		b.WriteString(".end method\n")
	}
	return []byte(b.String())
}

// ParseProgram parses multiple files (path -> contents) into a validated
// Program. Files are processed in sorted-path order for determinism.
func ParseProgram(files map[string][]byte) (*Program, error) {
	p := NewProgram()
	paths := make([]string, 0, len(files))
	for path := range files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		c, err := ParseClass(path, files[path])
		if err != nil {
			return nil, err
		}
		if err := p.Add(c); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
