package smali

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// interner deduplicates strings that repeat across a parse — class
// descriptors, access flags, method names, resource refs. ParseProgram
// shares one interner across all files, so e.g. a fragment class name
// referenced by thirty activities is stored once, not thirty times.
type interner map[string]string

func newInterner() interner { return make(interner, 64) }

func (in interner) intern(s string) string {
	if v, ok := in[s]; ok {
		return v
	}
	in[s] = s
	return s
}

// ParseClass parses a single .smali file into a Class. sourceFile is recorded
// for diagnostics and metadata output.
func ParseClass(sourceFile string, data []byte) (*Class, error) {
	return parseClass(sourceFile, data, newInterner())
}

func parseClass(sourceFile string, data []byte, in interner) (*Class, error) {
	c := &Class{SourceFile: sourceFile}
	var cur *Method

	var toks []string // token scratch, reused across lines
	src := string(data)
	line := 0
	for start := 0; start <= len(src); {
		line++
		var raw string
		if nl := strings.IndexByte(src[start:], '\n'); nl < 0 {
			raw = src[start:]
			start = len(src) + 1
		} else {
			raw = src[start : start+nl]
			start += nl + 1
		}
		var err error
		toks, err = tokenize(raw, toks[:0])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", sourceFile, line, err)
		}
		if len(toks) == 0 {
			continue
		}
		head := toks[0]
		switch {
		case head == ".class":
			if c.Name != "" {
				return nil, fmt.Errorf("%s:%d: duplicate .class directive", sourceFile, line)
			}
			if len(toks) < 2 {
				return nil, fmt.Errorf("%s:%d: .class needs a type descriptor", sourceFile, line)
			}
			name, err := FromDescriptor(toks[len(toks)-1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", sourceFile, line, err)
			}
			c.Name = in.intern(name)
			c.Access, err = identList(toks[1:len(toks)-1], in)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", sourceFile, line, err)
			}

		case head == ".super":
			if len(toks) != 2 {
				return nil, fmt.Errorf("%s:%d: .super needs exactly one descriptor", sourceFile, line)
			}
			sup, err := FromDescriptor(toks[1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", sourceFile, line, err)
			}
			c.Super = in.intern(sup)

		case head == ".implements":
			if len(toks) != 2 {
				return nil, fmt.Errorf("%s:%d: .implements needs exactly one descriptor", sourceFile, line)
			}
			iface, err := FromDescriptor(toks[1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", sourceFile, line, err)
			}
			c.Interfaces = append(c.Interfaces, in.intern(iface))

		case head == ".requires-args":
			c.RequiresArgs = true

		case head == ".field":
			if len(toks) < 2 {
				return nil, fmt.Errorf("%s:%d: .field needs a name:descriptor", sourceFile, line)
			}
			decl := toks[len(toks)-1]
			colon := strings.IndexByte(decl, ':')
			if colon <= 0 || colon == len(decl)-1 {
				return nil, fmt.Errorf("%s:%d: malformed field %q", sourceFile, line, decl)
			}
			fname := decl[:colon]
			if !isIdent(fname) {
				return nil, fmt.Errorf("%s:%d: invalid field name %q", sourceFile, line, fname)
			}
			access, err := identList(toks[1:len(toks)-1], in)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", sourceFile, line, err)
			}
			c.Fields = append(c.Fields, Field{
				Name:       in.intern(fname),
				Descriptor: in.intern(decl[colon+1:]),
				Access:     access,
			})

		case head == ".method":
			if cur != nil {
				return nil, fmt.Errorf("%s:%d: nested .method", sourceFile, line)
			}
			if len(toks) < 2 {
				return nil, fmt.Errorf("%s:%d: .method needs a signature", sourceFile, line)
			}
			sig := toks[len(toks)-1]
			name := sig
			if p := strings.IndexByte(sig, '('); p > 0 {
				name = sig[:p]
			}
			if !isIdent(name) {
				return nil, fmt.Errorf("%s:%d: invalid method name %q", sourceFile, line, name)
			}
			if c.Method(name) != nil {
				return nil, fmt.Errorf("%s:%d: duplicate method %s", sourceFile, line, name)
			}
			access, err := identList(toks[1:len(toks)-1], in)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", sourceFile, line, err)
			}
			cur = &Method{Name: in.intern(name), Access: access}

		case head == ".end":
			if len(toks) != 2 || toks[1] != "method" {
				return nil, fmt.Errorf("%s:%d: malformed .end", sourceFile, line)
			}
			if cur == nil {
				return nil, fmt.Errorf("%s:%d: .end method without .method", sourceFile, line)
			}
			c.Methods = append(c.Methods, cur)
			cur = nil

		case strings.HasPrefix(head, "."):
			return nil, fmt.Errorf("%s:%d: unknown directive %s", sourceFile, line, head)

		default:
			if cur == nil {
				return nil, fmt.Errorf("%s:%d: instruction %q outside a method", sourceFile, line, head)
			}
			ins, err := parseInstr(toks, line, in)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sourceFile, err)
			}
			cur.Body = append(cur.Body, ins)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("%s: unterminated method %s", sourceFile, cur.Name)
	}
	if c.Name == "" {
		return nil, fmt.Errorf("%s: missing .class directive", sourceFile)
	}
	if c.Super == "" {
		return nil, fmt.Errorf("%s: class %s missing .super directive", sourceFile, c.Name)
	}
	return c, nil
}

// isIdent checks a Java-identifier-shaped name.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '$':
		default:
			return false
		}
	}
	return true
}

// identList validates a slice of access-flag tokens, interning each (the
// same few modifiers repeat on every declaration).
func identList(toks []string, in interner) ([]string, error) {
	if len(toks) == 0 {
		return nil, nil
	}
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if !isIdent(t) {
			return nil, fmt.Errorf("invalid modifier %q", t)
		}
		out = append(out, in.intern(t))
	}
	return out, nil
}

// parseInstr converts a token line into a validated instruction. Type
// descriptors are normalized to dotted class names.
func parseInstr(toks []string, line int, in interner) (Instr, error) {
	op := Op(in.intern(toks[0]))
	args := make([]string, 0, len(toks)-1)
	for _, t := range toks[1:] {
		if len(t) >= 3 && t[0] == 'L' && t[len(t)-1] == ';' {
			dotted, err := FromDescriptor(t)
			if err != nil {
				return Instr{}, fmt.Errorf("line %d: %w", line, err)
			}
			args = append(args, in.intern(dotted))
			continue
		}
		args = append(args, in.intern(t))
	}
	ins := Instr{Op: op, Args: args, Line: line}
	if err := ins.validate(); err != nil {
		return Instr{}, err
	}
	return ins, nil
}

// tokenize splits a source line into tokens, honouring double quotes and '#'
// comments, appending to toks (a caller-owned scratch slice). Quoted tokens
// are returned unquoted. Tokens are substrings of raw; only quoted tokens
// containing escapes are copied through a builder.
func tokenize(raw string, toks []string) ([]string, error) {
	i := 0
	for i < len(raw) {
		switch ch := raw[i]; {
		case ch == ' ' || ch == '\t' || ch == '\r':
			i++

		case ch == '#':
			return toks, nil

		case ch == '"':
			i++
			start := i
			for i < len(raw) && raw[i] != '"' && raw[i] != '\\' {
				i++
			}
			if i < len(raw) && raw[i] == '"' {
				toks = append(toks, raw[start:i]) // empty strings are valid tokens
				i++
				continue
			}
			// Escaped (or unterminated) literal: build the unescaped token.
			var b strings.Builder
			b.WriteString(raw[start:i])
			for closed := false; !closed; {
				if i >= len(raw) {
					return nil, fmt.Errorf("unterminated string literal")
				}
				switch c := raw[i]; c {
				case '"':
					closed = true
					i++
				case '\\':
					if i+1 >= len(raw) {
						return nil, fmt.Errorf("dangling escape")
					}
					i++
					switch raw[i] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case '"':
						b.WriteByte('"')
					case '\\':
						b.WriteByte('\\')
					default:
						return nil, fmt.Errorf("bad escape \\%c", raw[i])
					}
					i++
				default:
					b.WriteByte(c)
					i++
				}
			}
			toks = append(toks, b.String())

		default:
			start := i
			for i < len(raw) {
				c := raw[i]
				if c == ' ' || c == '\t' || c == '\r' || c == '"' || c == '#' {
					break
				}
				i++
			}
			toks = append(toks, raw[start:i])
		}
	}
	return toks, nil
}

// WriteClass renders a class back to .smali source. The output round-trips
// through ParseClass.
func WriteClass(c *Class) []byte {
	var b bytes.Buffer
	b.Grow(256)
	b.WriteString(".class ")
	for _, a := range c.Access {
		b.WriteString(a)
		b.WriteByte(' ')
	}
	b.WriteString(ToDescriptor(c.Name))
	b.WriteByte('\n')
	b.WriteString(".super ")
	b.WriteString(ToDescriptor(c.Super))
	b.WriteByte('\n')
	for _, i := range c.Interfaces {
		b.WriteString(".implements ")
		b.WriteString(ToDescriptor(i))
		b.WriteByte('\n')
	}
	if c.RequiresArgs {
		b.WriteString(".requires-args\n")
	}
	for _, f := range c.Fields {
		b.WriteString(".field ")
		for _, a := range f.Access {
			b.WriteString(a)
			b.WriteByte(' ')
		}
		b.WriteString(f.Name)
		b.WriteByte(':')
		b.WriteString(f.Descriptor)
		b.WriteByte('\n')
	}
	for _, m := range c.Methods {
		b.WriteByte('\n')
		b.WriteString(".method ")
		for _, a := range m.Access {
			b.WriteString(a)
			b.WriteByte(' ')
		}
		b.WriteString(m.Name)
		b.WriteString("()V\n")
		for _, ins := range m.Body {
			b.WriteString("    ")
			b.WriteString(ins.String())
			b.WriteByte('\n')
		}
		b.WriteString(".end method\n")
	}
	return b.Bytes()
}

// ParseProgram parses multiple files (path -> contents) into a validated
// Program. Files are processed in sorted-path order for determinism. One
// interner is shared across all files, so descriptors repeated between
// classes (superclasses, fragment targets, access flags) are stored once.
func ParseProgram(files map[string][]byte) (*Program, error) {
	p := NewProgram()
	paths := make([]string, 0, len(files))
	for path := range files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	in := newInterner()
	for _, path := range paths {
		c, err := parseClass(path, files[path], in)
		if err != nil {
			return nil, err
		}
		if err := p.Add(c); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
