package smali_test

import (
	"fmt"
	"log"

	"fragdroid/internal/smali"
)

// ParseClass turns one .smali source file into a class model.
func ExampleParseClass() {
	src := `
.class public Lcom/app/HomeFragment;
.super Landroid/app/Fragment;
.method public onCreateView()V
    set-content-view @layout/fragment_home
    invoke-sensitive "internet/connect"
.end method
`
	c, err := smali.ParseClass("HomeFragment.smali", []byte(src))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Name, "extends", c.Super)
	fmt.Println("methods:", len(c.Methods), "instructions:", len(c.Methods[0].Body))
	// Output:
	// com.app.HomeFragment extends android.app.Fragment
	// methods: 1 instructions: 2
}

// SuperChain resolves inheritance transitively — the getSuperChain of the
// paper's Algorithm 2.
func ExampleProgram_SuperChain() {
	files := map[string][]byte{
		"base.smali":  []byte(".class Lapp/Base;\n.super Landroid/app/Fragment;\n"),
		"child.smali": []byte(".class Lapp/Child;\n.super Lapp/Base;\n"),
	}
	p, err := smali.ParseProgram(files)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.SuperChain("app.Child"))
	fmt.Println("fragment?", p.IsFragmentClass("app.Child"))
	// Output:
	// [app.Base android.app.Fragment]
	// fragment? true
}
