package recorder

import (
	"fmt"

	"fragdroid/internal/device"
	"fragdroid/internal/robotium"
	"fragdroid/internal/session"
)

// Strategy replays a library of recordings as budgeted test cases — the
// record-and-replay engine family (RERAN-style, §I) on the shared
// session.Strategy seam. Each recording becomes one script-form proposal
// with PurposeReplay; failures and divergences are noted in the transcript
// rather than aborting the run, so one broken recording does not waste the
// rest of the library. ReplayIn remains the embedded-session form for
// callers that drive a single recording inside an existing session.
type Strategy struct {
	recs    []*Recorder
	next    int
	cur     *Recorder
	s       *session.Session
	visited map[string]bool
}

// NewStrategy returns a replay strategy over the given recordings, ready for
// session.Drive. Empty recordings are skipped with a transcript note.
func NewStrategy(recs ...*Recorder) *Strategy {
	return &Strategy{recs: recs, visited: make(map[string]bool)}
}

// Name implements session.Strategy.
func (r *Strategy) Name() string { return "replay" }

// SessionOptions implements session.Strategy. Replays never auto-dismiss
// dialogs — a recording is reproduced verbatim, popups included.
func (r *Strategy) SessionOptions(h session.Harness) session.Options {
	return session.Options{
		Budget:    h.Budget,
		HaltOnAPI: h.HaltOnAPI,
		Observer:  h.Observer,
		Snapshots: h.Snapshots,
		Coverage:  r.coverage,
	}
}

// coverage counts the activities replays landed on; recordings carry no
// fragment observations.
func (r *Strategy) coverage() (int, int) { return len(r.visited), 0 }

// Init binds the run context.
func (r *Strategy) Init(ctx *session.DriveContext) error {
	r.s = ctx.Session
	return nil
}

// Propose yields the next non-empty recording as one replay test case.
func (r *Strategy) Propose() (session.TestCase, bool) {
	for r.next < len(r.recs) {
		rec := r.recs[r.next]
		r.next++
		sc := rec.Script()
		if len(sc.Ops) == 0 {
			r.s.Notef("replay %s skipped: empty recording", sc.Name)
			continue
		}
		r.cur = rec
		return session.TestCase{Script: sc, Purpose: session.PurposeReplay}, true
	}
	return session.TestCase{}, false
}

// Observe verifies the replay landed on the activity the recording ended on
// (the ReplayIn divergence check) and credits the reached activity.
func (r *Strategy) Observe(tc session.TestCase, d *device.Device, res robotium.Result) error {
	if res.Err != nil {
		r.s.Notef("replay %s failed at %q: %v", tc.Script.Name, res.FailedOp, res.Err)
		return nil
	}
	got, err := d.CurrentActivity()
	if err != nil {
		return nil // replay ended off-app; nothing to credit
	}
	if !r.visited[got] {
		r.visited[got] = true
		r.s.Trace(session.Event{Kind: session.KindVisit, Activity: got,
			Script: tc.Script.Name, Ops: len(tc.Script.Ops),
			Msg: fmt.Sprintf("replay reached %s (%d ops)", got, len(tc.Script.Ops))})
	}
	if want, err := r.cur.dev.CurrentActivity(); err == nil && got != want {
		r.s.Notef("replay %s diverged: landed on %s, recorded %s", tc.Script.Name, got, want)
	}
	return nil
}

// Finish fills the generic outcome with the activities replays reached.
func (r *Strategy) Finish(out *session.Outcome) error {
	out.VisitedActivities = session.SortedKeys(r.visited)
	return nil
}
