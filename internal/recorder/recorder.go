// Package recorder implements the record-and-replay technique the paper's
// introduction surveys (RERAN-style, §I): it wraps a device, records the UI
// events a human tester (or any driver) performs as a Robotium script, and
// replays the recording on other devices. The paper notes R&R "could
// reproduce the test cases easily, but its cost is quite expensive in the
// input collection" — this package is the collection side; the explorer is
// FragDroid's answer to it.
package recorder

import (
	"errors"

	"fragdroid/internal/device"
	"fragdroid/internal/robotium"
	"fragdroid/internal/session"
)

// Recorder proxies a device and logs every successful interaction.
type Recorder struct {
	dev  *device.Device
	name string
	ops  []robotium.Op
}

// New wraps a device; name labels the resulting script.
func New(dev *device.Device, name string) *Recorder {
	return &Recorder{dev: dev, name: name}
}

// Device exposes the wrapped device for observation (Dump etc.).
func (r *Recorder) Device() *device.Device { return r.dev }

// record appends op when err is nil.
func (r *Recorder) record(op robotium.Op, err error) error {
	if err == nil {
		r.ops = append(r.ops, op)
	}
	return err
}

// LaunchMain launches and records.
func (r *Recorder) LaunchMain() error {
	return r.record(robotium.LaunchMain(), r.dev.LaunchMain())
}

// ForceStart force-starts and records.
func (r *Recorder) ForceStart(activity string) error {
	return r.record(robotium.ForceStart(activity), r.dev.ForceStart(activity))
}

// Click clicks and records.
func (r *Recorder) Click(ref string) error {
	return r.record(robotium.Click(ref), r.dev.Click(ref))
}

// EnterText types and records.
func (r *Recorder) EnterText(ref, value string) error {
	return r.record(robotium.EnterText(ref, value), r.dev.EnterText(ref, value))
}

// Back presses BACK and records.
func (r *Recorder) Back() error {
	return r.record(robotium.Back(), r.dev.Back())
}

// DismissDialog dismisses and records.
func (r *Recorder) DismissDialog() error {
	return r.record(robotium.DismissDialog(), r.dev.DismissDialog())
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int { return len(r.ops) }

// Script finalizes the recording. The script is a copy; recording can
// continue afterwards.
func (r *Recorder) Script() robotium.Script {
	return robotium.Script{Name: r.name, Ops: append([]robotium.Op(nil), r.ops...)}
}

// ErrEmptyRecording is returned by Replay for recordings with no events.
var ErrEmptyRecording = errors.New("recorder: empty recording")

// Replay runs a recording on a fresh device, verifying it lands on the same
// foreground activity the recording ended on. The run is charged to a
// throwaway session; use ReplayIn to account it against an existing one.
func Replay(rec *Recorder, target *device.Device) (robotium.Result, error) {
	return ReplayIn(session.New(target.App(), session.Options{}), rec, target)
}

// ReplayIn replays a recording as one budgeted test case of an exploration
// session (PurposeReplay): the session does the step accounting, crash
// handling, and tracing. Replays never auto-dismiss dialogs — a recording is
// reproduced verbatim, popups included.
func ReplayIn(s *session.Session, rec *Recorder, target *device.Device) (robotium.Result, error) {
	sc := rec.Script()
	if len(sc.Ops) == 0 {
		return robotium.Result{}, ErrEmptyRecording
	}
	res, ok := s.RunOn(target, sc, session.PurposeReplay)
	if !ok {
		return res, errors.New("recorder: session halted or out of budget")
	}
	if res.Err != nil {
		return res, res.Err
	}
	want, err := rec.dev.CurrentActivity()
	if err != nil {
		return res, nil // recording ended off-app; nothing to verify
	}
	got, err := target.CurrentActivity()
	if err != nil {
		return res, err
	}
	if got != want {
		return res, errors.New("recorder: replay diverged: landed on " + got + ", recorded " + want)
	}
	return res, nil
}
