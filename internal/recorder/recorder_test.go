package recorder

import (
	"errors"
	"testing"

	"fragdroid/internal/apk"
	"fragdroid/internal/corpus"
	"fragdroid/internal/device"
)

const pkg = "com.demo.app."

func demoApp(t *testing.T) *apk.App {
	t.Helper()
	app, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestRecordAndReplay(t *testing.T) {
	app := demoApp(t)
	rec := New(device.New(app, device.Options{}), "login_session")

	// A human session: launch, go to login, type the password, proceed.
	steps := []func() error{
		rec.LaunchMain,
		func() error { return rec.Click(corpus.NavButtonRef("Main", "Login")) },
		func() error { return rec.EnterText(corpus.InputRef("Login", "Account"), "alice") },
		func() error { return rec.Click(corpus.NavButtonRef("Login", "Account")) },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if rec.Len() != 4 {
		t.Fatalf("recorded %d events", rec.Len())
	}
	if cur, _ := rec.Device().CurrentActivity(); cur != pkg+"Account" {
		t.Fatalf("session ended on %q", cur)
	}

	// Replay on a second device reaches the same screen.
	res, err := Replay(rec, device.New(app, device.Options{}))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if res.Executed != 4 {
		t.Fatalf("replay executed %d ops", res.Executed)
	}
}

func TestFailedInteractionsAreNotRecorded(t *testing.T) {
	app := demoApp(t)
	rec := New(device.New(app, device.Options{}), "s")
	if err := rec.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Click("@id/absent"); err == nil {
		t.Fatal("click on absent widget succeeded")
	}
	if err := rec.EnterText("@id/main_title", "x"); err == nil {
		t.Fatal("enter into textview succeeded")
	}
	if rec.Len() != 1 {
		t.Fatalf("failed events recorded: %d", rec.Len())
	}
}

func TestReplayEmptyRecording(t *testing.T) {
	app := demoApp(t)
	rec := New(device.New(app, device.Options{}), "empty")
	if _, err := Replay(rec, device.New(app, device.Options{})); !errors.Is(err, ErrEmptyRecording) {
		t.Fatalf("err = %v", err)
	}
}

func TestScriptIsACopy(t *testing.T) {
	app := demoApp(t)
	rec := New(device.New(app, device.Options{}), "s")
	if err := rec.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	s := rec.Script()
	if err := rec.Click(corpus.NavButtonRef("Main", "Detail")); err != nil {
		t.Fatal(err)
	}
	if len(s.Ops) != 1 {
		t.Fatal("Script not snapshotted")
	}
	if rec.Len() != 2 {
		t.Fatal("recording stopped after Script()")
	}
}

func TestRecordBackAndDialog(t *testing.T) {
	app := demoApp(t)
	rec := New(device.New(app, device.Options{}), "s")
	if err := rec.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Click(corpus.NavButtonRef("Main", "Login")); err != nil {
		t.Fatal(err)
	}
	// Fail the gate to pop the error dialog, dismiss it, back out.
	if err := rec.Click(corpus.NavButtonRef("Login", "Account")); err != nil {
		t.Fatal(err)
	}
	if err := rec.DismissDialog(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Back(); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(rec, device.New(app, device.Options{}))
	if err != nil {
		t.Fatalf("Replay: %v (%+v)", err, res)
	}
}
