package device

import (
	"fmt"
	"sort"
	"strings"

	"fragdroid/internal/apk"
	"fragdroid/internal/layout"
)

// WidgetInfo is one visible-tree entry of a UI dump, the uiautomator-style
// view the driving layer observes.
type WidgetInfo struct {
	// Ref is the normalized widget reference.
	Ref string
	// Type is the widget class.
	Type string
	// Text is the effective display text (overrides applied).
	Text string
	// Visible is the effective visibility.
	Visible bool
	// Clickable reports whether a click would reach a handler.
	Clickable bool
	// Editable reports input widgets.
	Editable bool
	// FromFragment names the live fragment owning the widget, "" for the
	// activity's own layout.
	FromFragment string
}

// UIDump is a point-in-time observation of the foreground UI.
type UIDump struct {
	// Activity is the foreground activity class (as `dumpsys activity` would
	// report).
	Activity string
	// Widgets lists the widget tree in draw order (top-to-bottom,
	// left-to-right — the click order of §VI-A Case 3).
	Widgets []WidgetInfo
	// FMFragments lists fragment classes currently committed through a
	// FragmentManager — what instrumentation can confirm via reflection.
	// Fragments loaded without a FragmentManager are NOT listed (the
	// com.mobilemotion.dubsmash blind spot).
	FMFragments []string
	// HasDialog reports a modal dialog or popup obscuring the UI.
	HasDialog bool
}

// VisibleRefs returns the refs of visible widgets.
func (u UIDump) VisibleRefs() []string {
	return u.refs(func(w WidgetInfo) bool { return w.Visible })
}

// ClickableRefs returns refs that are both visible and clickable, in draw
// order.
func (u UIDump) ClickableRefs() []string {
	return u.refs(func(w WidgetInfo) bool { return w.Visible && w.Clickable })
}

// EditableRefs returns visible input widgets in draw order.
func (u UIDump) EditableRefs() []string {
	return u.refs(func(w WidgetInfo) bool { return w.Visible && w.Editable })
}

// refs collects matching widget refs in draw order: counted first so the
// result is a single exact allocation, nil when nothing matches (these run
// after every observed action, so growslice churn here is pure GC pressure).
func (u UIDump) refs(match func(WidgetInfo) bool) []string {
	n := 0
	for _, w := range u.Widgets {
		if match(w) {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for _, w := range u.Widgets {
		if match(w) {
			out = append(out, w.Ref)
		}
	}
	return out
}

// Dump observes the current UI.
func (d *Device) Dump() (UIDump, error) {
	if d.crashed {
		return UIDump{}, ErrCrashed
	}
	t := d.top()
	if t == nil {
		return UIDump{}, ErrNotRunning
	}
	dump := UIDump{Activity: t.class, HasDialog: t.dialog != nil}
	// Size the widget list exactly: every IDRef'd widget in the content tree
	// and each live fragment's tree produces one entry regardless of
	// visibility, and layouts are immutable, so the per-layout census is
	// memoized and the sum is exact — one allocation, no growslice ladder.
	n := 0
	if t.content != nil {
		n = t.content.IDRefCount()
	}
	for _, c := range t.fragOrder {
		if f := t.fragments[c]; f != nil && f.content != nil {
			n += f.content.IDRefCount()
		}
	}
	if n > 0 {
		dump.Widgets = make([]WidgetInfo, 0, n)
	}

	appendTree := func(l *layout.Layout, fromFragment string, baseVisible bool, owner *fragmentInstance) {
		if l == nil {
			return
		}
		var walk func(w *layout.Widget, vis bool)
		walk = func(w *layout.Widget, vis bool) {
			wVis := vis && widgetVisible(w, t.visible)
			if w.IDRef != "" {
				ref := apk.NormalizeRef(w.IDRef)
				info := WidgetInfo{
					Ref:          ref,
					Type:         w.Type,
					Text:         w.Text,
					Visible:      wVis,
					Editable:     w.Input(),
					FromFragment: fromFragment,
				}
				if txt, ok := t.texts[ref]; ok {
					info.Text = txt
				}
				ow := widgetOwner{}
				if owner != nil {
					ow = widgetOwner{fragment: owner}
				}
				_, info.Clickable = d.handlerFor(t, w, ow, ref)
				if w.Type == layout.TypeCheckBox {
					info.Clickable = true // toggles even without a handler
				}
				dump.Widgets = append(dump.Widgets, info)
			}
			for _, c := range w.Children {
				walk(c, wVis)
			}
		}
		walk(l.Root, baseVisible)
	}

	appendTree(t.content, "", true, nil)
	for _, c := range t.fragOrder {
		f := t.fragments[c]
		if f == nil {
			continue
		}
		baseVis := true
		if t.content != nil {
			if _, vis, ok := findInTree(t.content, f.container, t.visible); ok {
				baseVis = vis
			}
		}
		appendTree(f.content, f.class, baseVis, f)
	}

	nfm := 0
	for _, c := range t.fragOrder {
		if f := t.fragments[c]; f != nil && f.viaFM {
			nfm++
		}
	}
	if nfm > 0 {
		fm := make([]string, 0, nfm)
		for _, c := range t.fragOrder {
			if f := t.fragments[c]; f != nil && f.viaFM {
				fm = append(fm, f.class)
			}
		}
		sort.Strings(fm)
		dump.FMFragments = fm
	}
	return dump, nil
}

// ActiveFragments returns ground truth about live fragments: every fragment
// instance in the foreground activity with its via-FragmentManager flag.
// The evaluation harness uses it for Sum accounting; the explorer must rely
// on Dump (which hides non-FM fragments), like real instrumentation.
func (d *Device) ActiveFragments() map[string]bool {
	t := d.top()
	if t == nil || d.crashed {
		return nil
	}
	out := make(map[string]bool)
	for _, c := range t.fragOrder {
		if f := t.fragments[c]; f != nil {
			out[f.class] = f.viaFM
		}
	}
	return out
}

// String renders the dump for logs and debugging.
func (u UIDump) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "activity=%s dialog=%v fm=%v\n", u.Activity, u.HasDialog, u.FMFragments)
	for _, w := range u.Widgets {
		flags := ""
		if w.Visible {
			flags += "V"
		}
		if w.Clickable {
			flags += "C"
		}
		if w.Editable {
			flags += "E"
		}
		src := "activity"
		if w.FromFragment != "" {
			src = w.FromFragment
		}
		fmt.Fprintf(&b, "  %-40s %-12s [%-3s] %s\n", w.Ref, w.Type, flags, src)
	}
	return b.String()
}
