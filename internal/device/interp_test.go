package device

import (
	"errors"
	"strings"
	"testing"

	"fragdroid/internal/apk"
	"fragdroid/internal/manifest"
)

// makeApp assembles an app from raw sources through the real parsers.
func makeApp(t *testing.T, activities []string, layouts map[string]string, classes map[string]string) *apk.App {
	t.Helper()
	arch := apk.NewArchive()
	mb := manifest.NewBuilder("t")
	for i, a := range activities {
		if i == 0 {
			mb.Launcher(a)
		} else {
			mb.Activity(a)
		}
	}
	man, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := man.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := arch.Put(apk.ManifestPath, data); err != nil {
		t.Fatal(err)
	}
	for name, xml := range layouts {
		if err := arch.Put(apk.LayoutDir+name+".xml", []byte(xml)); err != nil {
			t.Fatal(err)
		}
	}
	for cls, src := range classes {
		p := apk.SmaliDir + strings.ReplaceAll(cls, ".", "/") + ".smali"
		if err := arch.Put(p, []byte(src)); err != nil {
			t.Fatal(err)
		}
	}
	app, err := apk.Load(arch)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return app
}

func TestFinishPopsActivity(t *testing.T) {
	app := makeApp(t,
		[]string{"t.A", "t.B"},
		map[string]string{
			"a": `<LinearLayout id="@+id/a_root"><Button id="@+id/go" onClick="onGo"/></LinearLayout>`,
			"b": `<LinearLayout id="@+id/b_root"><Button id="@+id/bye" onClick="onBye"/></LinearLayout>`,
		},
		map[string]string{
			"t.A": `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
.end method
.method onGo()V
    new-intent Lt/A; Lt/B;
    start-activity
.end method`,
			"t.B": `
.class Lt/B;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/b
.end method
.method onBye()V
    finish
.end method`,
		})
	d := New(app, Options{})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	if err := d.Click("@id/go"); err != nil {
		t.Fatal(err)
	}
	if cur, _ := d.CurrentActivity(); cur != "t.B" {
		t.Fatalf("current = %q", cur)
	}
	if err := d.Click("@id/bye"); err != nil {
		t.Fatal(err)
	}
	if cur, _ := d.CurrentActivity(); cur != "t.A" {
		t.Fatalf("after finish = %q", cur)
	}
}

func TestTxnRemoveAndSetText(t *testing.T) {
	app := makeApp(t,
		[]string{"t.A"},
		map[string]string{
			"a": `<LinearLayout id="@+id/a_root">
  <TextView id="@+id/label" text="before"/>
  <Button id="@+id/rm" onClick="onRemove"/>
  <Button id="@+id/st" onClick="onSetText"/>
  <FrameLayout id="@+id/c"/>
</LinearLayout>`,
			"f": `<LinearLayout id="@+id/f_root"/>`,
		},
		map[string]string{
			"t.A": `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
    get-fragment-manager
    begin-transaction
    txn-add @id/c Lt/F;
    txn-commit
.end method
.method onRemove()V
    get-fragment-manager
    begin-transaction
    txn-remove Lt/F;
    txn-commit
.end method
.method onSetText()V
    set-text @id/label "after"
.end method`,
			"t.F": `
.class Lt/F;
.super Landroid/app/Fragment;
.method onCreateView()V
    set-content-view @layout/f
.end method`,
		})
	d := New(app, Options{})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	dump, _ := d.Dump()
	if len(dump.FMFragments) != 1 {
		t.Fatalf("FMFragments = %v", dump.FMFragments)
	}
	if err := d.Click("@id/rm"); err != nil {
		t.Fatal(err)
	}
	dump, _ = d.Dump()
	if len(dump.FMFragments) != 0 {
		t.Fatalf("after remove: %v", dump.FMFragments)
	}
	if err := d.Click("@id/st"); err != nil {
		t.Fatal(err)
	}
	dump, _ = d.Dump()
	for _, w := range dump.Widgets {
		if w.Ref == "@id/label" && w.Text != "after" {
			t.Fatalf("label text = %q", w.Text)
		}
	}
}

func TestANRDepthGuard(t *testing.T) {
	// A and B start each other from onCreate: an unbounded launch loop.
	app := makeApp(t,
		[]string{"t.A", "t.B"},
		map[string]string{
			"a": `<LinearLayout id="@+id/a_root"/>`,
		},
		map[string]string{
			"t.A": `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
    new-intent Lt/A; Lt/B;
    start-activity
.end method`,
			"t.B": `
.class Lt/B;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
    new-intent Lt/B; Lt/A;
    start-activity
.end method`,
		})
	d := New(app, Options{MaxStartDepth: 8})
	err := d.LaunchMain()
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("launch err = %v", err)
	}
	if !strings.Contains(d.CrashReason(), "ANR") {
		t.Fatalf("reason = %q", d.CrashReason())
	}
}

func TestExplicitCrashOpAndRelaunch(t *testing.T) {
	app := makeApp(t,
		[]string{"t.A"},
		map[string]string{
			"a": `<LinearLayout id="@+id/a_root"><Button id="@+id/boom" onClick="onBoom"/></LinearLayout>`,
		},
		map[string]string{
			"t.A": `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
.end method
.method onBoom()V
    crash "NullPointerException in handler"
.end method`,
		})
	d := New(app, Options{})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	if err := d.Click("@id/boom"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("click err = %v", err)
	}
	if !strings.Contains(d.CrashReason(), "NullPointerException") {
		t.Fatalf("reason = %q", d.CrashReason())
	}
	if err := d.LaunchMain(); err != nil {
		t.Fatalf("relaunch: %v", err)
	}
}

func TestUnknownActionCrashes(t *testing.T) {
	app := makeApp(t,
		[]string{"t.A"},
		map[string]string{
			"a": `<LinearLayout id="@+id/a_root"><Button id="@+id/go" onClick="onGo"/></LinearLayout>`,
		},
		map[string]string{
			"t.A": `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
.end method
.method onGo()V
    new-intent-action "t.NO_SUCH_ACTION"
    start-activity
.end method`,
		})
	d := New(app, Options{})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	if err := d.Click("@id/go"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("click err = %v", err)
	}
	if !strings.Contains(d.CrashReason(), "ActivityNotFound") {
		t.Fatalf("reason = %q", d.CrashReason())
	}
}

func TestMethodInheritance(t *testing.T) {
	// A handler defined on a base activity class is found on the subclass.
	app := makeApp(t,
		[]string{"t.Child"},
		map[string]string{
			"c": `<LinearLayout id="@+id/c_root"><Button id="@+id/go" onClick="onShared"/></LinearLayout>`,
		},
		map[string]string{
			"t.Base": `
.class Lt/Base;
.super Landroid/app/Activity;
.method onShared()V
    log "inherited handler ran"
.end method`,
			"t.Child": `
.class Lt/Child;
.super Lt/Base;
.method onCreate()V
    set-content-view @layout/c
.end method`,
		})
	d := New(app, Options{})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	if err := d.Click("@id/go"); err != nil {
		t.Fatalf("inherited handler: %v", err)
	}
	if !strings.Contains(strings.Join(d.Events(), "\n"), "inherited handler ran") {
		t.Fatal("base-class handler did not execute")
	}
}

func TestMissingHandlerCrashes(t *testing.T) {
	app := makeApp(t,
		[]string{"t.A"},
		map[string]string{
			"a": `<LinearLayout id="@+id/a_root"><Button id="@+id/go" onClick="noSuchMethod"/></LinearLayout>`,
		},
		map[string]string{
			"t.A": `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
.end method`,
		})
	d := New(app, Options{})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	if err := d.Click("@id/go"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("click err = %v", err)
	}
	if !strings.Contains(d.CrashReason(), "NoSuchMethod") {
		t.Fatalf("reason = %q", d.CrashReason())
	}
}

func TestDumpString(t *testing.T) {
	app := makeApp(t,
		[]string{"t.A"},
		map[string]string{
			"a": `<LinearLayout id="@+id/a_root"><Button id="@+id/go" onClick="onGo"/></LinearLayout>`,
		},
		map[string]string{
			"t.A": `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
.end method
.method onGo()V
    nop
.end method`,
		})
	d := New(app, Options{})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	dump, _ := d.Dump()
	s := dump.String()
	for _, want := range []string{"activity=t.A", "@id/go", "Button", "VC"} {
		if !strings.Contains(s, want) {
			t.Errorf("Dump.String missing %q:\n%s", want, s)
		}
	}
}
