package device_test

import (
	"testing"

	"fragdroid/internal/device"
)

// TestLaunchReplayAllocBudget is the allocation regression gate for the
// kill-and-restart hot loop: one fresh device launched at the entry activity,
// the work every replayed test case pays before its first own operation. The
// budget is the measured count (18 on the IR interpreter — the compiled
// program is built once per app and shared, register frames come from the
// pool) plus headroom for layout growth in the corpus app; a significant
// regression here multiplies across every generated test case of every
// evaluation run, so it fails loudly instead of surfacing as a slow bench.
func TestLaunchReplayAllocBudget(t *testing.T) {
	const budget = 24
	app := benchApp(t, "com.adobe.reader")
	got := testing.AllocsPerRun(100, func() {
		d := device.New(app, device.Options{})
		if err := d.LaunchMain(); err != nil {
			t.Fatal(err)
		}
	})
	if got > budget {
		t.Fatalf("launch-replay step allocates %.1f objects/op, budget %d", got, budget)
	}
}

// TestSnapshotRestoreAllocBudget gates the path that replaces the relaunch:
// restoring a captured snapshot onto a fresh device. Measured at 9 allocs/op
// (the deep copy of one activity frame plus the device shell); the budget
// allows modest growth. Restore must stay well under the launch cost or the
// snapshot memo stops paying for itself.
func TestSnapshotRestoreAllocBudget(t *testing.T) {
	const budget = 12
	app := benchApp(t, "com.adobe.reader")
	src := device.New(app, device.Options{})
	if err := src.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	snap := src.Snapshot()
	got := testing.AllocsPerRun(100, func() {
		d := device.New(app, device.Options{})
		if err := d.Restore(snap); err != nil {
			t.Fatal(err)
		}
	})
	if got > budget {
		t.Fatalf("snapshot restore allocates %.1f objects/op, budget %d", got, budget)
	}
}
