package device

import (
	"errors"
	"strings"
	"testing"

	"fragdroid/internal/apk"
	"fragdroid/internal/corpus"
)

const pkg = "com.demo.app."

func demoDevice(t *testing.T, opts Options) *Device {
	t.Helper()
	app, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		t.Fatalf("BuildApp: %v", err)
	}
	return New(app, opts)
}

func launch(t *testing.T, d *Device) {
	t.Helper()
	if err := d.LaunchMain(); err != nil {
		t.Fatalf("LaunchMain: %v", err)
	}
}

func TestLaunchMain(t *testing.T) {
	d := demoDevice(t, Options{})
	launch(t, d)
	cur, err := d.CurrentActivity()
	if err != nil || cur != pkg+"Main" {
		t.Fatalf("current = %q, %v", cur, err)
	}
	dump, err := d.Dump()
	if err != nil {
		t.Fatal(err)
	}
	// Home is committed in onCreate through the FragmentManager.
	if len(dump.FMFragments) != 1 || dump.FMFragments[0] != pkg+"Home" {
		t.Fatalf("FMFragments = %v", dump.FMFragments)
	}
	// The slide drawer's contents are present but invisible.
	for _, w := range dump.Widgets {
		if w.Ref == apk.NormalizeRef("@id/main_smenu_secret") && w.Visible {
			t.Error("slide-drawer button visible without gesture")
		}
	}
}

func TestInteractionsBeforeLaunch(t *testing.T) {
	d := demoDevice(t, Options{})
	if _, err := d.CurrentActivity(); !errors.Is(err, ErrNotRunning) {
		t.Errorf("CurrentActivity = %v", err)
	}
	if err := d.Click("@id/x"); !errors.Is(err, ErrNotRunning) {
		t.Errorf("Click = %v", err)
	}
}

func TestTabSwitchFragment(t *testing.T) {
	d := demoDevice(t, Options{})
	launch(t, d)
	// Figure 1: clicking the RECENT tab replaces the fragment.
	if err := d.Click(corpus.TabButtonRef("Main", "Recent")); err != nil {
		t.Fatalf("tab click: %v", err)
	}
	dump, _ := d.Dump()
	if len(dump.FMFragments) != 1 || dump.FMFragments[0] != pkg+"Recent" {
		t.Fatalf("after tab, FMFragments = %v", dump.FMFragments)
	}
	// Fragment widgets appear in the dump and are attributed to the fragment.
	found := false
	for _, w := range dump.Widgets {
		if w.FromFragment == pkg+"Recent" {
			found = true
		}
		if w.FromFragment == pkg+"Home" {
			t.Error("stale Home widgets in dump after replace")
		}
	}
	if !found {
		t.Fatal("Recent fragment widgets missing from dump")
	}
}

func TestFragmentToFragmentSwitch(t *testing.T) {
	d := demoDevice(t, Options{})
	launch(t, d)
	// Home's own switch button replaces Home with Recent (E3).
	if err := d.Click(corpus.SwitchButtonRef("Home", "Recent")); err != nil {
		t.Fatalf("switch click: %v", err)
	}
	dump, _ := d.Dump()
	if len(dump.FMFragments) != 1 || dump.FMFragments[0] != pkg+"Recent" {
		t.Fatalf("FMFragments = %v", dump.FMFragments)
	}
}

func TestActivityNavigation(t *testing.T) {
	d := demoDevice(t, Options{})
	launch(t, d)
	if err := d.Click(corpus.NavButtonRef("Main", "Detail")); err != nil {
		t.Fatalf("nav click: %v", err)
	}
	if cur, _ := d.CurrentActivity(); cur != pkg+"Detail" {
		t.Fatalf("current = %q", cur)
	}
	if err := d.Back(); err != nil {
		t.Fatal(err)
	}
	if cur, _ := d.CurrentActivity(); cur != pkg+"Main" {
		t.Fatalf("after back = %q", cur)
	}
}

func TestDrawerToggleFlow(t *testing.T) {
	d := demoDevice(t, Options{})
	launch(t, d)
	if err := d.Click(corpus.NavButtonRef("Main", "Detail")); err != nil {
		t.Fatal(err)
	}
	// The drawer menu button is hidden before toggling.
	err := d.Click(corpus.MenuButtonRef("Detail", "Settings"))
	if !errors.Is(err, ErrHidden) {
		t.Fatalf("hidden click err = %v", err)
	}
	if err := d.Click(corpus.DrawerToggleRef("Detail")); err != nil {
		t.Fatalf("toggle: %v", err)
	}
	if err := d.Click(corpus.MenuButtonRef("Detail", "Settings")); err != nil {
		t.Fatalf("menu click after toggle: %v", err)
	}
	if cur, _ := d.CurrentActivity(); cur != pkg+"Settings" {
		t.Fatalf("current = %q", cur)
	}
}

func TestDrawerFragmentFlow(t *testing.T) {
	d := demoDevice(t, Options{})
	launch(t, d)
	if err := d.Click(corpus.NavButtonRef("Main", "Detail")); err != nil {
		t.Fatal(err)
	}
	if err := d.Click(corpus.DrawerToggleRef("Detail")); err != nil {
		t.Fatal(err)
	}
	if err := d.Click(corpus.MenuFragButtonRef("Detail", "Promo")); err != nil {
		t.Fatalf("drawer fragment click: %v", err)
	}
	dump, _ := d.Dump()
	if len(dump.FMFragments) != 1 || dump.FMFragments[0] != pkg+"Promo" {
		t.Fatalf("FMFragments = %v", dump.FMFragments)
	}
}

func TestImplicitIntentNavigation(t *testing.T) {
	d := demoDevice(t, Options{})
	launch(t, d)
	if err := d.Click(corpus.NavButtonRef("Main", "Detail")); err != nil {
		t.Fatal(err)
	}
	if err := d.Click("@id/detail_act_share"); err != nil {
		t.Fatalf("action click: %v", err)
	}
	if cur, _ := d.CurrentActivity(); cur != pkg+"Share" {
		t.Fatalf("current = %q", cur)
	}
}

func TestInputGate(t *testing.T) {
	d := demoDevice(t, Options{})
	launch(t, d)
	if err := d.Click(corpus.NavButtonRef("Main", "Login")); err != nil {
		t.Fatal(err)
	}
	// Wrong (empty) input: stays on Login, error dialog appears.
	if err := d.Click(corpus.NavButtonRef("Login", "Account")); err != nil {
		t.Fatal(err)
	}
	if cur, _ := d.CurrentActivity(); cur != pkg+"Login" {
		t.Fatalf("gate let us through: %q", cur)
	}
	if !d.HasDialog() {
		t.Fatal("no error dialog after failed gate")
	}
	if err := d.DismissDialog(); err != nil {
		t.Fatal(err)
	}
	// Correct input: proceeds, and the extras put by the handler satisfy
	// Account's require-extra.
	if err := d.EnterText(corpus.InputRef("Login", "Account"), "alice"); err != nil {
		t.Fatal(err)
	}
	if err := d.Click(corpus.NavButtonRef("Login", "Account")); err != nil {
		t.Fatal(err)
	}
	if cur, _ := d.CurrentActivity(); cur != pkg+"Account" {
		t.Fatalf("current = %q", cur)
	}
}

func TestDialogInterceptsClicks(t *testing.T) {
	d := demoDevice(t, Options{})
	launch(t, d)
	if err := d.Click(corpus.NavButtonRef("Main", "Login")); err != nil {
		t.Fatal(err)
	}
	if err := d.Click(corpus.NavButtonRef("Login", "Account")); err != nil {
		t.Fatal(err)
	}
	if !d.HasDialog() {
		t.Fatal("expected dialog")
	}
	// A click while the dialog shows dismisses it and does NOT navigate.
	if err := d.Click(corpus.NavButtonRef("Login", "Account")); err != nil {
		t.Fatal(err)
	}
	if d.HasDialog() {
		t.Fatal("dialog still showing")
	}
	if cur, _ := d.CurrentActivity(); cur != pkg+"Login" {
		t.Fatalf("dialog click navigated to %q", cur)
	}
}

func TestForceStart(t *testing.T) {
	d := demoDevice(t, Options{})
	// Secret is normally reachable only via the slide drawer; forced start
	// reaches it directly.
	if err := d.ForceStart(pkg + "Secret"); err != nil {
		t.Fatalf("ForceStart Secret: %v", err)
	}
	if cur, _ := d.CurrentActivity(); cur != pkg+"Secret" {
		t.Fatalf("current = %q", cur)
	}
	// Account requires an intent extra: the empty forced intent crashes.
	if err := d.ForceStart(pkg + "Account"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("ForceStart Account err = %v", err)
	}
	if !d.Crashed() || !strings.Contains(d.CrashReason(), "token") {
		t.Fatalf("crash state = %v %q", d.Crashed(), d.CrashReason())
	}
	// Undeclared component.
	if err := d.ForceStart(pkg + "Nope"); err == nil {
		t.Fatal("ForceStart undeclared: want error")
	}
	// Relaunch recovers from the crash.
	if err := d.LaunchMain(); err != nil {
		t.Fatalf("relaunch: %v", err)
	}
	if d.Crashed() {
		t.Fatal("still crashed after relaunch")
	}
}

func TestReflection(t *testing.T) {
	d := demoDevice(t, Options{})
	launch(t, d)
	// VIP requires args: reflection must fail with a ReflectionError.
	err := d.Reflect(pkg+"VIP", corpus.ContainerRef("Main"))
	var re *ReflectionError
	if !errors.As(err, &re) || !strings.Contains(re.Reason, "parameters") {
		t.Fatalf("Reflect VIP err = %v", err)
	}
	// Recent reflects fine into Main's container.
	if err := d.Reflect(pkg+"Recent", corpus.ContainerRef("Main")); err != nil {
		t.Fatalf("Reflect Recent: %v", err)
	}
	dump, _ := d.Dump()
	if len(dump.FMFragments) != 1 || dump.FMFragments[0] != pkg+"Recent" {
		t.Fatalf("FMFragments = %v", dump.FMFragments)
	}
	// Settings never obtains a FragmentManager: reflection fails there.
	if err := d.ForceStart(pkg + "Settings"); err != nil {
		t.Fatal(err)
	}
	err = d.Reflect(pkg+"Lab", corpus.ContainerRef("Settings"))
	if !errors.As(err, &re) || !strings.Contains(re.Reason, "FragmentManager") {
		t.Fatalf("Reflect in Settings err = %v", err)
	}
}

func TestInflateViewIsInvisibleToInstrumentation(t *testing.T) {
	d := demoDevice(t, Options{})
	if err := d.ForceStart(pkg + "Settings"); err != nil {
		t.Fatal(err)
	}
	dump, _ := d.Dump()
	// About (static <fragment>) is FM-backed; Lab (inflate-view) is not.
	if len(dump.FMFragments) != 1 || dump.FMFragments[0] != pkg+"About" {
		t.Fatalf("FMFragments = %v", dump.FMFragments)
	}
	truth := d.ActiveFragments()
	if viaFM, ok := truth[pkg+"Lab"]; !ok || viaFM {
		t.Fatalf("ground truth for Lab = %v, %v", viaFM, ok)
	}
	if viaFM, ok := truth[pkg+"About"]; !ok || !viaFM {
		t.Fatalf("ground truth for About = %v, %v", viaFM, ok)
	}
	// Lab's widgets are still on screen (the view exists).
	found := false
	for _, w := range dump.Widgets {
		if w.FromFragment == pkg+"Lab" {
			found = true
		}
	}
	if !found {
		t.Fatal("inflated fragment widgets missing from dump")
	}
}

func TestSensitiveMonitorAttribution(t *testing.T) {
	var events []SensitiveEvent
	d := demoDevice(t, Options{Monitor: func(e SensitiveEvent) { events = append(events, e) }})
	launch(t, d)
	byAPI := make(map[string]SensitiveEvent)
	for _, e := range events {
		byAPI[e.API] = e
	}
	act, ok := byAPI["internet/connect"]
	if !ok || act.InFragment || act.Class != pkg+"Main" {
		t.Fatalf("activity attribution = %+v, %v", act, ok)
	}
	frag, ok := byAPI["internet/inet"]
	if !ok || !frag.InFragment || frag.Class != pkg+"Home" || frag.Activity != pkg+"Main" {
		t.Fatalf("fragment attribution = %+v, %v", frag, ok)
	}
}

func TestClickErrors(t *testing.T) {
	d := demoDevice(t, Options{})
	launch(t, d)
	if err := d.Click("@id/absent"); !errors.Is(err, ErrNoSuchWidget) {
		t.Errorf("absent = %v", err)
	}
	if err := d.Click("@id/main_title"); !errors.Is(err, ErrNotClickable) {
		t.Errorf("textview = %v", err)
	}
	if err := d.EnterText("@id/main_title", "x"); !errors.Is(err, ErrNotEditable) {
		t.Errorf("enter into textview = %v", err)
	}
}

func TestStepsAndEvents(t *testing.T) {
	d := demoDevice(t, Options{})
	launch(t, d)
	if d.Steps() == 0 {
		t.Fatal("no steps counted")
	}
	joined := strings.Join(d.Events(), "\n")
	if !strings.Contains(joined, "am start") {
		t.Fatalf("events missing launch record:\n%s", joined)
	}
}

func TestBackToExit(t *testing.T) {
	d := demoDevice(t, Options{})
	launch(t, d)
	if err := d.Back(); err != nil {
		t.Fatal(err)
	}
	if d.Running() {
		t.Fatal("still running after backing out of the root activity")
	}
	if err := d.Back(); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("back on empty stack = %v", err)
	}
}
