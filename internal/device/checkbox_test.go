package device

import (
	"testing"
)

// A terms-of-service gate: the Continue button only proceeds once the
// CheckBox has been toggled to "checked" (§V-C lists CheckBox among the
// input widgets that gate progress).
func TestCheckBoxGate(t *testing.T) {
	app := makeApp(t,
		[]string{"t.A", "t.B"},
		map[string]string{
			"a": `<LinearLayout id="@+id/a_root">
  <CheckBox id="@+id/tos"/>
  <Button id="@+id/go" onClick="onGo"/>
</LinearLayout>`,
			"b": `<LinearLayout id="@+id/b_root"/>`,
		},
		map[string]string{
			"t.A": `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
.end method
.method onGo()V
    require-input @id/tos "checked"
    new-intent Lt/A; Lt/B;
    start-activity
.end method`,
			"t.B": `
.class Lt/B;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/b
.end method`,
		})
	d := New(app, Options{})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	// Unchecked: the gate blocks.
	if err := d.Click("@id/go"); err != nil {
		t.Fatal(err)
	}
	if cur, _ := d.CurrentActivity(); cur != "t.A" {
		t.Fatalf("gate passed unchecked: %q", cur)
	}
	if err := d.DismissDialog(); err != nil {
		t.Fatal(err)
	}
	// The checkbox is clickable in dumps and toggles on click.
	dump, _ := d.Dump()
	clickable := false
	for _, w := range dump.Widgets {
		if w.Ref == "@id/tos" && w.Clickable {
			clickable = true
		}
		if w.Ref == "@id/tos" && w.Editable {
			t.Error("checkbox must not be text-editable")
		}
	}
	if !clickable {
		t.Fatal("checkbox not clickable in dump")
	}
	if err := d.Click("@id/tos"); err != nil {
		t.Fatalf("toggle: %v", err)
	}
	dump, _ = d.Dump()
	for _, w := range dump.Widgets {
		if w.Ref == "@id/tos" && w.Text != CheckBoxChecked {
			t.Fatalf("checkbox text = %q", w.Text)
		}
	}
	// Checked: the gate opens.
	if err := d.Click("@id/go"); err != nil {
		t.Fatal(err)
	}
	if cur, _ := d.CurrentActivity(); cur != "t.B" {
		t.Fatalf("gate blocked checked: %q", cur)
	}
	// Toggling twice returns to unchecked.
	if err := d.Back(); err != nil {
		t.Fatal(err)
	}
	if err := d.Click("@id/tos"); err != nil {
		t.Fatal(err)
	}
	dump, _ = d.Dump()
	for _, w := range dump.Widgets {
		if w.Ref == "@id/tos" && w.Text != CheckBoxUnchecked {
			t.Fatalf("after second toggle: %q", w.Text)
		}
	}
	// EnterText into a checkbox is rejected.
	if err := d.EnterText("@id/tos", "x"); err == nil {
		t.Fatal("EnterText into checkbox succeeded")
	}
}

// The explorer discovers checkbox-gated transitions by clicking the box
// during Case 3 exploration (the toggle changes the interface digest,
// scheduling a re-exploration pass where the gate is open).
func TestCheckBoxIsExplorable(t *testing.T) {
	// Covered end-to-end in the explorer package; here we only pin the
	// clickability contract the explorer relies on.
	app := makeApp(t,
		[]string{"t.A"},
		map[string]string{
			"a": `<LinearLayout id="@+id/a_root"><CheckBox id="@+id/cb"/></LinearLayout>`,
		},
		map[string]string{
			"t.A": `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
.end method`,
		})
	d := New(app, Options{})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	dump, _ := d.Dump()
	refs := dump.ClickableRefs()
	if len(refs) != 1 || refs[0] != "@id/cb" {
		t.Fatalf("ClickableRefs = %v", refs)
	}
}
