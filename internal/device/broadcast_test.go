package device

import (
	"errors"
	"strings"
	"testing"

	"fragdroid/internal/corpus"
)

// broadcastSpec: a receiver that reads the SMS store on BOOT_COMPLETED and a
// second receiver that launches an activity on a custom event.
func broadcastSpec() *corpus.AppSpec {
	return &corpus.AppSpec{
		Package: "com.bcast",
		Activities: []corpus.ActivitySpec{
			{Name: "Main", Launcher: true},
			{Name: "Alert"},
		},
		Transition: []corpus.Transition{
			{From: "Main", To: "Alert", Kind: corpus.TransButton},
		},
		Receivers: []corpus.ReceiverSpec{
			{
				Name:      "BootReceiver",
				Actions:   []string{"android.intent.action.BOOT_COMPLETED"},
				Sensitive: []string{"messages/MmsProvider"},
			},
			{
				Name:           "AlertReceiver",
				Actions:        []string{"com.bcast.ALERT"},
				StartsActivity: "Alert",
			},
		},
	}
}

func TestBroadcastDelivery(t *testing.T) {
	app, err := corpus.BuildApp(broadcastSpec())
	if err != nil {
		t.Fatal(err)
	}
	var events []SensitiveEvent
	d := New(app, Options{Monitor: func(e SensitiveEvent) { events = append(events, e) }})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	// System event: the boot receiver reads the SMS store.
	if err := d.Broadcast("android.intent.action.BOOT_COMPLETED"); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if len(events) != 1 || events[0].API != "messages/MmsProvider" {
		t.Fatalf("events = %+v", events)
	}
	if events[0].InFragment || events[0].Activity != "" {
		t.Fatalf("receiver attribution wrong: %+v", events[0])
	}
	// App event: the alert receiver launches an activity.
	if err := d.Broadcast("com.bcast.ALERT"); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if cur, _ := d.CurrentActivity(); cur != "com.bcast.Alert" {
		t.Fatalf("current = %q", cur)
	}
	// An action nobody subscribes to is a silent no-op.
	if err := d.Broadcast("com.bcast.NOBODY"); err != nil {
		t.Fatalf("unsubscribed broadcast: %v", err)
	}
	if !strings.Contains(strings.Join(d.Events(), "\n"), "0 receivers") {
		t.Error("unsubscribed broadcast not logged")
	}
}

func TestBroadcastActionsVocabulary(t *testing.T) {
	app, err := corpus.BuildApp(broadcastSpec())
	if err != nil {
		t.Fatal(err)
	}
	got := app.Manifest.BroadcastActions()
	want := []string{"android.intent.action.BOOT_COMPLETED", "com.bcast.ALERT"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("BroadcastActions = %v", got)
	}
	if rs := app.Manifest.ReceiversFor("com.bcast.ALERT"); len(rs) != 1 || rs[0] != "com.bcast.AlertReceiver" {
		t.Fatalf("ReceiversFor = %v", rs)
	}
}

// A receiver that tries to touch the UI force-closes — receivers have no
// window.
func TestReceiverUIAccessCrashes(t *testing.T) {
	app := makeApp(t,
		[]string{"t.A"},
		map[string]string{"a": `<LinearLayout id="@+id/a_root"/>`},
		map[string]string{
			"t.A": `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
.end method`,
			"t.R": `
.class Lt/R;
.super Landroid/content/BroadcastReceiver;
.method onReceive()V
    show-dialog "no window here"
.end method`,
		})
	// Register the receiver in the manifest by hand.
	app.Manifest.Application.Receivers = append(app.Manifest.Application.Receivers,
		receiverDecl("t.R", "t.EVENT"))
	d := New(app, Options{})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	if err := d.Broadcast("t.EVENT"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Broadcast err = %v", err)
	}
	if !strings.Contains(d.CrashReason(), "IllegalStateException") {
		t.Fatalf("reason = %q", d.CrashReason())
	}
}

// App code can send broadcasts itself: a button handler fires send-broadcast
// and the subscribed receiver launches the alert activity.
func TestAppInitiatedBroadcast(t *testing.T) {
	app := makeApp(t,
		[]string{"t.A", "t.Alert"},
		map[string]string{
			"a": `<LinearLayout id="@+id/a_root"><Button id="@+id/fire" onClick="onFire"/></LinearLayout>`,
		},
		map[string]string{
			"t.A": `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
.end method
.method onFire()V
    send-broadcast "t.ALARM"
.end method`,
			"t.Alert": `
.class Lt/Alert;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
.end method`,
			"t.R": `
.class Lt/R;
.super Landroid/content/BroadcastReceiver;
.method onReceive()V
    new-intent Lt/R; Lt/Alert;
    start-activity
.end method`,
		})
	app.Manifest.Application.Receivers = append(app.Manifest.Application.Receivers,
		receiverDecl("t.R", "t.ALARM"))
	d := New(app, Options{})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	if err := d.Click("@id/fire"); err != nil {
		t.Fatal(err)
	}
	if cur, _ := d.CurrentActivity(); cur != "t.Alert" {
		t.Fatalf("current = %q", cur)
	}
}

func TestBroadcastWhileCrashed(t *testing.T) {
	app, err := corpus.BuildApp(broadcastSpec())
	if err != nil {
		t.Fatal(err)
	}
	d := New(app, Options{})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	// Force a crash, then broadcasts must be rejected.
	d.crash("test crash")
	if err := d.Broadcast("com.bcast.ALERT"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
}
