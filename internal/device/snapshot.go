package device

import (
	"errors"

	"fragdroid/internal/apk"
)

// ErrStaleSnapshot is returned by Restore when the snapshot was captured on a
// different installed app than the target device's — restoring it would
// resume into state that never existed on this installation.
var ErrStaleSnapshot = errors.New("device: snapshot belongs to a different app installation")

// ErrSnapshotBehind is returned by Advance when the snapshot does not extend
// the device's current history — it stands for less work, or a shorter
// journal, than the device has already performed.
var ErrSnapshotBehind = errors.New("device: snapshot is behind the device's current state")

// journalEntry is one replayable side effect of interpretation: either a
// device-log line or a sensitive-API emission. The journal is what makes
// snapshots observationally exact: restoring a snapshot re-applies the
// entries in order, so the monitor and the log hook see the same stream a
// real re-execution of the route prefix would have produced.
type journalEntry struct {
	line string
	// sens is non-nil for sensitive-API emissions, nil for log lines. A
	// pointer keeps the common log entry at two words — the journal is the
	// interpreter's fastest-growing slice, and most entries are plain lines.
	sens *SensitiveEvent
}

// Snapshot is an immutable capture of a device's full interpreter state: the
// activity back stack with live fragments, widget-state overrides, pending
// dialogs and intent extras, the crash state, the logical step count, and the
// side-effect journal accumulated since the device was created. Snapshots
// never alias mutable device state — Snapshot deep-copies on capture and
// Restore deep-copies on reinstatement — so one snapshot can seed any number
// of devices, concurrently, without write-back. Layout trees are shared, not
// copied: they are immutable at runtime (all mutable widget state lives in
// the per-activity override maps).
type Snapshot struct {
	app      *apk.App
	stack    []*activityInstance
	crashed  bool
	crashMsg string
	steps    int
	journal  []journalEntry
}

// Steps reports the logical step count the snapshot stands for — the
// interpreter work a fresh device would have to perform to reach this state
// by executing the captured route from launch.
func (s *Snapshot) Steps() int { return s.steps }

// Snapshot captures the device's current state as an immutable value. The
// capture covers everything interpretation can observe or mutate — activity
// and fragment stacks, widget trees (shared, immutable), listener
// registrations, text and visibility overrides, intent extras, dialogs, the
// crash state — plus the side-effect journal and step count needed to make a
// later Restore observationally identical to re-executing the route.
func (d *Device) Snapshot() *Snapshot {
	return &Snapshot{
		app:      d.app,
		stack:    copyStack(d.stack),
		crashed:  d.crashed,
		crashMsg: d.crashMsg,
		steps:    d.steps,
		// A capped view, not a copy: the journal is append-only and its
		// entries are immutable values, so the prefix can be shared. The cap
		// keeps any append on the view from ever touching the device's tail,
		// and per-op checkpointing stays O(state) instead of O(journal).
		journal: d.journal[:len(d.journal):len(d.journal)],
	}
}

// Restore reinstates a snapshot: the interpreter state (stack, fragments,
// overrides, crash state) replaces whatever the device was doing — exactly
// like the kill-and-restart the snapshot stands in for — while the
// side-effect journal and step charge are applied on top of the device's own
// log and counters, as a real re-execution would have appended them. The
// journal entries are re-emitted through the device's monitor and log hook,
// so sensitive-API collectors and trace observers see the same stream either
// way. Restoring a snapshot captured on a different app installation fails
// with ErrStaleSnapshot and leaves the device untouched.
func (d *Device) Restore(s *Snapshot) error {
	if s == nil || s.app != d.app {
		return ErrStaleSnapshot
	}
	d.stack = copyStack(s.stack)
	d.crashed = s.crashed
	d.crashMsg = s.crashMsg
	d.steps += s.steps
	d.restored += s.steps
	d.journal = append(d.journal, s.journal...)
	for _, e := range s.journal {
		if e.sens != nil {
			if d.opts.Monitor != nil {
				d.opts.Monitor(*e.sens)
			}
		} else if d.opts.Hook != nil {
			d.opts.Hook(e.line)
		}
	}
	return nil
}

// Crashed reports whether the snapshot captured a crashed device.
func (s *Snapshot) Crashed() bool { return s.crashed }

// Rebind returns a snapshot identical to s but bound to the given app
// installation. It is how the persistent memo serves a snapshot captured in a
// previous process — or on a content-identical re-install — to the current
// one: same encoded app spec ⇒ same immutable layout trees ⇒ the captured
// state is valid verbatim. Only the binding swaps; the stack is shared (both
// Restore and Advance deep-copy on reinstatement, so sharing is safe).
func (s *Snapshot) Rebind(app *apk.App) *Snapshot {
	if s == nil || s.app == app {
		return s
	}
	cp := *s
	cp.app = app
	return &cp
}

// Advance fast-forwards a device along its own history: the snapshot must
// extend what the device has already done (same installation, at least as many
// steps, a journal the device's own is a prefix of). Unlike Restore — which
// charges the snapshot's full step count on top of the device's counters, as
// befits a kill-and-restart — Advance charges only the delta, so a device
// mid-route can skip ahead to a memoized continuation without double-counting
// the work it has already been billed for. Only the journal suffix is
// re-emitted through the monitor and log hook.
func (d *Device) Advance(s *Snapshot) error {
	if s == nil || s.app != d.app {
		return ErrStaleSnapshot
	}
	if s.steps < d.steps || len(s.journal) < len(d.journal) {
		return ErrSnapshotBehind
	}
	d.stack = copyStack(s.stack)
	d.crashed = s.crashed
	d.crashMsg = s.crashMsg
	delta := s.steps - d.steps
	d.steps = s.steps
	d.restored += delta
	suffix := s.journal[len(d.journal):]
	d.journal = append(d.journal, suffix...)
	for _, e := range suffix {
		if e.sens != nil {
			if d.opts.Monitor != nil {
				d.opts.Monitor(*e.sens)
			}
		} else if d.opts.Hook != nil {
			d.opts.Hook(e.line)
		}
	}
	return nil
}

// copyStack deep-copies the activity back stack. Map nil-ness is preserved
// (instances allocate their override maps lazily); layout content pointers
// are shared because the trees are immutable at runtime.
func copyStack(stack []*activityInstance) []*activityInstance {
	if stack == nil {
		return nil
	}
	out := make([]*activityInstance, len(stack))
	for i, a := range stack {
		cp := &activityInstance{
			class:     a.class,
			intent:    a.intent,
			content:   a.content,
			fragOrder: append([]string(nil), a.fragOrder...),
			listeners: copyHandlerMap(a.listeners),
			texts:     copyStringMap(a.texts),
			visible:   copyBoolMap(a.visible),
		}
		cp.intent.extras = copyStringMap(a.intent.extras)
		if a.dialog != nil {
			dl := *a.dialog
			cp.dialog = &dl
		}
		if a.fragments != nil {
			cp.fragments = make(map[string]*fragmentInstance, len(a.fragments))
			for c, f := range a.fragments {
				fc := &fragmentInstance{
					class:     f.class,
					container: f.container,
					content:   f.content,
					listeners: copyHandlerMap(f.listeners),
					viaFM:     f.viaFM,
				}
				cp.fragments[c] = fc
			}
		}
		out[i] = cp
	}
	return out
}

func copyStringMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyBoolMap(m map[string]bool) map[string]bool {
	if m == nil {
		return nil
	}
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyHandlerMap(m map[string]handlerRef) map[string]handlerRef {
	if m == nil {
		return nil
	}
	out := make(map[string]handlerRef, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
