// Package device implements the Android runtime simulator FragDroid's
// dynamic phase drives. It stands in for the paper's customized Android
// device plus ADB plus the Robotium instrumentation runtime: it installs one
// app, interprets the app's smali code, maintains the activity back stack,
// fragment managers, view hierarchies, dialogs and drawers, delivers click
// and text events, force-closes on app crashes, and reports UI dumps the way
// an instrumentation harness would observe them.
//
// The simulator executes the same smali program the static phase analyses,
// so static model and dynamic truth can genuinely diverge — the divergences
// (fragments loaded without a FragmentManager, activities demanding intent
// extras, hidden slide-only drawers) are exactly the phenomena the paper's
// evaluation discusses.
package device

import (
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"

	"fragdroid/internal/apk"
	"fragdroid/internal/ir"
	"fragdroid/internal/layout"
	"fragdroid/internal/smali"
)

// Common device errors.
var (
	// ErrCrashed is returned by interactions while the app is force-closed.
	ErrCrashed = errors.New("device: application has crashed (FC)")
	// ErrNotRunning is returned when no activity is on the stack.
	ErrNotRunning = errors.New("device: application is not running")
	// ErrNoSuchWidget is returned for interactions with absent widgets.
	ErrNoSuchWidget = errors.New("device: no such widget on screen")
	// ErrHidden is returned for interactions with invisible widgets.
	ErrHidden = errors.New("device: widget is not visible")
	// ErrNotClickable is returned when clicking a widget with no handler.
	ErrNotClickable = errors.New("device: widget is not clickable")
	// ErrNotEditable is returned when entering text into a non-input widget.
	ErrNotEditable = errors.New("device: widget is not editable")
)

// ReflectionError describes a failed reflective fragment switch (§VI-A Case
// 2 and the com.inditex.zara / com.mobilemotion.dubsmash failure modes).
type ReflectionError struct {
	Fragment string
	Reason   string
}

func (e *ReflectionError) Error() string {
	return fmt.Sprintf("device: reflection on %s failed: %s", e.Fragment, e.Reason)
}

// SensitiveEvent is emitted whenever the interpreted code invokes a
// sensitive API. Class is the declaring class of the executing method;
// InFragment tells whether that class is a Fragment subclass; Activity is
// the activity on whose screen the call happened.
type SensitiveEvent struct {
	API        string
	Class      string
	InFragment bool
	Activity   string
}

// Options configure a device.
type Options struct {
	// Monitor receives sensitive-API events; nil disables monitoring.
	Monitor func(SensitiveEvent)
	// Hook receives every device-log line as it is written — the trace hook
	// an exploration session uses to forward device activity to its
	// structured event stream. Nil disables forwarding; the internal log is
	// kept either way.
	Hook func(line string)
	// MaxStartDepth bounds nested activity starts within one event to break
	// pathological onCreate→startActivity cycles (treated as an ANR crash).
	// Zero means the default of 16.
	MaxStartDepth int
	// MaxSteps, when positive, crashes the app once the device has executed
	// that many instructions. Depth-bounded start chains can still fan out
	// exponentially (k starts per onCreate, k^depth executions); the
	// differential fuzzer uses this budget to keep such inputs finite. Zero
	// (the default everywhere else) means unlimited.
	MaxSteps int
	// Interp selects the interpreter backend: "ir" runs precompiled method
	// IR (the default), "classic" walks parsed smali directly. Empty uses
	// the package default (settable via SetDefaultInterp, e.g. from the
	// -interp CLI flag). Both backends are observably identical.
	Interp string
}

// classicDefault flips the package-wide default backend to the classic
// interpreter. Atomic so tests and CLI flag handling stay race-clean.
var classicDefault atomic.Bool

// SetDefaultInterp selects the backend used by devices whose Options.Interp
// is empty: "ir" (also ""), or "classic".
func SetDefaultInterp(mode string) error {
	switch mode {
	case "ir", "":
		classicDefault.Store(false)
	case "classic":
		classicDefault.Store(true)
	default:
		return fmt.Errorf("device: unknown interpreter %q (want ir or classic)", mode)
	}
	return nil
}

// DefaultInterp reports the package-wide default backend.
func DefaultInterp() string {
	if classicDefault.Load() {
		return "classic"
	}
	return "ir"
}

// Device is one emulated phone with a single installed app.
type Device struct {
	app  *apk.App
	opts Options
	// ir is the compiled program of the IR fast path; nil selects the
	// classic interpreter. Shared (with its inline caches) by every device
	// running the same app.
	ir *ir.Program

	stack    []*activityInstance
	crashed  bool
	crashMsg string

	// steps is the logical work counter: interpreted instructions plus
	// delivered UI events, whether executed or credited by a snapshot
	// restore. restored is the portion of steps that came from restores.
	steps    int
	restored int
	// journal is the ordered side-effect history since creation: log lines
	// and sensitive-API emissions. Snapshots capture it so Restore can
	// re-apply the exact observable stream of the skipped execution.
	journal []journalEntry
}

// activityInstance is one live activity on the back stack.
//
// The override maps (fragments, listeners, texts, visible) are allocated
// lazily on first write — most activity starts never touch most of them, and
// the kill-and-restart discipline makes activity starts the interpreter's
// hottest allocation site. Readers must tolerate nil maps (indexing a nil map
// is fine in Go); writers go through the set* helpers.
type activityInstance struct {
	class  string
	intent intent
	// content is the inflated layout. Layout trees are immutable at runtime
	// (all mutable widget state lives in the override maps below), so content
	// aliases the installed app's tree — no per-start deep copy.
	content *layout.Layout
	// fragments maps container ref -> live fragment, in commit order.
	fragments map[string]*fragmentInstance
	fragOrder []string
	// listeners maps widget ref -> handler registered via code.
	listeners map[string]handlerRef
	// texts and visible override widget state.
	texts   map[string]string
	visible map[string]bool
	// dialog is the modal dialog/popup currently showing, if any.
	dialog *dialog
}

func (t *activityInstance) setText(ref, val string) {
	if t.texts == nil {
		t.texts = make(map[string]string)
	}
	t.texts[ref] = val
}

func (t *activityInstance) setVisible(ref string, v bool) {
	if t.visible == nil {
		t.visible = make(map[string]bool)
	}
	t.visible[ref] = v
}

func (t *activityInstance) setListener(ref string, h handlerRef) {
	if t.listeners == nil {
		t.listeners = make(map[string]handlerRef)
	}
	t.listeners[ref] = h
}

// fragmentInstance is a live fragment inside an activity.
type fragmentInstance struct {
	class     string
	container string
	content   *layout.Layout
	// listeners is allocated lazily on first registration.
	listeners map[string]handlerRef
	// viaFM tells whether the fragment was committed through a
	// FragmentTransaction (true) or loaded directly (false). Instrumentation
	// can only confirm FM-backed fragments.
	viaFM bool
}

func (f *fragmentInstance) setListener(ref string, h handlerRef) {
	if f.listeners == nil {
		f.listeners = make(map[string]handlerRef)
	}
	f.listeners[ref] = h
}

type handlerRef struct {
	class  string
	method string
	// site is the inline-cache slot for this handler's dispatch; 0 means
	// "no cache" (classic-mode registrations, snapshot-decoded handlers).
	// Sites are allocated from 1 so the zero value is always safe.
	site int32
}

type dialog struct {
	text  string
	popup bool
}

type intent struct {
	explicit string
	action   string
	extras   map[string]string
}

func (it intent) has(key string) bool {
	_, ok := it.extras[key]
	return ok
}

// New returns a device with the app installed but not launched.
func New(app *apk.App, opts Options) *Device {
	if opts.MaxStartDepth == 0 {
		opts.MaxStartDepth = 16
	}
	mode := opts.Interp
	if mode == "" {
		mode = DefaultInterp()
	}
	d := &Device{app: app, opts: opts}
	if mode != "classic" {
		d.ir = ir.For(app)
	}
	return d
}

// Interp reports the backend this device runs on.
func (d *Device) Interp() string {
	if d.ir != nil {
		return "ir"
	}
	return "classic"
}

// App returns the installed app.
func (d *Device) App() *apk.App { return d.app }

// Steps reports the logical step count since creation: interpreted
// instructions plus delivered UI events, including steps credited by a
// snapshot Restore. Benchmarks and session budgets use it as the simulator's
// work measure; it is identical whether a route prefix was executed or
// restored.
func (d *Device) Steps() int { return d.steps }

// RestoredSteps reports the portion of Steps that was credited by snapshot
// restores instead of executed — the interpreter work snapshots saved.
func (d *Device) RestoredSteps() int { return d.restored }

// ExecutedSteps reports the steps the interpreter actually performed.
func (d *Device) ExecutedSteps() int { return d.steps - d.restored }

// Events returns the device log (driver-visible trace).
func (d *Device) Events() []string {
	out := make([]string, 0, len(d.journal))
	for _, e := range d.journal {
		if e.sens == nil {
			out = append(out, e.line)
		}
	}
	return out
}

// log appends a pre-built line to the journal; hot paths concatenate their
// lines directly instead of going through fmt.
func (d *Device) log(line string) {
	d.journal = append(d.journal, journalEntry{line: line})
	if d.opts.Hook != nil {
		d.opts.Hook(line)
	}
}

func (d *Device) logf(format string, args ...any) {
	d.log(fmt.Sprintf(format, args...))
}

// Crashed reports whether the app is force-closed; CrashReason says why.
func (d *Device) Crashed() bool       { return d.crashed }
func (d *Device) CrashReason() string { return d.crashMsg }

// Running reports whether at least one activity is on the stack.
func (d *Device) Running() bool { return !d.crashed && len(d.stack) > 0 }

func (d *Device) top() *activityInstance {
	if len(d.stack) == 0 {
		return nil
	}
	return d.stack[len(d.stack)-1]
}

// CurrentActivity returns the class of the foreground activity.
func (d *Device) CurrentActivity() (string, error) {
	if d.crashed {
		return "", ErrCrashed
	}
	t := d.top()
	if t == nil {
		return "", ErrNotRunning
	}
	return t.class, nil
}

// LaunchMain starts the app at its MAIN/LAUNCHER activity with a fresh task,
// the `am start -a MAIN -c LAUNCHER` of §VI-A.
func (d *Device) LaunchMain() error {
	entry, err := d.app.Manifest.EntryActivity()
	if err != nil {
		return err
	}
	d.reset()
	d.log("am start -n " + entry + " -a android.intent.action.MAIN -c android.intent.category.LAUNCHER")
	return d.startActivity(intent{explicit: entry}, 0)
}

// ForceStart starts an arbitrary declared activity with an empty intent on a
// fresh task. It models `am start -n <COMPONENT>` against the manifest that
// the static phase patched with MAIN actions for every activity, so any
// declared activity is startable — but activities that require intent extras
// force-close (§VII-B1: forced starting "does not take the context and
// Intent into account").
func (d *Device) ForceStart(activity string) error {
	if !d.app.Manifest.HasActivity(activity) {
		return fmt.Errorf("device: am start: activity %s not declared", activity)
	}
	d.reset()
	d.log("am start -n " + activity)
	return d.startActivity(intent{explicit: activity}, 0)
}

// reset clears the task and crash state (process restart).
func (d *Device) reset() {
	d.stack = nil
	d.crashed = false
	d.crashMsg = ""
}

// Back pops the foreground activity (the BACK key).
func (d *Device) Back() error {
	if d.crashed {
		return ErrCrashed
	}
	if len(d.stack) == 0 {
		return ErrNotRunning
	}
	d.steps++
	top := d.stack[len(d.stack)-1]
	if top.dialog != nil {
		top.dialog = nil
		d.log("back: dismissed dialog")
		return nil
	}
	d.stack = d.stack[:len(d.stack)-1]
	d.log("back: finished " + top.class)
	return nil
}

// crash force-closes the app.
func (d *Device) crash(reason string) {
	d.crashed = true
	d.crashMsg = reason
	d.stack = nil
	d.log("FATAL EXCEPTION: " + reason)
}

// DismissDialog clicks blank space to remove a dialog or popup menu (§VI-A
// Case 3). It is a no-op error if no dialog is showing.
func (d *Device) DismissDialog() error {
	if d.crashed {
		return ErrCrashed
	}
	t := d.top()
	if t == nil {
		return ErrNotRunning
	}
	if t.dialog == nil {
		return errors.New("device: no dialog to dismiss")
	}
	d.steps++
	d.log("dismiss dialog " + strconv.Quote(t.dialog.text))
	t.dialog = nil
	return nil
}

// HasDialog reports whether a modal dialog or popup is showing.
func (d *Device) HasDialog() bool {
	t := d.top()
	return t != nil && t.dialog != nil
}

// EnterText types a value into an input widget.
func (d *Device) EnterText(ref, value string) error {
	if d.crashed {
		return ErrCrashed
	}
	t := d.top()
	if t == nil {
		return ErrNotRunning
	}
	d.steps++
	w, _, visible, ok := d.findWidget(t, apk.NormalizeRef(ref))
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchWidget, ref)
	}
	if !visible {
		return fmt.Errorf("%w: %s", ErrHidden, ref)
	}
	if !w.Input() {
		return fmt.Errorf("%w: %s", ErrNotEditable, ref)
	}
	t.setText(apk.NormalizeRef(ref), value)
	d.log("enter " + strconv.Quote(value) + " into " + ref)
	return nil
}

// Click delivers a click to a widget. While a dialog is showing, any click
// lands on the dialog and dismisses it (the paper's blank-space click).
func (d *Device) Click(ref string) error {
	if d.crashed {
		return ErrCrashed
	}
	t := d.top()
	if t == nil {
		return ErrNotRunning
	}
	d.steps++
	if t.dialog != nil {
		d.log("click " + ref + " intercepted by dialog; dismissed")
		t.dialog = nil
		return nil
	}
	nref := apk.NormalizeRef(ref)
	w, owner, visible, ok := d.findWidget(t, nref)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchWidget, ref)
	}
	if !visible {
		return fmt.Errorf("%w: %s", ErrHidden, ref)
	}
	// CheckBoxes toggle their state on click (their value is readable by
	// require-input as "checked"/"unchecked") and additionally fire a
	// handler when one is bound.
	if w.Type == layout.TypeCheckBox {
		cur := t.texts[nref]
		if cur == "" {
			cur = CheckBoxUnchecked
		}
		if cur == CheckBoxChecked {
			t.setText(nref, CheckBoxUnchecked)
		} else {
			t.setText(nref, CheckBoxChecked)
		}
		d.log("checkbox " + ref + " -> " + t.texts[nref])
		if h, ok := d.handlerFor(t, w, owner, nref); ok {
			return d.dispatch(t, h)
		}
		return nil
	}
	h, ok := d.handlerFor(t, w, owner, nref)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotClickable, ref)
	}
	d.log("click " + ref + " -> " + h.class + "." + h.method)
	return d.dispatch(t, h)
}

// CheckBox states readable through the widget's text value.
const (
	CheckBoxChecked   = "checked"
	CheckBoxUnchecked = "unchecked"
)

// dispatch invokes a resolved handler on the active backend.
func (d *Device) dispatch(t *activityInstance, h handlerRef) error {
	if d.ir != nil {
		return d.invokeIR(t, h)
	}
	return d.invoke(t, h.class, h.method)
}

// widgetOwner identifies which component's layout a widget came from.
type widgetOwner struct {
	// fragment is nil for activity-layout widgets.
	fragment *fragmentInstance
	// site is the inline-cache slot of the widget's XML onClick handler on
	// the IR path; 0 elsewhere.
	site int32
}

// findWidget locates a widget in the current screen: the activity layout
// first, then each live fragment's layout. The returned visibility accounts
// for Hidden flags, visibility overrides, and hidden ancestors.
func (d *Device) findWidget(t *activityInstance, nref string) (*layout.Widget, widgetOwner, bool, bool) {
	if d.ir != nil {
		return d.findWidgetIR(t, nref)
	}
	if t.content != nil {
		if w, vis, ok := findInTree(t.content, nref, t.visible); ok {
			return w, widgetOwner{}, vis, true
		}
	}
	for _, c := range t.fragOrder {
		f := t.fragments[c]
		if f == nil || f.content == nil {
			continue
		}
		if w, vis, ok := findInTree(f.content, nref, t.visible); ok {
			// A fragment's widgets are visible only if its container is.
			if cw, cvis, cok := findInTree(t.content, f.container, t.visible); cok {
				_ = cw
				vis = vis && cvis
			}
			return w, widgetOwner{fragment: f}, vis, true
		}
	}
	return nil, widgetOwner{}, false, false
}

// findInTree locates nref in a layout, computing effective visibility along
// the path (a widget is invisible if any ancestor is hidden).
func findInTree(l *layout.Layout, nref string, overrides map[string]bool) (*layout.Widget, bool, bool) {
	var found *layout.Widget
	foundVis := false
	var walk func(w *layout.Widget, vis bool) bool
	walk = func(w *layout.Widget, vis bool) bool {
		wVis := vis && widgetVisible(w, overrides)
		if apk.NormalizeRef(w.IDRef) == nref && w.IDRef != "" {
			found = w
			foundVis = wVis
			return false
		}
		for _, c := range w.Children {
			if !walk(c, wVis) {
				return false
			}
		}
		return true
	}
	if l.Root != nil {
		walk(l.Root, true)
	}
	return found, foundVis, found != nil
}

func widgetVisible(w *layout.Widget, overrides map[string]bool) bool {
	if w.IDRef != "" {
		if v, ok := overrides[apk.NormalizeRef(w.IDRef)]; ok {
			return v
		}
	}
	return !w.Hidden
}

// handlerFor resolves the click handler: XML onClick binds to the owning
// component's class; otherwise a code-registered listener is looked up in
// the fragment's registry, then the activity's.
func (d *Device) handlerFor(t *activityInstance, w *layout.Widget, owner widgetOwner, nref string) (handlerRef, bool) {
	if w.OnClick != "" {
		if owner.fragment != nil {
			return handlerRef{class: owner.fragment.class, method: w.OnClick, site: owner.site}, true
		}
		return handlerRef{class: t.class, method: w.OnClick, site: owner.site}, true
	}
	if owner.fragment != nil {
		if h, ok := owner.fragment.listeners[nref]; ok {
			return h, true
		}
	}
	if h, ok := t.listeners[nref]; ok {
		return h, true
	}
	return handlerRef{}, false
}

// classUsesFM reports whether a class (with inner classes) obtains a
// FragmentManager anywhere in its code — the runtime precondition for the
// reflection mechanism.
func (d *Device) classUsesFM(class string) bool {
	if d.ir != nil {
		if ci := d.ir.ClassID(class); ci >= 0 {
			return d.ir.Classes[ci].UsesFM
		}
		// Classes absent from the program can still have inner classes in
		// it; fall through to the scan, like the classic path.
	}
	for _, cn := range d.app.Program.ClassAndInner(class) {
		c := d.app.Program.Class(cn)
		if c == nil {
			continue
		}
		for _, m := range c.Methods {
			for _, ins := range m.Body {
				if ins.Op == smali.OpGetFragmentManager || ins.Op == smali.OpGetSupportFragmentManager {
					return true
				}
			}
		}
	}
	return false
}

// Reflect performs the Java-reflection fragment switch of §VI-A Case 2: it
// obtains the current activity's FragmentManager reflectively, instantiates
// the fragment class, and commits a replace transaction into container.
func (d *Device) Reflect(fragment, container string) error {
	if d.crashed {
		return ErrCrashed
	}
	t := d.top()
	if t == nil {
		return ErrNotRunning
	}
	d.steps++
	if !d.classUsesFM(t.class) {
		return &ReflectionError{Fragment: fragment, Reason: fmt.Sprintf("activity %s has no FragmentManager", t.class)}
	}
	fc := d.app.Program.Class(fragment)
	if fc == nil || !d.app.Program.IsFragmentClass(fragment) {
		return &ReflectionError{Fragment: fragment, Reason: "not a Fragment class"}
	}
	if fc.RequiresArgs {
		return &ReflectionError{Fragment: fragment, Reason: "newInstance requires missing parameters"}
	}
	nref := apk.NormalizeRef(container)
	cw, _, _, ok := d.findWidget(t, nref)
	if !ok || !cw.Container() {
		return &ReflectionError{Fragment: fragment, Reason: fmt.Sprintf("no container %s in current UI", container)}
	}
	d.log("reflect: commit " + fragment + " into " + container)
	return d.commitFragment(t, nref, fragment, true)
}
