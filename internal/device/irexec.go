package device

import (
	"strconv"
	"sync"

	"fragdroid/internal/ir"
	"fragdroid/internal/layout"
)

// This file is the IR fast path: the same observable semantics as interp.go
// (same journal lines, same crash messages, same step accounting, byte for
// byte — pinned by the golden transcripts and the differential corpus test),
// executed over the precompiled ir.Program instead of parsed smali. Numeric
// opcodes dispatch through one dense switch, operands arrive pre-resolved
// and interned, frames are pooled, and virtual dispatch goes through
// monomorphic inline caches.

// irFrame is the register frame of one method activation on the IR path —
// the pooled counterpart of execCtx.
type irFrame struct {
	act  *activityInstance
	frag *fragmentInstance
	// classID is the dynamic receiver class (the started/registered class,
	// not the declaring class of an inherited body).
	classID int32
	depth   int

	// pending intent under construction, held by value; the extras map is
	// allocated on demand and moves into the started activity.
	hasPending bool
	pending    intent
	// txn records fragment operations until commit; the backing array is
	// recycled with the frame.
	txn []irTxn
}

type irTxn struct {
	op                  ir.Opcode
	container, fragment string
	classID             int32
}

var framePool = sync.Pool{New: func() any { return new(irFrame) }}

func getFrame(act *activityInstance, frag *fragmentInstance, classID int32, depth int) *irFrame {
	f := framePool.Get().(*irFrame)
	f.act, f.frag, f.classID, f.depth = act, frag, classID, depth
	return f
}

func putFrame(f *irFrame) {
	f.act, f.frag = nil, nil
	f.hasPending = false
	f.pending = intent{}
	f.txn = f.txn[:0]
	framePool.Put(f)
}

// runIR interprets a compiled method body. Step accounting and the crashed
// check replicate the classic run loop exactly: check, count, execute.
func (d *Device) runIR(f *irFrame, mi int32) error {
	p := d.ir
	m := &p.Methods[mi]
	code := p.Code[m.Off:m.End]
	for i := range code {
		if d.crashed {
			return ErrCrashed
		}
		if d.opts.MaxSteps > 0 && d.steps >= d.opts.MaxSteps {
			d.crash("ANR: step budget exhausted")
			return ErrCrashed
		}
		d.steps++
		ins := &code[i]
		op := ins.Op
		t := f.act
		if t == nil && op.UIGated() {
			d.crash("IllegalStateException: " + op.Name() + " in a component without a window (" + p.Classes[f.classID].Name + ")")
			return ErrCrashed
		}
		switch op {
		case ir.OpSetContentView:
			var li *ir.LayoutInfo
			if ins.A >= 0 {
				li = p.Layouts[ins.A]
			}
			if li == nil || li.L == nil {
				d.crash("InflateException: missing layout " + p.Strings[ins.B])
				return ErrCrashed
			}
			if f.frag != nil {
				f.frag.content = li.L
			} else {
				t.content = li.L
			}
			for si := range li.Statics {
				s := &li.Statics[si]
				if f.frag != nil && s.Class == f.frag.class {
					d.crash("StackOverflowError: " + s.Class + " inflates itself")
					return ErrCrashed
				}
				if err := d.commitFragmentIR(t, s.Container, s.Class, s.ClassID, true); err != nil {
					return err
				}
			}

		case ir.OpSetClickListener:
			h := handlerRef{class: p.Classes[f.classID].Name, method: p.Strings[ins.B], site: ins.C}
			if f.frag != nil {
				f.frag.setListener(p.Strings[ins.A], h)
			} else {
				t.setListener(p.Strings[ins.A], h)
			}

		case ir.OpToggleVisible:
			ref := p.Strings[ins.A]
			_, _, vis, ok := d.findWidgetIR(t, ref)
			if !ok {
				d.crash("NullPointerException: findViewById(" + p.Strings[ins.B] + ")")
				return ErrCrashed
			}
			t.setVisible(ref, !vis)
			d.log("visibility of " + ref + " -> " + strconv.FormatBool(!vis))

		case ir.OpSetText:
			t.setText(p.Strings[ins.A], p.Strings[ins.B])

		case ir.OpNewIntent:
			f.pending = intent{explicit: p.Strings[ins.A]}
			f.hasPending = true
		case ir.OpNewIntentAction:
			f.pending = intent{action: p.Strings[ins.A]}
			f.hasPending = true
		case ir.OpPutExtra:
			if !f.hasPending {
				d.crash("NullPointerException: putExtra on null intent")
				return ErrCrashed
			}
			if f.pending.extras == nil {
				f.pending.extras = make(map[string]string)
			}
			f.pending.extras[p.Strings[ins.A]] = p.Strings[ins.B]
		case ir.OpStartActivity:
			if !f.hasPending {
				d.crash("NullPointerException: startActivity(null)")
				return ErrCrashed
			}
			it := f.pending
			f.hasPending = false
			f.pending = intent{}
			if err := d.startActivityIR(it, f.depth+1); err != nil {
				return err
			}

		case ir.OpSendBroadcast:
			if err := d.deliverBroadcastIR(p.Strings[ins.A], f.depth+1); err != nil {
				return err
			}

		case ir.OpFinish:
			if len(d.stack) > 0 && d.stack[len(d.stack)-1] == t {
				d.stack = d.stack[:len(d.stack)-1]
				d.log("finish " + t.class)
			}

		case ir.OpGetFragmentManager, ir.OpGetSupportFragmentManager:
			// Presence-only ops: static analysis and the reflection
			// precondition care, execution does not.

		case ir.OpBeginTransaction:
			f.txn = f.txn[:0]

		case ir.OpTxnAdd, ir.OpTxnReplace:
			f.txn = append(f.txn, irTxn{op: op, container: p.Strings[ins.A], fragment: p.Strings[ins.B], classID: ins.C})
		case ir.OpTxnRemove:
			f.txn = append(f.txn, irTxn{op: op, fragment: p.Strings[ins.A]})
		case ir.OpTxnCommit:
			ops := f.txn
			for oi := range ops {
				o := &ops[oi]
				if o.op == ir.OpTxnRemove {
					d.removeFragment(t, o.fragment)
					continue
				}
				if err := d.commitFragmentIR(t, o.container, o.fragment, o.classID, true); err != nil {
					return err
				}
			}
			f.txn = f.txn[:0]

		case ir.OpInflateView:
			if err := d.commitFragmentIR(t, p.Strings[ins.A], p.Strings[ins.B], ins.C, false); err != nil {
				return err
			}

		case ir.OpPure:
			// Allocation/type checks and nop: no UI effect.

		case ir.OpShowDialog:
			t.dialog = &dialog{text: p.Strings[ins.A]}
			d.log("dialog " + strconv.Quote(p.Strings[ins.A]))
		case ir.OpShowPopup:
			t.dialog = &dialog{text: p.Strings[ins.A], popup: true}
			d.log("popup " + strconv.Quote(p.Strings[ins.A]))

		case ir.OpRequireInput:
			ref := p.Strings[ins.A]
			if t.texts[ref] != p.Strings[ins.B] {
				t.dialog = &dialog{text: "Invalid input"}
				d.log("require-input " + ref + " failed")
				return abortMethod{"input " + ref + " mismatch"}
			}
		case ir.OpRequireExtra:
			if !t.intent.has(p.Strings[ins.A]) {
				d.crash("RuntimeException: missing required extra " + strconv.Quote(p.Strings[ins.A]))
				return ErrCrashed
			}
		case ir.OpCrash:
			d.crash(p.Strings[ins.A])
			return ErrCrashed

		case ir.OpInvokeSensitive:
			d.emitSensitiveIR(t, f.classID, p.Strings[ins.A])

		case ir.OpLog:
			d.log("app log: " + p.Strings[ins.A])

		default: // ir.OpUnknown
			d.crash("VerifyError: unhandled opcode " + p.Strings[ins.A])
			return ErrCrashed
		}
	}
	return nil
}

// startActivityIR is startActivity over compiled lifecycle vtables.
func (d *Device) startActivityIR(it intent, depth int) error {
	if depth > d.opts.MaxStartDepth {
		d.crash("ANR: activity start depth exceeded")
		return ErrCrashed
	}
	target := it.explicit
	if target == "" && it.action != "" {
		t, ok := d.app.Manifest.ActivityForAction(it.action)
		if !ok {
			d.crash("ActivityNotFoundException: no activity for action " + strconv.Quote(it.action))
			return ErrCrashed
		}
		target = t
	}
	if target == "" {
		d.crash("ActivityNotFoundException: empty intent")
		return ErrCrashed
	}
	if !d.app.Manifest.HasActivity(target) {
		d.crash("ActivityNotFoundException: " + target + " not declared")
		return ErrCrashed
	}
	inst := &activityInstance{class: target, intent: it}
	d.stack = append(d.stack, inst)
	d.log("start " + target)
	p := d.ir
	if ci := p.ClassID(target); ci >= 0 {
		cls := &p.Classes[ci]
		for k := range cls.ActLife {
			mi := cls.ActLife[k]
			if mi < 0 {
				continue
			}
			f := getFrame(inst, nil, ci, depth)
			err := d.runIR(f, mi)
			putFrame(f)
			if err != nil {
				if _, ok := err.(abortMethod); ok {
					continue
				}
				return err
			}
			if d.top() != inst {
				break
			}
		}
	}
	return nil
}

// invokeIR runs a handler through the call site's inline cache, falling back
// to the full superclass walk on miss and caching the result. A site of 0
// (classic-registered handlers, snapshot-decoded handlers) means "no cache".
func (d *Device) invokeIR(t *activityInstance, h handlerRef) error {
	p := d.ir
	mi := int32(-1)
	ci := p.ClassID(h.class)
	if ci >= 0 {
		if h.site > 0 {
			mi = p.ICLoad(h.site, ci)
		}
		if mi < 0 {
			mi = p.Resolve(ci, h.method)
			if mi >= 0 && h.site > 0 {
				p.ICStore(h.site, ci, mi)
			}
		}
	}
	if mi < 0 {
		d.crash("NoSuchMethodException: " + h.class + "." + h.method)
		return ErrCrashed
	}
	f := getFrame(t, nil, ci, 0)
	for _, c := range t.fragOrder {
		if fr := t.fragments[c]; fr != nil && fr.class == h.class {
			f.frag = fr
			break
		}
	}
	err := d.runIR(f, mi)
	putFrame(f)
	if _, ok := err.(abortMethod); ok {
		return nil
	}
	return err
}

// deliverBroadcastIR is deliverBroadcast over the compiled onReceive vtable.
func (d *Device) deliverBroadcastIR(action string, depth int) error {
	if depth > d.opts.MaxStartDepth {
		d.crash("ANR: broadcast depth exceeded")
		return ErrCrashed
	}
	p := d.ir
	receivers := d.app.Manifest.ReceiversFor(action)
	d.log("broadcast " + action + " -> " + strconv.Itoa(len(receivers)) + " receivers")
	for _, cls := range receivers {
		mi := int32(-1)
		ci := p.ClassID(cls)
		if ci >= 0 {
			mi = p.Classes[ci].OnReceive
		}
		if mi < 0 {
			d.crash("NoSuchMethodException: " + cls + ".onReceive")
			return ErrCrashed
		}
		f := getFrame(nil, nil, ci, depth)
		err := d.runIR(f, mi)
		putFrame(f)
		if err != nil {
			if _, ok := err.(abortMethod); ok {
				continue
			}
			return err
		}
	}
	return nil
}

// commitFragmentIR is commitFragment with the fragment class pre-resolved.
func (d *Device) commitFragmentIR(t *activityInstance, container, fragment string, classID int32, viaFM bool) error {
	if classID < 0 {
		d.crash("ClassNotFoundException: " + fragment)
		return ErrCrashed
	}
	f := &fragmentInstance{class: fragment, container: container, viaFM: viaFM}
	if _, exists := t.fragments[container]; !exists {
		t.fragOrder = append(t.fragOrder, container)
	}
	if t.fragments == nil {
		t.fragments = make(map[string]*fragmentInstance)
	}
	t.fragments[container] = f
	if viaFM {
		d.log("fragment " + fragment + " -> " + container + " (viaFM=true)")
	} else {
		d.log("fragment " + fragment + " -> " + container + " (viaFM=false)")
	}
	p := d.ir
	cls := &p.Classes[classID]
	for k := range cls.FragLife {
		mi := cls.FragLife[k]
		if mi < 0 {
			continue
		}
		fr := getFrame(t, f, classID, 0)
		err := d.runIR(fr, mi)
		putFrame(fr)
		if err != nil {
			if _, ok := err.(abortMethod); ok {
				continue
			}
			return err
		}
		if t.fragments[container] != f {
			break // replaced or removed by its own callback
		}
	}
	return nil
}

// emitSensitiveIR is emitSensitive with the fragment flag read off the
// compiled class instead of re-walking the superclass chain per emission.
func (d *Device) emitSensitiveIR(act *activityInstance, classID int32, api string) {
	activity := ""
	if act != nil {
		activity = act.class
	}
	c := &d.ir.Classes[classID]
	ev := SensitiveEvent{API: api, Class: c.Name, InFragment: c.IsFragment, Activity: activity}
	d.journal = append(d.journal, journalEntry{sens: &ev})
	if d.opts.Monitor != nil {
		d.opts.Monitor(ev)
	}
}

// findWidgetIR is findWidget over the per-layout widget index: a map hit plus
// a precomputed-path visibility walk instead of a recursive tree search. For
// layout trees the program was not linked against (possible only through
// unusual app rebinding) it falls back to the classic tree walk — including
// that path's behaviour when the activity has no content.
func (d *Device) findWidgetIR(t *activityInstance, nref string) (*layout.Widget, widgetOwner, bool, bool) {
	p := d.ir
	if t.content != nil {
		if li := p.LayoutFor(t.content); li != nil {
			if wi := li.ByRef[nref]; wi != nil {
				return wi.W, widgetOwner{site: wi.Site}, pathVisible(wi.Path, t.visible), true
			}
		} else if w, vis, ok := findInTree(t.content, nref, t.visible); ok {
			return w, widgetOwner{}, vis, true
		}
	}
	for _, c := range t.fragOrder {
		f := t.fragments[c]
		if f == nil || f.content == nil {
			continue
		}
		var w *layout.Widget
		var vis, ok bool
		var site int32
		if li := p.LayoutFor(f.content); li != nil {
			if wi := li.ByRef[nref]; wi != nil {
				w, vis, site, ok = wi.W, pathVisible(wi.Path, t.visible), wi.Site, true
			}
		} else {
			w, vis, ok = findInTree(f.content, nref, t.visible)
		}
		if !ok {
			continue
		}
		// A fragment's widgets are visible only if its container is.
		if cli := p.LayoutFor(t.content); cli != nil {
			if ci := cli.ByRef[f.container]; ci != nil {
				vis = vis && pathVisible(ci.Path, t.visible)
			}
		} else if _, cvis, cok := findInTree(t.content, f.container, t.visible); cok {
			vis = vis && cvis
		}
		return w, widgetOwner{fragment: f, site: site}, vis, true
	}
	return nil, widgetOwner{}, false, false
}

// pathVisible computes effective visibility along a precomputed root-to-self
// path: an override wins where present, else the static Hidden flag.
func pathVisible(path []ir.PathStep, overrides map[string]bool) bool {
	for i := range path {
		s := &path[i]
		if s.NRef != "" {
			if v, ok := overrides[s.NRef]; ok {
				if !v {
					return false
				}
				continue
			}
		}
		if s.Hidden {
			return false
		}
	}
	return true
}
