package device

import "fragdroid/internal/manifest"

// receiverDecl builds a manifest receiver entry for tests.
func receiverDecl(class, action string) manifest.Receiver {
	return manifest.Receiver{
		Name: class,
		Filters: []manifest.IntentFilter{{
			Actions: []manifest.Action{{Name: action}},
		}},
	}
}
