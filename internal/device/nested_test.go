package device

import (
	"errors"
	"sort"
	"strings"
	"testing"
)

// A fragment whose layout statically declares a child fragment: both commit.
func TestNestedStaticFragment(t *testing.T) {
	app := makeApp(t,
		[]string{"t.A"},
		map[string]string{
			"a":     `<LinearLayout id="@+id/a_root"><FrameLayout id="@+id/c"/></LinearLayout>`,
			"outer": `<LinearLayout id="@+id/outer_root"><fragment id="@+id/inner_slot" class="t.Inner"/></LinearLayout>`,
			"inner": `<LinearLayout id="@+id/inner_root"><TextView id="@+id/inner_label" text="hi"/></LinearLayout>`,
		},
		map[string]string{
			"t.A": `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
    get-fragment-manager
    begin-transaction
    txn-add @id/c Lt/Outer;
    txn-commit
.end method`,
			"t.Outer": `
.class Lt/Outer;
.super Landroid/app/Fragment;
.method onCreateView()V
    set-content-view @layout/outer
.end method`,
			"t.Inner": `
.class Lt/Inner;
.super Landroid/app/Fragment;
.method onCreateView()V
    set-content-view @layout/inner
.end method`,
		})
	d := New(app, Options{})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	dump, _ := d.Dump()
	got := append([]string(nil), dump.FMFragments...)
	sort.Strings(got)
	if len(got) != 2 || got[0] != "t.Inner" || got[1] != "t.Outer" {
		t.Fatalf("FMFragments = %v, want [t.Inner t.Outer]", got)
	}
	// The inner fragment's widgets are on screen.
	found := false
	for _, w := range dump.Widgets {
		if w.Ref == "@id/inner_label" && w.FromFragment == "t.Inner" {
			found = true
		}
	}
	if !found {
		t.Fatal("inner fragment widgets missing")
	}
}

// A fragment statically declaring itself would inflate forever; the device
// reports it as a crash instead of recursing.
func TestSelfInflatingFragmentCrashes(t *testing.T) {
	app := makeApp(t,
		[]string{"t.A"},
		map[string]string{
			"a":    `<LinearLayout id="@+id/a_root"><FrameLayout id="@+id/c"/></LinearLayout>`,
			"loop": `<LinearLayout id="@+id/loop_root"><fragment id="@+id/again" class="t.Loop"/></LinearLayout>`,
		},
		map[string]string{
			"t.A": `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
    get-fragment-manager
    begin-transaction
    txn-add @id/c Lt/Loop;
    txn-commit
.end method`,
			"t.Loop": `
.class Lt/Loop;
.super Landroid/app/Fragment;
.method onCreateView()V
    set-content-view @layout/loop
.end method`,
		})
	d := New(app, Options{})
	err := d.LaunchMain()
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("launch err = %v", err)
	}
	if !strings.Contains(d.CrashReason(), "StackOverflow") {
		t.Fatalf("reason = %q", d.CrashReason())
	}
}
