package device

import (
	"fmt"
	"sort"

	"fragdroid/internal/apk"
	"fragdroid/internal/binc"
)

// Snapshot codec: the binc encoding that makes device snapshots persistable
// through the artifact store. The payload covers the full interpreter state a
// Snapshot captures — activity back stack with live fragments, listener
// registrations, text/visibility overrides, intent extras, dialogs, crash
// state, step count, and the side-effect journal — everything Restore needs to
// be observationally identical to a re-execution.
//
// Layout trees are not serialized: they are immutable at runtime and owned by
// the installed app, so the codec stores each inflated layout by its name and
// DecodeSnapshot re-binds content pointers through app.Layouts. That is also
// why decoding takes the target app: a snapshot only makes sense against the
// installation whose execution produced it (the persistent memo enforces this
// with a content fingerprint of the encoded app).
//
// Map iteration order is randomized in Go, so every map is written in sorted
// key order — the encoding of a snapshot is a deterministic function of the
// state it captures. Nil-ness of the lazily allocated override maps is
// preserved exactly (a flag byte per map), so decode(encode(s)) round-trips
// reflect.DeepEqual with s.

// EncodeSnapshot renders a snapshot as a standalone binc payload. Encoding
// cannot fail: every field is a closed value type.
func EncodeSnapshot(s *Snapshot) []byte {
	w := binc.NewWriter()
	EncodeSnapshotTo(w, s)
	return w.Bytes()
}

// EncodeSnapshotTo appends a snapshot to an existing writer, sharing its
// string table. Snapshot packs use this: journal lines and class names
// repeat across the prefixes of one app, so a pack-wide table stores each
// once where standalone payloads would carry a copy per entry.
func EncodeSnapshotTo(w *binc.Writer, s *Snapshot) {
	w.Int(s.steps)
	w.Bool(s.crashed)
	w.Str(s.crashMsg)
	w.Int(len(s.journal))
	for _, e := range s.journal {
		w.Bool(e.sens != nil)
		if e.sens != nil {
			w.Str(e.sens.API)
			w.Str(e.sens.Class)
			w.Bool(e.sens.InFragment)
			w.Str(e.sens.Activity)
		} else {
			w.Str(e.line)
		}
	}
	w.Bool(s.stack != nil)
	w.Int(len(s.stack))
	for _, a := range s.stack {
		encodeActivity(w, a)
	}
}

func encodeActivity(w *binc.Writer, a *activityInstance) {
	w.Str(a.class)
	w.Str(a.intent.explicit)
	w.Str(a.intent.action)
	encodeStringMap(w, a.intent.extras)
	encodeLayoutRef(w, a)
	w.StrSlice(a.fragOrder)
	encodeHandlerMap(w, a.listeners)
	encodeStringMap(w, a.texts)
	encodeBoolMap(w, a.visible)
	w.Bool(a.fragments != nil)
	w.Int(len(a.fragments))
	for _, c := range sortedKeys(a.fragments) {
		f := a.fragments[c]
		w.Str(c)
		w.Str(f.class)
		w.Str(f.container)
		encodeFragLayoutRef(w, f)
		encodeHandlerMap(w, f.listeners)
		w.Bool(f.viaFM)
	}
	w.Bool(a.dialog != nil)
	if a.dialog != nil {
		w.Str(a.dialog.text)
		w.Bool(a.dialog.popup)
	}
}

func encodeLayoutRef(w *binc.Writer, a *activityInstance) {
	w.Bool(a.content != nil)
	if a.content != nil {
		w.Str(a.content.Name)
	}
}

func encodeFragLayoutRef(w *binc.Writer, f *fragmentInstance) {
	w.Bool(f.content != nil)
	if f.content != nil {
		w.Str(f.content.Name)
	}
}

func encodeStringMap(w *binc.Writer, m map[string]string) {
	w.Bool(m != nil)
	w.Int(len(m))
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.Str(k)
		w.Str(m[k])
	}
}

func encodeBoolMap(w *binc.Writer, m map[string]bool) {
	w.Bool(m != nil)
	w.Int(len(m))
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.Str(k)
		w.Bool(m[k])
	}
}

// encodeHandlerMap writes listener registrations including the inline-cache
// call-site id. Site numbering is a deterministic function of the installed
// app (ir.Compile is order-stable), so a persisted site is valid against any
// future program compiled from the same app fingerprint; classic-mode devices
// register everything at site 0, which decodes to the uncached path.
func encodeHandlerMap(w *binc.Writer, m map[string]handlerRef) {
	w.Bool(m != nil)
	w.Int(len(m))
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.Str(k)
		w.Str(m[k].class)
		w.Str(m[k].method)
		w.Int(int(m[k].site))
	}
}

func sortedKeys(m map[string]*fragmentInstance) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DecodeSnapshot parses an EncodeSnapshot payload, binding inflated layouts
// through the given app's layout table. It fails on any corruption — a
// truncated payload, trailing garbage, or a layout name the app does not
// declare — so callers treat an error as a plain cache miss.
func DecodeSnapshot(data []byte, app *apk.App) (*Snapshot, error) {
	r, err := binc.NewReader(data)
	if err != nil {
		return nil, err
	}
	s, err := DecodeSnapshotFrom(r, app)
	if err != nil {
		return nil, err
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeSnapshotFrom parses one snapshot from an existing reader — the
// counterpart of EncodeSnapshotTo for pack payloads holding many snapshots
// behind one string table. It does not check for trailing bytes; the caller
// owns the reader's framing.
func DecodeSnapshotFrom(r *binc.Reader, app *apk.App) (*Snapshot, error) {
	s := &Snapshot{app: app}
	s.steps = r.Int()
	s.crashed = r.Bool()
	s.crashMsg = r.Str()
	if n := r.Int(); n > 0 {
		s.journal = make([]journalEntry, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			var e journalEntry
			if r.Bool() {
				e.sens = &SensitiveEvent{
					API:        r.Str(),
					Class:      r.Str(),
					InFragment: r.Bool(),
					Activity:   r.Str(),
				}
			} else {
				e.line = r.Str()
			}
			s.journal = append(s.journal, e)
		}
	}
	hasStack := r.Bool()
	n := r.Int()
	if hasStack {
		s.stack = make([]*activityInstance, 0, n)
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		a, err := decodeActivity(r, app)
		if err != nil {
			return nil, err
		}
		s.stack = append(s.stack, a)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

func decodeActivity(r *binc.Reader, app *apk.App) (*activityInstance, error) {
	a := &activityInstance{class: r.Str()}
	a.intent.explicit = r.Str()
	a.intent.action = r.Str()
	a.intent.extras = decodeStringMap(r)
	hasContent := r.Bool()
	if hasContent {
		name := r.Str()
		l, ok := app.Layouts[name]
		if r.Err() == nil && !ok {
			return nil, fmt.Errorf("device: snapshot references unknown layout %q", name)
		}
		a.content = l
	}
	a.fragOrder = r.StrSlice()
	a.listeners = decodeHandlerMap(r)
	a.texts = decodeStringMap(r)
	a.visible = decodeBoolMap(r)
	hasFrags := r.Bool()
	nf := r.Int()
	if hasFrags {
		a.fragments = make(map[string]*fragmentInstance, nf)
	}
	for i := 0; i < nf && r.Err() == nil; i++ {
		c := r.Str()
		f := &fragmentInstance{class: r.Str(), container: r.Str()}
		if r.Bool() {
			name := r.Str()
			l, ok := app.Layouts[name]
			if r.Err() == nil && !ok {
				return nil, fmt.Errorf("device: snapshot references unknown layout %q", name)
			}
			f.content = l
		}
		f.listeners = decodeHandlerMap(r)
		f.viaFM = r.Bool()
		if a.fragments != nil {
			a.fragments[c] = f
		}
	}
	if r.Bool() {
		a.dialog = &dialog{text: r.Str(), popup: r.Bool()}
	}
	return a, r.Err()
}

func decodeStringMap(r *binc.Reader) map[string]string {
	has := r.Bool()
	n := r.Int()
	if !has {
		return nil
	}
	m := make(map[string]string, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.Str()
		m[k] = r.Str()
	}
	return m
}

func decodeBoolMap(r *binc.Reader) map[string]bool {
	has := r.Bool()
	n := r.Int()
	if !has {
		return nil
	}
	m := make(map[string]bool, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.Str()
		m[k] = r.Bool()
	}
	return m
}

func decodeHandlerMap(r *binc.Reader) map[string]handlerRef {
	has := r.Bool()
	n := r.Int()
	if !has {
		return nil
	}
	m := make(map[string]handlerRef, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.Str()
		m[k] = handlerRef{class: r.Str(), method: r.Str(), site: int32(r.Int())}
	}
	return m
}

// SizeEstimate approximates the snapshot's pinned memory in bytes — string
// payloads plus fixed per-structure overheads. It is the memo's BytesPinned
// gauge, cheap enough to compute on every capture; it deliberately does not
// charge the shared layout trees or the app itself.
func (s *Snapshot) SizeEstimate() int {
	const (
		entryOverhead    = 48 // journalEntry struct
		activityOverhead = 160
		fragmentOverhead = 96
		mapSlotOverhead  = 48
	)
	size := 128 + len(s.crashMsg)
	for _, e := range s.journal {
		size += entryOverhead + len(e.line)
		if e.sens != nil {
			size += len(e.sens.API) + len(e.sens.Class) + len(e.sens.Activity)
		}
	}
	for _, a := range s.stack {
		size += activityOverhead + len(a.class) +
			len(a.intent.explicit) + len(a.intent.action)
		for k, v := range a.intent.extras {
			size += mapSlotOverhead + len(k) + len(v)
		}
		for _, c := range a.fragOrder {
			size += 16 + len(c)
		}
		for k, h := range a.listeners {
			size += mapSlotOverhead + len(k) + len(h.class) + len(h.method)
		}
		for k, v := range a.texts {
			size += mapSlotOverhead + len(k) + len(v)
		}
		for k := range a.visible {
			size += mapSlotOverhead + len(k)
		}
		for c, f := range a.fragments {
			size += fragmentOverhead + len(c) + len(f.class) + len(f.container)
			for k, h := range f.listeners {
				size += mapSlotOverhead + len(k) + len(h.class) + len(h.method)
			}
		}
		if a.dialog != nil {
			size += 32 + len(a.dialog.text)
		}
	}
	return size
}
