package device

import (
	"strings"
	"testing"
)

func TestActivityLifecycleOrder(t *testing.T) {
	app := makeApp(t,
		[]string{"t.A"},
		map[string]string{"a": `<LinearLayout id="@+id/a_root"/>`},
		map[string]string{
			"t.A": `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
    log "create"
.end method
.method onStart()V
    log "start"
.end method
.method onResume()V
    log "resume"
    invoke-sensitive "location/getAllProviders"
.end method`,
		})
	var apis []string
	d := New(app, Options{Monitor: func(e SensitiveEvent) { apis = append(apis, e.API) }})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(d.Events(), "\n")
	ci := strings.Index(joined, "app log: create")
	si := strings.Index(joined, "app log: start")
	ri := strings.Index(joined, "app log: resume")
	if ci < 0 || si < 0 || ri < 0 || !(ci < si && si < ri) {
		t.Fatalf("lifecycle order wrong:\n%s", joined)
	}
	// Sensitive calls in onResume are monitored like any other.
	if len(apis) != 1 || apis[0] != "location/getAllProviders" {
		t.Fatalf("apis = %v", apis)
	}
}

func TestFragmentLifecycle(t *testing.T) {
	app := makeApp(t,
		[]string{"t.A"},
		map[string]string{
			"a": `<LinearLayout id="@+id/a_root"><FrameLayout id="@+id/c"/></LinearLayout>`,
			"f": `<LinearLayout id="@+id/f_root"/>`,
		},
		map[string]string{
			"t.A": `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
    get-fragment-manager
    begin-transaction
    txn-add @id/c Lt/F;
    txn-commit
.end method`,
			"t.F": `
.class Lt/F;
.super Landroid/app/Fragment;
.method onCreateView()V
    set-content-view @layout/f
.end method
.method onResume()V
    log "fragment resumed"
.end method`,
		})
	d := New(app, Options{})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(d.Events(), "\n"), "fragment resumed") {
		t.Fatal("fragment onResume did not run")
	}
}

// An activity that immediately redirects from onCreate must not run the rest
// of its lifecycle on a backgrounded instance.
func TestLifecycleStopsAfterRedirect(t *testing.T) {
	app := makeApp(t,
		[]string{"t.A", "t.B"},
		map[string]string{"a": `<LinearLayout id="@+id/a_root"/>`},
		map[string]string{
			"t.A": `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
    new-intent Lt/A; Lt/B;
    start-activity
.end method
.method onResume()V
    log "A resumed"
.end method`,
			"t.B": `
.class Lt/B;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
.end method`,
		})
	d := New(app, Options{})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	if cur, _ := d.CurrentActivity(); cur != "t.B" {
		t.Fatalf("current = %q", cur)
	}
	if strings.Contains(strings.Join(d.Events(), "\n"), "A resumed") {
		t.Fatal("backgrounded activity ran onResume")
	}
}
