package device

import (
	"fmt"

	"fragdroid/internal/apk"
	"fragdroid/internal/layout"
	"fragdroid/internal/smali"
)

// execCtx is the state of one interpreted method invocation.
type execCtx struct {
	act *activityInstance
	// frag is non-nil when the executing method belongs to a live fragment.
	frag *fragmentInstance
	// class is the declaring class of the executing method.
	class string
	// depth counts nested activity starts within one UI event.
	depth int

	// intent under construction (new-intent / set-action / put-extra).
	pending *intent
	// txn records fragment operations until commit.
	txn []txnOp
}

type txnOp struct {
	op        smali.Op // OpTxnAdd, OpTxnReplace or OpTxnRemove
	container string
	fragment  string
}

// Lifecycle callback orders, hoisted so starts don't allocate the slice.
var (
	activityLifecycle = [...]string{"onCreate", "onStart", "onResume"}
	fragmentLifecycle = [...]string{"onCreateView", "onStart", "onResume"}
)

// abortMethod is the sentinel for require-input failures: the rest of the
// method is skipped but the app keeps running.
type abortMethod struct{ reason string }

func (a abortMethod) Error() string { return "method aborted: " + a.reason }

// crashError aborts interpretation and force-closes the app.
type crashError struct{ reason string }

func (c crashError) Error() string { return "crash: " + c.reason }

// startActivity resolves an intent and pushes the target activity, running
// its onCreate. Crashes (unresolvable intents, missing extras, explicit
// crash instructions, start-depth overflow) force-close the app.
func (d *Device) startActivity(it intent, depth int) error {
	if d.ir != nil {
		return d.startActivityIR(it, depth)
	}
	if depth > d.opts.MaxStartDepth {
		d.crash("ANR: activity start depth exceeded")
		return ErrCrashed
	}
	target := it.explicit
	if target == "" && it.action != "" {
		t, ok := d.app.Manifest.ActivityForAction(it.action)
		if !ok {
			d.crash(fmt.Sprintf("ActivityNotFoundException: no activity for action %q", it.action))
			return ErrCrashed
		}
		target = t
	}
	if target == "" {
		d.crash("ActivityNotFoundException: empty intent")
		return ErrCrashed
	}
	if !d.app.Manifest.HasActivity(target) {
		d.crash(fmt.Sprintf("ActivityNotFoundException: %s not declared", target))
		return ErrCrashed
	}
	inst := &activityInstance{class: target, intent: it}
	d.stack = append(d.stack, inst)
	d.logf("start %s", target)
	// Lifecycle: onCreate, then onStart and onResume when defined. A
	// require-input abort in one callback does not suppress the next.
	for _, lifecycle := range activityLifecycle {
		m := d.methodOf(target, lifecycle)
		if m == nil {
			continue
		}
		ctx := &execCtx{act: inst, class: target, depth: depth}
		if err := d.run(ctx, m); err != nil {
			if _, ok := err.(abortMethod); ok {
				continue
			}
			return err
		}
		// A lifecycle callback may have started another activity or finished
		// this one; stop running callbacks for a backgrounded instance.
		if d.top() != inst {
			break
		}
	}
	return nil
}

// methodOf finds a method on a class, searching the superclass chain of
// application classes (framework classes contribute nothing).
func (d *Device) methodOf(class, name string) *smali.Method {
	for cur := class; cur != "" && !smali.FrameworkClass(cur); {
		c := d.app.Program.Class(cur)
		if c == nil {
			return nil
		}
		if m := c.Method(name); m != nil {
			return m
		}
		cur = c.Super
	}
	return nil
}

// invoke runs a handler method in the context of the foreground activity.
// The declaring class determines fragment attribution: if class is a live
// fragment's class, the method executes in that fragment's context.
func (d *Device) invoke(t *activityInstance, class, method string) error {
	m := d.methodOf(class, method)
	if m == nil {
		d.crash(fmt.Sprintf("NoSuchMethodException: %s.%s", class, method))
		return ErrCrashed
	}
	ctx := &execCtx{act: t, class: class}
	for _, c := range t.fragOrder {
		if f := t.fragments[c]; f != nil && f.class == class {
			ctx.frag = f
			break
		}
	}
	err := d.run(ctx, m)
	if _, ok := err.(abortMethod); ok {
		return nil
	}
	return err
}

// run interprets a method body.
func (d *Device) run(ctx *execCtx, m *smali.Method) error {
	for _, ins := range m.Body {
		if d.crashed {
			return ErrCrashed
		}
		if d.opts.MaxSteps > 0 && d.steps >= d.opts.MaxSteps {
			d.crash("ANR: step budget exhausted")
			return ErrCrashed
		}
		d.steps++
		if err := d.exec(ctx, ins); err != nil {
			if c, ok := err.(crashError); ok {
				d.crash(c.reason)
				return ErrCrashed
			}
			return err
		}
	}
	return nil
}

// uiOps require an attached activity context; running them in a
// BroadcastReceiver (which has no window) force-closes the app.
var uiOps = map[smali.Op]bool{
	smali.OpSetContentView: true, smali.OpSetClickListener: true,
	smali.OpToggleVisible: true, smali.OpSetText: true,
	smali.OpBeginTransaction: true, smali.OpTxnAdd: true,
	smali.OpTxnReplace: true, smali.OpTxnRemove: true, smali.OpTxnCommit: true,
	smali.OpInflateView: true, smali.OpShowDialog: true, smali.OpShowPopup: true,
	smali.OpRequireInput: true, smali.OpRequireExtra: true, smali.OpFinish: true,
	smali.OpGetFragmentManager: true, smali.OpGetSupportFragmentManager: true,
}

func (d *Device) exec(ctx *execCtx, ins smali.Instr) error {
	t := ctx.act
	if t == nil && uiOps[ins.Op] {
		return crashError{fmt.Sprintf("IllegalStateException: %s in a component without a window (%s)",
			ins.Op, ctx.class)}
	}
	switch ins.Op {
	case smali.OpSetContentView:
		name := layoutNameOf(ins.Args[0])
		l := d.app.Layouts[name]
		if l == nil {
			return crashError{fmt.Sprintf("InflateException: missing layout %s", name)}
		}
		// Layout trees are immutable at runtime (all mutable widget state
		// lives in the activity's override maps), so the installed tree is
		// attached directly — no per-setContentView deep copy.
		if ctx.frag != nil {
			ctx.frag.content = l
		} else {
			t.content = l
		}
		// Static <fragment> declarations attach on inflation, managed by the
		// FragmentManager like real static fragments. Fragment layouts may
		// declare children too (child fragment managers); both land in the
		// host activity's fragment table, keyed by the tag's own ID.
		var err error
		l.Walk(func(w *layout.Widget) bool {
			if w.Type == layout.TypeFragment && w.FragmentClass != "" {
				if ctx.frag != nil && w.FragmentClass == ctx.frag.class {
					// A fragment must not statically re-declare itself.
					err = crashError{fmt.Sprintf("StackOverflowError: %s inflates itself", w.FragmentClass)}
					return false
				}
				if e := d.commitFragment(t, apk.NormalizeRef(w.IDRef), w.FragmentClass, true); e != nil {
					err = e
					return false
				}
			}
			return true
		})
		if err != nil {
			return err
		}

	case smali.OpSetClickListener:
		ref := apk.NormalizeRef(ins.Args[0])
		h := handlerRef{class: ctx.class, method: ins.Args[1]}
		if ctx.frag != nil {
			ctx.frag.setListener(ref, h)
		} else {
			t.setListener(ref, h)
		}

	case smali.OpToggleVisible:
		ref := apk.NormalizeRef(ins.Args[0])
		w, _, vis, ok := d.findWidget(t, ref)
		if !ok {
			return crashError{fmt.Sprintf("NullPointerException: findViewById(%s)", ins.Args[0])}
		}
		_ = w
		t.setVisible(ref, !vis)
		d.logf("visibility of %s -> %v", ref, !vis)

	case smali.OpSetText:
		t.setText(apk.NormalizeRef(ins.Args[0]), ins.Args[1])

	case smali.OpNewIntent, smali.OpSetClass:
		ctx.pending = &intent{explicit: ins.Args[1]}
	case smali.OpNewIntentAction, smali.OpSetAction:
		ctx.pending = &intent{action: ins.Args[0]}
	case smali.OpPutExtra:
		if ctx.pending == nil {
			return crashError{"NullPointerException: putExtra on null intent"}
		}
		if ctx.pending.extras == nil {
			ctx.pending.extras = make(map[string]string)
		}
		ctx.pending.extras[ins.Args[0]] = ins.Args[1]
	case smali.OpStartActivity:
		if ctx.pending == nil {
			return crashError{"NullPointerException: startActivity(null)"}
		}
		it := *ctx.pending
		ctx.pending = nil
		return d.startActivity(it, ctx.depth+1)

	case smali.OpSendBroadcast:
		return d.deliverBroadcast(ins.Args[0], ctx.depth+1)

	case smali.OpFinish:
		if len(d.stack) > 0 && d.stack[len(d.stack)-1] == t {
			d.stack = d.stack[:len(d.stack)-1]
			d.logf("finish %s", t.class)
		}

	case smali.OpGetFragmentManager, smali.OpGetSupportFragmentManager:
		// Obtaining the manager has no direct effect; its presence in code is
		// what static analysis and the reflection precondition care about.

	case smali.OpBeginTransaction:
		ctx.txn = ctx.txn[:0]

	case smali.OpTxnAdd, smali.OpTxnReplace:
		ctx.txn = append(ctx.txn, txnOp{
			op:        ins.Op,
			container: apk.NormalizeRef(ins.Args[0]),
			fragment:  ins.Args[1],
		})
	case smali.OpTxnRemove:
		ctx.txn = append(ctx.txn, txnOp{op: ins.Op, fragment: ins.Args[0]})
	case smali.OpTxnCommit:
		ops := ctx.txn
		ctx.txn = nil
		for _, op := range ops {
			switch op.op {
			case smali.OpTxnAdd, smali.OpTxnReplace:
				if err := d.commitFragment(t, op.container, op.fragment, true); err != nil {
					return err
				}
			case smali.OpTxnRemove:
				d.removeFragment(t, op.fragment)
			}
		}

	case smali.OpInflateView:
		// Direct fragment loading without a FragmentManager: the view
		// appears, but instrumentation cannot confirm the fragment.
		return d.commitFragment(t, apk.NormalizeRef(ins.Args[0]), ins.Args[1], false)

	case smali.OpNewInstance, smali.OpInvokeNewIn, smali.OpInstanceOf:
		// Pure allocation/type checks: no UI effect.

	case smali.OpShowDialog:
		t.dialog = &dialog{text: ins.Args[0]}
		d.logf("dialog %q", ins.Args[0])
	case smali.OpShowPopup:
		t.dialog = &dialog{text: ins.Args[0], popup: true}
		d.logf("popup %q", ins.Args[0])

	case smali.OpRequireInput:
		ref := apk.NormalizeRef(ins.Args[0])
		if t.texts[ref] != ins.Args[1] {
			t.dialog = &dialog{text: "Invalid input"}
			d.logf("require-input %s failed", ref)
			return abortMethod{fmt.Sprintf("input %s mismatch", ref)}
		}
	case smali.OpRequireExtra:
		if !t.intent.has(ins.Args[0]) {
			return crashError{fmt.Sprintf("RuntimeException: missing required extra %q", ins.Args[0])}
		}
	case smali.OpCrash:
		return crashError{ins.Args[0]}

	case smali.OpInvokeSensitive:
		d.emitSensitive(ctx, ins.Args[0])
	case smali.OpLoadLibrary:
		d.emitSensitive(ctx, "shell/loadLibrary")

	case smali.OpLog:
		d.logf("app log: %s", ins.Args[0])
	case smali.OpNop:
		// nothing
	default:
		return crashError{fmt.Sprintf("VerifyError: unhandled opcode %s", ins.Op)}
	}
	return nil
}

func (d *Device) emitSensitive(ctx *execCtx, api string) {
	activity := ""
	if ctx.act != nil {
		activity = ctx.act.class
	}
	ev := SensitiveEvent{
		API:        api,
		Class:      ctx.class,
		InFragment: d.app.Program.IsFragmentClass(ctx.class),
		Activity:   activity,
	}
	// Journal even without a monitor: a snapshot taken on an unmonitored
	// device must still re-emit the emission stream when restored on a
	// monitored one.
	d.journal = append(d.journal, journalEntry{sens: &ev})
	if d.opts.Monitor != nil {
		d.opts.Monitor(ev)
	}
}

// deliverBroadcast runs the onReceive of every manifest receiver subscribed
// to the action, in declaration order. Receivers run without a UI context;
// they may start activities and invoke sensitive APIs.
func (d *Device) deliverBroadcast(action string, depth int) error {
	if d.ir != nil {
		return d.deliverBroadcastIR(action, depth)
	}
	if depth > d.opts.MaxStartDepth {
		d.crash("ANR: broadcast depth exceeded")
		return ErrCrashed
	}
	receivers := d.app.Manifest.ReceiversFor(action)
	d.logf("broadcast %s -> %d receivers", action, len(receivers))
	for _, cls := range receivers {
		m := d.methodOf(cls, "onReceive")
		if m == nil {
			d.crash(fmt.Sprintf("NoSuchMethodException: %s.onReceive", cls))
			return ErrCrashed
		}
		ctx := &execCtx{class: cls, depth: depth}
		if err := d.run(ctx, m); err != nil {
			if _, ok := err.(abortMethod); ok {
				continue
			}
			return err
		}
	}
	return nil
}

// Broadcast injects a system or app broadcast from the outside (`adb shell
// am broadcast -a <action>`) — the system-event channel Dynodroid-style
// testers exercise alongside UI events (§IX).
func (d *Device) Broadcast(action string) error {
	if d.crashed {
		return ErrCrashed
	}
	d.steps++
	return d.deliverBroadcast(action, 0)
}

// commitFragment instantiates a fragment into a container, running its
// onCreateView in fragment context.
func (d *Device) commitFragment(t *activityInstance, container, fragment string, viaFM bool) error {
	if d.ir != nil {
		return d.commitFragmentIR(t, container, fragment, d.ir.ClassID(fragment), viaFM)
	}
	fc := d.app.Program.Class(fragment)
	if fc == nil {
		return crashError{fmt.Sprintf("ClassNotFoundException: %s", fragment)}
	}
	f := &fragmentInstance{class: fragment, container: container, viaFM: viaFM}
	if _, exists := t.fragments[container]; !exists {
		t.fragOrder = append(t.fragOrder, container)
	}
	if t.fragments == nil {
		t.fragments = make(map[string]*fragmentInstance)
	}
	t.fragments[container] = f
	d.logf("fragment %s -> %s (viaFM=%v)", fragment, container, viaFM)
	for _, lifecycle := range fragmentLifecycle {
		m := d.methodOf(fragment, lifecycle)
		if m == nil {
			continue
		}
		ctx := &execCtx{act: t, frag: f, class: fragment}
		if err := d.run(ctx, m); err != nil {
			if _, ok := err.(abortMethod); ok {
				continue
			}
			return err
		}
		if t.fragments[container] != f {
			break // replaced or removed by its own callback
		}
	}
	return nil
}

// removeFragment detaches the first live fragment of the given class.
func (d *Device) removeFragment(t *activityInstance, fragment string) {
	for _, c := range t.fragOrder {
		if f := t.fragments[c]; f != nil && f.class == fragment {
			delete(t.fragments, c)
			d.log("fragment " + fragment + " removed from " + c)
			return
		}
	}
}

func layoutNameOf(ref string) string {
	s := apk.NormalizeRef(ref)
	const p = "@layout/"
	if len(s) > len(p) && s[:len(p)] == p {
		return s[len(p):]
	}
	return ""
}
