package device

import (
	"reflect"
	"testing"

	"fragdroid/internal/corpus"
)

// multiHostSpec wires one fragment into two activities ("a Fragment may be
// used in one or more Activities", §V-A) and uses the support-library
// FragmentManager on one of them.
func multiHostSpec() *corpus.AppSpec {
	return &corpus.AppSpec{
		Package: "com.multi",
		Activities: []corpus.ActivitySpec{
			{
				Name: "Main", Launcher: true,
				Wires: []corpus.FragmentWire{{Fragment: "Shared", Kind: corpus.WireTxnOnCreate}},
			},
			{
				Name: "Second", SupportFM: true,
				Wires: []corpus.FragmentWire{{Fragment: "Shared", Kind: corpus.WireTxnButton}},
			},
		},
		Fragments: []corpus.FragmentSpec{{Name: "Shared"}},
		Transition: []corpus.Transition{
			{From: "Main", To: "Second", Kind: corpus.TransButton},
		},
	}
}

func TestSharedFragmentAcrossHosts(t *testing.T) {
	app, err := corpus.BuildApp(multiHostSpec())
	if err != nil {
		t.Fatal(err)
	}
	d := New(app, Options{})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	dump, _ := d.Dump()
	if !reflect.DeepEqual(dump.FMFragments, []string{"com.multi.Shared"}) {
		t.Fatalf("Main FMFragments = %v", dump.FMFragments)
	}
	// Navigate to the support-FM activity and commit the same fragment there.
	if err := d.Click(corpus.NavButtonRef("Main", "Second")); err != nil {
		t.Fatal(err)
	}
	dump, _ = d.Dump()
	if len(dump.FMFragments) != 0 {
		t.Fatalf("Second should start empty, got %v", dump.FMFragments)
	}
	if err := d.Click(corpus.TabButtonRef("Second", "Shared")); err != nil {
		t.Fatal(err)
	}
	dump, _ = d.Dump()
	if !reflect.DeepEqual(dump.FMFragments, []string{"com.multi.Shared"}) {
		t.Fatalf("Second FMFragments = %v", dump.FMFragments)
	}
	// The support-FM activity allows reflection too.
	if err := d.Reflect("com.multi.Shared", corpus.ContainerRef("Second")); err != nil {
		t.Fatalf("Reflect on support-FM activity: %v", err)
	}
}

func TestReflectIntoNonContainer(t *testing.T) {
	app, err := corpus.BuildApp(multiHostSpec())
	if err != nil {
		t.Fatal(err)
	}
	d := New(app, Options{})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	var re *ReflectionError
	err = d.Reflect("com.multi.Shared", "@id/main_root")
	if !asReflection(err, &re) {
		t.Fatalf("reflect into non-container = %v", err)
	}
	err = d.Reflect("com.multi.Main", corpus.ContainerRef("Main"))
	if !asReflection(err, &re) {
		t.Fatalf("reflect an activity class = %v", err)
	}
}

func asReflection(err error, target **ReflectionError) bool {
	re, ok := err.(*ReflectionError)
	if ok {
		*target = re
	}
	return ok
}

func TestDumpHelperViews(t *testing.T) {
	app, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		t.Fatal(err)
	}
	d := New(app, Options{})
	if err := d.LaunchMain(); err != nil {
		t.Fatal(err)
	}
	if err := d.Click(corpus.NavButtonRef("Main", "Login")); err != nil {
		t.Fatal(err)
	}
	dump, _ := d.Dump()
	vis := dump.VisibleRefs()
	click := dump.ClickableRefs()
	edit := dump.EditableRefs()
	if len(vis) == 0 || len(click) == 0 || len(edit) != 1 {
		t.Fatalf("helpers: vis=%d click=%d edit=%v", len(vis), len(click), edit)
	}
	// Clickable and editable refs are all visible.
	visSet := make(map[string]bool)
	for _, r := range vis {
		visSet[r] = true
	}
	for _, r := range append(append([]string(nil), click...), edit...) {
		if !visSet[r] {
			t.Errorf("%s clickable/editable but not visible", r)
		}
	}
	if d.App() != app {
		t.Error("App() accessor broken")
	}
}
