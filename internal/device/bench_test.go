package device_test

import (
	"testing"

	"fragdroid/internal/apk"
	"fragdroid/internal/corpus"
	"fragdroid/internal/device"
)

// BenchmarkLaunchReplay is the kill-and-restart hot loop in isolation: one
// fresh device per iteration, launched at the entry activity — the work every
// replayed test case pays before its first own operation. The allocs/op
// number is the per-restart interpreter footprint the snapshot satellite
// optimizes (layout clones, eager state maps, lifecycle scratch).
func BenchmarkLaunchReplay(b *testing.B) {
	app := benchApp(b, "com.adobe.reader")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := device.New(app, device.Options{})
		if err := d.LaunchMain(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRestore measures the snapshot path that replaces the
// relaunch: capture once, then restore onto fresh devices.
func BenchmarkSnapshotRestore(b *testing.B) {
	app := benchApp(b, "com.adobe.reader")
	src := device.New(app, device.Options{})
	if err := src.LaunchMain(); err != nil {
		b.Fatal(err)
	}
	snap := src.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := device.New(app, device.Options{})
		if err := d.Restore(snap); err != nil {
			b.Fatal(err)
		}
	}
}

func benchApp(tb testing.TB, pkg string) *apk.App {
	tb.Helper()
	for _, row := range corpus.PaperRows() {
		if row.Package == pkg {
			app, err := corpus.BuildApp(corpus.PaperSpec(row))
			if err != nil {
				tb.Fatal(err)
			}
			return app
		}
	}
	tb.Fatalf("unknown corpus app %s", pkg)
	return nil
}
