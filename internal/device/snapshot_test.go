package device

import (
	"errors"
	"reflect"
	"testing"

	"fragdroid/internal/corpus"
)

// snapState is the externally observable device state used by the parity
// assertions below.
type snapState struct {
	activity string
	dump     UIDump
	steps    int
	events   []string
	crashed  bool
	reason   string
}

func observeState(t *testing.T, d *Device) snapState {
	t.Helper()
	st := snapState{steps: d.Steps(), events: d.Events(), crashed: d.Crashed(), reason: d.CrashReason()}
	if d.Running() {
		var err error
		if st.activity, err = d.CurrentActivity(); err != nil {
			t.Fatalf("CurrentActivity: %v", err)
		}
		if st.dump, err = d.Dump(); err != nil {
			t.Fatalf("Dump: %v", err)
		}
	}
	return st
}

func requireEqualState(t *testing.T, got, want snapState) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("device states diverged:\n got: %+v\nwant: %+v", got, want)
	}
}

// TestSnapshotRestoreRoundTrip pins the tentpole guarantee: restoring a
// snapshot onto a fresh device yields a state observationally identical to
// re-executing the captured route — same screen, same step count, same device
// log — and subsequent interaction behaves identically on both.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := demoDevice(t, Options{})
	launch(t, src)
	if err := src.Click(corpus.NavButtonRef("Main", "Detail")); err != nil {
		t.Fatal(err)
	}
	if err := src.Click(corpus.DrawerToggleRef("Detail")); err != nil {
		t.Fatal(err)
	}
	snap := src.Snapshot()
	if snap.Steps() != src.Steps() {
		t.Fatalf("snapshot steps = %d, device steps = %d", snap.Steps(), src.Steps())
	}

	dst := New(src.App(), Options{})
	if err := dst.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	requireEqualState(t, observeState(t, dst), observeState(t, src))
	if dst.RestoredSteps() != snap.Steps() || dst.ExecutedSteps() != 0 {
		t.Fatalf("restored/executed = %d/%d, want %d/0",
			dst.RestoredSteps(), dst.ExecutedSteps(), snap.Steps())
	}

	// The revealed drawer entry must work on the restored device exactly as
	// on the original (overrides and listeners survived the copy).
	for _, d := range []*Device{src, dst} {
		if err := d.Click(corpus.MenuButtonRef("Detail", "Settings")); err != nil {
			t.Fatalf("menu click after restore: %v", err)
		}
	}
	requireEqualState(t, observeState(t, dst), observeState(t, src))
}

// TestSnapshotIsImmutable pins copy-on-write isolation in both directions:
// mutating the source device after capture does not leak into the snapshot,
// and mutating a restored device does not leak back into it.
func TestSnapshotIsImmutable(t *testing.T) {
	src := demoDevice(t, Options{})
	launch(t, src)
	snap := src.Snapshot()
	want := observeState(t, src)

	// Mutate the source: switch tabs, then navigate away.
	if err := src.Click(corpus.TabButtonRef("Main", "Recent")); err != nil {
		t.Fatal(err)
	}
	if err := src.Click(corpus.NavButtonRef("Main", "Detail")); err != nil {
		t.Fatal(err)
	}

	one := New(src.App(), Options{})
	if err := one.Restore(snap); err != nil {
		t.Fatal(err)
	}
	requireEqualState(t, observeState(t, one), want)

	// Mutate the first restored device, then seed a second from the same
	// snapshot: it must still observe the capture-time state.
	if err := one.Click(corpus.TabButtonRef("Main", "Recent")); err != nil {
		t.Fatal(err)
	}
	two := New(src.App(), Options{})
	if err := two.Restore(snap); err != nil {
		t.Fatal(err)
	}
	requireEqualState(t, observeState(t, two), want)
}

// TestRestoreReplaysJournal pins that Restore re-emits the side-effect stream
// of the skipped execution: the monitor sees the same sensitive events (same
// order, same attribution) and the hook the same log lines as a real
// re-execution would produce.
func TestRestoreReplaysJournal(t *testing.T) {
	var srcEvents []SensitiveEvent
	var srcLines []string
	src := demoDevice(t, Options{
		Monitor: func(e SensitiveEvent) { srcEvents = append(srcEvents, e) },
		Hook:    func(line string) { srcLines = append(srcLines, line) },
	})
	launch(t, src)
	snap := src.Snapshot()

	var dstEvents []SensitiveEvent
	var dstLines []string
	dst := New(src.App(), Options{
		Monitor: func(e SensitiveEvent) { dstEvents = append(dstEvents, e) },
		Hook:    func(line string) { dstLines = append(dstLines, line) },
	})
	if err := dst.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if len(srcEvents) == 0 {
		t.Fatal("demo launch emitted no sensitive events; test is vacuous")
	}
	if !reflect.DeepEqual(dstEvents, srcEvents) {
		t.Fatalf("monitor streams diverged:\n got: %+v\nwant: %+v", dstEvents, srcEvents)
	}
	if !reflect.DeepEqual(dstLines, srcLines) {
		t.Fatalf("hook streams diverged:\n got: %q\nwant: %q", dstLines, srcLines)
	}
	if !reflect.DeepEqual(dst.Events(), src.Events()) {
		t.Fatalf("device logs diverged")
	}
}

// TestRestoreJournaledWithoutMonitor pins that snapshots captured on an
// unmonitored device still carry the emission stream: restoring one on a
// monitored device replays it.
func TestRestoreJournaledWithoutMonitor(t *testing.T) {
	src := demoDevice(t, Options{}) // no monitor
	launch(t, src)
	snap := src.Snapshot()

	var events []SensitiveEvent
	dst := New(src.App(), Options{Monitor: func(e SensitiveEvent) { events = append(events, e) }})
	if err := dst.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("restore did not replay sensitive emissions captured without a monitor")
	}
}

// TestRestoreStaleSnapshot is the corruption-style case: a snapshot captured
// on one installation must not resume on another. Rebuilding the same spec is
// a new install (new app identity), so the restore fails and the target
// device is untouched.
func TestRestoreStaleSnapshot(t *testing.T) {
	src := demoDevice(t, Options{})
	launch(t, src)
	snap := src.Snapshot()

	reinstalled, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		t.Fatal(err)
	}
	d := New(reinstalled, Options{})
	if err := d.ForceStart(pkg + "Settings"); err != nil {
		t.Fatal(err)
	}
	before := observeState(t, d)
	if err := d.Restore(snap); !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("Restore on reinstalled app = %v, want ErrStaleSnapshot", err)
	}
	requireEqualState(t, observeState(t, d), before)

	if err := d.Restore(nil); !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("Restore(nil) = %v, want ErrStaleSnapshot", err)
	}
}

// TestRestoreReplacesMutatedState pins the restart semantics: a device that
// moved on (forced start to a different activity) and then restores a
// snapshot is back at the snapshot's screen, with the steps and journal of
// both the detour and the restored prefix accounted — exactly what a real
// kill-and-re-execute of the prefix would leave behind.
func TestRestoreReplacesMutatedState(t *testing.T) {
	src := demoDevice(t, Options{})
	launch(t, src)
	snap := src.Snapshot()

	d := New(src.App(), Options{})
	launch(t, d)
	if err := d.ForceStart(pkg + "Settings"); err != nil {
		t.Fatal(err)
	}
	detourSteps := d.Steps()
	detourEvents := len(d.Events())
	if err := d.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if cur, _ := d.CurrentActivity(); cur != pkg+"Main" {
		t.Fatalf("after restore current = %q, want Main", cur)
	}
	if d.Steps() != detourSteps+snap.Steps() {
		t.Fatalf("steps = %d, want detour %d + restored %d", d.Steps(), detourSteps, snap.Steps())
	}
	if len(d.Events()) <= detourEvents {
		t.Fatal("restore did not append the prefix's log lines")
	}
}

// TestRestoreCrashState pins that crash state round-trips: a snapshot of a
// crashed device restores as crashed with the same reason.
func TestRestoreCrashState(t *testing.T) {
	src := demoDevice(t, Options{})
	if err := src.ForceStart(pkg + "Account"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("ForceStart Account = %v, want crash", err)
	}
	snap := src.Snapshot()
	d := New(src.App(), Options{})
	if err := d.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !d.Crashed() || d.CrashReason() != src.CrashReason() {
		t.Fatalf("restored crash state = %v %q, want %q", d.Crashed(), d.CrashReason(), src.CrashReason())
	}
}
