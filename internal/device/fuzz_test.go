package device

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"fragdroid/internal/apk"
	"fragdroid/internal/manifest"
	"fragdroid/internal/smali"
)

// FuzzCompileExec is the differential fuzzer over the two interpreters: an
// arbitrary two-class app plus an arbitrary interaction script must produce
// the same observable outcome — per-action errors, crash state, step count,
// journal, final activity, and panic behavior — whether executed by the
// classic tree-walking interpreter or the compiled instruction IR. Inputs
// the pipeline rejects (manifest, layout, or smali parse failures) are
// skipped: both interpreters would never see them. Super-chain cycles among
// declared classes are skipped too — the classic method resolver predates
// the IR and does not terminate on them, so there is no classic outcome to
// compare against.
func FuzzCompileExec(f *testing.F) {
	const layoutA = `<LinearLayout id="@+id/root">
  <Button id="@+id/b0" onClick="onGo"/>
  <Button id="@+id/b1" onClick="onSens"/>
  <EditText id="@+id/b2"/>
  <FrameLayout id="@+id/c"/>
</LinearLayout>`
	const srcA = `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
.end method
.method onGo()V
    get-fragment-manager
    begin-transaction
    txn-add @id/c Lt/B;
    txn-commit
.end method
.method onSens()V
    invoke-sensitive Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String;
    show-dialog "are you sure?"
.end method`
	const srcB = `
.class Lt/B;
.super Landroid/app/Fragment;
.method onCreateView()V
    log attached
.end method
.method onReceive()V
    log got-event
.end method`

	f.Add(layoutA, srcA, srcB, "\x00\x01\x02\x03\x04\x05")
	// A crashing handler plus an input gate.
	f.Add(layoutA, `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    set-content-view @layout/a
.end method
.method onGo()V
    require-input @id/b2 secret
    crash boom
.end method
.method onSens()V
    toggle-visible @id/b0
.end method`, srcB, "\x00\x02\x00\x06")
	// An opcode the interpreters do not know: both must raise VerifyError.
	f.Add(layoutA, `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    frobnicate-quantum r0
.end method`, srcB, "\x00")
	// A receiver class with no onReceive: broadcasts crash either way.
	f.Add(layoutA, srcA, `
.class Lt/B;
.super Landroid/app/Fragment;
.method onCreateView()V
    log attached
.end method`, "\x04")
	// A super cycle: skipped, never executed.
	f.Add(layoutA, `
.class Lt/A;
.super Lt/B;
.method onCreate()V
    log a
.end method`, `
.class Lt/B;
.super Lt/A;
.method onReceive()V
    log b
.end method`, "\x04")
	// Activity without a window: UI ops must throw IllegalStateException.
	f.Add(layoutA, `
.class Lt/A;
.super Landroid/app/Activity;
.method onCreate()V
    log no-window
.end method`, srcB, "\x00\x01\x02")

	f.Fuzz(func(t *testing.T, layoutXML, classA, classB, script string) {
		app, ok := fuzzApp(layoutXML, classA, classB)
		if !ok {
			return
		}
		if hasSuperCycle(app.Program) {
			return
		}
		classic, cPanic := runFuzzScript(app, "classic", script)
		compiled, iPanic := runFuzzScript(app, "ir", script)
		if cPanic != iPanic {
			t.Fatalf("panic divergence: classic=%q ir=%q", cPanic, iPanic)
		}
		if !reflect.DeepEqual(classic, compiled) {
			t.Fatalf("outcome divergence:\nclassic: %q\nir:      %q", classic, compiled)
		}
	})
}

// fuzzApp assembles an app from fuzz-controlled sources through the real
// pipeline; any rejection reads as "not a valid app", not a finding.
func fuzzApp(layoutXML, classA, classB string) (*apk.App, bool) {
	arch := apk.NewArchive()
	man, err := manifest.NewBuilder("t").Launcher("t.A").Activity("t.B").Build()
	if err != nil {
		return nil, false
	}
	data, err := man.Encode()
	if err != nil {
		return nil, false
	}
	if arch.Put(apk.ManifestPath, data) != nil ||
		arch.Put(apk.LayoutDir+"a.xml", []byte(layoutXML)) != nil ||
		arch.Put(apk.SmaliDir+"t/A.smali", []byte(classA)) != nil ||
		arch.Put(apk.SmaliDir+"t/B.smali", []byte(classB)) != nil {
		return nil, false
	}
	app, err := apk.Load(arch)
	if err != nil {
		return nil, false
	}
	// Register t.B as a broadcast receiver so scripts can exercise delivery.
	app.Manifest.Application.Receivers = append(app.Manifest.Application.Receivers,
		receiverDecl("t.B", "t.EVENT"))
	return app, true
}

// hasSuperCycle reports whether any declared class's super chain loops among
// declared classes (framework supers always terminate the walk).
func hasSuperCycle(p *smali.Program) bool {
	for _, name := range p.Names() {
		seen := make(map[string]bool)
		for cur := name; cur != "" && !smali.FrameworkClass(cur); {
			if seen[cur] {
				return true
			}
			seen[cur] = true
			c := p.Class(cur)
			if c == nil {
				break
			}
			cur = c.Super
		}
	}
	return false
}

// runFuzzScript executes one interaction script on a fresh device and renders
// every observable into a canonical transcript. A panic is returned as text
// so the caller can require both interpreters to panic identically.
func runFuzzScript(app *apk.App, mode, script string) (out []string, panicked string) {
	defer func() {
		if r := recover(); r != nil {
			panicked = fmt.Sprint(r)
		}
	}()
	refs := []string{"@id/b0", "@id/b1", "@id/b2", "@id/c", "@id/nope"}
	// Depth-limited start chains still fan out exponentially under mutated
	// inputs (k starts per onCreate → k^16 executions); the step budget keeps
	// every input finite without changing which interpreter wins.
	d := New(app, Options{Interp: mode, MaxSteps: 100_000})
	out = append(out, "launch: "+errText(d.LaunchMain()))
	for _, b := range []byte(script) {
		ref := refs[int(b/7)%len(refs)]
		switch b % 7 {
		case 0:
			out = append(out, "click: "+errText(d.Click(ref)))
		case 1:
			out = append(out, "back: "+errText(d.Back()))
		case 2:
			out = append(out, "text: "+errText(d.EnterText(ref, "secret")))
		case 3:
			out = append(out, "dismiss: "+errText(d.DismissDialog()))
		case 4:
			out = append(out, "bcast: "+errText(d.Broadcast("t.EVENT")))
		case 5:
			out = append(out, "force: "+errText(d.ForceStart("t.B")))
		case 6:
			out = append(out, "reflect: "+errText(d.Reflect("t.B", "@id/c")))
		}
		if d.Crashed() {
			break
		}
	}
	cur, err := d.CurrentActivity()
	out = append(out,
		fmt.Sprintf("final: crashed=%v reason=%q steps=%d activity=%q/%s",
			d.Crashed(), d.CrashReason(), d.Steps(), cur, errText(err)),
		"journal: "+strings.Join(d.Events(), "\n"))
	return out, ""
}

func errText(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}
