package device

import (
	"errors"
	"reflect"
	"testing"

	"fragdroid/internal/corpus"
)

// driveRich pushes a device through a mixed interaction burst — launches,
// fills, clicks, backs, crash restarts — so its snapshot exercises every
// codec branch: deep stacks, live fragments, override maps, intent extras,
// dialogs, a long journal.
func driveRich(t *testing.T, d *Device) {
	t.Helper()
	if err := d.LaunchMain(); err != nil {
		t.Fatalf("LaunchMain: %v", err)
	}
	for i := 0; i < 15; i++ {
		if d.Crashed() || !d.Running() {
			if err := d.LaunchMain(); err != nil {
				return
			}
		}
		dump, err := d.Dump()
		if err != nil {
			return
		}
		if eds := dump.EditableRefs(); len(eds) > 0 {
			_ = d.EnterText(eds[i%len(eds)], "codec-roundtrip")
		}
		refs := dump.ClickableRefs()
		if len(refs) == 0 {
			_ = d.Back()
			continue
		}
		_ = d.Click(refs[i%len(refs)])
	}
}

// TestSnapshotCodecRoundTrip drives every corpus app (the 15 Table I apps
// plus the demo app) to a rich state and requires decode(encode(snapshot))
// to reproduce the snapshot exactly, unexported nil-ness and all.
func TestSnapshotCodecRoundTrip(t *testing.T) {
	specs := []*corpus.AppSpec{corpus.DemoSpec()}
	for _, row := range corpus.PaperRows() {
		specs = append(specs, corpus.PaperSpec(row))
	}
	if len(specs) != 16 {
		t.Fatalf("corpus has %d apps, want 16", len(specs))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Package, func(t *testing.T) {
			app, err := corpus.BuildApp(spec)
			if err != nil {
				t.Fatalf("BuildApp: %v", err)
			}
			d := New(app, Options{})
			driveRich(t, d)
			snap := d.Snapshot()
			got, err := DecodeSnapshot(EncodeSnapshot(snap), app)
			if err != nil {
				t.Fatalf("DecodeSnapshot: %v", err)
			}
			if !reflect.DeepEqual(got, snap) {
				t.Fatalf("round trip diverged:\n got: %#v\nwant: %#v", got, snap)
			}
			// A restored decode must drive like the original: same screen.
			d2 := New(app, Options{})
			if err := d2.Restore(got); err != nil {
				t.Fatalf("Restore(decoded): %v", err)
			}
			requireEqualState(t, observeState(t, d2), observeState(t, d))
		})
	}
}

// TestSnapshotCodecCorruption requires every truncation of an encoded
// snapshot to fail decoding loudly (the memo then treats it as a miss) —
// never to panic or to yield a state silently.
func TestSnapshotCodecCorruption(t *testing.T) {
	d := demoDevice(t, Options{})
	driveRich(t, d)
	data := EncodeSnapshot(d.Snapshot())
	app := d.app
	for cut := 0; cut < len(data); cut += 1 + len(data)/97 {
		if _, err := DecodeSnapshot(data[:cut], app); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(data))
		}
	}
	// A snapshot naming layouts the app does not declare must be rejected:
	// decoding binds content through the target app's layout table.
	bare := *app
	bare.Layouts = nil
	if _, err := DecodeSnapshot(data, &bare); err == nil {
		t.Fatal("decode against an app without the layouts succeeded")
	}
}

// TestSnapshotRebind pins the cross-install serving path: a snapshot rebound
// to a content-identical re-install restores onto that installation's
// devices.
func TestSnapshotRebind(t *testing.T) {
	first, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		t.Fatal(err)
	}
	d := New(first, Options{})
	launch(t, d)
	snap := d.Snapshot()

	reinstalled, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		t.Fatal(err)
	}
	d2 := New(reinstalled, Options{})
	if err := d2.Restore(snap); !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("unbound restore err = %v, want ErrStaleSnapshot", err)
	}
	if err := d2.Restore(snap.Rebind(reinstalled)); err != nil {
		t.Fatalf("rebound restore: %v", err)
	}
	cur, err := d2.CurrentActivity()
	if err != nil || cur != "com.demo.app.Main" {
		t.Fatalf("rebound device at %q, %v", cur, err)
	}
	if same := snap.Rebind(first); same != snap {
		t.Error("Rebind to the same app should return the snapshot unchanged")
	}
}

// TestAdvance pins the fast-forward semantics: a device mid-route advances
// to a snapshot extending its history, is billed only the step delta, and
// re-emits only the journal suffix.
func TestAdvance(t *testing.T) {
	app, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Reference: full route executed directly.
	ref := New(app, Options{})
	launch(t, ref)
	if err := ref.Click(corpus.NavButtonRef("Main", "Detail")); err != nil {
		t.Fatal(err)
	}
	full := ref.Snapshot()

	var lines []string
	d := New(app, Options{Hook: func(l string) { lines = append(lines, l) }})
	launch(t, d)
	prefixSteps := d.Steps()
	prefixLines := len(lines)
	if err := d.Advance(full); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if d.Steps() != ref.Steps() {
		t.Errorf("advanced steps = %d, want %d (delta billing, no double count)", d.Steps(), ref.Steps())
	}
	if d.RestoredSteps() != ref.Steps()-prefixSteps {
		t.Errorf("restored steps = %d, want the %d-step suffix", d.RestoredSteps(), ref.Steps()-prefixSteps)
	}
	if len(lines) <= prefixLines {
		t.Error("Advance re-emitted no journal suffix")
	}
	cur, err := d.CurrentActivity()
	if err != nil || cur != "com.demo.app.Detail" {
		t.Fatalf("advanced device at %q, %v", cur, err)
	}

	// Backwards advance must refuse: the device is already past the target.
	early := New(app, Options{})
	launch(t, early)
	pre := early.Snapshot()
	if err := d.Advance(pre); !errors.Is(err, ErrSnapshotBehind) {
		t.Fatalf("backwards Advance err = %v, want ErrSnapshotBehind", err)
	}
	other, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := New(other, Options{}).Advance(full); !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("cross-app Advance err = %v, want ErrStaleSnapshot", err)
	}
}
