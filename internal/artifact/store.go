package artifact

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// The on-disk entry format, version 1:
//
//	FDART1\n
//	<schema fingerprint>\n
//	<kind>\n
//	<cache key>\n
//	<payload length, decimal>\n
//	<sha256 of payload, hex>\n
//	<payload bytes>
//
// Everything before the payload is the header. A loader rejects an entry —
// silently, reporting a plain miss so the caller rebuilds — when the magic,
// fingerprint, kind or key disagree, the length is malformed or the file is
// truncated, or the checksum does not match. Writers create entries as a
// temp file in the same directory and rename it into place, so readers (in
// this process or another) only ever observe complete entries.
const (
	storeMagic = "FDART1"

	// FormatVersion is the container format version; it is baked into the
	// magic line. Bump it when the header layout changes.
	FormatVersion = 1

	// appCodecVersion and extractionCodecVersion version the binc payload
	// schemas of the two artifact kinds. The binc codecs are positional —
	// an old payload read by a new decoder misaligns silently rather than
	// erroring — so any change to the encodings in apk/codec.go,
	// statics/codec.go or callgraph/codec.go — or to the corpus generator
	// in a way that alters built apps — MUST bump the corresponding version
	// here. A bump changes the fingerprint, every existing entry turns
	// stale, and the next run rebuilds and overwrites.
	appCodecVersion        = 2 // v2: intent filters carry deep-link data elements
	extractionCodecVersion = 3 // v3: the embedded AFTM model blob is binc, not JSON

	// snapshotCodecVersion versions the persistent device-snapshot payloads
	// (device/codec.go plus the op-list framing in session/snapshot.go).
	// v2: listener registrations carry the inline-cache call-site id, and
	// snapshot packs frame each entry with a body length for lazy decode.
	snapshotCodecVersion = 2

	// irCodecVersion versions the compiled instruction-program payloads
	// (ir/codec.go). The program is a pure function of the built app, so the
	// version only needs bumping when the IR encoding itself changes — app
	// content drift is already covered by the cache key.
	irCodecVersion = 1
)

// Artifact kinds.
const (
	kindApp        = "app"
	kindExtraction = "extraction"
	kindSnapshot   = "snapshot"
	kindIR         = "ir"
)

// Fingerprint returns the schema fingerprint stamped into every entry
// header: container format plus every payload codec version. Entries written
// under a different fingerprint are stale and read as misses.
func Fingerprint() string {
	return fmt.Sprintf("fdart%d/app%d/ext%d/snap%d/ir%d",
		FormatVersion, appCodecVersion, extractionCodecVersion, snapshotCodecVersion, irCodecVersion)
}

// Store is a persistent, content-addressed artifact store rooted at one
// directory. Entries are addressed by (kind, cache key); the file name is
// the sha256 of the key, so arbitrary key strings map to safe paths. A Store
// is safe for concurrent use by multiple goroutines and multiple processes
// sharing the directory.
type Store struct {
	dir string

	// shardDirs memoizes shard directories already MkdirAll'd by this Store,
	// so a corpus-scale run pays one mkdir syscall per shard, not per entry.
	shardDirs sync.Map // string -> struct{}
}

// OpenStore opens (creating if needed) the store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: empty store directory")
	}
	for _, k := range []string{kindApp, kindExtraction, kindSnapshot, kindIR} {
		if err := os.MkdirAll(filepath.Join(dir, k), 0o755); err != nil {
			return nil, fmt.Errorf("artifact: open store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// entryPath maps (kind, key) to the entry's file path. The keyspace fans out
// into 256 shard subdirectories per kind — <kind>/<first 2 hex of hash>/ — so
// a 10k-app corpus leaves ~40 entries per directory instead of piling tens of
// thousands of files into one, which degrades directory lookups and listing
// on most filesystems.
func (s *Store) entryPath(kind, key string) string {
	sum := sha256.Sum256([]byte(kind + "\x00" + key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, kind, name[:2], name+".art")
}

// flatEntryPath is the pre-sharding location of an entry — everything
// directly under <kind>/. Load falls back to it and migrates hits into the
// sharded layout, so stores written by older builds stay warm.
func (s *Store) flatEntryPath(kind, key string) string {
	sum := sha256.Sum256([]byte(kind + "\x00" + key))
	return filepath.Join(s.dir, kind, hex.EncodeToString(sum[:])+".art")
}

// ensureShardDir creates an entry's shard directory once per Store lifetime.
func (s *Store) ensureShardDir(dir string) error {
	if _, ok := s.shardDirs.Load(dir); ok {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.shardDirs.Store(dir, struct{}{})
	return nil
}

// Save writes an entry atomically: temp file in the destination directory,
// then rename. A concurrent Save of the same entry (another goroutine or
// another process) is harmless — both write complete files and the last
// rename wins.
func (s *Store) Save(kind, key string, payload []byte) error {
	path := s.entryPath(kind, key)
	if err := s.ensureShardDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("artifact: save %s: %w", kind, err)
	}
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: save %s: %w", kind, err)
	}
	tmp := f.Name()
	w := bufio.NewWriter(f)
	sum := sha256.Sum256(payload)
	_, err = fmt.Fprintf(w, "%s\n%s\n%s\n%s\n%d\n%s\n",
		storeMagic, Fingerprint(), kind, key, len(payload), hex.EncodeToString(sum[:]))
	if err == nil {
		_, err = w.Write(payload)
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Chmod(tmp, 0o644)
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("artifact: save %s: %w", kind, err)
	}
	return nil
}

// Load reads an entry's payload. The boolean result reports a usable hit;
// any integrity problem — missing file, foreign magic, stale fingerprint,
// kind/key mismatch, truncation, checksum failure — reads as a miss so the
// caller rebuilds (and, on the next Save, repairs) the entry. A miss at the
// sharded path falls back to the pre-sharding flat location; a verified flat
// hit is served and migrated (renamed) into the sharded layout, so old
// stores warm up the new layout one entry at a time. A corrupt flat entry is
// a plain miss, exactly as it was under the flat layout — the rebuild's Save
// writes to the sharded path and the stale flat file is simply never read as
// valid again.
func (s *Store) Load(kind, key string) ([]byte, bool) {
	if payload, ok := s.loadFile(s.entryPath(kind, key), kind, key); ok {
		return payload, true
	}
	flat := s.flatEntryPath(kind, key)
	payload, ok := s.loadFile(flat, kind, key)
	if !ok {
		return nil, false
	}
	// Migrate the verified entry into the sharded layout; best-effort — a
	// failed rename just means the next Load pays the fallback again.
	sharded := s.entryPath(kind, key)
	if err := s.ensureShardDir(filepath.Dir(sharded)); err == nil {
		os.Rename(flat, sharded)
	}
	return payload, true
}

// loadFile reads and verifies one entry file; any problem is a miss.
func (s *Store) loadFile(path, kind, key string) ([]byte, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	// Parse the six header lines in place; no intermediate line buffers.
	rest := data
	line := func() ([]byte, bool) {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return nil, false
		}
		l := rest[:nl]
		rest = rest[nl+1:]
		return l, true
	}
	if v, ok := line(); !ok || string(v) != storeMagic {
		return nil, false
	}
	if v, ok := line(); !ok || string(v) != Fingerprint() {
		return nil, false
	}
	if v, ok := line(); !ok || string(v) != kind {
		return nil, false
	}
	if v, ok := line(); !ok || string(v) != key {
		return nil, false
	}
	sizeLine, ok := line()
	if !ok {
		return nil, false
	}
	size, err := strconv.Atoi(string(sizeLine))
	if err != nil || size < 0 {
		return nil, false
	}
	wantSum, ok := line()
	if !ok {
		return nil, false
	}
	// Exactly size payload bytes must remain; trailing garbage means the
	// entry was not written by us.
	if len(rest) != size {
		return nil, false
	}
	payload := rest
	sum := sha256.Sum256(payload)
	var sumHex [2 * sha256.Size]byte
	hex.Encode(sumHex[:], sum[:])
	if !bytes.Equal(sumHex[:], wantSum) {
		return nil, false
	}
	return payload, true
}

// LoadSnapshot reads a persisted device-snapshot payload; any integrity
// problem is a plain miss (the memo re-executes and re-persists).
func (s *Store) LoadSnapshot(key string) ([]byte, bool) {
	return s.Load(kindSnapshot, key)
}

// SaveSnapshot persists a device-snapshot payload under the given key.
func (s *Store) SaveSnapshot(key string, payload []byte) error {
	return s.Save(kindSnapshot, key, payload)
}

// DefaultDir resolves the conventional store location: the FRAGDROID_CACHE
// environment variable when set, else <user cache dir>/fragdroid.
func DefaultDir() (string, error) {
	if dir := os.Getenv("FRAGDROID_CACHE"); dir != "" {
		return dir, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("artifact: no cache dir (set FRAGDROID_CACHE): %w", err)
	}
	return filepath.Join(base, "fragdroid"), nil
}

// ResolveDir maps a CLI -cache flag value to a store directory: "off"
// disables persistence (empty result), "auto" resolves DefaultDir, anything
// else is used verbatim.
func ResolveDir(flagVal string) (string, error) {
	switch flagVal {
	case "off", "":
		return "", nil
	case "auto":
		return DefaultDir()
	default:
		return flagVal, nil
	}
}
