package artifact

import (
	"bytes"
	"testing"

	"fragdroid/internal/corpus"
	"fragdroid/internal/ir"
)

// TestCompiledProgramPersistence pins the warm-run contract of the compiled
// instruction-program layer. IR installation is lazy: loading an app (cold or
// warm) parks a payload source and touches no counters, so static-only
// consumers pay nothing. The first ir.For call resolves it — a cold cache
// compiles once and writes the program through, a warm cache in a fresh
// process (modeled by a second Cache over the same directory) decodes it
// instead of compiling, and the decoded program is byte-identical to the
// compiled one under Encode.
func TestCompiledProgramPersistence(t *testing.T) {
	dir := t.TempDir()
	spec := corpus.DemoSpec()

	cold, err := NewPersistentCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	app1, err := cold.App(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.IRMisses != 0 || st.IRWrites != 0 || st.IRHits != 0 {
		t.Fatalf("cold load alone must not touch IR counters, got %+v", st)
	}
	want := ir.Encode(ir.For(app1))
	if st := cold.Stats(); st.IRMisses != 1 || st.IRWrites != 1 || st.IRHits != 0 {
		t.Fatalf("cold run: want 1 IR miss + 1 write after first For, got %+v", st)
	}
	payload, ok := cold.Store().Load(kindIR, Key(spec))
	if !ok {
		t.Fatal("no IR entry on disk after a cold build's first execution")
	}
	if !bytes.Equal(payload, want) {
		t.Fatal("stored IR payload differs from the registered program")
	}

	warm, err := NewPersistentCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	app2, err := warm.App(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.IRHits != 0 || st.IRMisses != 0 || st.IRWrites != 0 {
		t.Fatalf("warm load alone must not touch IR counters, got %+v", st)
	}
	got := ir.Encode(ir.For(app2))
	if st := warm.Stats(); st.IRHits != 1 || st.IRMisses != 0 || st.IRWrites != 0 {
		t.Fatalf("warm run: want 1 IR hit and no compile, got %+v", st)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("decoded program is not byte-identical to the compiled one")
	}
}

// TestCompiledProgramCorruptEntryRecompiles: a damaged IR entry must read as
// a miss when the program is first demanded — the cache recompiles,
// re-persists (repairing the entry), and the run proceeds normally.
func TestCompiledProgramCorruptEntryRecompiles(t *testing.T) {
	dir := t.TempDir()
	spec := corpus.DemoSpec()

	cold, err := NewPersistentCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	app1, err := cold.App(spec)
	if err != nil {
		t.Fatal(err)
	}
	ir.For(app1) // resolve the parked source so the entry is written
	// Overwrite the entry with a checksum-valid but undecodable payload:
	// the store layer accepts it, ir.Decode must reject it.
	if err := cold.Store().Save(kindIR, Key(spec), []byte{0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}

	warm, err := NewPersistentCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	app2, err := warm.App(spec)
	if err != nil {
		t.Fatal(err)
	}
	ir.For(app2)
	if st := warm.Stats(); st.IRHits != 0 || st.IRMisses != 1 || st.IRWrites != 1 {
		t.Fatalf("corrupt entry: want recompile + rewrite, got %+v", st)
	}
	// The rewrite repaired the store: a third process decodes cleanly.
	repaired, err := NewPersistentCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	app3, err := repaired.App(spec)
	if err != nil {
		t.Fatal(err)
	}
	ir.For(app3)
	if st := repaired.Stats(); st.IRHits != 1 || st.IRMisses != 0 {
		t.Fatalf("repaired entry: want clean decode, got %+v", st)
	}
}
