package artifact

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fragdroid/internal/corpus"
)

// openTestStore returns a store rooted in a fresh temp dir.
func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s := openTestStore(t)
	payload := []byte("the payload\nwith\x00binary bytes")
	if err := s.Save(kindApp, "some-key", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load(kindApp, "some-key")
	if !ok {
		t.Fatal("Load missed a just-saved entry")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload differs: %q", got)
	}
	if _, ok := s.Load(kindExtraction, "some-key"); ok {
		t.Error("Load found the entry under the wrong kind")
	}
	if _, ok := s.Load(kindApp, "other-key"); ok {
		t.Error("Load found a never-saved key")
	}
}

// entryFile locates the single on-disk file behind a saved entry, wherever
// it lives under the kind's (sharded) directory tree.
func entryFile(t *testing.T, s *Store, kind, key string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(s.Dir(), kind, "*", "*.art"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one %s entry on disk, got %v (err %v)", kind, matches, err)
	}
	return matches[0]
}

// TestStoreCorruptEntriesAreSilentMisses damages a stored entry every way the
// format can be damaged; each one must read as a miss — never an error, never
// a wrong payload — because the cache's contract is to silently rebuild.
func TestStoreCorruptEntriesAreSilentMisses(t *testing.T) {
	payload := []byte("payload bytes for corruption testing")
	corruptions := map[string]func([]byte) []byte{
		"empty file":     func(b []byte) []byte { return nil },
		"truncated head": func(b []byte) []byte { return b[:3] },
		"truncated tail": func(b []byte) []byte { return b[:len(b)-4] },
		"bad magic":      func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version": func(b []byte) []byte {
			// FDART1 -> FDART9: a future format version must read as a miss.
			b[5] = '9'
			return b
		},
		"flipped payload byte": func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		},
		"flipped checksum": func(b []byte) []byte {
			// The checksum is the last header line; damage its first hex digit.
			for i := range b {
				if b[i] == '\n' {
					b[i+1] = '~'
					break
				}
			}
			return b
		},
		"trailing garbage": func(b []byte) []byte { return append(b, "extra"...) },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s := openTestStore(t)
			if err := s.Save(kindApp, "k", payload); err != nil {
				t.Fatal(err)
			}
			path := entryFile(t, s, kindApp, "k")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Load(kindApp, "k"); ok {
				t.Fatalf("corrupt entry loaded: %q", got)
			}
		})
	}
}

// TestStaleFingerprintIsRebuilt writes an entry under a doctored fingerprint
// line and checks the persistent cache treats it as a miss and overwrites it
// with a fresh build — the codec-version invalidation path.
func TestStaleFingerprintIsRebuilt(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewPersistentCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := corpus.DemoSpec()
	if _, err := c1.App(spec); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, c1.Store(), kindApp, Key(spec))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The fingerprint is the second header line; a schema bump changes it.
	stale := append([]byte(nil), data...)
	for i := range stale {
		if stale[i] == '\n' {
			stale[i+1] = '~'
			break
		}
	}
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := NewPersistentCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.App(spec); err != nil {
		t.Fatalf("stale entry surfaced as error: %v", err)
	}
	st := c2.Stats()
	if st.Builds != 1 || st.DiskMisses == 0 {
		t.Errorf("stale entry did not trigger a rebuild: %+v", st)
	}
	// The rebuild wrote the entry back; a third cache now loads it from disk.
	c3, err := NewPersistentCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c3.App(spec); err != nil {
		t.Fatal(err)
	}
	if st := c3.Stats(); st.Builds != 0 || st.DiskHits != 1 {
		t.Errorf("rewritten entry not served from disk: %+v", st)
	}
}

// TestPersistentCacheWarmLoad checks the end-to-end cold/warm contract: a
// second cache on the same directory serves every artifact from disk, with
// zero builds and zero extractions.
func TestPersistentCacheWarmLoad(t *testing.T) {
	dir := t.TempDir()
	cold, err := NewPersistentCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := corpus.DemoSpec()
	if _, err := cold.App(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Extraction(spec); err != nil {
		t.Fatal(err)
	}
	st := cold.Stats()
	if st.Builds != 1 || st.Extractions != 1 || st.DiskWrites != 2 {
		t.Fatalf("cold stats: %+v", st)
	}

	warm, err := NewPersistentCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.App(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Extraction(spec); err != nil {
		t.Fatal(err)
	}
	st = warm.Stats()
	if st.Builds != 0 || st.Extractions != 0 {
		t.Errorf("warm run rebuilt: %+v", st)
	}
	if st.DiskHits != 2 || st.DiskMisses != 0 {
		t.Errorf("warm run missed the store: %+v", st)
	}
}

// TestStoreConcurrentStress hammers one store directory from two cache
// instances and many goroutines per spec — the two-CLIs-sharing-a-store
// scenario. Run under -race this doubles as the scheduler/store data-race
// check; correctness-wise every caller must get a working app.
func TestStoreConcurrentStress(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewPersistentCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewPersistentCache(dir)
	if err != nil {
		t.Fatal(err)
	}

	specs := corpus.StudySpecs(1)[:12]
	const callersPerSpec = 4
	var wg sync.WaitGroup
	for _, c := range []*Cache{c1, c2} {
		for _, spec := range specs {
			for k := 0; k < callersPerSpec; k++ {
				wg.Add(1)
				go func(c *Cache, spec *corpus.AppSpec, wantExt bool) {
					defer wg.Done()
					if spec.Packed {
						return
					}
					app, err := c.App(spec)
					if err != nil {
						t.Errorf("App %s: %v", spec.Package, err)
						return
					}
					if app.Manifest.Package != spec.Package {
						t.Errorf("App %s returned %s", spec.Package, app.Manifest.Package)
					}
					if wantExt {
						if _, err := c.Extraction(spec); err != nil {
							t.Errorf("Extraction %s: %v", spec.Package, err)
						}
					}
				}(c, spec, k%2 == 0)
			}
		}
	}
	wg.Wait()

	// A fresh cache over the now-populated dir must be all disk hits.
	c3, err := NewPersistentCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		if spec.Packed {
			continue
		}
		if _, err := c3.App(spec); err != nil {
			t.Fatal(err)
		}
	}
	if st := c3.Stats(); st.Builds != 0 || st.DiskMisses != 0 {
		t.Errorf("post-stress store incomplete: %+v", st)
	}
}

// TestKeyInjectiveEncoding pins the property the content key must have: two
// different specs never map to one key, even when naive string concatenation
// of their fields would collide.
func TestKeyInjectiveEncoding(t *testing.T) {
	base := func() *corpus.AppSpec {
		return &corpus.AppSpec{Package: "com.k"}
	}
	pairs := []struct {
		name string
		a, b *corpus.AppSpec
	}{
		{
			"field boundary shift",
			&corpus.AppSpec{Package: "com.k", Downloads: "ab"},
			&corpus.AppSpec{Package: "com.ka", Downloads: "b"},
		},
		{
			"list boundary shift",
			&corpus.AppSpec{Package: "com.k", Fragments: []corpus.FragmentSpec{{Name: "A"}, {Name: "B"}}},
			&corpus.AppSpec{Package: "com.k", Fragments: []corpus.FragmentSpec{{Name: "AB"}}},
		},
		{
			"empty-vs-missing gate",
			&corpus.AppSpec{Package: "com.k", Transition: []corpus.Transition{{From: "A", To: "B"}}},
			&corpus.AppSpec{Package: "com.k", Transition: []corpus.Transition{{From: "A", To: "B", Gate: &corpus.InputGate{}}}},
		},
		{
			"bool flag placement",
			func() *corpus.AppSpec {
				s := base()
				s.Activities = []corpus.ActivitySpec{{Name: "A", Launcher: true}}
				return s
			}(),
			func() *corpus.AppSpec {
				s := base()
				s.Activities = []corpus.ActivitySpec{{Name: "A", Isolated: true}}
				return s
			}(),
		},
	}
	for _, p := range pairs {
		if Key(p.a) == Key(p.b) {
			t.Errorf("%s: distinct specs share key %s", p.name, Key(p.a))
		}
	}
}
