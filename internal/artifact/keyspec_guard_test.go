package artifact

import (
	"reflect"
	"testing"

	"fragdroid/internal/corpus"
)

// TestKeySpecCoversAllFields is the drift guard for appendKeySpec: it pins
// the exact field list of every spec type the key encoding walks. Adding a
// field to any of these structs fails this test until appendKeySpec (and the
// pin below) are updated. Missing a field in the key encoding would let two
// distinct specs silently share one artifact, which the store could then
// serve as the wrong app — the one bug class the content-addressed design
// cannot tolerate.
func TestKeySpecCoversAllFields(t *testing.T) {
	pins := map[reflect.Type][]string{
		reflect.TypeOf(corpus.AppSpec{}):        {"Package", "Downloads", "Activities", "Fragments", "Receivers", "Transition", "Switches", "Packed"},
		reflect.TypeOf(corpus.ActivitySpec{}):   {"Name", "Launcher", "Isolated", "RequiresExtra", "SupportFM", "PopupOnCreate", "DeepLink", "Sensitive", "Wires"},
		reflect.TypeOf(corpus.FragmentSpec{}):   {"Name", "RequiresArgs", "Sensitive"},
		reflect.TypeOf(corpus.ReceiverSpec{}):   {"Name", "Actions", "Sensitive", "StartsActivity"},
		reflect.TypeOf(corpus.Transition{}):     {"From", "To", "Kind", "Action", "Gate"},
		reflect.TypeOf(corpus.FragmentWire{}):   {"Fragment", "Kind"},
		reflect.TypeOf(corpus.FragmentSwitch{}): {"From", "To"},
		reflect.TypeOf(corpus.InputGate{}):      {"Field", "Expected", "Hint"},
	}
	for typ, want := range pins {
		var got []string
		for i := 0; i < typ.NumField(); i++ {
			got = append(got, typ.Field(i).Name)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s fields changed: got %v, want %v — update appendKeySpec in cache.go and this pin", typ, got, want)
		}
	}
}
