package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"fragdroid/internal/corpus"
)

// TestStoreShardedLayout pins the fan-out: every entry lands under
// <kind>/<first two hex of its hash>/<hash>.art, never directly in <kind>/.
func TestStoreShardedLayout(t *testing.T) {
	s := openTestStore(t)
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := s.Save(kindApp, key, []byte("p")); err != nil {
			t.Fatal(err)
		}
	}
	if flat, _ := filepath.Glob(filepath.Join(s.Dir(), kindApp, "*.art")); len(flat) != 0 {
		t.Fatalf("entries written outside shard dirs: %v", flat)
	}
	sharded, err := filepath.Glob(filepath.Join(s.Dir(), kindApp, "*", "*.art"))
	if err != nil || len(sharded) != 20 {
		t.Fatalf("want 20 sharded entries, got %d (err %v)", len(sharded), err)
	}
	for _, p := range sharded {
		shard := filepath.Base(filepath.Dir(p))
		name := filepath.Base(p)
		if len(shard) != 2 || name[:2] != shard {
			t.Fatalf("entry %s not in its hash-prefix shard", p)
		}
	}
}

// flatPathFor computes the pre-sharding location of an entry, mirroring what
// older builds wrote.
func flatPathFor(s *Store, kind, key string) string {
	sum := sha256.Sum256([]byte(kind + "\x00" + key))
	return filepath.Join(s.Dir(), kind, hex.EncodeToString(sum[:])+".art")
}

// TestStoreFlatEntryMigratesOnLoad simulates a store written by a
// pre-sharding build: the entry sits directly under <kind>/. Load must serve
// it and move it into the sharded layout, after which the flat file is gone
// and a second Load hits the sharded path directly.
func TestStoreFlatEntryMigratesOnLoad(t *testing.T) {
	s := openTestStore(t)
	payload := []byte("legacy payload")
	if err := s.Save(kindApp, "old-key", payload); err != nil {
		t.Fatal(err)
	}
	sharded := entryFile(t, s, kindApp, "old-key")
	flat := flatPathFor(s, kindApp, "old-key")
	if err := os.Rename(sharded, flat); err != nil {
		t.Fatal(err)
	}

	got, ok := s.Load(kindApp, "old-key")
	if !ok || string(got) != string(payload) {
		t.Fatalf("flat entry not served: ok=%v payload=%q", ok, got)
	}
	if _, err := os.Stat(flat); !os.IsNotExist(err) {
		t.Errorf("flat entry not migrated away (stat err %v)", err)
	}
	if _, err := os.Stat(sharded); err != nil {
		t.Errorf("migrated entry missing at sharded path: %v", err)
	}
	if got, ok := s.Load(kindApp, "old-key"); !ok || string(got) != string(payload) {
		t.Fatalf("post-migration load failed: ok=%v payload=%q", ok, got)
	}
}

// TestStoreCorruptFlatEntryIsMiss keeps the silent-miss contract across the
// fallback path: a damaged flat entry reads as a miss, is not migrated, and
// the subsequent Save repairs into the sharded layout without error.
func TestStoreCorruptFlatEntryIsMiss(t *testing.T) {
	s := openTestStore(t)
	flat := flatPathFor(s, kindApp, "bad-key")
	if err := os.WriteFile(flat, []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Load(kindApp, "bad-key"); ok {
		t.Fatalf("corrupt flat entry loaded: %q", got)
	}
	if err := s.Save(kindApp, "bad-key", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Load(kindApp, "bad-key"); !ok || string(got) != "fresh" {
		t.Fatalf("repaired entry not served: ok=%v payload=%q", ok, got)
	}
}

// TestCacheEvict pins the release contract the streaming fold depends on:
// Evict drops a spec's in-memory entries (Live goes back to zero) while the
// persistent store keeps serving, so a re-lookup is a disk hit, not a
// rebuild.
func TestCacheEvict(t *testing.T) {
	dir := t.TempDir()
	c, err := NewPersistentCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := corpus.DemoSpec()
	if _, err := c.App(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Extraction(spec); err != nil {
		t.Fatal(err)
	}
	if live := c.Live(); live != 2 {
		t.Fatalf("Live=%d before eviction, want 2", live)
	}
	c.Evict(spec)
	if live := c.Live(); live != 0 {
		t.Fatalf("Live=%d after eviction, want 0", live)
	}
	if _, err := c.App(spec); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Builds != 1 || st.DiskHits == 0 {
		t.Errorf("post-eviction lookup rebuilt instead of disk-loading: %+v", st)
	}
}
