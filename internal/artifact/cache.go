// Package artifact memoizes the expensive per-spec analysis artifacts —
// corpus app builds and static extractions — behind a concurrency-safe,
// single-flight cache. The evaluation harness calls corpus.BuildApp and
// statics.Extract for the same 15 Table I apps from every benchmark and
// ablation; with the cache each artifact is computed exactly once per
// process and shared.
//
// Sharing is sound because both artifact kinds are read-only after
// construction: the device clones layouts before mutating widget state, and
// the explorer clones the extraction's AFTM (the only mutable part) before
// evolving it. Every other field is only ever read.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"
	"sync/atomic"

	"fragdroid/internal/apk"
	"fragdroid/internal/corpus"
	"fragdroid/internal/statics"
)

// Key derives the cache key from the spec's content (not its pointer), so
// two independently constructed but identical specs share one artifact.
func Key(spec *corpus.AppSpec) string {
	b, err := json.Marshal(spec)
	if err != nil {
		// AppSpec is a plain data struct; Marshal cannot fail on it today.
		// Degrade to the package name so the cache stays usable if the
		// struct ever grows an unmarshalable field.
		return spec.Package
	}
	sum := sha256.Sum256(b)
	return spec.Package + "#" + hex.EncodeToString(sum[:12])
}

// appEntry is the single-flight slot for one built app: the first caller
// runs the build inside the Once, every other caller blocks on it and then
// shares the result.
type appEntry struct {
	once sync.Once
	app  *apk.App
	err  error
}

type extEntry struct {
	once sync.Once
	ex   *statics.Extraction
	err  error
}

// Cache memoizes built apps and static extractions by spec identity. The
// zero value is not usable; use NewCache (or the process-wide Default).
type Cache struct {
	mu   sync.Mutex
	apps map[string]*appEntry
	exts map[string]*extEntry

	hits        atomic.Uint64
	misses      atomic.Uint64
	builds      atomic.Uint64
	extractions atomic.Uint64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		apps: make(map[string]*appEntry),
		exts: make(map[string]*extEntry),
	}
}

// Default is the process-wide cache the evaluation entry points fall back
// to, so repeated benchmark and CLI runs in one process share artifacts.
var Default = NewCache()

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits and Misses count lookups that found / did not find an entry
	// (across both artifact kinds).
	Hits, Misses uint64
	// Builds counts corpus app builds actually performed; Extractions
	// counts static extractions actually performed. A warmed cache serving
	// a repeated evaluation performs zero of either.
	Builds, Extractions uint64
}

// Stats returns the current counter values.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Builds:      c.builds.Load(),
		Extractions: c.extractions.Load(),
	}
}

// Reset drops all entries and zeroes the counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.apps = make(map[string]*appEntry)
	c.exts = make(map[string]*extEntry)
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
	c.builds.Store(0)
	c.extractions.Store(0)
}

// App returns the memoized build of spec. Packed specs yield apk.ErrPacked,
// exactly like corpus.BuildApp; the error is memoized too. The returned App
// is shared between callers and must be treated as read-only.
func (c *Cache) App(spec *corpus.AppSpec) (*apk.App, error) {
	key := Key(spec)
	c.mu.Lock()
	e := c.apps[key]
	if e == nil {
		e = &appEntry{}
		c.apps[key] = e
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	c.mu.Unlock()
	e.once.Do(func() {
		c.builds.Add(1)
		e.app, e.err = corpus.BuildApp(spec)
	})
	return e.app, e.err
}

// Extraction returns the memoized static extraction of spec, building the
// app first if needed. The shared *statics.Extraction is safe for
// concurrent explorations: explorers clone the mutable AFTM and treat
// everything else as read-only.
func (c *Cache) Extraction(spec *corpus.AppSpec) (*statics.Extraction, error) {
	key := Key(spec)
	c.mu.Lock()
	e := c.exts[key]
	if e == nil {
		e = &extEntry{}
		c.exts[key] = e
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	c.mu.Unlock()
	e.once.Do(func() {
		app, err := c.App(spec)
		if err != nil {
			e.err = err
			return
		}
		c.extractions.Add(1)
		e.ex, e.err = statics.Extract(app)
	})
	return e.ex, e.err
}
