// Package artifact memoizes the expensive per-spec analysis artifacts —
// corpus app builds and static extractions — behind a concurrency-safe,
// single-flight cache, optionally backed by a persistent content-addressed
// store. The evaluation harness calls corpus.BuildApp and statics.Extract
// for the same apps from every benchmark, ablation and CLI run; with the
// in-memory layer each artifact is computed once per process, and with a
// Store attached a warm second process skips building and static analysis
// entirely, decoding checksum-verified payloads instead.
//
// Sharing is sound because both artifact kinds are read-only after
// construction: the device clones layouts before mutating widget state, and
// the explorer clones the extraction's AFTM (the only mutable part) before
// evolving it. Every other field is only ever read.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"sync"
	"sync/atomic"

	"fragdroid/internal/apk"
	"fragdroid/internal/corpus"
	"fragdroid/internal/ir"
	"fragdroid/internal/statics"
)

// Key derives the cache key from the spec's content (not its pointer), so
// two independently constructed but identical specs share one artifact and
// two different specs sharing a package name can never collide on one cache
// slot. The canonical encoding is injective — every string is
// length-prefixed and every slice is count-prefixed — and covers every spec
// field (keyspec_guard_test.go breaks the build if AppSpec grows a field
// this encoding does not know about). A hand-rolled encoding instead of
// encoding/json keeps the per-lookup cost off the warm path's profile.
func Key(spec *corpus.AppSpec) string {
	// Pre-sized well above the largest corpus spec encoding, so the append
	// chain below runs without a single growslice in the common case.
	b := make([]byte, 0, 8192)
	sum := sha256.Sum256(appendKeySpec(b, spec))
	return spec.Package + "#" + hex.EncodeToString(sum[:12])
}

func keyStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func keyStrs(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = keyStr(b, s)
	}
	return b
}

func keyBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendKeySpec appends the canonical key encoding of every AppSpec field.
func appendKeySpec(b []byte, s *corpus.AppSpec) []byte {
	b = keyStr(b, s.Package)
	b = keyStr(b, s.Downloads)
	b = binary.AppendUvarint(b, uint64(len(s.Activities)))
	for _, a := range s.Activities {
		b = keyStr(b, a.Name)
		b = keyBool(b, a.Launcher)
		b = keyBool(b, a.Isolated)
		b = keyStr(b, a.RequiresExtra)
		b = keyBool(b, a.SupportFM)
		b = keyBool(b, a.PopupOnCreate)
		b = keyStr(b, a.DeepLink)
		b = keyStrs(b, a.Sensitive)
		b = binary.AppendUvarint(b, uint64(len(a.Wires)))
		for _, w := range a.Wires {
			b = keyStr(b, w.Fragment)
			b = binary.AppendUvarint(b, uint64(w.Kind))
		}
	}
	b = binary.AppendUvarint(b, uint64(len(s.Fragments)))
	for _, f := range s.Fragments {
		b = keyStr(b, f.Name)
		b = keyBool(b, f.RequiresArgs)
		b = keyStrs(b, f.Sensitive)
	}
	b = binary.AppendUvarint(b, uint64(len(s.Receivers)))
	for _, rc := range s.Receivers {
		b = keyStr(b, rc.Name)
		b = keyStrs(b, rc.Actions)
		b = keyStrs(b, rc.Sensitive)
		b = keyStr(b, rc.StartsActivity)
	}
	b = binary.AppendUvarint(b, uint64(len(s.Transition)))
	for _, t := range s.Transition {
		b = keyStr(b, t.From)
		b = keyStr(b, t.To)
		b = binary.AppendUvarint(b, uint64(t.Kind))
		b = keyStr(b, t.Action)
		if t.Gate == nil {
			b = keyBool(b, false)
		} else {
			b = keyBool(b, true)
			b = keyStr(b, t.Gate.Field)
			b = keyStr(b, t.Gate.Expected)
			b = keyStr(b, t.Gate.Hint)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(s.Switches)))
	for _, sw := range s.Switches {
		b = keyStr(b, sw.From)
		b = keyStr(b, sw.To)
	}
	b = keyBool(b, s.Packed)
	return b
}

// appEntry is the single-flight slot for one built app: the first caller
// runs the build inside the Once, every other caller blocks on it and then
// shares the result.
type appEntry struct {
	once sync.Once
	app  *apk.App
	err  error
}

type extEntry struct {
	once sync.Once
	ex   *statics.Extraction
	err  error
}

// Cache memoizes built apps and static extractions by spec identity. The
// zero value is not usable; use NewCache, NewPersistentCache, or the
// process-wide Default.
type Cache struct {
	mu   sync.Mutex
	apps map[string]*appEntry
	exts map[string]*extEntry

	// store, when non-nil, is the write-through/read-back disk layer: every
	// in-memory miss consults it before computing, and every computed
	// artifact (or ErrPacked outcome) is written back.
	store *Store

	hits        atomic.Uint64
	misses      atomic.Uint64
	builds      atomic.Uint64
	extractions atomic.Uint64

	diskHits   atomic.Uint64
	diskMisses atomic.Uint64
	diskWrites atomic.Uint64
	diskErrors atomic.Uint64

	// The compiled-program layer has its own counters: a warm run that skips
	// method compilation entirely is a distinct observable from app/extraction
	// disk traffic.
	irHits   atomic.Uint64
	irMisses atomic.Uint64
	irWrites atomic.Uint64
}

// NewCache returns an empty in-memory cache.
func NewCache() *Cache {
	return &Cache{
		apps: make(map[string]*appEntry),
		exts: make(map[string]*extEntry),
	}
}

// NewPersistentCache returns a cache backed by the persistent store at dir.
// An empty dir yields a plain in-memory cache.
func NewPersistentCache(dir string) (*Cache, error) {
	c := NewCache()
	if dir == "" {
		return c, nil
	}
	store, err := OpenStore(dir)
	if err != nil {
		return nil, err
	}
	c.store = store
	return c, nil
}

// SetStore attaches (or, with nil, detaches) the persistent layer. Already
// memoized entries are unaffected.
func (c *Cache) SetStore(s *Store) {
	c.mu.Lock()
	c.store = s
	c.mu.Unlock()
}

// Store returns the attached persistent store, nil for in-memory caches.
func (c *Cache) Store() *Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store
}

// Default is the process-wide cache the evaluation entry points fall back
// to, so repeated benchmark and CLI runs in one process share artifacts. It
// has no persistent layer; attach one with SetStore if a CLI wants the
// default cache disk-backed.
var Default = NewCache()

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits and Misses count lookups that found / did not find an in-memory
	// entry (across both artifact kinds).
	Hits, Misses uint64
	// Builds counts corpus app builds actually performed; Extractions
	// counts static extractions actually performed. A warmed cache serving
	// a repeated evaluation performs zero of either.
	Builds, Extractions uint64
	// DiskHits and DiskMisses count in-memory misses served / not served by
	// the persistent store (zero without one). DiskWrites counts entries
	// written back; DiskErrors counts failed write-backs (the computed
	// artifact is still served from memory).
	DiskHits, DiskMisses, DiskWrites, DiskErrors uint64
	// IRHits counts compiled instruction programs decoded from disk (the warm
	// run skipped method compilation); IRMisses counts programs compiled in
	// process; IRWrites counts programs written back. All zero without a
	// persistent store — in-memory reuse is handled by ir's own registry.
	IRHits, IRMisses, IRWrites uint64
}

// Stats returns the current counter values.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Builds:      c.builds.Load(),
		Extractions: c.extractions.Load(),
		DiskHits:    c.diskHits.Load(),
		DiskMisses:  c.diskMisses.Load(),
		DiskWrites:  c.diskWrites.Load(),
		DiskErrors:  c.diskErrors.Load(),
		IRHits:      c.irHits.Load(),
		IRMisses:    c.irMisses.Load(),
		IRWrites:    c.irWrites.Load(),
	}
}

// Evict drops the in-memory entries (app and extraction) of one spec. The
// streaming study pipeline calls it after folding an app's results so the
// cache's live set tracks the pipeline window instead of the whole corpus —
// without eviction the entry maps pin every built app and extraction until
// process exit, which is exactly the O(corpus) heap the streamed fold
// exists to avoid. Persistent-store entries are untouched: a re-lookup
// misses in memory and reads back from disk. Evicting a spec that is still
// being computed is safe — the in-flight caller holds its own entry pointer
// and completes normally; the entry just becomes unreachable for new
// lookups.
func (c *Cache) Evict(spec *corpus.AppSpec) {
	key := Key(spec)
	c.mu.Lock()
	delete(c.apps, key)
	delete(c.exts, key)
	c.mu.Unlock()
}

// Live reports the number of in-memory entries currently held (apps plus
// extractions) — the quantity the streaming pipeline's bounded-memory tests
// assert stays within the window.
func (c *Cache) Live() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.apps) + len(c.exts)
}

// Reset drops all in-memory entries and zeroes the counters. Entries in the
// persistent store are kept: a subsequent lookup misses in memory and reads
// back from disk.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.apps = make(map[string]*appEntry)
	c.exts = make(map[string]*extEntry)
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
	c.builds.Store(0)
	c.extractions.Store(0)
	c.diskHits.Store(0)
	c.diskMisses.Store(0)
	c.diskWrites.Store(0)
	c.diskErrors.Store(0)
	c.irHits.Store(0)
	c.irMisses.Store(0)
	c.irWrites.Store(0)
}

// App payload framing: one tag byte ahead of the codec bytes. Packed specs
// persist their ErrPacked outcome so warm runs skip even the spec
// validation that precedes the error.
const (
	appTagBuilt  = 'B'
	appTagPacked = 'P'
)

// loadApp serves an app from the persistent store. The second result
// reports a usable hit (which may be a memoized ErrPacked outcome).
func (c *Cache) loadApp(store *Store, key string) (*apk.App, error, bool) {
	payload, ok := store.Load(kindApp, key)
	if !ok || len(payload) == 0 {
		c.diskMisses.Add(1)
		return nil, nil, false
	}
	switch payload[0] {
	case appTagPacked:
		c.diskHits.Add(1)
		return nil, apk.ErrPacked, true
	case appTagBuilt:
		app, err := apk.DecodeApp(payload[1:])
		if err != nil {
			// A checksum-valid entry that fails to decode is schema drift the
			// fingerprint missed; treat as a miss and rebuild over it.
			c.diskMisses.Add(1)
			return nil, nil, false
		}
		c.diskHits.Add(1)
		return app, nil, true
	default:
		c.diskMisses.Add(1)
		return nil, nil, false
	}
}

// saveApp writes a build outcome through to the store. Only successful
// builds and the ErrPacked outcome persist; transient errors are recomputed
// per process.
func (c *Cache) saveApp(store *Store, key string, app *apk.App, err error) {
	var payload []byte
	switch {
	case err == nil:
		data, encErr := apk.EncodeApp(app)
		if encErr != nil {
			c.diskErrors.Add(1)
			return
		}
		payload = append([]byte{appTagBuilt}, data...)
	case errors.Is(err, apk.ErrPacked):
		payload = []byte{appTagPacked}
	default:
		return
	}
	if err := store.Save(kindApp, key, payload); err != nil {
		c.diskErrors.Add(1)
		return
	}
	c.diskWrites.Add(1)
}

// installIR parks the compiled-program store entry for a built app behind a
// lazy source: nothing is read, decoded or compiled until the app's first
// execution asks ir.For for its program. Static-only consumers — lint
// studies, source exports, reach audits — therefore pay zero IR cost on warm
// (or cold) loads. On first execution a cleanly decoding entry counts as a
// hit; a missing, corrupt or stale entry is a plain miss whose freshly
// compiled program is written back to repair the store. The resolved program
// registers in ir's process-wide registry keyed by the app pointer, so every
// device created for this app — in any engine — shares the one program and
// its inline caches.
func (c *Cache) installIR(store *Store, key string, app *apk.App) {
	ir.RegisterLazy(app,
		func() ([]byte, bool) { return store.Load(kindIR, key) },
		func() { c.irHits.Add(1) },
		func(p *ir.Program) {
			c.irMisses.Add(1)
			if err := store.Save(kindIR, key, ir.Encode(p)); err != nil {
				c.diskErrors.Add(1)
				return
			}
			c.irWrites.Add(1)
		})
}

// App returns the memoized build of spec. Packed specs yield apk.ErrPacked,
// exactly like corpus.BuildApp; the error is memoized too. The returned App
// is shared between callers and must be treated as read-only.
func (c *Cache) App(spec *corpus.AppSpec) (*apk.App, error) {
	key := Key(spec)
	c.mu.Lock()
	e := c.apps[key]
	store := c.store
	if e == nil {
		e = &appEntry{}
		c.apps[key] = e
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	c.mu.Unlock()
	e.once.Do(func() {
		if store != nil {
			if app, err, ok := c.loadApp(store, key); ok {
				e.app, e.err = app, err
				if e.err == nil && e.app != nil {
					c.installIR(store, key, e.app)
				}
				return
			}
		}
		c.builds.Add(1)
		e.app, e.err = corpus.BuildApp(spec)
		if store != nil {
			c.saveApp(store, key, e.app, e.err)
			if e.err == nil && e.app != nil {
				c.installIR(store, key, e.app)
			}
		}
	})
	return e.app, e.err
}

// Extraction returns the memoized static extraction of spec, building the
// app first if needed. The shared *statics.Extraction is safe for
// concurrent explorations: explorers clone the mutable AFTM and treat
// everything else as read-only.
func (c *Cache) Extraction(spec *corpus.AppSpec) (*statics.Extraction, error) {
	key := Key(spec)
	c.mu.Lock()
	e := c.exts[key]
	store := c.store
	if e == nil {
		e = &extEntry{}
		c.exts[key] = e
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	c.mu.Unlock()
	e.once.Do(func() {
		app, err := c.App(spec)
		if err != nil {
			e.err = err
			return
		}
		if store != nil {
			if payload, ok := store.Load(kindExtraction, key); ok {
				if ex, decErr := statics.DecodeExtraction(payload, app); decErr == nil {
					c.diskHits.Add(1)
					e.ex = ex
					return
				}
			}
			c.diskMisses.Add(1)
		}
		c.extractions.Add(1)
		e.ex, e.err = statics.Extract(app)
		if store != nil && e.err == nil {
			if payload, encErr := statics.EncodeExtraction(e.ex); encErr == nil {
				if err := store.Save(kindExtraction, key, payload); err == nil {
					c.diskWrites.Add(1)
				} else {
					c.diskErrors.Add(1)
				}
			} else {
				c.diskErrors.Add(1)
			}
		}
	})
	return e.ex, e.err
}
