package artifact

import (
	"errors"
	"sync"
	"testing"

	"fragdroid/internal/apk"
	"fragdroid/internal/corpus"
)

// TestSingleFlight hammers one spec from many goroutines and checks that the
// build ran exactly once and every caller got the same App pointer.
func TestSingleFlight(t *testing.T) {
	c := NewCache()
	spec := corpus.DemoSpec()

	const callers = 32
	apps := make([]*apk.App, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			app, err := c.App(spec)
			if err != nil {
				t.Errorf("App: %v", err)
				return
			}
			apps[i] = app
		}(i)
	}
	wg.Wait()

	for i := 1; i < callers; i++ {
		if apps[i] != apps[0] {
			t.Fatalf("caller %d got a different App pointer", i)
		}
	}
	st := c.Stats()
	if st.Builds != 1 {
		t.Errorf("Builds = %d, want 1", st.Builds)
	}
	if st.Misses != 1 {
		t.Errorf("Misses = %d, want 1", st.Misses)
	}
	if st.Hits != callers-1 {
		t.Errorf("Hits = %d, want %d", st.Hits, callers-1)
	}
}

// TestExtractionSharesApp checks that Extraction reuses the memoized App
// build rather than building again.
func TestExtractionSharesApp(t *testing.T) {
	c := NewCache()
	spec := corpus.DemoSpec()
	if _, err := c.App(spec); err != nil {
		t.Fatal(err)
	}
	ex, err := c.Extraction(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ex == nil {
		t.Fatal("nil extraction")
	}
	st := c.Stats()
	if st.Builds != 1 {
		t.Errorf("Builds = %d, want 1 (Extraction must reuse the built app)", st.Builds)
	}
	if st.Extractions != 1 {
		t.Errorf("Extractions = %d, want 1", st.Extractions)
	}
	ex2, err := c.Extraction(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ex2 != ex {
		t.Error("second Extraction returned a different pointer")
	}
	if st := c.Stats(); st.Extractions != 1 {
		t.Errorf("Extractions after warm lookup = %d, want 1", st.Extractions)
	}
}

// TestKeyDistinguishesSpecs checks that keys are content-based: equal specs
// share a key, differing specs do not.
func TestKeyDistinguishesSpecs(t *testing.T) {
	a := corpus.DemoSpec()
	b := corpus.DemoSpec()
	if Key(a) != Key(b) {
		t.Error("identical specs produced different keys")
	}
	b.Downloads = "something else"
	if Key(a) == Key(b) {
		t.Error("differing specs produced the same key")
	}
}

// TestPackedSpecYieldsErrPacked checks that the memoized error path keeps
// the apk.ErrPacked sentinel recognizable.
func TestPackedSpecYieldsErrPacked(t *testing.T) {
	c := NewCache()
	spec := corpus.DemoSpec()
	spec.Packed = true
	for i := 0; i < 2; i++ {
		if _, err := c.App(spec); !errors.Is(err, apk.ErrPacked) {
			t.Fatalf("call %d: err = %v, want apk.ErrPacked", i, err)
		}
		if _, err := c.Extraction(spec); !errors.Is(err, apk.ErrPacked) {
			t.Fatalf("call %d: Extraction err = %v, want apk.ErrPacked", i, err)
		}
	}
}

// TestReset drops entries so the next lookup rebuilds.
func TestReset(t *testing.T) {
	c := NewCache()
	spec := corpus.DemoSpec()
	if _, err := c.App(spec); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("stats after Reset = %+v, want zero", st)
	}
	if _, err := c.App(spec); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Builds != 1 {
		t.Errorf("Builds after Reset+App = %d, want 1", st.Builds)
	}
}
