// Package manifest models the AndroidManifest.xml of a synthetic application
// package. The static-extraction phase of FragDroid reads the manifest to
// enumerate declared Activities (paper §IV-B2), to resolve implicit Intent
// actions to their target Activities (Algorithm 1's "find A1 in
// AndroidManifest.xml by action"), and to locate the MAIN/LAUNCHER entry
// Activity. The explorer additionally patches the manifest so every Activity
// carries a MAIN action, enabling forced `am start -n` launches (§VI-A,
// third launch method).
package manifest

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
)

// Well-known intent actions and categories.
const (
	ActionMain       = "android.intent.action.MAIN"
	ActionView       = "android.intent.action.VIEW"
	CategoryLauncher = "android.intent.category.LAUNCHER"
	CategoryBrowsable = "android.intent.category.BROWSABLE"
	CategoryDefault   = "android.intent.category.DEFAULT"
)

// Manifest is the parsed AndroidManifest.xml.
type Manifest struct {
	XMLName     xml.Name     `xml:"manifest"`
	Package     string       `xml:"package,attr"`
	VersionName string       `xml:"versionName,attr,omitempty"`
	Permissions []Permission `xml:"uses-permission"`
	Application Application  `xml:"application"`
}

// Permission is a uses-permission declaration.
type Permission struct {
	Name string `xml:"name,attr"`
}

// Application holds the component lists.
type Application struct {
	Label      string     `xml:"label,attr,omitempty"`
	Activities []Activity `xml:"activity"`
	Receivers  []Receiver `xml:"receiver"`
}

// Receiver is a declared BroadcastReceiver component.
type Receiver struct {
	// Name is the fully qualified class name.
	Name string `xml:"name,attr"`
	// Filters list the broadcast actions the receiver subscribes to.
	Filters []IntentFilter `xml:"intent-filter"`
}

// Activity is a declared Activity component.
type Activity struct {
	// Name is the fully qualified class name, e.g. "com.example.MainActivity".
	Name string `xml:"name,attr"`
	// Exported mirrors android:exported; forced starts require it or a
	// MAIN-action filter.
	Exported bool `xml:"exported,attr,omitempty"`
	// Filters are the activity's intent filters.
	Filters []IntentFilter `xml:"intent-filter"`
}

// IntentFilter is an intent-filter element.
type IntentFilter struct {
	Actions    []Action   `xml:"action"`
	Categories []Category `xml:"category"`
	// Data lists the deep-link URIs the filter matches (the synthetic format
	// collapses android:scheme/host/path into one uri attribute).
	Data []Data `xml:"data"`
}

// Data is an intent-filter data element carrying a deep-link URI.
type Data struct {
	URI string `xml:"uri,attr"`
}

// Action is an intent-filter action element.
type Action struct {
	Name string `xml:"name,attr"`
}

// Category is an intent-filter category element.
type Category struct {
	Name string `xml:"name,attr"`
}

// Parse decodes an AndroidManifest.xml document and validates it.
func Parse(data []byte) (*Manifest, error) {
	var m Manifest
	if err := xml.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest: parse: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Encode renders the manifest back to XML.
func (m *Manifest) Encode() ([]byte, error) {
	out, err := xml.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("manifest: encode: %w", err)
	}
	return append([]byte(xml.Header), append(out, '\n')...), nil
}

// Validate checks structural invariants: non-empty package, non-empty unique
// activity names.
func (m *Manifest) Validate() error {
	if m.Package == "" {
		return fmt.Errorf("manifest: missing package attribute")
	}
	seen := make(map[string]bool, len(m.Application.Activities))
	for _, a := range m.Application.Activities {
		if a.Name == "" {
			return fmt.Errorf("manifest: activity with empty name in %s", m.Package)
		}
		if seen[a.Name] {
			return fmt.Errorf("manifest: duplicate activity %s", a.Name)
		}
		seen[a.Name] = true
	}
	for _, r := range m.Application.Receivers {
		if r.Name == "" {
			return fmt.Errorf("manifest: receiver with empty name in %s", m.Package)
		}
		if seen[r.Name] {
			return fmt.Errorf("manifest: duplicate component %s", r.Name)
		}
		seen[r.Name] = true
	}
	return nil
}

// ReceiversFor returns the receiver classes subscribed to the action.
func (m *Manifest) ReceiversFor(action string) []string {
	var out []string
	for _, r := range m.Application.Receivers {
		for _, f := range r.Filters {
			for _, a := range f.Actions {
				if a.Name == action {
					out = append(out, r.Name)
				}
			}
		}
	}
	return out
}

// BroadcastActions lists every action some receiver subscribes to, sorted
// and deduplicated — the event vocabulary a Dynodroid-style injector uses.
func (m *Manifest) BroadcastActions() []string {
	set := make(map[string]bool)
	for _, r := range m.Application.Receivers {
		for _, f := range r.Filters {
			for _, a := range f.Actions {
				set[a.Name] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// ActivityNames returns declared activity class names in declaration order.
func (m *Manifest) ActivityNames() []string {
	out := make([]string, 0, len(m.Application.Activities))
	for _, a := range m.Application.Activities {
		out = append(out, a.Name)
	}
	return out
}

// HasActivity reports whether name is a declared activity.
func (m *Manifest) HasActivity(name string) bool {
	for _, a := range m.Application.Activities {
		if a.Name == name {
			return true
		}
	}
	return false
}

// hasActionCategory reports whether the activity declares the given action
// and, when category is non-empty, the given category inside one filter.
func hasActionCategory(a Activity, action, category string) bool {
	for _, f := range a.Filters {
		actionOK := false
		for _, act := range f.Actions {
			if act.Name == action {
				actionOK = true
				break
			}
		}
		if !actionOK {
			continue
		}
		if category == "" {
			return true
		}
		for _, c := range f.Categories {
			if c.Name == category {
				return true
			}
		}
	}
	return false
}

// EntryActivity returns the MAIN/LAUNCHER activity name. It is an error if
// the manifest declares none (such packages are not startable) or more than
// one (ambiguous entry; the paper's model has a single entry node A0).
func (m *Manifest) EntryActivity() (string, error) {
	var found []string
	for _, a := range m.Application.Activities {
		if hasActionCategory(a, ActionMain, CategoryLauncher) {
			found = append(found, a.Name)
		}
	}
	switch len(found) {
	case 0:
		return "", fmt.Errorf("manifest: %s has no MAIN/LAUNCHER activity", m.Package)
	case 1:
		return found[0], nil
	default:
		return "", fmt.Errorf("manifest: %s has %d launcher activities: %s",
			m.Package, len(found), strings.Join(found, ", "))
	}
}

// ActivityForAction resolves an implicit intent action string to the first
// declared activity whose intent filter contains it (Algorithm 1: "find A1 in
// AndroidManifest.xml by action"). The boolean result reports success.
func (m *Manifest) ActivityForAction(action string) (string, bool) {
	for _, a := range m.Application.Activities {
		if hasActionCategory(a, action, "") {
			return a.Name, true
		}
	}
	return "", false
}

// ActivityForURI resolves a deep-link URI to the first declared activity
// whose VIEW intent filter carries a matching data element — the entry-point
// lookup a deep-link launch performs. The boolean result reports success.
func (m *Manifest) ActivityForURI(uri string) (string, bool) {
	for _, a := range m.Application.Activities {
		for _, f := range a.Filters {
			viewOK := false
			for _, act := range f.Actions {
				if act.Name == ActionView {
					viewOK = true
					break
				}
			}
			if !viewOK {
				continue
			}
			for _, d := range f.Data {
				if d.URI == uri {
					return a.Name, true
				}
			}
		}
	}
	return "", false
}

// DeepLinkURIs lists every URI some activity's VIEW filter matches, sorted
// and deduplicated — the deep-link entry vocabulary of the app.
func (m *Manifest) DeepLinkURIs() []string {
	set := make(map[string]bool)
	for _, a := range m.Application.Activities {
		for _, f := range a.Filters {
			viewOK := false
			for _, act := range f.Actions {
				if act.Name == ActionView {
					viewOK = true
					break
				}
			}
			if !viewOK {
				continue
			}
			for _, d := range f.Data {
				set[d.URI] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// ForceStartable reports whether the activity may be started directly with an
// explicit component intent from outside the app: it must be exported or
// carry a MAIN action.
func (m *Manifest) ForceStartable(name string) bool {
	for _, a := range m.Application.Activities {
		if a.Name != name {
			continue
		}
		return a.Exported || hasActionCategory(a, ActionMain, "")
	}
	return false
}

// PatchAllMain returns a deep copy of the manifest in which every activity
// carries an <action android:name="android.intent.action.MAIN"/> filter.
// This reproduces the paper's static-phase manifest modification that lets
// FragDroid forcibly start otherwise unreachable Activities with
// `am start -n <COMPONENT>` during the second dynamic loop.
func (m *Manifest) PatchAllMain() *Manifest {
	cp := m.Clone()
	for i := range cp.Application.Activities {
		a := &cp.Application.Activities[i]
		if hasActionCategory(*a, ActionMain, "") {
			continue
		}
		a.Filters = append(a.Filters, IntentFilter{Actions: []Action{{Name: ActionMain}}})
	}
	return cp
}

// Clone returns a deep copy of the manifest.
func (m *Manifest) Clone() *Manifest {
	cp := *m
	cp.Permissions = append([]Permission(nil), m.Permissions...)
	cp.Application.Receivers = make([]Receiver, len(m.Application.Receivers))
	for i, r := range m.Application.Receivers {
		nr := r
		nr.Filters = make([]IntentFilter, len(r.Filters))
		for j, f := range r.Filters {
			nr.Filters[j] = IntentFilter{
				Actions:    append([]Action(nil), f.Actions...),
				Categories: append([]Category(nil), f.Categories...),
				Data:       append([]Data(nil), f.Data...),
			}
		}
		cp.Application.Receivers[i] = nr
	}
	cp.Application.Activities = make([]Activity, len(m.Application.Activities))
	for i, a := range m.Application.Activities {
		na := a
		na.Filters = make([]IntentFilter, len(a.Filters))
		for j, f := range a.Filters {
			nf := IntentFilter{
				Actions:    append([]Action(nil), f.Actions...),
				Categories: append([]Category(nil), f.Categories...),
				Data:       append([]Data(nil), f.Data...),
			}
			na.Filters[j] = nf
		}
		cp.Application.Activities[i] = na
	}
	return &cp
}

// Builder assembles manifests programmatically; the corpus generators use it.
type Builder struct {
	m Manifest
}

// NewBuilder starts a manifest for the given package name.
func NewBuilder(pkg string) *Builder {
	return &Builder{m: Manifest{Package: pkg, VersionName: "1.0"}}
}

// Permission records a uses-permission entry.
func (b *Builder) Permission(name string) *Builder {
	b.m.Permissions = append(b.m.Permissions, Permission{Name: name})
	return b
}

// Launcher adds the entry activity with a MAIN/LAUNCHER filter.
func (b *Builder) Launcher(name string) *Builder {
	b.m.Application.Activities = append(b.m.Application.Activities, Activity{
		Name: name,
		Filters: []IntentFilter{{
			Actions:    []Action{{Name: ActionMain}},
			Categories: []Category{{Name: CategoryLauncher}},
		}},
	})
	return b
}

// Activity adds a plain activity.
func (b *Builder) Activity(name string) *Builder {
	b.m.Application.Activities = append(b.m.Application.Activities, Activity{Name: name})
	return b
}

// ActivityWithAction adds an activity carrying an intent filter for action.
func (b *Builder) ActivityWithAction(name, action string) *Builder {
	b.m.Application.Activities = append(b.m.Application.Activities, Activity{
		Name:    name,
		Filters: []IntentFilter{{Actions: []Action{{Name: action}}}},
	})
	return b
}

// ExportedActivity adds an exported activity.
func (b *Builder) ExportedActivity(name string) *Builder {
	b.m.Application.Activities = append(b.m.Application.Activities, Activity{
		Name: name, Exported: true,
	})
	return b
}

// Build validates and returns the manifest.
func (b *Builder) Build() (*Manifest, error) {
	m := b.m.Clone()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
