package manifest

import (
	"reflect"
	"strings"
	"testing"
)

func withReceivers(t *testing.T) *Manifest {
	t.Helper()
	m, err := NewBuilder("p").Launcher("p.Main").Build()
	if err != nil {
		t.Fatal(err)
	}
	m.Application.Receivers = []Receiver{
		{Name: "p.Boot", Filters: []IntentFilter{{
			Actions: []Action{{Name: "android.intent.action.BOOT_COMPLETED"}},
		}}},
		{Name: "p.Net", Filters: []IntentFilter{
			{Actions: []Action{{Name: "android.net.conn.CONNECTIVITY_CHANGE"}}},
			{Actions: []Action{{Name: "android.intent.action.BOOT_COMPLETED"}}},
		}},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReceiverRoundTrip(t *testing.T) {
	m := withReceivers(t)
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `<receiver name="p.Boot">`) {
		t.Fatalf("encoded XML missing receiver:\n%s", data)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Application.Receivers) != 2 {
		t.Fatalf("receivers = %+v", back.Application.Receivers)
	}
	if got := back.ReceiversFor("android.intent.action.BOOT_COMPLETED"); !reflect.DeepEqual(got, []string{"p.Boot", "p.Net"}) {
		t.Fatalf("ReceiversFor = %v", got)
	}
}

func TestBroadcastActionsSorted(t *testing.T) {
	m := withReceivers(t)
	got := m.BroadcastActions()
	want := []string{
		"android.intent.action.BOOT_COMPLETED",
		"android.net.conn.CONNECTIVITY_CHANGE",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BroadcastActions = %v", got)
	}
	if got := m.ReceiversFor("unused.ACTION"); got != nil {
		t.Fatalf("ReceiversFor(unused) = %v", got)
	}
}

func TestReceiverValidation(t *testing.T) {
	m := withReceivers(t)
	m.Application.Receivers = append(m.Application.Receivers, Receiver{})
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "empty name") {
		t.Fatalf("err = %v", err)
	}
	m = withReceivers(t)
	m.Application.Receivers = append(m.Application.Receivers, Receiver{Name: "p.Boot"})
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v", err)
	}
	// A receiver colliding with an activity name is rejected too.
	m = withReceivers(t)
	m.Application.Receivers = append(m.Application.Receivers, Receiver{Name: "p.Main"})
	if err := m.Validate(); err == nil {
		t.Fatal("activity-name collision accepted")
	}
}

func TestCloneCopiesReceivers(t *testing.T) {
	m := withReceivers(t)
	cp := m.Clone()
	cp.Application.Receivers[0].Filters[0].Actions[0].Name = "mutated"
	if m.Application.Receivers[0].Filters[0].Actions[0].Name == "mutated" {
		t.Fatal("Clone shares receiver filters")
	}
}
