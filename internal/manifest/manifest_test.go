package manifest

import (
	"strings"
	"testing"
)

func sample(t *testing.T) *Manifest {
	t.Helper()
	m, err := NewBuilder("com.example.app").
		Permission("android.permission.INTERNET").
		Launcher("com.example.app.MainActivity").
		Activity("com.example.app.DetailActivity").
		ActivityWithAction("com.example.app.SearchActivity", "com.example.app.SEARCH").
		ExportedActivity("com.example.app.ShareActivity").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func TestEncodeParseRoundTrip(t *testing.T) {
	m := sample(t)
	data, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !strings.Contains(string(data), `package="com.example.app"`) {
		t.Fatalf("encoded XML missing package attr:\n%s", data)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if back.Package != m.Package {
		t.Errorf("Package = %q, want %q", back.Package, m.Package)
	}
	if got, want := back.ActivityNames(), m.ActivityNames(); len(got) != len(want) {
		t.Fatalf("activities = %v, want %v", got, want)
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("activity[%d] = %q, want %q", i, got[i], want[i])
			}
		}
	}
	if len(back.Permissions) != 1 || back.Permissions[0].Name != "android.permission.INTERNET" {
		t.Errorf("permissions = %+v", back.Permissions)
	}
}

func TestEntryActivity(t *testing.T) {
	m := sample(t)
	entry, err := m.EntryActivity()
	if err != nil {
		t.Fatalf("EntryActivity: %v", err)
	}
	if entry != "com.example.app.MainActivity" {
		t.Errorf("entry = %q", entry)
	}
}

func TestEntryActivityErrors(t *testing.T) {
	noEntry, err := NewBuilder("p").Activity("p.A").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noEntry.EntryActivity(); err == nil {
		t.Error("no launcher: want error")
	}
	two, err := NewBuilder("p").Launcher("p.A").Launcher("p.B").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := two.EntryActivity(); err == nil {
		t.Error("two launchers: want error")
	}
}

func TestActivityForAction(t *testing.T) {
	m := sample(t)
	got, ok := m.ActivityForAction("com.example.app.SEARCH")
	if !ok || got != "com.example.app.SearchActivity" {
		t.Fatalf("ActivityForAction = %q, %v", got, ok)
	}
	if _, ok := m.ActivityForAction("com.example.app.NONE"); ok {
		t.Error("unknown action resolved")
	}
	// MAIN resolves to the launcher.
	got, ok = m.ActivityForAction(ActionMain)
	if !ok || got != "com.example.app.MainActivity" {
		t.Fatalf("ActivityForAction(MAIN) = %q, %v", got, ok)
	}
}

func TestForceStartable(t *testing.T) {
	m := sample(t)
	tests := []struct {
		name string
		want bool
	}{
		{"com.example.app.MainActivity", true}, // MAIN action
		{"com.example.app.DetailActivity", false},
		{"com.example.app.ShareActivity", true}, // exported
		{"com.example.app.Missing", false},
	}
	for _, tc := range tests {
		if got := m.ForceStartable(tc.name); got != tc.want {
			t.Errorf("ForceStartable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPatchAllMain(t *testing.T) {
	m := sample(t)
	patched := m.PatchAllMain()
	for _, a := range patched.ActivityNames() {
		if !patched.ForceStartable(a) {
			t.Errorf("after patch, %s not force-startable", a)
		}
	}
	// Original untouched.
	if m.ForceStartable("com.example.app.DetailActivity") {
		t.Error("PatchAllMain mutated the original manifest")
	}
	// Entry remains unique: patch must not add LAUNCHER categories.
	if entry, err := patched.EntryActivity(); err != nil || entry != "com.example.app.MainActivity" {
		t.Errorf("patched entry = %q, %v", entry, err)
	}
	// Idempotent on the launcher: no duplicate MAIN filter added.
	for _, a := range patched.Application.Activities {
		if a.Name != "com.example.app.MainActivity" {
			continue
		}
		if len(a.Filters) != 1 {
			t.Errorf("launcher filters = %d, want 1", len(a.Filters))
		}
	}
}

func TestValidate(t *testing.T) {
	if _, err := NewBuilder("").Launcher("p.A").Build(); err == nil {
		t.Error("empty package: want error")
	}
	if _, err := NewBuilder("p").Activity("p.A").Activity("p.A").Build(); err == nil {
		t.Error("duplicate activity: want error")
	}
	if _, err := NewBuilder("p").Activity("").Build(); err == nil {
		t.Error("empty activity name: want error")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("not xml")); err == nil {
		t.Error("garbage input: want error")
	}
	if _, err := Parse([]byte(`<manifest><application/></manifest>`)); err == nil {
		t.Error("missing package: want error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := sample(t)
	cp := m.Clone()
	cp.Application.Activities[0].Filters[0].Actions[0].Name = "mutated"
	if m.Application.Activities[0].Filters[0].Actions[0].Name == "mutated" {
		t.Fatal("Clone shares filter slices with original")
	}
}
