package report

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"fragdroid/internal/artifact"
	"fragdroid/internal/corpus"
)

// TestRunStreamedFoldsInOrderWithinWindow drives the streaming scheduler
// with jittered stage timing and checks its whole contract at once: every
// item is folded exactly once, strictly in index order, the in-flight
// high-water mark never exceeds the window, and a ring slot indexed i%window
// is never written by a new item before the previous occupant was folded.
func TestRunStreamedFoldsInOrderWithinWindow(t *testing.T) {
	const n, window = 100, 7
	rng := rand.New(rand.NewSource(42))
	delays := make([]time.Duration, n)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(300)) * time.Microsecond
	}
	slots := make([]int64, window) // current occupant per ring slot
	for i := range slots {
		slots[i] = -1
	}
	var folded []int
	maxLive := runStreamed(n, window, []stage{
		{limit: 4, fn: func(i int) bool {
			if !atomic.CompareAndSwapInt64(&slots[i%window], -1, int64(i)) {
				t.Errorf("slot %d still occupied by %d when item %d arrived", i%window, slots[i%window], i)
			}
			time.Sleep(delays[i])
			return true
		}},
		{limit: 3, fn: func(i int) bool {
			time.Sleep(delays[(i*13)%n])
			return i%10 != 3 // some items drop mid-pipeline; they still fold
		}},
	}, func(i int) {
		folded = append(folded, i)
		atomic.StoreInt64(&slots[i%window], -1)
	})
	if len(folded) != n {
		t.Fatalf("folded %d items, want %d", len(folded), n)
	}
	for i, v := range folded {
		if v != i {
			t.Fatalf("fold out of order at %d: got item %d", i, v)
		}
	}
	if maxLive < 2 || maxLive > window {
		t.Errorf("maxLive=%d, want in [2, %d]", maxLive, window)
	}
}

// TestRunStreamedSerial pins the sequential fallback: window 1 folds items
// on the calling goroutine with at most one in flight.
func TestRunStreamedSerial(t *testing.T) {
	var order []int
	live := runStreamed(5, 1, []stage{
		{limit: 8, fn: func(i int) bool { return true }},
	}, func(i int) { order = append(order, i) })
	if live != 1 {
		t.Errorf("serial maxLive=%d, want 1", live)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Errorf("serial fold order %v", order)
	}
}

// TestStreamedStudyParity is the tentpole's correctness pin: the streaming
// fold must reproduce the positional fold bit for bit on the 217-app study —
// same totals, same packed/fragment partition, same sorted per-category
// breakdown — under a parallel, small-window schedule that forces heavy
// out-of-order completion.
func TestStreamedStudyParity(t *testing.T) {
	positional, err := RunStudyWith(StudyConfig{Seed: 1, Parallel: 8, Cache: artifact.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	streamed, st, err := RunStudyStreamed(StudyConfig{
		Seed: 1, Parallel: 8, Window: 5, Cache: artifact.NewCache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(positional, streamed) {
		t.Errorf("streamed study differs from positional:\npositional %+v\nstreamed   %+v", positional, streamed)
	}
	if RenderStudy(positional) != RenderStudy(streamed) {
		t.Error("rendered study reports differ")
	}
	if st.MaxLive > st.Window {
		t.Errorf("max in-flight %d exceeded window %d", st.MaxLive, st.Window)
	}
	// The headline number the paper reports; drift here means the corpus or
	// the fold changed, not just scheduling.
	if pct := streamed.FragmentSharePct(); pct < 91.2 || pct > 91.4 {
		t.Errorf("fragment share %.2f%%, want ≈91.30%%", pct)
	}
}

// TestStreamedStudyViaRunStudyWith pins the config plumbing: StudyConfig
// with Stream set routes through the streaming path and returns the same
// result object shape.
func TestStreamedStudyViaRunStudyWith(t *testing.T) {
	plain, err := RunStudyWith(StudyConfig{Seed: 3, Parallel: 4, Cache: artifact.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	viaStream, err := RunStudyWith(StudyConfig{Seed: 3, Parallel: 4, Stream: true, Window: 6, Cache: artifact.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, viaStream) {
		t.Error("Stream=true via RunStudyWith diverged from positional run")
	}
}

// TestStreamedLintParity extends the parity pin to the lint fold.
func TestStreamedLintParity(t *testing.T) {
	positional, err := RunLintStudy(StudyConfig{Seed: 1, Parallel: 6, Cache: artifact.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := RunLintStudy(StudyConfig{Seed: 1, Parallel: 6, Stream: true, Window: 4, Cache: artifact.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(positional, streamed) {
		t.Errorf("streamed lint study differs:\npositional %+v\nstreamed   %+v", positional, streamed)
	}
}

// TestStreamedEvalParity runs the 15-app Table I evaluation both ways and
// requires bit-identical rendered tables — coverage averages, the sensitive
// matrix, run metrics. Streaming must be a pure scheduling change.
func TestStreamedEvalParity(t *testing.T) {
	run := func(stream bool) *Evaluation {
		t.Helper()
		cfg := DefaultEvalConfig()
		cfg.Parallel = 6
		cfg.Stream = stream
		cfg.Window = 4
		cfg.Cache = artifact.NewCache()
		ev, err := RunEvaluation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	staged := run(false)
	streamed := run(true)
	if got, want := RenderTable1(streamed.BuildTable1()), RenderTable1(staged.BuildTable1()); got != want {
		t.Errorf("Table I differs under streaming:\n--- staged ---\n%s\n--- streamed ---\n%s", want, got)
	}
	if got, want := RenderTable2(streamed.BuildTable2()), RenderTable2(staged.BuildTable2()); got != want {
		t.Error("Table II differs under streaming")
	}
	a1, f1, fiva1 := staged.BuildTable1().Averages()
	a2, f2, fiva2 := streamed.BuildTable1().Averages()
	if a1 != a2 || f1 != f2 || fiva1 != fiva2 {
		t.Errorf("averages differ: staged (%.2f %.2f %.2f) streamed (%.2f %.2f %.2f)",
			a1, f1, fiva1, a2, f2, fiva2)
	}
}

// TestStreamedFamilyBoundedLiveSet pins the release discipline on a family
// corpus: after a streamed run the artifact cache holds zero live entries
// (every app was evicted at fold time), and the in-flight high-water mark
// respected the window.
func TestStreamedFamilyBoundedLiveSet(t *testing.T) {
	cache := artifact.NewCache()
	fam := corpus.NewFamily(300, 2)
	res, st, err := RunStudyStreamed(StudyConfig{
		Source: fam, Parallel: 8, Window: 6, Cache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 300 || res.Analyzable == 0 {
		t.Fatalf("family study shape off: %+v", res)
	}
	if st.MaxLive > st.Window {
		t.Errorf("max in-flight %d exceeded window %d", st.MaxLive, st.Window)
	}
	if live := cache.Live(); live != 0 {
		t.Errorf("cache holds %d live entries after streamed run, want 0 (release leak)", live)
	}
	// The positional fold over the same lazy source agrees exactly.
	positional, err := RunStudyWith(StudyConfig{Source: fam, Parallel: 8, Cache: artifact.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(positional, res) {
		t.Error("streamed family study diverged from positional fold")
	}
}

// TestStreamedFamilyBoundedHeap is the bounded-memory regression test: the
// sampled peak heap of a streamed family study must not scale with the
// corpus. A 10× larger corpus through the same window has to stay within a
// small factor of the smaller run's peak — under the positional fold it
// grows roughly linearly, which is exactly the regression this test exists
// to catch.
func TestStreamedFamilyBoundedHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-scale heap measurement")
	}
	peakAt := func(n int) uint64 {
		t.Helper()
		_, st, err := RunStudyStreamed(StudyConfig{
			Source: corpus.NewFamily(n, 2), Parallel: 8, Window: 8, Cache: artifact.NewCache(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.PeakHeapBytes
	}
	small := peakAt(150)
	large := peakAt(1500)
	// Floor the baseline: tiny corpora can finish before the runtime grows
	// the heap at all, and GC timing adds noise in both directions.
	floor := uint64(48 << 20)
	base := small
	if base < floor {
		base = floor
	}
	if large > 5*base/2 {
		t.Errorf("peak heap grew with corpus size: %d apps -> %d bytes, %d apps -> %d bytes (limit %d)",
			150, small, 1500, large, 5*base/2)
	}
}
