package report

import (
	"fmt"
	"os"
	"testing"

	"fragdroid/internal/artifact"
	"fragdroid/internal/corpus"
	"fragdroid/internal/explorer"
	"fragdroid/internal/session"
)

// The cold/warm pair below measures the -cache workflow end to end on the
// full 217-app study: cold is the first run against an empty store directory
// (build + encode + write-through), warm is every later run against the same
// directory (load + decode, zero builds). The ratio between the two is the
// speedup a user sees on their second fragstudy invocation; CI asserts the
// warm path stays comfortably ahead.

// studyWith runs the full §VII-A study through the given persistent cache
// and fails the benchmark on any error.
func studyWith(b *testing.B, cache *artifact.Cache) {
	b.Helper()
	if _, err := RunStudyWith(StudyConfig{Seed: 1, Cache: cache}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStudyColdCache: every iteration starts from an empty store
// directory, so it pays the full build plus the write-through encoding.
func BenchmarkStudyColdCache(b *testing.B) {
	root := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := fmt.Sprintf("%s/run%d", root, i)
		cache, err := artifact.NewPersistentCache(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		studyWith(b, cache)
		b.StopTimer()
		os.RemoveAll(dir)
		b.StartTimer()
	}
}

// BenchmarkStudyWarmCache: iterations share one pre-populated store
// directory; each uses a fresh Cache instance, so all artifacts come off
// disk. A final stats check proves no iteration quietly rebuilt anything.
func BenchmarkStudyWarmCache(b *testing.B) {
	dir := b.TempDir()
	seed, err := artifact.NewPersistentCache(dir)
	if err != nil {
		b.Fatal(err)
	}
	studyWith(b, seed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cache, err := artifact.NewPersistentCache(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		studyWith(b, cache)
	}
	b.StopTimer()

	check, err := artifact.NewPersistentCache(dir)
	if err != nil {
		b.Fatal(err)
	}
	res, err := RunStudyWith(StudyConfig{Seed: 1, Cache: check})
	if err != nil {
		b.Fatal(err)
	}
	if st := check.Stats(); st.Builds != 0 || st.DiskMisses != 0 {
		b.Fatalf("warm run was not served from disk: %+v", st)
	}
	// §VII-A headline: the share of analyzable study apps using fragments.
	b.ReportMetric(res.FragmentSharePct(), "fragment_share_pct")
}

// BenchmarkEvaluationSnapshots is BenchmarkEvaluationWarmCache with the
// device-snapshot memo enabled: each iteration runs the Table I evaluation
// with a fresh shared memo, so route prefixes restore instead of
// re-executing. The custom metrics report the memo's effect directly:
// hit_rate is the share of test cases resumed from a snapshot, and
// step_reduction the factor by which executed interpreter steps shrank
// (logical steps over executed steps) — the single-core acceptance number.
func BenchmarkEvaluationSnapshots(b *testing.B) {
	dir := b.TempDir()
	seed, err := artifact.NewPersistentCache(dir)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultEvalConfig()
	cfg.Cache = seed
	if _, err := RunEvaluation(cfg); err != nil {
		b.Fatal(err)
	}
	var last *Evaluation
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cache, err := artifact.NewPersistentCache(dir)
		if err != nil {
			b.Fatal(err)
		}
		runCfg := DefaultEvalConfig()
		runCfg.Cache = cache
		runCfg.Snapshots = session.NewSnapshotMemo(0)
		b.StartTimer()
		ev, err := RunEvaluation(runCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = ev
	}
	b.StopTimer()
	tot := last.TotalStats()
	if tot.SnapshotHits == 0 || tot.StepsSaved == 0 {
		b.Fatalf("snapshot memo was never hit: %+v", tot)
	}
	b.ReportMetric(float64(tot.SnapshotHits)/float64(tot.TestCases), "hit_rate")
	b.ReportMetric(float64(tot.Steps)/float64(tot.Steps-tot.StepsSaved), "step_reduction")
}

// BenchmarkEvaluationPersistentWarm is the tentpole's headline number: the
// Table I evaluation against a store already holding every full-route
// snapshot. Each iteration uses a fresh memo (as a new process would), so all
// resumed prefixes are served by disk read-through — the evaluation starts
// warm instead of warming itself up. The persistent_hit_rate metric is the
// share of test cases resumed from a snapshot; disk_hits counts payloads
// actually decoded off disk (zero would mean the bench regressed to the
// in-memory path).
func BenchmarkEvaluationPersistentWarm(b *testing.B) {
	dir := b.TempDir()
	seed, err := artifact.NewPersistentCache(dir)
	if err != nil {
		b.Fatal(err)
	}
	scfg := DefaultEvalConfig()
	scfg.Cache = seed
	scfg.Snapshots = session.NewSnapshotMemo(0)
	scfg.PersistSnapshots = true
	if _, err := RunEvaluation(scfg); err != nil {
		b.Fatal(err)
	}
	var last *Evaluation
	var lastMemo *session.SnapshotMemo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cache, err := artifact.NewPersistentCache(dir)
		if err != nil {
			b.Fatal(err)
		}
		runCfg := DefaultEvalConfig()
		runCfg.Cache = cache
		runCfg.Snapshots = session.NewSnapshotMemo(0)
		runCfg.PersistSnapshots = true
		lastMemo = runCfg.Snapshots
		b.StartTimer()
		ev, err := RunEvaluation(runCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = ev
	}
	b.StopTimer()
	tot := last.TotalStats()
	if tot.SnapshotHits == 0 || tot.StepsSaved == 0 {
		b.Fatalf("persistent snapshots were never hit: %+v", tot)
	}
	hits, _, _ := lastMemo.DiskStats()
	if hits == 0 {
		b.Fatal("no snapshot came off disk; the persistent path was not exercised")
	}
	b.ReportMetric(float64(tot.SnapshotHits)/float64(tot.TestCases), "hit_rate")
	b.ReportMetric(float64(hits), "disk_hits")
	// The headline metrics ride along in BENCH_PR6.json as proof the warm
	// path changed nothing the evaluation reports: coverage averages and the
	// Table II aggregates must match the memo-off numbers bit for bit.
	act, frag, _ := last.BuildTable1().Averages()
	st := last.BuildTable2().ComputeStats()
	b.ReportMetric(act, "activity_pct")
	b.ReportMetric(frag, "fragment_pct")
	b.ReportMetric(float64(st.DistinctAPIs), "apis")
	b.ReportMetric(float64(st.TotalInvocations), "invocations")
}

// benchFleetExplore runs the explorer over one input-gated corpus app with
// the given fleet size; the 1/2/4 variants below give the fleet-speedup curve
// recorded in BENCH_PR6.json. On a single-core host the curve is flat — the
// fleet trades idle cores for warm snapshots, and there are no idle cores —
// so the acceptance ratio is only meaningful on multi-core hardware.
func benchFleetExplore(b *testing.B, devices int) {
	b.Helper()
	app, err := corpus.BuildApp(corpus.PaperSpec(corpus.PaperRows()[0]))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := explorer.DefaultConfig()
		cfg.Snapshots = session.NewSnapshotMemo(0)
		cfg.Devices = devices
		b.StartTimer()
		if _, err := explorer.Explore(app, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFleetExplore1(b *testing.B) { benchFleetExplore(b, 1) }
func BenchmarkFleetExplore2(b *testing.B) { benchFleetExplore(b, 2) }
func BenchmarkFleetExplore4(b *testing.B) { benchFleetExplore(b, 4) }

// BenchmarkEvaluationWarmCache tracks the exploration-dominated Table I run
// against a warm store: the interesting number here is how little of the
// wall-clock the artifact layer costs once builds are off the critical path.
func BenchmarkEvaluationWarmCache(b *testing.B) {
	dir := b.TempDir()
	seed, err := artifact.NewPersistentCache(dir)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultEvalConfig()
	cfg.Cache = seed
	if _, err := RunEvaluation(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cache, err := artifact.NewPersistentCache(dir)
		if err != nil {
			b.Fatal(err)
		}
		runCfg := DefaultEvalConfig()
		runCfg.Cache = cache
		b.StartTimer()
		if _, err := RunEvaluation(runCfg); err != nil {
			b.Fatal(err)
		}
	}
}
