package report

import (
	"fmt"
	"os"
	"testing"

	"fragdroid/internal/artifact"
	"fragdroid/internal/session"
)

// The cold/warm pair below measures the -cache workflow end to end on the
// full 217-app study: cold is the first run against an empty store directory
// (build + encode + write-through), warm is every later run against the same
// directory (load + decode, zero builds). The ratio between the two is the
// speedup a user sees on their second fragstudy invocation; CI asserts the
// warm path stays comfortably ahead.

// studyWith runs the full §VII-A study through the given persistent cache
// and fails the benchmark on any error.
func studyWith(b *testing.B, cache *artifact.Cache) {
	b.Helper()
	if _, err := RunStudyWith(StudyConfig{Seed: 1, Cache: cache}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStudyColdCache: every iteration starts from an empty store
// directory, so it pays the full build plus the write-through encoding.
func BenchmarkStudyColdCache(b *testing.B) {
	root := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := fmt.Sprintf("%s/run%d", root, i)
		cache, err := artifact.NewPersistentCache(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		studyWith(b, cache)
		b.StopTimer()
		os.RemoveAll(dir)
		b.StartTimer()
	}
}

// BenchmarkStudyWarmCache: iterations share one pre-populated store
// directory; each uses a fresh Cache instance, so all artifacts come off
// disk. A final stats check proves no iteration quietly rebuilt anything.
func BenchmarkStudyWarmCache(b *testing.B) {
	dir := b.TempDir()
	seed, err := artifact.NewPersistentCache(dir)
	if err != nil {
		b.Fatal(err)
	}
	studyWith(b, seed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cache, err := artifact.NewPersistentCache(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		studyWith(b, cache)
	}
	b.StopTimer()

	check, err := artifact.NewPersistentCache(dir)
	if err != nil {
		b.Fatal(err)
	}
	studyWith(b, check)
	if st := check.Stats(); st.Builds != 0 || st.DiskMisses != 0 {
		b.Fatalf("warm run was not served from disk: %+v", st)
	}
}

// BenchmarkEvaluationSnapshots is BenchmarkEvaluationWarmCache with the
// device-snapshot memo enabled: each iteration runs the Table I evaluation
// with a fresh shared memo, so route prefixes restore instead of
// re-executing. The custom metrics report the memo's effect directly:
// hit_rate is the share of test cases resumed from a snapshot, and
// step_reduction the factor by which executed interpreter steps shrank
// (logical steps over executed steps) — the single-core acceptance number.
func BenchmarkEvaluationSnapshots(b *testing.B) {
	dir := b.TempDir()
	seed, err := artifact.NewPersistentCache(dir)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultEvalConfig()
	cfg.Cache = seed
	if _, err := RunEvaluation(cfg); err != nil {
		b.Fatal(err)
	}
	var last *Evaluation
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cache, err := artifact.NewPersistentCache(dir)
		if err != nil {
			b.Fatal(err)
		}
		runCfg := DefaultEvalConfig()
		runCfg.Cache = cache
		runCfg.Snapshots = session.NewSnapshotMemo(0)
		b.StartTimer()
		ev, err := RunEvaluation(runCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = ev
	}
	b.StopTimer()
	tot := last.TotalStats()
	if tot.SnapshotHits == 0 || tot.StepsSaved == 0 {
		b.Fatalf("snapshot memo was never hit: %+v", tot)
	}
	b.ReportMetric(float64(tot.SnapshotHits)/float64(tot.TestCases), "hit_rate")
	b.ReportMetric(float64(tot.Steps)/float64(tot.Steps-tot.StepsSaved), "step_reduction")
}

// BenchmarkEvaluationWarmCache tracks the exploration-dominated Table I run
// against a warm store: the interesting number here is how little of the
// wall-clock the artifact layer costs once builds are off the critical path.
func BenchmarkEvaluationWarmCache(b *testing.B) {
	dir := b.TempDir()
	seed, err := artifact.NewPersistentCache(dir)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultEvalConfig()
	cfg.Cache = seed
	if _, err := RunEvaluation(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cache, err := artifact.NewPersistentCache(dir)
		if err != nil {
			b.Fatal(err)
		}
		runCfg := DefaultEvalConfig()
		runCfg.Cache = cache
		b.StartTimer()
		if _, err := RunEvaluation(runCfg); err != nil {
			b.Fatal(err)
		}
	}
}
