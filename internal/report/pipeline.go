package report

import "sync"

// The corpus runs are staged pipelines: every app flows through up to three
// stages — build (corpus generation or store load), extract (static
// analysis), run (dynamic exploration or scan) — followed by a sequential
// fold over positional result slots. Stages have independent concurrency
// limits, so an app can be exploring while the next one is still building:
// unlike a flat per-app worker pool, a slow stage only throttles itself, and
// with a persistent artifact store the disk reads of later apps overlap the
// compute of earlier ones.
//
// Determinism is unaffected by any of this. Stage functions write only to
// their own index's slots, the fold always walks the slots in dataset order,
// and per-app errors are aggregated with errors.Join over the positional
// error slice, so every derived table is identical to a sequential run.

// StageLimits bounds the per-stage concurrency of a pipeline run. Zero
// fields fall back to the coarse Parallel knob of the owning config, so
// existing callers that only set Parallel keep their exact behaviour.
type StageLimits struct {
	// Build bounds concurrent app builds (or artifact-store loads).
	Build int
	// Extract bounds concurrent static extractions.
	Extract int
	// Run bounds concurrent dynamic runs (explorations, scans, lints). Each
	// run owns a simulated device, so this is the stage that controls peak
	// memory.
	Run int
}

// withDefault fills zero fields with the coarse parallelism knob.
func (l StageLimits) withDefault(parallel int) StageLimits {
	if l.Build == 0 {
		l.Build = parallel
	}
	if l.Extract == 0 {
		l.Extract = parallel
	}
	if l.Run == 0 {
		l.Run = parallel
	}
	return l
}

// serial reports whether every stage is capped at one worker; such runs skip
// goroutines entirely and drive each item through all stages in order.
func (l StageLimits) serial() bool {
	return l.Build <= 1 && l.Extract <= 1 && l.Run <= 1
}

// stage couples one pipeline stage's concurrency limit with its work
// function. The function receives the item index and reports whether the
// item continues to the next stage; a false return (error or early outcome,
// recorded by the closure in its positional slot) drops the item.
type stage struct {
	limit int
	fn    func(i int) bool
}

// runStaged drives items 0..n-1 through the stages. Each item advances
// through the stages in order without barriers between items; per-stage
// semaphores bound how many items occupy a stage at once. With every limit
// at most one the items run strictly sequentially on the calling goroutine.
func runStaged(n int, stages []stage) {
	serial := true
	for _, s := range stages {
		if s.limit > 1 {
			serial = false
		}
	}
	if serial {
		for i := 0; i < n; i++ {
			for _, s := range stages {
				if !s.fn(i) {
					break
				}
			}
		}
		return
	}
	sems := make([]chan struct{}, len(stages))
	for j, s := range stages {
		if s.limit > 0 {
			sems[j] = make(chan struct{}, s.limit)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j, s := range stages {
				if sems[j] != nil {
					sems[j] <- struct{}{}
				}
				ok := s.fn(i)
				if sems[j] != nil {
					<-sems[j]
				}
				if !ok {
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
