package report

import (
	"sync"
	"sync/atomic"
)

// The corpus runs are staged pipelines: every app flows through up to three
// stages — build (corpus generation or store load), extract (static
// analysis), run (dynamic exploration or scan) — followed by a sequential
// fold over positional result slots. Stages have independent concurrency
// limits, so an app can be exploring while the next one is still building:
// unlike a flat per-app worker pool, a slow stage only throttles itself, and
// with a persistent artifact store the disk reads of later apps overlap the
// compute of earlier ones.
//
// Determinism is unaffected by any of this. Stage functions write only to
// their own index's slots, the fold always walks the slots in dataset order,
// and per-app errors are aggregated with errors.Join over the positional
// error slice, so every derived table is identical to a sequential run.

// StageLimits bounds the per-stage concurrency of a pipeline run. Zero
// fields fall back to the coarse Parallel knob of the owning config, so
// existing callers that only set Parallel keep their exact behaviour.
type StageLimits struct {
	// Build bounds concurrent app builds (or artifact-store loads).
	Build int
	// Extract bounds concurrent static extractions.
	Extract int
	// Run bounds concurrent dynamic runs (explorations, scans, lints). Each
	// run owns a simulated device, so this is the stage that controls peak
	// memory.
	Run int
}

// withDefault fills zero fields with the coarse parallelism knob.
func (l StageLimits) withDefault(parallel int) StageLimits {
	if l.Build == 0 {
		l.Build = parallel
	}
	if l.Extract == 0 {
		l.Extract = parallel
	}
	if l.Run == 0 {
		l.Run = parallel
	}
	return l
}

// serial reports whether every stage is capped at one worker; such runs skip
// goroutines entirely and drive each item through all stages in order.
func (l StageLimits) serial() bool {
	return l.Build <= 1 && l.Extract <= 1 && l.Run <= 1
}

// stage couples one pipeline stage's concurrency limit with its work
// function. The function receives the item index and reports whether the
// item continues to the next stage; a false return (error or early outcome,
// recorded by the closure in its positional slot) drops the item.
type stage struct {
	limit int
	fn    func(i int) bool
}

// runStaged drives items 0..n-1 through the stages. Each item advances
// through the stages in order without barriers between items; per-stage
// semaphores bound how many items occupy a stage at once. With every limit
// at most one the items run strictly sequentially on the calling goroutine.
// runStreamed drives items 0..n-1 through the stages like runStaged, but
// with two differences that turn the positional fold into a streaming one:
//
//   - Admission control. At most window items are in flight (admitted, not
//     yet folded) at any moment, enforced by a counting semaphore whose token
//     is released only AFTER the item's fold completes. A worker goroutine
//     exists only per in-flight item, so a 10k-app corpus runs on window
//     goroutines, not 10k.
//
//   - Incremental fold. Each completed item is handed to fold exactly once,
//     in index order, on the calling goroutine — the same sequential,
//     deterministic fold discipline as the positional slices, minus the
//     slices. Out-of-order completions park in a pending set bounded by
//     window.
//
// Together these give callers a ring-buffer contract: state for item i may
// live in a slot indexed i%window, because item i+window is admitted only
// after fold(i) has returned and released its token — a slot is never
// touched by two live items at once.
//
// The return value is the high-water mark of in-flight items (≤ window by
// construction); bounded-memory tests assert on it. With window <= 1 or
// every stage limit at 1, items run strictly sequentially on the calling
// goroutine.
func runStreamed(n, window int, stages []stage, fold func(i int)) int {
	if n <= 0 {
		return 0
	}
	if window < 1 {
		window = 1
	}
	serial := window == 1
	if !serial {
		serial = true
		for _, s := range stages {
			if s.limit > 1 {
				serial = false
			}
		}
	}
	if serial {
		for i := 0; i < n; i++ {
			for _, s := range stages {
				if !s.fn(i) {
					break
				}
			}
			fold(i)
		}
		return 1
	}
	sems := make([]chan struct{}, len(stages))
	for j, s := range stages {
		if s.limit > 0 {
			sems[j] = make(chan struct{}, s.limit)
		}
	}
	admit := make(chan struct{}, window)
	done := make(chan int)
	var admitted atomic.Int64
	go func() {
		for i := 0; i < n; i++ {
			admit <- struct{}{}
			admitted.Add(1)
			go func(i int) {
				for j, s := range stages {
					if sems[j] != nil {
						sems[j] <- struct{}{}
					}
					ok := s.fn(i)
					if sems[j] != nil {
						<-sems[j]
					}
					if !ok {
						break
					}
				}
				done <- i
			}(i)
		}
	}()
	next := 0
	maxLive := 0
	pending := make(map[int]bool, window)
	for next < n {
		i := <-done
		pending[i] = true
		if live := int(admitted.Load()) - next; live > maxLive {
			maxLive = live
		}
		for pending[next] {
			delete(pending, next)
			fold(next)
			next++
			<-admit
		}
	}
	return maxLive
}

func runStaged(n int, stages []stage) {
	serial := true
	for _, s := range stages {
		if s.limit > 1 {
			serial = false
		}
	}
	if serial {
		for i := 0; i < n; i++ {
			for _, s := range stages {
				if !s.fn(i) {
					break
				}
			}
		}
		return
	}
	sems := make([]chan struct{}, len(stages))
	for j, s := range stages {
		if s.limit > 0 {
			sems[j] = make(chan struct{}, s.limit)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j, s := range stages {
				if sems[j] != nil {
					sems[j] <- struct{}{}
				}
				ok := s.fn(i)
				if sems[j] != nil {
					<-sems[j]
				}
				if !ok {
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
