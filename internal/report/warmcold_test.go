package report

import (
	"reflect"
	"testing"

	"fragdroid/internal/artifact"
)

// TestWarmCacheMetricParity is the end-to-end guarantee behind the -cache
// flag: a run served entirely from the persistent store produces bit-
// identical headline metrics to the cold run that populated it — the study
// percentages, the Table I averages, and the Table II aggregates. The warm
// run is additionally required to perform zero builds and zero extractions,
// so the parity is real (decoded artifacts, not rebuilt ones).
func TestWarmCacheMetricParity(t *testing.T) {
	dir := t.TempDir()
	cold, err := artifact.NewPersistentCache(dir)
	if err != nil {
		t.Fatal(err)
	}

	coldCfg := DefaultEvalConfig()
	coldCfg.Cache = cold
	coldEval, err := RunEvaluation(coldCfg)
	if err != nil {
		t.Fatalf("cold RunEvaluation: %v", err)
	}
	coldStudy, err := RunStudyWith(StudyConfig{Seed: 1, Cache: cold})
	if err != nil {
		t.Fatalf("cold RunStudyWith: %v", err)
	}
	if st := cold.Stats(); st.Builds == 0 || st.DiskWrites == 0 {
		t.Fatalf("cold run did not populate the store: %+v", st)
	}

	warm, err := artifact.NewPersistentCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	warmCfg := DefaultEvalConfig()
	warmCfg.Cache = warm
	warmEval, err := RunEvaluation(warmCfg)
	if err != nil {
		t.Fatalf("warm RunEvaluation: %v", err)
	}
	warmStudy, err := RunStudyWith(StudyConfig{Seed: 1, Cache: warm})
	if err != nil {
		t.Fatalf("warm RunStudyWith: %v", err)
	}
	st := warm.Stats()
	if st.Builds != 0 || st.Extractions != 0 {
		t.Fatalf("warm run rebuilt artifacts: %+v", st)
	}
	if st.DiskMisses != 0 {
		t.Fatalf("warm run missed the store: %+v", st)
	}

	// Study: the partition and headline percentage must match exactly.
	if !reflect.DeepEqual(coldStudy, warmStudy) {
		t.Errorf("study results differ:\ncold: %+v\nwarm: %+v", coldStudy, warmStudy)
	}
	if pct := warmStudy.FragmentSharePct(); pct != coldStudy.FragmentSharePct() {
		t.Errorf("fragment-usage %% differs: cold %.2f, warm %.2f",
			coldStudy.FragmentSharePct(), pct)
	}

	// Table I: per-row equality, then the published averages.
	t1c, t1w := coldEval.BuildTable1(), warmEval.BuildTable1()
	if !reflect.DeepEqual(t1c, t1w) {
		t.Error("Table I differs between cold and warm runs")
	}
	ac, fc, vc := t1c.Averages()
	aw, fw, vw := t1w.Averages()
	if ac != aw || fc != fw || vc != vw {
		t.Errorf("Table I averages differ: cold (%v %v %v), warm (%v %v %v)",
			ac, fc, vc, aw, fw, vw)
	}

	// Table II: the §VII-C aggregates (46 distinct APIs, 269 invocation
	// relations in the cold pin) must carry over bit-identically.
	sc := coldEval.BuildTable2().ComputeStats()
	sw := warmEval.BuildTable2().ComputeStats()
	if sc != sw {
		t.Errorf("Table II stats differ: cold %+v, warm %+v", sc, sw)
	}
}
