package report

import (
	"strings"
	"testing"
)

func TestComparisonShowsFragmentGap(t *testing.T) {
	cmp, err := RunComparison(DefaultEvalConfig(), 7, 1200)
	if err != nil {
		t.Fatalf("RunComparison: %v", err)
	}
	if len(cmp.Rows) != 3 {
		t.Fatalf("rows = %d", len(cmp.Rows))
	}
	byName := make(map[string]ComparisonRow)
	for _, r := range cmp.Rows {
		byName[r.System] = r
	}
	fd := byName["FragDroid"]
	act := byName["Activity-level MBT"]
	mk := byName["Monkey"]

	if fd.FragmentAPIRelations == 0 {
		t.Fatal("FragDroid observed no fragment relations")
	}
	// The paper's core claim: Activity-level tools miss fragment API calls.
	if act.FragmentAPIRelations >= fd.FragmentAPIRelations {
		t.Errorf("activity baseline fragment relations %d >= FragDroid %d",
			act.FragmentAPIRelations, fd.FragmentAPIRelations)
	}
	if act.MissedFragmentAPIPct < 9.6 {
		t.Errorf("activity baseline missed %.1f%% of FragDroid relations, paper claims >=9.6%%",
			act.MissedFragmentAPIPct)
	}
	// Monkey does worse than or similar to the systematic baseline and far
	// worse than FragDroid on fragment-associated relations.
	if mk.FragmentAPIRelations > fd.FragmentAPIRelations {
		t.Errorf("monkey fragment relations %d > FragDroid %d",
			mk.FragmentAPIRelations, fd.FragmentAPIRelations)
	}
	if mk.MissedFragmentAPIPct <= 0 {
		t.Error("monkey missed nothing, implausible")
	}
	// FragDroid's own missed share is zero by construction.
	if fd.MissedFragmentAPIPct != 0 {
		t.Errorf("FragDroid missed %.1f%% of its own relations", fd.MissedFragmentAPIPct)
	}

	out := RenderComparison(cmp)
	for _, want := range []string{"FragDroid", "Activity-level MBT", "Monkey", "Missed"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
