package report

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"fragdroid/internal/apk"
	"fragdroid/internal/corpus"
)

// streamWindow derives the default in-flight window from the stage limits:
// twice the widest stage, so the fold catching up never starves a stage,
// with a small floor for near-serial configurations.
func streamWindow(l StageLimits) int {
	w := l.Build
	if l.Extract > w {
		w = l.Extract
	}
	if l.Run > w {
		w = l.Run
	}
	w *= 2
	if w < 4 {
		w = 4
	}
	return w
}

// StreamStats reports how a streamed corpus run behaved: throughput, the
// admission window, the observed in-flight high-water mark (≤ Window by
// construction — the bound the bounded-memory tests assert), and the peak
// sampled heap. PeakHeapBytes is a sampled maximum of runtime.MemStats
// HeapAlloc over the run, not a guaranteed supremum; it is the number
// BENCH_PR10.json records and the regression test compares across corpus
// scales.
type StreamStats struct {
	Apps          int           `json:"apps"`
	Window        int           `json:"window"`
	MaxLive       int           `json:"max_live"`
	Elapsed       time.Duration `json:"elapsed_ns"`
	AppsPerSec    float64       `json:"apps_per_sec"`
	PeakHeapBytes uint64        `json:"peak_heap_bytes"`
}

// heapSampler polls runtime.ReadMemStats on a fixed cadence and tracks the
// peak HeapAlloc. One more sample is taken at stop, so short runs still get
// at least one reading.
type heapSampler struct {
	stopc chan struct{}
	donec chan struct{}
	peak  uint64
}

func startHeapSampler(interval time.Duration) *heapSampler {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	h := &heapSampler{stopc: make(chan struct{}), donec: make(chan struct{})}
	go func() {
		defer close(h.donec)
		var ms runtime.MemStats
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > h.peak {
					h.peak = ms.HeapAlloc
				}
			case <-h.stopc:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > h.peak {
					h.peak = ms.HeapAlloc
				}
				return
			}
		}
	}()
	return h
}

// stop ends sampling and returns the peak observed heap.
func (h *heapSampler) stop() uint64 {
	close(h.stopc)
	<-h.donec
	return h.peak
}

// RunStudyStreamed performs the fragment-usage study as a streaming,
// bounded-memory pipeline — the corpus-scale path behind `fragstudy -corpus
// family -stream`. The scheduler admits at most Window apps at a time; each
// admitted app materializes its spec from the lazy source, builds (or
// store-loads), is scanned, folds into the aggregate in dataset order, and
// is then released: its artifact-cache entries evicted, its ring slot
// cleared, so the spec, the built app, its compiled IR program and its
// extraction all become garbage the moment the fold has consumed them. Peak
// heap is O(Window · app size) however large the corpus — the property the
// bounded-heap regression test pins — and the resulting StudyResult is
// bit-identical to RunStudyWith on the same corpus because both paths run
// the same studyFold in the same order.
func RunStudyStreamed(cfg StudyConfig) (*StudyResult, *StreamStats, error) {
	src := cfg.source()
	n := src.Len()
	cache := cfg.cacheOrDefault()
	parallel := cfg.Parallel
	if parallel < 1 {
		parallel = 1
	}
	limits := cfg.Stages.withDefault(parallel)
	window := cfg.Window
	if window <= 0 {
		window = streamWindow(limits)
	}

	// Ring slots: item i lives in slot i%window. runStreamed guarantees item
	// i+window is admitted only after fold(i) returned, so a slot is never
	// shared by two live items.
	type slot struct {
		spec      *corpus.AppSpec
		app       *apk.App
		packed    bool
		fragments bool
		err       error
	}
	slots := make([]slot, window)
	fold := newStudyFold(n)
	var errs []error

	sampler := startHeapSampler(0)
	start := time.Now()
	maxLive := runStreamed(n, window, []stage{
		{limit: limits.Build, fn: func(i int) bool {
			s := &slots[i%window]
			*s = slot{spec: src.At(i)}
			app, err := cache.App(s.spec)
			if errors.Is(err, apk.ErrPacked) {
				s.packed = true
				return false
			}
			if err != nil {
				s.err = fmt.Errorf("report: study build %s: %w", s.spec.Package, err)
				return false
			}
			s.app = app
			return true
		}},
		{limit: limits.Run, fn: func(i int) bool {
			s := &slots[i%window]
			s.fragments = usesFragments(s.app)
			return true
		}},
	}, func(i int) {
		s := &slots[i%window]
		if s.err != nil {
			errs = append(errs, s.err)
		} else {
			fold.add(s.spec.Package, s.packed, s.fragments)
		}
		// Release: drop the cache's entries and the slot's references. The
		// app, its program and everything hanging off them are now
		// unreachable; the persistent store (if any) keeps its copy.
		cache.Evict(s.spec)
		*s = slot{}
	})
	elapsed := time.Since(start)
	peak := sampler.stop()

	if err := errors.Join(errs...); err != nil {
		return nil, nil, err
	}
	st := &StreamStats{
		Apps:          n,
		Window:        window,
		MaxLive:       maxLive,
		Elapsed:       elapsed,
		PeakHeapBytes: peak,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		st.AppsPerSec = float64(n) / secs
	}
	return fold.finish(), st, nil
}

// RenderStreamStats renders the streamed-run summary line block.
func RenderStreamStats(st *StreamStats) string {
	return fmt.Sprintf(
		"streamed: %d apps in %.2fs (%.1f apps/sec), window %d (max in-flight %d), peak heap %.1f MiB",
		st.Apps, st.Elapsed.Seconds(), st.AppsPerSec, st.Window, st.MaxLive,
		float64(st.PeakHeapBytes)/(1<<20))
}
