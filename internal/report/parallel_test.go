package report

import (
	"reflect"
	"testing"
)

// TestParallelEvaluationMatchesSequential checks that running the corpus on
// a pool of simulated devices yields byte-identical tables: every per-app
// exploration is deterministic and self-contained.
func TestParallelEvaluationMatchesSequential(t *testing.T) {
	seq := evaluation(t) // cached sequential run

	cfg := DefaultEvalConfig()
	cfg.Parallel = 4
	par, err := RunEvaluation(cfg)
	if err != nil {
		t.Fatalf("parallel RunEvaluation: %v", err)
	}

	st1 := seq.BuildTable1()
	st2 := par.BuildTable1()
	if !reflect.DeepEqual(st1, st2) {
		t.Fatal("parallel Table I differs from sequential")
	}
	m1 := seq.BuildTable2()
	m2 := par.BuildTable2()
	if !reflect.DeepEqual(m1.Apps, m2.Apps) || !reflect.DeepEqual(m1.APIs, m2.APIs) {
		t.Fatal("parallel Table II axes differ")
	}
	for _, api := range m1.APIs {
		for _, app := range m1.Apps {
			if m1.Cell(api, app) != m2.Cell(api, app) {
				t.Fatalf("cell (%s, %s) differs", api, app)
			}
		}
	}
	if m1.ComputeStats() != m2.ComputeStats() {
		t.Fatal("parallel stats differ")
	}
}
