package report

import (
	"reflect"
	"testing"

	"fragdroid/internal/artifact"
)

// TestParallelEvaluationMatchesSequential checks that running the corpus on
// a pool of simulated devices yields byte-identical tables: every per-app
// exploration is deterministic and self-contained.
func TestParallelEvaluationMatchesSequential(t *testing.T) {
	seq := evaluation(t) // cached sequential run

	cfg := DefaultEvalConfig()
	cfg.Parallel = 4
	par, err := RunEvaluation(cfg)
	if err != nil {
		t.Fatalf("parallel RunEvaluation: %v", err)
	}

	st1 := seq.BuildTable1()
	st2 := par.BuildTable1()
	if !reflect.DeepEqual(st1, st2) {
		t.Fatal("parallel Table I differs from sequential")
	}
	m1 := seq.BuildTable2()
	m2 := par.BuildTable2()
	if !reflect.DeepEqual(m1.Apps, m2.Apps) || !reflect.DeepEqual(m1.APIs, m2.APIs) {
		t.Fatal("parallel Table II axes differ")
	}
	for _, api := range m1.APIs {
		for _, app := range m1.Apps {
			if m1.Cell(api, app) != m2.Cell(api, app) {
				t.Fatalf("cell (%s, %s) differs", api, app)
			}
		}
	}
	if m1.ComputeStats() != m2.ComputeStats() {
		t.Fatal("parallel stats differ")
	}
}

// TestParallelStudyMatchesSequential checks that the 217-app study produces
// the same StudyResult — including the ByCategory order — on a worker pool
// as it does serially. Both runs get fresh caches so neither is served warm
// results from the other.
func TestParallelStudyMatchesSequential(t *testing.T) {
	seq, err := RunStudyWith(StudyConfig{Seed: 1, Parallel: 1, Cache: artifact.NewCache()})
	if err != nil {
		t.Fatalf("sequential RunStudyWith: %v", err)
	}
	par, err := RunStudyWith(StudyConfig{Seed: 1, Parallel: 8, Cache: artifact.NewCache()})
	if err != nil {
		t.Fatalf("parallel RunStudyWith: %v", err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel study differs from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestStagedLimitsMatchSequential checks that uneven per-stage concurrency
// limits — the pipelined scheduler's reason to exist — still produce the
// exact sequential tables and study result. Limits are chosen so every
// combination of "stage saturated / stage serial" occurs at least once.
func TestStagedLimitsMatchSequential(t *testing.T) {
	seq := evaluation(t)

	for _, limits := range []StageLimits{
		{Build: 4, Extract: 1, Run: 2},
		{Build: 1, Extract: 3, Run: 1},
		{Build: 2, Extract: 2, Run: 4},
	} {
		cfg := DefaultEvalConfig()
		cfg.Stages = limits
		par, err := RunEvaluation(cfg)
		if err != nil {
			t.Fatalf("staged %+v RunEvaluation: %v", limits, err)
		}
		if !reflect.DeepEqual(seq.BuildTable1(), par.BuildTable1()) {
			t.Fatalf("staged %+v Table I differs from sequential", limits)
		}
		if seq.BuildTable2().ComputeStats() != par.BuildTable2().ComputeStats() {
			t.Fatalf("staged %+v Table II stats differ from sequential", limits)
		}
	}

	want, err := RunStudyWith(StudyConfig{Seed: 1, Cache: artifact.NewCache()})
	if err != nil {
		t.Fatalf("sequential RunStudyWith: %v", err)
	}
	got, err := RunStudyWith(StudyConfig{
		Seed:   1,
		Stages: StageLimits{Build: 6, Run: 2},
		Cache:  artifact.NewCache(),
	})
	if err != nil {
		t.Fatalf("staged RunStudyWith: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("staged study differs from sequential:\nseq: %+v\nstg: %+v", want, got)
	}
}

// TestEvaluationCacheZeroRebuilds checks that a second evaluation against a
// warmed cache performs no app builds and no static extractions, and that
// its headline numbers are bit-identical to the first (cold) run.
func TestEvaluationCacheZeroRebuilds(t *testing.T) {
	cache := artifact.NewCache()
	cfg := DefaultEvalConfig()
	cfg.Cache = cache

	ev1, err := RunEvaluation(cfg)
	if err != nil {
		t.Fatalf("cold RunEvaluation: %v", err)
	}
	s1 := cache.Stats()
	if s1.Builds == 0 || s1.Extractions == 0 {
		t.Fatalf("cold run did no work: %+v", s1)
	}

	ev2, err := RunEvaluation(cfg)
	if err != nil {
		t.Fatalf("warm RunEvaluation: %v", err)
	}
	s2 := cache.Stats()
	if s2.Builds != s1.Builds {
		t.Errorf("warm run rebuilt apps: %d -> %d builds", s1.Builds, s2.Builds)
	}
	if s2.Extractions != s1.Extractions {
		t.Errorf("warm run re-extracted: %d -> %d extractions", s1.Extractions, s2.Extractions)
	}
	if s2.Hits <= s1.Hits {
		t.Errorf("warm run recorded no cache hits: %+v -> %+v", s1, s2)
	}

	a1, f1, v1 := ev1.BuildTable1().Averages()
	a2, f2, v2 := ev2.BuildTable1().Averages()
	if a1 != a2 || f1 != f2 || v1 != v2 {
		t.Errorf("cached Table I averages differ: (%v %v %v) vs (%v %v %v)", a1, f1, v1, a2, f2, v2)
	}
	if ev1.BuildTable2().ComputeStats() != ev2.BuildTable2().ComputeStats() {
		t.Error("cached Table II stats differ")
	}
}
