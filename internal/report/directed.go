package report

import (
	"fmt"
	"sort"
	"strings"

	"fragdroid/internal/corpus"
	"fragdroid/internal/device"
	"fragdroid/internal/explorer"
	"fragdroid/internal/paths"
	"fragdroid/internal/robotium"
	"fragdroid/internal/statics"
)

// GapClassRow buckets, for one app, every static (API, component) invocation
// relation of the reachability ceiling into exactly one of three classes:
//
//   - Confirmed: dynamic exploration observed the API firing from that
//     component — the relation is real.
//   - LiftedUnreached: the paths pass lowered at least one launcher-rooted UI
//     route to the site, but no run confirmed it (gated activities, widgets
//     the interface never shows — the static-dynamic gap with an actionable
//     repro script attached).
//   - Blocked: every enumerated path is unliftable (or none exists within the
//     search bounds) — the relation cannot be driven from the UI at all, and
//     directed exploration reports it as such rather than searching for it.
//
// The three buckets partition the ceiling: their sum equals the app's
// StaticReach.Invocations(), so the corpus totals close the loop against the
// 313-relation static / 269-relation dynamic headline.
type GapClassRow struct {
	Package         string `json:"package"`
	Confirmed       int    `json:"confirmed"`
	LiftedUnreached int    `json:"lifted_unreached"`
	Blocked         int    `json:"blocked"`
}

// Static is the row's share of the static ceiling (the bucket sum).
func (r GapClassRow) Static() int { return r.Confirmed + r.LiftedUnreached + r.Blocked }

// GapClassification is the per-app classification with corpus totals.
type GapClassification struct {
	Rows []GapClassRow
}

// Totals sums the rows.
func (g *GapClassification) Totals() GapClassRow {
	t := GapClassRow{Package: "TOTAL"}
	for _, r := range g.Rows {
		t.Confirmed += r.Confirmed
		t.LiftedUnreached += r.LiftedUnreached
		t.Blocked += r.Blocked
	}
	return t
}

// BuildGapClassification classifies every static invocation relation of the
// evaluation's corpus. It needs the explorer-specific results (for the
// extraction behind each app), like BuildCeiling.
func (ev *Evaluation) BuildGapClassification() *GapClassification {
	g := &GapClassification{}
	for _, ar := range ev.Apps {
		ex := ar.Result.Extraction
		confirmed := make(map[string]bool)
		for _, u := range ar.Result.Collector.Usages() {
			for _, cls := range u.Classes {
				confirmed[u.API+"|"+cls] = true
			}
		}
		row := GapClassRow{Package: ar.Row.Package}
		p := paths.New(ex, paths.DefaultConfig())
		for _, sp := range p.PlanAll() {
			switch {
			case confirmed[sp.Target.API+"|"+sp.Target.Class]:
				row.Confirmed++
			case sp.Liftable():
				row.LiftedUnreached++
			default:
				row.Blocked++
			}
		}
		g.Rows = append(g.Rows, row)
	}
	return g
}

// RenderGapClassification renders the three-way partition of the static
// ceiling.
func RenderGapClassification(g *GapClassification) string {
	var b strings.Builder
	b.WriteString("GAP CLASSIFICATION: static invocation relations by dynamic outcome\n\n")
	fmt.Fprintf(&b, "%-34s %10s %8s %8s %8s\n", "Package", "confirmed", "lifted", "blocked", "static")
	b.WriteString(strings.Repeat("-", 72))
	b.WriteByte('\n')
	rows := append(append([]GapClassRow(nil), g.Rows...), g.Totals())
	for _, r := range rows {
		fmt.Fprintf(&b, "%-34s %10d %8d %8d %8d\n",
			r.Package, r.Confirmed, r.LiftedUnreached, r.Blocked, r.Static())
	}
	b.WriteString(strings.Repeat("-", 72))
	b.WriteByte('\n')
	b.WriteString("confirmed: dynamically observed.  lifted: a launcher route replays to the\n")
	b.WriteString("site but no run confirmed it.  blocked: no liftable path — reported, not searched.\n")
	return b.String()
}

// TargetRun compares the directed and undirected targeted modes on one
// (app, API) target: interpreter steps to the halt (mean over the study's
// seeds) and whether each mode triggered the API at all.
type TargetRun struct {
	Package string `json:"package"`
	API     string `json:"api"`
	// UndirectedSteps and DirectedSteps are mean interpreter steps until the
	// run halted (on the API, or exhausted).
	UndirectedSteps float64 `json:"undirected_steps"`
	DirectedSteps   float64 `json:"directed_steps"`
	// LaunchSteps is the app's bare cold-launch cost: the steps a plain
	// LaunchMain script spends on a fresh device. Both modes pay it before
	// any searching can start, so the steps-to-target economy is measured on
	// the excess past it.
	LaunchSteps float64 `json:"launch_steps"`
	// UndirectedReached and DirectedReached report the API firing (identical
	// across seeds: both engines are deterministic given a seed).
	UndirectedReached bool `json:"undirected_reached"`
	DirectedReached   bool `json:"directed_reached"`
	// DirectedSkipped marks targets the directed mode refused to search
	// because no static path lifted.
	DirectedSkipped bool `json:"directed_skipped"`
}

// SearchSteps returns the two modes' search work past the common launch.
func (t TargetRun) SearchSteps() (undirected, directed float64) {
	u := t.UndirectedSteps - t.LaunchSteps
	d := t.DirectedSteps - t.LaunchSteps
	if u < 0 {
		u = 0
	}
	if d < 0 {
		d = 0
	}
	return u, d
}

// Searched reports whether reaching the target took any search at all: a
// target firing during the bare launch costs both modes exactly the launch,
// and no guidance can beat that.
func (t TargetRun) Searched() bool {
	u, _ := t.SearchSteps()
	return u > 0
}

// Ratio is directed-to-undirected search steps (0 when undirected needed no
// search past the launch).
func (t TargetRun) Ratio() float64 {
	u, d := t.SearchSteps()
	if u == 0 {
		return 0
	}
	return d / u
}

// DirectedStudy is the corpus-wide directed-vs-undirected comparison.
type DirectedStudy struct {
	Seeds   []int64     `json:"seeds"`
	Targets []TargetRun `json:"targets"`
}

// ReachedCounts tallies targets triggered by each mode.
func (s *DirectedStudy) ReachedCounts() (undirected, directed int) {
	for _, t := range s.Targets {
		if t.UndirectedReached {
			undirected++
		}
		if t.DirectedReached {
			directed++
		}
	}
	return undirected, directed
}

// MeanStepRatio is the mean directed/undirected steps-to-target ratio over
// targets the undirected mode reached with actual search work — the headline
// "≤0.5×" economy of seeding the engine with statically lifted routes.
// Launch-fired targets (both modes halt during the bare launch, spending
// identical, irreducible steps) are excluded: there is no search to speed up.
func (s *DirectedStudy) MeanStepRatio() float64 {
	var sum float64
	n := 0
	for _, t := range s.Targets {
		if !t.UndirectedReached || !t.Searched() {
			continue
		}
		sum += t.Ratio()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RunDirectedStudy runs every (app, API) target of the corpus's static reach
// through both targeted modes under each seed and aggregates steps-to-target.
// Both engines are deterministic, so multiple seeds pin reproducibility
// rather than average out noise; the per-target means are over the seed runs.
func RunDirectedStudy(cfg EvalConfig, seeds []int64) (*DirectedStudy, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}
	cache := cfg.cache()
	study := &DirectedStudy{Seeds: seeds}
	for _, row := range corpus.PaperRows() {
		ex, err := cache.Extraction(corpus.PaperSpec(row))
		if err != nil {
			return nil, fmt.Errorf("report: directed study extract %s: %w", row.Package, err)
		}
		launchSteps := bareLaunchSteps(ex)
		apis := make([]string, 0, len(ex.StaticReach.APIs))
		for api := range ex.StaticReach.APIs {
			apis = append(apis, api)
		}
		sort.Strings(apis)
		for _, api := range apis {
			tr := TargetRun{Package: row.Package, API: api, LaunchSteps: launchSteps}
			for range seeds {
				ur, err := explorer.ExploreTarget(ex, cfg.Explorer, api)
				if err != nil {
					return nil, fmt.Errorf("report: undirected target %s on %s: %w", api, row.Package, err)
				}
				dr, err := explorer.ExploreTargetDirected(ex, cfg.Explorer, api)
				if err != nil {
					return nil, fmt.Errorf("report: directed target %s on %s: %w", api, row.Package, err)
				}
				if ur.Result != nil {
					tr.UndirectedSteps += float64(ur.Result.Stats.Steps)
				}
				tr.UndirectedReached = tr.UndirectedReached || ur.Triggered
				if dr.Result != nil {
					tr.DirectedSteps += float64(dr.Result.Stats.Steps)
				}
				tr.DirectedReached = tr.DirectedReached || dr.Triggered
				tr.DirectedSkipped = dr.Skipped
			}
			tr.UndirectedSteps /= float64(len(seeds))
			tr.DirectedSteps /= float64(len(seeds))
			study.Targets = append(study.Targets, tr)
		}
	}
	return study, nil
}

// bareLaunchSteps measures the app's cold-launch cost: the steps a plain
// LaunchMain script spends on a fresh device. Every targeted run — guided or
// not — pays at least this before it can search.
func bareLaunchSteps(ex *statics.Extraction) float64 {
	dev := device.New(ex.App, device.Options{})
	sc := robotium.Script{Name: "bare_launch", Ops: []robotium.Op{robotium.LaunchMain()}}
	robotium.Run(dev, sc, robotium.Options{})
	return float64(dev.Steps())
}

// RenderDirectedStudy renders the steps-to-target comparison.
func RenderDirectedStudy(s *DirectedStudy) string {
	var b strings.Builder
	b.WriteString("DIRECTED STUDY: steps-to-target, path-seeded vs frontier search\n\n")
	fmt.Fprintf(&b, "%-34s %-28s %12s %12s %7s\n", "Package", "API", "undirected", "directed", "ratio")
	b.WriteString(strings.Repeat("-", 98))
	b.WriteByte('\n')
	for _, t := range s.Targets {
		note := ""
		if t.DirectedSkipped {
			note = " (skipped: unliftable)"
		}
		fmt.Fprintf(&b, "%-34s %-28s %12.0f %12.0f %6.2fx%s\n",
			t.Package, t.API, t.UndirectedSteps, t.DirectedSteps, t.Ratio(), note)
	}
	b.WriteString(strings.Repeat("-", 98))
	b.WriteByte('\n')
	u, d := s.ReachedCounts()
	fmt.Fprintf(&b, "targets: %d   reached: undirected %d, directed %d   mean step ratio %.3fx (seeds %v)\n",
		len(s.Targets), u, d, s.MeanStepRatio(), s.Seeds)
	return b.String()
}

// DirectedBench is the machine-readable summary `fragstudy -directed` emits
// (BENCH_PR8.json): the steps-to-target economy and the closed-loop gap
// classification totals.
type DirectedBench struct {
	Seeds              []int64     `json:"seeds"`
	Targets            int         `json:"targets"`
	UndirectedReached  int         `json:"undirected_reached"`
	DirectedReached    int         `json:"directed_reached"`
	MeanStepRatio      float64     `json:"mean_step_ratio"`
	GapConfirmed       int         `json:"gap_confirmed"`
	GapLiftedUnreached int         `json:"gap_lifted_unreached"`
	GapBlocked         int         `json:"gap_blocked"`
	GapStatic          int         `json:"gap_static"`
	TargetRuns         []TargetRun `json:"target_runs"`
}

// BuildDirectedBench folds a study and a gap classification into the bench
// summary.
func BuildDirectedBench(s *DirectedStudy, g *GapClassification) DirectedBench {
	u, d := s.ReachedCounts()
	t := g.Totals()
	return DirectedBench{
		Seeds:              s.Seeds,
		Targets:            len(s.Targets),
		UndirectedReached:  u,
		DirectedReached:    d,
		MeanStepRatio:      s.MeanStepRatio(),
		GapConfirmed:       t.Confirmed,
		GapLiftedUnreached: t.LiftedUnreached,
		GapBlocked:         t.Blocked,
		GapStatic:          t.Static(),
		TargetRuns:         s.Targets,
	}
}
