// Package report runs the paper's evaluation experiments on the synthetic
// corpus and renders the resulting tables: Table I (coverage), Table II
// (sensitive operations), the §VII-A fragment-usage study, and the baseline
// comparison behind the §VII-C "traditional approaches miss ≥9.6%" claim.
package report

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"fragdroid/internal/apk"
	"fragdroid/internal/artifact"
	"fragdroid/internal/corpus"
	"fragdroid/internal/explorer"
	"fragdroid/internal/sensitive"
	"fragdroid/internal/session"
	"fragdroid/internal/statics"
	"fragdroid/internal/strategy"
)

// EvalConfig tunes a full paper evaluation run.
type EvalConfig struct {
	// Strategy names the exploration strategy driving the per-app runs, from
	// the internal/strategy registry. Empty means "explorer" (FragDroid
	// itself), the only strategy that fills the explorer-specific Result and
	// hence supports Table I, the gap and the ceiling tables; every strategy
	// supports the generic Outcome and the tables derived from it (Table II,
	// run metrics).
	Strategy string
	// Seed feeds randomized strategies' RNGs (monkey, biased); deterministic
	// strategies ignore it.
	Seed int64
	// Explorer is the FragDroid configuration used per app. Its budget,
	// inputs and observer also apply to non-explorer strategies.
	Explorer explorer.Config
	// Parallel runs up to that many apps concurrently (each on its own
	// simulated device). Zero or one means sequential. Results are
	// positionally ordered either way, so all derived tables are identical.
	Parallel int
	// Stages optionally bounds each pipeline stage separately; zero fields
	// fall back to Parallel. See StageLimits.
	Stages StageLimits
	// Cache memoizes app builds and static extractions across runs. Nil
	// means the process-wide artifact.Default cache.
	Cache *artifact.Cache
	// Snapshots is the device-snapshot memo shared by every engine of the
	// experiment (explorer and baselines): route replays resume from the
	// longest memoized prefix instead of re-executing it from launch. All
	// behavioral outputs are identical either way; nil disables memoization.
	Snapshots *session.SnapshotMemo
	// PersistSnapshots writes full-route snapshots through the artifact
	// cache's store (when one is attached to the cache), so warm exploration
	// survives process restarts the same way builds and extractions do.
	// Requires Snapshots; off by default so in-memory benchmarks keep their
	// memo-cold meaning.
	PersistSnapshots bool
	// Devices is the per-app in-process device fleet size handed to every
	// engine: values above 1 run warming devices alongside each engine's
	// main loop. Results are identical for any value; requires Snapshots.
	Devices int
	// Stream schedules the corpus through the streaming pipeline: a bounded
	// window of in-flight apps, each folded into the result in corpus order
	// as it completes, with its snapshot pack flushed and released right
	// after the fold instead of in one end-of-run Flush. Every result and
	// derived table is bit-identical to the staged run; only scheduling and
	// the memo's live set change.
	Stream bool
	// Window bounds in-flight apps in streaming mode; zero derives a default
	// from the stage limits. Ignored without Stream.
	Window int
}

// attachPersistence wires the artifact store under the shared memo when
// persistence is requested and a persistent cache is available.
func (cfg EvalConfig) attachPersistence() {
	if !cfg.PersistSnapshots || cfg.Snapshots == nil {
		return
	}
	if st := cfg.cache().Store(); st != nil {
		cfg.Snapshots.AttachStore(st)
	}
}

func (cfg EvalConfig) cache() *artifact.Cache {
	if cfg.Cache != nil {
		return cfg.Cache
	}
	return artifact.Default
}

// DefaultEvalConfig uses the full FragDroid feature set with a generous
// test-case budget.
func DefaultEvalConfig() EvalConfig {
	cfg := explorer.DefaultConfig()
	cfg.MaxTestCases = 4000
	return EvalConfig{Explorer: cfg}
}

// AppResult couples one corpus app with its exploration outcome.
type AppResult struct {
	Row corpus.PaperRow
	App *apk.App
	// Result is the explorer-specific outcome; nil for other strategies.
	Result *explorer.Result
	// Outcome is the engine-independent outcome, set for every strategy.
	Outcome *session.Outcome
}

// Evaluation is the outcome of running one strategy over the 15-app corpus.
type Evaluation struct {
	// Strategy is the registry name of the engine that produced the runs.
	Strategy string
	Apps     []AppResult
}

// RunMetrics couples one corpus app with its run's session counters.
type RunMetrics struct {
	Package  string
	Strategy string
	session.Stats
}

// RunMetrics returns the per-app session counters, in corpus order.
func (ev *Evaluation) RunMetrics() []RunMetrics {
	out := make([]RunMetrics, 0, len(ev.Apps))
	for _, ar := range ev.Apps {
		out = append(out, RunMetrics{Package: ar.Row.Package, Strategy: ev.Strategy, Stats: ar.Outcome.Stats})
	}
	return out
}

// TotalStats sums the session counters over the whole corpus.
func (ev *Evaluation) TotalStats() session.Stats {
	var total session.Stats
	for _, ar := range ev.Apps {
		total = total.Add(ar.Outcome.Stats)
	}
	return total
}

// RunEvaluation builds the 15 Table I apps and explores each with FragDroid,
// as a staged pipeline: build, extract and explore have independent
// concurrency limits (cfg.Stages, defaulting to cfg.Parallel), so one app
// can be exploring while the next is still building. Builds and static
// extractions are memoized through cfg's artifact cache, so repeated runs
// (ablations, benchmarks) only pay for exploration. The result order (and
// hence every derived table) is identical to a sequential run because each
// app's exploration is self-contained and deterministic and the fold is
// positional. Per-app failures are aggregated with errors.Join rather than
// reported first-only.
func RunEvaluation(cfg EvalConfig) (*Evaluation, error) {
	strat := cfg.Strategy
	if strat == "" {
		strat = "explorer"
	}
	if !strategy.Known(strat) {
		return nil, fmt.Errorf("report: unknown strategy %q (known: %s)",
			strat, strings.Join(strategy.Names(), ", "))
	}
	rows := corpus.PaperRows()
	cache := cfg.cache()
	cfg.attachPersistence()
	limits := cfg.Stages.withDefault(cfg.Parallel)
	results := make([]AppResult, len(rows))
	apps := make([]*apk.App, len(rows))
	exs := make([]*statics.Extraction, len(rows))
	errs := make([]error, len(rows))

	// One spec per row, shared by the build and extract stages: the cache only
	// reads specs (key derivation, and BuildApp on a cold miss), so there is no
	// reason to generate each app's spec twice per run.
	specs := make([]*corpus.AppSpec, len(rows))
	for i := range rows {
		specs[i] = corpus.PaperSpec(rows[i])
	}

	stages := []stage{
		{limit: limits.Build, fn: func(i int) bool {
			app, err := cache.App(specs[i])
			if err != nil {
				errs[i] = fmt.Errorf("report: build %s: %w", rows[i].Package, err)
				return false
			}
			apps[i] = app
			return true
		}},
		{limit: limits.Extract, fn: func(i int) bool {
			ex, err := cache.Extraction(specs[i])
			if err != nil {
				errs[i] = fmt.Errorf("report: extract %s: %w", rows[i].Package, err)
				return false
			}
			exs[i] = ex
			return true
		}},
		{limit: limits.Run, fn: func(i int) bool {
			if strat == "explorer" {
				ecfg := cfg.Explorer
				if ecfg.Snapshots == nil {
					ecfg.Snapshots = cfg.Snapshots
				}
				if ecfg.Devices == 0 {
					ecfg.Devices = cfg.Devices
				}
				res, err := explorer.ExploreExtracted(exs[i], ecfg)
				if err != nil {
					errs[i] = fmt.Errorf("report: explore %s: %w", rows[i].Package, err)
					return false
				}
				results[i] = AppResult{Row: rows[i], App: apps[i], Result: res, Outcome: strategy.FromExplorer(res)}
				return true
			}
			out, err := strategy.Run(strat, exs[i], strategy.Options{
				Budget:    cfg.Explorer.MaxTestCases,
				Seed:      cfg.Seed,
				Inputs:    cfg.Explorer.Inputs,
				Observer:  cfg.Explorer.Observer,
				Snapshots: cfg.Snapshots,
				Devices:   cfg.Devices,
				Curve:     true,
			})
			if err != nil {
				errs[i] = fmt.Errorf("report: %s on %s: %w", strat, rows[i].Package, err)
				return false
			}
			results[i] = AppResult{Row: rows[i], App: apps[i], Outcome: out}
			return true
		}},
	}
	if cfg.Stream {
		window := cfg.Window
		if window <= 0 {
			window = streamWindow(limits)
		}
		runStreamed(len(rows), window, stages, func(i int) {
			// The app is fully folded (its positional result slot is final);
			// flush and drop its snapshot pack now, so the memo's live set
			// tracks the window instead of the corpus.
			if cfg.Snapshots != nil && apps[i] != nil {
				_ = cfg.Snapshots.ReleaseApp(apps[i])
			}
		})
	} else {
		runStaged(len(rows), stages)
	}

	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	if cfg.PersistSnapshots && cfg.Snapshots != nil && !cfg.Stream {
		// Persisted packs hit disk once per app here, not once per store; a
		// flush failure only costs the next run its warm start. (Streamed
		// runs already flushed incrementally, app by app.)
		_ = cfg.Snapshots.Flush()
	}
	return &Evaluation{Strategy: strat, Apps: results}, nil
}

// Table1Row is one measured row of Table I.
type Table1Row struct {
	Package   string
	Downloads string
	// Measured Visited/Sum triples.
	VisA, SumA       int
	VisF, SumF       int
	VisFiVA, SumFiVA int
	// Paper holds the published numbers for side-by-side comparison.
	Paper corpus.PaperRow
}

func rate(vis, sum int) float64 {
	if sum == 0 {
		return 0
	}
	return 100 * float64(vis) / float64(sum)
}

// RateA, RateF and RateFiVA return the measured percentage rates.
func (r Table1Row) RateA() float64    { return rate(r.VisA, r.SumA) }
func (r Table1Row) RateF() float64    { return rate(r.VisF, r.SumF) }
func (r Table1Row) RateFiVA() float64 { return rate(r.VisFiVA, r.SumFiVA) }

// Table1 is the measured coverage table.
type Table1 struct {
	Rows []Table1Row
}

// BuildTable1 derives Table I from an evaluation.
func (ev *Evaluation) BuildTable1() *Table1 {
	t := &Table1{}
	for _, ar := range ev.Apps {
		fivaVis, fivaSum := ar.Result.FragmentsInVisitedActivities()
		t.Rows = append(t.Rows, Table1Row{
			Package:   ar.Row.Package,
			Downloads: ar.Row.Downloads,
			VisA:      len(ar.Result.VisitedActivities()),
			SumA:      len(ar.Result.Extraction.EffectiveActivities),
			VisF:      len(ar.Result.VisitedFragments()),
			SumF:      len(ar.Result.Extraction.EffectiveFragments),
			VisFiVA:   fivaVis,
			SumFiVA:   fivaSum,
			Paper:     ar.Row,
		})
	}
	return t
}

// Averages returns the mean per-app coverage rates — the aggregation the
// paper reports as "66% for Fragments and 71.94% for Activities".
func (t *Table1) Averages() (actPct, fragPct, fivaPct float64) {
	if len(t.Rows) == 0 {
		return 0, 0, 0
	}
	for _, r := range t.Rows {
		actPct += r.RateA()
		fragPct += r.RateF()
		fivaPct += r.RateFiVA()
	}
	n := float64(len(t.Rows))
	return actPct / n, fragPct / n, fivaPct / n
}

// BuildTable2 derives the sensitive-operations matrix from an evaluation.
// It reads the generic outcome, so it works for every strategy.
func (ev *Evaluation) BuildTable2() *sensitive.Matrix {
	return sensitive.NewMatrix(ev.collectors())
}

// CategoryStat is the per-category breakdown of the study (the paper lists
// its dataset by Google Play category: Tools 21 apps, Entertainment 21, ...).
type CategoryStat struct {
	Category      string
	Apps          int
	WithFragments int
}

// StudyResult is the outcome of the §VII-A fragment-usage study.
type StudyResult struct {
	Total         int
	Packed        int
	Analyzable    int
	WithFragments int
	// ByCategory holds the per-category breakdown, sorted by app count
	// descending then name.
	ByCategory []CategoryStat
}

// FragmentSharePct is the headline "91% of apps use Fragments" number.
func (s StudyResult) FragmentSharePct() float64 {
	if s.Analyzable == 0 {
		return 0
	}
	return 100 * float64(s.WithFragments) / float64(s.Analyzable)
}

// StudyConfig tunes a fragment-usage study run.
type StudyConfig struct {
	// Seed selects the deterministic 217-app dataset variant.
	Seed int64
	// Parallel analyzes up to that many apps concurrently. Zero or one means
	// sequential; results are identical either way (per-app outcomes are
	// collected positionally and folded in dataset order).
	Parallel int
	// Stages optionally bounds each pipeline stage separately; zero fields
	// fall back to Parallel. See StageLimits.
	Stages StageLimits
	// Cache memoizes app builds across runs. Nil means artifact.Default.
	Cache *artifact.Cache
	// Source optionally overrides the corpus: any random-access spec source —
	// typically corpus.NewFamily for corpus-scale runs — instead of the fixed
	// 217-app corpus.StudySpecs(Seed). With a lazy source and Stream set, the
	// run never materializes a spec slice.
	Source corpus.SpecSource
	// Stream switches the run from the positional fold (one result slot per
	// app, peak heap O(corpus)) to the streaming fold: a bounded window of
	// in-flight apps, each folded into the aggregate in dataset order and
	// then released — evicted from the artifact cache, its spec, app and IR
	// program dropped. Peak heap is O(Window), and every derived number is
	// bit-identical to the positional fold (the two paths share one fold).
	Stream bool
	// Window bounds in-flight apps in streaming mode; zero derives a default
	// from the stage limits. Ignored without Stream.
	Window int
}

// RunStudy performs the 217-app study sequentially with the default cache.
func RunStudy(seed int64) (*StudyResult, error) {
	return RunStudyWith(StudyConfig{Seed: seed})
}

// studyFold accumulates the study aggregate one app at a time, in dataset
// order. Both the positional fold (RunStudyWith) and the streaming fold
// (RunStudyStreamed) run every app through this exact code, which is what
// makes their results bit-identical by construction rather than by test
// luck: the only thing streaming changes is when an app's outcome reaches
// add, never what add does with it.
type studyFold struct {
	res  *StudyResult
	cats map[string]*CategoryStat
}

func newStudyFold(total int) *studyFold {
	return &studyFold{
		res:  &StudyResult{Total: total},
		cats: make(map[string]*CategoryStat),
	}
}

// add folds one app's outcome into the aggregate.
func (f *studyFold) add(pkg string, packed, fragments bool) {
	cat := categoryOf(pkg)
	cs := f.cats[cat]
	if cs == nil {
		cs = &CategoryStat{Category: cat}
		f.cats[cat] = cs
	}
	if packed {
		f.res.Packed++
		return
	}
	f.res.Analyzable++
	cs.Apps++
	if fragments {
		f.res.WithFragments++
		cs.WithFragments++
	}
}

// finish seals the aggregate: the per-category breakdown sorts by app count
// descending then name, so the order is deterministic even though the
// category map is not.
func (f *studyFold) finish() *StudyResult {
	for _, cs := range f.cats {
		if cs.Apps > 0 {
			f.res.ByCategory = append(f.res.ByCategory, *cs)
		}
	}
	sort.Slice(f.res.ByCategory, func(i, j int) bool {
		a, b := f.res.ByCategory[i], f.res.ByCategory[j]
		if a.Apps != b.Apps {
			return a.Apps > b.Apps
		}
		return a.Category < b.Category
	})
	return f.res
}

// RunStudyWith performs the §VII-A study: build each app (packed apps fail
// decompilation, as in the paper) and statically scan the class hierarchy for
// Fragment subclass usage. The build and scan stages pipeline independently
// (cfg.Stages, defaulting to cfg.Parallel); the fold over outcomes is always
// sequential in dataset order, so counts and the ByCategory breakdown match
// a serial run exactly. With cfg.Stream the run delegates to the streaming
// fold (bounded live set, same numbers); without it, outcomes are collected
// positionally — peak heap O(corpus), fine for the 217-app dataset.
func RunStudyWith(cfg StudyConfig) (*StudyResult, error) {
	if cfg.Stream {
		res, _, err := RunStudyStreamed(cfg)
		return res, err
	}
	src := cfg.source()
	n := src.Len()
	specs := make([]*corpus.AppSpec, n)
	for i := range specs {
		specs[i] = src.At(i)
	}
	cache := cfg.cacheOrDefault()
	limits := cfg.Stages.withDefault(cfg.Parallel)

	type outcome struct {
		packed    bool
		fragments bool
	}
	apps := make([]*apk.App, n)
	outs := make([]outcome, n)
	errs := make([]error, n)
	runStaged(n, []stage{
		{limit: limits.Build, fn: func(i int) bool {
			app, err := cache.App(specs[i])
			if errors.Is(err, apk.ErrPacked) {
				outs[i].packed = true
				return false
			}
			if err != nil {
				errs[i] = fmt.Errorf("report: study build %s: %w", specs[i].Package, err)
				return false
			}
			apps[i] = app
			return true
		}},
		{limit: limits.Run, fn: func(i int) bool {
			outs[i].fragments = usesFragments(apps[i])
			return true
		}},
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	fold := newStudyFold(n)
	for i := range specs {
		fold.add(specs[i].Package, outs[i].packed, outs[i].fragments)
	}
	return fold.finish(), nil
}

func (cfg StudyConfig) cacheOrDefault() *artifact.Cache {
	if cfg.Cache != nil {
		return cfg.Cache
	}
	return artifact.Default
}

// source resolves the corpus: an explicit Source wins, else the fixed
// 217-app study corpus for Seed.
func (cfg StudyConfig) source() corpus.SpecSource {
	if cfg.Source != nil {
		return cfg.Source
	}
	return corpus.SliceSource(corpus.StudySpecs(cfg.Seed))
}

// categoryOf extracts the study category from a generated package name
// ("com.<category>.appNNN").
func categoryOf(pkg string) string {
	parts := strings.Split(pkg, ".")
	if len(parts) >= 3 {
		return parts[1]
	}
	return "unknown"
}

// usesFragments is the study's scanner: does the decompiled code contain any
// Fragment subclass?
func usesFragments(app *apk.App) bool {
	return len(app.Program.FragmentClasses()) > 0
}

// ComparisonRow reports one system's aggregate behaviour over the corpus.
type ComparisonRow struct {
	// System is the display name (the paper's terminology); Strategy is the
	// registry name the run was keyed by in internal/strategy.
	System   string
	Strategy string
	// ActivityPct is the mean activity coverage rate.
	ActivityPct float64
	// FragmentPct is the mean fragment coverage rate (0 for tools that
	// cannot credit fragments).
	FragmentPct float64
	// APIs is the number of distinct sensitive APIs observed.
	APIs int
	// FragmentAPIRelations counts fragment-associated invocation relations.
	FragmentAPIRelations int
	// MissedFragmentAPIPct is the share of FragDroid's total invocation
	// relations this system did not observe.
	MissedFragmentAPIPct float64
	// TestCases is the total work spent.
	TestCases int
}

// Comparison is the FragDroid vs Activity-level vs Monkey experiment.
type Comparison struct {
	Rows []ComparisonRow
	// FragDroidStats are the reference aggregates.
	FragDroidStats sensitive.Stats
}

// baselineSystems maps the paper's comparison systems to registry names.
var baselineSystems = []struct{ Strategy, System string }{
	{"activity", "Activity-level MBT"},
	{"monkey", "Monkey"},
}

// RunComparison runs all three systems over the corpus and aggregates. The
// baselines run through the strategy registry, so they are exactly the
// engines `fragstudy -compare` benchmarks.
func RunComparison(cfg EvalConfig, monkeySeed int64, monkeyEvents int) (*Comparison, error) {
	cfg.Strategy = "explorer" // the reference system; baselines run below
	ev, err := RunEvaluation(cfg)
	if err != nil {
		return nil, err
	}
	t1 := ev.BuildTable1()
	fragStats := ev.BuildTable2().ComputeStats()

	fdRelations := relationSet(ev.collectors())
	actA, actF, _ := t1.Averages()

	cmp := &Comparison{FragDroidStats: fragStats}
	cmp.Rows = append(cmp.Rows, ComparisonRow{
		System:               "FragDroid",
		Strategy:             "explorer",
		ActivityPct:          actA,
		FragmentPct:          actF,
		APIs:                 fragStats.DistinctAPIs,
		FragmentAPIRelations: fragStats.FragmentRelations,
		TestCases:            ev.TotalStats().TestCases,
	})

	for _, sys := range baselineSystems {
		row, err := runBaselineSystem(sys.Strategy, sys.System, ev, cfg, monkeySeed, monkeyEvents, fdRelations)
		if err != nil {
			return nil, err
		}
		cmp.Rows = append(cmp.Rows, row)
	}
	if cfg.PersistSnapshots && cfg.Snapshots != nil {
		// The baselines share the evaluation's memo; flush again so their
		// launch and activity-route snapshots go durable too.
		_ = cfg.Snapshots.Flush()
	}
	return cmp, nil
}

func (ev *Evaluation) collectors() []*sensitive.Collector {
	var cs []*sensitive.Collector
	for _, ar := range ev.Apps {
		cs = append(cs, ar.Outcome.Collector)
	}
	return cs
}

// relationSet flattens collectors into (app, api, kind) relation keys.
func relationSet(cs []*sensitive.Collector) map[string]bool {
	out := make(map[string]bool)
	for _, c := range cs {
		for _, u := range c.Usages() {
			if u.ByActivity {
				out[c.App()+"|"+u.API+"|A"] = true
			}
			if u.ByFragment {
				out[c.App()+"|"+u.API+"|F"] = true
			}
		}
	}
	return out
}

func runBaselineSystem(strat, sys string, ev *Evaluation, cfg EvalConfig, seed int64, events int, fdRelations map[string]bool) (ComparisonRow, error) {
	var collectors []*sensitive.Collector
	var actPctSum float64
	var stats session.Stats
	for _, ar := range ev.Apps {
		opts := strategy.Options{
			Budget:    cfg.Explorer.MaxTestCases,
			Seed:      seed,
			Inputs:    cfg.Explorer.Inputs,
			Observer:  cfg.Explorer.Observer,
			Snapshots: cfg.Snapshots,
			Devices:   cfg.Devices,
		}
		if strat == "monkey" {
			opts.Budget = events
		}
		out, err := strategy.Run(strat, ar.Result.Extraction, opts)
		if err != nil {
			return ComparisonRow{}, fmt.Errorf("report: %s on %s: %w", sys, ar.Row.Package, err)
		}
		collectors = append(collectors, out.Collector)
		effective := countEffective(ar.Result.Extraction, out.VisitedActivities)
		actPctSum += rate(effective, len(ar.Result.Extraction.EffectiveActivities))
		stats = stats.Add(out.Stats)
	}
	m := sensitive.NewMatrix(collectors)
	st := m.ComputeStats()
	missed := missedPct(fdRelations, relationSet(collectors))
	return ComparisonRow{
		System:               sys,
		Strategy:             strat,
		ActivityPct:          actPctSum / float64(len(ev.Apps)),
		FragmentPct:          0, // activity-level tools cannot credit fragments
		APIs:                 st.DistinctAPIs,
		FragmentAPIRelations: st.FragmentRelations,
		MissedFragmentAPIPct: missed,
		TestCases:            stats.TestCases,
	}, nil
}

// countEffective counts visited activities that are in the effective set
// (baselines may force-start isolated activities; those don't count).
func countEffective(ex *statics.Extraction, visited []string) int {
	eff := make(map[string]bool, len(ex.EffectiveActivities))
	for _, a := range ex.EffectiveActivities {
		eff[a] = true
	}
	n := 0
	for _, a := range visited {
		if eff[a] {
			n++
		}
	}
	return n
}

// missedPct is the share of FragDroid's invocation relations the other
// system failed to observe.
func missedPct(fragdroid, other map[string]bool) float64 {
	if len(fragdroid) == 0 {
		return 0
	}
	missed := 0
	for rel := range fragdroid {
		if !other[rel] {
			missed++
		}
	}
	return 100 * float64(missed) / float64(len(fragdroid))
}
