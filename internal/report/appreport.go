package report

import (
	"fmt"
	"strings"

	"fragdroid/internal/aftm"
	"fragdroid/internal/explorer"
)

// RenderAppReport renders a single app's exploration as a markdown report:
// coverage summary, the AFTM shape, every visit with its reach method and
// route length, the unvisited nodes with the reason the run logged for them,
// and the sensitive-API findings.
func RenderAppReport(pkg string, res *explorer.Result) string {
	var b strings.Builder
	ex := res.Extraction

	fmt.Fprintf(&b, "# FragDroid report — %s\n\n", pkg)

	va, sa := len(res.VisitedActivities()), len(ex.EffectiveActivities)
	vf, sf := len(res.VisitedFragments()), len(ex.EffectiveFragments)
	fv, fsum := res.FragmentsInVisitedActivities()
	c := res.Model.Count()
	b.WriteString("## Coverage\n\n")
	fmt.Fprintf(&b, "| metric | visited | sum | rate |\n|---|---|---|---|\n")
	fmt.Fprintf(&b, "| activities | %d | %d | %.2f%% |\n", va, sa, rate(va, sa))
	fmt.Fprintf(&b, "| fragments | %d | %d | %.2f%% |\n", vf, sf, rate(vf, sf))
	fmt.Fprintf(&b, "| fragments in visited activities | %d | %d | %.2f%% |\n\n", fv, fsum, rate(fv, fsum))
	fmt.Fprintf(&b, "AFTM: %d activities, %d fragments; edges E1=%d E2=%d E3=%d. ",
		c.Activities, c.Fragments, c.E1, c.E2, c.E3)
	fmt.Fprintf(&b, "Work: %d test cases, %d device steps, %d crashes. ",
		res.TestCases, res.Steps, res.Crashes)
	fmt.Fprintf(&b, "Session: %d replays, %d reflection attempts (%d failed), %d forced starts, %d input fills.\n\n",
		res.Replays, res.ReflectionAttempts, res.ReflectionFailures,
		res.ForcedStarts, res.InputFills)

	b.WriteString("## Visits\n\n")
	b.WriteString("| node | reached via | route ops |\n|---|---|---|\n")
	for _, n := range res.Model.Nodes() {
		v, ok := res.Visits[n]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "| %s | %s | %d |\n", n, v.Method, len(v.Route.Ops))
	}
	b.WriteByte('\n')

	unvisited := append(res.Model.Unvisited(aftm.KindActivity), res.Model.Unvisited(aftm.KindFragment)...)
	if len(unvisited) > 0 {
		b.WriteString("## Not visited\n\n")
		for _, n := range unvisited {
			fmt.Fprintf(&b, "- %s%s\n", n, reasonFor(res, n))
		}
		b.WriteByte('\n')
	}

	if len(res.CrashReports) > 0 {
		b.WriteString("## Crashes found\n\n")
		for _, cr := range res.CrashReports {
			fmt.Fprintf(&b, "- `%s` (%d ops to reproduce)\n", cr.Reason, len(cr.Route.Ops))
		}
		b.WriteByte('\n')
	}

	if us := res.Collector.Usages(); len(us) > 0 {
		b.WriteString("## Sensitive APIs\n\n")
		b.WriteString("| API | invoked by | classes |\n|---|---|---|\n")
		for _, u := range us {
			fmt.Fprintf(&b, "| %s | %s | %s |\n", u.API, u.Mark().ASCII(), strings.Join(u.Classes, ", "))
		}
		b.WriteByte('\n')
	}

	return b.String()
}

// reasonFor scans the transcript for the last message naming the node, the
// closest thing a run has to a per-node miss explanation.
func reasonFor(res *explorer.Result, n aftm.Node) string {
	for i := len(res.Transcript) - 1; i >= 0; i-- {
		line := res.Transcript[i]
		if strings.Contains(line, n.Name) &&
			(strings.Contains(line, "failed") || strings.Contains(line, "skipped")) {
			return " — " + line
		}
	}
	return ""
}
