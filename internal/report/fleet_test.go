package report

import (
	"reflect"
	"testing"

	"fragdroid/internal/artifact"
	"fragdroid/internal/session"
)

// zeroCacheColumns blanks the cache-side counters that legitimately shift
// with warming — hits, restores, saved steps, evictions, pinned bytes — so
// the remaining fields compare the decision-relevant work.
func zeroCacheColumns(s session.Stats) session.Stats {
	s.SnapshotHits, s.SnapshotRestores, s.StepsSaved = 0, 0, 0
	s.Evictions, s.BytesPinned = 0, 0
	return s
}

// requireEvalParity asserts two evaluations agree on every headline artifact:
// Table I rows and rendering, Table II matrix and aggregates, and all
// non-cache session counters.
func requireEvalParity(t *testing.T, label string, a, b *Evaluation) {
	t.Helper()
	t1a, t1b := a.BuildTable1(), b.BuildTable1()
	if !reflect.DeepEqual(t1a, t1b) {
		t.Errorf("%s: Table I differs", label)
	}
	if RenderTable1(t1a) != RenderTable1(t1b) {
		t.Errorf("%s: Table I rendering differs", label)
	}
	if RenderTable2(a.BuildTable2()) != RenderTable2(b.BuildTable2()) {
		t.Errorf("%s: Table II rendering differs", label)
	}
	sa, sb := a.BuildTable2().ComputeStats(), b.BuildTable2().ComputeStats()
	if sa != sb {
		t.Errorf("%s: Table II stats differ: %+v vs %+v", label, sa, sb)
	}
	if sb.DistinctAPIs != 46 || sb.TotalInvocations != 269 {
		t.Errorf("%s: aggregates = %d APIs / %d invocations, want 46/269",
			label, sb.DistinctAPIs, sb.TotalInvocations)
	}
	ma, mb := a.RunMetrics(), b.RunMetrics()
	if len(ma) != len(mb) {
		t.Fatalf("%s: run-metrics rows differ: %d vs %d", label, len(ma), len(mb))
	}
	for i := range ma {
		if ma[i].Package != mb[i].Package {
			t.Fatalf("%s: row %d package %s vs %s", label, i, ma[i].Package, mb[i].Package)
		}
		if x, y := zeroCacheColumns(ma[i].Stats), zeroCacheColumns(mb[i].Stats); x != y {
			t.Errorf("%s: %s counters diverged:\n a %+v\n b %+v", label, ma[i].Package, x, y)
		}
	}
}

// TestFleetMetricParity is the fleet's acceptance gate at the evaluation
// level: the full 15-app run with a 4-device fleet per app produces
// bit-identical headline metrics to the single-device run. The fleet only
// warms the shared memo — it never makes a decision — so folding its results
// must be invisible in every table.
func TestFleetMetricParity(t *testing.T) {
	one := DefaultEvalConfig()
	one.Snapshots = session.NewSnapshotMemo(0)
	one.Devices = 1
	evalOne, err := RunEvaluation(one)
	if err != nil {
		t.Fatalf("RunEvaluation devices=1: %v", err)
	}

	four := DefaultEvalConfig()
	four.Snapshots = session.NewSnapshotMemo(0)
	four.Devices = 4
	evalFour, err := RunEvaluation(four)
	if err != nil {
		t.Fatalf("RunEvaluation devices=4: %v", err)
	}
	requireEvalParity(t, "devices 1 vs 4", evalOne, evalFour)
}

// TestPersistentWarmParity is the durability gate: a memo-cold evaluation
// that persists snapshots, followed by a fresh-memo evaluation reading the
// same store (the "process restart"), must produce bit-identical headline
// metrics — and the warm run must actually serve prefixes from disk.
func TestPersistentWarmParity(t *testing.T) {
	dir := t.TempDir()
	cacheFor := func() *artifact.Cache {
		c, err := artifact.NewPersistentCache(dir)
		if err != nil {
			t.Fatalf("NewPersistentCache: %v", err)
		}
		return c
	}

	cold := DefaultEvalConfig()
	cold.Cache = cacheFor()
	cold.Snapshots = session.NewSnapshotMemo(0)
	cold.PersistSnapshots = true
	evalCold, err := RunEvaluation(cold)
	if err != nil {
		t.Fatalf("cold RunEvaluation: %v", err)
	}
	if _, _, writes := cold.Snapshots.DiskStats(); writes == 0 {
		t.Fatal("cold run persisted no snapshots")
	}

	warm := DefaultEvalConfig()
	warm.Cache = cacheFor()
	warm.Snapshots = session.NewSnapshotMemo(0)
	warm.PersistSnapshots = true
	evalWarm, err := RunEvaluation(warm)
	if err != nil {
		t.Fatalf("warm RunEvaluation: %v", err)
	}
	hits, _, _ := warm.Snapshots.DiskStats()
	if hits == 0 {
		t.Fatal("warm run never read a snapshot back from disk")
	}
	requireEvalParity(t, "persistent cold vs warm", evalCold, evalWarm)
}
