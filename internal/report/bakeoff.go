package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"fragdroid/internal/artifact"
	"fragdroid/internal/corpus"
	"fragdroid/internal/sensitive"
	"fragdroid/internal/session"
	"fragdroid/internal/statics"
	"fragdroid/internal/strategy"
)

// The strategy bake-off: every named strategy runs over the 15-app corpus at
// the full budget, several seeds apart, and the coverage curve of each run is
// read back at a grid of intermediate budgets. The table answers the question
// the single-system evaluation cannot: not just where each strategy ends up,
// but how fast it gets there and how much the answer wobbles with the seed
// ("Are We There Yet?", PAPERS.md — mean and variance across seeds, coverage
// as a function of budget).

// BakeoffConfig tunes a strategy bake-off run.
type BakeoffConfig struct {
	// Strategies is the ordered list of registry names to compare. Empty
	// means every registered strategy.
	Strategies []string
	// Budget is the full per-run budget (test cases for script strategies,
	// events for the random ones; both bill one test case per unit, so the
	// curves share an x-axis). Zero means 400.
	Budget int
	// Grid is the ascending list of budgets the curves are sampled at.
	// Empty derives quarters of Budget: B/8, B/4, B/2, B.
	Grid []int
	// Seeds is how many seeds each strategy runs at (BaseSeed, BaseSeed+1,
	// ...). Zero means 3, the floor for a variance worth printing.
	Seeds int
	// BaseSeed is the first seed. Zero means 7.
	BaseSeed int64
	// Inputs is the analyst input dependency shared by all strategies.
	Inputs map[string]string
	// Parallel bounds concurrent per-app runs inside one strategy×seed pass.
	// Zero or one means sequential; results are identical either way.
	Parallel int
	// Cache memoizes app builds and static extractions. Nil means
	// artifact.Default.
	Cache *artifact.Cache
}

func (cfg BakeoffConfig) withDefaults() BakeoffConfig {
	if len(cfg.Strategies) == 0 {
		cfg.Strategies = strategy.Names()
	}
	if cfg.Budget == 0 {
		cfg.Budget = 400
	}
	if len(cfg.Grid) == 0 {
		for _, d := range []int{8, 4, 2, 1} {
			if b := cfg.Budget / d; b > 0 {
				cfg.Grid = append(cfg.Grid, b)
			}
		}
	}
	if cfg.Seeds == 0 {
		cfg.Seeds = 3
	}
	if cfg.BaseSeed == 0 {
		cfg.BaseSeed = 7
	}
	if cfg.Cache == nil {
		cfg.Cache = artifact.Default
	}
	return cfg
}

// BakeoffCell is one strategy's activity coverage at one budget, aggregated
// over seeds: the mean and variance of the per-seed corpus means.
type BakeoffCell struct {
	Budget int `json:"budget"`
	// MeanActPct is the mean (across seeds) of the per-seed mean (across
	// apps) effective-activity coverage rate at this budget.
	MeanActPct float64 `json:"mean_activity_pct"`
	// VarActPct is the population variance of the per-seed means.
	VarActPct float64 `json:"variance"`
}

// BakeoffRow is one strategy's aggregate behaviour over the corpus.
type BakeoffRow struct {
	Strategy string        `json:"strategy"`
	Cells    []BakeoffCell `json:"curve"`
	// FragmentPct is the mean (seeds, then apps) effective-fragment coverage
	// at the full budget. Activity-level strategies score 0 by construction.
	FragmentPct float64 `json:"fragment_pct"`
	// APIs is the number of distinct sensitive APIs observed at the base
	// seed (deterministic strategies observe the same set at every seed).
	APIs int `json:"apis"`
	// TestCases is the total work spent at the base seed.
	TestCases int `json:"test_cases"`
}

// Bakeoff is the full comparison result.
type Bakeoff struct {
	Rows     []BakeoffRow `json:"strategies"`
	Apps     int          `json:"apps"`
	Seeds    int          `json:"seeds"`
	BaseSeed int64        `json:"base_seed"`
	Budget   int          `json:"budget"`
	Grid     []int        `json:"grid"`
}

// JSON renders the bake-off as indented JSON (the BENCH_PR7.json shape).
func (b *Bakeoff) JSON() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// coverageAt reads a coverage curve at one budget: the activity count of the
// last sample at or under it (zero before the first sample).
func coverageAt(curve []session.CurvePoint, budget int) int {
	acts := 0
	for _, p := range curve {
		if p.TestCase > budget {
			break
		}
		acts = p.Activities
	}
	return acts
}

// RunBakeoff runs every requested strategy × seed over the corpus and folds
// the curves into the comparison table. One trace library is built up front
// (each target app is excluded from its own matches by the trace strategy
// itself), and every run is cold — no snapshot memo — so budgets buy the
// same work for every strategy.
func RunBakeoff(cfg BakeoffConfig) (*Bakeoff, error) {
	cfg = cfg.withDefaults()
	for _, name := range cfg.Strategies {
		if !strategy.Known(name) {
			return nil, fmt.Errorf("report: unknown strategy %q (known: %s)",
				name, strings.Join(strategy.Names(), ", "))
		}
	}
	rows := corpus.PaperRows()
	exs := make([]*statics.Extraction, len(rows))
	errs := make([]error, len(rows))
	limits := StageLimits{}.withDefault(cfg.Parallel)
	runStaged(len(rows), []stage{
		{limit: limits.Extract, fn: func(i int) bool {
			ex, err := cfg.Cache.Extraction(corpus.PaperSpec(rows[i]))
			if err != nil {
				errs[i] = fmt.Errorf("report: extract %s: %w", rows[i].Package, err)
				return false
			}
			exs[i] = ex
			return true
		}},
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	var lib *strategy.Library
	for _, name := range cfg.Strategies {
		if name == "trace" {
			l, err := strategy.CorpusLibrary("")
			if err != nil {
				return nil, fmt.Errorf("report: trace library: %w", err)
			}
			lib = l
			break
		}
	}

	bo := &Bakeoff{
		Apps:     len(rows),
		Seeds:    cfg.Seeds,
		BaseSeed: cfg.BaseSeed,
		Budget:   cfg.Budget,
		Grid:     cfg.Grid,
	}
	for _, name := range cfg.Strategies {
		row, err := runBakeoffRow(name, cfg, rows, exs, lib)
		if err != nil {
			return nil, err
		}
		bo.Rows = append(bo.Rows, row)
	}
	return bo, nil
}

// runBakeoffRow runs one strategy at every seed and aggregates.
func runBakeoffRow(name string, cfg BakeoffConfig, rows []corpus.PaperRow, exs []*statics.Extraction, lib *strategy.Library) (BakeoffRow, error) {
	// seedMeans[k][g] is seed k's corpus-mean activity coverage at grid[g].
	seedMeans := make([][]float64, cfg.Seeds)
	var fragPctSum float64
	var baseAPIs, baseCases int
	limits := StageLimits{}.withDefault(cfg.Parallel)
	for k := 0; k < cfg.Seeds; k++ {
		outs := make([]*session.Outcome, len(rows))
		errs := make([]error, len(rows))
		runStaged(len(rows), []stage{
			{limit: limits.Run, fn: func(i int) bool {
				out, err := strategy.Run(name, exs[i], strategy.Options{
					Budget:  cfg.Budget,
					Seed:    cfg.BaseSeed + int64(k),
					Inputs:  cfg.Inputs,
					Curve:   true,
					Library: lib,
				})
				if err != nil {
					errs[i] = fmt.Errorf("report: %s on %s (seed %d): %w",
						name, rows[i].Package, cfg.BaseSeed+int64(k), err)
					return false
				}
				outs[i] = out
				return true
			}},
		})
		if err := errors.Join(errs...); err != nil {
			return BakeoffRow{}, err
		}

		means := make([]float64, len(cfg.Grid))
		var collectors []*sensitive.Collector
		var stats session.Stats
		for i, out := range outs {
			denom := len(exs[i].EffectiveActivities)
			for g, b := range cfg.Grid {
				means[g] += rate(coverageAt(out.Curve, b), denom)
			}
			eff := make(map[string]bool, len(exs[i].EffectiveFragments))
			for _, f := range exs[i].EffectiveFragments {
				eff[f] = true
			}
			nf := 0
			for _, f := range out.VisitedFragments {
				if eff[f] {
					nf++
				}
			}
			fragPctSum += rate(nf, len(exs[i].EffectiveFragments)) / float64(len(rows))
			collectors = append(collectors, out.Collector)
			stats = stats.Add(out.Stats)
		}
		for g := range means {
			means[g] /= float64(len(rows))
		}
		seedMeans[k] = means
		if k == 0 {
			baseAPIs = sensitive.NewMatrix(collectors).ComputeStats().DistinctAPIs
			baseCases = stats.TestCases
		}
	}

	row := BakeoffRow{
		Strategy:    name,
		FragmentPct: fragPctSum / float64(cfg.Seeds),
		APIs:        baseAPIs,
		TestCases:   baseCases,
	}
	for g, b := range cfg.Grid {
		mean := 0.0
		for k := range seedMeans {
			mean += seedMeans[k][g]
		}
		mean /= float64(cfg.Seeds)
		varsum := 0.0
		for k := range seedMeans {
			d := seedMeans[k][g] - mean
			varsum += d * d
		}
		row.Cells = append(row.Cells, BakeoffCell{
			Budget:     b,
			MeanActPct: mean,
			VarActPct:  varsum / float64(cfg.Seeds),
		})
	}
	return row, nil
}
