package report

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"fragdroid/internal/strategy"
)

// TestBakeoffCompares pins the bake-off harness: every registered strategy
// over the corpus at a small budget, three seeds, and the derived table must
// be internally consistent — a cell per grid budget, coverage monotone
// non-decreasing along the budget axis, deterministic strategies with zero
// variance, and the explorer beating plain Monkey on mean coverage at the
// full budget.
func TestBakeoffCompares(t *testing.T) {
	bo, err := RunBakeoff(BakeoffConfig{Budget: 160, Seeds: 3, BaseSeed: 7})
	if err != nil {
		t.Fatalf("RunBakeoff: %v", err)
	}
	if got, want := len(bo.Rows), len(strategy.Names()); got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}
	if bo.Seeds != 3 || bo.Apps != 15 {
		t.Fatalf("bakeoff shape: seeds=%d apps=%d", bo.Seeds, bo.Apps)
	}
	byName := make(map[string]BakeoffRow)
	for _, r := range bo.Rows {
		byName[r.Strategy] = r
		if len(r.Cells) != len(bo.Grid) {
			t.Fatalf("%s: %d cells, grid %v", r.Strategy, len(r.Cells), bo.Grid)
		}
		last := 0.0
		for _, c := range r.Cells {
			if c.MeanActPct < last {
				t.Errorf("%s: coverage shrank along the budget axis: %.2f after %.2f",
					r.Strategy, c.MeanActPct, last)
			}
			last = c.MeanActPct
			if c.VarActPct < 0 {
				t.Errorf("%s: negative variance %.4f", r.Strategy, c.VarActPct)
			}
		}
		if full := r.Cells[len(r.Cells)-1]; full.MeanActPct <= 0 {
			t.Errorf("%s: zero coverage at full budget", r.Strategy)
		}
		if r.TestCases == 0 || r.APIs == 0 {
			t.Errorf("%s: empty work/API aggregates: cases=%d apis=%d",
				r.Strategy, r.TestCases, r.APIs)
		}
	}
	// Deterministic strategies must not wobble with the seed.
	for _, name := range []string{"explorer", "activity", "model", "trace"} {
		for _, c := range byName[name].Cells {
			if c.VarActPct != 0 {
				t.Errorf("%s: deterministic strategy has variance %.4f at budget %d",
					name, c.VarActPct, c.Budget)
			}
		}
	}
	// The paper's premise at bake-off scale: the evolutionary explorer out-
	// covers unguided Monkey under the same budget.
	exp := byName["explorer"].Cells[len(bo.Grid)-1].MeanActPct
	mk := byName["monkey"].Cells[len(bo.Grid)-1].MeanActPct
	if exp <= mk {
		t.Errorf("explorer %.2f%% <= monkey %.2f%% at full budget", exp, mk)
	}
	// Only the fragment-aware strategies credit fragments.
	if byName["explorer"].FragmentPct <= 0 {
		t.Error("explorer credited no fragments")
	}
	if byName["monkey"].FragmentPct != 0 || byName["biased"].FragmentPct != 0 {
		t.Error("activity-level strategies credited fragments")
	}

	out := RenderBakeoff(bo)
	for _, want := range append(strategy.Names(), "Strategy bake-off", "act%@160") {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}

	data, err := bo.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var back Bakeoff
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if !reflect.DeepEqual(&back, bo) {
		t.Error("JSON round-trip changed the bake-off")
	}
}

// TestBakeoffRejectsUnknownStrategy pins the validation path.
func TestBakeoffRejectsUnknownStrategy(t *testing.T) {
	if _, err := RunBakeoff(BakeoffConfig{Strategies: []string{"bogus"}}); err == nil {
		t.Fatal("RunBakeoff accepted an unknown strategy")
	}
}

// TestEvaluationStrategySelection pins EvalConfig.Strategy: a monkey-driven
// evaluation fills the generic outcome (run metrics, Table II) without the
// explorer-specific result, and unknown names are rejected.
func TestEvaluationStrategySelection(t *testing.T) {
	cfg := DefaultEvalConfig()
	cfg.Strategy = "monkey"
	cfg.Seed = 7
	cfg.Explorer.MaxTestCases = 200
	ev, err := RunEvaluation(cfg)
	if err != nil {
		t.Fatalf("RunEvaluation(monkey): %v", err)
	}
	if ev.Strategy != "monkey" {
		t.Errorf("strategy label = %q", ev.Strategy)
	}
	for _, ar := range ev.Apps {
		if ar.Result != nil {
			t.Fatalf("%s: monkey run filled the explorer result", ar.Row.Package)
		}
		if ar.Outcome == nil || ar.Outcome.Strategy != "monkey" {
			t.Fatalf("%s: missing or mislabeled outcome", ar.Row.Package)
		}
	}
	if tot := ev.TotalStats(); tot.TestCases != 200*len(ev.Apps) {
		t.Errorf("total test cases = %d, want %d", tot.TestCases, 200*len(ev.Apps))
	}
	if st := ev.BuildTable2().ComputeStats(); st.DistinctAPIs == 0 {
		t.Error("monkey evaluation observed no sensitive APIs")
	}
	metrics := RenderRunMetrics(ev)
	if !strings.Contains(metrics, "| monkey |") {
		t.Error("run-metrics table missing the strategy column")
	}

	cfg.Strategy = "bogus"
	if _, err := RunEvaluation(cfg); err == nil {
		t.Fatal("RunEvaluation accepted an unknown strategy")
	}
}
