package report

import (
	"strings"
	"testing"

	"fragdroid/internal/apk"
	"fragdroid/internal/callgraph"
	"fragdroid/internal/device"
	"fragdroid/internal/paths"
	"fragdroid/internal/robotium"
)

// TestGapClassificationClosesCeiling pins the closed loop over the static
// ceiling: every one of the 313 static invocation relations falls into
// exactly one bucket, per-app sums equal the per-app ceiling, and the
// confirmed bucket equals the 269 dynamically observed relations.
func TestGapClassificationClosesCeiling(t *testing.T) {
	ev := evaluation(t)
	g := ev.BuildGapClassification()
	c := ev.BuildCeiling()
	if len(g.Rows) != len(c.Rows) {
		t.Fatalf("rows = %d, ceiling rows = %d", len(g.Rows), len(c.Rows))
	}
	for i, r := range g.Rows {
		cr := c.Rows[i]
		if r.Package != cr.Package {
			t.Fatalf("row %d: package %s vs ceiling %s", i, r.Package, cr.Package)
		}
		if r.Static() != cr.StaticInvocations {
			t.Errorf("%s: buckets sum to %d, static ceiling %d",
				r.Package, r.Static(), cr.StaticInvocations)
		}
		if r.Confirmed != cr.DynInvocations {
			t.Errorf("%s: confirmed %d, dynamic invocations %d",
				r.Package, r.Confirmed, cr.DynInvocations)
		}
	}
	tot := g.Totals()
	if tot.Static() != 313 {
		t.Errorf("total static relations = %d, want 313", tot.Static())
	}
	if tot.Confirmed != 269 {
		t.Errorf("total confirmed relations = %d, want 269", tot.Confirmed)
	}
	if tot.Blocked != 0 {
		t.Errorf("total blocked relations = %d, want 0 on the paper corpus", tot.Blocked)
	}
	out := RenderGapClassification(g)
	if !strings.Contains(out, "GAP CLASSIFICATION") || !strings.Contains(out, "TOTAL") {
		t.Errorf("RenderGapClassification output malformed:\n%s", out)
	}
}

// TestPathSoundness is the companion of TestCeilingSoundness one level up the
// tooling: dynamic ⊆ lifted ⊆ static. Every dynamically confirmed (API,
// component) relation must have at least one statically lifted route, and at
// least one of those routes must replay on a fresh device session and fire
// the API from that component — the lifted paths are actionable repro
// scripts, not just path existence claims.
func TestPathSoundness(t *testing.T) {
	for _, ar := range evaluation(t).Apps {
		ex := ar.Result.Extraction
		plans := make(map[string]paths.SitePlan)
		p := paths.New(ex, paths.DefaultConfig())
		for _, sp := range p.PlanAll() {
			plans[sp.Target.API+"|"+sp.Target.Class] = sp
		}
		for _, u := range ar.Result.Collector.Usages() {
			for _, cls := range u.Classes {
				sp, ok := plans[u.API+"|"+cls]
				if !ok {
					t.Errorf("%s: confirmed relation (%s, %s) has no site plan",
						ar.Row.Package, u.API, cls)
					continue
				}
				if !sp.Liftable() {
					t.Errorf("%s: confirmed relation (%s, %s) lifted no route (blocked: %v)",
						ar.Row.Package, u.API, cls, sp.Blocked)
					continue
				}
				if !replaysAndFires(ar.App, sp) {
					t.Errorf("%s: no lifted route of (%s, %s) replays and fires the API",
						ar.Row.Package, u.API, cls)
				}
			}
		}
	}
}

// replaysAndFires replays the plan's routes on fresh devices until one fires
// the target API attributed to the target component.
func replaysAndFires(app *apk.App, sp paths.SitePlan) bool {
	for _, r := range sp.Routes {
		fired := false
		dev := device.New(app, device.Options{Monitor: func(e device.SensitiveEvent) {
			if e.API == sp.Target.API && callgraph.OuterComponent(e.Class) == sp.Target.Class {
				fired = true
			}
		}})
		robotium.Run(dev, r.Script, robotium.Options{})
		if fired {
			return true
		}
	}
	return false
}

// TestDirectedStudyEconomy runs the corpus-wide directed-vs-undirected
// comparison: directed reaches every target the undirected search reaches,
// skipped targets are exactly the dynamically unreachable ones the plan
// blocked, and the mean steps-to-target ratio meets the ≤0.5× bar.
func TestDirectedStudyEconomy(t *testing.T) {
	cfg := DefaultEvalConfig()
	s, err := RunDirectedStudy(cfg, []int64{1, 2, 3})
	if err != nil {
		t.Fatalf("RunDirectedStudy: %v", err)
	}
	if len(s.Targets) == 0 {
		t.Fatal("study produced no targets")
	}
	for _, tr := range s.Targets {
		if tr.UndirectedReached && !tr.DirectedReached {
			t.Errorf("%s %s: undirected reached the target but directed did not",
				tr.Package, tr.API)
		}
		if tr.DirectedSkipped && tr.UndirectedReached {
			t.Errorf("%s %s: directed skipped a dynamically reachable target",
				tr.Package, tr.API)
		}
	}
	if r := s.MeanStepRatio(); r > 0.5 {
		t.Errorf("mean step ratio = %.3f, want <= 0.5", r)
	}
	out := RenderDirectedStudy(s)
	if !strings.Contains(out, "DIRECTED STUDY") || !strings.Contains(out, "mean step ratio") {
		t.Errorf("RenderDirectedStudy output malformed:\n%s", out)
	}
	b := BuildDirectedBench(s, evaluation(t).BuildGapClassification())
	if b.GapStatic != 313 || b.GapConfirmed != 269 {
		t.Errorf("bench gap totals = %d/%d, want 313/269", b.GapStatic, b.GapConfirmed)
	}
}
