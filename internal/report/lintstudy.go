package report

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"fragdroid/internal/apk"
	"fragdroid/internal/corpus"
	"fragdroid/internal/lint"
	"fragdroid/internal/statics"
)

// CeilingRow compares, for one corpus app, the static reachability ceiling
// (the forced-start fixpoint over the whole-program call graph) with what the
// dynamic exploration actually confirmed.
type CeilingRow struct {
	Package string
	// Activities and fragments: effective total, static ceiling, dynamic visits.
	SumA, StaticA, DynA int
	SumF, StaticF, DynF int
	// Sensitive APIs: distinct APIs and (API, component) invocation pairs.
	StaticAPIs, DynAPIs               int
	StaticInvocations, DynInvocations int
}

// Ceiling is the static-vs-dynamic comparison over the Table I corpus.
type Ceiling struct {
	Rows []CeilingRow
}

// Totals sums the rows.
func (c *Ceiling) Totals() CeilingRow {
	t := CeilingRow{Package: "TOTAL"}
	for _, r := range c.Rows {
		t.SumA += r.SumA
		t.StaticA += r.StaticA
		t.DynA += r.DynA
		t.SumF += r.SumF
		t.StaticF += r.StaticF
		t.DynF += r.DynF
		t.StaticAPIs += r.StaticAPIs
		t.DynAPIs += r.DynAPIs
		t.StaticInvocations += r.StaticInvocations
		t.DynInvocations += r.DynInvocations
	}
	return t
}

// BuildCeiling derives the comparison from an evaluation run. The static
// side intersects the reach fixpoint with the effective sets, so both
// columns count against the same denominator.
func (ev *Evaluation) BuildCeiling() *Ceiling {
	c := &Ceiling{}
	for _, ar := range ev.Apps {
		ex := ar.Result.Extraction
		row := CeilingRow{
			Package: ar.Row.Package,
			SumA:    len(ex.EffectiveActivities),
			SumF:    len(ex.EffectiveFragments),
			DynA:    len(ar.Result.VisitedActivities()),
			DynF:    len(ar.Result.VisitedFragments()),
		}
		for _, a := range ex.EffectiveActivities {
			if ex.StaticReach.Activities[a] {
				row.StaticA++
			}
		}
		for _, f := range ex.EffectiveFragments {
			if ex.StaticReach.Fragments[f] {
				row.StaticF++
			}
		}
		row.StaticAPIs = len(ex.StaticReach.APIs)
		row.StaticInvocations = ex.StaticReach.Invocations()
		for _, u := range ar.Result.Collector.Usages() {
			row.DynAPIs++
			row.DynInvocations += len(u.Classes)
		}
		c.Rows = append(c.Rows, row)
	}
	return c
}

// RenderCeiling renders the static-ceiling table: for each app, how much of
// the effective component set the call-graph fixpoint proves reachable, next
// to what the explorer confirmed. Dynamic never exceeding static is the
// soundness invariant TestCeilingSoundness pins.
func RenderCeiling(c *Ceiling) string {
	var b strings.Builder
	b.WriteString("STATIC CEILING: call-graph reachability vs dynamic confirmation (static | dynamic / effective)\n\n")
	fmt.Fprintf(&b, "%-32s | %-15s | %-15s | %-11s | %-11s\n",
		"Package Name", "Activities", "Fragments", "APIs", "Invocations")
	b.WriteString(strings.Repeat("-", 98))
	b.WriteByte('\n')
	rows := append(append([]CeilingRow(nil), c.Rows...), c.Totals())
	for _, r := range rows {
		fmt.Fprintf(&b, "%-32s | %-15s | %-15s | %-11s | %-11s\n",
			r.Package,
			fmt.Sprintf("%3d |%3d /%3d", r.StaticA, r.DynA, r.SumA),
			fmt.Sprintf("%3d |%3d /%3d", r.StaticF, r.DynF, r.SumF),
			fmt.Sprintf("%4d |%4d", r.StaticAPIs, r.DynAPIs),
			fmt.Sprintf("%4d |%4d", r.StaticInvocations, r.DynInvocations))
	}
	b.WriteString(strings.Repeat("-", 98))
	b.WriteByte('\n')
	t := c.Totals()
	fmt.Fprintf(&b, "Dynamic confirmation of the static ceiling: activities %.2f%%  fragments %.2f%%  invocations %.2f%%\n",
		pctOf(t.DynA, t.StaticA), pctOf(t.DynF, t.StaticF), pctOf(t.DynInvocations, t.StaticInvocations))
	return b.String()
}

func pctOf(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// LintStudy aggregates fraglint findings over the 217-app dataset study.
type LintStudy struct {
	// Total, Packed and Analyzed mirror the study partition: packed apps
	// cannot be decompiled, so they cannot be linted either.
	Total, Packed, Analyzed int
	// AppsWithFindings counts analyzed apps with at least one diagnostic.
	AppsWithFindings int
	// Findings is the total diagnostic count; ByCode and BySeverity break it
	// down per analyzer code and per severity name.
	Findings   int
	ByCode     map[string]int
	BySeverity map[string]int
	// Worst is the highest severity seen anywhere in the corpus.
	Worst lint.Severity
}

// newLintStudy returns an empty aggregate for total apps.
func newLintStudy(total int) *LintStudy {
	return &LintStudy{
		Total:      total,
		ByCode:     make(map[string]int),
		BySeverity: make(map[string]int),
	}
}

// add folds one app's lint outcome into the aggregate. Both the positional
// and the streaming paths fold through here, so their summaries are
// identical by construction.
func (s *LintStudy) add(packed bool, diags []lint.Diagnostic) {
	if packed {
		s.Packed++
		return
	}
	s.Analyzed++
	if len(diags) > 0 {
		s.AppsWithFindings++
	}
	for _, d := range diags {
		s.Findings++
		s.ByCode[d.Code]++
		s.BySeverity[d.Severity.String()]++
		if d.Severity > s.Worst {
			s.Worst = d.Severity
		}
	}
}

// RunLintStudy lints every analyzable app of the dataset study, through the
// same artifact cache (and with the same staged pipeline and sequential
// in-order fold) as the other corpus runs. cfg.Source overrides the corpus
// and cfg.Stream selects the bounded-memory streaming fold, exactly as in
// RunStudyWith: extractions are linted as they complete and released right
// after folding, so a corpus-scale lint sweep holds O(Window) extractions.
func RunLintStudy(cfg StudyConfig) (*LintStudy, error) {
	src := cfg.source()
	n := src.Len()
	cache := cfg.cacheOrDefault()
	parallel := cfg.Parallel
	if parallel < 1 {
		parallel = 1
	}
	limits := cfg.Stages.withDefault(parallel)

	if cfg.Stream {
		window := cfg.Window
		if window <= 0 {
			window = streamWindow(limits)
		}
		type slot struct {
			spec   *corpus.AppSpec
			ex     *statics.Extraction
			packed bool
			diags  []lint.Diagnostic
			err    error
		}
		slots := make([]slot, window)
		s := newLintStudy(n)
		var errs []error
		runStreamed(n, window, []stage{
			{limit: limits.Extract, fn: func(i int) bool {
				sl := &slots[i%window]
				*sl = slot{spec: src.At(i)}
				ex, err := cache.Extraction(sl.spec)
				if errors.Is(err, apk.ErrPacked) {
					sl.packed = true
					return false
				}
				if err != nil {
					sl.err = fmt.Errorf("report: lint study %s: %w", sl.spec.Package, err)
					return false
				}
				sl.ex = ex
				return true
			}},
			{limit: limits.Run, fn: func(i int) bool {
				sl := &slots[i%window]
				sl.diags = lint.Run(sl.ex)
				return true
			}},
		}, func(i int) {
			sl := &slots[i%window]
			if sl.err != nil {
				errs = append(errs, sl.err)
			} else {
				s.add(sl.packed, sl.diags)
			}
			cache.Evict(sl.spec)
			*sl = slot{}
		})
		if err := errors.Join(errs...); err != nil {
			return nil, err
		}
		return s, nil
	}

	specs := make([]*corpus.AppSpec, n)
	for i := range specs {
		specs[i] = src.At(i)
	}
	type outcome struct {
		packed bool
		diags  []lint.Diagnostic
	}
	exs := make([]*statics.Extraction, n)
	outs := make([]outcome, n)
	errs := make([]error, n)
	runStaged(n, []stage{
		{limit: limits.Extract, fn: func(i int) bool {
			ex, err := cache.Extraction(specs[i])
			if errors.Is(err, apk.ErrPacked) {
				outs[i].packed = true
				return false
			}
			if err != nil {
				errs[i] = fmt.Errorf("report: lint study %s: %w", specs[i].Package, err)
				return false
			}
			exs[i] = ex
			return true
		}},
		{limit: limits.Run, fn: func(i int) bool {
			outs[i].diags = lint.Run(exs[i])
			return true
		}},
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	s := newLintStudy(n)
	for _, o := range outs {
		s.add(o.packed, o.diags)
	}
	return s, nil
}

// RenderLintStudy renders the corpus lint summary.
func RenderLintStudy(s *LintStudy) string {
	var b strings.Builder
	b.WriteString("FRAGLINT STUDY: diagnostics across the dataset corpus\n\n")
	fmt.Fprintf(&b, "apps: %d total, %d packed (not analyzable), %d linted\n",
		s.Total, s.Packed, s.Analyzed)
	fmt.Fprintf(&b, "findings: %d across %d apps", s.Findings, s.AppsWithFindings)
	if s.Findings > 0 {
		fmt.Fprintf(&b, " (worst severity: %s)", s.Worst)
	}
	b.WriteByte('\n')
	if len(s.BySeverity) > 0 {
		b.WriteString("by severity:\n")
		for _, name := range []string{"error", "warning", "info"} {
			if n := s.BySeverity[name]; n > 0 {
				fmt.Fprintf(&b, "  %-8s %d\n", name, n)
			}
		}
	}
	if len(s.ByCode) > 0 {
		codes := make([]string, 0, len(s.ByCode))
		for code := range s.ByCode {
			codes = append(codes, code)
		}
		sort.Strings(codes)
		b.WriteString("by analyzer:\n")
		for _, code := range codes {
			fmt.Fprintf(&b, "  %-6s %d\n", code, s.ByCode[code])
		}
	}
	return b.String()
}
