package report

import (
	"reflect"
	"testing"

	"fragdroid/internal/session"
)

// TestSnapshotMetricParity is the evaluation-level acceptance gate for the
// snapshot/restore optimization: the full 15-app evaluation with a shared
// snapshot memo produces bit-identical headline metrics to the memo-less run
// — the Table I rows and averages, the Table II aggregates (46 distinct
// APIs, 269 invocation relations), and every non-snapshot session counter —
// while actually skipping the majority of interpreter work (≥1.5× fewer
// executed steps, the single-core criterion).
func TestSnapshotMetricParity(t *testing.T) {
	off := evaluation(t) // DefaultEvalConfig leaves Snapshots nil

	cfg := DefaultEvalConfig()
	cfg.Snapshots = session.NewSnapshotMemo(0)
	on, err := RunEvaluation(cfg)
	if err != nil {
		t.Fatalf("RunEvaluation with snapshots: %v", err)
	}

	// Table I: identical rows, identical rendering, averages at the pinned
	// reproduction values either way.
	t1off, t1on := off.BuildTable1(), on.BuildTable1()
	if !reflect.DeepEqual(t1off, t1on) {
		t.Error("Table I differs between snapshots off and on")
	}
	if RenderTable1(t1off) != RenderTable1(t1on) {
		t.Error("Table I rendering differs between snapshots off and on")
	}
	aOff, fOff, vOff := t1off.Averages()
	aOn, fOn, vOn := t1on.Averages()
	if aOff != aOn || fOff != fOn || vOff != vOn {
		t.Errorf("Table I averages differ: off (%v %v %v), on (%v %v %v)",
			aOff, fOff, vOff, aOn, fOn, vOn)
	}

	// Table II: identical matrix and the §VII-C aggregates.
	t2off, t2on := off.BuildTable2(), on.BuildTable2()
	if RenderTable2(t2off) != RenderTable2(t2on) {
		t.Error("Table II rendering differs between snapshots off and on")
	}
	stOff, stOn := t2off.ComputeStats(), t2on.ComputeStats()
	if stOff != stOn {
		t.Errorf("Table II stats differ: off %+v, on %+v", stOff, stOn)
	}
	if stOn.DistinctAPIs != 46 || stOn.TotalInvocations != 269 {
		t.Errorf("snapshots-on aggregates = %d APIs / %d invocations, want 46/269",
			stOn.DistinctAPIs, stOn.TotalInvocations)
	}

	// Per-app session counters: everything except the snapshot columns must
	// be identical — same test cases, same logical steps, same crashes.
	offM, onM := off.RunMetrics(), on.RunMetrics()
	if len(offM) != len(onM) {
		t.Fatalf("run-metrics rows differ: %d vs %d", len(offM), len(onM))
	}
	for i := range offM {
		a, b := offM[i].Stats, onM[i].Stats
		b.SnapshotHits, b.SnapshotRestores, b.StepsSaved = 0, 0, 0
		b.Evictions, b.BytesPinned = 0, 0
		if offM[i].Package != onM[i].Package || a != b {
			t.Errorf("%s: counters diverged:\noff %+v\non  %+v", offM[i].Package, a, b)
		}
	}

	// The optimization must be real: snapshots were hit, and the executed
	// interpreter work shrank by at least the accepted 1.5× factor.
	tot := on.TotalStats()
	if tot.SnapshotHits == 0 || tot.SnapshotRestores == 0 {
		t.Fatalf("snapshots-on evaluation never hit the memo: %+v", tot)
	}
	if offTot := off.TotalStats(); offTot.Steps != tot.Steps {
		t.Errorf("logical steps differ: off %d, on %d", offTot.Steps, tot.Steps)
	}
	executed := tot.Steps - tot.StepsSaved
	if executed <= 0 {
		t.Fatalf("executed steps = %d with %d saved of %d", executed, tot.StepsSaved, tot.Steps)
	}
	if ratio := float64(tot.Steps) / float64(executed); ratio < 1.5 {
		t.Errorf("executed-step reduction = %.2fx, want >= 1.5x (steps %d, saved %d)",
			ratio, tot.Steps, tot.StepsSaved)
	}
}
