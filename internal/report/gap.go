package report

import (
	"fmt"
	"sort"
	"strings"
)

// GapRow compares, for one app, the sensitive-API sites static analysis
// claims against what dynamic exploration confirmed. Static analysis
// overapproximates: sites inside unreachable fragments (requires-args
// reflection failures, never-committed references) are claimed but never
// fire — the SmartDroid-style motivation for combining both phases (§IX).
type GapRow struct {
	Package string
	// StaticSites counts distinct (API, class) pairs found statically.
	StaticSites int
	// ConfirmedSites counts pairs whose API the run actually observed from
	// that class.
	ConfirmedSites int
}

// ConfirmedPct is the share of static claims dynamic testing confirmed.
func (g GapRow) ConfirmedPct() float64 {
	if g.StaticSites == 0 {
		return 0
	}
	return 100 * float64(g.ConfirmedSites) / float64(g.StaticSites)
}

// StaticDynamicGap derives the per-app static-vs-dynamic comparison from an
// evaluation.
func (ev *Evaluation) StaticDynamicGap() []GapRow {
	var rows []GapRow
	for _, ar := range ev.Apps {
		confirmed := make(map[string]bool)
		for _, u := range ar.Result.Collector.Usages() {
			for _, cls := range u.Classes {
				confirmed[u.API+"|"+cls] = true
			}
		}
		row := GapRow{Package: ar.Row.Package}
		for api, classes := range ar.Result.Extraction.SensitiveSites {
			for _, cls := range classes {
				row.StaticSites++
				if confirmed[api+"|"+cls] {
					row.ConfirmedSites++
				}
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Package < rows[j].Package })
	return rows
}

// RenderGap renders the static-vs-dynamic comparison.
func RenderGap(rows []GapRow) string {
	var b strings.Builder
	b.WriteString("Static vs dynamic sensitive-API sites\n\n")
	fmt.Fprintf(&b, "%-34s %8s %10s %10s\n", "Package", "static", "confirmed", "rate")
	b.WriteString(strings.Repeat("-", 66))
	b.WriteByte('\n')
	var st, cf int
	for _, r := range rows {
		fmt.Fprintf(&b, "%-34s %8d %10d %9.1f%%\n",
			r.Package, r.StaticSites, r.ConfirmedSites, r.ConfirmedPct())
		st += r.StaticSites
		cf += r.ConfirmedSites
	}
	b.WriteString(strings.Repeat("-", 66))
	b.WriteByte('\n')
	total := GapRow{StaticSites: st, ConfirmedSites: cf}
	fmt.Fprintf(&b, "%-34s %8d %10d %9.1f%%\n", "TOTAL", st, cf, total.ConfirmedPct())
	b.WriteString("\nUnconfirmed sites sit in components dynamic testing could not reach\n")
	b.WriteString("(reflection failures, never-committed fragments, gated activities).\n")
	return b.String()
}
