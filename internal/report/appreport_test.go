package report

import (
	"strings"
	"testing"

	"fragdroid/internal/corpus"
	"fragdroid/internal/explorer"
)

func TestRenderAppReport(t *testing.T) {
	app, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := explorer.Explore(app, explorer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	md := RenderAppReport("com.demo.app", res)
	for _, want := range []string{
		"# FragDroid report — com.demo.app",
		"## Coverage",
		"| activities |",
		"## Visits",
		"reflection",
		"## Not visited",
		"com.demo.app.VIP",
		"## Sensitive APIs",
		"internet/connect",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The VIP miss carries its transcript reason (reflection failure).
	if !strings.Contains(md, "VIP — ") && !strings.Contains(md, "VIP\n") {
		t.Errorf("VIP line malformed:\n%s", md)
	}
	for _, line := range strings.Split(md, "\n") {
		if strings.Contains(line, "com.demo.app.VIP") && strings.HasPrefix(line, "- ") {
			if !strings.Contains(line, "failed") {
				t.Errorf("VIP miss has no reason: %q", line)
			}
		}
	}
}
