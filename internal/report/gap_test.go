package report

import (
	"strings"
	"testing"
)

func TestStaticDynamicGap(t *testing.T) {
	ev := evaluation(t)
	rows := ev.StaticDynamicGap()
	if len(rows) != 15 {
		t.Fatalf("rows = %d", len(rows))
	}
	var st, cf int
	for _, r := range rows {
		if r.ConfirmedSites > r.StaticSites {
			t.Errorf("%s: confirmed %d > static %d", r.Package, r.ConfirmedSites, r.StaticSites)
		}
		if r.StaticSites == 0 {
			t.Errorf("%s: no static sites at all", r.Package)
		}
		st += r.StaticSites
		cf += r.ConfirmedSites
	}
	// The corpus places some APIs in unreachable components, so the gap is
	// real: strictly fewer confirmed sites than static claims.
	if cf >= st {
		t.Errorf("no static-dynamic gap: %d confirmed of %d", cf, st)
	}
	// But dynamic testing confirms the clear majority.
	if float64(cf) < 0.6*float64(st) {
		t.Errorf("implausibly low confirmation: %d of %d", cf, st)
	}
	out := RenderGap(rows)
	for _, want := range []string{"Static vs dynamic", "TOTAL", "com.inditex.zara"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
