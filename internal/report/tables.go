package report

import (
	"fmt"
	"strings"

	"fragdroid/internal/sensitive"
	"fragdroid/internal/session"
)

// sessionStats aliases the shared run-stats shape for the renderers.
type sessionStats = session.Stats

// RenderTable1 renders the measured coverage table in the layout of the
// paper's Table I, with the published numbers alongside for comparison.
func RenderTable1(t *Table1) string {
	var b strings.Builder
	b.WriteString("TABLE I: Coverage of Activities and Fragments Detection (measured | paper)\n\n")
	fmt.Fprintf(&b, "%-32s %-13s | %-17s | %-17s | %-17s\n",
		"Package Name", "Downloads", "Activities", "Fragments", "Frag. in Vis. Act.")
	fmt.Fprintf(&b, "%-32s %-13s | %-17s | %-17s | %-17s\n",
		"", "", "Vis/Sum  Rate", "Vis/Sum  Rate", "Vis/Sum  Rate")
	b.WriteString(strings.Repeat("-", 110))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-32s %-13s | %3d/%-3d %6.2f%% | %3d/%-3d %6.2f%% | %3d/%-3d %6.2f%%\n",
			r.Package, r.Downloads,
			r.VisA, r.SumA, r.RateA(),
			r.VisF, r.SumF, r.RateF(),
			r.VisFiVA, r.SumFiVA, r.RateFiVA())
		fmt.Fprintf(&b, "%-32s %-13s | %3d/%-3d (paper) | %3d/%-3d (paper) | %3d/%-3d (paper)\n",
			"", "",
			r.Paper.VisActs, r.Paper.SumActs,
			r.Paper.VisFrags, r.Paper.SumFrags,
			r.Paper.PaperFiVAVis, r.Paper.PaperFiVASum)
	}
	b.WriteString(strings.Repeat("-", 110))
	b.WriteByte('\n')
	a, f, fv := t.Averages()
	fmt.Fprintf(&b, "Average rates: Activities %.2f%% (paper 71.94%%)  Fragments %.2f%% (paper 66%%)  FiVA %.2f%%\n",
		a, f, fv)
	return b.String()
}

// RenderTable2 renders the sensitive-operations matrix in the layout of the
// paper's Table II. Columns are numbered; a legend maps numbers to package
// names. Marks: ● invoked by Activity, ◐ by Fragment, ⊙ by both.
func RenderTable2(m *sensitive.Matrix) string {
	var b strings.Builder
	b.WriteString("TABLE II: Sensitive Operations Detection\n")
	b.WriteString("Marks: ● Activity   ◐ Fragment   ⊙ Both\n\n")
	for i, app := range m.Apps {
		fmt.Fprintf(&b, "  [%2d] %s\n", i+1, app)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-48s", "Sensitive API")
	for i := range m.Apps {
		fmt.Fprintf(&b, " %2d", i+1)
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 48+3*len(m.Apps)))
	b.WriteByte('\n')
	lastCat := ""
	for _, api := range m.APIs {
		if cat := sensitive.Category(api); cat != lastCat {
			if lastCat != "" {
				b.WriteByte('\n')
			}
			lastCat = cat
		}
		fmt.Fprintf(&b, "%-48s", api)
		for _, app := range m.Apps {
			fmt.Fprintf(&b, " %s ", m.Cell(api, app))
		}
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat("-", 48+3*len(m.Apps)))
	b.WriteByte('\n')
	st := m.ComputeStats()
	fmt.Fprintf(&b, "%s\n", st)
	b.WriteString("Paper: 46 sensitive APIs, 269 invocations, 49% fragment-associated, >=9.6% missed by Activity-level tools\n")
	return b.String()
}

// RenderRunMetrics renders the per-app session counters of an evaluation as
// a markdown table, with a totals row.
func RenderRunMetrics(ev *Evaluation) string {
	var b strings.Builder
	b.WriteString("## Run metrics\n\n")
	b.WriteString("| app | strategy | test cases | device steps | replays | reflection attempts | reflection failures | forced starts | input fills | crashes | snapshot hits | snapshot restores | steps saved | evictions | bytes pinned |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	row := func(name, strat string, s sessionStats) {
		fmt.Fprintf(&b, "| %s | %s | %d | %d | %d | %d | %d | %d | %d | %d | %d | %d | %d | %d | %d |\n",
			name, strat, s.TestCases, s.Steps, s.Replays, s.ReflectionAttempts,
			s.ReflectionFailures, s.ForcedStarts, s.InputFills, s.Crashes,
			s.SnapshotHits, s.SnapshotRestores, s.StepsSaved, s.Evictions, s.BytesPinned)
	}
	for _, m := range ev.RunMetrics() {
		row(m.Package, m.Strategy, m.Stats)
	}
	row("**total**", ev.Strategy, ev.TotalStats())
	return b.String()
}

// RenderStudy renders the §VII-A fragment-usage study result.
func RenderStudy(s *StudyResult) string {
	var b strings.Builder
	b.WriteString("Fragment-usage study (Google Play top downloads)\n")
	fmt.Fprintf(&b, "  apps downloaded:        %d\n", s.Total)
	fmt.Fprintf(&b, "  packed / not analyzable: %d\n", s.Packed)
	fmt.Fprintf(&b, "  analyzable:             %d\n", s.Analyzable)
	fmt.Fprintf(&b, "  using Fragments:        %d (%.1f%%)\n", s.WithFragments, s.FragmentSharePct())
	b.WriteString("  paper: \"nearly 91% of these apps use Fragments\"\n")
	if len(s.ByCategory) > 0 {
		b.WriteString("\n  by category (apps / with fragments):\n")
		for _, c := range s.ByCategory {
			fmt.Fprintf(&b, "    %-18s %3d / %3d\n", c.Category, c.Apps, c.WithFragments)
		}
	}
	return b.String()
}

// RenderComparison renders the FragDroid vs baselines experiment.
func RenderComparison(c *Comparison) string {
	var b strings.Builder
	b.WriteString("Baseline comparison over the 15-app corpus\n\n")
	fmt.Fprintf(&b, "%-20s %-10s %10s %10s %6s %10s %22s %10s\n",
		"System", "Strategy", "Act cov%", "Frag cov%", "APIs", "Frag rels", "Missed FragDroid rels", "Test cases")
	b.WriteString(strings.Repeat("-", 107))
	b.WriteByte('\n')
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "%-20s %-10s %9.2f%% %9.2f%% %6d %10d %21.1f%% %10d\n",
			r.System, r.Strategy, r.ActivityPct, r.FragmentPct, r.APIs,
			r.FragmentAPIRelations, r.MissedFragmentAPIPct, r.TestCases)
	}
	b.WriteString(strings.Repeat("-", 107))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "FragDroid reference: %s\n", c.FragDroidStats)
	return b.String()
}

// RenderBakeoff renders the strategy bake-off as a markdown table: one row
// per strategy, one coverage column per grid budget (mean ± variance across
// seeds), plus fragment coverage, distinct APIs and total work at the full
// budget.
func RenderBakeoff(bo *Bakeoff) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Strategy bake-off (%d apps, %d seeds from %d, budget %d)\n\n",
		bo.Apps, bo.Seeds, bo.BaseSeed, bo.Budget)
	b.WriteString("Cells are mean ± variance of per-seed corpus-mean effective-activity coverage.\n\n")
	b.WriteString("| strategy |")
	for _, budget := range bo.Grid {
		fmt.Fprintf(&b, " act%%@%d |", budget)
	}
	b.WriteString(" frag% | APIs | test cases |\n")
	b.WriteString("|---|")
	for range bo.Grid {
		b.WriteString("---|")
	}
	b.WriteString("---|---|---|\n")
	for _, r := range bo.Rows {
		fmt.Fprintf(&b, "| %s |", r.Strategy)
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " %.2f ±%.2f |", c.MeanActPct, c.VarActPct)
		}
		fmt.Fprintf(&b, " %.2f | %d | %d |\n", r.FragmentPct, r.APIs, r.TestCases)
	}
	return b.String()
}
