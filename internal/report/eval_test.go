package report

import (
	"strings"
	"testing"
)

// evalOnce caches the full 15-app evaluation across tests in this package.
var cachedEval *Evaluation

func evaluation(t *testing.T) *Evaluation {
	t.Helper()
	if cachedEval != nil {
		return cachedEval
	}
	ev, err := RunEvaluation(DefaultEvalConfig())
	if err != nil {
		t.Fatalf("RunEvaluation: %v", err)
	}
	cachedEval = ev
	return ev
}

// TestTable1MatchesPaperTargets is the headline reproduction check: the
// measured Activities and Fragments columns equal the published Table I for
// every app.
func TestTable1MatchesPaperTargets(t *testing.T) {
	t1 := evaluation(t).BuildTable1()
	if len(t1.Rows) != 15 {
		t.Fatalf("rows = %d", len(t1.Rows))
	}
	for _, r := range t1.Rows {
		if r.VisA != r.Paper.VisActs || r.SumA != r.Paper.SumActs {
			t.Errorf("%s: activities %d/%d, paper %d/%d",
				r.Package, r.VisA, r.SumA, r.Paper.VisActs, r.Paper.SumActs)
		}
		if r.VisF != r.Paper.VisFrags || r.SumF != r.Paper.SumFrags {
			t.Errorf("%s: fragments %d/%d, paper %d/%d",
				r.Package, r.VisF, r.SumF, r.Paper.VisFrags, r.Paper.SumFrags)
		}
		// FiVA under the documented consistent semantics: visited equals the
		// visited fragment count, sum never below it.
		if r.VisFiVA != r.VisF {
			t.Errorf("%s: FiVA visited %d != fragments visited %d", r.Package, r.VisFiVA, r.VisF)
		}
		if r.SumFiVA < r.VisFiVA || r.SumFiVA > r.SumF {
			t.Errorf("%s: FiVA sum %d out of range [%d,%d]", r.Package, r.SumFiVA, r.VisFiVA, r.SumF)
		}
	}
	actPct, fragPct, _ := t1.Averages()
	if actPct < 71.5 || actPct > 72.5 {
		t.Errorf("average activity coverage = %.2f%%, paper 71.94%%", actPct)
	}
	if fragPct < 65.5 || fragPct > 66.5 {
		t.Errorf("average fragment coverage = %.2f%%, paper 66%%", fragPct)
	}
}

// TestTable2MatchesPaperAggregates checks the §VII-C numbers.
func TestTable2MatchesPaperAggregates(t *testing.T) {
	m := evaluation(t).BuildTable2()
	st := m.ComputeStats()
	if st.DistinctAPIs != 46 {
		t.Errorf("distinct APIs = %d, want 46", st.DistinctAPIs)
	}
	if st.TotalInvocations != 269 {
		t.Errorf("invocation relations = %d, want 269", st.TotalInvocations)
	}
	if st.FragmentShare < 0.485 || st.FragmentShare > 0.495 {
		t.Errorf("fragment share = %.4f, want ~0.49", st.FragmentShare)
	}
	if st.FragmentOnlyShare < 0.096 {
		t.Errorf("fragment-only share = %.4f, want >= 0.096", st.FragmentOnlyShare)
	}
}

func TestStudyReproduces91Percent(t *testing.T) {
	s, err := RunStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Total != 217 {
		t.Errorf("total = %d", s.Total)
	}
	if s.Packed == 0 {
		t.Error("no packed apps modelled")
	}
	if pct := s.FragmentSharePct(); pct < 90 || pct > 92.5 {
		t.Errorf("fragment share = %.1f%%, want ~91%%", pct)
	}
}

func TestRenderers(t *testing.T) {
	ev := evaluation(t)
	t1 := RenderTable1(ev.BuildTable1())
	for _, want := range []string{"TABLE I", "com.adobe.reader", "Average rates", "paper 71.94%"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 render missing %q", want)
		}
	}
	t2 := RenderTable2(ev.BuildTable2())
	for _, want := range []string{"TABLE II", "internet/connect", "sensitive APIs", "[ 1]"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 render missing %q", want)
		}
	}
	s, err := RunStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderStudy(s), "91%") {
		t.Error("study render missing paper reference")
	}
}
