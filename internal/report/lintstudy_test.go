package report

import (
	"strings"
	"testing"
)

// TestCeilingSoundness is the soundness check on the static reachability
// ceiling: everything the dynamic exploration confirmed — activities,
// fragments, sensitive APIs — must lie inside the forced-start fixpoint of
// the whole-program call graph. The converse need not hold (the ceiling is
// an over-approximation), which is exactly why it is a ceiling.
func TestCeilingSoundness(t *testing.T) {
	for _, ar := range evaluation(t).Apps {
		ex := ar.Result.Extraction
		reach := ex.StaticReach
		for _, a := range ar.Result.VisitedActivities() {
			if !reach.Activities[a] {
				t.Errorf("%s: visited activity %s outside StaticReach", ar.Row.Package, a)
			}
		}
		for _, f := range ar.Result.VisitedFragments() {
			if !reach.Fragments[f] {
				t.Errorf("%s: visited fragment %s outside StaticReach", ar.Row.Package, f)
			}
		}
		for _, u := range ar.Result.Collector.Usages() {
			owners, ok := reach.APIs[u.API]
			if !ok {
				t.Errorf("%s: dynamically observed API %s outside StaticReach", ar.Row.Package, u.API)
				continue
			}
			set := make(map[string]bool, len(owners))
			for _, o := range owners {
				set[o] = true
			}
			for _, cls := range u.Classes {
				if !set[cls] {
					t.Errorf("%s: API %s invoked by %s, not a static owner (%v)",
						ar.Row.Package, u.API, cls, owners)
				}
			}
		}
	}
}

// TestBuildCeiling pins the table's shape and the per-row invariants
// dynamic <= static <= effective for components.
func TestBuildCeiling(t *testing.T) {
	c := evaluation(t).BuildCeiling()
	if len(c.Rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(c.Rows))
	}
	for _, r := range c.Rows {
		if r.DynA > r.StaticA || r.StaticA > r.SumA {
			t.Errorf("%s: activities dyn %d / static %d / sum %d violate ordering",
				r.Package, r.DynA, r.StaticA, r.SumA)
		}
		if r.DynF > r.StaticF || r.StaticF > r.SumF {
			t.Errorf("%s: fragments dyn %d / static %d / sum %d violate ordering",
				r.Package, r.DynF, r.StaticF, r.SumF)
		}
		if r.DynAPIs > r.StaticAPIs {
			t.Errorf("%s: dynamic APIs %d exceed static %d", r.Package, r.DynAPIs, r.StaticAPIs)
		}
		if r.DynInvocations > r.StaticInvocations {
			t.Errorf("%s: dynamic invocations %d exceed static %d",
				r.Package, r.DynInvocations, r.StaticInvocations)
		}
	}
	out := RenderCeiling(c)
	if !strings.Contains(out, "STATIC CEILING") || !strings.Contains(out, "TOTAL") {
		t.Errorf("RenderCeiling output malformed:\n%s", out)
	}
}

// TestLintStudy runs fraglint across the 217-app dataset: the corpus is
// clean at severity error, and the partition matches the study's.
func TestLintStudy(t *testing.T) {
	s, err := RunLintStudy(StudyConfig{Seed: 1})
	if err != nil {
		t.Fatalf("RunLintStudy: %v", err)
	}
	if s.Total != 217 || s.Packed != 10 || s.Analyzed != 207 {
		t.Errorf("partition = %d/%d/%d, want 217/10/207", s.Total, s.Packed, s.Analyzed)
	}
	if s.Worst >= 3 {
		t.Errorf("corpus has error-severity findings (worst=%s), ByCode=%v", s.Worst, s.ByCode)
	}
	if s.BySeverity["error"] != 0 {
		t.Errorf("corpus error findings = %d, want 0", s.BySeverity["error"])
	}
	out := RenderLintStudy(s)
	if !strings.Contains(out, "FRAGLINT STUDY") || !strings.Contains(out, "217 total") {
		t.Errorf("RenderLintStudy output malformed:\n%s", out)
	}

	// Parallel fold matches the sequential one.
	p, err := RunLintStudy(StudyConfig{Seed: 1, Parallel: 8})
	if err != nil {
		t.Fatalf("parallel RunLintStudy: %v", err)
	}
	if p.Findings != s.Findings || p.AppsWithFindings != s.AppsWithFindings {
		t.Errorf("parallel study diverges: %+v vs %+v", p, s)
	}
}
