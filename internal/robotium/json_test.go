package robotium

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestScriptJSONRoundTrip(t *testing.T) {
	s := Script{Name: "login", Ops: []Op{
		LaunchMain(),
		EnterText("@id/user", "alice"),
		Click("@id/go"),
		DismissDialog(),
		Back(),
		Reflect("p.F", "@id/c"),
		ForceStart("p.Hidden"),
	}}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := ParseScript(data)
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	if back.Name != s.Name || !reflect.DeepEqual(back.Ops, s.Ops) {
		t.Fatalf("round trip:\n%+v\n%+v", back, s)
	}
	// Readable kind names in the wire form.
	for _, want := range []string{`"launch-main"`, `"enter-text"`, `"reflect"`, `"force-start"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %s:\n%s", want, data)
		}
	}
}

func TestParseScriptErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"garbage", "{"},
		{"unknown kind", `{"ops":[{"kind":"fly"}]}`},
		{"click without ref", `{"ops":[{"kind":"click"}]}`},
		{"enter without ref", `{"ops":[{"kind":"enter-text","value":"x"}]}`},
		{"force-start without activity", `{"ops":[{"kind":"force-start"}]}`},
		{"reflect without container", `{"ops":[{"kind":"reflect","fragment":"p.F"}]}`},
	}
	for _, tc := range cases {
		if _, err := ParseScript([]byte(tc.data)); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestMarshalUnknownKindFails(t *testing.T) {
	s := Script{Ops: []Op{{Kind: OpKind(99)}}}
	if _, err := json.Marshal(s); err == nil {
		t.Fatal("unknown kind marshalled")
	}
}
