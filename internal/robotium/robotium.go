// Package robotium models FragDroid's test cases: small scripts of UI
// operations that the test-case-generation module emits and an
// instrumentation runner executes on the device (§VI-B: "the template of
// test case based on the library of Robotium is accomplished with the
// information inside the items"). Scripts can be rendered as pseudo-Java
// Robotium test programs, mirroring the artifacts the paper's pipeline
// packages into the target app with Ant.
package robotium

import (
	"fmt"
	"strings"

	"fragdroid/internal/device"
)

// OpKind enumerates script operations.
type OpKind int

const (
	// OpLaunchMain launches the app's MAIN/LAUNCHER activity.
	OpLaunchMain OpKind = iota + 1
	// OpForceStart force-starts a specific activity with an empty intent.
	OpForceStart
	// OpClick clicks a widget.
	OpClick
	// OpEnterText types Value into a widget.
	OpEnterText
	// OpDismissDialog clicks blank space to close a dialog or popup.
	OpDismissDialog
	// OpBack presses the BACK key.
	OpBack
	// OpReflect performs the reflective fragment switch.
	OpReflect
)

// Op is one script operation.
type Op struct {
	Kind OpKind
	// Ref addresses the widget for OpClick/OpEnterText.
	Ref string
	// Value is the text for OpEnterText.
	Value string
	// Activity is the target for OpForceStart.
	Activity string
	// Fragment and Container parameterize OpReflect.
	Fragment  string
	Container string
}

// String renders the op compactly.
func (o Op) String() string {
	switch o.Kind {
	case OpLaunchMain:
		return "launch-main"
	case OpForceStart:
		return "force-start " + o.Activity
	case OpClick:
		return "click " + o.Ref
	case OpEnterText:
		return fmt.Sprintf("enter %s %q", o.Ref, o.Value)
	case OpDismissDialog:
		return "dismiss-dialog"
	case OpBack:
		return "back"
	case OpReflect:
		return fmt.Sprintf("reflect %s into %s", o.Fragment, o.Container)
	default:
		return fmt.Sprintf("op(%d)", int(o.Kind))
	}
}

// Convenience constructors.
func LaunchMain() Op                { return Op{Kind: OpLaunchMain} }
func ForceStart(activity string) Op { return Op{Kind: OpForceStart, Activity: activity} }
func Click(ref string) Op           { return Op{Kind: OpClick, Ref: ref} }
func EnterText(ref, v string) Op    { return Op{Kind: OpEnterText, Ref: ref, Value: v} }
func DismissDialog() Op             { return Op{Kind: OpDismissDialog} }
func Back() Op                      { return Op{Kind: OpBack} }
func Reflect(frag, container string) Op {
	return Op{Kind: OpReflect, Fragment: frag, Container: container}
}

// Script is one generated test case.
type Script struct {
	// Name identifies the test case (shows up in logs and renders).
	Name string
	Ops  []Op
}

// Append returns a copy of the script with extra ops, preserving the
// original (queue items extend their parents' operation lists).
func (s Script) Append(name string, ops ...Op) Script {
	ns := Script{Name: name, Ops: make([]Op, 0, len(s.Ops)+len(ops))}
	ns.Ops = append(ns.Ops, s.Ops...)
	ns.Ops = append(ns.Ops, ops...)
	return ns
}

// Result reports a script execution.
type Result struct {
	// Executed counts ops that ran without error.
	Executed int
	// Err is the first failure, nil on full success.
	Err error
	// FailedOp is the op that failed (zero value when Err is nil).
	FailedOp Op
	// Crashed reports whether the app force-closed during the run.
	Crashed bool
	// CrashReason carries the FC message.
	CrashReason string
}

// Options tune the runner.
type Options struct {
	// AutoDismiss closes dialogs before each op, like a test harness that
	// clears popups to keep the script on track (§VI-A Case 3).
	AutoDismiss bool
	// Observe, when set, is called after each attempted operation with its
	// outcome — the trace hook an exploration session uses to record per-op
	// events. The error is the op's failure, nil on success.
	Observe func(op Op, err error)
	// Resume skips the first Resume ops: the caller has already established
	// their effect on the device (a session restoring a memoized snapshot of
	// the route prefix). Executed starts at Resume so results are identical
	// to a full run. Observe is not called for skipped ops.
	Resume int
	// Checkpoint, when set, is called after every successfully executed op
	// with the cumulative count of established ops (including resumed ones) —
	// the hook a session uses to memoize route-prefix snapshots.
	Checkpoint func(executed int)
}

// Run executes the script on a device, stopping at the first failure.
func Run(d *device.Device, s Script, opts Options) Result {
	var res Result
	ops := s.Ops
	if opts.Resume > 0 {
		if opts.Resume > len(ops) {
			opts.Resume = len(ops)
		}
		res.Executed = opts.Resume
		ops = ops[opts.Resume:]
	}
	for _, op := range ops {
		if opts.AutoDismiss && d.HasDialog() && op.Kind != OpDismissDialog {
			if err := d.DismissDialog(); err != nil {
				return fail(d, res, op, err)
			}
		}
		var err error
		switch op.Kind {
		case OpLaunchMain:
			err = d.LaunchMain()
		case OpForceStart:
			err = d.ForceStart(op.Activity)
		case OpClick:
			err = d.Click(op.Ref)
		case OpEnterText:
			err = d.EnterText(op.Ref, op.Value)
		case OpDismissDialog:
			err = d.DismissDialog()
		case OpBack:
			err = d.Back()
		case OpReflect:
			err = d.Reflect(op.Fragment, op.Container)
		default:
			err = fmt.Errorf("robotium: unknown op kind %d", int(op.Kind))
		}
		if opts.Observe != nil {
			opts.Observe(op, err)
		}
		if err != nil {
			return fail(d, res, op, err)
		}
		res.Executed++
		if opts.Checkpoint != nil {
			opts.Checkpoint(res.Executed)
		}
	}
	res.Crashed = d.Crashed()
	res.CrashReason = d.CrashReason()
	return res
}

func fail(d *device.Device, res Result, op Op, err error) Result {
	res.Err = err
	res.FailedOp = op
	res.Crashed = d.Crashed()
	res.CrashReason = d.CrashReason()
	return res
}

// RenderJava renders the script as the pseudo-Java Robotium test program the
// paper's pipeline would package into the app.
func RenderJava(s Script) string {
	var b strings.Builder
	name := s.Name
	if name == "" {
		name = "GeneratedTest"
	}
	fmt.Fprintf(&b, "public class %s extends ActivityInstrumentationTestCase2 {\n", sanitizeIdent(name))
	b.WriteString("    private Solo solo;\n\n")
	b.WriteString("    public void testRun() throws Exception {\n")
	for _, op := range s.Ops {
		switch op.Kind {
		case OpLaunchMain:
			b.WriteString("        solo = new Solo(getInstrumentation(), getActivity());\n")
		case OpForceStart:
			fmt.Fprintf(&b, "        runShellCommand(\"am start -n %s\");\n", op.Activity)
		case OpClick:
			fmt.Fprintf(&b, "        solo.clickOnView(solo.getView(%s));\n", ridJava(op.Ref))
		case OpEnterText:
			fmt.Fprintf(&b, "        solo.enterText((EditText) solo.getView(%s), %q);\n", ridJava(op.Ref), op.Value)
		case OpDismissDialog:
			b.WriteString("        solo.clickOnScreen(10, 10); // dismiss dialog\n")
		case OpBack:
			b.WriteString("        solo.goBack();\n")
		case OpReflect:
			fmt.Fprintf(&b, "        ReflectionSwitcher.commit(solo.getCurrentActivity(), %q, %s);\n",
				op.Fragment, ridJava(op.Container))
		}
	}
	b.WriteString("    }\n}\n")
	return b.String()
}

func ridJava(ref string) string {
	s := strings.TrimPrefix(strings.TrimPrefix(ref, "@+"), "@")
	return "R." + strings.ReplaceAll(s, "/", ".")
}

func sanitizeIdent(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "GeneratedTest"
	}
	return b.String()
}
