package robotium

import (
	"errors"
	"strings"
	"testing"

	"fragdroid/internal/corpus"
	"fragdroid/internal/device"
)

const pkg = "com.demo.app."

func demoDevice(t *testing.T) *device.Device {
	t.Helper()
	app, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		t.Fatal(err)
	}
	return device.New(app, device.Options{})
}

func TestRunHappyPath(t *testing.T) {
	d := demoDevice(t)
	s := Script{Name: "login_flow", Ops: []Op{
		LaunchMain(),
		Click(corpus.NavButtonRef("Main", "Login")),
		EnterText(corpus.InputRef("Login", "Account"), "alice"),
		Click(corpus.NavButtonRef("Login", "Account")),
	}}
	res := Run(d, s, Options{})
	if res.Err != nil || res.Executed != 4 || res.Crashed {
		t.Fatalf("result = %+v", res)
	}
	if cur, _ := d.CurrentActivity(); cur != pkg+"Account" {
		t.Fatalf("current = %q", cur)
	}
}

func TestRunStopsOnError(t *testing.T) {
	d := demoDevice(t)
	s := Script{Ops: []Op{
		LaunchMain(),
		Click("@id/absent_widget"),
		Click(corpus.NavButtonRef("Main", "Login")),
	}}
	res := Run(d, s, Options{})
	if res.Err == nil || res.Executed != 1 {
		t.Fatalf("result = %+v", res)
	}
	if res.FailedOp.Ref != "@id/absent_widget" {
		t.Fatalf("FailedOp = %+v", res.FailedOp)
	}
}

func TestRunReportsCrash(t *testing.T) {
	d := demoDevice(t)
	s := Script{Ops: []Op{ForceStart(pkg + "Account")}}
	res := Run(d, s, Options{})
	if !res.Crashed || res.Err == nil {
		t.Fatalf("result = %+v", res)
	}
	if !errors.Is(res.Err, device.ErrCrashed) {
		t.Fatalf("err = %v", res.Err)
	}
	if !strings.Contains(res.CrashReason, "token") {
		t.Fatalf("reason = %q", res.CrashReason)
	}
}

func TestAutoDismiss(t *testing.T) {
	d := demoDevice(t)
	s := Script{Ops: []Op{
		LaunchMain(),
		Click(corpus.NavButtonRef("Main", "Login")),
		Click(corpus.NavButtonRef("Login", "Account")), // fails the gate, opens dialog
		EnterText(corpus.InputRef("Login", "Account"), "alice"),
		Click(corpus.NavButtonRef("Login", "Account")),
	}}
	res := Run(d, s, Options{AutoDismiss: true})
	if res.Err != nil {
		t.Fatalf("result = %+v", res)
	}
	if cur, _ := d.CurrentActivity(); cur != pkg+"Account" {
		t.Fatalf("current = %q (auto-dismiss did not recover)", cur)
	}
	// Without AutoDismiss the same script stalls on Login because the clicks
	// land on the dialog.
	d2 := demoDevice(t)
	res2 := Run(d2, s, Options{})
	if res2.Err != nil {
		t.Fatalf("result2 = %+v", res2)
	}
	if cur, _ := d2.CurrentActivity(); cur != pkg+"Login" {
		t.Fatalf("without auto-dismiss ended on %q", cur)
	}
}

func TestReflectOp(t *testing.T) {
	d := demoDevice(t)
	s := Script{Ops: []Op{
		LaunchMain(),
		Reflect(pkg+"Recent", corpus.ContainerRef("Main")),
	}}
	res := Run(d, s, Options{})
	if res.Err != nil {
		t.Fatalf("result = %+v", res)
	}
	dump, _ := d.Dump()
	if len(dump.FMFragments) != 1 || dump.FMFragments[0] != pkg+"Recent" {
		t.Fatalf("FMFragments = %v", dump.FMFragments)
	}
}

func TestAppendPreservesOriginal(t *testing.T) {
	base := Script{Name: "base", Ops: []Op{LaunchMain()}}
	ext := base.Append("ext", Click("@id/x"), Back())
	if len(base.Ops) != 1 {
		t.Fatal("Append mutated the base script")
	}
	if len(ext.Ops) != 3 || ext.Name != "ext" {
		t.Fatalf("ext = %+v", ext)
	}
}

func TestOpStringAndRenderJava(t *testing.T) {
	s := Script{Name: "reach Detail!", Ops: []Op{
		LaunchMain(),
		EnterText("@id/login_input_account", "alice"),
		Click("@id/main_btn_detail"),
		DismissDialog(),
		Back(),
		Reflect(pkg+"Recent", "@id/main_container"),
		ForceStart(pkg + "Secret"),
	}}
	for _, op := range s.Ops {
		if op.String() == "" || strings.HasPrefix(op.String(), "op(") {
			t.Errorf("op %+v has no string form", op)
		}
	}
	src := RenderJava(s)
	for _, want := range []string{
		"public class reach_Detail_ extends ActivityInstrumentationTestCase2",
		"solo.clickOnView(solo.getView(R.id.main_btn_detail));",
		`solo.enterText((EditText) solo.getView(R.id.login_input_account), "alice");`,
		"solo.goBack();",
		"ReflectionSwitcher.commit",
		"am start -n com.demo.app.Secret",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("RenderJava missing %q:\n%s", want, src)
		}
	}
}
