package robotium

import (
	"encoding/json"
	"fmt"
)

// jsonScript is the serialized form of a Script; ops use readable kind names
// so stored test cases diff well.
type jsonScript struct {
	Name string   `json:"name,omitempty"`
	Ops  []jsonOp `json:"ops"`
}

type jsonOp struct {
	Kind      string `json:"kind"`
	Ref       string `json:"ref,omitempty"`
	Value     string `json:"value,omitempty"`
	Activity  string `json:"activity,omitempty"`
	Fragment  string `json:"fragment,omitempty"`
	Container string `json:"container,omitempty"`
}

var kindNames = map[OpKind]string{
	OpLaunchMain:    "launch-main",
	OpForceStart:    "force-start",
	OpClick:         "click",
	OpEnterText:     "enter-text",
	OpDismissDialog: "dismiss-dialog",
	OpBack:          "back",
	OpReflect:       "reflect",
}

var kindsByName = func() map[string]OpKind {
	m := make(map[string]OpKind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// MarshalJSON serializes the script.
func (s Script) MarshalJSON() ([]byte, error) {
	js := jsonScript{Name: s.Name}
	for _, op := range s.Ops {
		name, ok := kindNames[op.Kind]
		if !ok {
			return nil, fmt.Errorf("robotium: cannot serialize op kind %d", int(op.Kind))
		}
		js.Ops = append(js.Ops, jsonOp{
			Kind:      name,
			Ref:       op.Ref,
			Value:     op.Value,
			Activity:  op.Activity,
			Fragment:  op.Fragment,
			Container: op.Container,
		})
	}
	return json.Marshal(js)
}

// ParseScript deserializes a script and validates per-op required fields.
func ParseScript(data []byte) (Script, error) {
	var js jsonScript
	if err := json.Unmarshal(data, &js); err != nil {
		return Script{}, fmt.Errorf("robotium: parse script: %w", err)
	}
	s := Script{Name: js.Name}
	for i, jo := range js.Ops {
		kind, ok := kindsByName[jo.Kind]
		if !ok {
			return Script{}, fmt.Errorf("robotium: op %d: unknown kind %q", i, jo.Kind)
		}
		op := Op{
			Kind:      kind,
			Ref:       jo.Ref,
			Value:     jo.Value,
			Activity:  jo.Activity,
			Fragment:  jo.Fragment,
			Container: jo.Container,
		}
		if err := validateOp(op); err != nil {
			return Script{}, fmt.Errorf("robotium: op %d: %w", i, err)
		}
		s.Ops = append(s.Ops, op)
	}
	return s, nil
}

func validateOp(op Op) error {
	switch op.Kind {
	case OpClick, OpEnterText:
		if op.Ref == "" {
			return fmt.Errorf("%s needs a ref", kindNames[op.Kind])
		}
	case OpForceStart:
		if op.Activity == "" {
			return fmt.Errorf("force-start needs an activity")
		}
	case OpReflect:
		if op.Fragment == "" || op.Container == "" {
			return fmt.Errorf("reflect needs fragment and container")
		}
	}
	return nil
}
