package session_test

import (
	"testing"

	"fragdroid/internal/corpus"
	"fragdroid/internal/robotium"
	"fragdroid/internal/session"
)

// TestPackDecodeIsLazy pins the streaming-decode contract of snapshot packs:
// a warm load indexes every persisted entry but decodes none of them, a
// lookup materializes exactly the entries its prefix scan hits, and the
// untouched remainder stays encoded. This is the mechanism behind the warm
// persistent run beating re-execution — decode cost scales with the routes a
// run replays, not with the size of the pack.
func TestPackDecodeIsLazy(t *testing.T) {
	st := openStore(t)

	// Seed two distinct durable routes into one pack. (A bare launch route
	// would not add a third durable entry: it is checkpointed as a partial
	// prefix of these routes first, and existing entries skip the
	// persistence gate.)
	routes := []robotium.Script{
		launchScript().Append("tab", robotium.Click(corpus.TabButtonRef("Main", "Recent"))),
		launchScript().Append("nav", robotium.Click(corpus.NavButtonRef("Main", "Detail"))),
	}
	cold, err := corpus.BuildApp(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	m1 := session.NewSnapshotMemo(0)
	m1.AttachStore(st)
	s1 := session.New(cold, session.Options{AutoDismiss: true, Snapshots: m1})
	for _, route := range routes {
		if _, res, ok := s1.RunScript(route, session.PurposeReplay); !ok || res.Err != nil {
			t.Fatalf("seed %s: ok=%v err=%v", route.Name, ok, res.Err)
		}
	}
	if err := m1.Flush(); err != nil {
		t.Fatal(err)
	}
	if indexed, decoded := m1.PackStats(); indexed != 0 || decoded != 0 {
		t.Fatalf("seed memo touched the lazy tier: indexed=%d decoded=%d", indexed, decoded)
	}

	// Warm "restart": the pack load must index everything, decode nothing.
	warm, err := corpus.BuildApp(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	m2 := session.NewSnapshotMemo(0)
	m2.AttachStore(st)
	snap, n, _ := m2.LongestPrefix(warm, true, routes[0].Ops)
	if snap == nil || n != len(routes[0].Ops) {
		t.Fatalf("warm lookup missed: n=%d", n)
	}
	indexed, decoded := m2.PackStats()
	if indexed < len(routes) {
		t.Fatalf("pack load indexed %d entries, want at least %d", indexed, len(routes))
	}
	// The longest-first prefix scan may hit shorter stored prefixes of the
	// requested route (launch alone is one of them), but the never-requested
	// sibling route must stay encoded.
	if decoded >= indexed {
		t.Fatalf("decoded %d of %d indexed entries; nothing stayed lazy", decoded, indexed)
	}
	if decoded == 0 {
		t.Fatal("a served lookup decoded nothing; serve path is broken")
	}

	// A second hit on the same prefix must not decode again.
	if snap2, _, _ := m2.LongestPrefix(warm, true, routes[0].Ops); snap2 == nil {
		t.Fatal("repeat lookup missed")
	}
	_, decoded2 := m2.PackStats()
	if decoded2 != decoded {
		t.Fatalf("repeat lookup re-decoded: %d -> %d", decoded, decoded2)
	}

	// Touching the remaining route materializes it too — served, not missed.
	if snap3, n3, _ := m2.LongestPrefix(warm, true, routes[1].Ops); snap3 == nil || n3 != len(routes[1].Ops) {
		t.Fatalf("second route lookup missed: n=%d", n3)
	}
	if _, decoded3 := m2.PackStats(); decoded3 <= decoded2 {
		t.Fatalf("second route served without decoding: %d -> %d", decoded2, decoded3)
	}
}

// TestPackLazyFlushKeepsPending: a warm memo that stores a new route and
// flushes must fold still-encoded entries into the rewritten pack instead of
// dropping them — a third process sees both the old and the new routes.
func TestPackLazyFlushKeepsPending(t *testing.T) {
	st := openStore(t)
	oldRoute := launchScript().Append("tab", robotium.Click(corpus.TabButtonRef("Main", "Recent")))
	newRoute := launchScript().Append("nav", robotium.Click(corpus.NavButtonRef("Main", "Detail")))

	cold, err := corpus.BuildApp(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	m1 := session.NewSnapshotMemo(0)
	m1.AttachStore(st)
	s1 := session.New(cold, session.Options{AutoDismiss: true, Snapshots: m1})
	if _, res, ok := s1.RunScript(oldRoute, session.PurposeReplay); !ok || res.Err != nil {
		t.Fatalf("seed: ok=%v err=%v", ok, res.Err)
	}
	if err := m1.Flush(); err != nil {
		t.Fatal(err)
	}

	// Warm process: executes only the new route (loading the pack lazily on
	// its first probe), then flushes the dirtied pack.
	warm, err := corpus.BuildApp(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	m2 := session.NewSnapshotMemo(0)
	m2.AttachStore(st)
	s2 := session.New(warm, session.Options{AutoDismiss: true, Snapshots: m2})
	if _, res, ok := s2.RunScript(newRoute, session.PurposeReplay); !ok || res.Err != nil {
		t.Fatalf("warm run: ok=%v err=%v", ok, res.Err)
	}
	if err := m2.Flush(); err != nil {
		t.Fatal(err)
	}

	// Third process: both routes must be servable from the rewritten pack.
	third, err := corpus.BuildApp(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	m3 := session.NewSnapshotMemo(0)
	m3.AttachStore(st)
	for _, route := range []robotium.Script{oldRoute, newRoute} {
		if snap, n, _ := m3.LongestPrefix(third, true, route.Ops); snap == nil || n != len(route.Ops) {
			t.Errorf("route %s missing after lazy flush: n=%d", route.Name, n)
		}
	}
}
