package session_test

import (
	"testing"

	"fragdroid/internal/corpus"
	"fragdroid/internal/device"
	"fragdroid/internal/explorer"
	"fragdroid/internal/robotium"
)

// TestCrashRoutesReproduce verifies the triage contract: every CrashReport's
// route, replayed on a fresh device, force-closes the app again with the same
// reason. Routes are executed under the same harness options the engine used
// (auto-dismissed dialogs), so a report is a self-contained reproducer.
func TestCrashRoutesReproduce(t *testing.T) {
	reports := 0
	for _, pkg := range parityApps {
		spec := parityApp(t, pkg)
		app, err := corpus.BuildApp(spec)
		if err != nil {
			t.Fatalf("build %s: %v", pkg, err)
		}
		cfg := explorer.DefaultConfig()
		cfg.MaxTestCases = 4000
		res, err := explorer.Explore(app, cfg)
		if err != nil {
			t.Fatalf("explore %s: %v", pkg, err)
		}
		for _, cr := range res.CrashReports {
			reports++
			d := device.New(app, device.Options{})
			rr := robotium.Run(d, cr.Route, robotium.Options{AutoDismiss: true})
			if !rr.Crashed {
				t.Errorf("%s: route %s did not reproduce crash %q", pkg, cr.Route.Name, cr.Reason)
				continue
			}
			if rr.CrashReason != cr.Reason {
				t.Errorf("%s: route %s crashed with %q, report says %q",
					pkg, cr.Route.Name, rr.CrashReason, cr.Reason)
			}
		}
	}
	if reports == 0 {
		t.Fatal("no crash reports produced across the parity apps; triage coverage lost")
	}
}
