package session

import (
	"encoding/json"
	"sync"
)

// Kind enumerates the structured trace event types a session emits.
type Kind string

// Event kinds.
const (
	// KindScriptRun is one budgeted script execution (one test case).
	KindScriptRun Kind = "script_run"
	// KindOp is one script operation delivered to the device (observer-only;
	// emitted while an Observer is attached).
	KindOp Kind = "op"
	// KindVisit is the first arrival at a node or activity.
	KindVisit Kind = "visit"
	// KindCrash is one observed force-close (triaged reports carry Msg).
	KindCrash Kind = "crash"
	// KindReflectionAttempt is one reflective fragment-switch outcome.
	KindReflectionAttempt Kind = "reflection_attempt"
	// KindForcedStart is one forced empty-Intent start outcome.
	KindForcedStart Kind = "forced_start"
	// KindInputFill is one input-widget fill attempt.
	KindInputFill Kind = "input_fill"
	// KindSensitive is one sensitive-API invocation observed by the monitor.
	KindSensitive Kind = "sensitive"
	// KindCurve is one coverage-curve sample (emitted when coverage changes).
	KindCurve Kind = "curve"
	// KindDevice is one device-log line (observer-only).
	KindDevice Kind = "device"
	// KindNote is a free-form engine note; its Msg is a transcript line.
	KindNote Kind = "note"
)

// Purpose classifies why a script was executed; the session counters key off
// it (Replays, ReflectionAttempts, ForcedStarts).
type Purpose string

// Script purposes.
const (
	PurposeLaunch      Purpose = "launch"
	PurposeReplay      Purpose = "replay"
	PurposeReflection  Purpose = "reflection"
	PurposeForcedStart Purpose = "forced-start"
	PurposeProbe       Purpose = "probe"
	// PurposeSeed is a statically compiled route seed (directed exploration).
	PurposeSeed Purpose = "seed"
)

// Event is one typed trace record. Msg, when non-empty, is the human
// transcript line the event renders to — the legacy engine transcripts are
// exactly the Msg fields of the event stream, in order (RenderTranscript).
// All other fields are structured payload; unused ones stay at their zero
// value and are omitted from the JSON form.
type Event struct {
	Seq  int    `json:"seq"`
	App  string `json:"app,omitempty"`
	Kind Kind   `json:"kind"`
	Msg  string `json:"msg,omitempty"`

	// Script execution payload.
	Script   string  `json:"script,omitempty"`
	Purpose  Purpose `json:"purpose,omitempty"`
	Ops      int     `json:"ops,omitempty"`
	Executed int     `json:"executed,omitempty"`
	Steps    int     `json:"steps,omitempty"`
	Crashed  bool    `json:"crashed,omitempty"`
	Reason   string  `json:"reason,omitempty"`
	TestCase int     `json:"test_case,omitempty"`

	// Node / UI payload.
	Node      string `json:"node,omitempty"`
	Method    string `json:"method,omitempty"`
	Activity  string `json:"activity,omitempty"`
	Fragment  string `json:"fragment,omitempty"`
	Container string `json:"container,omitempty"`
	Ref       string `json:"ref,omitempty"`
	Value     string `json:"value,omitempty"`

	// Sensitive-API payload.
	API        string `json:"api,omitempty"`
	Class      string `json:"class,omitempty"`
	InFragment bool   `json:"in_fragment,omitempty"`

	// Coverage payload.
	Activities int `json:"activities,omitempty"`
	Fragments  int `json:"fragments,omitempty"`

	// Op / device payload.
	Op     string `json:"op,omitempty"`
	Detail string `json:"detail,omitempty"`

	// Err carries the failure, empty on success.
	Err string `json:"err,omitempty"`
}

// Observer is a pluggable sink for structured trace events.
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(ev Event) { f(ev) }

// TraceBuffer is an Observer that collects every event. It is safe for
// concurrent use, so one buffer can sink a parallel multi-app evaluation
// (events carry App and Seq for demultiplexing).
type TraceBuffer struct {
	mu     sync.Mutex
	events []Event
}

// OnEvent implements Observer.
func (b *TraceBuffer) OnEvent(ev Event) {
	b.mu.Lock()
	b.events = append(b.events, ev)
	b.mu.Unlock()
}

// Events returns a copy of the collected events.
func (b *TraceBuffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

// Len reports the number of collected events.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// JSON renders the collected events as an indented JSON array — the payload
// behind the -trace flag of the command-line tools.
func (b *TraceBuffer) JSON() ([]byte, error) {
	events := b.Events()
	if events == nil {
		events = []Event{}
	}
	return json.MarshalIndent(events, "", "  ")
}

// RenderTranscript recovers the legacy human transcript from an event
// stream: the Msg lines, in emission order. A session's Transcript() equals
// RenderTranscript of the events it emitted.
func RenderTranscript(events []Event) []string {
	var out []string
	for _, ev := range events {
		if ev.Msg != "" {
			out = append(out, ev.Msg)
		}
	}
	return out
}
