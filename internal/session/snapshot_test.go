package session_test

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"fragdroid/internal/corpus"
	"fragdroid/internal/robotium"
	"fragdroid/internal/sensitive"
	"fragdroid/internal/session"
)

// observations sums a collector's per-API counts.
func observations(c *sensitive.Collector) int {
	total := 0
	for _, u := range c.Usages() {
		total += u.Count
	}
	return total
}

// TestSnapshotParityGolden is the tentpole's behavioral gate: the same three
// engines that generated the golden fixtures, now sharing one snapshot memo,
// must produce byte-identical output — visits, routes, counters, curves,
// crash reports, collector usages, transcripts — while actually resuming from
// memoized prefixes (the run fails if no snapshot was ever hit, so the test
// cannot pass vacuously).
func TestSnapshotParityGolden(t *testing.T) {
	for _, pkg := range parityApps {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			memo := session.NewSnapshotMemo(0)
			got, stats := runParity(t, pkg, memo)
			if stats.SnapshotHits == 0 || stats.StepsSaved == 0 {
				t.Fatalf("memo never exercised: hits=%d restores=%d saved=%d",
					stats.SnapshotHits, stats.SnapshotRestores, stats.StepsSaved)
			}
			if memo.Len() == 0 {
				t.Fatal("memo holds no snapshots after a full run")
			}
			path := filepath.Join("testdata", "parity_"+pkg+".golden")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture: %v", err)
			}
			if got != string(want) {
				t.Errorf("snapshots-on run diverged from golden fixture (len got=%d want=%d)\n%s",
					len(got), len(want), firstDiff(got, string(want)))
			}
		})
	}
}

func launchScript() robotium.Script {
	return robotium.Script{Name: "launch", Ops: []robotium.Op{robotium.LaunchMain()}}
}

func demoApp(t *testing.T) *corpus.AppSpec {
	t.Helper()
	return corpus.DemoSpec()
}

// TestSnapshotStepAccounting is the step-budget regression test: a restored
// prefix must consume exactly the logical step count a real re-execution
// would, so per-run step deltas — and thus every budget decision — are
// identical with the memo on and off, while StepsSaved records the executed
// work avoided.
func TestSnapshotStepAccounting(t *testing.T) {
	app, err := corpus.BuildApp(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	route := launchScript().Append("tab", robotium.Click(corpus.TabButtonRef("Main", "Recent")))

	run := func(memo *session.SnapshotMemo, runs int) (session.Stats, []robotium.Result) {
		s := session.New(app, session.Options{AutoDismiss: true, Snapshots: memo})
		var results []robotium.Result
		for i := 0; i < runs; i++ {
			_, res, ok := s.RunScript(route, session.PurposeReplay)
			if !ok || res.Err != nil {
				t.Fatalf("run %d: ok=%v err=%v", i, ok, res.Err)
			}
			results = append(results, res)
		}
		return s.Stats(), results
	}

	plainStats, plainRes := run(nil, 3)
	memoStats, memoRes := run(session.NewSnapshotMemo(0), 3)

	if plainStats.Steps != memoStats.Steps {
		t.Errorf("steps diverged: plain %d, memo %d", plainStats.Steps, memoStats.Steps)
	}
	if plainStats.TestCases != memoStats.TestCases || plainStats.Crashes != memoStats.Crashes {
		t.Errorf("counters diverged: plain %+v, memo %+v", plainStats, memoStats)
	}
	if !reflect.DeepEqual(plainRes, memoRes) {
		t.Errorf("script results diverged:\nplain %+v\nmemo  %+v", plainRes, memoRes)
	}
	// Runs 2 and 3 are full-script hits: the whole route restores, nothing
	// executes, and each still bills the full per-run step delta.
	perRun := plainStats.Steps / 3
	if memoStats.SnapshotHits != 2 || memoStats.SnapshotRestores != 2 {
		t.Errorf("hits/restores = %d/%d, want 2/2", memoStats.SnapshotHits, memoStats.SnapshotRestores)
	}
	if want := 2 * perRun; memoStats.StepsSaved != want {
		t.Errorf("steps saved = %d, want %d (two fully restored runs)", memoStats.StepsSaved, want)
	}
	if plainStats.StepsSaved != 0 || plainStats.SnapshotHits != 0 {
		t.Errorf("plain run charged snapshot stats: %+v", plainStats)
	}
}

// TestSnapshotPrefixResume pins the evolutionary-loop pattern: a child route
// extending a memoized parent resumes from the parent's full snapshot and
// executes only the appended suffix.
func TestSnapshotPrefixResume(t *testing.T) {
	app, err := corpus.BuildApp(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	memo := session.NewSnapshotMemo(0)
	s := session.New(app, session.Options{AutoDismiss: true, Snapshots: memo})

	parent := launchScript()
	d1, res, ok := s.RunScript(parent, session.PurposeLaunch)
	if !ok || res.Err != nil {
		t.Fatalf("parent run: ok=%v err=%v", ok, res.Err)
	}
	parentSteps := d1.Steps()

	child := parent.Append("child", robotium.Click(corpus.NavButtonRef("Main", "Detail")))
	d2, res, ok := s.RunScript(child, session.PurposeReplay)
	if !ok || res.Err != nil {
		t.Fatalf("child run: ok=%v err=%v", ok, res.Err)
	}
	if res.Executed != len(child.Ops) {
		t.Errorf("child executed = %d, want %d", res.Executed, len(child.Ops))
	}
	if d2.RestoredSteps() != parentSteps {
		t.Errorf("restored steps = %d, want the parent's %d", d2.RestoredSteps(), parentSteps)
	}
	if d2.ExecutedSteps() >= parentSteps {
		t.Errorf("suffix executed %d steps, not less than the %d-step parent", d2.ExecutedSteps(), parentSteps)
	}
	if cur, err := d2.CurrentActivity(); err != nil || cur != "com.demo.app.Detail" {
		t.Errorf("child landed on %q, %v", cur, err)
	}
	if st := s.Stats(); st.SnapshotHits != 1 || st.StepsSaved != parentSteps {
		t.Errorf("stats = %+v, want 1 hit and %d steps saved", st, parentSteps)
	}
}

// TestSnapshotMemoContentKey pins the content-based identity: snapshots are
// keyed by the app's encoded content, so a re-install of the same build (a
// fresh build of the same spec) serves the memoized prefixes — while an app
// with different content shares nothing, which is the stale-snapshot
// invalidation that used to ride on pointer identity.
func TestSnapshotMemoContentKey(t *testing.T) {
	first, err := corpus.BuildApp(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	memo := session.NewSnapshotMemo(0)
	s1 := session.New(first, session.Options{AutoDismiss: true, Snapshots: memo})
	if _, res, ok := s1.RunScript(launchScript(), session.PurposeLaunch); !ok || res.Err != nil {
		t.Fatalf("seed run: ok=%v err=%v", ok, res.Err)
	}
	if memo.Len() == 0 {
		t.Fatal("seed run memoized nothing")
	}

	reinstalled, err := corpus.BuildApp(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	if snap, n, _ := memo.LongestPrefix(reinstalled, true, launchScript().Ops); snap == nil || n != len(launchScript().Ops) {
		t.Fatalf("content-identical re-install missed the memo: n=%d", n)
	}
	s2 := session.New(reinstalled, session.Options{AutoDismiss: true, Snapshots: memo})
	if _, res, ok := s2.RunScript(launchScript(), session.PurposeLaunch); !ok || res.Err != nil {
		t.Fatalf("re-install run: ok=%v err=%v", ok, res.Err)
	}
	if st := s2.Stats(); st.SnapshotHits != 1 || st.StepsSaved == 0 {
		t.Errorf("re-install run did not resume from the shared snapshot: %+v", st)
	}

	other, err := corpus.BuildApp(corpus.PaperSpec(corpus.PaperRows()[0]))
	if err != nil {
		t.Fatal(err)
	}
	if snap, n, _ := memo.LongestPrefix(other, true, launchScript().Ops); snap != nil || n != 0 {
		t.Fatalf("snapshot leaked across different app content: n=%d", n)
	}
}

// TestSnapshotMemoConcurrent is the -race stress test: many sessions on
// independent goroutines share one memo while replaying overlapping routes.
// Every session must end with identical counters and collector observations.
func TestSnapshotMemoConcurrent(t *testing.T) {
	app, err := corpus.BuildApp(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 3 is below the run's 4 distinct prefixes, so workers race
	// through eviction churn as well as hits and stores.
	memo := session.NewSnapshotMemo(3)
	routes := []robotium.Script{
		launchScript(),
		launchScript().Append("tab", robotium.Click(corpus.TabButtonRef("Main", "Recent"))),
		launchScript().Append("nav", robotium.Click(corpus.NavButtonRef("Main", "Detail"))),
		launchScript().Append("drawer",
			robotium.Click(corpus.NavButtonRef("Main", "Detail")),
			robotium.Click(corpus.DrawerToggleRef("Detail"))),
	}

	const workers = 8
	stats := make([]session.Stats, workers)
	counts := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := session.New(app, session.Options{AutoDismiss: true, Snapshots: memo})
			for i := 0; i < 6; i++ {
				for _, route := range routes {
					if _, res, ok := s.RunScript(route, session.PurposeReplay); !ok || res.Err != nil {
						t.Errorf("worker %d: ok=%v err=%v", w, ok, res.Err)
						return
					}
				}
			}
			stats[w] = s.Stats()
			counts[w] = observations(s.Collector())
		}()
	}
	wg.Wait()

	for w := 1; w < workers; w++ {
		if stats[w].Steps != stats[0].Steps || stats[w].TestCases != stats[0].TestCases {
			t.Errorf("worker %d stats diverged: %+v vs %+v", w, stats[w], stats[0])
		}
		if counts[w] != counts[0] {
			t.Errorf("worker %d collector count %d, worker 0 %d", w, counts[w], counts[0])
		}
	}
	if counts[0] == 0 {
		t.Error("collector observed nothing; test is vacuous")
	}
}

// TestSnapshotMemoEviction pins the LRU bound: the memo never exceeds its
// capacity.
func TestSnapshotMemoEviction(t *testing.T) {
	app, err := corpus.BuildApp(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	memo := session.NewSnapshotMemo(2)
	s := session.New(app, session.Options{AutoDismiss: true, Snapshots: memo})
	route := launchScript().Append("long",
		robotium.Click(corpus.NavButtonRef("Main", "Detail")),
		robotium.Click(corpus.DrawerToggleRef("Detail")),
		robotium.Click(corpus.MenuButtonRef("Detail", "Settings")))
	if _, res, ok := s.RunScript(route, session.PurposeReplay); !ok || res.Err != nil {
		t.Fatalf("run: ok=%v err=%v", ok, res.Err)
	}
	if got := memo.Len(); got != 2 {
		t.Errorf("memo length = %d, want capacity bound 2", got)
	}
}
