// Strategy is the first-class exploration-strategy seam: every dynamic
// engine — FragDroid's evolutionary explorer, the Activity-level baseline,
// Monkey, recorder replay, and the newer biased-random / model-guided /
// trace-reuse generators — is one implementation of the same
// propose-next-test-case / observe-result / done automaton, driven by the
// generic Drive loop below. Drive owns everything the engines used to
// duplicate: session construction, the in-process warming fleet, the
// propose/run/observe cycle with budget and halt enforcement, the final
// coverage-curve sample, and the assembly of the engine-independent Outcome.
// Because every strategy runs through one loop on one session runtime,
// snapshots, persistent packs, and the device fleet serve all of them by
// construction, and comparative evaluations (the bake-off harness in
// internal/report) compare strategies rather than bespoke code paths — the
// fairness requirement of Choudhary et al.'s generator comparison.
package session

import (
	"sort"

	"fragdroid/internal/apk"
	"fragdroid/internal/device"
	"fragdroid/internal/robotium"
	"fragdroid/internal/sensitive"
)

// Harness bundles the engine-independent run plumbing every strategy shares:
// the test-case budget, trace sink, snapshot memo, and device-fleet size.
// Engine-specific knobs (reflection, input files, event mixes) stay in each
// strategy's own config; SessionOptions merges the two.
type Harness struct {
	// Budget bounds the number of budgeted test cases; zero lets the
	// strategy's own default apply.
	Budget int
	// HaltOnAPI stops the run as soon as the named sensitive API fires
	// (targeted SmartDroid-style runs).
	HaltOnAPI string
	// Observer receives the run's structured trace events (nil disables).
	Observer Observer
	// Snapshots is the device-snapshot memo route replays resume from; nil
	// disables memoization.
	Snapshots *SnapshotMemo
	// Devices is the in-process device fleet size: values above 1 run
	// Devices-1 warming devices alongside the strategy's main loop. Results
	// are identical for any value; warming requires Snapshots.
	Devices int
}

// TestCase is one proposal of a strategy: either a declarative script the
// drive loop executes as one budgeted test case (the provisioned device and
// result flow back through Observe), or an imperative segment the strategy
// drives itself against the session (multi-script interface exploration,
// long-lived-device event injection) with identical accounting.
type TestCase struct {
	// Script-form proposal: executed via Session.RunScript under the budget.
	Script  robotium.Script
	Purpose Purpose
	// Run-form proposal: when set, replaces script execution. The strategy
	// performs a self-contained unit of work through the session it was
	// bound to in Init; Observe is not called for run-form proposals.
	Run func() error
}

// DriveContext binds a strategy to one run: the app under test, the session
// carrying budgets/tracing/snapshots, and the shared warming fleet (nil when
// disabled — Fleet methods are nil-safe).
type DriveContext struct {
	App     *apk.App
	Session *Session
	Fleet   *Fleet
}

// Outcome is the engine-independent result shape every strategy yields: the
// coverage sets, the sensitive-API observations, and the session telemetry.
// Engine-specific riches (the explorer's evolved AFTM, visit routes, crash
// triage detail) live on each engine's own Result type; the bake-off harness
// consumes this shape only.
type Outcome struct {
	// Strategy is the registry name of the strategy that produced the run.
	Strategy string
	// VisitedActivities and VisitedFragments list reached component classes,
	// sorted. Strategies that cannot credit fragments leave the latter empty.
	VisitedActivities []string
	VisitedFragments  []string
	// Collector holds the run's sensitive-API observations.
	Collector *sensitive.Collector
	// Stats carries the session counters.
	Stats
	// Curve records cumulative coverage after each executed test case (empty
	// when the strategy samples no curve).
	Curve []CurvePoint
	// CrashReports lists triaged force-closes, one per distinct reason.
	CrashReports []CrashReport
	// Transcript is the human-readable run log.
	Transcript []string
}

// Strategy is the propose/observe automaton one exploration engine
// implements. The drive loop calls SessionOptions once to construct the
// session, Init once to bind the run context (the static-extraction hook:
// strategies that consume a statics.Extraction capture it at construction),
// then alternates Propose and Observe until Propose reports done, and
// finally Finish to fold the strategy's coverage into the generic Outcome.
type Strategy interface {
	// Name is the registry name ("explorer", "monkey", "biased", ...).
	Name() string
	// SessionOptions merges the shared harness plumbing with the strategy's
	// engine-specific session knobs (auto-dismiss, crash triage, coverage
	// sampling). Called once, before Init.
	SessionOptions(h Harness) Options
	// Init binds the strategy to the run. A non-nil error aborts the drive.
	Init(ctx *DriveContext) error
	// Propose returns the next test case, or ok=false when the strategy is
	// done (the §VI-C termination condition, generalized). Propose must
	// terminate when the session is exhausted or halted: script proposals
	// that cannot run any more are skipped without Observe.
	Propose() (TestCase, bool)
	// Observe folds one executed script proposal's outcome back into the
	// strategy's model/queue state. A non-nil error aborts the drive.
	Observe(tc TestCase, d *device.Device, res robotium.Result) error
	// Finish completes the generic outcome (the visited sets) after the
	// drive loop; fatal conditions detected only at the end (a launch that
	// never ran) surface here.
	Finish(out *Outcome) error
}

// Drive runs one strategy to completion on one app: it constructs the
// session from the strategy's options, stands up the warming fleet when the
// harness asks for one, loops propose → execute → observe under the
// session's budget, and assembles the generic Outcome. Script proposals that
// cannot run (budget exhausted, target API halted) are skipped without
// Observe; the strategy's Propose decides when that means done.
func Drive(app *apk.App, strat Strategy, h Harness) (*Outcome, error) {
	s := New(app, strat.SessionOptions(h))
	var fleet *Fleet
	if h.Devices > 1 && h.Snapshots != nil {
		fleet = NewFleet(h.Devices - 1)
	}
	defer fleet.Close()
	if err := strat.Init(&DriveContext{App: app, Session: s, Fleet: fleet}); err != nil {
		return nil, err
	}
	for {
		tc, ok := strat.Propose()
		if !ok {
			break
		}
		if tc.Run != nil {
			if err := tc.Run(); err != nil {
				return nil, err
			}
			continue
		}
		d, res, ran := s.RunScript(tc.Script, tc.Purpose)
		if !ran {
			continue
		}
		if err := strat.Observe(tc, d, res); err != nil {
			return nil, err
		}
	}
	s.SampleCurve()
	out := &Outcome{
		Strategy:     strat.Name(),
		Collector:    s.Collector(),
		Stats:        s.Stats(),
		Curve:        s.Curve(),
		CrashReports: s.CrashReports(),
		Transcript:   s.Transcript(),
	}
	if err := strat.Finish(out); err != nil {
		return nil, err
	}
	return out, nil
}

// SortedKeys returns the keys of a string-keyed set, sorted — the canonical
// form strategies use to fill the Outcome visited lists.
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
