package session_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fragdroid/internal/artifact"
	"fragdroid/internal/corpus"
	"fragdroid/internal/explorer"
	"fragdroid/internal/robotium"
	"fragdroid/internal/session"
)

// openStore opens a fresh artifact store rooted in the test's temp dir.
func openStore(t *testing.T) *artifact.Store {
	t.Helper()
	st, err := artifact.OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return st
}

// snapshotFiles lists the persisted snapshot entries under a store.
func snapshotFiles(t *testing.T, st *artifact.Store) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(st.Dir(), "snapshot", "*", "*.art"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestSnapshotPersistenceAcrossRestart pins the tentpole's durability claim:
// snapshots persisted through an attached store survive a "process restart" —
// a brand-new memo on the same store, serving a fresh build of the same app —
// and the warm run resumes without re-interpreting a single memoized prefix.
func TestSnapshotPersistenceAcrossRestart(t *testing.T) {
	st := openStore(t)
	route := launchScript().Append("tab", robotium.Click(corpus.TabButtonRef("Main", "Recent")))

	cold, err := corpus.BuildApp(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	m1 := session.NewSnapshotMemo(0)
	m1.AttachStore(st)
	s1 := session.New(cold, session.Options{AutoDismiss: true, Snapshots: m1})
	if _, res, ok := s1.RunScript(route, session.PurposeReplay); !ok || res.Err != nil {
		t.Fatalf("cold run: ok=%v err=%v", ok, res.Err)
	}
	if err := m1.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if _, _, writes := m1.DiskStats(); writes == 0 {
		t.Fatal("cold run persisted nothing")
	}
	if len(snapshotFiles(t, st)) == 0 {
		t.Fatal("no snapshot entries on disk after the cold run")
	}

	// "Restart": new memo, new app build, same store.
	warm, err := corpus.BuildApp(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	m2 := session.NewSnapshotMemo(0)
	m2.AttachStore(st)
	s2 := session.New(warm, session.Options{AutoDismiss: true, Snapshots: m2})
	_, res, ok := s2.RunScript(route, session.PurposeReplay)
	if !ok || res.Err != nil {
		t.Fatalf("warm run: ok=%v err=%v", ok, res.Err)
	}
	stats := s2.Stats()
	if stats.SnapshotHits != 1 || stats.StepsSaved == 0 {
		t.Errorf("warm run did not resume from disk: %+v", stats)
	}
	if hits, misses, _ := m2.DiskStats(); hits == 0 {
		t.Errorf("disk stats show no read-through hit: hits=%d misses=%d", hits, misses)
	}
	// The restored route must land exactly where the cold one did.
	coldEnd, warmEnd := s1.Stats(), stats
	if coldEnd.Steps != warmEnd.Steps || coldEnd.Crashes != warmEnd.Crashes {
		t.Errorf("warm counters diverged: cold %+v, warm %+v", coldEnd, warmEnd)
	}
}

// TestSnapshotPersistenceCorruption injects corruption into every persisted
// snapshot entry — truncating the payload — and requires the warm run to
// degrade to a silent miss: no error, full re-execution with identical
// counters, and a repairing re-persist of the entries.
func TestSnapshotPersistenceCorruption(t *testing.T) {
	st := openStore(t)
	route := launchScript().Append("nav", robotium.Click(corpus.NavButtonRef("Main", "Detail")))

	app, err := corpus.BuildApp(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	m1 := session.NewSnapshotMemo(0)
	m1.AttachStore(st)
	s1 := session.New(app, session.Options{AutoDismiss: true, Snapshots: m1})
	if _, res, ok := s1.RunScript(route, session.PurposeReplay); !ok || res.Err != nil {
		t.Fatalf("seed run: ok=%v err=%v", ok, res.Err)
	}
	if err := m1.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	want := s1.Stats()

	files := snapshotFiles(t, st)
	if len(files) == 0 {
		t.Fatal("seed run persisted nothing")
	}
	for _, f := range files {
		info, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(f, info.Size()/2); err != nil {
			t.Fatal(err)
		}
	}

	fresh, err := corpus.BuildApp(demoApp(t))
	if err != nil {
		t.Fatal(err)
	}
	m2 := session.NewSnapshotMemo(0)
	m2.AttachStore(st)
	s2 := session.New(fresh, session.Options{AutoDismiss: true, Snapshots: m2})
	_, res, ok := s2.RunScript(route, session.PurposeReplay)
	if !ok || res.Err != nil {
		t.Fatalf("run over corrupted store errored instead of missing silently: ok=%v err=%v", ok, res.Err)
	}
	stats := s2.Stats()
	if stats.SnapshotHits != 0 {
		t.Errorf("corrupted entries served a hit: %+v", stats)
	}
	if err := m2.Flush(); err != nil {
		t.Fatalf("repairing Flush: %v", err)
	}
	if hits, misses, writes := m2.DiskStats(); hits != 0 || misses == 0 || writes == 0 {
		t.Errorf("disk stats = hits %d misses %d writes %d, want 0 hits, misses and repairing writes",
			hits, misses, writes)
	}
	if stats.Steps != want.Steps || stats.Crashes != want.Crashes || stats.TestCases != want.TestCases {
		t.Errorf("re-execution diverged from the seed run: seed %+v, rerun %+v", want, stats)
	}

	// The rerun repaired the store: a third memo now reads clean entries.
	m3 := session.NewSnapshotMemo(0)
	m3.AttachStore(st)
	if snap, n, _ := m3.LongestPrefix(fresh, true, route.Ops); snap == nil || n != len(route.Ops) {
		t.Errorf("repaired store still misses: n=%d", n)
	}
}

// TestFleetStress is the fleet's -race gate: an 8-device explorer sharing one
// persistent memo with a tiny capacity (constant eviction churn, concurrent
// disk read-through and persists) must produce byte-identical results to the
// sequential single-device run.
func TestFleetStress(t *testing.T) {
	pkg := "com.adobe.reader"
	run := func(devices int, st *artifact.Store) (string, session.Stats) {
		spec := parityApp(t, pkg)
		app, err := corpus.BuildApp(spec)
		if err != nil {
			t.Fatal(err)
		}
		memo := session.NewSnapshotMemo(4)
		if st != nil {
			memo.AttachStore(st)
		}
		cfg := explorer.DefaultConfig()
		cfg.MaxTestCases = 4000
		cfg.Snapshots = memo
		cfg.Devices = devices
		res, err := explorer.Explore(app, cfg)
		if err != nil {
			t.Fatalf("explore devices=%d: %v", devices, err)
		}
		return renderExplorer(res), res.Stats
	}

	seq, seqStats := run(1, nil)
	fleet, fleetStats := run(8, openStore(t))
	if seq != fleet {
		t.Errorf("fleet run diverged from sequential run\n%s", firstDiff(fleet, seq))
	}
	// Decision-relevant counters must match exactly; only the cache-side
	// columns (hits, saved steps, evictions, pinned bytes) may differ, since
	// warmed snapshots change where work is skipped, never what it computes.
	a, b := seqStats, fleetStats
	a.SnapshotHits, a.SnapshotRestores, a.StepsSaved, a.Evictions, a.BytesPinned = 0, 0, 0, 0, 0
	b.SnapshotHits, b.SnapshotRestores, b.StepsSaved, b.Evictions, b.BytesPinned = 0, 0, 0, 0, 0
	if a != b {
		t.Errorf("fleet counters diverged:\nseq   %+v\nfleet %+v", a, b)
	}
}

// TestFleetSharedMemoChurn hammers one persistent memo from many fleets at
// once: every engine shape (explorer, activity baseline, monkey) across
// concurrent goroutines, with capacity far below the working set. Run under
// -race this is the scheduler/memo interleaving stress; the assertions pin
// that each isolated run still matches its own sequential baseline.
func TestFleetSharedMemoChurn(t *testing.T) {
	st := openStore(t)
	memo := session.NewSnapshotMemo(2)
	memo.AttachStore(st)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			app, err := corpus.BuildApp(demoApp(t))
			if err != nil {
				t.Error(err)
				return
			}
			ecfg := explorer.DefaultConfig()
			ecfg.Snapshots = memo
			ecfg.Devices = 3
			if _, err := explorer.Explore(app, ecfg); err != nil {
				t.Errorf("explore: %v", err)
			}
		}()
	}
	wg.Wait()

	if memo.Len() > 2 {
		t.Errorf("memo exceeded capacity under churn: %d", memo.Len())
	}
	if memo.Evictions() == 0 {
		t.Error("no evictions under a capacity-2 memo; churn test is vacuous")
	}
	if err := memo.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if _, _, writes := memo.DiskStats(); writes == 0 {
		t.Error("no persists under a shared store; stress test is vacuous")
	}
}
