package session

import "sync"

// Fleet is the in-process device fleet's scheduler: a fixed pool of workers
// draining per-worker task queues with work stealing. Engines submit warming
// tasks — closures that drive their own private device and publish results
// only through the shared, concurrency-safe SnapshotMemo — so every task is
// a pure cache-warmer: the engine's own sequential loop remains the single
// source of truth for counters, transcripts, and decisions, which is why
// folded results are deterministic regardless of worker timing.
//
// Scheduling: Submit distributes tasks round-robin over the per-worker
// queues; a worker pops its own queue front-first (submission order, the
// order the engine expects to need the results), and when empty steals the
// newest task from the longest sibling queue (newest-first stealing keeps
// the stolen work disjoint from what the victim is about to pop). Close
// drops tasks still queued — warming is best-effort — and waits for in-flight
// ones to finish.
type Fleet struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues [][]func()
	next   int // round-robin submission cursor
	closed bool
	wg     sync.WaitGroup
}

// NewFleet starts a fleet with the given number of workers. workers <= 0
// returns nil; a nil *Fleet is a valid no-op fleet (Submit drops the task,
// Close does nothing), so engines can hold one unconditionally.
func NewFleet(workers int) *Fleet {
	if workers <= 0 {
		return nil
	}
	f := &Fleet{queues: make([][]func(), workers)}
	f.cond = sync.NewCond(&f.mu)
	f.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go f.worker(i)
	}
	return f
}

// Submit enqueues one warming task. Safe on a nil fleet (the task is
// dropped: warming is an optimization, never a dependency).
func (f *Fleet) Submit(task func()) {
	if f == nil || task == nil {
		return
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.queues[f.next] = append(f.queues[f.next], task)
	f.next = (f.next + 1) % len(f.queues)
	f.cond.Signal()
	f.mu.Unlock()
}

// take pops the next task for worker i: own queue front-first, else the
// newest task of the longest sibling queue. It blocks until a task is
// available or the fleet closes; ok=false means shut down.
func (f *Fleet) take(i int) (func(), bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.closed {
			return nil, false
		}
		if q := f.queues[i]; len(q) > 0 {
			task := q[0]
			f.queues[i] = q[1:]
			return task, true
		}
		victim, best := -1, 0
		for j, q := range f.queues {
			if j != i && len(q) > best {
				victim, best = j, len(q)
			}
		}
		if victim >= 0 {
			q := f.queues[victim]
			task := q[len(q)-1]
			f.queues[victim] = q[:len(q)-1]
			return task, true
		}
		f.cond.Wait()
	}
}

func (f *Fleet) worker(i int) {
	defer f.wg.Done()
	for {
		task, ok := f.take(i)
		if !ok {
			return
		}
		task()
	}
}

// Close shuts the fleet down: queued-but-unstarted tasks are dropped,
// in-flight tasks run to completion, and Close returns once every worker has
// exited. Safe on a nil fleet and safe to call more than once.
func (f *Fleet) Close() {
	if f == nil {
		return
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		f.wg.Wait()
		return
	}
	f.closed = true
	for i := range f.queues {
		f.queues[i] = nil
	}
	f.cond.Broadcast()
	f.mu.Unlock()
	f.wg.Wait()
}
