package session_test

import (
	"testing"

	"fragdroid/internal/corpus"
	"fragdroid/internal/device"
)

// TestInterpreterDifferentialCorpus runs every paper-corpus app through all
// three engines — the FragDroid explorer, the Activity-level baseline, and
// Monkey — once under the classic tree-walking interpreter and once under the
// compiled instruction IR, and requires the canonical renderings to be
// byte-identical: visits, routes, counters, coverage curves, crash reports,
// collector usages, and full transcripts. The golden fixtures pin three apps
// against pre-port history; this test pins the other twelve against the
// classic interpreter directly, so the two execution paths can never drift
// anywhere in the corpus.
//
// Subtests must not run in parallel: the interpreter selection is a
// process-wide default and the two runs per app toggle it back and forth.
func TestInterpreterDifferentialCorpus(t *testing.T) {
	prev := device.DefaultInterp()
	defer device.SetDefaultInterp(prev)
	for _, row := range corpus.PaperRows() {
		row := row
		t.Run(row.Package, func(t *testing.T) {
			if err := device.SetDefaultInterp("classic"); err != nil {
				t.Fatal(err)
			}
			classic, _ := runParity(t, row.Package, nil)
			if err := device.SetDefaultInterp("ir"); err != nil {
				t.Fatal(err)
			}
			compiled, _ := runParity(t, row.Package, nil)
			if classic != compiled {
				t.Errorf("interpreters diverged for %s (classic len=%d, ir len=%d)\n%s",
					row.Package, len(classic), len(compiled), firstDiff(compiled, classic))
			}
		})
	}
}
