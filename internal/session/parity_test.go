package session_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"fragdroid/internal/baseline"
	"fragdroid/internal/corpus"
	"fragdroid/internal/explorer"
	"fragdroid/internal/robotium"
	"fragdroid/internal/sensitive"
	"fragdroid/internal/session"
)

// update regenerates the golden fixtures. The fixtures were produced by the
// pre-session engines (the private runScript/logf plumbing each engine used
// to carry), so this test pins that the port onto internal/session is
// behavior-preserving byte for byte: visits, routes, counters, curves, crash
// reports, collector usages, and transcripts all unchanged.
var update = flag.Bool("update", false, "rewrite golden parity fixtures")

// parityApps are the corpus apps the fixtures cover: an action-bar-popup
// app, a reflection-failure app, and an input-gated app.
var parityApps = []string{
	"com.adobe.reader",
	"com.inditex.zara",
	"com.weather.Weather",
}

func parityApp(t *testing.T, pkg string) *corpus.AppSpec {
	t.Helper()
	for _, row := range corpus.PaperRows() {
		if row.Package == pkg {
			return corpus.PaperSpec(row)
		}
	}
	t.Fatalf("unknown parity app %s", pkg)
	return nil
}

// renderExplorer renders every observable field of an explorer result in a
// canonical text form.
func renderExplorer(res *explorer.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== explorer ==\n")
	fmt.Fprintf(&b, "visited-activities: %s\n", strings.Join(res.VisitedActivities(), " "))
	fmt.Fprintf(&b, "visited-fragments: %s\n", strings.Join(res.VisitedFragments(), " "))
	fv, fsum := res.FragmentsInVisitedActivities()
	fmt.Fprintf(&b, "fiva: %d/%d\n", fv, fsum)
	fmt.Fprintf(&b, "counters: cases=%d steps=%d crashes=%d\n", res.TestCases, res.Steps, res.Crashes)

	var nodes []string
	for n := range res.Visits {
		nodes = append(nodes, n.String())
	}
	sort.Strings(nodes)
	for _, name := range nodes {
		for n, v := range res.Visits {
			if n.String() != name {
				continue
			}
			fmt.Fprintf(&b, "visit %s via %s route=%s\n", name, v.Method, renderScript(v.Route))
		}
	}
	for _, p := range res.Curve {
		fmt.Fprintf(&b, "curve %d %d %d\n", p.TestCase, p.Activities, p.Fragments)
	}
	for _, cr := range res.CrashReports {
		fmt.Fprintf(&b, "crash %q route=%s\n", cr.Reason, renderScript(cr.Route))
	}
	renderCollector(&b, res.Collector)
	renderTranscript(&b, res.Transcript)
	return b.String()
}

func renderBaseline(label string, res *baseline.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", label)
	fmt.Fprintf(&b, "visited-activities: %s\n", strings.Join(res.VisitedActivities, " "))
	fmt.Fprintf(&b, "counters: cases=%d steps=%d crashes=%d\n", res.TestCases, res.Steps, res.Crashes)
	renderCollector(&b, res.Collector)
	renderTranscript(&b, res.Transcript)
	return b.String()
}

func renderScript(s robotium.Script) string {
	ops := make([]string, len(s.Ops))
	for i, op := range s.Ops {
		ops[i] = op.String()
	}
	return s.Name + "[" + strings.Join(ops, "; ") + "]"
}

func renderCollector(b *strings.Builder, c *sensitive.Collector) {
	for _, u := range c.Usages() {
		fmt.Fprintf(b, "api %s mark=%s count=%d classes=%s\n",
			u.API, u.Mark().ASCII(), u.Count, strings.Join(u.Classes, ","))
	}
}

func renderTranscript(b *strings.Builder, lines []string) {
	for _, line := range lines {
		fmt.Fprintf(b, "log %s\n", line)
	}
}

// runParity produces the full canonical rendering for one corpus app: the
// FragDroid explorer, the Activity-level baseline, and Monkey, run with the
// evaluation configurations. A non-nil memo is shared by all three engines
// (the snapshot deployment shape); the combined session stats are returned
// alongside so snapshot tests can assert the memo was actually exercised.
func runParity(t *testing.T, pkg string, memo *session.SnapshotMemo) (string, session.Stats) {
	t.Helper()
	spec := parityApp(t, pkg)
	app, err := corpus.BuildApp(spec)
	if err != nil {
		t.Fatalf("build %s: %v", pkg, err)
	}

	ecfg := explorer.DefaultConfig()
	ecfg.MaxTestCases = 4000
	ecfg.Snapshots = memo
	eres, err := explorer.Explore(app, ecfg)
	if err != nil {
		t.Fatalf("explore %s: %v", pkg, err)
	}

	acfg := baseline.DefaultActivityConfig()
	acfg.MaxTestCases = 4000
	acfg.Snapshots = memo
	ares, err := baseline.ExploreActivities(app, acfg)
	if err != nil {
		t.Fatalf("activity baseline %s: %v", pkg, err)
	}

	mres, err := baseline.Monkey(app, baseline.MonkeyConfig{Seed: 7, Events: 1500, Snapshots: memo})
	if err != nil {
		t.Fatalf("monkey %s: %v", pkg, err)
	}

	out := "app " + pkg + "\n" +
		renderExplorer(eres) +
		renderBaseline("activity-baseline", ares) +
		renderBaseline("monkey", mres)
	return out, eres.Stats.Add(ares.Stats).Add(mres.Stats)
}

// TestEngineParityGolden pins that the session-layer port left every engine's
// observable behavior byte-identical: the fixtures were generated before the
// port and must keep matching after it.
func TestEngineParityGolden(t *testing.T) {
	for _, pkg := range parityApps {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			got, _ := runParity(t, pkg, nil)
			path := filepath.Join("testdata", "parity_"+pkg+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("parity broken for %s: result diverged from pre-port golden (len got=%d want=%d)\n%s",
					pkg, len(got), len(want), firstDiff(got, string(want)))
			}
		})
	}
}

// firstDiff locates the first differing line for a readable failure message.
func firstDiff(got, want string) string {
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			return fmt.Sprintf("first diff at line %d:\n  got:  %s\n  want: %s", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("line counts differ: got %d, want %d", len(gl), len(wl))
}
