package session_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"fragdroid/internal/baseline"
	"fragdroid/internal/corpus"
	"fragdroid/internal/explorer"
	"fragdroid/internal/robotium"
	"fragdroid/internal/session"
)

func buildParityApp(t *testing.T, pkg string) *explorer.Result {
	t.Helper()
	app, err := corpus.BuildApp(parityApp(t, pkg))
	if err != nil {
		t.Fatal(err)
	}
	cfg := explorer.DefaultConfig()
	res, err := explorer.Explore(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestObserverIsPassive pins that attaching an Observer changes nothing about
// a run: visits, counters, curve, and transcript are identical with tracing
// on and off.
func TestObserverIsPassive(t *testing.T) {
	app, err := corpus.BuildApp(parityApp(t, "com.adobe.reader"))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := explorer.Explore(app, explorer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := explorer.DefaultConfig()
	buf := &session.TraceBuffer{}
	cfg.Observer = buf
	traced, err := explorer.Explore(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Transcript, traced.Transcript) {
		t.Error("transcript differs with an observer attached")
	}
	if plain.Stats != traced.Stats {
		t.Errorf("stats differ with an observer attached: %+v vs %+v", plain.Stats, traced.Stats)
	}
	if !reflect.DeepEqual(plain.Curve, traced.Curve) {
		t.Error("coverage curve differs with an observer attached")
	}
	if buf.Len() == 0 {
		t.Fatal("observer received no events")
	}
}

// TestTranscriptEqualsRenderedEvents pins the tracing contract: the legacy
// transcript is exactly the Msg lines of the structured event stream.
func TestTranscriptEqualsRenderedEvents(t *testing.T) {
	app, err := corpus.BuildApp(parityApp(t, "com.inditex.zara"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := explorer.DefaultConfig()
	buf := &session.TraceBuffer{}
	cfg.Observer = buf
	res, err := explorer.Explore(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := session.RenderTranscript(buf.Events())
	if !reflect.DeepEqual(got, res.Transcript) {
		t.Errorf("RenderTranscript(events) != Transcript: %d vs %d lines", len(got), len(res.Transcript))
	}
}

// TestTraceJSON pins that the buffer renders a valid JSON array with
// monotonically increasing per-session sequence numbers, and that typed
// events appear.
func TestTraceJSON(t *testing.T) {
	app, err := corpus.BuildApp(parityApp(t, "com.adobe.reader"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := explorer.DefaultConfig()
	buf := &session.TraceBuffer{}
	cfg.Observer = buf
	if _, err := explorer.Explore(app, cfg); err != nil {
		t.Fatal(err)
	}
	data, err := buf.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var events []session.Event
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events in trace")
	}
	kinds := make(map[session.Kind]int)
	last := 0
	for _, ev := range events {
		if ev.Seq <= last {
			t.Fatalf("sequence numbers not increasing: %d after %d", ev.Seq, last)
		}
		last = ev.Seq
		if ev.App != "com.adobe.reader" {
			t.Fatalf("event missing app stamp: %+v", ev)
		}
		kinds[ev.Kind]++
	}
	for _, want := range []session.Kind{
		session.KindScriptRun, session.KindOp, session.KindVisit,
		session.KindCrash, session.KindDevice, session.KindNote,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %s events in trace", want)
		}
	}
	empty := &session.TraceBuffer{}
	data, err = empty.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[]" {
		t.Errorf("empty buffer JSON = %q, want []", data)
	}
}

// TestSessionBudgetAndCrashTriage unit-tests the session runtime directly:
// budget exhaustion, crash dedup, and the injected-work escape hatches.
func TestSessionBudgetAndCrashTriage(t *testing.T) {
	app, err := corpus.BuildApp(parityApp(t, "com.adobe.reader"))
	if err != nil {
		t.Fatal(err)
	}
	s := session.New(app, session.Options{Budget: 2, AutoDismiss: true, TriageCrashes: true})
	launch := robotium.Script{Name: "launch", Ops: []robotium.Op{robotium.LaunchMain()}}
	if _, _, ok := s.RunScript(launch, session.PurposeLaunch); !ok {
		t.Fatal("first run refused")
	}
	if _, _, ok := s.RunScript(launch, session.PurposeReplay); !ok {
		t.Fatal("second run refused")
	}
	if !s.Exhausted() {
		t.Fatal("budget of 2 not exhausted after 2 runs")
	}
	if _, _, ok := s.RunScript(launch, session.PurposeLaunch); ok {
		t.Fatal("run allowed past budget")
	}
	st := s.Stats()
	if st.TestCases != 2 || st.Replays != 1 {
		t.Errorf("stats = %+v, want 2 test cases / 1 replay", st)
	}
	if st.Steps == 0 {
		t.Error("no steps charged")
	}

	s.MarkCrash("NullPointerException", launch)
	s.MarkCrash("NullPointerException", launch)
	s.MarkCrash("IllegalStateException", launch)
	s.MarkCrash("", launch)
	if got := s.Stats().Crashes; got != 4 {
		t.Errorf("crashes = %d, want 4", got)
	}
	if got := len(s.CrashReports()); got != 2 {
		t.Errorf("crash reports = %d, want 2 (deduped, empty reason dropped)", got)
	}

	s.AddTestCases(10)
	s.AddSteps(100)
	if st := s.Stats(); st.TestCases != 12 || st.Steps < 100 {
		t.Errorf("injected work not charged: %+v", st)
	}
}

// TestBaselineObserverWiring pins that the baselines emit trace events too.
func TestBaselineObserverWiring(t *testing.T) {
	app, err := corpus.BuildApp(parityApp(t, "com.adobe.reader"))
	if err != nil {
		t.Fatal(err)
	}
	buf := &session.TraceBuffer{}
	acfg := baseline.DefaultActivityConfig()
	acfg.Observer = buf
	if _, err := baseline.ExploreActivities(app, acfg); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("activity baseline emitted no events")
	}
	mbuf := &session.TraceBuffer{}
	if _, err := baseline.Monkey(app, baseline.MonkeyConfig{Seed: 7, Events: 200, Observer: mbuf}); err != nil {
		t.Fatal(err)
	}
	if mbuf.Len() == 0 {
		t.Fatal("monkey emitted no events")
	}
}
