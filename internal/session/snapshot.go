package session

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"fragdroid/internal/apk"
	"fragdroid/internal/binc"
	"fragdroid/internal/device"
	"fragdroid/internal/robotium"
)

// DefaultSnapshotCapacity bounds the memo when the caller does not pick a
// size. One entry holds a deep copy of an activity back stack plus the
// side-effect journal of its route prefix — modest, so the default is
// generous enough that real explorations never evict.
const DefaultSnapshotCapacity = 4096

// SnapshotStore is the persistence hook the memo writes through: a durable
// (key, payload) store for encoded snapshot packs. *artifact.Store implements
// it; the indirection keeps the session layer free of a dependency on the
// artifact package.
type SnapshotStore interface {
	LoadSnapshot(key string) ([]byte, bool)
	SaveSnapshot(key string, payload []byte) error
}

// packState is the memo's view of one persisted snapshot pack: every durable
// entry for one (app fingerprint, dialog policy) pair, stored as a single
// artifact so a warm run pays one read per app instead of one per prefix.
//
// A loaded pack starts lazy: the load indexes the pack — per entry just the
// routing key and the byte range of its framed body — without decoding a
// single op or snapshot. An entry decodes on its first routing-index hit and
// moves from pending to entries; prefixes a run never asks for stay encoded
// for the process lifetime, which is what makes a warm persistent run
// strictly cheaper than re-execution even when the pack holds far more
// routes than the run replays. payload and rd are retained only while
// pending entries remain; app is the installation pending snapshots will
// bind to. once guards the one disk read; every other field is guarded by
// the memo mutex.
type packState struct {
	once    sync.Once
	entries map[memoKey]*packEntry
	pending map[memoKey]int // key -> body offset in payload
	payload []byte
	rd      *binc.Reader
	app     *apk.App
	dirty   bool
}

// has reports whether the pack already holds key, decoded or still pending.
// Callers deciding whether to add a durable entry must consult both tiers,
// or a warm run would re-add (and re-dirty) every prefix it re-executes.
func (p *packState) has(key memoKey) bool {
	if _, ok := p.entries[key]; ok {
		return true
	}
	_, ok := p.pending[key]
	return ok
}

// packEntry is one durable prefix: the op list (the collision guard) plus
// the decoded device snapshot. A pack decodes in a single pass over one
// shared string table — journal lines and class names repeat across an
// app's prefixes, so the pack-wide table allocates each string once where
// per-entry payloads would pay a full decode per serve. Entries are
// immutable after creation.
type packEntry struct {
	ops  []robotium.Op
	snap *device.Snapshot
	size int
}

// SnapshotMemo is an LRU-bounded, concurrency-safe memo of device snapshots
// keyed by executed route prefixes. Sessions that share a memo resume route
// execution from the longest memoized prefix instead of re-executing it from
// launch; because the simulator is deterministic, the state after a prefix is
// a pure function of (app content, prefix, auto-dismiss policy), which is
// exactly the memo key. The app is identified by a content fingerprint of its
// encoded spec — not pointer identity — so snapshots are valid across
// re-installs of the same build and, through an attached SnapshotStore,
// across process restarts. Snapshots are immutable, so one entry can seed any
// number of devices concurrently.
type SnapshotMemo struct {
	mu  sync.Mutex
	cap int
	lru *list.List // front = most recently used
	idx map[memoKey]*list.Element

	disk        SnapshotStore
	packs       map[string]*packState
	evictions   int
	bytesPinned int
	diskHits    int
	diskMisses  int
	diskWrites  int
	packIndexed int
	packDecoded int

	// hasDisk mirrors disk != nil for lock-free gating of the pack machinery
	// on the hot lookup path; packCache resolves (app, policy) to its pack
	// without the mutex or a key allocation once the first lookup paid them.
	hasDisk   atomic.Bool
	packCache sync.Map // packCacheKey -> *packState
}

// packCacheKey caches pack resolution per installed app pointer; two
// installs of the same build reach the same *packState through m.packs.
type packCacheKey struct {
	app         *apk.App
	autoDismiss bool
}

// memoKey identifies one memoized prefix. fp is the content fingerprint of
// the installed app's encoded spec (same build ⇒ same fingerprint, so stale
// snapshots from a different build are unreachable); autoDismiss is part of
// the key because the dialog policy changes what a prefix execution does; n
// plus the chained FNV-64a hash identify the operation sequence, with a
// stored-ops equality check guarding against hash collisions.
type memoKey struct {
	fp          string
	autoDismiss bool
	n           int
	hash        uint64
}

type memoEntry struct {
	key  memoKey
	ops  []robotium.Op
	snap *device.Snapshot
	size int
}

// appFPs memoizes content fingerprints per installed-app pointer; computing
// one means re-encoding the whole app spec, which must not happen on every
// memo probe.
var appFPs sync.Map // *apk.App -> string

// appFingerprint returns the content fingerprint of an installed app: the
// hex sha256 of its encoded spec. Two installations of byte-identical builds
// share a fingerprint — and therefore share memo entries — while any content
// difference separates them.
func appFingerprint(app *apk.App) string {
	if v, ok := appFPs.Load(app); ok {
		return v.(string)
	}
	var fp string
	if data, err := apk.EncodeApp(app); err == nil {
		sum := sha256.Sum256(data)
		fp = hex.EncodeToString(sum[:])
	} else {
		// Unencodable apps fall back to pointer identity: still correct,
		// just not shareable across installs or processes.
		fp = fmt.Sprintf("unhashable:%p", app)
	}
	appFPs.Store(app, fp)
	return fp
}

// NewSnapshotMemo returns a memo bounded to capacity entries;
// capacity <= 0 selects DefaultSnapshotCapacity.
func NewSnapshotMemo(capacity int) *SnapshotMemo {
	if capacity <= 0 {
		capacity = DefaultSnapshotCapacity
	}
	return &SnapshotMemo{
		cap:   capacity,
		lru:   list.New(),
		idx:   make(map[memoKey]*list.Element),
		packs: make(map[string]*packState),
	}
}

// AttachStore wires a persistence layer under the memo: full-route stores
// accumulate in per-app snapshot packs that Flush writes out, and lookups
// that miss in memory are served from the app's pack (loaded once per app,
// not once per prefix). Attaching a store is what makes warm exploration
// survive process restarts.
func (m *SnapshotMemo) AttachStore(st SnapshotStore) {
	m.mu.Lock()
	m.disk = st
	m.mu.Unlock()
	m.hasDisk.Store(st != nil)
}

// Len reports the number of memoized prefixes.
func (m *SnapshotMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len()
}

// Evictions reports the total number of entries evicted by capacity
// pressure over the memo's lifetime.
func (m *SnapshotMemo) Evictions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evictions
}

// BytesPinned reports the estimated bytes of snapshot state currently held
// by the memo.
func (m *SnapshotMemo) BytesPinned() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytesPinned
}

// DiskStats reports the persistence-layer traffic: lookups served from a
// loaded snapshot pack, full-length lookups that consulted the pack and
// missed, and packs written out by Flush.
func (m *SnapshotMemo) DiskStats() (hits, misses, writes int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.diskHits, m.diskMisses, m.diskWrites
}

// PackStats reports the lazy-decode behavior of loaded snapshot packs:
// indexed counts entries registered by pack loads (routing key and byte
// range only), decoded counts entries actually materialized — on a routing
// hit, or by Flush folding leftovers into a rewrite. decoded stays well
// under indexed whenever a run replays fewer routes than its packs hold;
// that gap is the work lazy loading avoided.
func (m *SnapshotMemo) PackStats() (indexed, decoded int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.packIndexed, m.packDecoded
}

// pack resolves the snapshot pack for an installed app, caching the result
// per app pointer so the hot paths pay one lock-free map load instead of a
// mutex round trip and a key render on every probe. Returns nil when no
// store is attached.
func (m *SnapshotMemo) pack(app *apk.App, fp string, autoDismiss bool) *packState {
	ck := packCacheKey{app: app, autoDismiss: autoDismiss}
	if v, ok := m.packCache.Load(ck); ok {
		return v.(*packState)
	}
	p := m.ensurePack(app, fp, autoDismiss)
	if p != nil {
		m.packCache.Store(ck, p)
	}
	return p
}

// ensurePack returns the pack for (fp, autoDismiss), loading it from the
// attached store on first touch. Returns nil when no store is attached. The
// single disk read and index pass run outside the memo mutex; the index
// merges under it, never displacing entries this process stored meanwhile.
// Nothing is decoded here: entries materialize on their first routing hit,
// bound to the app recorded below (serves for other installs of the same
// build rebind at lookup time).
func (m *SnapshotMemo) ensurePack(app *apk.App, fp string, autoDismiss bool) *packState {
	m.mu.Lock()
	disk := m.disk
	if disk == nil {
		m.mu.Unlock()
		return nil
	}
	pk := packKey(fp, autoDismiss)
	p, ok := m.packs[pk]
	if !ok {
		p = &packState{entries: make(map[memoKey]*packEntry)}
		m.packs[pk] = p
	}
	m.mu.Unlock()

	p.once.Do(func() {
		payload, ok := disk.LoadSnapshot(pk)
		if !ok {
			return
		}
		rd, pending, err := indexPack(payload, fp, autoDismiss)
		if err != nil {
			// A corrupt pack degrades to a silent miss for every prefix; the
			// run re-executes, re-stores, and the next Flush repairs the file.
			return
		}
		m.mu.Lock()
		p.payload = payload
		p.rd = rd
		p.pending = pending
		p.app = app
		m.packIndexed += len(pending)
		// The lazy tier pins only the encoded bytes; decoded snapshot sizes
		// are added entry by entry as routing hits materialize them.
		m.bytesPinned += len(payload)
		m.mu.Unlock()
	})
	return p
}

// decodePendingLocked materializes one pending entry, moving it from the
// encoded tier to entries. Caller holds m.mu. A decode failure means bytes
// past the container checksum are inconsistent with the index — effectively
// impossible short of a codec bug — and poisons the shared reader, so the
// whole lazy tier is dropped: every remaining pending prefix reads as a
// miss, re-executes, and the next Flush rewrites the pack.
func (m *SnapshotMemo) decodePendingLocked(p *packState, key memoKey) *packEntry {
	if p.rd == nil {
		// The lazy tier was already dropped by an earlier decode failure.
		return nil
	}
	off := p.pending[key]
	r := p.rd
	r.Seek(off)
	ops := make([]robotium.Op, 0, key.n)
	for j := 0; j < key.n && r.Err() == nil; j++ {
		ops = append(ops, robotium.Op{
			Kind:      robotium.OpKind(r.Uvarint()),
			Ref:       r.Str(),
			Value:     r.Str(),
			Activity:  r.Str(),
			Fragment:  r.Str(),
			Container: r.Str(),
		})
	}
	snap, err := device.DecodeSnapshotFrom(r, p.app)
	if err != nil || r.Err() != nil {
		m.bytesPinned -= len(p.payload)
		p.pending, p.payload, p.rd = nil, nil, nil
		return nil
	}
	e := &packEntry{ops: ops, snap: snap, size: snap.SizeEstimate()}
	p.entries[key] = e
	delete(p.pending, key)
	m.bytesPinned += e.size
	m.packDecoded++
	if len(p.pending) == 0 {
		// Fully materialized: release the encoded payload and its reader.
		m.bytesPinned -= len(p.payload)
		p.pending, p.payload, p.rd = nil, nil, nil
	}
	return e
}

// LongestPrefix finds the longest memoized prefix of ops for the given app
// and dialog policy. It returns the snapshot (bound to app), the prefix
// length, and the chained hash of that prefix (the seed for extending the
// chain over the remaining ops). At each length the in-memory LRU is
// consulted first, then the app's loaded snapshot pack — its own serving
// tier: pack entries are pinned for the process lifetime and served in
// place, not copied into the LRU. On a miss it returns (nil, 0, fnvOffset).
func (m *SnapshotMemo) LongestPrefix(app *apk.App, autoDismiss bool, ops []robotium.Op) (*device.Snapshot, int, uint64) {
	if len(ops) == 0 {
		return nil, 0, fnvOffset
	}
	fp := appFingerprint(app)
	// Chained prefix hashes: hs[i] covers ops[:i]. Routes are short, so the
	// table almost always fits on the stack.
	var hsBuf [24]uint64
	hs := hsBuf[:0]
	if len(ops)+1 > len(hsBuf) {
		hs = make([]uint64, 0, len(ops)+1)
	}
	hs = append(hs, fnvOffset)
	for i, op := range ops {
		hs = append(hs, hashOp(hs[i], op))
	}
	// Pack resolution stays off the no-store hot path entirely; with a store
	// it is a lock-free cache load after the first probe for this app.
	var p *packState
	if m.hasDisk.Load() {
		p = m.pack(app, fp, autoDismiss)
	}

	// Scan lengths longest-first under the lock, memory before pack at each
	// length.
	m.mu.Lock()
	for n := len(ops); n >= 1; n-- {
		key := memoKey{fp: fp, autoDismiss: autoDismiss, n: n, hash: hs[n]}
		if el, ok := m.idx[key]; ok {
			e := el.Value.(*memoEntry)
			if opsEqual(e.ops, ops[:n]) {
				m.lru.MoveToFront(el)
				snap := e.snap
				m.mu.Unlock()
				return snap.Rebind(app), n, hs[n]
			}
		}
		if p != nil {
			e, ok := p.entries[key]
			if !ok && p.pending != nil {
				if _, pend := p.pending[key]; pend {
					// First routing hit on an encoded entry: decode it now.
					e = m.decodePendingLocked(p, key)
					ok = e != nil
				}
			}
			if ok && opsEqual(e.ops, ops[:n]) {
				m.diskHits++
				snap := e.snap
				m.mu.Unlock()
				return snap.Rebind(app), n, hs[n]
			}
			if n == len(ops) {
				// Only full-length lookups count as pack misses: shorter
				// prefixes are opportunistic.
				m.diskMisses++
			}
		}
	}
	m.mu.Unlock()
	return nil, 0, fnvOffset
}

// Store memoizes the device's current state as the snapshot for ops,
// returning the number of entries evicted to make room. An existing entry is
// kept — the first capture wins, and deterministic execution guarantees any
// re-capture would be identical — so repeat executions pay only the hash
// probe, not a deep copy. With a store attached the snapshot is also
// persisted. The caller must only store states actually reached by executing
// ops from a fresh start (and never crashed ones); sessions do this via the
// robotium checkpoint hook.
func (m *SnapshotMemo) Store(app *apk.App, autoDismiss bool, ops []robotium.Op, d *device.Device) int {
	h := fnvOffset
	for _, op := range ops {
		h = hashOp(h, op)
	}
	return m.store(app, autoDismiss, h, ops, d, true)
}

// store is Store with the chained hash precomputed — sessions extend the
// hash incrementally across checkpoints instead of rehashing the prefix —
// and a persistence gate: only full-route captures go durable (partial
// prefixes are one checkpoint of a longer route; persisting every prefix
// would multiply pack size for states the full entry subsumes). Durable
// entries accumulate in the app's pack and hit disk when Flush runs.
func (m *SnapshotMemo) store(app *apk.App, autoDismiss bool, hash uint64, ops []robotium.Op, d *device.Device, persist bool) int {
	if len(ops) == 0 {
		return 0
	}
	fp := appFingerprint(app)
	key := memoKey{fp: fp, autoDismiss: autoDismiss, n: len(ops), hash: hash}
	m.mu.Lock()
	if el, ok := m.idx[key]; ok {
		m.lru.MoveToFront(el)
		m.mu.Unlock()
		return 0
	}
	m.mu.Unlock()

	// Capture outside the lock: the deep copy is the expensive part.
	snap := d.Snapshot()
	opsCopy := append([]robotium.Op(nil), ops...)
	evicted := m.insert(key, opsCopy, snap)

	if persist && m.hasDisk.Load() && !snap.Crashed() {
		if p := m.pack(app, fp, autoDismiss); p != nil {
			m.mu.Lock()
			if !p.has(key) {
				// Encoding is deferred to Flush, where the whole pack shares
				// one string table; the run only pins the snapshot pointer.
				e := &packEntry{ops: opsCopy, snap: snap, size: snap.SizeEstimate()}
				p.entries[key] = e
				p.dirty = true
				m.bytesPinned += e.size
			}
			m.mu.Unlock()
		}
	}
	return evicted
}

// Promote marks an already-memoized prefix durable. Routes that crash or
// error never reach the full-route persistence gate, so without promotion a
// warm run re-executes them from launch every time; promoting the longest
// non-crashed checkpoint lets it resume at the failing op instead. The entry
// must already be in memory (checkpoints put it there) and not crashed; a
// no-op otherwise, or without an attached store.
func (m *SnapshotMemo) Promote(app *apk.App, autoDismiss bool, hash uint64, ops []robotium.Op) {
	if len(ops) == 0 || !m.hasDisk.Load() {
		return
	}
	fp := appFingerprint(app)
	key := memoKey{fp: fp, autoDismiss: autoDismiss, n: len(ops), hash: hash}
	m.mu.Lock()
	el, ok := m.idx[key]
	m.mu.Unlock()
	if !ok {
		return
	}
	e := el.Value.(*memoEntry)
	if !opsEqual(e.ops, ops) || e.snap.Crashed() {
		return
	}
	p := m.pack(app, fp, autoDismiss)
	if p == nil {
		return
	}
	m.mu.Lock()
	if !p.has(key) {
		p.entries[key] = &packEntry{ops: e.ops, snap: e.snap, size: e.size}
		p.dirty = true
		m.bytesPinned += e.size
	}
	m.mu.Unlock()
}

// Flush writes every dirty snapshot pack through the attached store — one
// artifact per (app, dialog policy), entries in deterministic order — and
// returns the first write error. Entries loaded from disk merge with entries
// stored this run, so concurrent processes lose nothing but each other's
// unmerged additions (last writer wins, as with any artifact). Without an
// attached store, or with nothing new to persist, Flush is a no-op.
func (m *SnapshotMemo) Flush() error {
	m.mu.Lock()
	disk := m.disk
	type job struct {
		pk string
		p  *packState
	}
	var jobs []job
	for pk, p := range m.packs {
		if p.dirty {
			jobs = append(jobs, job{pk, p})
		}
	}
	m.mu.Unlock()
	if disk == nil {
		return nil
	}
	var firstErr error
	for _, j := range jobs {
		m.mu.Lock()
		// A dirty pack rewrites the whole artifact, so entries still encoded
		// must fold in or the rewrite would drop them. Clean packs never get
		// here — their pending tier stays encoded for the process lifetime.
		for k := range j.p.pending {
			m.decodePendingLocked(j.p, k)
		}
		keys := make([]memoKey, 0, len(j.p.entries))
		for k := range j.p.entries {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].n != keys[b].n {
				return keys[a].n < keys[b].n
			}
			return keys[a].hash < keys[b].hash
		})
		entries := make([]*packEntry, len(keys))
		for i, k := range keys {
			entries[i] = j.p.entries[k]
		}
		j.p.dirty = false
		m.mu.Unlock()

		if err := disk.SaveSnapshot(j.pk, encodePack(keys, entries)); err != nil {
			m.mu.Lock()
			j.p.dirty = true
			m.mu.Unlock()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		m.mu.Lock()
		m.diskWrites++
		m.mu.Unlock()
	}
	return firstErr
}

// ReleaseApp drops every memo resource tied to one installed app: its
// memoized prefixes, its loaded snapshot packs (a dirty pack is flushed
// through the attached store first, so nothing learned this run is lost),
// its pack-cache bindings and its cached content fingerprint. The streaming
// corpus pipeline calls it after folding an app's results — without the
// release the memo pins every explored app's snapshots, and the fingerprint
// cache pins the app itself, until process exit. Re-exploring a released app
// later is correct, just cold in memory: the pack reloads from disk.
func (m *SnapshotMemo) ReleaseApp(app *apk.App) error {
	// Flush skips clean packs, so in a streaming run this writes exactly the
	// released app's own pack (earlier apps were flushed at their release).
	err := m.Flush()
	fp := appFingerprint(app)
	m.mu.Lock()
	for key, el := range m.idx {
		if key.fp != fp {
			continue
		}
		m.bytesPinned -= el.Value.(*memoEntry).size
		m.lru.Remove(el)
		delete(m.idx, key)
	}
	for _, ad := range []bool{false, true} {
		pk := packKey(fp, ad)
		if p, ok := m.packs[pk]; ok {
			for _, e := range p.entries {
				m.bytesPinned -= e.size
			}
			if p.payload != nil {
				m.bytesPinned -= len(p.payload)
			}
			delete(m.packs, pk)
		}
		m.packCache.Delete(packCacheKey{app: app, autoDismiss: ad})
	}
	m.mu.Unlock()
	appFPs.Delete(app)
	return err
}

// insert adds an entry under first-capture-wins semantics and applies
// capacity eviction, returning the number of entries evicted.
func (m *SnapshotMemo) insert(key memoKey, ops []robotium.Op, snap *device.Snapshot) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.idx[key]; ok {
		m.lru.MoveToFront(el)
		return 0
	}
	e := &memoEntry{key: key, ops: ops, snap: snap, size: snap.SizeEstimate()}
	m.idx[key] = m.lru.PushFront(e)
	m.bytesPinned += e.size
	evicted := 0
	for m.lru.Len() > m.cap {
		back := m.lru.Back()
		m.lru.Remove(back)
		be := back.Value.(*memoEntry)
		delete(m.idx, be.key)
		m.bytesPinned -= be.size
		m.evictions++
		evicted++
	}
	return evicted
}

// packKey renders a pack's persistent cache key.
func packKey(fp string, autoDismiss bool) string {
	return fmt.Sprintf("%s|ad=%t", fp, autoDismiss)
}

// encodePack frames a snapshot pack: an entry count, then per entry the
// chained hash (the routing index), the op count, the byte length of the
// entry body, and the body itself — the op list (the collision guard:
// lookups verify it matches the requested prefix exactly) followed by the
// snapshot — all behind one shared string table. The body length is what a
// warm load's index pass skips by; string interning is unaffected because
// the table sits ahead of the body and refs are indices into it.
func encodePack(keys []memoKey, entries []*packEntry) []byte {
	w := binc.NewWriter()
	w.Int(len(entries))
	for i, e := range entries {
		w.Uvarint(keys[i].hash)
		w.Int(len(e.ops))
		mark := w.Mark()
		for _, op := range e.ops {
			w.Uvarint(uint64(op.Kind))
			w.Str(op.Ref)
			w.Str(op.Value)
			w.Str(op.Activity)
			w.Str(op.Fragment)
			w.Str(op.Container)
		}
		device.EncodeSnapshotTo(w, e.snap)
		w.InsertUvarint(mark, uint64(w.Mark()-mark))
	}
	return w.Bytes()
}

// indexPack walks a pack payload and records, per entry, the routing key and
// the offset of its framed body — no ops or snapshots are decoded. The frame
// lengths must tile the payload exactly, so truncation or trailing garbage
// (possible only past the container checksum) fails the whole pack and the
// caller treats it as every-prefix-missing. The returned reader is retained
// for decodePendingLocked to seek into. The stored hash is merely a routing
// index: nothing is ever served until an entry's decoded ops compare equal
// to the requested prefix, so a payload whose hash and ops disagree can
// never produce a wrong serve — at worst it reads as a miss.
func indexPack(data []byte, fp string, autoDismiss bool) (*binc.Reader, map[memoKey]int, error) {
	r, err := binc.NewReader(data)
	if err != nil {
		return nil, nil, err
	}
	count := r.Int()
	pending := make(map[memoKey]int, count)
	for i := 0; i < count && r.Err() == nil; i++ {
		h := r.Uvarint()
		n := r.Int()
		bodyLen := r.Int()
		off := r.Pos()
		r.Skip(bodyLen)
		key := memoKey{fp: fp, autoDismiss: autoDismiss, n: n, hash: h}
		if _, dup := pending[key]; !dup && r.Err() == nil {
			pending[key] = off
		}
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if err := r.Done(); err != nil {
		return nil, nil, err
	}
	return r, pending, nil
}

func opsEqual(a, b []robotium.Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FNV-64a, chained over op fields with separators so field boundaries and
// prefix boundaries cannot alias.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func hashOp(h uint64, op robotium.Op) uint64 {
	h ^= uint64(op.Kind)
	h *= fnvPrime
	h = hashField(h, op.Ref)
	h = hashField(h, op.Value)
	h = hashField(h, op.Activity)
	h = hashField(h, op.Fragment)
	h = hashField(h, op.Container)
	return h
}

func hashField(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	h ^= 0xff // field separator
	h *= fnvPrime
	return h
}
