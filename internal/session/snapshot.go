package session

import (
	"container/list"
	"sync"

	"fragdroid/internal/apk"
	"fragdroid/internal/device"
	"fragdroid/internal/robotium"
)

// DefaultSnapshotCapacity bounds the memo when the caller does not pick a
// size. One entry holds a deep copy of an activity back stack plus the
// side-effect journal of its route prefix — modest, so the default is
// generous enough that real explorations never evict.
const DefaultSnapshotCapacity = 4096

// SnapshotMemo is an LRU-bounded, concurrency-safe memo of device snapshots
// keyed by executed route prefixes. Sessions that share a memo resume route
// execution from the longest memoized prefix instead of re-executing it from
// launch; because the simulator is deterministic, the state after a prefix is
// a pure function of (installed app, prefix, auto-dismiss policy), which is
// exactly the memo key. Snapshots are immutable, so one entry can seed any
// number of devices concurrently.
type SnapshotMemo struct {
	mu  sync.Mutex
	cap int
	lru *list.List // front = most recently used
	idx map[memoKey]*list.Element
}

// memoKey identifies one memoized prefix. The app pointer stands for the
// installed-app identity (a re-install is a different pointer, so stale
// snapshots are unreachable); autoDismiss is part of the key because the
// dialog policy changes what a prefix execution does; n plus the chained
// FNV-64a hash identify the operation sequence, with a stored-ops equality
// check guarding against hash collisions.
type memoKey struct {
	app         *apk.App
	autoDismiss bool
	n           int
	hash        uint64
}

type memoEntry struct {
	key  memoKey
	ops  []robotium.Op
	snap *device.Snapshot
}

// NewSnapshotMemo returns a memo bounded to capacity entries;
// capacity <= 0 selects DefaultSnapshotCapacity.
func NewSnapshotMemo(capacity int) *SnapshotMemo {
	if capacity <= 0 {
		capacity = DefaultSnapshotCapacity
	}
	return &SnapshotMemo{
		cap: capacity,
		lru: list.New(),
		idx: make(map[memoKey]*list.Element),
	}
}

// Len reports the number of memoized prefixes.
func (m *SnapshotMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len()
}

// LongestPrefix finds the longest memoized prefix of ops for the given app
// and dialog policy. It returns the snapshot, the prefix length, and the
// chained hash of that prefix (the seed for extending the chain over the
// remaining ops). On a miss it returns (nil, 0, fnvOffset).
func (m *SnapshotMemo) LongestPrefix(app *apk.App, autoDismiss bool, ops []robotium.Op) (*device.Snapshot, int, uint64) {
	if len(ops) == 0 {
		return nil, 0, fnvOffset
	}
	// Chained prefix hashes: hs[i] covers ops[:i].
	hs := make([]uint64, len(ops)+1)
	hs[0] = fnvOffset
	for i, op := range ops {
		hs[i+1] = hashOp(hs[i], op)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for n := len(ops); n >= 1; n-- {
		key := memoKey{app: app, autoDismiss: autoDismiss, n: n, hash: hs[n]}
		el, ok := m.idx[key]
		if !ok {
			continue
		}
		e := el.Value.(*memoEntry)
		if !opsEqual(e.ops, ops[:n]) {
			continue // hash collision: treat as a miss
		}
		m.lru.MoveToFront(el)
		return e.snap, n, hs[n]
	}
	return nil, 0, fnvOffset
}

// Store memoizes the device's current state as the snapshot for ops. An
// existing entry is kept — the first capture wins, and deterministic
// execution guarantees any re-capture would be identical — so repeat
// executions pay only the hash probe, not a deep copy. The caller must only
// store states actually reached by executing ops from a fresh start (and
// never crashed ones); sessions do this via the robotium checkpoint hook.
func (m *SnapshotMemo) Store(app *apk.App, autoDismiss bool, ops []robotium.Op, d *device.Device) {
	h := fnvOffset
	for _, op := range ops {
		h = hashOp(h, op)
	}
	m.store(app, autoDismiss, h, ops, d)
}

// store is Store with the chained hash precomputed — sessions extend the
// hash incrementally across checkpoints instead of rehashing the prefix.
func (m *SnapshotMemo) store(app *apk.App, autoDismiss bool, hash uint64, ops []robotium.Op, d *device.Device) {
	if len(ops) == 0 {
		return
	}
	key := memoKey{app: app, autoDismiss: autoDismiss, n: len(ops), hash: hash}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.idx[key]; ok {
		m.lru.MoveToFront(el)
		return
	}
	e := &memoEntry{key: key, ops: append([]robotium.Op(nil), ops...), snap: d.Snapshot()}
	m.idx[key] = m.lru.PushFront(e)
	for m.lru.Len() > m.cap {
		back := m.lru.Back()
		m.lru.Remove(back)
		delete(m.idx, back.Value.(*memoEntry).key)
	}
}

func opsEqual(a, b []robotium.Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FNV-64a, chained over op fields with separators so field boundaries and
// prefix boundaries cannot alias.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func hashOp(h uint64, op robotium.Op) uint64 {
	h ^= uint64(op.Kind)
	h *= fnvPrime
	h = hashField(h, op.Ref)
	h = hashField(h, op.Value)
	h = hashField(h, op.Activity)
	h = hashField(h, op.Fragment)
	h = hashField(h, op.Container)
	return h
}

func hashField(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	h ^= 0xff // field separator
	h *= fnvPrime
	return h
}
