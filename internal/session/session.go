// Package session implements the shared exploration-session runtime every
// dynamic engine runs on: device provisioning wired to a sensitive-API
// collector, budgeted Robotium script execution with test-case and step
// accounting, crash triage (one report per distinct force-close reason, each
// with a replayable route), coverage-curve sampling, and a structured trace
// of typed events behind a pluggable Observer sink.
//
// The explorer, the Activity-level baseline, Monkey, and the recorder's
// replay all share this layer, so the harness mechanics — budgets, restarts,
// crash handling — are identical across strategies by construction (the
// fairness requirement of comparative evaluations; Choudhary et al.), and
// every run yields the same telemetry shape for the report tables.
package session

import (
	"fmt"

	"fragdroid/internal/apk"
	"fragdroid/internal/device"
	"fragdroid/internal/robotium"
	"fragdroid/internal/sensitive"
)

// Stats is the shared run-stats shape: the counters every engine accumulates
// through the session. Engine results embed it, so the report layer consumes
// one shape instead of converting between per-engine fields.
type Stats struct {
	// TestCases counts budgeted script executions (one fresh instrumentation
	// run each), or injected event batches for engines that drive a
	// long-lived device directly.
	TestCases int `json:"test_cases"`
	// Steps is the accumulated device work (interpreted instructions plus
	// delivered UI events).
	Steps int `json:"steps"`
	// Crashes counts observed force-closes.
	Crashes int `json:"crashes"`
	// Replays counts script runs that re-established a previously reached
	// interface (PurposeReplay).
	Replays int `json:"replays"`
	// ReflectionAttempts counts reflective fragment-switch scripts executed;
	// ReflectionFailures the attempts that did not credit their fragment.
	ReflectionAttempts int `json:"reflection_attempts"`
	ReflectionFailures int `json:"reflection_failures"`
	// ForcedStarts counts forced empty-Intent start scripts executed.
	ForcedStarts int `json:"forced_starts"`
	// InputFills counts input widgets successfully filled.
	InputFills int `json:"input_fills"`
	// SnapshotHits counts script executions that resumed from a memoized
	// route-prefix snapshot instead of re-executing it from launch.
	SnapshotHits int `json:"snapshot_hits"`
	// SnapshotRestores counts device restore operations performed (engines
	// driving a long-lived device may restore several times per billed hit).
	SnapshotRestores int `json:"snapshot_restores"`
	// StepsSaved is the interpreter work credited by snapshot restores
	// instead of executed — Steps counts it either way, so budgets and
	// reported work are identical with snapshots on or off.
	StepsSaved int `json:"steps_saved"`
	// Evictions counts memo entries evicted by capacity pressure during this
	// run's stores — the observable signal that the snapshot memo is
	// undersized for the workload.
	Evictions int `json:"evictions,omitempty"`
	// BytesPinned is the peak estimated bytes of snapshot state the shared
	// memo held while this run sampled it (a gauge, not a sum: Add takes the
	// max, since concurrent runs share one memo).
	BytesPinned int `json:"bytes_pinned,omitempty"`
}

// Add returns the element-wise sum of two stats.
func (s Stats) Add(o Stats) Stats {
	s.TestCases += o.TestCases
	s.Steps += o.Steps
	s.Crashes += o.Crashes
	s.Replays += o.Replays
	s.ReflectionAttempts += o.ReflectionAttempts
	s.ReflectionFailures += o.ReflectionFailures
	s.ForcedStarts += o.ForcedStarts
	s.InputFills += o.InputFills
	s.SnapshotHits += o.SnapshotHits
	s.SnapshotRestores += o.SnapshotRestores
	s.StepsSaved += o.StepsSaved
	s.Evictions += o.Evictions
	if o.BytesPinned > s.BytesPinned {
		s.BytesPinned = o.BytesPinned // gauge: engines sample one shared memo
	}
	return s
}

// CrashReport is one distinct force-close with a route that reproduces it.
type CrashReport struct {
	// Reason is the FC message (exception-style).
	Reason string
	// Route is the operation list whose execution crashed the app.
	Route robotium.Script
}

// CurvePoint is one sample of the coverage curve.
type CurvePoint struct {
	// TestCase is the cumulative number of executed test cases.
	TestCase int
	// Activities and Fragments are cumulative visited counts.
	Activities int
	Fragments  int
}

// Options configure a session.
type Options struct {
	// Budget bounds the number of script executions (test cases); zero means
	// unlimited. Engines apply their own defaults before constructing the
	// session.
	Budget int
	// HaltOnAPI stops the session as soon as the named sensitive API is
	// observed (targeted SmartDroid-style runs).
	HaltOnAPI string
	// AutoDismiss makes script runs close dialogs before each operation.
	AutoDismiss bool
	// TriageCrashes keeps one CrashReport per distinct force-close reason,
	// with the route that reproduces it. Engines without fault-finding
	// output (the baselines) leave it off: crashes are still counted.
	TriageCrashes bool
	// Collector receives the run's sensitive-API observations; nil allocates
	// a fresh collector for the app package.
	Collector *sensitive.Collector
	// Observer is the structured trace sink; nil disables event delivery
	// (counters, transcript, and reports are maintained regardless).
	Observer Observer
	// Coverage supplies the cumulative visited counts behind the coverage
	// curve; nil disables curve sampling.
	Coverage func() (activities, fragments int)
	// Snapshots, when set, memoizes device snapshots of executed route
	// prefixes so later script runs resume from the longest memoized prefix
	// instead of re-executing it from launch. Sharing one memo across the
	// sessions of an app's run is the point; nil disables memoization (every
	// run re-executes from scratch, the paper's literal discipline).
	Snapshots *SnapshotMemo
}

// Session is one exploration run's shared runtime state.
type Session struct {
	app  *apk.App
	opts Options

	collector *sensitive.Collector
	stats     Stats
	seq       int

	transcript   []string
	crashSeen    map[string]bool
	crashReports []CrashReport
	curve        []CurvePoint
}

// New returns a session for one app run.
func New(app *apk.App, opts Options) *Session {
	s := &Session{app: app, opts: opts, collector: opts.Collector}
	if s.collector == nil {
		s.collector = sensitive.NewCollector(app.Manifest.Package)
	}
	return s
}

// App returns the application under test.
func (s *Session) App() *apk.App { return s.app }

// Collector returns the session's sensitive-API collector.
func (s *Session) Collector() *sensitive.Collector { return s.collector }

// Stats returns the accumulated counters.
func (s *Session) Stats() Stats { return s.stats }

// Transcript returns the human-readable run log: the Msg lines of the event
// stream, in order.
func (s *Session) Transcript() []string { return s.transcript }

// CrashReports returns the triaged force-closes, one per distinct reason.
func (s *Session) CrashReports() []CrashReport { return s.crashReports }

// Curve returns the coverage-curve samples.
func (s *Session) Curve() []CurvePoint { return s.curve }

// Exhausted reports whether the test-case budget is spent.
func (s *Session) Exhausted() bool {
	return s.opts.Budget > 0 && s.stats.TestCases >= s.opts.Budget
}

// Halted reports whether a targeted run has already observed its API.
func (s *Session) Halted() bool {
	return s.opts.HaltOnAPI != "" && s.collector.Has(s.opts.HaltOnAPI)
}

// Trace emits one structured event: it stamps the sequence number and app,
// updates the counters the event kind implies, appends Msg (when present) to
// the transcript, and delivers the event to the Observer if one is attached.
func (s *Session) Trace(ev Event) {
	s.seq++
	ev.Seq = s.seq
	ev.App = s.app.Manifest.Package
	switch ev.Kind {
	case KindInputFill:
		if ev.Err == "" {
			s.stats.InputFills++
		}
	case KindReflectionAttempt:
		if ev.Err != "" {
			s.stats.ReflectionFailures++
		}
	}
	if ev.Msg != "" {
		s.transcript = append(s.transcript, ev.Msg)
	}
	if s.opts.Observer != nil {
		s.opts.Observer.OnEvent(ev)
	}
}

// Notef emits a free-form note event whose Msg becomes a transcript line.
func (s *Session) Notef(format string, args ...any) {
	s.Trace(Event{Kind: KindNote, Msg: fmt.Sprintf(format, args...)})
}

// NewDevice provisions a fresh instrumented device: the app installed, the
// sensitive-API monitor wired to the session collector, and — while an
// Observer is attached — the device log forwarded as trace events.
func (s *Session) NewDevice() *device.Device {
	opts := device.Options{Monitor: func(ev device.SensitiveEvent) {
		e := sensitive.Event(ev)
		s.collector.Observe(e)
		if s.opts.Observer != nil {
			s.Trace(Event{Kind: KindSensitive, API: e.API, Class: e.Class,
				InFragment: e.InFragment, Activity: e.Activity})
		}
	}}
	if s.opts.Observer != nil {
		opts.Hook = func(line string) {
			s.Trace(Event{Kind: KindDevice, Detail: line})
		}
	}
	return device.New(s.app, opts)
}

// RunScript provisions a fresh device and executes one budgeted test case on
// it. The third return is false when the session is halted or out of budget
// (no device was provisioned then).
func (s *Session) RunScript(sc robotium.Script, p Purpose) (*device.Device, robotium.Result, bool) {
	if s.Halted() || s.Exhausted() {
		return nil, robotium.Result{}, false
	}
	d := s.NewDevice()
	res, ok := s.RunOn(d, sc, p)
	return d, res, ok
}

// RunOn executes one budgeted test case on a caller-provided device,
// applying the same accounting, crash triage, curve sampling, and tracing as
// RunScript. Steps are charged as the device's delta across the run, so
// long-lived devices are billed correctly.
func (s *Session) RunOn(d *device.Device, sc robotium.Script, p Purpose) (robotium.Result, bool) {
	if s.Halted() || s.Exhausted() {
		return robotium.Result{}, false
	}
	s.stats.TestCases++
	switch p {
	case PurposeReplay, PurposeSeed:
		s.stats.Replays++
	case PurposeReflection:
		s.stats.ReflectionAttempts++
	case PurposeForcedStart:
		s.stats.ForcedStarts++
	}
	opts := robotium.Options{AutoDismiss: s.opts.AutoDismiss}
	if s.opts.Observer != nil {
		opts.Observe = func(op robotium.Op, err error) {
			s.Trace(Event{Kind: KindOp, Script: sc.Name, Op: op.String(), Err: errString(err)})
		}
	}
	// Steps and restored-steps baselines are read before any restore so the
	// deltas below include the credited prefix — the run is billed the same
	// logical work whether the prefix was executed or restored.
	before := d.Steps()
	beforeRestored := d.RestoredSteps()
	hashed, hash := 0, fnvOffset
	if memo := s.opts.Snapshots; memo != nil {
		snap, n, h := memo.LongestPrefix(s.app, s.opts.AutoDismiss, sc.Ops)
		if snap != nil && d.Restore(snap) == nil {
			opts.Resume = n
			hashed, hash = n, h
			s.stats.SnapshotHits++
			s.stats.SnapshotRestores++
			if s.opts.Observer != nil {
				// Re-emit the per-op events the skipped execution would
				// have produced; only successful prefixes are memoized.
				for _, op := range sc.Ops[:n] {
					s.Trace(Event{Kind: KindOp, Script: sc.Name, Op: op.String()})
				}
			}
		}
		opts.Checkpoint = func(executed int) {
			if d.Crashed() {
				return // crashed states must never be resumed into
			}
			for hashed < executed {
				hash = hashOp(hash, sc.Ops[hashed])
				hashed++
			}
			// Only the full route writes through to the persistent store;
			// partial prefixes stay in memory (the full entry subsumes them).
			persist := executed == len(sc.Ops)
			s.stats.Evictions += memo.store(s.app, s.opts.AutoDismiss, hash, sc.Ops[:executed], d, persist)
		}
	}
	res := robotium.Run(d, sc, opts)
	if memo := s.opts.Snapshots; memo != nil {
		if hashed > 0 && hashed < len(sc.Ops) {
			// The route stopped short — a crash or an op error — so the
			// full-route persistence gate never fired. Promote the longest
			// clean checkpoint instead: a warm run then resumes at the
			// failing op rather than re-executing the route from launch.
			memo.Promote(s.app, s.opts.AutoDismiss, hash, sc.Ops[:hashed])
		}
		if bp := memo.BytesPinned(); bp > s.stats.BytesPinned {
			s.stats.BytesPinned = bp
		}
	}
	delta := d.Steps() - before
	s.stats.Steps += delta
	s.stats.StepsSaved += d.RestoredSteps() - beforeRestored
	if res.Crashed {
		s.MarkCrash(res.CrashReason, sc)
	}
	s.Trace(Event{Kind: KindScriptRun, Script: sc.Name, Purpose: p,
		Ops: len(sc.Ops), Executed: res.Executed, Steps: delta,
		Crashed: res.Crashed, Reason: res.CrashReason, Err: errString(res.Err),
		TestCase: s.stats.TestCases})
	s.SampleCurve()
	return res, true
}

// MarkCrash counts one observed force-close. With triage enabled, the first
// route per distinct reason is kept as a replayable CrashReport.
func (s *Session) MarkCrash(reason string, route robotium.Script) {
	s.stats.Crashes++
	if !s.opts.TriageCrashes || reason == "" || s.crashSeen[reason] {
		s.Trace(Event{Kind: KindCrash, Reason: reason})
		return
	}
	if s.crashSeen == nil {
		s.crashSeen = make(map[string]bool)
	}
	s.crashSeen[reason] = true
	s.crashReports = append(s.crashReports, CrashReport{Reason: reason, Route: route})
	s.Trace(Event{Kind: KindCrash, Reason: reason, Ops: len(route.Ops),
		Msg: fmt.Sprintf("crash recorded: %s (%d ops to reproduce)", reason, len(route.Ops))})
}

// SampleCurve appends a coverage sample when coverage changed (the latest
// test case always holds the current sample). No-op without a Coverage
// source.
func (s *Session) SampleCurve() {
	if s.opts.Coverage == nil {
		return
	}
	acts, frags := s.opts.Coverage()
	p := CurvePoint{TestCase: s.stats.TestCases, Activities: acts, Fragments: frags}
	if n := len(s.curve); n > 0 {
		last := s.curve[n-1]
		if last.Activities == p.Activities && last.Fragments == p.Fragments {
			s.curve[n-1] = p // slide the flat tail forward
			return
		}
	}
	s.curve = append(s.curve, p)
	if s.opts.Observer != nil {
		s.Trace(Event{Kind: KindCurve, TestCase: p.TestCase,
			Activities: p.Activities, Fragments: p.Fragments})
	}
}

// AddTestCases charges n test cases to the session without running scripts —
// for engines that inject raw events on a long-lived device (Monkey bills
// its event batches this way).
func (s *Session) AddTestCases(n int) { s.stats.TestCases += n }

// AddSteps charges device work performed outside RunOn.
func (s *Session) AddSteps(n int) { s.stats.Steps += n }

// AddSnapshot charges snapshot accounting performed outside RunOn — engines
// driving a long-lived device restore restart prefixes themselves and bill
// the session here.
func (s *Session) AddSnapshot(hits, restores, stepsSaved int) {
	s.stats.SnapshotHits += hits
	s.stats.SnapshotRestores += restores
	s.stats.StepsSaved += stepsSaved
}

// AddEvictions charges memo evictions caused by stores performed outside
// RunOn (the explorer's probe memoization bills itself here).
func (s *Session) AddEvictions(n int) { s.stats.Evictions += n }

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
