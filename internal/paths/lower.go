package paths

import (
	"fmt"
	"strings"

	"fragdroid/internal/callgraph"
	"fragdroid/internal/robotium"
	"fragdroid/internal/smali"
)

// Cause labels why a path could not be lowered.
type Cause string

// Blocking causes.
const (
	// CauseNoBoundWidget: the edge is a click dispatch (listener registration
	// or inner-class over-approximation) with no statically bound widget to
	// click.
	CauseNoBoundWidget Cause = "no-bound-widget"
	// CauseReceiverOnly: the code only runs in a BroadcastReceiver's context,
	// which has no UI to drive.
	CauseReceiverOnly Cause = "receiver-only"
	// CauseReflectionGated: the reflective fragment switch is statically
	// known to fail (the fragment's newInstance requires parameters).
	CauseReflectionGated Cause = "reflection-gated"
	// CauseSearchBound: the bounded enumeration found no path at all within
	// its limits, so nothing could be lowered.
	CauseSearchBound Cause = "search-bounds"
)

// Route is a lifted path: a robotium script that replays it end to end.
type Route struct {
	Target Target
	Path   Path
	Script robotium.Script
	// UIOps counts the script's operations — the explicit driving work the
	// route costs (launch/forced start, fills, clicks, dismissals, reflective
	// switches).
	UIOps int
}

// Unliftable is a path whose lowering failed, with the blocking edge.
type Unliftable struct {
	Target Target
	Path   Path
	// Edge is the blocking edge (zero value for CauseSearchBound).
	Edge  callgraph.Edge
	Cause Cause
}

func (u Unliftable) String() string {
	if u.Cause == CauseSearchBound {
		return string(u.Cause)
	}
	return fmt.Sprintf("%s at %s", u.Cause, u.Edge)
}

// Lower compiles one enumerated path into a robotium route. The second
// return carries the blocking edge when the path cannot be actuated.
//
// The lowering rules, per edge Reason (DESIGN §4.13):
//
//   - lifecycle, intent, action, transaction, inflate, static-fragment,
//     broadcast: automatic — the edge fires when its source component or
//     method executes, so no operation is emitted.
//   - xml-onclick, listener: click the bound widget (Edge.Ref); an edge with
//     no bound widget blocks the path. Require-input gates in the handler
//     body are filled beforehand with the explorer's input resolution.
//   - reflection: the §VI-A reflective switch of the fragment into the
//     host's container (Edge.Ref); blocked when the fragment's constructor
//     needs arguments the switch cannot supply.
//   - inner: blocked — the inner-class over-approximation names no widget
//     (receiver-only when the context is a BroadcastReceiver).
//
// The root lowers to the launch (launcher root) or a forced empty-Intent
// start (any other effective activity). A handler that leaves a modal dialog
// up gets an explicit dismissal before the next click, so routes stay valid
// without the session's auto-dismiss.
func (p *Planner) Lower(t Target, path Path, name string) (Route, *Unliftable) {
	var ops []robotium.Op
	if path.Forced {
		ops = append(ops, robotium.ForceStart(path.Root.Class))
	} else {
		ops = append(ops, robotium.LaunchMain())
	}
	dialogUp := false
	dismiss := func() {
		if dialogUp {
			ops = append(ops, robotium.DismissDialog())
			dialogUp = false
		}
	}
	for _, e := range path.Edges {
		switch e.Reason {
		case callgraph.ReasonLifecycle, callgraph.ReasonIntent, callgraph.ReasonAction,
			callgraph.ReasonTransaction, callgraph.ReasonInflate,
			callgraph.ReasonStaticFragment, callgraph.ReasonBroadcast:
			// Automatic: executing the source triggers the transition.
		case callgraph.ReasonXMLOnClick, callgraph.ReasonListener:
			if e.Ref == "" {
				return Route{}, &Unliftable{Target: t, Path: path, Edge: e, Cause: CauseNoBoundWidget}
			}
			dismiss()
			ops = append(ops, p.fillsFor(e.To)...)
			ops = append(ops, robotium.Click(e.Ref))
			dialogUp = p.leavesDialog(e.To)
		case callgraph.ReasonReflection:
			frag := e.To.Class
			if c := p.ex.App.Program.Class(frag); c == nil || c.RequiresArgs {
				return Route{}, &Unliftable{Target: t, Path: path, Edge: e, Cause: CauseReflectionGated}
			}
			dismiss()
			ops = append(ops, robotium.Reflect(frag, e.Ref))
		case callgraph.ReasonInner:
			cause := CauseNoBoundWidget
			if e.From.Kind == callgraph.KindReceiver {
				cause = CauseReceiverOnly
			}
			return Route{}, &Unliftable{Target: t, Path: path, Edge: e, Cause: cause}
		default:
			return Route{}, &Unliftable{Target: t, Path: path, Edge: e, Cause: CauseNoBoundWidget}
		}
	}
	return Route{
		Target: t,
		Path:   path,
		Script: robotium.Script{Name: name, Ops: ops},
		UIOps:  len(ops),
	}, nil
}

// fillsFor renders the input fills a handler method's require-input gates
// need, resolved like the explorer fills interfaces: the analyst input file,
// then the generator keyed on the widget's hint, then the default filler.
func (p *Planner) fillsFor(m callgraph.Node) []robotium.Op {
	var ops []robotium.Op
	for _, ins := range p.methodBody(m) {
		if ins.Op != smali.OpRequireInput {
			continue
		}
		ref := ins.Args[0]
		if val := p.inputValue(ref); val != "" {
			ops = append(ops, robotium.EnterText(ref, val))
		}
	}
	return ops
}

// inputValue mirrors explorer.(*engine).inputValue.
func (p *Planner) inputValue(ref string) string {
	if val, ok := p.cfg.Inputs[ref]; ok && val != "" {
		return val
	}
	if p.cfg.InputGen != nil {
		if val, ok := p.cfg.InputGen.Generate(ref, p.hints[ref]); ok {
			return val
		}
	}
	return p.cfg.DefaultInput
}

// leavesDialog reports whether executing the handler leaves a modal dialog
// or popup on the resulting top screen: a show op with no later activity
// start or finish (which would change the top) in the straight-line body.
func (p *Planner) leavesDialog(m callgraph.Node) bool {
	up := false
	for _, ins := range p.methodBody(m) {
		switch ins.Op {
		case smali.OpShowDialog, smali.OpShowPopup:
			up = true
		case smali.OpStartActivity, smali.OpFinish:
			up = false
		}
	}
	return up
}

// methodBody returns the smali body of a method node (nil when unknown).
func (p *Planner) methodBody(m callgraph.Node) []smali.Instr {
	if m.Kind != callgraph.KindMethod {
		return nil
	}
	c := p.ex.App.Program.Class(m.Class)
	if c == nil {
		return nil
	}
	md := c.Method(m.Method)
	if md == nil {
		return nil
	}
	return md.Body
}

// routeName builds a deterministic script name for a lowered route.
func routeName(t Target, idx int) string {
	base := t.Class
	if i := strings.LastIndexByte(base, '.'); i >= 0 {
		base = base[i+1:]
	}
	if t.API != "" {
		api := t.API
		if i := strings.LastIndexByte(api, '/'); i >= 0 {
			api = api[i+1:]
		}
		return fmt.Sprintf("path_%s_%s_%d", api, base, idx)
	}
	return fmt.Sprintf("path_%s_%d", base, idx)
}
