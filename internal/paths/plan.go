package paths

import (
	"sort"

	"fragdroid/internal/callgraph"
)

// SitePlan is the planning result for one target: the lifted routes
// (cheapest first), the enumerated-but-blocked paths, and launcher
// reachability of the target.
type SitePlan struct {
	Target Target
	// Routes are the lifted paths, cheapest first. Each replays end to end
	// from a fresh device.
	Routes []Route
	// Blocked are the enumerated paths whose lowering failed, in enumeration
	// order. A target with no Routes and a non-empty Blocked is unliftable;
	// one with neither was out of the search's reach entirely (reported as
	// one CauseSearchBound entry).
	Blocked []Unliftable
	// LauncherReachable reports whether launcher-only reachability covers
	// the target (false means only forced starts can reach it).
	LauncherReachable bool
}

// Liftable reports whether at least one enumerated path lowered to a route.
func (sp *SitePlan) Liftable() bool { return len(sp.Routes) > 0 }

// Blocking returns the representative blocking record: the first blocked
// path of the cheapest enumeration (ok=false when the plan has routes or
// nothing was enumerated).
func (sp *SitePlan) Blocking() (Unliftable, bool) {
	if len(sp.Blocked) == 0 {
		return Unliftable{}, false
	}
	return sp.Blocked[0], true
}

// PlanTarget enumerates and lowers paths to an explicit node set.
func (p *Planner) PlanTarget(t Target, isTarget func(callgraph.Node) bool) SitePlan {
	sp := SitePlan{Target: t}
	found := p.Enumerate(isTarget)
	if len(found) == 0 {
		sp.Blocked = append(sp.Blocked, Unliftable{Target: t, Cause: CauseSearchBound})
		return sp
	}
	for _, path := range found {
		r, blocked := p.Lower(t, path, routeName(t, len(sp.Routes)))
		if blocked != nil {
			sp.Blocked = append(sp.Blocked, *blocked)
			continue
		}
		sp.Routes = append(sp.Routes, r)
	}
	return sp
}

// apiTargets returns the predicate accepting the method nodes that invoke
// api in the context of owner (outer component class), plus whether any such
// site exists.
func (p *Planner) apiTargets(api, owner string) (func(callgraph.Node) bool, bool) {
	nodes := make(map[callgraph.Node]bool)
	for _, s := range p.ex.Graph().Sites() {
		if s.API == api && callgraph.OuterComponent(s.Node.Class) == owner {
			nodes[s.Node] = true
		}
	}
	return func(n callgraph.Node) bool { return nodes[n] }, len(nodes) > 0
}

// PlanSite plans one (API, owner component) invocation relation — one cell
// of the static Table II ceiling.
func (p *Planner) PlanSite(api, owner string) SitePlan {
	t := Target{API: api, Class: owner}
	isTarget, ok := p.apiTargets(api, owner)
	if !ok {
		return SitePlan{Target: t, Blocked: []Unliftable{{Target: t, Cause: CauseSearchBound}}}
	}
	sp := p.PlanTarget(t, isTarget)
	sp.LauncherReachable = p.launcherReaches(api, owner)
	return sp
}

// PlanAPI plans every owning component of one sensitive API, in sorted owner
// order — the static relations StaticReach records for it.
func (p *Planner) PlanAPI(api string) []SitePlan {
	var out []SitePlan
	for _, owner := range p.ex.StaticReach.APIs[api] {
		out = append(out, p.PlanSite(api, owner))
	}
	return out
}

// PlanAll plans every static (API, component) invocation relation of the
// extraction — exactly the relations StaticReach.Invocations counts, so a
// classification over the result sums to the ceiling.
func (p *Planner) PlanAll() []SitePlan {
	apis := make([]string, 0, len(p.ex.StaticReach.APIs))
	for api := range p.ex.StaticReach.APIs {
		apis = append(apis, api)
	}
	sort.Strings(apis)
	var out []SitePlan
	for _, api := range apis {
		out = append(out, p.PlanAPI(api)...)
	}
	return out
}

// PlanComponent plans paths to one component (an activity or fragment
// class) — the fraglint-position flavour of targeting.
func (p *Planner) PlanComponent(class string) SitePlan {
	t := Target{Class: class}
	node, ok := p.componentNode(class)
	if !ok {
		return SitePlan{Target: t, Blocked: []Unliftable{{Target: t, Cause: CauseSearchBound}}}
	}
	return p.PlanTarget(t, func(n callgraph.Node) bool { return n == node })
}

// componentNode maps a class to its component node, trying activity,
// fragment, then receiver kind.
func (p *Planner) componentNode(class string) (callgraph.Node, bool) {
	for _, a := range p.ex.Graph().Activities() {
		if a == class {
			return callgraph.ActivityNode(class), true
		}
	}
	for _, f := range p.ex.Graph().Fragments() {
		if f == class {
			return callgraph.FragmentNode(class), true
		}
	}
	for _, r := range p.ex.Graph().Receivers() {
		if r == class {
			return callgraph.ReceiverNode(class), true
		}
	}
	return callgraph.Node{}, false
}

// launcherReaches reports whether launcher-only reachability covers the
// (api, owner) relation.
func (p *Planner) launcherReaches(api, owner string) bool {
	lr := p.ex.LauncherReach
	if lr == nil {
		return false
	}
	for _, c := range lr.APIs[api] {
		if c == owner {
			return true
		}
	}
	return false
}
