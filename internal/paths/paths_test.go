package paths

import (
	"reflect"
	"testing"

	"fragdroid/internal/callgraph"
	"fragdroid/internal/corpus"
	"fragdroid/internal/robotium"
	"fragdroid/internal/statics"
)

func demoExtraction(t *testing.T) *statics.Extraction {
	t.Helper()
	app, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := statics.Extract(app)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// TestPlanAllCoversCeiling pins the partition property the gap classification
// builds on: PlanAll emits exactly one plan per static (API, component)
// invocation relation.
func TestPlanAllCoversCeiling(t *testing.T) {
	ex := demoExtraction(t)
	plans := New(ex, DefaultConfig()).PlanAll()
	if len(plans) != ex.StaticReach.Invocations() {
		t.Fatalf("PlanAll = %d plans, StaticReach.Invocations = %d",
			len(plans), ex.StaticReach.Invocations())
	}
	seen := make(map[Target]bool)
	for _, sp := range plans {
		if seen[sp.Target] {
			t.Errorf("duplicate plan for %+v", sp.Target)
		}
		seen[sp.Target] = true
		if !sp.Liftable() && len(sp.Blocked) == 0 {
			t.Errorf("%+v: neither routes nor blocked records", sp.Target)
		}
	}
}

// TestEnumerateDeterministic rebuilds the extraction and replans: targets,
// route scripts and costs must be identical — the seed-determinism guarantee
// the directed strategy inherits.
func TestEnumerateDeterministic(t *testing.T) {
	a := New(demoExtraction(t), DefaultConfig()).PlanAll()
	b := New(demoExtraction(t), DefaultConfig()).PlanAll()
	if len(a) != len(b) {
		t.Fatalf("plan counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Target != b[i].Target {
			t.Fatalf("plan %d targets %+v vs %+v", i, a[i].Target, b[i].Target)
		}
		if len(a[i].Routes) != len(b[i].Routes) {
			t.Fatalf("%+v: %d vs %d routes", a[i].Target, len(a[i].Routes), len(b[i].Routes))
		}
		for j := range a[i].Routes {
			ra, rb := a[i].Routes[j], b[i].Routes[j]
			if ra.Path.Cost != rb.Path.Cost || !reflect.DeepEqual(ra.Script, rb.Script) {
				t.Errorf("%+v route %d differs:\n%+v\nvs\n%+v", a[i].Target, j, ra.Script, rb.Script)
			}
		}
	}
}

// TestRoutesCheapestFirst checks route ordering and root lowering: every
// script opens with the launch (launcher root) or a forced start, and costs
// never decrease.
func TestRoutesCheapestFirst(t *testing.T) {
	ex := demoExtraction(t)
	for _, sp := range New(ex, DefaultConfig()).PlanAll() {
		last := -1
		for _, r := range sp.Routes {
			if len(r.Script.Ops) == 0 {
				t.Fatalf("%+v: empty script", sp.Target)
			}
			switch first := r.Script.Ops[0]; first.Kind {
			case robotium.OpLaunchMain:
				if r.Path.Forced {
					t.Errorf("%+v: forced path lowered to LaunchMain", sp.Target)
				}
			case robotium.OpForceStart:
				if !r.Path.Forced {
					t.Errorf("%+v: launcher path lowered to ForceStart", sp.Target)
				}
			default:
				t.Errorf("%+v: script opens with op kind %d", sp.Target, int(first.Kind))
			}
			if r.Path.Cost < last {
				t.Errorf("%+v: route costs out of order", sp.Target)
			}
			last = r.Path.Cost
		}
	}
}

// TestInputGateFill pins the input resolution on lowered routes: the analyst
// value when provided, the default filler otherwise.
func TestInputGateFill(t *testing.T) {
	ex := demoExtraction(t)
	gateRef := corpus.InputRef("Login", "Account")
	find := func(p *Planner) string {
		sp := p.PlanSite("location/requestLocationUpdates", "com.demo.app.Account")
		for _, r := range sp.Routes {
			if r.Path.Forced {
				continue
			}
			for _, op := range r.Script.Ops {
				if op.Kind == robotium.OpEnterText && op.Ref == gateRef {
					return op.Value
				}
			}
		}
		return ""
	}
	withInput := New(ex, Config{Inputs: map[string]string{gateRef: "alice"}, DefaultInput: "test123"})
	if v := find(withInput); v != "alice" {
		t.Errorf("analyst input fill = %q, want alice", v)
	}
	without := New(ex, DefaultConfig())
	if v := find(without); v != "test123" {
		t.Errorf("default input fill = %q, want test123", v)
	}
}

// TestUnliftableCauses drives Lower over the blocking edge shapes directly
// and checks the reported causes and blocking edges.
func TestUnliftableCauses(t *testing.T) {
	ex := demoExtraction(t)
	p := New(ex, DefaultConfig())
	main := callgraph.ActivityNode("com.demo.app.Main")
	tgt := Target{Class: "com.demo.app.Main"}

	cases := []struct {
		name string
		edge callgraph.Edge
		want Cause
	}{
		{"listener with no bound widget",
			callgraph.Edge{From: main, To: callgraph.MethodNode("com.demo.app.Main", "onGo"), Reason: callgraph.ReasonListener},
			CauseNoBoundWidget},
		{"inner-class over-approximation",
			callgraph.Edge{From: main, To: callgraph.MethodNode("com.demo.app.Main$1", "run"), Reason: callgraph.ReasonInner},
			CauseNoBoundWidget},
		{"receiver-context inner edge",
			callgraph.Edge{From: callgraph.ReceiverNode("com.demo.app.Rcv"), To: callgraph.MethodNode("com.demo.app.Rcv$1", "run"), Reason: callgraph.ReasonInner},
			CauseReceiverOnly},
		{"reflection into requires-args fragment",
			callgraph.Edge{From: main, To: callgraph.FragmentNode("com.demo.app.VIP"), Reason: callgraph.ReasonReflection, Ref: "@id/container"},
			CauseReflectionGated},
	}
	for _, tc := range cases {
		path := Path{Root: tc.edge.From, Edges: []callgraph.Edge{tc.edge}}
		_, blocked := p.Lower(tgt, path, "t")
		if blocked == nil {
			t.Errorf("%s: lowered, want blocked", tc.name)
			continue
		}
		if blocked.Cause != tc.want {
			t.Errorf("%s: cause = %s, want %s", tc.name, blocked.Cause, tc.want)
		}
		if blocked.Edge != tc.edge {
			t.Errorf("%s: blocking edge = %s, want %s", tc.name, blocked.Edge, tc.edge)
		}
	}
}

// TestSearchBoundTarget: a target no bounded search can reach comes back as
// one search-bounds record, not an empty plan.
func TestSearchBoundTarget(t *testing.T) {
	ex := demoExtraction(t)
	p := New(ex, DefaultConfig())
	sp := p.PlanComponent("com.demo.app.NoSuch")
	if sp.Liftable() {
		t.Fatal("unknown component lifted a route")
	}
	b, ok := sp.Blocking()
	if !ok || b.Cause != CauseSearchBound {
		t.Fatalf("blocking = %+v ok=%v, want search-bounds", b, ok)
	}
}

// TestLauncherOnlyRoots: LauncherOnly must not emit forced-start routes.
func TestLauncherOnlyRoots(t *testing.T) {
	ex := demoExtraction(t)
	p := New(ex, Config{LauncherOnly: true, DefaultInput: "test123"})
	for _, sp := range p.PlanAll() {
		for _, r := range sp.Routes {
			if r.Path.Forced {
				t.Fatalf("%+v: forced route under LauncherOnly", sp.Target)
			}
		}
	}
}
