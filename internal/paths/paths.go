// Package paths is the static UI-path reconstruction pass: a bounded
// k-shortest-path enumeration over the interprocedural callgraph from the
// app's entry points to a target node (a sensitive-API site, a component, a
// fraglint diagnostic's position), followed by a lowering that turns every
// edge — by its Reason — into the concrete UI step that actuates it: which
// widget to click, which input gate to fill, which dialog to dismiss, which
// forced empty-Intent start to issue. Fully lowered paths compile into
// robotium route seeds the directed strategy replays; paths containing an
// edge with no UI actuation (an inner-class over-approximation with no bound
// widget, a reflection switch the fragment's constructor gates, code that
// only runs in a receiver's context) are reported as Unliftable with the
// blocking edge, not silently dropped.
//
// The root policy mirrors the reachability ceilings of internal/callgraph:
// by default paths start from the launcher plus every effective Activity
// (forced empty-Intent starts, the StaticReach policy), so the planner's
// classification sums line up with report.BuildCeiling; LauncherOnly
// restricts the search to the launcher root (the LauncherReach policy
// fraglint's FL013 checks against).
package paths

import (
	"container/heap"
	"sort"

	"fragdroid/internal/callgraph"
	"fragdroid/internal/inputgen"
	"fragdroid/internal/statics"
)

// Config tunes the planner.
type Config struct {
	// MaxPaths bounds the enumerated paths per target — the k of the
	// k-shortest-path search. Zero means 8.
	MaxPaths int
	// MaxDepth bounds a path's length in edges. Zero means 16.
	MaxDepth int
	// MaxExpand bounds the total search-state expansions per target, a
	// safety valve against pathological graphs. Zero means 20000.
	MaxExpand int
	// LauncherOnly restricts the roots to the MAIN/LAUNCHER activity — what
	// a user reaches by clicking alone. The default root set adds every
	// effective Activity as a forced empty-Intent start, matching
	// StaticReach.
	LauncherOnly bool
	// Inputs, InputGen and DefaultInput resolve values for require-input
	// gates on the lowered routes, mirroring the explorer's resolution
	// order: analyst inputs first, then the generator keyed on the widget's
	// hint, then the default filler.
	Inputs       map[string]string
	InputGen     inputgen.Generator
	DefaultInput string
}

// DefaultConfig matches the explorer's default input handling.
func DefaultConfig() Config {
	return Config{DefaultInput: "test123"}
}

// Target identifies what a path search aims for.
type Target struct {
	// API is the sensitive API ("" when targeting a component or method
	// position directly).
	API string
	// Class is the owning component class.
	Class string
}

// Path is one loopless callgraph walk from a root to a target node.
type Path struct {
	// Root is the component the path enters the app at.
	Root callgraph.Node
	// Forced reports that Root is entered via a forced empty-Intent start
	// rather than the launcher.
	Forced bool
	// Edges is the walk; empty when the root itself is the target.
	Edges []callgraph.Edge
	// Cost is the search cost: the number of explicit UI actuations, with a
	// large penalty per blocking edge so liftable paths always rank first.
	Cost int
}

// End returns the path's final node.
func (p Path) End() callgraph.Node {
	if len(p.Edges) == 0 {
		return p.Root
	}
	return p.Edges[len(p.Edges)-1].To
}

// Planner enumerates and lowers paths over one app's extraction.
type Planner struct {
	ex  *statics.Extraction
	cfg Config
	// hints maps input-widget refs to hint text for InputGen.
	hints map[string]string
}

// New returns a planner over an extraction.
func New(ex *statics.Extraction, cfg Config) *Planner {
	if cfg.MaxPaths == 0 {
		cfg.MaxPaths = 8
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 16
	}
	if cfg.MaxExpand == 0 {
		cfg.MaxExpand = 20000
	}
	p := &Planner{ex: ex, cfg: cfg, hints: make(map[string]string)}
	for _, w := range ex.InputWidgets {
		p.hints[w.Ref] = w.Hint
	}
	return p
}

// blockedCost is the per-edge penalty for edges lowering cannot actuate.
// Any path cheaper than one blockedCost is fully liftable, so liftable paths
// always outrank blocked ones in the k-best frontier.
const blockedCost = 1 << 10

// edgeCost weights an edge by the explicit UI work its lowering needs:
// framework- and code-triggered edges are free (they fire when their source
// executes), clicks and reflective switches cost one actuation, and edges
// with no actuation carry the blocking penalty.
func edgeCost(e callgraph.Edge) int {
	switch e.Reason {
	case callgraph.ReasonListener, callgraph.ReasonXMLOnClick:
		if e.Ref == "" {
			return blockedCost
		}
		return 1
	case callgraph.ReasonReflection:
		return 1
	case callgraph.ReasonInner:
		return blockedCost
	default:
		// lifecycle, intent, action, transaction, inflate, static-fragment,
		// broadcast: automatic once the source runs.
		return 0
	}
}

// searchState is one frontier entry of the best-first enumeration.
type searchState struct {
	node   callgraph.Node
	root   callgraph.Node
	forced bool
	edges  []callgraph.Edge
	cost   int
	seq    int // insertion order, the deterministic tie-break
}

type frontier []*searchState

func (f frontier) Len() int { return len(f) }
func (f frontier) Less(i, j int) bool {
	if f[i].cost != f[j].cost {
		return f[i].cost < f[j].cost
	}
	if len(f[i].edges) != len(f[j].edges) {
		return len(f[i].edges) < len(f[j].edges)
	}
	return f[i].seq < f[j].seq
}
func (f frontier) Swap(i, j int) { f[i], f[j] = f[j], f[i] }
func (f *frontier) Push(x any)   { *f = append(*f, x.(*searchState)) }
func (f *frontier) Pop() any     { old := *f; n := len(old); s := old[n-1]; *f = old[:n-1]; return s }
func (s *searchState) onPath(n callgraph.Node) bool {
	if s.root == n {
		return true
	}
	for _, e := range s.edges {
		if e.To == n {
			return true
		}
	}
	return false
}

// roots returns the search's start states under the configured root policy,
// in deterministic order: the launcher first, then the effective activities
// as forced starts.
func (p *Planner) roots() []*searchState {
	g := p.ex.Graph()
	var out []*searchState
	launcher := g.Launcher()
	if launcher != "" {
		out = append(out, &searchState{node: callgraph.ActivityNode(launcher), root: callgraph.ActivityNode(launcher)})
	}
	if p.cfg.LauncherOnly {
		return out
	}
	acts := append([]string(nil), p.ex.EffectiveActivities...)
	sort.Strings(acts)
	for _, a := range acts {
		if a == launcher {
			continue
		}
		n := callgraph.ActivityNode(a)
		out = append(out, &searchState{node: n, root: n, forced: true, cost: 1})
	}
	return out
}

// Enumerate runs the bounded k-shortest-path search to any node the target
// predicate accepts. Paths come back cheapest-first (cost, then length, then
// discovery order); paths through a target node are not extended further.
func (p *Planner) Enumerate(isTarget func(callgraph.Node) bool) []Path {
	g := p.ex.Graph()
	f := frontier{}
	seq := 0
	for _, r := range p.roots() {
		r.seq = seq
		seq++
		heap.Push(&f, r)
	}
	var out []Path
	expansions := 0
	for f.Len() > 0 {
		st := heap.Pop(&f).(*searchState)
		if isTarget(st.node) {
			out = append(out, Path{Root: st.root, Forced: st.forced, Edges: st.edges, Cost: st.cost})
			if len(out) >= p.cfg.MaxPaths {
				break
			}
			continue
		}
		if len(st.edges) >= p.cfg.MaxDepth {
			continue
		}
		expansions++
		if expansions > p.cfg.MaxExpand {
			break
		}
		for _, e := range g.EdgesFrom(st.node) {
			if st.onPath(e.To) {
				continue
			}
			edges := make([]callgraph.Edge, len(st.edges), len(st.edges)+1)
			copy(edges, st.edges)
			heap.Push(&f, &searchState{
				node:   e.To,
				root:   st.root,
				forced: st.forced,
				edges:  append(edges, e),
				cost:   st.cost + edgeCost(e),
				seq:    seq,
			})
			seq++
		}
	}
	return out
}
