package callgraph

import (
	"fmt"

	"fragdroid/internal/binc"
	"fragdroid/internal/smali"
)

// The graph payload is a binc encoding: nodes in insertion order, edges
// grouped per source node in insertion order, API sites per method node, then
// the launcher and the sorted component class lists. Decoding reproduces
// every order-sensitive accessor (Nodes, Edges, EdgesFrom) of the encoded
// graph exactly.

func encodeNode(w *binc.Writer, n Node) {
	w.Int(int(n.Kind))
	w.Str(n.Class)
	w.Str(n.Method)
}

func decodeNode(r *binc.Reader) Node {
	return Node{Kind: Kind(r.Int()), Class: r.Str(), Method: r.Str()}
}

// Encode serializes the graph for the artifact store. The output is
// deterministic: it follows the graph's insertion orders.
func (g *Graph) Encode() ([]byte, error) {
	w := binc.NewWriter()
	w.Int(len(g.order))
	for _, n := range g.order {
		encodeNode(w, n)
	}
	var nEdges, nAPIs int
	for _, n := range g.order {
		nEdges += len(g.out[n])
		nAPIs += len(g.apis[n])
	}
	w.Int(nEdges)
	for _, n := range g.order {
		for _, e := range g.out[n] {
			encodeNode(w, e.From)
			encodeNode(w, e.To)
			w.Str(string(e.Reason))
			w.Int(e.Line)
			w.Str(e.Ref)
		}
	}
	w.Int(nAPIs)
	for _, n := range g.order {
		for _, s := range g.apis[n] {
			encodeNode(w, n)
			w.Str(s.api)
			w.Int(s.line)
		}
	}
	w.Str(g.launcher)
	w.StrSlice(g.activities)
	w.StrSlice(g.fragments)
	w.StrSlice(g.receivers)
	return w.Bytes(), nil
}

// Decode reconstructs a graph from Encode output. prog is the program the
// graph was built over; it is reattached rather than serialized, exactly as
// Build stores it. Decode trusts checksum-verified input and does not
// re-derive the edges.
func Decode(data []byte, prog *smali.Program) (*Graph, error) {
	r, err := binc.NewReader(data)
	if err != nil {
		return nil, fmt.Errorf("callgraph: decode: %w", err)
	}
	nNodes := r.Int()
	g := &Graph{
		prog:  prog,
		nodes: make(map[Node]bool, nNodes),
		out:   make(map[Node][]Edge, nNodes),
		apis:  make(map[Node][]apiSite),
	}
	for i := 0; i < nNodes && r.Err() == nil; i++ {
		g.addNode(decodeNode(r))
	}
	nEdges := r.Int()
	for i := 0; i < nEdges && r.Err() == nil; i++ {
		e := Edge{From: decodeNode(r), To: decodeNode(r), Reason: Reason(r.Str()), Line: r.Int(), Ref: r.Str()}
		if r.Err() != nil {
			break
		}
		if !g.nodes[e.From] || !g.nodes[e.To] {
			return nil, fmt.Errorf("callgraph: decode: edge %s touches undeclared node", e)
		}
		g.out[e.From] = append(g.out[e.From], e)
	}
	nAPIs := r.Int()
	for i := 0; i < nAPIs && r.Err() == nil; i++ {
		n := decodeNode(r)
		s := apiSite{api: r.Str(), line: r.Int()}
		if r.Err() != nil {
			break
		}
		if !g.nodes[n] {
			return nil, fmt.Errorf("callgraph: decode: API site on undeclared node %s", n)
		}
		g.apis[n] = append(g.apis[n], s)
	}
	g.launcher = r.Str()
	g.activities = r.StrSlice()
	g.fragments = r.StrSlice()
	g.receivers = r.StrSlice()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("callgraph: decode: %w", err)
	}
	return g, nil
}
