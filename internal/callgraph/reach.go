// Fixpoint reachability over the whole-program graph. Two root policies
// matter in practice: the launcher alone (what a user reaches by clicking
// from the entry Activity) and launcher + every effective Activity (the
// explorer's forced empty-Intent starts of §VI-C make all of them entry
// points). The latter is the static ceiling dynamic coverage is normalized
// against.
package callgraph

import "sort"

// Reach is the result of a reachability computation: the component, method
// and sensitive-API sets reachable from the chosen roots.
type Reach struct {
	// Activities, Fragments and Receivers are the reachable component
	// classes.
	Activities map[string]bool
	Fragments  map[string]bool
	Receivers  map[string]bool
	// Methods is the reachable method set, keyed "Class.method".
	Methods map[string]bool
	// APIs maps each reachable sensitive API to the component classes whose
	// reachable code invokes it, sorted — the static Table II column.
	APIs map[string][]string
}

// ActivityList returns the reachable activities, sorted.
func (r *Reach) ActivityList() []string { return sortedKeys(r.Activities) }

// FragmentList returns the reachable fragments, sorted.
func (r *Reach) FragmentList() []string { return sortedKeys(r.Fragments) }

// ReceiverList returns the reachable receivers, sorted.
func (r *Reach) ReceiverList() []string { return sortedKeys(r.Receivers) }

// APIList returns the reachable sensitive APIs, sorted.
func (r *Reach) APIList() []string {
	out := make([]string, 0, len(r.APIs))
	for api := range r.APIs {
		out = append(out, api)
	}
	sort.Strings(out)
	return out
}

// Invocations counts the distinct (API, component) invocation relations —
// the static counterpart of the Table II invocation total.
func (r *Reach) Invocations() int {
	n := 0
	for _, classes := range r.APIs {
		n += len(classes)
	}
	return n
}

// Reach runs a breadth-first fixpoint from the given root nodes. Roots that
// are not graph nodes are ignored.
func (g *Graph) Reach(roots []Node) *Reach {
	r := &Reach{
		Activities: make(map[string]bool),
		Fragments:  make(map[string]bool),
		Receivers:  make(map[string]bool),
		Methods:    make(map[string]bool),
		APIs:       make(map[string][]string),
	}
	apiOwners := make(map[string]map[string]bool)

	visited := make(map[Node]bool)
	var queue []Node
	for _, n := range roots {
		if g.nodes[n] && !visited[n] {
			visited[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		switch n.Kind {
		case KindActivity:
			r.Activities[n.Class] = true
		case KindFragment:
			r.Fragments[n.Class] = true
		case KindReceiver:
			r.Receivers[n.Class] = true
		case KindMethod:
			r.Methods[n.Class+"."+n.Method] = true
			for _, site := range g.apis[n] {
				owner := outerComponent(n.Class)
				if apiOwners[site.api] == nil {
					apiOwners[site.api] = make(map[string]bool)
				}
				apiOwners[site.api][owner] = true
			}
		}
		for _, e := range g.out[n] {
			if !visited[e.To] {
				visited[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}

	for api, owners := range apiOwners {
		r.APIs[api] = sortedKeys(owners)
	}
	return r
}

// LauncherRoots returns the root set for launcher-only reachability.
func (g *Graph) LauncherRoots() []Node {
	if g.launcher == "" {
		return nil
	}
	return []Node{ActivityNode(g.launcher)}
}

// ForcedRoots returns the root set modelling the explorer's forced
// empty-Intent starts: the launcher plus every given activity (normally the
// effective AFTM activities).
func (g *Graph) ForcedRoots(activities []string) []Node {
	roots := g.LauncherRoots()
	for _, a := range activities {
		roots = append(roots, ActivityNode(a))
	}
	return roots
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
