package callgraph

import (
	"testing"

	"fragdroid/internal/apk"
	"fragdroid/internal/layout"
	"fragdroid/internal/manifest"
	"fragdroid/internal/smali"
)

func ins(op smali.Op, args ...string) smali.Instr {
	return smali.Instr{Op: op, Args: args}
}

func method(name string, body ...smali.Instr) *smali.Method {
	return &smali.Method{Name: name, Access: []string{"public"}, Body: body}
}

// testApp builds a small app exercising every edge family:
//
//	Main (launcher) --listener/intent--> Next --txn--> HomeFrag
//	Next --send-broadcast--> Rcv (receiver)
//	Orphan: declared but never targeted (forced starts only)
//	RefFrag: referenced by Next (new-instance) and committed only in
//	         Orphan's code, so it is launcher-reachable only through the
//	         reflection mechanism on Next.
func testApp(t *testing.T) *apk.App {
	t.Helper()
	mb := manifest.NewBuilder("com.ex").
		Launcher("com.ex.Main").
		Activity("com.ex.Next").
		Activity("com.ex.Orphan")
	man, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	man.Application.Receivers = append(man.Application.Receivers, manifest.Receiver{
		Name: "com.ex.Rcv",
		Filters: []manifest.IntentFilter{{
			Actions: []manifest.Action{{Name: "com.ex.PING"}},
		}},
	})

	layouts := []*layout.Layout{
		mustLayout(t, layout.Root(layout.TypeLinearLayout).ID("@id/main_root").
			Child(layout.Root(layout.TypeButton).ID("@id/main_btn_next").Text("next")).
			Child(layout.Root(layout.TypeButton).ID("@id/main_btn_x").Text("x").OnClick("onXML")),
			"activity_main"),
		mustLayout(t, layout.Root(layout.TypeLinearLayout).ID("@id/next_root").
			Child(layout.Root(layout.TypeFrameLayout).ID("@id/next_container")),
			"activity_next"),
		mustLayout(t, layout.Root(layout.TypeLinearLayout).ID("@id/home_root"),
			"fragment_home"),
		mustLayout(t, layout.Root(layout.TypeLinearLayout).ID("@id/ref_root"),
			"fragment_ref"),
	}

	classes := []*smali.Class{
		{Name: "com.ex.Main", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate",
				ins(smali.OpSetContentView, "@layout/activity_main"),
				ins(smali.OpSetClickListener, "@id/main_btn_next", "onGoNext")),
			method("onGoNext",
				ins(smali.OpNewIntent, "com.ex.Main", "com.ex.Next"),
				ins(smali.OpStartActivity)),
			method("onXML", ins(smali.OpLog, "xml click")),
			method("deadCode", ins(smali.OpInvokeSensitive, "contacts/query")),
		}},
		{Name: "com.ex.Next", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate",
				ins(smali.OpSetContentView, "@layout/activity_next"),
				ins(smali.OpInvokeSensitive, "location/getProviders"),
				ins(smali.OpSendBroadcast, "com.ex.PING"),
				ins(smali.OpNewInstance, "com.ex.RefFrag"),
				ins(smali.OpGetFragmentManager),
				ins(smali.OpBeginTransaction),
				ins(smali.OpTxnAdd, "@id/next_container", "com.ex.HomeFrag"),
				ins(smali.OpTxnCommit)),
		}},
		{Name: "com.ex.Orphan", Super: smali.ClassActivity, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreate",
				ins(smali.OpInvokeSensitive, "shell/exec"),
				ins(smali.OpGetFragmentManager),
				ins(smali.OpBeginTransaction),
				ins(smali.OpTxnAdd, "@id/next_container", "com.ex.RefFrag"),
				ins(smali.OpTxnCommit)),
		}},
		{Name: "com.ex.HomeFrag", Super: smali.ClassFragment, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreateView", ins(smali.OpSetContentView, "@layout/fragment_home")),
		}},
		{Name: "com.ex.RefFrag", Super: smali.ClassFragment, Access: []string{"public"}, Methods: []*smali.Method{
			method("onCreateView", ins(smali.OpSetContentView, "@layout/fragment_ref")),
		}},
		{Name: "com.ex.Rcv", Super: smali.ClassReceiver, Access: []string{"public"}, Methods: []*smali.Method{
			method("onReceive", ins(smali.OpInvokeSensitive, "network/getDeviceId")),
		}},
	}

	app, err := apk.Assemble(man, layouts, classes)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func mustLayout(t *testing.T, b *layout.B, name string) *layout.Layout {
	t.Helper()
	l, err := b.BuildLayout(name)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestBuildEdges(t *testing.T) {
	g := Build(testApp(t), nil)

	if g.Launcher() != "com.ex.Main" {
		t.Fatalf("Launcher = %q", g.Launcher())
	}
	wantEdges := []Edge{
		{From: ActivityNode("com.ex.Main"), To: MethodNode("com.ex.Main", "onCreate"), Reason: ReasonLifecycle},
		{From: ActivityNode("com.ex.Main"), To: MethodNode("com.ex.Main", "onXML"), Reason: ReasonXMLOnClick},
		{From: MethodNode("com.ex.Main", "onCreate"), To: MethodNode("com.ex.Main", "onGoNext"), Reason: ReasonListener},
		{From: MethodNode("com.ex.Main", "onGoNext"), To: ActivityNode("com.ex.Next"), Reason: ReasonIntent},
		{From: MethodNode("com.ex.Next", "onCreate"), To: FragmentNode("com.ex.HomeFrag"), Reason: ReasonTransaction},
		{From: MethodNode("com.ex.Next", "onCreate"), To: ReceiverNode("com.ex.Rcv"), Reason: ReasonBroadcast},
		{From: ReceiverNode("com.ex.Rcv"), To: MethodNode("com.ex.Rcv", "onReceive"), Reason: ReasonLifecycle},
		{From: ActivityNode("com.ex.Next"), To: FragmentNode("com.ex.RefFrag"), Reason: ReasonReflection},
	}
	for _, want := range wantEdges {
		if !hasEdge(g, want) {
			t.Errorf("missing edge %s", want)
		}
	}
	// No reflection edge for Main (no FragmentManager, no container).
	if hasEdge(g, Edge{From: ActivityNode("com.ex.Main"), To: FragmentNode("com.ex.RefFrag"), Reason: ReasonReflection}) {
		t.Error("unexpected reflection edge from Main")
	}
}

func hasEdge(g *Graph, want Edge) bool {
	for _, e := range g.EdgesFrom(want.From) {
		if e.To == want.To && e.Reason == want.Reason {
			return true
		}
	}
	return false
}

func TestLauncherReach(t *testing.T) {
	g := Build(testApp(t), nil)
	r := g.Reach(g.LauncherRoots())

	if !r.Activities["com.ex.Main"] || !r.Activities["com.ex.Next"] {
		t.Errorf("launcher reach activities = %v", r.ActivityList())
	}
	if r.Activities["com.ex.Orphan"] {
		t.Error("Orphan must not be launcher-reachable")
	}
	if !r.Fragments["com.ex.HomeFrag"] {
		t.Error("HomeFrag must be launcher-reachable via the transaction edge")
	}
	if !r.Fragments["com.ex.RefFrag"] {
		t.Error("RefFrag must be launcher-reachable via the reflection edge on Next")
	}
	if !r.Receivers["com.ex.Rcv"] {
		t.Error("Rcv must be reachable via the send-broadcast edge")
	}
	// APIs: Next's and Rcv's fire; Orphan's and Main.deadCode's do not.
	if owners := r.APIs["location/getProviders"]; len(owners) != 1 || owners[0] != "com.ex.Next" {
		t.Errorf("location/getProviders owners = %v", owners)
	}
	if _, ok := r.APIs["shell/exec"]; ok {
		t.Error("shell/exec sits in Orphan and must not be launcher-reachable")
	}
	if _, ok := r.APIs["contacts/query"]; ok {
		t.Error("contacts/query sits in dead code and must not be reachable")
	}
	if _, ok := r.APIs["network/getDeviceId"]; !ok {
		t.Error("receiver API must be reachable via broadcast delivery")
	}
}

func TestForcedReachIncludesOrphan(t *testing.T) {
	g := Build(testApp(t), nil)
	r := g.Reach(g.ForcedRoots([]string{"com.ex.Main", "com.ex.Next", "com.ex.Orphan"}))

	if !r.Activities["com.ex.Orphan"] {
		t.Error("forced roots must make Orphan reachable")
	}
	if _, ok := r.APIs["shell/exec"]; !ok {
		t.Error("Orphan's API must be reachable under forced roots")
	}
	if r.Invocations() < 3 {
		t.Errorf("Invocations = %d, want >= 3", r.Invocations())
	}
}

func TestReachIsMonotone(t *testing.T) {
	g := Build(testApp(t), nil)
	launcher := g.Reach(g.LauncherRoots())
	forced := g.Reach(g.ForcedRoots(g.Activities()))
	for a := range launcher.Activities {
		if !forced.Activities[a] {
			t.Errorf("forced reach lost activity %s", a)
		}
	}
	for f := range launcher.Fragments {
		if !forced.Fragments[f] {
			t.Errorf("forced reach lost fragment %s", f)
		}
	}
	for api := range launcher.APIs {
		if _, ok := forced.APIs[api]; !ok {
			t.Errorf("forced reach lost API %s", api)
		}
	}
}

// TestBuildDeterministic is the regression gate on edge ordering: building
// the same app repeatedly must yield identical Edges(), EdgesFrom() and
// encoded bytes. Build used to iterate component maps directly, which made
// inner-class and xml-onclick edge order (and hence path enumeration and
// cached artifacts) depend on map iteration order.
func TestBuildDeterministic(t *testing.T) {
	app := testApp(t)
	ref := Build(app, nil)
	refEdges := ref.Edges()
	refBytes, err := ref.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for i := 0; i < 50; i++ {
		g := Build(app, nil)
		edges := g.Edges()
		if len(edges) != len(refEdges) {
			t.Fatalf("build %d: %d edges, want %d", i, len(edges), len(refEdges))
		}
		for j := range edges {
			if edges[j] != refEdges[j] {
				t.Fatalf("build %d: edge %d = %s, want %s", i, j, edges[j], refEdges[j])
			}
		}
		for _, n := range ref.Nodes() {
			out, refOut := g.EdgesFrom(n), ref.EdgesFrom(n)
			if len(out) != len(refOut) {
				t.Fatalf("build %d: EdgesFrom(%s) = %d edges, want %d", i, n, len(out), len(refOut))
			}
			for j := range out {
				if out[j] != refOut[j] {
					t.Fatalf("build %d: EdgesFrom(%s)[%d] = %s, want %s", i, n, j, out[j], refOut[j])
				}
			}
		}
		b, err := g.Encode()
		if err != nil {
			t.Fatalf("build %d: Encode: %v", i, err)
		}
		if string(b) != string(refBytes) {
			t.Fatalf("build %d: encoded bytes differ from reference", i)
		}
	}
}

// TestEdgeRefs pins the new Ref operand: listener and xml-onclick edges name
// the actuating widget, reflection edges the host's container, and the codec
// round-trips it.
func TestEdgeRefs(t *testing.T) {
	app := testApp(t)
	g := Build(app, nil)
	want := map[string]string{
		"listener":    "@id/main_btn_next",
		"xml-onclick": "@id/main_btn_x",
		"reflection":  "@id/next_container",
	}
	got := make(map[string]string)
	for _, e := range g.Edges() {
		if e.Ref != "" {
			got[string(e.Reason)] = e.Ref
		}
	}
	for reason, ref := range want {
		if got[reason] != ref {
			t.Errorf("%s edge ref = %q, want %q", reason, got[reason], ref)
		}
	}
	b, err := g.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := Decode(b, app.Program)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	de, ge := dec.Edges(), g.Edges()
	if len(de) != len(ge) {
		t.Fatalf("decoded %d edges, want %d", len(de), len(ge))
	}
	for i := range ge {
		if de[i] != ge[i] {
			t.Errorf("decoded edge %d = %s, want %s", i, de[i], ge[i])
		}
	}
}
