// Package callgraph builds an interprocedural whole-program graph over the
// parsed artifacts of one application: manifest, layouts and smali code. Its
// nodes are components (Activities, Fragments, BroadcastReceivers) and
// methods; its edges record how control can flow between them — lifecycle
// entry points, click-listener registration (both set-click-listener code and
// XML android:onClick attributes, i.e. Algorithm 3's widget ownership),
// intent and fragment-transaction statements recovered by jdcore, static
// <fragment> layout declarations, send-broadcast delivery, and the
// reflection-based fragment switch of §VI-A.
//
// Fixpoint reachability over the graph (Reach) yields the statically
// reachable Activity/Fragment sets and the statically reachable sensitive-API
// set: the static counterparts of the Table I coverage columns and the
// Table II matrix, and the per-app attainable-coverage ceiling that the
// dynamic explorer is measured against.
package callgraph

import (
	"fmt"
	"sort"
	"strings"

	"fragdroid/internal/apk"
	"fragdroid/internal/jdcore"
	"fragdroid/internal/layout"
	"fragdroid/internal/smali"
)

// Kind classifies a graph node.
type Kind int

// Node kinds.
const (
	KindActivity Kind = iota + 1
	KindFragment
	KindReceiver
	KindMethod
)

func (k Kind) String() string {
	switch k {
	case KindActivity:
		return "activity"
	case KindFragment:
		return "fragment"
	case KindReceiver:
		return "receiver"
	case KindMethod:
		return "method"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Node is one graph node: a component or a method. Component nodes leave
// Method empty.
type Node struct {
	Kind   Kind
	Class  string
	Method string
}

// ActivityNode returns the component node of an Activity class.
func ActivityNode(class string) Node { return Node{Kind: KindActivity, Class: class} }

// FragmentNode returns the component node of a Fragment class.
func FragmentNode(class string) Node { return Node{Kind: KindFragment, Class: class} }

// ReceiverNode returns the component node of a BroadcastReceiver class.
func ReceiverNode(class string) Node { return Node{Kind: KindReceiver, Class: class} }

// MethodNode returns the node of one method of a class.
func MethodNode(class, method string) Node {
	return Node{Kind: KindMethod, Class: class, Method: method}
}

func (n Node) String() string {
	if n.Kind == KindMethod {
		return n.Class + "." + n.Method
	}
	return fmt.Sprintf("%s[%s]", n.Kind, n.Class)
}

// Reason labels why an edge exists.
type Reason string

// Edge reasons.
const (
	// ReasonLifecycle connects a component to a lifecycle entry point the
	// framework invokes (onCreate/onStart/onResume, onCreateView, onReceive).
	ReasonLifecycle Reason = "lifecycle"
	// ReasonInner connects a component to the methods of its inner classes,
	// which execute only in the component's context (Algorithm 2's
	// getInnerClass over-approximation).
	ReasonInner Reason = "inner"
	// ReasonListener connects a set-click-listener registration site to the
	// handler method it names.
	ReasonListener Reason = "listener"
	// ReasonXMLOnClick connects a component to a handler bound by an
	// android:onClick attribute in a layout the component inflates.
	ReasonXMLOnClick Reason = "xml-onclick"
	// ReasonIntent is an explicit intent start (new Intent(A0, A1)).
	ReasonIntent Reason = "intent"
	// ReasonAction is an implicit intent start resolved via the manifest.
	ReasonAction Reason = "action"
	// ReasonTransaction is a FragmentTransaction add/replace.
	ReasonTransaction Reason = "transaction"
	// ReasonInflate is a direct fragment view inflation.
	ReasonInflate Reason = "inflate"
	// ReasonStaticFragment is a static <fragment> layout declaration.
	ReasonStaticFragment Reason = "static-fragment"
	// ReasonReflection is the §VI-A reflective fragment switch: the host uses
	// a FragmentManager, owns a container, and the fragment is transaction-
	// committed somewhere in the app.
	ReasonReflection Reason = "reflection"
	// ReasonBroadcast is a send-broadcast delivering to a subscribed receiver.
	ReasonBroadcast Reason = "broadcast"
)

// Edge is one directed graph edge.
type Edge struct {
	From, To Node
	Reason   Reason
	// Line is the smali source line of the originating statement, when the
	// edge comes from one (0 for structural edges).
	Line int
	// Ref is the widget resource reference that actuates the edge, when one
	// is statically known: the clicked widget for listener and xml-onclick
	// edges, the host's fragment container for reflection edges. Path
	// lowering (internal/paths) turns it into the concrete UI operation.
	Ref string
}

func (e Edge) String() string {
	if e.Ref != "" {
		return fmt.Sprintf("%s -> %s (%s %s)", e.From, e.To, e.Reason, e.Ref)
	}
	return fmt.Sprintf("%s -> %s (%s)", e.From, e.To, e.Reason)
}

// apiSite is a sensitive-API invocation attributed to a method.
type apiSite struct {
	api  string
	line int
}

// Site is one sensitive-API invocation site, attributed to the method node
// whose body contains it.
type Site struct {
	Node Node
	API  string
	Line int
}

// Graph is the whole-program call/transition graph of one application.
type Graph struct {
	prog *smali.Program

	nodes map[Node]bool
	order []Node
	out   map[Node][]Edge

	// apis maps a method node to the sensitive APIs it invokes.
	apis map[Node][]apiSite

	// launcher is the MAIN/LAUNCHER activity ("" if the manifest has none).
	launcher string
	// activities, fragments and receivers are the component classes the
	// graph knows, sorted.
	activities []string
	fragments  []string
	receivers  []string
}

// Launcher returns the MAIN/LAUNCHER activity class ("" if none).
func (g *Graph) Launcher() string { return g.launcher }

// Activities returns the declared Activity classes, sorted.
func (g *Graph) Activities() []string { return append([]string(nil), g.activities...) }

// Fragments returns the Fragment subclasses, sorted.
func (g *Graph) Fragments() []string { return append([]string(nil), g.fragments...) }

// Receivers returns the declared receiver classes, sorted.
func (g *Graph) Receivers() []string { return append([]string(nil), g.receivers...) }

// Nodes returns every node in insertion order.
func (g *Graph) Nodes() []Node { return append([]Node(nil), g.order...) }

// Edges returns every edge, grouped by source node in insertion order.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, n := range g.order {
		out = append(out, g.out[n]...)
	}
	return out
}

// EdgesFrom returns the out-edges of a node.
func (g *Graph) EdgesFrom(n Node) []Edge { return append([]Edge(nil), g.out[n]...) }

// Sites returns every sensitive-API invocation site, in node insertion order
// and statement order within a node — deterministic across builds.
func (g *Graph) Sites() []Site {
	var out []Site
	for _, n := range g.order {
		for _, s := range g.apis[n] {
			out = append(out, Site{Node: n, API: s.api, Line: s.line})
		}
	}
	return out
}

// Size reports node and edge counts.
func (g *Graph) Size() (nodes, edges int) {
	nodes = len(g.order)
	for _, es := range g.out {
		edges += len(es)
	}
	return nodes, edges
}

func (g *Graph) addNode(n Node) {
	if !g.nodes[n] {
		g.nodes[n] = true
		g.order = append(g.order, n)
	}
}

func (g *Graph) addEdge(from, to Node, reason Reason, line int, ref string) {
	g.addNode(from)
	g.addNode(to)
	for _, e := range g.out[from] {
		if e.To == to && e.Reason == reason && e.Ref == ref {
			return
		}
	}
	g.out[from] = append(g.out[from], Edge{From: from, To: to, Reason: reason, Line: line, Ref: ref})
}

// lifecycle entry points per component kind, matching the device runtime.
var (
	activityLifecycle = []string{"onCreate", "onStart", "onResume"}
	fragmentLifecycle = []string{"onCreateView", "onStart", "onResume"}
	receiverLifecycle = []string{"onReceive"}
)

// OuterComponent maps a class to the component class whose context its code
// runs in: inner classes belong to their outer class, everything else to
// itself.
func OuterComponent(class string) string {
	if i := strings.IndexByte(class, '$'); i > 0 {
		return class[:i]
	}
	return class
}

func outerComponent(class string) string { return OuterComponent(class) }

// resolveMethod finds the class that defines method, searching class and its
// application-level superclass chain — the runtime's virtual dispatch.
func resolveMethod(prog *smali.Program, class, method string) (string, bool) {
	for _, cn := range append([]string{class}, prog.SuperChain(class)...) {
		c := prog.Class(cn)
		if c == nil {
			continue
		}
		if c.Method(method) != nil {
			return cn, true
		}
	}
	return "", false
}

// Build constructs the whole-program graph of app. java is the jdcore
// lowering of app.Program; pass nil to have Build decompile it itself.
func Build(app *apk.App, java *jdcore.Program) *Graph {
	if java == nil {
		java = jdcore.Decompile(app.Program)
	}
	prog := app.Program
	man := app.Manifest

	g := &Graph{
		prog:  prog,
		nodes: make(map[Node]bool),
		out:   make(map[Node][]Edge),
		apis:  make(map[Node][]apiSite),
	}
	if entry, err := man.EntryActivity(); err == nil {
		g.launcher = entry
	}
	g.activities = append(g.activities, man.ActivityNames()...)
	sort.Strings(g.activities)
	g.fragments = prog.FragmentClasses()
	for _, r := range man.Application.Receivers {
		g.receivers = append(g.receivers, r.Name)
	}
	sort.Strings(g.receivers)

	// components keeps the deterministic declaration order (sorted activities,
	// then fragments, then receivers) — Build iterates it rather than the
	// componentOf map so Edges/EdgesFrom order is stable across runs.
	componentOf := make(map[string]Node) // class -> component node
	var components []Node
	for _, a := range g.activities {
		componentOf[a] = ActivityNode(a)
		components = append(components, ActivityNode(a))
		g.addNode(ActivityNode(a))
	}
	for _, f := range g.fragments {
		componentOf[f] = FragmentNode(f)
		components = append(components, FragmentNode(f))
		g.addNode(FragmentNode(f))
	}
	for _, r := range g.receivers {
		componentOf[r] = ReceiverNode(r)
		components = append(components, ReceiverNode(r))
		g.addNode(ReceiverNode(r))
	}

	// Per-owner facts mirroring the statics scan: inflated layouts, fragment-
	// container ownership, FragmentManager usage and transaction-committed
	// fragments, recomputed here so the package depends only on the parsed
	// artifacts.
	layoutsOf := make(map[string][]string)
	usesFM := make(map[string]bool)
	txnCommitted := make(map[string]bool)
	scanOwner := func(owner string) {
		for _, cn := range prog.ClassAndInner(owner) {
			c := prog.Class(cn)
			if c == nil {
				continue
			}
			for _, m := range c.Methods {
				for _, ins := range m.Body {
					switch ins.Op {
					case smali.OpGetFragmentManager, smali.OpGetSupportFragmentManager:
						usesFM[owner] = true
					case smali.OpSetContentView:
						if name, ok := layoutRefName(ins.Args[0]); ok {
							layoutsOf[owner] = appendUnique(layoutsOf[owner], name)
						}
					case smali.OpTxnAdd, smali.OpTxnReplace:
						txnCommitted[ins.Args[1]] = true
					}
				}
			}
		}
	}
	for _, a := range g.activities {
		scanOwner(a)
	}
	for _, f := range g.fragments {
		scanOwner(f)
	}
	for _, ln := range app.LayoutNames() {
		for _, sf := range app.Layouts[ln].StaticFragments() {
			txnCommitted[sf] = true
		}
	}

	// Component -> lifecycle entry points, resolved through the superclass
	// chain like the runtime's method dispatch.
	addLifecycle := func(comp Node, methods []string) {
		for _, m := range methods {
			if def, ok := resolveMethod(prog, comp.Class, m); ok {
				g.addEdge(comp, MethodNode(def, m), ReasonLifecycle, 0, "")
			}
		}
	}
	for _, a := range g.activities {
		addLifecycle(ActivityNode(a), activityLifecycle)
	}
	for _, f := range g.fragments {
		addLifecycle(FragmentNode(f), fragmentLifecycle)
	}
	for _, r := range g.receivers {
		addLifecycle(ReceiverNode(r), receiverLifecycle)
	}

	// Component -> inner-class methods: inner classes only execute in their
	// component's context, so their code is conservatively reachable with it.
	for _, comp := range components {
		for _, cn := range prog.InnerClasses(comp.Class) {
			c := prog.Class(cn)
			if c == nil {
				continue
			}
			for _, m := range c.Methods {
				g.addEdge(comp, MethodNode(cn, m.Name), ReasonInner, 0, "")
			}
		}
	}

	// Component -> XML onClick handlers: a widget's android:onClick binds to
	// the class that inflates the layout it appears in (Algorithm 3's widget
	// ownership), and static <fragment> declarations load their class.
	for _, comp := range components {
		class := comp.Class
		for _, ln := range layoutsOf[class] {
			l := app.Layouts[ln]
			if l == nil {
				continue
			}
			l.Walk(func(w *layout.Widget) bool {
				if w.OnClick != "" {
					if def, ok := resolveMethod(prog, class, w.OnClick); ok {
						g.addEdge(comp, MethodNode(def, w.OnClick), ReasonXMLOnClick, 0, w.IDRef)
					}
				}
				return true
			})
			for _, sf := range l.StaticFragments() {
				if fc, ok := componentOf[sf]; ok && fc.Kind == KindFragment {
					g.addEdge(comp, fc, ReasonStaticFragment, 0, "")
				}
			}
		}
	}

	// Method-level statement edges.
	for _, cn := range prog.Names() {
		jc := java.Class(cn)
		if jc == nil {
			continue
		}
		owner := outerComponent(cn)
		for _, jm := range jc.Methods {
			from := MethodNode(cn, jm.Name)
			for _, st := range jm.Statements {
				switch st.Kind {
				case jdcore.StmtNewIntentExplicit, jdcore.StmtSetClass:
					if man.HasActivity(st.Class2) {
						g.addEdge(from, ActivityNode(st.Class2), ReasonIntent, st.Line, "")
					}
				case jdcore.StmtNewIntentAction, jdcore.StmtSetAction:
					if target, ok := man.ActivityForAction(st.Action); ok {
						g.addEdge(from, ActivityNode(target), ReasonAction, st.Line, "")
					}
				case jdcore.StmtTxnAdd, jdcore.StmtTxnReplace:
					if fc, ok := componentOf[st.Class1]; ok && fc.Kind == KindFragment {
						g.addEdge(from, fc, ReasonTransaction, st.Line, "")
					}
				case jdcore.StmtInflateFragmentView:
					if fc, ok := componentOf[st.Class1]; ok && fc.Kind == KindFragment {
						g.addEdge(from, fc, ReasonInflate, st.Line, "")
					}
				case jdcore.StmtSendBroadcast:
					for _, r := range man.ReceiversFor(st.Action) {
						g.addEdge(from, ReceiverNode(r), ReasonBroadcast, st.Line, "")
					}
				case jdcore.StmtSetClickListener:
					// set-click-listener registers the handler on the component
					// whose context executes the registration; Ref carries the
					// widget the registration targets.
					if def, ok := resolveMethod(prog, owner, st.Ident); ok {
						g.addEdge(from, MethodNode(def, st.Ident), ReasonListener, st.Line, st.Res)
					}
				case jdcore.StmtSensitiveCall:
					g.apis[from] = append(g.apis[from], apiSite{api: st.API, line: st.Line})
				}
			}
		}
	}

	// Reflection edges (§VI-A): a host that obtains a FragmentManager and
	// owns a fragment container can have any of its transaction-committed
	// dependent fragments switched in reflectively.
	for _, a := range g.activities {
		if !usesFM[a] {
			continue
		}
		container, ok := firstContainer(app, layoutsOf[a])
		if !ok {
			continue
		}
		for _, f := range dependentFragments(prog, a, g.fragments) {
			if txnCommitted[f] {
				g.addEdge(ActivityNode(a), FragmentNode(f), ReasonReflection, 0, container)
			}
		}
	}

	return g
}

// firstContainer returns the first fragment-container ref declared by any of
// the layouts, in layout then tree order.
func firstContainer(app *apk.App, layouts []string) (string, bool) {
	for _, ln := range layouts {
		if l := app.Layouts[ln]; l != nil {
			if cs := l.Containers(); len(cs) > 0 {
				return cs[0], true
			}
		}
	}
	return "", false
}

// dependentFragments is Algorithm 2 in miniature: the fragment classes
// referenced by the activity or its inner classes.
func dependentFragments(prog *smali.Program, activity string, fragments []string) []string {
	fragSet := make(map[string]bool, len(fragments))
	for _, f := range fragments {
		fragSet[f] = true
	}
	var out []string
	seen := make(map[string]bool)
	for _, cn := range prog.ClassAndInner(activity) {
		for _, used := range prog.UsedClasses(cn) {
			if fragSet[used] && !seen[used] {
				seen[used] = true
				out = append(out, used)
			}
		}
	}
	sort.Strings(out)
	return out
}

func layoutRefName(ref string) (string, bool) {
	s := strings.TrimPrefix(strings.TrimPrefix(ref, "@+"), "@")
	if rest, ok := strings.CutPrefix(s, "layout/"); ok && rest != "" {
		return rest, true
	}
	return "", false
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}
