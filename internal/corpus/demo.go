package corpus

// DemoSpec returns a compact app exercising every structural feature the
// paper discusses: tab fragments (Figure 1), a drawer-switched fragment and
// activity (Figure 2), a slide-only drawer reachable just via reflection or
// forced start, an input-gated login, an extras-requiring activity, a static
// layout fragment, a FragmentManager-less inflated fragment, a
// reference-only fragment, a requires-args fragment, and an isolated
// activity. The quickstart example and most integration tests run on it.
func DemoSpec() *AppSpec {
	return &AppSpec{
		Package:   "com.demo.app",
		Downloads: "1,000+",
		Activities: []ActivitySpec{
			{
				Name:     "Main",
				Launcher: true,
				Sensitive: []string{
					"internet/connect",
					"identification/getString",
				},
				Wires: []FragmentWire{
					{Fragment: "Home", Kind: WireTxnOnCreate},
					{Fragment: "Recent", Kind: WireTxnButton},
					{Fragment: "News", Kind: WireTxnSlideDrawer},
					{Fragment: "VIP", Kind: WireTxnSlideDrawer},
				},
			},
			{
				Name: "Detail",
				Wires: []FragmentWire{
					{Fragment: "Promo", Kind: WireTxnDrawer},
				},
			},
			{Name: "Login"},
			{
				Name:          "Account",
				RequiresExtra: "token",
				Sensitive:     []string{"location/requestLocationUpdates"},
			},
			{
				Name: "Settings",
				Wires: []FragmentWire{
					{Fragment: "About", Kind: WireStatic},
					{Fragment: "Lab", Kind: WireInflate},
					{Fragment: "Ghost", Kind: WireReferenceOnly},
				},
			},
			{Name: "Secret", Sensitive: []string{"phone/getDeviceId"}},
			{Name: "Share"},
			{Name: "Lonely", Isolated: true},
		},
		Fragments: []FragmentSpec{
			{Name: "Home", Sensitive: []string{"internet/inet"}},
			{Name: "News", Sensitive: []string{"view/loadUrl"}},
			{Name: "Recent", Sensitive: []string{"storage/sdcard"}},
			{Name: "Promo", Sensitive: []string{"media/Camera.startPreview"}},
			{Name: "About"},
			{Name: "Lab", Sensitive: []string{"system/getInstalledApplications"}},
			{Name: "Ghost"},
			{Name: "VIP", RequiresArgs: true, Sensitive: []string{"phone/Configuration.MCC"}},
		},
		Transition: []Transition{
			{From: "Main", To: "Detail", Kind: TransButton},
			{From: "Main", To: "Login", Kind: TransButton},
			{From: "Main", To: "Secret", Kind: TransSlideDrawer},
			{From: "Detail", To: "Share", Kind: TransAction, Action: "com.demo.app.SHARE"},
			{From: "Detail", To: "Settings", Kind: TransDrawerButton},
			{From: "Login", To: "Account", Kind: TransButton, Gate: &InputGate{Expected: "alice"}},
		},
		Switches: []FragmentSwitch{
			{From: "Home", To: "Recent"},
		},
	}
}
