package corpus

import (
	"fmt"
	"math/rand"
)

// The 27 Google Play categories of the §VII-A dataset study.
var studyCategories = []string{
	"tools", "entertainment", "newsmagazine", "businessoffice", "booksreference",
	"education", "lifestyle", "travel", "shopping", "communication",
	"productivity", "finance", "music", "photography", "social",
	"sports", "weather", "health", "maps", "food",
	"personalization", "video", "medical", "parenting", "auto",
	"art", "events",
}

// Study parameters: 217 popular apps, of which a handful are packed and
// cannot be analyzed (the paper rules them out), and 91% of the analyzable
// ones use Fragment components.
const (
	// StudySize is the number of downloaded apps.
	StudySize = 217
	// studyPacked apps fail decompilation.
	studyPacked = 10
	// studyNoFragments apps use no fragments at all; the remaining
	// analyzable apps all do. (217-10-18)/(217-10) = 189/207 ≈ 91.3%.
	studyNoFragments = 18
)

// StudySpecs deterministically generates the 217-app study corpus across the
// 27 categories. App i is packed when i%21 == 20 (10 apps) and
// fragment-free for the first 18 non-packed slots of every 11th position;
// everything else embeds fragments. The seed only perturbs app shapes, not
// the category or fragment-usage assignment, so the study statistic is
// stable.
func StudySpecs(seed int64) []*AppSpec {
	rng := rand.New(rand.NewSource(seed))
	var specs []*AppSpec
	packed := 0
	noFrag := 0
	for i := 0; i < StudySize; i++ {
		cat := studyCategories[i%len(studyCategories)]
		pkg := fmt.Sprintf("com.%s.app%03d", cat, i)
		spec := RandomSpec(pkg, rng.Int63())
		spec.Downloads = "500,000+"
		ensureFragment(spec)
		if packed < studyPacked && i%21 == 20 {
			packed++
			spec.Packed = true
			continueAppend(&specs, spec)
			continue
		}
		if noFrag < studyNoFragments && i%11 == 3 {
			noFrag++
			stripFragments(spec)
		}
		continueAppend(&specs, spec)
	}
	return specs
}

func continueAppend(specs *[]*AppSpec, s *AppSpec) { *specs = append(*specs, s) }

// ensureFragment guarantees a spec uses at least one fragment, keeping the
// study's usage statistic independent of the seed.
func ensureFragment(spec *AppSpec) {
	if spec.UsesFragments() {
		return
	}
	spec.Fragments = append(spec.Fragments, FragmentSpec{Name: "HomeFragment"})
	spec.Activities[0].Wires = append(spec.Activities[0].Wires,
		FragmentWire{Fragment: "HomeFragment", Kind: WireTxnOnCreate})
}

// stripFragments removes all fragment usage from a spec.
func stripFragments(spec *AppSpec) {
	spec.Fragments = nil
	spec.Switches = nil
	for i := range spec.Activities {
		spec.Activities[i].Wires = nil
	}
}

// RandomSpec generates a small, valid app with a seeded shape: a tree of
// activities, a sprinkle of fragments across all wire kinds, optional gates
// and drawers. Property tests run the whole pipeline over these.
func RandomSpec(pkg string, seed int64) *AppSpec {
	rng := rand.New(rand.NewSource(seed))
	spec := &AppSpec{Package: pkg}

	nActs := 2 + rng.Intn(6)
	names := make([]string, nActs)
	for i := range names {
		if i == 0 {
			names[i] = "Main"
		} else {
			names[i] = fmt.Sprintf("Act%d", i)
		}
	}
	spec.Activities = append(spec.Activities, ActivitySpec{Name: "Main", Launcher: true})
	for _, n := range names[1:] {
		a := ActivitySpec{Name: n}
		if rng.Intn(8) == 0 {
			a.RequiresExtra = "ctx"
		}
		spec.Activities = append(spec.Activities, a)
	}
	for i, n := range names[1:] {
		parent := names[rng.Intn(i+1)]
		kind := TransButton
		switch rng.Intn(6) {
		case 0:
			kind = TransDrawerButton
		case 1:
			kind = TransSlideDrawer
		case 2:
			kind = TransAction
		}
		tr := Transition{From: parent, To: n, Kind: kind}
		if kind == TransAction {
			tr.Action = pkg + ".ACTION_" + n
		}
		if kind == TransButton && rng.Intn(6) == 0 {
			tr.Gate = &InputGate{}
		}
		spec.Transition = append(spec.Transition, tr)
	}

	nFrags := rng.Intn(7)
	wireKinds := []WireKind{
		WireTxnOnCreate, WireTxnButton, WireTxnDrawer, WireTxnSlideDrawer,
		WireInflate, WireStatic, WireReferenceOnly,
	}
	for i := 0; i < nFrags; i++ {
		fn := fmt.Sprintf("Frag%d", i)
		fs := FragmentSpec{Name: fn}
		if rng.Intn(8) == 0 {
			fs.RequiresArgs = true
		}
		spec.Fragments = append(spec.Fragments, fs)
		host := names[rng.Intn(len(names))]
		kind := wireKinds[rng.Intn(len(wireKinds))]
		for j := range spec.Activities {
			if spec.Activities[j].Name == host {
				spec.Activities[j].Wires = append(spec.Activities[j].Wires, FragmentWire{Fragment: fn, Kind: kind})
			}
		}
	}
	return spec
}

// UsesFragments reports whether the spec wires or declares any fragments.
func (s *AppSpec) UsesFragments() bool {
	return len(s.Fragments) > 0
}
