package corpus

import (
	"reflect"
	"strings"
	"testing"
)

// TestFamilyDeterministicAndPure pins the generator contract the streaming
// pipeline relies on: At(i) is a pure function of (seed, i) — repeated calls
// agree, and member i is identical whatever the family size.
func TestFamilyDeterministicAndPure(t *testing.T) {
	small := NewFamily(40, 7)
	big := NewFamily(400, 7)
	for i := 0; i < small.Len(); i++ {
		a, b := small.At(i), small.At(i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("member %d differs across calls", i)
		}
		if !reflect.DeepEqual(a, big.At(i)) {
			t.Fatalf("member %d differs across family sizes", i)
		}
		if !reflect.DeepEqual(small.Axes(i), big.Axes(i)) {
			t.Fatalf("axes of member %d differ across family sizes", i)
		}
	}
	if got := NewFamily(40, 8).At(3); reflect.DeepEqual(got, small.At(3)) {
		t.Fatalf("different seeds produced identical member 3")
	}
}

// TestFamilyMembersBuild validates and assembles a slice of the family: every
// spec passes Validate, non-packed members build into real apps, and the
// category embedded in the package parses like the study corpus expects.
func TestFamilyMembersBuild(t *testing.T) {
	fam := NewFamily(120, 3)
	for i := 0; i < fam.Len(); i++ {
		spec := fam.At(i)
		if err := spec.Validate(); err != nil {
			t.Fatalf("member %d invalid: %v", i, err)
		}
		parts := strings.SplitN(spec.Package, ".", 3)
		if len(parts) != 3 || parts[0] != "com" {
			t.Fatalf("member %d package %q not com.<category>.<rest>", i, spec.Package)
		}
		if spec.Packed {
			continue
		}
		app, err := BuildApp(spec)
		if err != nil {
			t.Fatalf("member %d failed to build: %v", i, err)
		}
		if len(app.Manifest.ActivityNames()) == 0 {
			t.Fatalf("member %d built without activities", i)
		}
	}
}

// TestFamilyAxes checks the scenario axes actually manifest in the specs:
// deep-link members declare VIEW-reachable URIs, receiver members carry a
// broadcast receiver with a sensitive call, packed/fragment-free/popup match
// their labels — and across a modest window every axis occurs.
func TestFamilyAxes(t *testing.T) {
	fam := NewFamily(300, 11)
	seen := map[string]int{}
	for i := 0; i < fam.Len(); i++ {
		spec := fam.At(i)
		axes := fam.Axes(i)
		has := func(a string) bool {
			for _, x := range axes {
				if x == a {
					return true
				}
			}
			return false
		}
		for _, a := range axes {
			seen[a]++
		}
		if has(AxisPacked) != spec.Packed {
			t.Fatalf("member %d: packed axis %v but spec.Packed=%v", i, has(AxisPacked), spec.Packed)
		}
		if spec.Packed {
			if len(axes) != 1 {
				t.Fatalf("member %d: packed member carries extra axes %v", i, axes)
			}
			continue
		}
		if has(AxisNoFragments) == spec.UsesFragments() {
			t.Fatalf("member %d: no-fragments axis %v but UsesFragments=%v", i, has(AxisNoFragments), spec.UsesFragments())
		}
		links := 0
		for _, a := range spec.Activities {
			if a.DeepLink != "" {
				links++
				if !strings.HasPrefix(a.DeepLink, "app://"+spec.Package+"/") {
					t.Fatalf("member %d: deep link %q not rooted in package", i, a.DeepLink)
				}
			}
		}
		if has(AxisDeepLink) != (links > 0) {
			t.Fatalf("member %d: deeplink axis %v but %d links", i, has(AxisDeepLink), links)
		}
		if has(AxisReceiverEntry) != (len(spec.Receivers) > 0) {
			t.Fatalf("member %d: receiver axis %v but %d receivers", i, has(AxisReceiverEntry), len(spec.Receivers))
		}
		for _, r := range spec.Receivers {
			if len(r.Sensitive) == 0 {
				t.Fatalf("member %d: receiver %s without sensitive call", i, r.Name)
			}
		}
		popup := false
		for _, a := range spec.Activities {
			popup = popup || a.PopupOnCreate
		}
		if has(AxisPopup) && !popup {
			t.Fatalf("member %d: popup axis without PopupOnCreate", i)
		}
	}
	for _, a := range []string{AxisPacked, AxisNoFragments, AxisDeepLink, AxisReceiverEntry, AxisPopup} {
		if seen[a] == 0 {
			t.Fatalf("axis %s never occurred in 300 members", a)
		}
	}
}

// TestFamilyDeepLinksResolve builds a deep-link member and checks the
// manifest round trip: every declared URI resolves back to its activity.
func TestFamilyDeepLinksResolve(t *testing.T) {
	fam := NewFamily(40, 5)
	checked := 0
	for i := 0; i < fam.Len(); i++ {
		spec := fam.At(i)
		if spec.Packed {
			continue
		}
		app, err := BuildApp(spec)
		if err != nil {
			t.Fatalf("member %d failed to build: %v", i, err)
		}
		for _, a := range spec.Activities {
			if a.DeepLink == "" {
				continue
			}
			got, ok := app.Manifest.ActivityForURI(a.DeepLink)
			if !ok {
				t.Fatalf("member %d: URI %s not resolvable in manifest", i, a.DeepLink)
			}
			if want := spec.Package + "." + a.Name; got != want {
				t.Fatalf("member %d: URI %s resolved to %s, want %s", i, a.DeepLink, got, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no deep links checked; generator axis broken")
	}
}

// TestSliceSource pins the adapter.
func TestSliceSource(t *testing.T) {
	specs := StudySpecs(1)
	src := SliceSource(specs)
	if src.Len() != len(specs) {
		t.Fatalf("Len=%d want %d", src.Len(), len(specs))
	}
	if src.At(5) != specs[5] {
		t.Fatal("At(5) is not the underlying spec")
	}
}
