package corpus

import (
	"fmt"
	"strings"
	"sync"

	"fragdroid/internal/sensitive"
)

// PaperRow describes one row of Table I: the app identity, the effective
// component counts found by static extraction (the Sum columns), and the
// counts FragDroid visited (the Visited columns). The corpus generator
// engineers an app whose structure produces exactly these numbers under the
// documented coverage semantics (see EXPERIMENTS.md for the FiVA caveat).
type PaperRow struct {
	Package   string
	Downloads string
	// VisActs/SumActs are the Activities columns.
	VisActs, SumActs int
	// VisFrags/SumFrags are the Fragments columns.
	VisFrags, SumFrags int
	// PaperFiVAVis/PaperFiVASum are the paper's Fragments-in-Visited-
	// Activities columns, kept for the comparison table.
	PaperFiVAVis, PaperFiVASum int
	// GateMiss is how many of the unreachable activities hide behind wrong
	// input (the com.weather.Weather failure) rather than slide-only drawers.
	GateMiss int
	// Popup opens an app-bar popup on the entry activity (com.adobe.reader).
	Popup bool
}

// PaperRows returns the 15 evaluated apps of Table I, in table order.
func PaperRows() []PaperRow {
	return []PaperRow{
		{Package: "au.com.digitalstampede.formula", Downloads: "50,000+", VisActs: 1, SumActs: 2, VisFrags: 2, SumFrags: 2, PaperFiVAVis: 1, PaperFiVASum: 1},
		{Package: "com.adobe.reader", Downloads: "100,000,000+", VisActs: 7, SumActs: 13, VisFrags: 5, SumFrags: 5, PaperFiVAVis: 2, PaperFiVASum: 2, Popup: true},
		{Package: "com.advancedprocessmanager", Downloads: "10,000,000+", VisActs: 5, SumActs: 7, VisFrags: 10, SumFrags: 10, PaperFiVAVis: 10, PaperFiVASum: 10},
		{Package: "com.aircrunch.shopalerts", Downloads: "1,000,000+", VisActs: 7, SumActs: 10, VisFrags: 8, SumFrags: 13, PaperFiVAVis: 4, PaperFiVASum: 6},
		{Package: "com.c51", Downloads: "5,000,000+", VisActs: 28, SumActs: 35, VisFrags: 2, SumFrags: 3, PaperFiVAVis: 2, PaperFiVASum: 3},
		{Package: "com.cnn.mobile.android.phone", Downloads: "10,000,000+", VisActs: 16, SumActs: 23, VisFrags: 3, SumFrags: 10, PaperFiVAVis: 2, PaperFiVASum: 4},
		{Package: "com.happy2.bbmanga", Downloads: "1,000,000+", VisActs: 2, SumActs: 5, VisFrags: 3, SumFrags: 5, PaperFiVAVis: 0, PaperFiVASum: 2},
		{Package: "com.inditex.zara", Downloads: "10,000,000+", VisActs: 7, SumActs: 9, VisFrags: 7, SumFrags: 15, PaperFiVAVis: 2, PaperFiVASum: 10},
		{Package: "com.mobilemotion.dubsmash", Downloads: "100,000,000+", VisActs: 10, SumActs: 11, VisFrags: 0, SumFrags: 3, PaperFiVAVis: 0, PaperFiVASum: 3},
		{Package: "com.ovuline.pregnancy", Downloads: "1,000,000+", VisActs: 17, SumActs: 27, VisFrags: 8, SumFrags: 37, PaperFiVAVis: 8, PaperFiVASum: 26},
		{Package: "com.weather.Weather", Downloads: "50,000,000+", VisActs: 13, SumActs: 17, VisFrags: 1, SumFrags: 1, PaperFiVAVis: 1, PaperFiVASum: 1, GateMiss: 4},
		{Package: "com.where2get.android.app", Downloads: "500,000+", VisActs: 9, SumActs: 16, VisFrags: 4, SumFrags: 8, PaperFiVAVis: 0, PaperFiVASum: 4},
		{Package: "imoblife.toolbox.full", Downloads: "10,000,000+", VisActs: 14, SumActs: 14, VisFrags: 8, SumFrags: 9, PaperFiVAVis: 4, PaperFiVASum: 5},
		{Package: "net.aviascanner.aviascanner", Downloads: "1,000,000+", VisActs: 7, SumActs: 7, VisFrags: 4, SumFrags: 4, PaperFiVAVis: 4, PaperFiVASum: 4},
		{Package: "org.rbc.odb", Downloads: "1,000,000+", VisActs: 4, SumActs: 5, VisFrags: 5, SumFrags: 8, PaperFiVAVis: 2, PaperFiVASum: 3},
	}
}

// APICell is one planned Table II cell: which API an app invokes from which
// component kinds.
type APICell struct {
	API        string
	ByActivity bool
	ByFragment bool
}

// PaperAPICells plans the sensitive-API placement across the 15 apps so that
// the §VII-C aggregates reproduce exactly: 46 distinct APIs, 269 invocation
// relations (a both-sides cell counts two), 132 fragment-associated
// relations (49.07% ≈ the paper's 49%), of which 26 are fragment-only
// (9.67% ≥ the paper's 9.6% lower bound for what Activity-level tools miss).
// The per-cell placement is deterministic; EXPERIMENTS.md records why the
// exact per-cell pattern of the scanned Table II is not recoverable.
//
// The plan is a pure function of the fixed Table I rows, so it is computed
// once and shared; callers must treat the returned map and its slices as
// read-only.
func PaperAPICells() map[string][]APICell {
	apiCellsOnce.Do(func() { apiCells = buildPaperAPICells() })
	return apiCells
}

var (
	apiCellsOnce sync.Once
	apiCells     map[string][]APICell
)

func buildPaperAPICells() map[string][]APICell {
	rows := PaperRows()
	const (
		bothCells = 106 // 2 relations each
		actCells  = 31  // 1 relation each
		fragCells = 26  // 1 relation each
	)
	total := bothCells + actCells + fragCells
	out := make(map[string][]APICell, len(rows))
	for i := 0; i < total; i++ {
		api := sensitive.Catalog[i%len(sensitive.Catalog)]
		app := rows[i%len(rows)].Package
		cell := APICell{API: api}
		switch {
		case i < bothCells:
			cell.ByActivity, cell.ByFragment = true, true
		case i < bothCells+actCells:
			cell.ByActivity = true
		default:
			cell.ByFragment = true
		}
		out[app] = append(out[app], cell)
	}
	return out
}

// StressSpec generates a large app for scalability measurements: n reachable
// activities in a fan-out-3 tree, n/10 hidden ones, fragments on every
// visited activity, and the usual obstacle mix. The paper notes A3E needed
// 87–104 minutes per app (§IX); the stress spec checks how exploration cost
// scales on the simulator.
func StressSpec(n int) *AppSpec {
	if n < 2 {
		n = 2
	}
	row := PaperRow{
		Package:      fmt.Sprintf("com.stress.n%d", n),
		Downloads:    "1+",
		VisActs:      n,
		SumActs:      n + n/10,
		VisFrags:     n,
		SumFrags:     n + n/5,
		PaperFiVAVis: n,
		PaperFiVASum: n,
	}
	return PaperSpec(row)
}

// PaperSpec generates the synthetic app for one Table I row, including its
// planned sensitive-API cells.
func PaperSpec(row PaperRow) *AppSpec {
	spec := &AppSpec{Package: row.Package, Downloads: row.Downloads}
	cells := PaperAPICells()[row.Package]

	// --- Activities ---------------------------------------------------
	// Visited activities form a shallow tree of button transitions rooted at
	// the launcher; unreachable ones hang off the launcher's slide-only
	// drawer (plus GateMiss input-gated ones) and require an intent extra so
	// forced starts crash too.
	visNames := make([]string, row.VisActs)
	for i := range visNames {
		if i == 0 {
			visNames[i] = "Main"
		} else {
			visNames[i] = fmt.Sprintf("Act%02d", i)
		}
	}
	missActs := row.SumActs - row.VisActs
	missNames := make([]string, missActs)
	for i := range missNames {
		missNames[i] = fmt.Sprintf("Hidden%02d", i)
	}

	spec.Activities = append(spec.Activities, ActivitySpec{
		Name: "Main", Launcher: true, PopupOnCreate: row.Popup,
	})
	for _, n := range visNames[1:] {
		spec.Activities = append(spec.Activities, ActivitySpec{Name: n})
	}
	for _, n := range missNames {
		spec.Activities = append(spec.Activities, ActivitySpec{Name: n, RequiresExtra: "ctx"})
	}
	for i, n := range visNames[1:] {
		parent := visNames[(i)/3] // tree with fan-out 3
		tr := Transition{From: parent, To: n, Kind: TransButton}
		// Every fifth transition goes through an implicit intent action, so
		// Algorithm 1's manifest-resolution branch runs on real corpus apps.
		if i%5 == 4 {
			tr.Kind = TransAction
			tr.Action = row.Package + ".OPEN_" + strings.ToUpper(n)
		}
		spec.Transition = append(spec.Transition, tr)
	}
	for i, n := range missNames {
		kind := TransSlideDrawer
		var gate *InputGate
		if i < row.GateMiss {
			kind = TransButton
			gate = &InputGate{} // default expected value; no input supplied
		}
		spec.Transition = append(spec.Transition, Transition{From: "Main", To: n, Kind: kind, Gate: gate})
	}

	// --- Fragments ------------------------------------------------------
	// u fragments live in unreachable activities; m are unreachable inside
	// visited hosts (inflate-view, reference-only, requires-args); the rest
	// are visited through a rotation of wire kinds.
	fivaSum := row.PaperFiVASum
	if row.VisFrags > fivaSum {
		fivaSum = row.VisFrags
	}
	u := row.SumFrags - fivaSum
	if missActs == 0 || u < 0 {
		u = 0
	}
	m := row.SumFrags - row.VisFrags - u

	visWires := []WireKind{WireTxnOnCreate, WireTxnButton, WireTxnDrawer, WireTxnSlideDrawer, WireStatic}
	missWires := []WireKind{WireInflate, WireReferenceOnly, WireTxnSlideDrawer}

	addWire := func(act string, frag string, kind WireKind) {
		for i := range spec.Activities {
			if spec.Activities[i].Name == act {
				spec.Activities[i].Wires = append(spec.Activities[i].Wires, FragmentWire{Fragment: frag, Kind: kind})
				return
			}
		}
	}

	fragIdx := 0
	newFrag := func(prefix string) string {
		fragIdx++
		return fmt.Sprintf("%sFrag%02d", prefix, fragIdx)
	}

	var prevVisited struct {
		frag, host string
	}
	for i := 0; i < row.VisFrags; i++ {
		name := newFrag("")
		// Cluster fragments onto hosts in blocks so sibling fragments share
		// an Activity and F→F switches (Figure 1 tabs) genuinely occur.
		host := visNames[(i*len(visNames))/maxInt(row.VisFrags, 1)%len(visNames)]
		kind := visWires[i%len(visWires)]
		spec.Fragments = append(spec.Fragments, FragmentSpec{Name: name})
		addWire(host, name, kind)
		// Occasionally chain an F→F switch between two sibling visited
		// fragments on the same host (Figure 1 tab behaviour). Only
		// container-committed fragments can host switch handlers.
		if prevVisited.host == host && kind != WireStatic && i%4 == 1 {
			spec.Switches = append(spec.Switches, FragmentSwitch{From: prevVisited.frag, To: name})
		}
		if kind != WireStatic {
			prevVisited.frag, prevVisited.host = name, host
		}
	}
	for i := 0; i < m; i++ {
		name := newFrag("Miss")
		host := visNames[i%len(visNames)]
		kind := missWires[i%len(missWires)]
		fs := FragmentSpec{Name: name}
		if kind == WireTxnSlideDrawer {
			fs.RequiresArgs = true // the com.inditex.zara reflection failure
		}
		if kind != WireInflate {
			// Shadow API: statically visible, dynamically dead code —
			// reference-only and requires-args fragments never execute, so
			// these sites widen the static-vs-dynamic gap without touching
			// the measured Table II. Inflate-view fragments DO run their
			// onCreateView and must stay clean.
			fs.Sensitive = []string{shadowAPI(i)}
		}
		spec.Fragments = append(spec.Fragments, fs)
		addWire(host, name, kind)
	}
	for i := 0; i < u; i++ {
		name := newFrag("Deep")
		host := missNames[i%len(missNames)]
		spec.Fragments = append(spec.Fragments, FragmentSpec{
			Name: name,
			// Hosted by a never-started activity: another dead static site.
			Sensitive: []string{shadowAPI(i + 3)},
		})
		addWire(host, name, WireTxnOnCreate)
	}

	assignSensitive(spec, cells, visNames, row)
	return spec
}

// assignSensitive distributes the planned Table II cells over components that
// actually execute: visited activities for the activity side, and visited or
// inflate-loaded fragments for the fragment side (inflate-view fragments run
// their onCreateView even though FragDroid cannot credit the visit).
func assignSensitive(spec *AppSpec, cells []APICell, visNames []string, row PaperRow) {
	var execFrags []string
	for i := range spec.Fragments {
		f := &spec.Fragments[i]
		if strings.HasPrefix(f.Name, "Deep") || f.RequiresArgs {
			continue // never executes
		}
		if strings.HasPrefix(f.Name, "Miss") && !missFragExecutes(spec, f.Name) {
			continue
		}
		execFrags = append(execFrags, f.Name)
	}
	ai, fi := 0, 0
	for _, c := range cells {
		if c.ByActivity {
			act := visNames[ai%len(visNames)]
			ai++
			for i := range spec.Activities {
				if spec.Activities[i].Name == act {
					spec.Activities[i].Sensitive = append(spec.Activities[i].Sensitive, c.API)
				}
			}
		}
		if c.ByFragment && len(execFrags) > 0 {
			frag := execFrags[fi%len(execFrags)]
			fi++
			for i := range spec.Fragments {
				if spec.Fragments[i].Name == frag {
					spec.Fragments[i].Sensitive = append(spec.Fragments[i].Sensitive, c.API)
				}
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// shadowAPI picks a deterministic catalog API for dead-code sites.
func shadowAPI(i int) string {
	return sensitive.Catalog[(i*7)%len(sensitive.Catalog)]
}

// missFragExecutes reports whether a missed-in-visited fragment still runs at
// runtime: inflate-view fragments do, reference-only fragments do not.
func missFragExecutes(spec *AppSpec, frag string) bool {
	for i := range spec.Activities {
		for _, w := range spec.Activities[i].Wires {
			if w.Fragment == frag {
				return w.Kind == WireInflate
			}
		}
	}
	return false
}
