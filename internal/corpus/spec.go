// Package corpus generates the synthetic applications the evaluation runs
// on: a spec-driven app builder, the 15 apps mirroring Table I of the paper,
// the 217-app fragment-usage study corpus, and a seeded random-app generator
// for property tests. BuildArchive serializes a spec with the real encoders;
// BuildApp assembles the same App directly in memory (validated by the same
// parser-grade checks — see apk.Assemble), skipping the serialize-reparse
// round trip. TestBuildAppMatchesArchiveRoundTrip pins the two paths to
// identical output.
package corpus

import "fmt"

// TransKind describes how an Activity → Activity transition is exposed in
// the UI.
type TransKind int

const (
	// TransButton is a plain visible button (XML onClick).
	TransButton TransKind = iota + 1
	// TransDrawerButton is a button inside a hidden navigation drawer that
	// has a visible toggle (Figure 2: reachable once the drawer is opened).
	TransDrawerButton
	// TransSlideDrawer is a button inside a hidden drawer with no toggle
	// (material-design slide gesture only); click exploration cannot reach
	// it, modelling the paper's "navigation view drawer cannot be operated
	// directly" misses.
	TransSlideDrawer
	// TransAction starts the target through an implicit intent action.
	TransAction
)

// WireKind describes how a Fragment is wired into its host Activity.
type WireKind int

const (
	// WireTxnOnCreate commits the fragment in the host's onCreate.
	WireTxnOnCreate WireKind = iota + 1
	// WireTxnButton commits the fragment from a visible tab button whose
	// listener is registered in code (Figure 1 tab switching).
	WireTxnButton
	// WireTxnDrawer commits the fragment from a toggleable hidden drawer.
	WireTxnDrawer
	// WireTxnSlideDrawer commits the fragment from a slide-only drawer; only
	// the reflection mechanism can reach it (Figure 2 / §VI-A Case 2).
	WireTxnSlideDrawer
	// WireInflate loads the fragment's view directly without a
	// FragmentManager (the com.mobilemotion.dubsmash failure mode).
	WireInflate
	// WireStatic declares the fragment in the layout XML.
	WireStatic
	// WireReferenceOnly only references the fragment class in code
	// (new-instance); it is never committed at runtime.
	WireReferenceOnly
)

// InputGate guards a transition behind a correct text input (§V-C: only the
// correct account information lets the test move on).
type InputGate struct {
	// Field is the EditText ref; empty means "derive a default name".
	Field string
	// Expected is the value that lets the transition proceed.
	Expected string
	// Hint is the EditText hint text; empty derives "code for <target>".
	// Hint-keyed gates pair with the inputgen heuristics.
	Hint string
}

// Transition is one Activity → Activity edge of the app.
type Transition struct {
	From, To string
	Kind     TransKind
	// Action is the intent action for TransAction.
	Action string
	// Gate optionally input-gates the transition.
	Gate *InputGate
}

// FragmentWire attaches a Fragment to an Activity.
type FragmentWire struct {
	Fragment string
	Kind     WireKind
}

// FragmentSwitch is an F → F transition inside one Activity: a button in the
// fragment's own layout replaces it with the target fragment.
type FragmentSwitch struct {
	From, To string
}

// ActivitySpec describes one Activity.
type ActivitySpec struct {
	// Name is the simple class name; the package is prepended.
	Name string
	// Launcher marks the entry activity (exactly one per app).
	Launcher bool
	// Isolated declares the activity in the manifest without any edges; the
	// static phase filters it out as invalid.
	Isolated bool
	// RequiresExtra names an intent extra checked in onCreate; forced starts
	// with empty intents crash on it.
	RequiresExtra string
	// SupportFM selects getSupportFragmentManager over getFragmentManager.
	SupportFM bool
	// PopupOnCreate opens an action-bar popup in onCreate, interfering with
	// UI driving (the com.adobe.reader app-bar behaviour).
	PopupOnCreate bool
	// DeepLink declares a URI this activity accepts through a VIEW intent
	// filter (e.g. "app://pkg/act"), making it an external entry point
	// alongside the launcher — the family corpus' deep-link scenario axis.
	DeepLink string
	// Sensitive lists sensitive APIs invoked in onCreate.
	Sensitive []string
	// Wires lists the fragments hosted by this activity.
	Wires []FragmentWire
}

// FragmentSpec describes one Fragment.
type FragmentSpec struct {
	Name string
	// RequiresArgs marks fragments whose instantiation needs parameters;
	// reflective switching fails on them (the com.inditex.zara failure).
	RequiresArgs bool
	// Sensitive lists sensitive APIs invoked in onCreateView.
	Sensitive []string
}

// ReceiverSpec describes a BroadcastReceiver component: the system/app
// events it subscribes to, the sensitive APIs its onReceive invokes, and an
// optional activity it starts (receivers launching UI on events is a common
// malware pattern the sensitive-API analysis wants to see).
type ReceiverSpec struct {
	Name      string
	Actions   []string
	Sensitive []string
	// StartsActivity optionally names an activity onReceive launches.
	StartsActivity string
}

// AppSpec is the complete description of a synthetic app.
type AppSpec struct {
	// Package is the application package name.
	Package string
	// Downloads is carried into reports (Table I column).
	Downloads string
	// Activities, Fragments, Transitions and Switches define the structure.
	Activities []ActivitySpec
	Fragments  []FragmentSpec
	Receivers  []ReceiverSpec
	Transition []Transition
	Switches   []FragmentSwitch
	// Packed marks the app packer-protected (ruled out of analysis).
	Packed bool
}

// Validate checks referential integrity of the spec.
func (s *AppSpec) Validate() error {
	if s.Package == "" {
		return fmt.Errorf("corpus: spec without package")
	}
	acts := make(map[string]*ActivitySpec, len(s.Activities))
	links := make(map[string]string)
	launchers := 0
	for i := range s.Activities {
		a := &s.Activities[i]
		if a.Name == "" {
			return fmt.Errorf("corpus: %s: activity with empty name", s.Package)
		}
		if acts[a.Name] != nil {
			return fmt.Errorf("corpus: %s: duplicate activity %s", s.Package, a.Name)
		}
		acts[a.Name] = a
		if a.Launcher {
			launchers++
		}
		if a.DeepLink != "" {
			if other, dup := links[a.DeepLink]; dup {
				return fmt.Errorf("corpus: %s: deep link %s claimed by both %s and %s",
					s.Package, a.DeepLink, other, a.Name)
			}
			links[a.DeepLink] = a.Name
		}
	}
	if launchers != 1 {
		return fmt.Errorf("corpus: %s: want exactly 1 launcher, have %d", s.Package, launchers)
	}
	frags := make(map[string]*FragmentSpec, len(s.Fragments))
	for i := range s.Fragments {
		f := &s.Fragments[i]
		if f.Name == "" {
			return fmt.Errorf("corpus: %s: fragment with empty name", s.Package)
		}
		if frags[f.Name] != nil {
			return fmt.Errorf("corpus: %s: duplicate fragment %s", s.Package, f.Name)
		}
		frags[f.Name] = f
	}
	for _, tr := range s.Transition {
		if acts[tr.From] == nil || acts[tr.To] == nil {
			return fmt.Errorf("corpus: %s: transition %s->%s references unknown activity", s.Package, tr.From, tr.To)
		}
		if tr.From == tr.To {
			return fmt.Errorf("corpus: %s: self transition on %s", s.Package, tr.From)
		}
		if tr.Kind == TransAction && tr.Action == "" {
			return fmt.Errorf("corpus: %s: action transition %s->%s without action", s.Package, tr.From, tr.To)
		}
		if acts[tr.From].Isolated || acts[tr.To].Isolated {
			return fmt.Errorf("corpus: %s: transition touches isolated activity (%s->%s)", s.Package, tr.From, tr.To)
		}
	}
	wired := make(map[string]string) // fragment -> first host
	for i := range s.Activities {
		a := &s.Activities[i]
		for _, w := range a.Wires {
			if frags[w.Fragment] == nil {
				return fmt.Errorf("corpus: %s: activity %s wires unknown fragment %s", s.Package, a.Name, w.Fragment)
			}
			if _, dup := wired[w.Fragment]; !dup {
				wired[w.Fragment] = a.Name
			}
		}
	}
	for _, r := range s.Receivers {
		if r.Name == "" {
			return fmt.Errorf("corpus: %s: receiver with empty name", s.Package)
		}
		if acts[r.Name] != nil || frags[r.Name] != nil {
			return fmt.Errorf("corpus: %s: receiver %s collides with another component", s.Package, r.Name)
		}
		if len(r.Actions) == 0 {
			return fmt.Errorf("corpus: %s: receiver %s subscribes to nothing", s.Package, r.Name)
		}
		if r.StartsActivity != "" && acts[r.StartsActivity] == nil {
			return fmt.Errorf("corpus: %s: receiver %s starts unknown activity %s", s.Package, r.Name, r.StartsActivity)
		}
	}
	for _, sw := range s.Switches {
		if frags[sw.From] == nil || frags[sw.To] == nil {
			return fmt.Errorf("corpus: %s: switch %s->%s references unknown fragment", s.Package, sw.From, sw.To)
		}
		fh, ok1 := wired[sw.From]
		th, ok2 := wired[sw.To]
		if !ok1 || !ok2 {
			return fmt.Errorf("corpus: %s: switch %s->%s on unwired fragment", s.Package, sw.From, sw.To)
		}
		if fh != th {
			return fmt.Errorf("corpus: %s: switch %s->%s crosses hosts %s/%s", s.Package, sw.From, sw.To, fh, th)
		}
	}
	return nil
}

// activity returns the named activity spec, or nil.
func (s *AppSpec) activity(name string) *ActivitySpec {
	for i := range s.Activities {
		if s.Activities[i].Name == name {
			return &s.Activities[i]
		}
	}
	return nil
}

// fragment returns the named fragment spec, or nil.
func (s *AppSpec) fragment(name string) *FragmentSpec {
	for i := range s.Fragments {
		if s.Fragments[i].Name == name {
			return &s.Fragments[i]
		}
	}
	return nil
}
