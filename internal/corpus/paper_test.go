package corpus

import (
	"testing"

	"fragdroid/internal/sensitive"
)

func TestPaperRowsShape(t *testing.T) {
	rows := PaperRows()
	if len(rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(rows))
	}
	seen := make(map[string]bool)
	var sumA, visA int
	for _, r := range rows {
		if seen[r.Package] {
			t.Errorf("duplicate package %s", r.Package)
		}
		seen[r.Package] = true
		if r.VisActs > r.SumActs || r.VisFrags > r.SumFrags {
			t.Errorf("%s: visited exceeds sum", r.Package)
		}
		if r.VisActs < 1 {
			t.Errorf("%s: entry must be visitable", r.Package)
		}
		sumA += r.SumActs
		visA += r.VisActs
	}
	if sumA != 201 || visA != 147 {
		t.Errorf("activity totals = %d/%d, want 147/201 (Table I column sums)", visA, sumA)
	}
}

// The mean per-app target rates must match the paper's headline numbers.
func TestPaperRowTargetAverages(t *testing.T) {
	rows := PaperRows()
	var actPct, fragPct float64
	for _, r := range rows {
		actPct += 100 * float64(r.VisActs) / float64(r.SumActs)
		fragPct += 100 * float64(r.VisFrags) / float64(r.SumFrags)
	}
	actPct /= float64(len(rows))
	fragPct /= float64(len(rows))
	if actPct < 71.90 || actPct > 72.00 {
		t.Errorf("target activity average = %.2f%%, want 71.94%%", actPct)
	}
	if fragPct < 65.5 || fragPct > 66.5 {
		t.Errorf("target fragment average = %.2f%%, want ~66%%", fragPct)
	}
}

func TestPaperAPICellsAggregates(t *testing.T) {
	cells := PaperAPICells()
	apis := make(map[string]bool)
	var total, frag, fragOnly int
	perApp := make(map[string]map[string]bool)
	for app, cs := range cells {
		perApp[app] = make(map[string]bool)
		for _, c := range cs {
			if perApp[app][c.API] {
				t.Errorf("%s: duplicate cell for %s", app, c.API)
			}
			perApp[app][c.API] = true
			apis[c.API] = true
			if c.ByActivity {
				total++
			}
			if c.ByFragment {
				total++
				frag++
				if !c.ByActivity {
					fragOnly++
				}
			}
			if !c.ByActivity && !c.ByFragment {
				t.Errorf("%s: empty cell for %s", app, c.API)
			}
		}
	}
	if len(apis) != 46 {
		t.Errorf("distinct APIs = %d, want 46", len(apis))
	}
	if total != 269 {
		t.Errorf("invocation relations = %d, want 269", total)
	}
	share := float64(frag) / float64(total)
	if share < 0.485 || share > 0.495 {
		t.Errorf("fragment share = %.4f, want ~0.49", share)
	}
	only := float64(fragOnly) / float64(total)
	if only < 0.096 || only > 0.11 {
		t.Errorf("fragment-only share = %.4f, want >=0.096", only)
	}
	for _, api := range apis2list(apis) {
		if !sensitive.Known(api) {
			t.Errorf("cell uses unknown API %s", api)
		}
	}
}

func apis2list(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestPaperSpecsBuild(t *testing.T) {
	for _, row := range PaperRows() {
		spec := PaperSpec(row)
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: invalid spec: %v", row.Package, err)
			continue
		}
		app, err := BuildApp(spec)
		if err != nil {
			t.Errorf("%s: build failed: %v", row.Package, err)
			continue
		}
		// The declared activity count is the Sum column.
		if got := len(app.Manifest.ActivityNames()); got != row.SumActs {
			t.Errorf("%s: declared activities = %d, want %d", row.Package, got, row.SumActs)
		}
		// All fragments referenced: effective fragment count = Sum column.
		if got := len(app.Program.FragmentClasses()); got != row.SumFrags {
			t.Errorf("%s: fragment classes = %d, want %d", row.Package, got, row.SumFrags)
		}
	}
}

func TestStressSpec(t *testing.T) {
	for _, n := range []int{2, 10, 50} {
		spec := StressSpec(n)
		if err := spec.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		app, err := BuildApp(spec)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := len(app.Manifest.ActivityNames()); got != n+n/10 {
			t.Errorf("n=%d: declared activities = %d", n, got)
		}
	}
	// Degenerate sizes are clamped.
	if err := StressSpec(0).Validate(); err != nil {
		t.Fatalf("clamped spec invalid: %v", err)
	}
}

func TestStudySpecsShape(t *testing.T) {
	specs := StudySpecs(1)
	if len(specs) != StudySize {
		t.Fatalf("specs = %d, want %d", len(specs), StudySize)
	}
	packed, withFrags, analyzable := 0, 0, 0
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Package, err)
		}
		if s.Packed {
			packed++
			continue
		}
		analyzable++
		if s.UsesFragments() {
			withFrags++
		}
	}
	if packed != 10 {
		t.Errorf("packed = %d, want 10", packed)
	}
	pct := 100 * float64(withFrags) / float64(analyzable)
	if pct < 90 || pct > 92.5 {
		t.Errorf("fragment share = %.1f%%, want ~91%%", pct)
	}
}

func TestStudyDeterministicStructure(t *testing.T) {
	a := StudySpecs(1)
	b := StudySpecs(2)
	// Different seeds may change app shapes but never the study statistic.
	for i := range a {
		if a[i].Packed != b[i].Packed {
			t.Fatalf("packed assignment differs at %d", i)
		}
		if a[i].UsesFragments() != b[i].UsesFragments() {
			t.Fatalf("fragment usage differs at %d (%s)", i, a[i].Package)
		}
	}
}

func TestRandomSpecsBuildAndAreDeterministic(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		s1 := RandomSpec("com.rand.app", seed)
		s2 := RandomSpec("com.rand.app", seed)
		if len(s1.Activities) != len(s2.Activities) || len(s1.Fragments) != len(s2.Fragments) {
			t.Fatalf("seed %d not deterministic", seed)
		}
		if _, err := BuildApp(s1); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
