package corpus

import (
	"fmt"
	"sort"
	"strings"

	"fragdroid/internal/apk"
	"fragdroid/internal/layout"
	"fragdroid/internal/manifest"
	"fragdroid/internal/sensitive"
	"fragdroid/internal/smali"
)

// lname lowercases a simple class name for use in resource identifiers.
func lname(name string) string { return strings.ToLower(name) }

// Ref builders shared between the generator, the tests, and the evaluation
// harness (so they can address generated widgets symbolically).
func refRoot(act string) string              { return "@id/" + lname(act) + "_root" }
func refNavButton(from, to string) string    { return "@id/" + lname(from) + "_btn_" + lname(to) }
func refActionButton(from, to string) string { return "@id/" + lname(from) + "_act_" + lname(to) }
func refInput(from, to string) string        { return "@id/" + lname(from) + "_input_" + lname(to) }
func refDrawer(act string) string            { return "@id/" + lname(act) + "_drawer" }
func refDrawerToggle(act string) string      { return "@id/" + lname(act) + "_drawer_toggle" }
func refSlideDrawer(act string) string       { return "@id/" + lname(act) + "_slide" }
func refMenuButton(from, to string) string   { return "@id/" + lname(from) + "_menu_" + lname(to) }
func refSlideMenuButton(from, to string) string {
	return "@id/" + lname(from) + "_smenu_" + lname(to)
}
func refMenuFragButton(act, frag string) string {
	return "@id/" + lname(act) + "_menu_f_" + lname(frag)
}
func refSlideMenuFragButton(act, frag string) string {
	return "@id/" + lname(act) + "_smenu_f_" + lname(frag)
}
func refTabButton(act, frag string) string { return "@id/" + lname(act) + "_tab_" + lname(frag) }
func refContainer(act string) string       { return "@id/" + lname(act) + "_container" }
func refStaticFrag(act, frag string) string {
	return "@id/" + lname(act) + "_sfrag_" + lname(frag)
}
func refFragRoot(frag string) string         { return "@id/" + lname(frag) + "_root" }
func refFragLabel(frag string) string        { return "@id/" + lname(frag) + "_label" }
func refSwitchButton(from, to string) string { return "@id/" + lname(from) + "_sw_" + lname(to) }

// Exported ref helpers for harness code.
//
// NavButtonRef addresses the visible button for a TransButton transition;
// InputRef the gate field of a gated transition; DrawerToggleRef the drawer
// toggle; TabButtonRef the tab of a WireTxnButton wire; ContainerRef the
// fragment container of an activity; SwitchButtonRef the F→F switch button.
func NavButtonRef(from, to string) string       { return refNavButton(from, to) }
func InputRef(from, to string) string           { return refInput(from, to) }
func DrawerToggleRef(act string) string         { return refDrawerToggle(act) }
func MenuButtonRef(from, to string) string      { return refMenuButton(from, to) }
func TabButtonRef(act, frag string) string      { return refTabButton(act, frag) }
func ContainerRef(act string) string            { return refContainer(act) }
func SwitchButtonRef(from, to string) string    { return refSwitchButton(from, to) }
func MenuFragButtonRef(act, frag string) string { return refMenuFragButton(act, frag) }

// handlerGo and friends name generated handler methods.
func handlerGo(to string) string     { return "onGo" + to }
func handlerAct(to string) string    { return "onAct" + to }
func handlerShow(frag string) string { return "onShow" + frag }
func handlerSwitch(to string) string { return "onSw" + to }

const handlerToggleDrawer = "onToggleDrawer"

// defaultGateValue is the expected input when a gate omits Expected.
func defaultGateValue(to string) string { return "letmein-" + lname(to) }

// GateValue exposes the default gate value for harness input files.
func GateValue(g *InputGate, to string) string {
	if g != nil && g.Expected != "" {
		return g.Expected
	}
	return defaultGateValue(to)
}

// BuildArchive generates the .sapk archive for a spec.
func BuildArchive(spec *AppSpec) (*apk.Archive, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &generator{spec: spec}
	p, err := g.build()
	if err != nil {
		return nil, fmt.Errorf("corpus: build %s: %w", spec.Package, err)
	}
	arch, err := p.encode()
	if err != nil {
		return nil, fmt.Errorf("corpus: build %s: %w", spec.Package, err)
	}
	if spec.Packed {
		arch.MarkPacked()
	}
	return arch, nil
}

// BuildApp generates the app and assembles it directly from the in-memory
// parts — no serialize-then-reparse round trip through the archive text.
// apk.Assemble runs the same registration, validation, and lint steps as
// apk.Load, so the resulting App is indistinguishable from the archive path
// (TestBuildAppMatchesArchiveRoundTrip holds both paths together). Packed
// specs fail with apk.ErrPacked, as they would in the real pipeline.
func BuildApp(spec *AppSpec) (*apk.App, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Packed {
		return nil, apk.ErrPacked
	}
	g := &generator{spec: spec}
	p, err := g.build()
	if err != nil {
		return nil, fmt.Errorf("corpus: build %s: %w", spec.Package, err)
	}
	app, err := apk.Assemble(p.manifest, p.layouts, p.classes)
	if err != nil {
		return nil, fmt.Errorf("corpus: build %s: %w", spec.Package, err)
	}
	return app, nil
}

// parts is the in-memory form of a generated app: the decoded artifacts that
// encode() serializes into a .sapk and apk.Assemble consumes directly.
type parts struct {
	manifest *manifest.Manifest
	layouts  []*layout.Layout
	classes  []*smali.Class
}

// encode serializes the parts through the real encoders into an archive.
func (p *parts) encode() (*apk.Archive, error) {
	arch := apk.NewArchive()
	data, err := p.manifest.Encode()
	if err != nil {
		return nil, err
	}
	if err := arch.Put(apk.ManifestPath, data); err != nil {
		return nil, err
	}
	for _, l := range p.layouts {
		if err := putLayout(arch, l); err != nil {
			return nil, err
		}
	}
	for _, c := range p.classes {
		if err := putClass(arch, c); err != nil {
			return nil, err
		}
	}
	return arch, nil
}

type generator struct {
	spec *AppSpec
}

func (g *generator) fq(name string) string { return g.spec.Package + "." + name }

// transitionsFrom returns the outgoing transitions of an activity.
func (g *generator) transitionsFrom(act string) []Transition {
	var out []Transition
	for _, tr := range g.spec.Transition {
		if tr.From == act {
			out = append(out, tr)
		}
	}
	return out
}

// switchesFrom returns the F→F switches leaving a fragment.
func (g *generator) switchesFrom(frag string) []FragmentSwitch {
	var out []FragmentSwitch
	for _, sw := range g.spec.Switches {
		if sw.From == frag {
			out = append(out, sw)
		}
	}
	return out
}

// hostOf returns the first activity wiring the fragment.
func (g *generator) hostOf(frag string) (string, bool) {
	for _, a := range g.spec.Activities {
		for _, w := range a.Wires {
			if w.Fragment == frag {
				return a.Name, true
			}
		}
	}
	return "", false
}

func (g *generator) build() (*parts, error) {
	p := &parts{manifest: g.buildManifest()}
	for i := range g.spec.Activities {
		a := &g.spec.Activities[i]
		l, err := g.activityLayout(a)
		if err != nil {
			return nil, err
		}
		p.layouts = append(p.layouts, l)
		p.classes = append(p.classes, g.activityClass(a))
	}
	for i := range g.spec.Fragments {
		f := &g.spec.Fragments[i]
		l, err := g.fragmentLayout(f)
		if err != nil {
			return nil, err
		}
		p.layouts = append(p.layouts, l)
		p.classes = append(p.classes, g.fragmentClass(f))
	}
	for i := range g.spec.Receivers {
		p.classes = append(p.classes, g.receiverClass(&g.spec.Receivers[i]))
	}
	return p, nil
}

func (g *generator) receiverClass(r *ReceiverSpec) *smali.Class {
	c := &smali.Class{Name: g.fq(r.Name), Super: smali.ClassReceiver, Access: []string{"public"}}
	var body []smali.Instr
	for _, api := range r.Sensitive {
		body = append(body, ins(smali.OpInvokeSensitive, api))
	}
	if r.StartsActivity != "" {
		body = append(body, ins(smali.OpNewIntent, g.fq(r.Name), g.fq(r.StartsActivity)))
		if target := g.spec.activity(r.StartsActivity); target != nil && target.RequiresExtra != "" {
			body = append(body, ins(smali.OpPutExtra, target.RequiresExtra, "ctx"))
		}
		body = append(body, ins(smali.OpStartActivity))
	}
	if len(body) == 0 {
		body = append(body, ins(smali.OpLog, "broadcast received"))
	}
	c.Methods = append(c.Methods, &smali.Method{
		Name: "onReceive", Access: []string{"public"}, Body: body,
	})
	return c
}

func putLayout(arch *apk.Archive, l *layout.Layout) error {
	data, err := l.Encode()
	if err != nil {
		return err
	}
	return arch.Put(apk.LayoutDir+l.Name+".xml", data)
}

func putClass(arch *apk.Archive, c *smali.Class) error {
	p := apk.SmaliDir + strings.ReplaceAll(c.Name, ".", "/") + ".smali"
	return arch.Put(p, smali.WriteClass(c))
}

func (g *generator) buildManifest() *manifest.Manifest {
	m := manifest.Manifest{Package: g.spec.Package, VersionName: "1.0"}
	m.Application.Label = g.spec.Package
	// Declare the permissions guarding every sensitive API the app invokes,
	// like a well-formed Play Store app would.
	for _, p := range g.requiredPermissions() {
		m.Permissions = append(m.Permissions, manifest.Permission{Name: p})
	}
	for _, a := range g.spec.Activities {
		act := manifest.Activity{Name: g.fq(a.Name)}
		if a.Launcher {
			act.Filters = append(act.Filters, manifest.IntentFilter{
				Actions:    []manifest.Action{{Name: manifest.ActionMain}},
				Categories: []manifest.Category{{Name: manifest.CategoryLauncher}},
			})
		}
		// Intent-filter actions for implicit transitions targeting this
		// activity.
		for _, tr := range g.spec.Transition {
			if tr.Kind == TransAction && tr.To == a.Name {
				act.Filters = append(act.Filters, manifest.IntentFilter{
					Actions: []manifest.Action{{Name: tr.Action}},
				})
			}
		}
		if a.DeepLink != "" {
			act.Filters = append(act.Filters, manifest.IntentFilter{
				Actions: []manifest.Action{{Name: manifest.ActionView}},
				Categories: []manifest.Category{
					{Name: manifest.CategoryDefault},
					{Name: manifest.CategoryBrowsable},
				},
				Data: []manifest.Data{{URI: a.DeepLink}},
			})
		}
		m.Application.Activities = append(m.Application.Activities, act)
	}
	for _, r := range g.spec.Receivers {
		rec := manifest.Receiver{Name: g.fq(r.Name)}
		for _, action := range r.Actions {
			rec.Filters = append(rec.Filters, manifest.IntentFilter{
				Actions: []manifest.Action{{Name: action}},
			})
		}
		m.Application.Receivers = append(m.Application.Receivers, rec)
	}
	return &m
}

// requiredPermissions derives the unique, sorted permission set from all
// sensitive APIs the spec invokes.
func (g *generator) requiredPermissions() []string {
	set := make(map[string]bool)
	add := func(apis []string) {
		for _, api := range apis {
			for _, p := range sensitive.PermissionsFor(api) {
				set[p] = true
			}
		}
	}
	for _, a := range g.spec.Activities {
		add(a.Sensitive)
	}
	for _, f := range g.spec.Fragments {
		add(f.Sensitive)
	}
	for _, r := range g.spec.Receivers {
		add(r.Sensitive)
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// needsDrawer / needsSlideDrawer report which drawer variants the activity
// layout requires.
func (g *generator) needsDrawer(a *ActivitySpec) bool {
	for _, tr := range g.transitionsFrom(a.Name) {
		if tr.Kind == TransDrawerButton {
			return true
		}
	}
	for _, w := range a.Wires {
		if w.Kind == WireTxnDrawer {
			return true
		}
	}
	return false
}

func (g *generator) needsSlideDrawer(a *ActivitySpec) bool {
	for _, tr := range g.transitionsFrom(a.Name) {
		if tr.Kind == TransSlideDrawer {
			return true
		}
	}
	for _, w := range a.Wires {
		if w.Kind == WireTxnSlideDrawer {
			return true
		}
	}
	return false
}

func needsContainer(a *ActivitySpec) bool {
	for _, w := range a.Wires {
		switch w.Kind {
		case WireTxnOnCreate, WireTxnButton, WireTxnDrawer, WireTxnSlideDrawer, WireInflate:
			return true
		}
	}
	return false
}

func (g *generator) activityLayout(a *ActivitySpec) (*layout.Layout, error) {
	root := layout.Root(layout.TypeLinearLayout).ID(refRoot(a.Name))
	root.Child(layout.Root(layout.TypeTextView).
		ID("@id/" + lname(a.Name) + "_title").Text(a.Name))

	if g.needsDrawer(a) {
		root.Child(layout.Root(layout.TypeImageButton).
			ID(refDrawerToggle(a.Name)).OnClick(handlerToggleDrawer))
		drawer := layout.Root(layout.TypeDrawerLayout).ID(refDrawer(a.Name)).HiddenW()
		for _, tr := range g.transitionsFrom(a.Name) {
			if tr.Kind == TransDrawerButton {
				drawer.Child(layout.Root(layout.TypeButton).
					ID(refMenuButton(a.Name, tr.To)).Text(tr.To).OnClick(handlerGo(tr.To)))
			}
		}
		for _, w := range a.Wires {
			if w.Kind == WireTxnDrawer {
				drawer.Child(layout.Root(layout.TypeButton).
					ID(refMenuFragButton(a.Name, w.Fragment)).Text(w.Fragment).
					OnClick(handlerShow(w.Fragment)))
			}
		}
		root.Child(drawer)
	}
	if g.needsSlideDrawer(a) {
		slide := layout.Root(layout.TypeDrawerLayout).ID(refSlideDrawer(a.Name)).HiddenW()
		for _, tr := range g.transitionsFrom(a.Name) {
			if tr.Kind == TransSlideDrawer {
				slide.Child(layout.Root(layout.TypeButton).
					ID(refSlideMenuButton(a.Name, tr.To)).Text(tr.To).OnClick(handlerGo(tr.To)))
			}
		}
		for _, w := range a.Wires {
			if w.Kind == WireTxnSlideDrawer {
				slide.Child(layout.Root(layout.TypeButton).
					ID(refSlideMenuFragButton(a.Name, w.Fragment)).Text(w.Fragment).
					OnClick(handlerShow(w.Fragment)))
			}
		}
		root.Child(slide)
	}

	for _, tr := range g.transitionsFrom(a.Name) {
		switch tr.Kind {
		case TransButton:
			if tr.Gate != nil {
				field := tr.Gate.Field
				if field == "" {
					field = refInput(a.Name, tr.To)
				}
				hint := tr.Gate.Hint
				if hint == "" {
					hint = "code for " + tr.To
				}
				root.Child(layout.Root(layout.TypeEditText).ID(field).Hint(hint))
			}
			root.Child(layout.Root(layout.TypeButton).
				ID(refNavButton(a.Name, tr.To)).Text(tr.To).OnClick(handlerGo(tr.To)))
		case TransAction:
			root.Child(layout.Root(layout.TypeButton).
				ID(refActionButton(a.Name, tr.To)).Text(tr.To).OnClick(handlerAct(tr.To)))
		}
	}

	for _, w := range a.Wires {
		if w.Kind == WireTxnButton {
			// Tab buttons get their listeners registered in code.
			root.Child(layout.Root(layout.TypeTabItem).
				ID(refTabButton(a.Name, w.Fragment)).Text(w.Fragment))
		}
		if w.Kind == WireStatic {
			root.Child(layout.Root(layout.TypeFragment).
				ID(refStaticFrag(a.Name, w.Fragment)).Class(g.fq(w.Fragment)))
		}
	}
	if needsContainer(a) {
		root.Child(layout.Root(layout.TypeFrameLayout).ID(refContainer(a.Name)))
	}
	return root.BuildLayout("activity_" + lname(a.Name))
}

func (g *generator) fragmentLayout(f *FragmentSpec) (*layout.Layout, error) {
	root := layout.Root(layout.TypeLinearLayout).ID(refFragRoot(f.Name))
	root.Child(layout.Root(layout.TypeTextView).ID(refFragLabel(f.Name)).Text(f.Name))
	for _, sw := range g.switchesFrom(f.Name) {
		root.Child(layout.Root(layout.TypeButton).
			ID(refSwitchButton(f.Name, sw.To)).Text(sw.To).OnClick(handlerSwitch(sw.To)))
	}
	return root.BuildLayout("fragment_" + lname(f.Name))
}

// ins is a tiny instruction constructor for generated code.
func ins(op smali.Op, args ...string) smali.Instr {
	return smali.Instr{Op: op, Args: args}
}

func (g *generator) fmOps(a *ActivitySpec) (get smali.Op) {
	if a.SupportFM {
		return smali.OpGetSupportFragmentManager
	}
	return smali.OpGetFragmentManager
}

func (g *generator) activityClass(a *ActivitySpec) *smali.Class {
	super := smali.ClassActivity
	if a.SupportFM {
		super = smali.ClassFragmentActivity
	}
	c := &smali.Class{Name: g.fq(a.Name), Super: super, Access: []string{"public"}}

	var onCreate []smali.Instr
	if a.RequiresExtra != "" {
		onCreate = append(onCreate, ins(smali.OpRequireExtra, a.RequiresExtra))
	}
	onCreate = append(onCreate, ins(smali.OpSetContentView, "@layout/activity_"+lname(a.Name)))
	for _, w := range a.Wires {
		if w.Kind == WireTxnButton {
			onCreate = append(onCreate,
				ins(smali.OpSetClickListener, refTabButton(a.Name, w.Fragment), handlerShow(w.Fragment)))
		}
	}
	for _, api := range a.Sensitive {
		onCreate = append(onCreate, ins(smali.OpInvokeSensitive, api))
	}
	for _, w := range a.Wires {
		switch w.Kind {
		case WireTxnOnCreate:
			onCreate = append(onCreate,
				ins(g.fmOps(a)),
				ins(smali.OpBeginTransaction),
				ins(smali.OpTxnAdd, refContainer(a.Name), g.fq(w.Fragment)),
				ins(smali.OpTxnCommit),
			)
		case WireInflate:
			onCreate = append(onCreate,
				ins(smali.OpInflateView, refContainer(a.Name), g.fq(w.Fragment)))
		case WireReferenceOnly:
			onCreate = append(onCreate, ins(smali.OpNewInstance, g.fq(w.Fragment)))
		}
	}
	if a.PopupOnCreate {
		onCreate = append(onCreate, ins(smali.OpShowPopup, "app bar menu"))
	}
	c.Methods = append(c.Methods, &smali.Method{
		Name: "onCreate", Access: []string{"public"}, Body: onCreate,
	})

	if g.needsDrawer(a) {
		c.Methods = append(c.Methods, &smali.Method{
			Name: handlerToggleDrawer, Access: []string{"public"},
			Body: []smali.Instr{ins(smali.OpToggleVisible, refDrawer(a.Name))},
		})
	}

	for _, tr := range g.transitionsFrom(a.Name) {
		var body []smali.Instr
		if tr.Gate != nil {
			field := tr.Gate.Field
			if field == "" {
				field = refInput(a.Name, tr.To)
			}
			body = append(body, ins(smali.OpRequireInput, field, GateValue(tr.Gate, tr.To)))
		}
		name := handlerGo(tr.To)
		if tr.Kind == TransAction {
			name = handlerAct(tr.To)
			body = append(body, ins(smali.OpNewIntentAction, tr.Action))
		} else {
			body = append(body, ins(smali.OpNewIntent, g.fq(a.Name), g.fq(tr.To)))
		}
		if target := g.spec.activity(tr.To); target != nil && target.RequiresExtra != "" {
			body = append(body, ins(smali.OpPutExtra, target.RequiresExtra, "ctx"))
		}
		body = append(body, ins(smali.OpStartActivity))
		c.Methods = append(c.Methods, &smali.Method{
			Name: name, Access: []string{"public"}, Body: body,
		})
	}

	for _, w := range a.Wires {
		switch w.Kind {
		case WireTxnButton, WireTxnDrawer, WireTxnSlideDrawer:
			c.Methods = append(c.Methods, &smali.Method{
				Name: handlerShow(w.Fragment), Access: []string{"public"},
				Body: []smali.Instr{
					ins(g.fmOps(a)),
					ins(smali.OpBeginTransaction),
					ins(smali.OpTxnReplace, refContainer(a.Name), g.fq(w.Fragment)),
					ins(smali.OpTxnCommit),
				},
			})
		}
	}
	return c
}

func (g *generator) fragmentClass(f *FragmentSpec) *smali.Class {
	c := &smali.Class{
		Name:         g.fq(f.Name),
		Super:        smali.ClassFragment,
		Access:       []string{"public"},
		RequiresArgs: f.RequiresArgs,
	}
	body := []smali.Instr{ins(smali.OpSetContentView, "@layout/fragment_"+lname(f.Name))}
	for _, api := range f.Sensitive {
		body = append(body, ins(smali.OpInvokeSensitive, api))
	}
	c.Methods = append(c.Methods, &smali.Method{
		Name: "onCreateView", Access: []string{"public"}, Body: body,
	})
	for _, sw := range g.switchesFrom(f.Name) {
		host, ok := g.hostOf(sw.From)
		if !ok {
			host = f.Name // unreachable; Validate guarantees a host
		}
		c.Methods = append(c.Methods, &smali.Method{
			Name: handlerSwitch(sw.To), Access: []string{"public"},
			Body: []smali.Instr{
				ins(smali.OpGetFragmentManager),
				ins(smali.OpBeginTransaction),
				ins(smali.OpTxnReplace, refContainer(host), g.fq(sw.To)),
				ins(smali.OpTxnCommit),
			},
		})
	}
	return c
}
