package corpus

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"fragdroid/internal/apk"
	"fragdroid/internal/smali"
)

func TestDemoSpecValidates(t *testing.T) {
	if err := DemoSpec().Validate(); err != nil {
		t.Fatalf("DemoSpec invalid: %v", err)
	}
}

func TestBuildAppDemo(t *testing.T) {
	app, err := BuildApp(DemoSpec())
	if err != nil {
		t.Fatalf("BuildApp: %v", err)
	}
	if app.Manifest.Package != "com.demo.app" {
		t.Errorf("package = %q", app.Manifest.Package)
	}
	entry, err := app.Manifest.EntryActivity()
	if err != nil || entry != "com.demo.app.Main" {
		t.Fatalf("entry = %q, %v", entry, err)
	}
	// 8 activities + 8 fragments = 16 classes.
	if app.Program.Len() != 16 {
		t.Errorf("classes = %d (%v)", app.Program.Len(), app.Program.Names())
	}
	// One layout per activity and fragment.
	if len(app.Layouts) != 16 {
		t.Errorf("layouts = %d (%v)", len(app.Layouts), app.LayoutNames())
	}
	// The action transition target carries its intent filter.
	if got, ok := app.Manifest.ActivityForAction("com.demo.app.SHARE"); !ok || got != "com.demo.app.Share" {
		t.Errorf("action resolution = %q, %v", got, ok)
	}
	// Isolated activity declared but classes exist.
	if !app.Manifest.HasActivity("com.demo.app.Lonely") {
		t.Error("isolated activity missing from manifest")
	}
}

func TestGeneratedStructure(t *testing.T) {
	app, err := BuildApp(DemoSpec())
	if err != nil {
		t.Fatal(err)
	}
	main := app.Program.Class("com.demo.app.Main")
	if main == nil {
		t.Fatal("Main class missing")
	}
	if main.Method("onCreate") == nil || main.Method("onGoDetail") == nil {
		t.Fatal("Main missing expected methods")
	}
	if main.Method("onShowRecent") == nil {
		t.Fatal("Main missing tab handler")
	}
	if main.Method("onShowVIP") == nil {
		t.Fatal("Main missing slide-drawer fragment handler")
	}
	// VIP is requires-args.
	vip := app.Program.Class("com.demo.app.VIP")
	if vip == nil || !vip.RequiresArgs {
		t.Fatal("VIP not marked requires-args")
	}
	// Home has the switch handler to Recent targeting Main's container.
	home := app.Program.Class("com.demo.app.Home")
	sw := home.Method("onSwRecent")
	if sw == nil {
		t.Fatal("Home missing switch handler")
	}
	found := false
	for _, ins := range sw.Body {
		if len(ins.Args) == 2 && ins.Args[0] == apk.NormalizeRef(ContainerRef("Main")) {
			found = true
		}
	}
	if !found {
		t.Errorf("switch handler does not target Main's container: %+v", sw.Body)
	}
	// Main's layout: tab button visible, slide drawer hidden without toggle.
	ml := app.Layouts["activity_main"]
	if ml == nil {
		t.Fatal("activity_main layout missing")
	}
	if ml.Find(TabButtonRef("Main", "Recent")) == nil {
		t.Error("tab button missing")
	}
	slide := ml.Find("@id/main_slide")
	if slide == nil || !slide.Hidden {
		t.Error("slide drawer missing or visible")
	}
	if ml.Find(DrawerToggleRef("Main")) != nil {
		t.Error("slide-only drawer must have no toggle")
	}
	// Detail's drawer has a toggle.
	dl := app.Layouts["activity_detail"]
	if dl.Find(DrawerToggleRef("Detail")) == nil {
		t.Error("Detail drawer toggle missing")
	}
	// Settings layout declares the static fragment.
	sl := app.Layouts["activity_settings"]
	sf := sl.StaticFragments()
	if len(sf) != 1 || sf[0] != "com.demo.app.About" {
		t.Errorf("static fragments = %v", sf)
	}
	// Login layout has the gate input field.
	ll := app.Layouts["activity_login"]
	if ll.Find(InputRef("Login", "Account")) == nil {
		t.Error("gate input field missing")
	}
}

// TestBuildAppMatchesArchiveRoundTrip pins the contract of the direct
// in-memory assembly path: BuildApp must produce exactly what serializing
// the spec to an archive and re-loading it produces — same manifest, same
// layouts, same program order, same resource-ID numbering.
func TestBuildAppMatchesArchiveRoundTrip(t *testing.T) {
	specs := []*AppSpec{DemoSpec()}
	for _, row := range PaperRows()[:3] {
		specs = append(specs, PaperSpec(row))
	}
	for i, spec := range StudySpecs(1) {
		if i%37 == 0 && !spec.Packed {
			specs = append(specs, spec)
		}
	}
	for _, spec := range specs {
		direct, err := BuildApp(spec)
		if err != nil {
			t.Fatalf("%s: BuildApp: %v", spec.Package, err)
		}
		arch, err := BuildArchive(spec)
		if err != nil {
			t.Fatalf("%s: BuildArchive: %v", spec.Package, err)
		}
		loaded, err := apk.Load(arch)
		if err != nil {
			t.Fatalf("%s: Load: %v", spec.Package, err)
		}
		// Compare through the canonical encoders so representational slack
		// (nil vs empty slices) doesn't mask or fake a difference.
		dm, err := direct.Manifest.Encode()
		if err != nil {
			t.Fatal(err)
		}
		lm, err := loaded.Manifest.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dm, lm) {
			t.Errorf("%s: manifests differ", spec.Package)
		}
		if !reflect.DeepEqual(direct.LayoutNames(), loaded.LayoutNames()) {
			t.Fatalf("%s: layout sets differ: %v vs %v",
				spec.Package, direct.LayoutNames(), loaded.LayoutNames())
		}
		for _, n := range direct.LayoutNames() {
			dl, err := direct.Layouts[n].Encode()
			if err != nil {
				t.Fatal(err)
			}
			ll, err := loaded.Layouts[n].Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dl, ll) {
				t.Errorf("%s: layout %s differs", spec.Package, n)
			}
		}
		if !reflect.DeepEqual(direct.Resources, loaded.Resources) {
			t.Errorf("%s: resource tables differ", spec.Package)
		}
		if !reflect.DeepEqual(direct.Program.Names(), loaded.Program.Names()) {
			t.Fatalf("%s: program order differs:\n%v\n%v",
				spec.Package, direct.Program.Names(), loaded.Program.Names())
		}
		for _, name := range direct.Program.Names() {
			dc, lc := direct.Program.Class(name), loaded.Program.Class(name)
			if dc.SourceFile != lc.SourceFile {
				t.Fatalf("%s: class %s source file %q vs %q",
					spec.Package, name, dc.SourceFile, lc.SourceFile)
			}
			if !bytes.Equal(smali.WriteClass(dc), smali.WriteClass(lc)) {
				t.Fatalf("%s: class %s differs:\n%s\nvs\n%s",
					spec.Package, name, smali.WriteClass(dc), smali.WriteClass(lc))
			}
		}
	}
}

func TestBuildPacked(t *testing.T) {
	spec := DemoSpec()
	spec.Packed = true
	arch, err := BuildArchive(spec)
	if err != nil {
		t.Fatalf("BuildArchive: %v", err)
	}
	if !arch.Packed() {
		t.Fatal("archive not marked packed")
	}
	if _, err := BuildApp(spec); err != apk.ErrPacked {
		t.Fatalf("BuildApp packed = %v, want ErrPacked", err)
	}
}

func TestSpecValidationErrors(t *testing.T) {
	base := func() *AppSpec { return DemoSpec() }
	cases := []struct {
		name   string
		mutate func(*AppSpec)
		want   string
	}{
		{"no launcher", func(s *AppSpec) { s.Activities[0].Launcher = false }, "launcher"},
		{"two launchers", func(s *AppSpec) { s.Activities[1].Launcher = true }, "launcher"},
		{"dup activity", func(s *AppSpec) { s.Activities = append(s.Activities, ActivitySpec{Name: "Main"}) }, "duplicate"},
		{"dup fragment", func(s *AppSpec) { s.Fragments = append(s.Fragments, FragmentSpec{Name: "Home"}) }, "duplicate"},
		{"unknown transition", func(s *AppSpec) {
			s.Transition = append(s.Transition, Transition{From: "Main", To: "Nope", Kind: TransButton})
		}, "unknown activity"},
		{"self transition", func(s *AppSpec) {
			s.Transition = append(s.Transition, Transition{From: "Main", To: "Main", Kind: TransButton})
		}, "self"},
		{"action without action", func(s *AppSpec) {
			s.Transition = append(s.Transition, Transition{From: "Main", To: "Share", Kind: TransAction})
		}, "without action"},
		{"isolated with edge", func(s *AppSpec) {
			s.Transition = append(s.Transition, Transition{From: "Main", To: "Lonely", Kind: TransButton})
		}, "isolated"},
		{"unknown wire", func(s *AppSpec) {
			s.Activities[0].Wires = append(s.Activities[0].Wires, FragmentWire{Fragment: "Nope", Kind: WireTxnOnCreate})
		}, "unknown fragment"},
		{"cross-host switch", func(s *AppSpec) {
			s.Switches = append(s.Switches, FragmentSwitch{From: "Home", To: "Promo"})
		}, "crosses hosts"},
		{"switch unwired", func(s *AppSpec) {
			s.Fragments = append(s.Fragments, FragmentSpec{Name: "Float"})
			s.Switches = append(s.Switches, FragmentSwitch{From: "Float", To: "Home"})
		}, "unwired"},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

func TestGateValue(t *testing.T) {
	if GateValue(&InputGate{Expected: "alice"}, "X") != "alice" {
		t.Error("explicit gate value ignored")
	}
	if GateValue(&InputGate{}, "Account") != "letmein-account" {
		t.Errorf("default gate value = %q", GateValue(&InputGate{}, "Account"))
	}
	if GateValue(nil, "Account") != "letmein-account" {
		t.Error("nil gate default broken")
	}
}
