package corpus

import (
	"fmt"
	"math/rand"
)

// SpecSource is a random-access corpus of app specs. At(i) materializes the
// i-th spec on demand, so a source never needs to hold the whole corpus in
// memory: a streaming pipeline asks for each spec exactly when the app enters
// its build stage and drops it when the fold releases the app. At must be
// pure — same i, same spec — and safe for concurrent callers.
type SpecSource interface {
	Len() int
	At(i int) *AppSpec
}

// SliceSource adapts a pre-built spec slice to SpecSource (the classic
// fixed corpora: the 15 Table I apps, the 217-app study).
type SliceSource []*AppSpec

// Len returns the corpus size.
func (s SliceSource) Len() int { return len(s) }

// At returns the i-th spec.
func (s SliceSource) At(i int) *AppSpec { return s[i] }

// Family axis labels, as written into the appgen manifest and asserted by
// tests. Every family member carries the axes that apply to its index.
const (
	AxisPacked        = "packed"
	AxisNoFragments   = "no-fragments"
	AxisDeepLink      = "deeplink"
	AxisReceiverEntry = "receiver-entry"
	AxisPopup         = "popup"
)

// familyBroadcastActions is the event vocabulary family receivers subscribe
// to; the per-app custom push action is appended at generation time.
var familyBroadcastActions = []string{
	"android.intent.action.BOOT_COMPLETED",
	"android.net.conn.CONNECTIVITY_CHANGE",
	"android.provider.Telephony.SMS_RECEIVED",
}

// familyReceiverAPIs are the sensitive APIs family receivers invoke in
// onReceive (a receiver reading identifiers on a system event is the classic
// background-entry-point pattern the sensitive analysis wants to observe).
var familyReceiverAPIs = []string{
	"phone/getDeviceId",
	"location/getAllProviders",
	"internet/Connectivity.getActiveNetworkInfo",
}

// Family is the lazily generated app-family corpus: a deterministic function
// (seed, index) → spec that parameterizes the study shapes into an arbitrary
// number of apps — 10k+ for the corpus-scale study — without ever
// materializing a spec slice. Beyond the study's category/packed/fragment-use
// axes it covers two scenario axes the fixed corpora do not: broadcast
// receivers as background entry points (receivers subscribing to system
// events, invoking sensitive APIs, and launching activities from onReceive)
// and deep links (activities reachable from outside through VIEW/data intent
// filters).
type Family struct {
	n    int
	seed int64
}

// NewFamily returns the n-app family corpus for a seed. The same (n, seed)
// always denotes the same corpus, and member i is identical across any two
// families sharing the seed, whatever their sizes.
func NewFamily(n int, seed int64) *Family {
	if n < 0 {
		n = 0
	}
	return &Family{n: n, seed: seed}
}

// Len returns the corpus size.
func (f *Family) Len() int { return f.n }

// At materializes member i. Pure random access: it derives everything from
// (seed, i), so streaming pipelines can generate members concurrently and in
// any order.
func (f *Family) At(i int) *AppSpec {
	spec, _ := f.member(i)
	return spec
}

// Axes returns the scenario-axis labels of member i, in a fixed order — the
// appgen family manifest records them next to each generated archive.
func (f *Family) Axes(i int) []string {
	_, axes := f.member(i)
	return axes
}

// memberSeed spreads (seed, i) into an independent per-member RNG seed with
// a splitmix64 round, so neighbouring indexes get uncorrelated shapes and
// At(i) never needs the RNG state of members 0..i-1.
func (f *Family) memberSeed(i int) int64 {
	z := uint64(f.seed)*0xBF58476D1CE4E5B9 + uint64(i)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// member generates spec i and its axis labels. The axis assignment is a pure
// function of the index (the seed only perturbs shapes), so corpus-level
// statistics — packed share, fragment share, axis mix — are stable across
// seeds, exactly like the 217-app study.
func (f *Family) member(i int) (*AppSpec, []string) {
	cat := studyCategories[i%len(studyCategories)]
	pkg := fmt.Sprintf("com.%s.fam%06d", cat, i)
	rng := rand.New(rand.NewSource(f.memberSeed(i)))
	spec := RandomSpec(pkg, rng.Int63())
	spec.Downloads = "1,000,000+"
	ensureFragment(spec)

	// ~1% packed, like the study's 10/217; packed apps never decompile, so no
	// other axis applies.
	if i%97 == 96 {
		spec.Packed = true
		return spec, []string{AxisPacked}
	}

	var axes []string
	// ~8% fragment-free keeps the family fragment share near the study's 91%.
	if i%13 == 5 {
		stripFragments(spec)
		axes = append(axes, AxisNoFragments)
	}
	if i%4 == 2 {
		f.addDeepLinks(spec, rng)
		axes = append(axes, AxisDeepLink)
	}
	if i%5 == 1 {
		f.addReceiver(spec, rng)
		axes = append(axes, AxisReceiverEntry)
	}
	if i%23 == 7 {
		spec.Activities[0].PopupOnCreate = true
		axes = append(axes, AxisPopup)
	}
	return spec, axes
}

// addDeepLinks marks one or two activities externally reachable through VIEW
// intent filters. Deep links are extra entry points next to the launcher and
// the in-app transitions, so they never make a previously reachable activity
// unreachable.
func (f *Family) addDeepLinks(spec *AppSpec, rng *rand.Rand) {
	n := 1 + rng.Intn(2)
	if n > len(spec.Activities) {
		n = len(spec.Activities)
	}
	start := rng.Intn(len(spec.Activities))
	for k := 0; k < n; k++ {
		a := &spec.Activities[(start+k)%len(spec.Activities)]
		a.DeepLink = "app://" + spec.Package + "/" + lname(a.Name)
	}
}

// addReceiver appends a broadcast receiver subscribing to a system event and
// a per-app push action, invoking a sensitive API in onReceive, and — half
// the time — launching an activity from the background (the event-driven
// entry-point pattern).
func (f *Family) addReceiver(spec *AppSpec, rng *rand.Rand) {
	r := ReceiverSpec{
		Name: "PushReceiver",
		Actions: []string{
			familyBroadcastActions[rng.Intn(len(familyBroadcastActions))],
			spec.Package + ".action.PUSH",
		},
		Sensitive: []string{familyReceiverAPIs[rng.Intn(len(familyReceiverAPIs))]},
	}
	if rng.Intn(2) == 0 {
		r.StartsActivity = spec.Activities[rng.Intn(len(spec.Activities))].Name
	}
	spec.Receivers = append(spec.Receivers, r)
}
