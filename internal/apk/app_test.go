package apk

import (
	"strings"
	"testing"

	"fragdroid/internal/layout"
	"fragdroid/internal/manifest"
	"fragdroid/internal/smali"
)

// demoArchive assembles a minimal but complete app through the real encoders:
// one launcher activity with a layout, one fragment, one secondary activity.
func demoArchive(t *testing.T) *Archive {
	t.Helper()
	a := NewArchive()

	man, err := manifest.NewBuilder("com.demo").
		Launcher("com.demo.MainActivity").
		Activity("com.demo.DetailActivity").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	manData, err := man.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(ManifestPath, manData); err != nil {
		t.Fatal(err)
	}

	mainLayout, err := layout.Root(layout.TypeLinearLayout).ID("@id/root").Child(
		layout.Root(layout.TypeButton).ID("@id/btn_detail").Text("Detail").OnClick("onDetail"),
		layout.Root(layout.TypeFrameLayout).ID("@id/container"),
	).BuildLayout("activity_main")
	if err != nil {
		t.Fatal(err)
	}
	detailLayout, err := layout.Root(layout.TypeLinearLayout).ID("@id/droot").Child(
		layout.Root(layout.TypeTextView).ID("@id/dtext").Text("detail"),
	).BuildLayout("activity_detail")
	if err != nil {
		t.Fatal(err)
	}
	fragLayout, err := layout.Root(layout.TypeLinearLayout).ID("@id/froot").
		BuildLayout("fragment_home")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []*layout.Layout{mainLayout, detailLayout, fragLayout} {
		data, err := l.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Put(LayoutDir+l.Name+".xml", data); err != nil {
			t.Fatal(err)
		}
	}

	code := map[string]string{
		"com/demo/MainActivity": `
.class public Lcom/demo/MainActivity;
.super Landroid/app/Activity;
.method public onCreate()V
    set-content-view @layout/activity_main
    get-fragment-manager
    begin-transaction
    txn-add @id/container Lcom/demo/HomeFragment;
    txn-commit
.end method
.method public onDetail()V
    new-intent Lcom/demo/MainActivity; Lcom/demo/DetailActivity;
    start-activity
.end method
`,
		"com/demo/DetailActivity": `
.class public Lcom/demo/DetailActivity;
.super Landroid/app/Activity;
.method public onCreate()V
    set-content-view @layout/activity_detail
.end method
`,
		"com/demo/HomeFragment": `
.class public Lcom/demo/HomeFragment;
.super Landroid/app/Fragment;
.method public onCreateView()V
    set-content-view @layout/fragment_home
.end method
`,
	}
	for p, src := range code {
		if err := a.Put(SmaliDir+p+".smali", []byte(src)); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestLoad(t *testing.T) {
	app, err := Load(demoArchive(t))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if app.Manifest.Package != "com.demo" {
		t.Errorf("package = %q", app.Manifest.Package)
	}
	if len(app.Layouts) != 3 {
		t.Errorf("layouts = %v", app.LayoutNames())
	}
	if app.Program.Len() != 3 {
		t.Errorf("classes = %v", app.Program.Names())
	}
	if !app.Program.IsFragmentClass("com.demo.HomeFragment") {
		t.Error("HomeFragment not a fragment class")
	}
	// Resource table has layout names and widget ids.
	if _, err := app.Resources.Resolve("@id/btn_detail"); err != nil {
		t.Errorf("btn_detail unresolved: %v", err)
	}
	if _, err := app.Resources.Resolve("@layout/activity_main"); err != nil {
		t.Errorf("layout unresolved: %v", err)
	}
}

func TestLoadPacked(t *testing.T) {
	a := demoArchive(t)
	a.MarkPacked()
	if _, err := Load(a); err != ErrPacked {
		t.Fatalf("Load packed = %v, want ErrPacked", err)
	}
}

func TestLoadMissingManifest(t *testing.T) {
	a := NewArchive()
	if _, err := Load(a); err == nil || !strings.Contains(err.Error(), "AndroidManifest") {
		t.Fatalf("err = %v", err)
	}
}

func TestLintActivityWithoutClass(t *testing.T) {
	a := demoArchive(t)
	man, _ := manifest.NewBuilder("com.demo").
		Launcher("com.demo.MainActivity").
		Activity("com.demo.GhostActivity").
		Build()
	data, _ := man.Encode()
	if err := a.Put(ManifestPath, data); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(a); err == nil || !strings.Contains(err.Error(), "GhostActivity") {
		t.Fatalf("err = %v", err)
	}
}

func TestLintBadLayoutRef(t *testing.T) {
	a := demoArchive(t)
	src := `
.class public Lcom/demo/DetailActivity;
.super Landroid/app/Activity;
.method public onCreate()V
    set-content-view @layout/no_such_layout
.end method
`
	if err := a.Put(SmaliDir+"com/demo/DetailActivity.smali", []byte(src)); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(a); err == nil || !strings.Contains(err.Error(), "no_such_layout") {
		t.Fatalf("err = %v", err)
	}
}

func TestLintTxnTargetNotFragment(t *testing.T) {
	a := demoArchive(t)
	src := `
.class public Lcom/demo/MainActivity;
.super Landroid/app/Activity;
.method public onCreate()V
    set-content-view @layout/activity_main
    txn-add @id/container Lcom/demo/DetailActivity;
.end method
`
	if err := a.Put(SmaliDir+"com/demo/MainActivity.smali", []byte(src)); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(a); err == nil || !strings.Contains(err.Error(), "not a Fragment") {
		t.Fatalf("err = %v", err)
	}
}

func TestPackLoadRoundTrip(t *testing.T) {
	app, err := Load(demoArchive(t))
	if err != nil {
		t.Fatal(err)
	}
	arch, err := app.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	back, err := Load(arch)
	if err != nil {
		t.Fatalf("re-Load: %v", err)
	}
	if back.Manifest.Package != app.Manifest.Package ||
		back.Program.Len() != app.Program.Len() ||
		len(back.Layouts) != len(app.Layouts) {
		t.Fatal("round trip lost structure")
	}
	// And the serialized bytes round-trip too.
	back2, err := LoadBytes(arch.Bytes())
	if err != nil {
		t.Fatalf("LoadBytes: %v", err)
	}
	if back2.Manifest.Package != "com.demo" {
		t.Fatal("LoadBytes mismatch")
	}
}

func TestNormalizeRef(t *testing.T) {
	if NormalizeRef("@+id/x") != "@id/x" || NormalizeRef("@id/x") != "@id/x" {
		t.Fatal("NormalizeRef broken")
	}
	_ = smali.ToDescriptor // keep import symmetry visible
}
