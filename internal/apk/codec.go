package apk

import (
	"fmt"

	"fragdroid/internal/binc"
	"fragdroid/internal/layout"
	"fragdroid/internal/manifest"
	"fragdroid/internal/res"
	"fragdroid/internal/smali"
)

// The app payload is a binc encoding: manifest, then layouts in registration
// order (sorted by name, as Load and Assemble register them), then classes in
// program order (sorted archive path). Decoding re-registers and re-adds
// everything in the exact order of the original construction, so resource-ID
// numbering and class iteration order come out identical. binc's interned
// string table is what makes the warm path fast: opcode arguments, access
// flags and class names repeat across every method body, and each is decoded
// exactly once.

// EncodeApp serializes a decoded App to the compact binary form DecodeApp
// reads. Unlike Pack, the output is not a .sapk archive: it captures the
// already-parsed structures, so decoding skips the parsers entirely.
func EncodeApp(app *App) ([]byte, error) {
	w := binc.NewWriter()
	if app.Manifest == nil {
		return nil, fmt.Errorf("apk: encode app: missing manifest")
	}
	encodeManifest(w, app.Manifest)
	// Resource-entry count, a sizing hint for the decoder's table.
	w.Int(app.Resources.Len())
	names := app.LayoutNames()
	w.Int(len(names))
	for _, name := range names {
		l := app.Layouts[name]
		if l == nil || l.Root == nil {
			return nil, fmt.Errorf("apk: encode app: malformed layout %q", name)
		}
		w.Str(l.Name)
		// Node count ahead of the tree, so the decoder allocates the whole
		// tree as one arena.
		w.Int(countWidgets(l.Root))
		encodeWidget(w, l.Root)
	}
	classNames := app.Program.Names()
	w.Int(len(classNames))
	for _, cn := range classNames {
		encodeClass(w, app.Program.Class(cn))
	}
	return w.Bytes(), nil
}

func encodeManifest(w *binc.Writer, m *manifest.Manifest) {
	w.Str(m.XMLName.Space)
	w.Str(m.XMLName.Local)
	w.Str(m.Package)
	w.Str(m.VersionName)
	w.Int(len(m.Permissions))
	for _, p := range m.Permissions {
		w.Str(p.Name)
	}
	w.Str(m.Application.Label)
	w.Int(len(m.Application.Activities))
	for _, a := range m.Application.Activities {
		w.Str(a.Name)
		w.Bool(a.Exported)
		encodeFilters(w, a.Filters)
	}
	w.Int(len(m.Application.Receivers))
	for _, rc := range m.Application.Receivers {
		w.Str(rc.Name)
		encodeFilters(w, rc.Filters)
	}
}

func encodeFilters(w *binc.Writer, fs []manifest.IntentFilter) {
	w.Int(len(fs))
	for _, f := range fs {
		w.Int(len(f.Actions))
		for _, a := range f.Actions {
			w.Str(a.Name)
		}
		w.Int(len(f.Categories))
		for _, c := range f.Categories {
			w.Str(c.Name)
		}
		w.Int(len(f.Data))
		for _, d := range f.Data {
			w.Str(d.URI)
		}
	}
}

func countWidgets(wd *layout.Widget) int {
	n := 1
	for _, c := range wd.Children {
		n += countWidgets(c)
	}
	return n
}

func encodeWidget(w *binc.Writer, wd *layout.Widget) {
	w.Str(wd.Type)
	w.Str(wd.IDRef)
	w.Str(wd.Text)
	w.Str(wd.Hint)
	w.Str(wd.OnClick)
	w.Bool(wd.Hidden)
	w.Str(wd.FragmentClass)
	// Children's nil-ness is preserved (some construction paths leave an
	// empty non-nil slice), so a decoded app is DeepEqual to its original.
	w.Bool(wd.Children != nil)
	w.Int(len(wd.Children))
	for _, c := range wd.Children {
		encodeWidget(w, c)
	}
}

func encodeClass(w *binc.Writer, c *smali.Class) {
	w.Str(c.Name)
	w.Str(c.Super)
	w.StrSlice(c.Interfaces)
	w.StrSlice(c.Access)
	w.Bool(c.RequiresArgs)
	w.Int(len(c.Fields))
	for _, f := range c.Fields {
		w.Str(f.Name)
		w.Str(f.Descriptor)
		w.StrSlice(f.Access)
	}
	w.Int(len(c.Methods))
	// Per-class instruction and operand totals size the decoder's arenas.
	var nInstrs, nArgs int
	for _, m := range c.Methods {
		nInstrs += len(m.Body)
		for _, in := range m.Body {
			nArgs += len(in.Args)
		}
	}
	w.Int(nInstrs)
	w.Int(nArgs)
	for _, m := range c.Methods {
		w.Str(m.Name)
		w.StrSlice(m.Access)
		w.Int(len(m.Body))
		for _, in := range m.Body {
			w.Str(string(in.Op))
			w.StrSlice(in.Args)
			w.Int(in.Line)
		}
	}
	w.Str(c.SourceFile)
}

// DecodeApp reconstructs an App from EncodeApp output. The layouts are
// re-registered and the classes re-added in their stored order, reproducing
// the resource table and program of the encoded App exactly.
//
// DecodeApp trusts its input: it skips the per-class Check, program
// Validate and bundle Lint that Load and Assemble run, which is what makes a
// warm load fast. Callers must only feed it payloads whose integrity is
// established elsewhere (the artifact store verifies a sha256 checksum
// before handing bytes over).
func DecodeApp(data []byte) (*App, error) {
	r, err := binc.NewReader(data)
	if err != nil {
		return nil, fmt.Errorf("apk: decode app: %w", err)
	}
	m := decodeManifest(r)
	resHint := r.Int()
	nLayouts := r.Int()
	tbl := res.NewTableSized(resHint)
	layouts := make(map[string]*layout.Layout, nLayouts)
	for i := 0; i < nLayouts; i++ {
		l := &layout.Layout{Name: r.Str()}
		if r.Err() != nil {
			break
		}
		if l.Name == "" {
			return nil, fmt.Errorf("apk: decode app: malformed layout entry")
		}
		if layouts[l.Name] != nil {
			return nil, fmt.Errorf("apk: decode app: duplicate layout %s", l.Name)
		}
		// Define the layout before its widgets and register widget IDs in
		// decode (= pre-)order: the exact ID numbering Layout.Register
		// produces, without a second tree walk.
		if _, err := tbl.Define(res.KindLayout, l.Name); err != nil {
			return nil, err
		}
		arena := make([]layout.Widget, r.Int())
		var regErr error
		l.Root, _ = decodeWidget(r, arena, tbl, &regErr)
		if regErr != nil {
			return nil, fmt.Errorf("apk: decode app: layout %s: %w", l.Name, regErr)
		}
		if r.Err() != nil {
			break
		}
		layouts[l.Name] = l
	}
	nClasses := r.Int()
	prog := smali.NewProgramSized(nClasses)
	for i := 0; i < nClasses; i++ {
		c := decodeClass(r)
		if r.Err() != nil {
			break
		}
		if err := prog.Add(c); err != nil {
			return nil, err
		}
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("apk: decode app: %w", err)
	}
	if m.Package == "" {
		return nil, fmt.Errorf("apk: decode app: missing manifest")
	}
	return &App{Manifest: m, Layouts: layouts, Program: prog, Resources: tbl}, nil
}

func decodeManifest(r *binc.Reader) *manifest.Manifest {
	m := &manifest.Manifest{}
	m.XMLName.Space = r.Str()
	m.XMLName.Local = r.Str()
	m.Package = r.Str()
	m.VersionName = r.Str()
	if n := r.Int(); n > 0 {
		m.Permissions = make([]manifest.Permission, n)
		for i := range m.Permissions {
			m.Permissions[i].Name = r.Str()
		}
	}
	m.Application.Label = r.Str()
	if n := r.Int(); n > 0 {
		m.Application.Activities = make([]manifest.Activity, n)
		for i := range m.Application.Activities {
			a := &m.Application.Activities[i]
			a.Name = r.Str()
			a.Exported = r.Bool()
			a.Filters = decodeFilters(r)
		}
	}
	if n := r.Int(); n > 0 {
		m.Application.Receivers = make([]manifest.Receiver, n)
		for i := range m.Application.Receivers {
			rc := &m.Application.Receivers[i]
			rc.Name = r.Str()
			rc.Filters = decodeFilters(r)
		}
	}
	return m
}

func decodeFilters(r *binc.Reader) []manifest.IntentFilter {
	n := r.Int()
	if n == 0 {
		return nil
	}
	fs := make([]manifest.IntentFilter, n)
	for i := range fs {
		if na := r.Int(); na > 0 {
			fs[i].Actions = make([]manifest.Action, na)
			for j := range fs[i].Actions {
				fs[i].Actions[j].Name = r.Str()
			}
		}
		if nc := r.Int(); nc > 0 {
			fs[i].Categories = make([]manifest.Category, nc)
			for j := range fs[i].Categories {
				fs[i].Categories[j].Name = r.Str()
			}
		}
		if nd := r.Int(); nd > 0 {
			fs[i].Data = make([]manifest.Data, nd)
			for j := range fs[i].Data {
				fs[i].Data[j].URI = r.Str()
			}
		}
	}
	return fs
}

// decodeWidget decodes one widget subtree out of arena, the flat
// preallocated node backing (the stored node count sizes it), registering
// widget IDs into tbl as it goes. It returns the unused arena tail; if a
// corrupt count exhausts the arena early, extra nodes fall back to individual
// allocations.
func decodeWidget(r *binc.Reader, arena []layout.Widget, tbl *res.Table, regErr *error) (*layout.Widget, []layout.Widget) {
	var wd *layout.Widget
	if len(arena) > 0 {
		wd, arena = &arena[0], arena[1:]
	} else {
		wd = &layout.Widget{}
	}
	wd.Type = r.Str()
	wd.IDRef = r.Str()
	wd.Text = r.Str()
	wd.Hint = r.Str()
	wd.OnClick = r.Str()
	wd.Hidden = r.Bool()
	wd.FragmentClass = r.Str()
	if wd.IDRef != "" && *regErr == nil {
		if _, err := tbl.ResolveOrDefine(wd.IDRef); err != nil {
			*regErr = err
		}
	}
	notNil := r.Bool()
	n := r.Int()
	if r.Err() != nil {
		return wd, arena
	}
	if notNil {
		wd.Children = make([]*layout.Widget, 0, n)
	}
	for i := 0; i < n; i++ {
		var c *layout.Widget
		c, arena = decodeWidget(r, arena, tbl, regErr)
		wd.Children = append(wd.Children, c)
		if r.Err() != nil {
			break
		}
	}
	return wd, arena
}

func decodeClass(r *binc.Reader) *smali.Class {
	c := &smali.Class{
		Name:       r.Str(),
		Super:      r.Str(),
		Interfaces: r.StrSlice(),
		Access:     r.StrSlice(),
	}
	c.RequiresArgs = r.Bool()
	if n := r.Int(); n > 0 {
		c.Fields = make([]smali.Field, n)
		for i := range c.Fields {
			c.Fields[i].Name = r.Str()
			c.Fields[i].Descriptor = r.Str()
			c.Fields[i].Access = r.StrSlice()
		}
	}
	if n := r.Int(); n > 0 {
		c.Methods = make([]*smali.Method, 0, n)
		// Three arenas for the whole class: methods, instructions and
		// operand strings, sized by the stored totals. Bodies and Args are
		// carved out of them, so a class costs a handful of allocations no
		// matter how many instructions it has.
		marena := make([]smali.Method, n)
		iarena := make([]smali.Instr, r.Int())
		sarena := make([]string, r.Int())
		for i := 0; i < n; i++ {
			m := &marena[i]
			m.Name = r.Str()
			m.Access = r.StrSlice()
			nb := r.Int()
			if nb > 0 && r.Err() == nil {
				if nb <= len(iarena) {
					m.Body, iarena = iarena[:nb:nb], iarena[nb:]
				} else {
					// Corrupt totals; keep decoding off-arena.
					m.Body = make([]smali.Instr, nb)
				}
				for j := range m.Body {
					m.Body[j].Op = smali.Op(r.Str())
					if na := r.Int(); na > 0 && r.Err() == nil {
						var args []string
						if na <= len(sarena) {
							args, sarena = sarena[:na:na], sarena[na:]
						} else {
							args = make([]string, na)
						}
						for k := range args {
							args[k] = r.Str()
						}
						m.Body[j].Args = args
					}
					m.Body[j].Line = r.Int()
				}
			}
			c.Methods = append(c.Methods, m)
			if r.Err() != nil {
				break
			}
		}
	}
	c.SourceFile = r.Str()
	return c
}
