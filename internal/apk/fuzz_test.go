package apk

import (
	"bytes"
	"testing"
)

// FuzzParseArchive: arbitrary bytes must never panic the reader, and
// anything it accepts must re-serialize to an equivalent archive.
func FuzzParseArchive(f *testing.F) {
	valid := NewArchive()
	_ = valid.Put("AndroidManifest.xml", []byte("<manifest/>"))
	_ = valid.Put("smali/A.smali", []byte(".class Lp/A;"))
	f.Add(valid.Bytes())
	f.Add([]byte("SAPK1\n"))
	f.Add([]byte("SAPK1\npath\n3\nabc\n"))
	f.Add([]byte("NOPE"))
	f.Add([]byte("SAPK1\np\n-1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := ParseArchive(data)
		if err != nil {
			return
		}
		back, err := ParseArchive(a.Bytes())
		if err != nil {
			t.Fatalf("re-serialized archive rejected: %v", err)
		}
		if back.Len() != a.Len() {
			t.Fatalf("entry count changed: %d vs %d", back.Len(), a.Len())
		}
		for _, p := range a.Paths() {
			want, _ := a.Get(p)
			got, ok := back.Get(p)
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("entry %q changed", p)
			}
		}
	})
}
