package apk_test

import (
	"reflect"
	"testing"

	"fragdroid/internal/apk"
	"fragdroid/internal/corpus"
	"fragdroid/internal/res"
)

// codecApps builds round-trip fixtures through the real corpus generator
// (the external test package avoids the corpus->apk import cycle): the demo
// app plus the structurally richest Table I app, so fragments, receivers,
// input gates and multi-layout activities all appear in the payload.
func codecApps(t *testing.T) map[string]*apk.App {
	t.Helper()
	apps := make(map[string]*apk.App)
	specs := []*corpus.AppSpec{corpus.DemoSpec()}
	for _, row := range corpus.PaperRows() {
		specs = append(specs, corpus.PaperSpec(row))
	}
	for _, spec := range specs {
		app, err := corpus.BuildApp(spec)
		if err != nil {
			t.Fatalf("build %s: %v", spec.Package, err)
		}
		apps[spec.Package] = app
	}
	return apps
}

// TestAppCodecRoundTrip checks that DecodeApp(EncodeApp(app)) reproduces
// every corpus app exactly: manifest, layout trees, program classes in
// order, and — the subtle part — the resource table, whose ID numbering the
// decoder must reproduce by re-registering layouts and widget IDs in the
// original order.
func TestAppCodecRoundTrip(t *testing.T) {
	for pkg, app := range codecApps(t) {
		data, err := apk.EncodeApp(app)
		if err != nil {
			t.Fatalf("%s: encode: %v", pkg, err)
		}
		got, err := apk.DecodeApp(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", pkg, err)
		}

		if !reflect.DeepEqual(got.Manifest, app.Manifest) {
			t.Errorf("%s: manifest differs after round trip", pkg)
		}
		if !reflect.DeepEqual(got.Layouts, app.Layouts) {
			t.Errorf("%s: layouts differ after round trip", pkg)
		}
		wantNames := app.Program.Names()
		gotNames := got.Program.Names()
		if !reflect.DeepEqual(gotNames, wantNames) {
			t.Fatalf("%s: class order differs: got %v, want %v", pkg, gotNames, wantNames)
		}
		for _, name := range wantNames {
			if !reflect.DeepEqual(got.Program.Class(name), app.Program.Class(name)) {
				t.Errorf("%s: class %s differs after round trip", pkg, name)
			}
		}
		checkTableParity(t, pkg, got.Resources, app.Resources)
	}
}

// checkTableParity asserts two resource tables are observably identical:
// same entries in the same ID order, and every name resolves to the same ID.
// Downstream analyses key on resource IDs, so any numbering drift between a
// built app and its decoded twin would skew metrics silently.
func checkTableParity(t *testing.T, pkg string, got, want *res.Table) {
	t.Helper()
	ge, we := got.Entries(), want.Entries()
	if !reflect.DeepEqual(ge, we) {
		t.Fatalf("%s: resource entries differ:\ngot:  %v\nwant: %v", pkg, ge, we)
	}
	for _, e := range we {
		gid, ok := got.Lookup(e.Kind, e.Name)
		if !ok {
			t.Fatalf("%s: decoded table is missing %s/%s", pkg, e.Kind, e.Name)
		}
		wid, _ := want.Lookup(e.Kind, e.Name)
		if gid != wid {
			t.Fatalf("%s: ID for %s/%s drifted: got %v, want %v", pkg, e.Kind, e.Name, gid, wid)
		}
	}
}

// TestDecodeAppRejectsCorruptPayloads feeds truncations and bit-flips of a
// valid encoding to DecodeApp. Any outcome but a clean decode or an error is
// a bug; panics would take down a whole study run.
func TestDecodeAppRejectsCorruptPayloads(t *testing.T) {
	app, err := corpus.BuildApp(corpus.DemoSpec())
	if err != nil {
		t.Fatal(err)
	}
	valid, err := apk.EncodeApp(app)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(valid); cut++ {
		if _, err := apk.DecodeApp(valid[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	for i := 0; i < len(valid); i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xff
		// A flip may survive as a value change (e.g. inside a string); it
		// must never panic. Decode errors are the expected common case.
		apk.DecodeApp(mut)
	}
}
