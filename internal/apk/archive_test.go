package apk

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestArchivePutGet(t *testing.T) {
	a := NewArchive()
	if err := a.Put("x/y.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, ok := a.Get("x/y.txt")
	if !ok || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// Replacement keeps a single entry.
	if err := a.Put("x/y.txt", []byte("bye")); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 {
		t.Fatalf("Len = %d", a.Len())
	}
	got, _ = a.Get("x/y.txt")
	if string(got) != "bye" {
		t.Fatalf("after replace: %q", got)
	}
	// Returned slices are copies.
	got[0] = 'X'
	again, _ := a.Get("x/y.txt")
	if string(again) != "bye" {
		t.Fatal("Get returned aliased slice")
	}
}

func TestArchivePathValidation(t *testing.T) {
	a := NewArchive()
	for _, bad := range []string{"", "/abs", "a/../b", "nl\nin/path"} {
		if err := a.Put(bad, nil); err == nil {
			t.Errorf("Put(%q): want error", bad)
		}
	}
}

func TestArchiveSerializeRoundTrip(t *testing.T) {
	a := NewArchive()
	entries := map[string][]byte{
		"AndroidManifest.xml":  []byte("<manifest/>"),
		"res/layout/main.xml":  []byte("<LinearLayout/>\nwith\nnewlines\n"),
		"smali/com/ex/A.smali": []byte(".class Lcom/ex/A;"),
		"binary/with\ttabs":    {0, 1, 2, 255, '\n', '\n', 0},
		"empty":                {},
	}
	for p, d := range entries {
		if err := a.Put(p, d); err != nil {
			t.Fatalf("Put(%q): %v", p, err)
		}
	}
	back, err := ParseArchive(a.Bytes())
	if err != nil {
		t.Fatalf("ParseArchive: %v", err)
	}
	if back.Len() != len(entries) {
		t.Fatalf("Len = %d, want %d", back.Len(), len(entries))
	}
	for p, d := range entries {
		got, ok := back.Get(p)
		if !ok || !bytes.Equal(got, d) {
			t.Errorf("entry %q = %q, %v; want %q", p, got, ok, d)
		}
	}
	if !reflect.DeepEqual(back.Paths(), a.Paths()) {
		t.Errorf("Paths = %v, want %v", back.Paths(), a.Paths())
	}
}

func TestReadArchiveErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"bad magic", "NOPE\n"},
		{"truncated header", ""},
		{"bad length", "SAPK1\npath\nxyz\n"},
		{"negative length", "SAPK1\npath\n-4\n"},
		{"short body", "SAPK1\npath\n10\nabc"},
		{"missing terminator", "SAPK1\npath\n3\nabc"},
		{"duplicate entry", "SAPK1\np\n1\na\np\n1\nb\n"},
		// Regression (found by FuzzParseArchive): a hostile length header
		// must not drive allocation.
		{"length bomb", "SAPK1\np\n12000000000000\n"},
	}
	for _, tc := range cases {
		if _, err := ParseArchive([]byte(tc.data)); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestPackedMarker(t *testing.T) {
	a := NewArchive()
	if a.Packed() {
		t.Fatal("fresh archive packed")
	}
	a.MarkPacked()
	if !a.Packed() {
		t.Fatal("MarkPacked did not stick")
	}
	back, err := ParseArchive(a.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Packed() {
		t.Fatal("packed flag lost in serialization")
	}
}

func TestWithPrefix(t *testing.T) {
	a := NewArchive()
	for _, p := range []string{"res/layout/b.xml", "res/layout/a.xml", "smali/X.smali"} {
		if err := a.Put(p, nil); err != nil {
			t.Fatal(err)
		}
	}
	got := a.WithPrefix("res/layout/")
	want := []string{"res/layout/a.xml", "res/layout/b.xml"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("WithPrefix = %v", got)
	}
}

// Property: any map of valid paths to arbitrary bytes survives a serialize/
// parse round trip byte-for-byte.
func TestQuickArchiveRoundTrip(t *testing.T) {
	f := func(names []string, blobs [][]byte) bool {
		a := NewArchive()
		want := make(map[string][]byte)
		for i, n := range names {
			p := "f/" + sanitize(n)
			var d []byte
			if i < len(blobs) {
				d = blobs[i]
			}
			if err := a.Put(p, d); err != nil {
				return false
			}
			want[p] = d
		}
		back, err := ParseArchive(a.Bytes())
		if err != nil {
			return false
		}
		if back.Len() != len(want) {
			return false
		}
		for p, d := range want {
			got, ok := back.Get(p)
			if !ok || !bytes.Equal(got, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case '\n', '\r', '.':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return "x"
	}
	return string(out)
}
