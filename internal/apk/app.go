package apk

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync/atomic"

	"fragdroid/internal/layout"
	"fragdroid/internal/manifest"
	"fragdroid/internal/res"
	"fragdroid/internal/smali"
)

// Archive entry-path conventions.
const (
	ManifestPath = "AndroidManifest.xml"
	LayoutDir    = "res/layout/"
	SmaliDir     = "smali/"
)

// ErrPacked is returned by Load for packer-protected archives; such apps are
// excluded from analysis, as in the paper's dataset preparation.
var ErrPacked = errors.New("apk: package is packer-protected; cannot decompile")

// App is the fully decoded, validated application bundle every other part of
// the system works with. It is the output of the "Decompile APK" step
// (§IV-B1): manifest, layouts, and smali program, plus the resource table
// shared by static analysis and the device runtime.
type App struct {
	// Manifest is the parsed AndroidManifest.xml.
	Manifest *manifest.Manifest
	// Layouts maps layout resource names to their widget trees.
	Layouts map[string]*layout.Layout
	// Program is the decompiled smali code of the whole app.
	Program *smali.Program
	// Resources is the app's resource-ID table, populated from all layouts.
	Resources *res.Table

	// irState is an opaque, atomically-swapped slot owned by internal/ir
	// (kept untyped here to avoid an import cycle): it carries the app's
	// parked compiled-program source and, once resolved, the program itself.
	// Living on the App ties the registry's lifetime to the app — a
	// process-global map keyed by app pointer would pin every app ever
	// loaded, a real leak for long-lived static-only consumers.
	irState atomic.Value
}

// IRState exposes the compiled-program slot to internal/ir. Other packages
// must not touch it.
func (a *App) IRState() *atomic.Value { return &a.irState }

// Load decodes an archive into an App. Packed archives yield ErrPacked.
func Load(a *Archive) (*App, error) {
	if a.Packed() {
		return nil, ErrPacked
	}
	manData, ok := a.Get(ManifestPath)
	if !ok {
		return nil, fmt.Errorf("apk: archive has no %s", ManifestPath)
	}
	man, err := manifest.Parse(manData)
	if err != nil {
		return nil, err
	}

	tbl := res.NewTable()
	layouts := make(map[string]*layout.Layout)
	for _, p := range a.WithPrefix(LayoutDir) {
		base := path.Base(p)
		name := strings.TrimSuffix(base, ".xml")
		if name == base {
			return nil, fmt.Errorf("apk: layout entry %q is not an .xml file", p)
		}
		data, _ := a.Get(p)
		l, err := layout.Parse(name, data)
		if err != nil {
			return nil, err
		}
		if err := l.Register(tbl); err != nil {
			return nil, err
		}
		layouts[name] = l
	}

	smaliFiles := make(map[string][]byte)
	for _, p := range a.WithPrefix(SmaliDir) {
		if !strings.HasSuffix(p, ".smali") {
			return nil, fmt.Errorf("apk: code entry %q is not a .smali file", p)
		}
		data, _ := a.Get(p)
		smaliFiles[p] = data
	}
	prog, err := smali.ParseProgram(smaliFiles)
	if err != nil {
		return nil, err
	}

	app := &App{Manifest: man, Layouts: layouts, Program: prog, Resources: tbl}
	if err := app.Lint(); err != nil {
		return nil, err
	}
	return app, nil
}

// Assemble constructs an App directly from in-memory parts, running the
// same registration, validation, and lint steps as Load without the
// serialize-then-reparse round trip. Layouts are registered in sorted-name
// order and classes added in sorted-archive-path order, mirroring Load's
// sorted-path iteration, so resource-ID numbering and program order are
// identical to loading the equivalent archive. Programmatically built
// classes are checked with smali.Class.Check, the parser's validation.
func Assemble(man *manifest.Manifest, layouts []*layout.Layout, classes []*smali.Class) (*App, error) {
	if err := man.Validate(); err != nil {
		return nil, err
	}
	tbl := res.NewTable()
	lmap := make(map[string]*layout.Layout, len(layouts))
	ordered := append([]*layout.Layout(nil), layouts...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Name < ordered[j].Name })
	for _, l := range ordered {
		if lmap[l.Name] != nil {
			return nil, fmt.Errorf("apk: duplicate layout %s", l.Name)
		}
		if err := l.Validate(); err != nil {
			return nil, err
		}
		if err := l.Register(tbl); err != nil {
			return nil, err
		}
		lmap[l.Name] = l
	}
	prog := smali.NewProgram()
	orderedC := append([]*smali.Class(nil), classes...)
	sort.Slice(orderedC, func(i, j int) bool {
		return smaliPath(orderedC[i].Name) < smaliPath(orderedC[j].Name)
	})
	for _, c := range orderedC {
		if err := c.Check(); err != nil {
			return nil, err
		}
		if c.SourceFile == "" {
			c.SourceFile = smaliPath(c.Name)
		}
		if err := prog.Add(c); err != nil {
			return nil, err
		}
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	app := &App{Manifest: man, Layouts: lmap, Program: prog, Resources: tbl}
	if err := app.Lint(); err != nil {
		return nil, err
	}
	return app, nil
}

// smaliPath is the canonical archive entry path of a class.
func smaliPath(name string) string {
	return SmaliDir + strings.ReplaceAll(name, ".", "/") + ".smali"
}

// LoadBytes decodes a serialized archive into an App.
func LoadBytes(data []byte) (*App, error) {
	arch, err := ParseArchive(data)
	if err != nil {
		return nil, err
	}
	return Load(arch)
}

// Pack assembles the App back into an archive (the corpus generators build
// Apps programmatically and serialize them through here, guaranteeing that
// everything the system consumes went through the real parsers).
func (app *App) Pack() (*Archive, error) {
	a := NewArchive()
	manData, err := app.Manifest.Encode()
	if err != nil {
		return nil, err
	}
	if err := a.Put(ManifestPath, manData); err != nil {
		return nil, err
	}
	for _, name := range app.LayoutNames() {
		data, err := app.Layouts[name].Encode()
		if err != nil {
			return nil, err
		}
		if err := a.Put(LayoutDir+name+".xml", data); err != nil {
			return nil, err
		}
	}
	for _, cn := range app.Program.Names() {
		c := app.Program.Class(cn)
		if err := a.Put(smaliPath(cn), smali.WriteClass(c)); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// LayoutNames returns the app's layout names, sorted.
func (app *App) LayoutNames() []string {
	out := make([]string, 0, len(app.Layouts))
	for n := range app.Layouts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lint cross-checks the bundle:
//   - every manifest activity has a class in the program, and that class is
//     an Activity subclass;
//   - every set-content-view layout reference resolves to a bundled layout;
//   - every fragment-transaction target class is a Fragment subclass;
//   - every set-click-listener widget reference is defined in some layout.
func (app *App) Lint() error {
	for _, an := range app.Manifest.ActivityNames() {
		c := app.Program.Class(an)
		if c == nil {
			return fmt.Errorf("apk: manifest activity %s has no class", an)
		}
		if !app.Program.IsActivityClass(an) {
			return fmt.Errorf("apk: manifest activity %s does not extend Activity", an)
		}
	}
	for _, r := range app.Manifest.Application.Receivers {
		if app.Program.Class(r.Name) == nil {
			return fmt.Errorf("apk: manifest receiver %s has no class", r.Name)
		}
		if !app.Program.IsSubclassOf(r.Name, smali.ClassReceiver) {
			return fmt.Errorf("apk: manifest receiver %s does not extend BroadcastReceiver", r.Name)
		}
	}
	for _, cn := range app.Program.Names() {
		c := app.Program.Class(cn)
		for _, m := range c.Methods {
			for _, ins := range m.Body {
				if err := app.lintInstr(cn, m.Name, ins); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (app *App) lintInstr(class, method string, ins smali.Instr) error {
	where := func() string { return fmt.Sprintf("apk: %s.%s line %d", class, method, ins.Line) }
	switch ins.Op {
	case smali.OpSetContentView:
		kind, name, err := res.ParseRef(ins.Args[0])
		if err != nil {
			return fmt.Errorf("%s: %w", where(), err)
		}
		if kind != res.KindLayout {
			return fmt.Errorf("%s: set-content-view wants @layout, got %s", where(), ins.Args[0])
		}
		if app.Layouts[name] == nil {
			return fmt.Errorf("%s: unknown layout %s", where(), ins.Args[0])
		}
	case smali.OpTxnAdd, smali.OpTxnReplace, smali.OpInflateView:
		if !app.Program.IsFragmentClass(ins.Args[1]) {
			return fmt.Errorf("%s: %s target %s is not a Fragment subclass", where(), ins.Op, ins.Args[1])
		}
		if _, err := app.Resources.Resolve(normalizeRef(ins.Args[0])); err != nil {
			return fmt.Errorf("%s: %w", where(), err)
		}
	case smali.OpTxnRemove:
		if !app.Program.IsFragmentClass(ins.Args[0]) {
			return fmt.Errorf("%s: txn-remove target %s is not a Fragment subclass", where(), ins.Args[0])
		}
	case smali.OpSetClickListener, smali.OpToggleVisible, smali.OpSetText, smali.OpRequireInput:
		if _, err := app.Resources.Resolve(normalizeRef(ins.Args[0])); err != nil {
			return fmt.Errorf("%s: %w", where(), err)
		}
	}
	return nil
}

// normalizeRef maps "@+id/x" to "@id/x" so lookups hit layout-registered IDs.
func normalizeRef(ref string) string {
	if strings.HasPrefix(ref, "@+") {
		return "@" + ref[2:]
	}
	return ref
}

// NormalizeRef is the exported form of normalizeRef for sibling packages.
func NormalizeRef(ref string) string { return normalizeRef(ref) }
